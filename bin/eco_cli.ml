(* Command-line driver for the ECO reproduction: inspect machines,
   derive variants, tune kernels, run experiments. *)

let kernels =
  [
    ("matmul", Kernels.Matmul.kernel);
    ("jacobi3d", Kernels.Jacobi3d.kernel);
    ("matvec", Kernels.Matvec.kernel);
    ("stencil2d", Kernels.Stencil2d.kernel);
    ("wavefront", Kernels.Wavefront.kernel);
  ]

let kernel_conv =
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) kernels with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown kernel %s (known: %s)" s
             (String.concat ", " (List.map fst kernels))))
  in
  let print fmt (k : Kernels.Kernel.t) =
    Format.pp_print_string fmt k.Kernels.Kernel.name
  in
  Cmdliner.Arg.conv (parse, print)

let machine_conv =
  let parse s =
    match Machine.by_name s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown machine %s (known: %s)" s
             (String.concat ", "
                (List.map (fun (m : Machine.t) -> m.Machine.name) Machine.all))))
  in
  let print fmt (m : Machine.t) = Format.pp_print_string fmt m.Machine.name in
  Cmdliner.Arg.conv (parse, print)

let objective_conv =
  let parse s =
    match Core.Objective.of_string s with
    | Some o -> Ok o
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown objective %s (known: %s)" s
             (String.concat ", "
                (List.map Core.Objective.to_string Core.Objective.all))))
  in
  let print fmt o = Format.pp_print_string fmt (Core.Objective.to_string o) in
  Cmdliner.Arg.conv (parse, print)

open Cmdliner

let machine_arg =
  Arg.(
    value
    & opt machine_conv Machine.sgi_r10000
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:
          "Target machine model (sgi, sun, generic, modern/3level, mini).")

let kernel_arg =
  Arg.(
    value
    & opt kernel_conv Kernels.Matmul.kernel
    & info [ "k"; "kernel" ] ~docv:"KERNEL"
        ~doc:"Kernel to optimize (matmul, jacobi3d, matvec, stencil2d, wavefront).")

let size_arg default =
  Arg.(
    value & opt int default
    & info [ "n"; "size" ] ~docv:"N" ~doc:"Problem size.")

let budget_arg =
  Arg.(
    value & opt int 400_000
    & info [ "b"; "budget" ] ~docv:"FLOPS"
        ~doc:"Flop budget per simulated measurement (0 = full simulation).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Evaluate independent candidate batches on JOBS domains (0 = one \
           per core).  Results are identical at any value; only wall time \
           changes.")

let mode_of_budget b =
  if b <= 0 then Core.Executor.Full else Core.Executor.Budget b

let bindings_str bindings =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) bindings)

(* --- describe --- *)

let describe () =
  List.iter (fun m -> Format.printf "%a@." Machine.pp m) Machine.all;
  Format.printf "@.";
  List.iter
    (fun (_, (k : Kernels.Kernel.t)) ->
      Format.printf "%s: %s@.%a@." k.Kernels.Kernel.name
        k.Kernels.Kernel.description Ir.Program.pp k.Kernels.Kernel.program)
    kernels

let describe_cmd =
  Cmd.v
    (Cmd.info "describe" ~doc:"List machine models and kernels.")
    Term.(const describe $ const ())

(* --- derive --- *)

let derive machine kernel =
  let variants = Core.Derive.variants machine kernel in
  Format.printf "%d variants derived for %s on %s@.@." (List.length variants)
    kernel.Kernels.Kernel.name machine.Machine.name;
  List.iter
    (fun v ->
      Format.printf "%a" Core.Variant.pp v;
      List.iter
        (fun (l, loop, t, p, c) ->
          Format.printf "  %-4s %-3s %-34s %-10s %s@." l loop t p c)
        (Core.Variant.table_rows v);
      Format.printf "@.")
    variants

let derive_cmd =
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Phase 1: derive the parameterized variants for a kernel.")
    Term.(const derive $ machine_arg $ kernel_arg)

(* --- tune --- *)

(* Write paths take the single-writer advisory lock; read-only commands
   (stat, export) don't, so they work alongside a live writer. *)
let load_db ?(lock = false) cmd file =
  match Perfdb.load ~lock file with
  | db -> db
  | exception Perfdb.Corrupt msg ->
    Format.eprintf "eco %s: corrupt performance database %s: %s@." cmd file msg;
    exit 1
  | exception Perfdb.Locked msg ->
    Format.eprintf
      "eco %s: %s@.eco %s: wait for the other writer to finish, or point \
       --db at a different file@."
      cmd msg cmd;
    Format.eprintf "%s@."
      (Serve.Errors.to_cli_line
         (Serve.Errors.make ~code:"db_locked"
            ~data:[ ("path", Serve.Json.String file) ]
            msg));
    exit 1

let tune machine kernel n budget jobs objective prefilter profile closures
    validate faults_spec trials retries checkpoint checkpoint_every die_after
    db_file no_warm_start sample no_batch_replay incremental confirm timeout =
  let mode = mode_of_budget budget in
  let path =
    if closures then Core.Executor.Closures else Core.Executor.Fast
  in
  let faults =
    match faults_spec with
    | None -> Faults.none
    | Some s -> (
      try Faults.of_spec s
      with Invalid_argument m ->
        Format.eprintf "eco tune: bad --faults spec: %s@." m;
        exit 2)
  in
  let trials = max 1 trials and retries = max 0 retries in
  let protocol =
    { Core.Engine.default_protocol with trials; max_retries = retries }
  in
  let engine =
    Core.Engine.create ~jobs ~path ~faults ~protocol ~objective ?prefilter
      machine
  in
  let sampling =
    match sample with
    | None -> None
    | Some spec -> (
      try Some (Memsim.Sampling.parse spec)
      with Invalid_argument m ->
        Format.eprintf "eco tune: bad --sample spec: %s@." m;
        exit 2)
  in
  Core.Engine.set_sampling engine sampling;
  Core.Engine.set_batch_replay engine (not no_batch_replay);
  Core.Engine.set_incremental engine incremental;
  (match confirm with
  | Some k when k < 1 ->
    Format.eprintf "eco tune: --confirm must be at least 1@.";
    exit 2
  | _ -> ());
  Core.Engine.set_confirm_override engine confirm;
  let db =
    match db_file with
    | None -> None
    | Some file ->
      let db = load_db ~lock:true "tune" file in
      Core.Engine.set_db engine ~warm_start:(not no_warm_start) db;
      Some db
  in
  (match checkpoint with
  | None -> ()
  | Some file -> (
    (* The tag encodes everything that determines the answer, so a
       stale checkpoint from a different run cannot be resumed. *)
    let tag =
      Printf.sprintf
        "tune|m=%s|k=%s|n=%d|b=%d|path=%s|faults=%s|trials=%d|retries=%d|obj=%s|pf=%s"
        machine.Machine.name kernel.Kernels.Kernel.name n budget
        (if closures then "closures" else "fast")
        (Faults.to_spec faults) trials retries
        (Core.Objective.to_string objective)
        (match prefilter with Some k -> string_of_int k | None -> "off")
      ^ Printf.sprintf "|db=%s"
          (match db_file with
          | None -> "off"
          | Some _ when no_warm_start -> "exact"
          | Some _ -> "warm")
      ^ Printf.sprintf "|sample=%s|batch=%s|incr=%s|confirm=%s"
          (match sampling with
          | Some sp -> Memsim.Sampling.to_string sp
          | None -> "off")
          (if no_batch_replay then "off" else "on")
          (if incremental then "on" else "off")
          (match confirm with
          | Some k -> string_of_int k
          | None -> "adaptive")
    in
    Core.Engine.set_checkpoint engine ~every:checkpoint_every ~tag file;
    match Core.Engine.load_checkpoint engine ~tag file with
    | exception Core.Engine.Checkpoint_mismatch msg ->
      Format.eprintf "eco tune: %s@." msg;
      exit 2
    | None -> ()
    | Some resume ->
      Format.printf "resumed:      %d memo entries (%d fresh evaluations%s)@."
        resume.Core.Engine.resumed_entries resume.Core.Engine.resumed_fresh
        (match resume.Core.Engine.resumed_best_cycles with
        | Some c -> Printf.sprintf ", best %.0f cycles" c
        | None -> "")));
  (match die_after with
  | Some k -> Core.Engine.set_eval_limit engine k
  | None -> ());
  if faults.Faults.active then
    Format.printf "faults:       %s (trials=%d, retries=%d)@."
      (Faults.to_spec faults) trials retries;
  if sampling <> None || no_batch_replay || incremental || confirm <> None then
    Format.printf
      "replay:       sample=%s, batching=%s, incremental=%s, confirm=%s@."
      (match sampling with
      | Some sp -> Memsim.Sampling.to_string sp
      | None -> "off")
      (if no_batch_replay then "off" else "on")
      (if incremental then "on" else "off")
      (match confirm with
      | Some k -> string_of_int k
      | None -> "adaptive");
  (match timeout with
  | Some t when t > 0.0 ->
    Core.Engine.set_deadline engine (Some (Unix.gettimeofday () +. t))
  | Some _ ->
    Format.eprintf "eco tune: --timeout must be positive@.";
    exit 2
  | None -> ());
  let log = Core.Search_log.create () in
  let r =
    match Core.Eco.optimize_with ~mode ~log engine kernel ~n with
    | r -> r
    | exception Core.Engine.Eval_limit_reached k ->
      (* Simulated SIGKILL: no final checkpoint — only the last
         periodic one survives, exactly like a real kill. *)
      Format.eprintf "eco tune: killed after %d fresh evaluations (--die-after)@." k;
      exit 3
    | exception Core.Engine.Deadline_exceeded ->
      (* Typed partial result: persist the cursor, report best-so-far. *)
      if checkpoint <> None then Core.Engine.checkpoint_now engine;
      let t = match timeout with Some t -> t | None -> 0.0 in
      Format.printf "timeout:      %.3gs deadline exceeded after %d points; \
                     best-so-far follows@."
        t (Core.Search_log.points log);
      (match Core.Search_log.best log with
      | None ->
        Format.eprintf "eco tune: timed out before any point was measured@.";
        exit 4
      | Some e ->
        Format.printf "best variant: %s@." e.Core.Search_log.variant;
        Format.printf "parameters:   %s@." (bindings_str e.Core.Search_log.bindings);
        Format.printf "prefetch:     %s@."
          (if e.Core.Search_log.prefetch = [] then "(none)"
           else bindings_str e.Core.Search_log.prefetch);
        Format.printf "performance:  %.1f MFLOPS (partial)@."
          e.Core.Search_log.mflops;
        Format.printf "search:       %d points, %.2fs wall@."
          (Core.Search_log.points log)
          (Core.Search_log.seconds log);
        exit 0)
    | exception Core.Eco.No_feasible_variant { kernel; n; per_variant } ->
      Format.eprintf "eco tune: no feasible variant for %s at n=%d@." kernel n;
      List.iter
        (fun (v, why) ->
          Format.eprintf "  %-28s %s@." v (Core.Eco.describe_infeasibility why))
        per_variant;
      (* the same structured payload the service returns as its RPC error *)
      Format.eprintf "%s@."
        (Serve.Errors.to_cli_line
           (Serve.Errors.no_feasible_variant ~kernel ~n per_variant));
      exit 1
  in
  if checkpoint <> None then Core.Engine.checkpoint_now engine;
  let o = r.Core.Eco.outcome in
  Format.printf "best variant: %s@." o.Core.Search.variant.Core.Variant.name;
  Format.printf "parameters:   %s@." (bindings_str o.Core.Search.bindings);
  Format.printf "prefetch:     %s@."
    (if o.Core.Search.prefetch = [] then "(none)"
     else bindings_str o.Core.Search.prefetch);
  Format.printf "performance:  %.1f MFLOPS (peak %.0f)@."
    r.Core.Eco.measurement.Core.Executor.mflops
    (Machine.peak_mflops machine);
  Format.printf "search:       %d points, %.2fs wall@."
    (Core.Search_log.points r.Core.Eco.log)
    (Core.Search_log.seconds r.Core.Eco.log);
  Format.printf "engine:       %a (%d jobs)@." Core.Engine.pp_stats
    (Core.Engine.stats r.Core.Eco.engine)
    (Core.Engine.jobs r.Core.Eco.engine);
  (match db with
  | None -> ()
  | Some db ->
    let s = Core.Engine.stats r.Core.Eco.engine in
    let dst = Perfdb.stat db in
    Format.printf
      "db:           %d hits, %d warm-start seeds, %d records appended \
       (%s: %d measurements, %d summaries)@."
      s.Core.Engine.db_hits s.Core.Engine.warm_starts dst.Perfdb.appended
      (Perfdb.path db) dst.Perfdb.measurements dst.Perfdb.summaries;
    Perfdb.close db);
  if profile then
    Format.printf "profile:      %a@." Core.Engine.pp_profile
      (Core.Engine.stats r.Core.Eco.engine);
  if validate then begin
    let verdicts =
      Check.validate ~machine o.Core.Search.variant
        ~bindings:o.Core.Search.bindings ~prefetch:o.Core.Search.prefetch ~n
    in
    let bad = List.filter (fun (_, v) -> not (Check.Oracle.agrees v)) verdicts in
    if bad = [] then
      Format.printf "validated:    winning variant agrees with the reference at n=%s@."
        (String.concat ","
           (List.map (fun (s, _) -> string_of_int s) verdicts))
    else begin
      List.iter
        (fun (s, v) ->
          Format.printf "VALIDATION FAILED at n=%d: %s@." s (Check.Oracle.describe v);
          Format.printf "  repro: %s@."
            (Check.repro_line ~machine ~kernel:kernel.Kernels.Kernel.name
               (Check.Point
                  {
                    variant = o.Core.Search.variant;
                    bindings = o.Core.Search.bindings;
                    prefetch = o.Core.Search.prefetch;
                    n = s;
                  })))
        bad;
      exit 1
    end
  end;
  Format.printf "@.optimized code:@.%a" Ir.Program.pp o.Core.Search.program

let tune_cmd =
  let objective_arg =
    Arg.(
      value
      & opt objective_conv Core.Objective.Cycles
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:
            "What the search minimizes: $(b,cycles) (default, simulated run \
             time) or $(b,energy) (modelled per-access energy weighted by \
             hierarchy level, plus a static-per-cycle term).")
  in
  let prefilter_arg =
    Arg.(
      value
      & opt ~vopt:(Some Core.Engine.default_prefilter) (some int) None
      & info [ "prefilter" ] ~docv:"K"
          ~doc:
            (Printf.sprintf
               "Analytical pre-filter: rank each candidate batch with the \
                cache-model predictor and fully simulate only the top K \
                (default off; $(b,--prefilter) alone means K=%d; K<1 \
                disables).  Skipped candidates are never simulated, cutting \
                search cost; the chosen point may differ slightly from the \
                unfiltered search."
               Core.Engine.default_prefilter))
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print a wall-time breakdown of evaluation (bytecode compilation \
             vs. execution vs. hierarchy simulation vs. memo lookups) and \
             demand-trace cache behaviour.")
  in
  let closures_arg =
    Arg.(
      value & flag
      & info [ "closures" ]
          ~doc:
            "Measure through the reference closure interpreter instead of \
             the bytecode fast path (bit-identical results, slower; for \
             benchmarking and debugging).")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Differentially check the winning variant against the reference \
             interpreter before reporting it (exit 1 on mismatch).")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Inject seeded measurement faults, e.g. \
             'seed=7,noise=0.05,transient=0.02,hang=0.01,outlier=0.01,crash=0.01'. \
             Deterministic: the same spec reproduces the same faults at \
             any --jobs.")
  in
  let trials_arg =
    Arg.(
      value & opt int 1
      & info [ "trials" ] ~docv:"K"
          ~doc:
            "Measure each candidate K times and commit the median / \
             trimmed mean (with adaptive early stop once the spread is \
             tight).  Only meaningful under --faults; 1 commits the \
             single measurement unchanged.")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"R"
          ~doc:
            "Retry budget per trial for transient failures and hangs \
             (exponential backoff); a candidate that exhausts it is \
             quarantined and never re-measured.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Crash-only persistence: periodically save the evaluation \
             memo to FILE and resume from it if it exists.  A killed run \
             resumes to the identical final answer.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 16
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint after every N fresh evaluations (default 16).")
  in
  let die_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "die-after" ] ~docv:"K"
          ~doc:
            "Abort the process (exit 3) after K fresh evaluations — \
             deterministic crash injection for exercising --checkpoint \
             recovery.")
  in
  let db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"FILE"
          ~doc:
            "Persistent performance database: serve exact repeat points from \
             FILE without re-simulating, append every fresh successful \
             measurement back, warm-start the search from the \
             nearest-neighbor recorded summary, and record this run's \
             summary for future transfers.  The file is created if missing \
             and shared safely between concurrent runs (append-only, \
             crash-recoverable).")
  in
  let no_warm_start_arg =
    Arg.(
      value & flag
      & info [ "no-warm-start" ]
          ~doc:
            "With --db, disable the nearest-neighbor transfer seeding and \
             run the unmodified search; the exact-hit tier and result \
             recording stay active.")
  in
  let sample_arg =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "sample" ] ~docv:"SPEC"
          ~doc:
            (Printf.sprintf
               "Sampled simulation: measure candidates from a shrunken trace \
                via periodic replay windows and extrapolate (fast path only; \
                estimates steer the search, the leading candidates are \
                re-measured exactly before the winner is declared).  SPEC is \
                comma-separated $(b,shrink)/$(b,window)/$(b,gap)/$(b,warm) \
                fields, e.g. 'shrink=4,window=8192'; $(b,--sample) alone \
                uses %s." (Memsim.Sampling.to_string Memsim.Sampling.default)))
  in
  let no_batch_replay_arg =
    Arg.(
      value & flag
      & info [ "no-batch-replay" ]
          ~doc:
            "Disable batched multi-plan replay (prefetch sweep groups \
             measured in one shared walk over the demand trace) and fall \
             back to per-candidate replay — bit-identical results, more \
             simulation work.")
  in
  let incremental_arg =
    Arg.(
      value & flag
      & info [ "incremental" ]
          ~doc:
            "Incremental prefetch re-simulation: within a distance sweep \
             over one array, replay only the base plan (recording prefetch \
             timeliness slack), re-price the sibling distances analytically \
             and re-measure only the estimated best.  Cheaper sweeps; the \
             chosen distances may differ slightly from the full search.")
  in
  let confirm_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "confirm" ] ~docv:"K"
          ~doc:
            "With --sample, confirm exactly the top K leaderboard \
             candidates before declaring the winner (min 1) instead of the \
             adaptive policy, which starts from the full leaderboard and \
             shrinks the confirm set as the sampled estimator proves its \
             ranking on the kernel.  The winner is re-measured exactly \
             either way.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Wall-clock deadline for the whole search.  On expiry the run \
             prints a $(b,timeout:) marker and the best point found so far \
             (a typed partial result), checkpoints if --checkpoint is \
             armed, and exits 0 (4 if nothing was measured yet).")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Run the full two-phase ECO optimization for a kernel.")
    Term.(
      const tune $ machine_arg $ kernel_arg $ size_arg 256 $ budget_arg
      $ jobs_arg $ objective_arg $ prefilter_arg $ profile_arg $ closures_arg
      $ validate_arg $ faults_arg $ trials_arg $ retries_arg $ checkpoint_arg
      $ checkpoint_every_arg $ die_after_arg $ db_arg $ no_warm_start_arg
      $ sample_arg $ no_batch_replay_arg $ incremental_arg $ confirm_arg
      $ timeout_arg)

(* --- check --- *)

let check machine kernel_opt seed trials jobs max_ulps size variant_name
    pipeline_str point_str prefetch_str =
  let fail_usage msg =
    Format.eprintf "eco check: %s@." msg;
    exit 2
  in
  let prefetch =
    match prefetch_str with
    | None -> []
    | Some s -> ( try Check.parse_bindings s with Invalid_argument m -> fail_usage m)
  in
  match (variant_name, pipeline_str) with
  | None, None ->
    (* Harness mode: seeded random trials, shrunk repros on failure. *)
    let ks =
      match kernel_opt with None -> List.map snd kernels | Some k -> [ k ]
    in
    let report = Check.run ~machine ~jobs ~max_ulps ~seed ~trials ks in
    Format.printf "%a" Check.pp_report report;
    if not (Check.ok report) then exit 1
  | Some _, Some _ -> fail_usage "--variant and --pipeline are exclusive"
  | _ ->
    (* Repro mode: replay one explicit case. *)
    let kernel =
      match kernel_opt with
      | Some k -> k
      | None -> fail_usage "repro mode needs -k KERNEL"
    in
    let case =
      match (variant_name, pipeline_str) with
      | Some vname, None -> (
        match Check.find_variant ~machine kernel vname with
        | None ->
          fail_usage
            (Printf.sprintf "no variant %s derived for %s on %s" vname
               kernel.Kernels.Kernel.name machine.Machine.name)
        | Some variant ->
          let bindings =
            match point_str with
            | None -> fail_usage "--variant needs --point ui=4,tj=8,..."
            | Some s -> (
              try Check.parse_bindings s with Invalid_argument m -> fail_usage m)
          in
          Check.Point { variant; bindings; prefetch; n = size })
      | None, Some s -> (
        match Check.Pipe.of_string s with
        | exception Invalid_argument m -> fail_usage m
        | pipe -> Check.Pipeline { pipe; n = size })
      | _ -> assert false
    in
    let verdict = Check.run_case ~max_ulps ~machine kernel case in
    Format.printf "%s n=%d: %s@." kernel.Kernels.Kernel.name size
      (Check.Oracle.describe verdict);
    if not (Check.Oracle.agrees verdict) then exit 1

let check_cmd =
  let kernel_opt_arg =
    Arg.(
      value
      & opt (some kernel_conv) None
      & info [ "k"; "kernel" ] ~docv:"KERNEL"
          ~doc:"Kernel to check (default: all five).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Random seed; the same seed reproduces the same trials.")
  in
  let trials_arg =
    Arg.(
      value & opt int 100
      & info [ "trials" ] ~docv:"K" ~doc:"Trials per kernel.")
  in
  let max_ulps_arg =
    Arg.(
      value & opt int Check.Oracle.default_max_ulps
      & info [ "max-ulps" ] ~docv:"U"
          ~doc:"Comparison tolerance in units-in-the-last-place.")
  in
  let size_opt_arg =
    Arg.(
      value & opt int 13
      & info [ "size" ] ~docv:"N" ~doc:"Problem size (repro mode).")
  in
  let variant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "variant" ] ~docv:"NAME"
          ~doc:"Replay one derived variant by name (needs --point).")
  in
  let pipeline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pipeline" ] ~docv:"SPEC"
          ~doc:
            "Replay one explicit transformation pipeline, e.g. \
             'permute:i,j,k;tile:j=5,k=7;copy:b;unroll:i=4;scalar'.")
  in
  let point_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "point" ] ~docv:"BINDINGS"
          ~doc:"Parameter bindings for --variant, e.g. ui=4,uj=2,tj=16.")
  in
  let prefetch_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prefetch" ] ~docv:"DISTANCES"
          ~doc:"Prefetch layer for --variant, e.g. a=2,p_b=1.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differentially test transformed variants against the reference \
          interpreter: random feasible parameter bindings and random \
          transformation pipelines, with failures shrunk to minimal repro \
          commands.  Exit 1 on any mismatch.")
    Term.(
      const check $ machine_arg $ kernel_opt_arg $ seed_arg $ trials_arg
      $ jobs_arg $ max_ulps_arg $ size_opt_arg $ variant_arg $ pipeline_arg
      $ point_arg $ prefetch_arg)

(* --- run (single measurement of the original kernel) --- *)

let run_orig machine kernel n budget =
  let mode = mode_of_budget budget in
  let engine = Core.Engine.create machine in
  let m =
    Core.Engine.measure_program engine kernel ~n ~mode
      kernel.Kernels.Kernel.program
  in
  Format.printf "%s n=%d on %s (untransformed): %.1f MFLOPS@."
    kernel.Kernels.Kernel.name n machine.Machine.name m.Core.Executor.mflops;
  Format.printf "%a@." Memsim.Cost.pp m.Core.Executor.cost

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Measure the untransformed kernel (baseline).")
    Term.(const run_orig $ machine_arg $ kernel_arg $ size_arg 256 $ budget_arg)

(* --- codegen --- *)

let codegen machine kernel n budget jobs fortran =
  let mode = mode_of_budget budget in
  let r = Core.Eco.optimize ~mode ~jobs machine kernel ~n in
  let program = r.Core.Eco.outcome.Core.Search.program in
  if fortran then print_string (Ir.Codegen_f90.file program)
  else print_string (Ir.Codegen_c.file program)

let codegen_cmd =
  let fortran_arg =
    Arg.(
      value & flag
      & info [ "f90"; "fortran" ]
          ~doc:"Emit Fortran 90 (the paper's output language) instead of C.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:
         "Tune a kernel and emit the optimized version as a compilable C \
          (or Fortran 90) function on stdout.")
    Term.(
      const codegen $ machine_arg $ kernel_arg $ size_arg 256 $ budget_arg
      $ jobs_arg $ fortran_arg)

(* --- db (performance-database maintenance) --- *)

let db_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Performance database file.")

let db_stat file =
  let db = load_db "db stat" file in
  let s = Perfdb.stat db in
  Format.printf "%s: %d records (%d measurements, %d summaries), %d bytes@."
    file s.Perfdb.file_records s.Perfdb.measurements s.Perfdb.summaries
    s.Perfdb.bytes;
  if s.Perfdb.torn_bytes > 0 then
    Format.printf
      "recovered:    %d torn trailing bytes dropped (interrupted append)@."
      s.Perfdb.torn_bytes;
  Perfdb.iter_summaries db (fun sm ->
      Format.printf "  %-10s %-14s n=%-5d best %s %.1f MFLOPS (%d frontier)@."
        sm.Perfdb.kernel sm.Perfdb.machine sm.Perfdb.n
        sm.Perfdb.best.Perfdb.variant sm.Perfdb.best.Perfdb.mflops
        (List.length sm.Perfdb.frontier))

let db_compact file =
  let db = load_db ~lock:true "db compact" file in
  let before = Perfdb.stat db in
  Perfdb.compact db;
  let after = Perfdb.stat db in
  Format.printf "%s: %d records -> %d, %d bytes -> %d@." file
    before.Perfdb.file_records after.Perfdb.file_records before.Perfdb.bytes
    after.Perfdb.bytes

let db_export file =
  let db = load_db "db export" file in
  print_string (Perfdb.export db)

let db_cmd =
  Cmd.group
    (Cmd.info "db"
       ~doc:
         "Inspect and maintain a persistent performance database (see tune \
          --db).")
    [
      Cmd.v
        (Cmd.info "stat"
           ~doc:"Print record counts and the recorded (kernel, machine, n) \
                 summaries.")
        Term.(const db_stat $ db_file_arg);
      Cmd.v
        (Cmd.info "compact"
           ~doc:
             "Rewrite the file as one frame per live record, dropping \
              superseded summary revisions (atomic).")
        Term.(const db_compact $ db_file_arg);
      Cmd.v
        (Cmd.info "export" ~doc:"Dump the database as JSON on stdout.")
        Term.(const db_export $ db_file_arg);
    ]

(* --- serve --- *)

let serve machine jobs db_file warm_start dir checkpoint_every max_live
    max_queue deadline watchdog watchdog_retries progress_every faults_spec =
  let service_faults =
    match faults_spec with
    | None -> Faults.Service.none
    | Some s -> (
      try Faults.Service.of_spec s
      with Invalid_argument m ->
        Format.eprintf "eco serve: bad --faults spec: %s@." m;
        exit 2)
  in
  let cfg =
    {
      Serve.Daemon.default_config with
      machine;
      jobs;
      db_file;
      warm_start;
      checkpoint_dir = dir;
      checkpoint_every;
      max_live = max 1 max_live;
      max_queue = max 0 max_queue;
      default_deadline_s = deadline;
      watchdog_s = watchdog;
      watchdog_retries = max 0 watchdog_retries;
      progress_every_s = progress_every;
      service_faults;
    }
  in
  exit (Serve.Daemon.run cfg)

let serve_cmd =
  let dir_arg =
    Arg.(
      value & opt string ".eco-serve"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Session state directory: request files and periodic \
             checkpoints live here, and a restarted daemon replays \
             whatever a dead one left behind.")
  in
  let db_serve_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"FILE"
          ~doc:
            "Shared performance database (single-writer locked).  A \
             corrupt file degrades the persistence tier (db: degraded in \
             status) instead of killing the daemon.")
  in
  let warm_start_arg =
    Arg.(
      value & flag
      & info [ "warm-start" ]
          ~doc:
            "Enable nearest-neighbor transfer seeding from the database.  \
             Off by default in the service: warm starts make answers \
             depend on what the store happens to contain.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 16
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint each session after every N fresh evaluations.")
  in
  let max_live_arg =
    Arg.(
      value & opt int 2
      & info [ "max-live" ] ~docv:"N"
          ~doc:"Tuning sessions interleaved concurrently (default 2).")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 8
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Sessions queued beyond the live limit before requests are \
             rejected with a typed busy error (default 8).")
  in
  let deadline_arg =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Default per-request wall deadline (0 = none); requests may \
             override with params.deadline_s.")
  in
  let watchdog_arg =
    Arg.(
      value & opt float 0.0
      & info [ "watchdog" ] ~docv:"SECS"
          ~doc:
            "Hung-batch watchdog: a measurement batch exceeding SECS \
             counts as a stall, retried with backoff and quarantined \
             after --watchdog-retries stalls (0 = off).")
  in
  let watchdog_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "watchdog-retries" ] ~docv:"N"
          ~doc:"Stalls tolerated before the session is quarantined.")
  in
  let progress_every_arg =
    Arg.(
      value & opt float 0.25
      & info [ "progress-every" ] ~docv:"SECS"
          ~doc:"Progress notification cadence (default 0.25s).")
  in
  let serve_faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Seeded service-level fault plan, e.g. \
             seed=7,hang=0.2,hang_s=0.05,disconnect=0.1,kill_after=12 — \
             injected hangs, client disconnects at progress events, and a \
             simulated SIGKILL (exit 9) at the Nth batch boundary.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the autotuning service: a crash-only daemon speaking \
          newline-delimited JSON-RPC on stdin/stdout that tunes \
          concurrently for many clients from one shared memo, trace cache \
          and performance database.")
    Term.(
      const serve $ machine_arg $ jobs_arg $ db_serve_arg $ warm_start_arg
      $ dir_arg $ checkpoint_every_arg $ max_live_arg $ max_queue_arg
      $ deadline_arg $ watchdog_arg $ watchdog_retries_arg
      $ progress_every_arg $ serve_faults_arg)

(* --- experiment --- *)

let experiment jobs names =
  let print = print_endline in
  match names with
  | [] -> Experiments.Run_all.run_everything ~print ~jobs ()
  | names -> List.iter (Experiments.Run_all.run ~print ~jobs) names

let experiment_cmd =
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Experiments to run (default: all). Known: %s."
               (String.concat ", " Experiments.Run_all.names)))
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's tables and figures (see EXPERIMENTS.md).")
    Term.(const experiment $ jobs_arg $ names_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "eco" ~version:"1.0"
       ~doc:
         "Reproduction of 'Combining Models and Guided Empirical Search to \
          Optimize for Multiple Levels of the Memory Hierarchy' (CGO 2005).")
    [
      describe_cmd; derive_cmd; tune_cmd; run_cmd; codegen_cmd; check_cmd;
      serve_cmd; experiment_cmd; db_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
