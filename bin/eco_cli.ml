(* Command-line driver for the ECO reproduction: inspect machines,
   derive variants, tune kernels, run experiments. *)

let kernels =
  [
    ("matmul", Kernels.Matmul.kernel);
    ("jacobi3d", Kernels.Jacobi3d.kernel);
    ("matvec", Kernels.Matvec.kernel);
    ("stencil2d", Kernels.Stencil2d.kernel);
    ("wavefront", Kernels.Wavefront.kernel);
  ]

let kernel_conv =
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) kernels with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown kernel %s (known: %s)" s
             (String.concat ", " (List.map fst kernels))))
  in
  let print fmt (k : Kernels.Kernel.t) =
    Format.pp_print_string fmt k.Kernels.Kernel.name
  in
  Cmdliner.Arg.conv (parse, print)

let machine_conv =
  let parse s =
    match Machine.by_name s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown machine %s (known: %s)" s
             (String.concat ", "
                (List.map (fun (m : Machine.t) -> m.Machine.name) Machine.all))))
  in
  let print fmt (m : Machine.t) = Format.pp_print_string fmt m.Machine.name in
  Cmdliner.Arg.conv (parse, print)

open Cmdliner

let machine_arg =
  Arg.(
    value
    & opt machine_conv Machine.sgi_r10000
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Target machine model (sgi, sun, generic).")

let kernel_arg =
  Arg.(
    value
    & opt kernel_conv Kernels.Matmul.kernel
    & info [ "k"; "kernel" ] ~docv:"KERNEL"
        ~doc:"Kernel to optimize (matmul, jacobi3d, matvec, stencil2d, wavefront).")

let size_arg default =
  Arg.(
    value & opt int default
    & info [ "n"; "size" ] ~docv:"N" ~doc:"Problem size.")

let budget_arg =
  Arg.(
    value & opt int 400_000
    & info [ "b"; "budget" ] ~docv:"FLOPS"
        ~doc:"Flop budget per simulated measurement (0 = full simulation).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Evaluate independent candidate batches on JOBS domains (0 = one \
           per core).  Results are identical at any value; only wall time \
           changes.")

let mode_of_budget b =
  if b <= 0 then Core.Executor.Full else Core.Executor.Budget b

let bindings_str bindings =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) bindings)

(* --- describe --- *)

let describe () =
  List.iter (fun m -> Format.printf "%a@." Machine.pp m) Machine.all;
  Format.printf "@.";
  List.iter
    (fun (_, (k : Kernels.Kernel.t)) ->
      Format.printf "%s: %s@.%a@." k.Kernels.Kernel.name
        k.Kernels.Kernel.description Ir.Program.pp k.Kernels.Kernel.program)
    kernels

let describe_cmd =
  Cmd.v
    (Cmd.info "describe" ~doc:"List machine models and kernels.")
    Term.(const describe $ const ())

(* --- derive --- *)

let derive machine kernel =
  let variants = Core.Derive.variants machine kernel in
  Format.printf "%d variants derived for %s on %s@.@." (List.length variants)
    kernel.Kernels.Kernel.name machine.Machine.name;
  List.iter
    (fun v ->
      Format.printf "%a" Core.Variant.pp v;
      List.iter
        (fun (l, loop, t, p, c) ->
          Format.printf "  %-4s %-3s %-34s %-10s %s@." l loop t p c)
        (Core.Variant.table_rows v);
      Format.printf "@.")
    variants

let derive_cmd =
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Phase 1: derive the parameterized variants for a kernel.")
    Term.(const derive $ machine_arg $ kernel_arg)

(* --- tune --- *)

let tune machine kernel n budget jobs =
  let mode = mode_of_budget budget in
  let r = Core.Eco.optimize ~mode ~jobs machine kernel ~n in
  let o = r.Core.Eco.outcome in
  Format.printf "best variant: %s@." o.Core.Search.variant.Core.Variant.name;
  Format.printf "parameters:   %s@." (bindings_str o.Core.Search.bindings);
  Format.printf "prefetch:     %s@."
    (if o.Core.Search.prefetch = [] then "(none)"
     else bindings_str o.Core.Search.prefetch);
  Format.printf "performance:  %.1f MFLOPS (peak %.0f)@."
    r.Core.Eco.measurement.Core.Executor.mflops
    (Machine.peak_mflops machine);
  Format.printf "search:       %d points, %.2fs wall@."
    (Core.Search_log.points r.Core.Eco.log)
    (Core.Search_log.seconds r.Core.Eco.log);
  Format.printf "engine:       %a (%d jobs)@." Core.Engine.pp_stats
    (Core.Engine.stats r.Core.Eco.engine)
    (Core.Engine.jobs r.Core.Eco.engine);
  Format.printf "@.optimized code:@.%a" Ir.Program.pp o.Core.Search.program

let tune_cmd =
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Run the full two-phase ECO optimization for a kernel.")
    Term.(
      const tune $ machine_arg $ kernel_arg $ size_arg 256 $ budget_arg
      $ jobs_arg)

(* --- run (single measurement of the original kernel) --- *)

let run_orig machine kernel n budget =
  let mode = mode_of_budget budget in
  let engine = Core.Engine.create machine in
  let m =
    Core.Engine.measure_program engine kernel ~n ~mode
      kernel.Kernels.Kernel.program
  in
  Format.printf "%s n=%d on %s (untransformed): %.1f MFLOPS@."
    kernel.Kernels.Kernel.name n machine.Machine.name m.Core.Executor.mflops;
  Format.printf "%a@." Memsim.Cost.pp m.Core.Executor.cost

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Measure the untransformed kernel (baseline).")
    Term.(const run_orig $ machine_arg $ kernel_arg $ size_arg 256 $ budget_arg)

(* --- codegen --- *)

let codegen machine kernel n budget jobs fortran =
  let mode = mode_of_budget budget in
  let r = Core.Eco.optimize ~mode ~jobs machine kernel ~n in
  let program = r.Core.Eco.outcome.Core.Search.program in
  if fortran then print_string (Ir.Codegen_f90.file program)
  else print_string (Ir.Codegen_c.file program)

let codegen_cmd =
  let fortran_arg =
    Arg.(
      value & flag
      & info [ "f90"; "fortran" ]
          ~doc:"Emit Fortran 90 (the paper's output language) instead of C.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:
         "Tune a kernel and emit the optimized version as a compilable C \
          (or Fortran 90) function on stdout.")
    Term.(
      const codegen $ machine_arg $ kernel_arg $ size_arg 256 $ budget_arg
      $ jobs_arg $ fortran_arg)

(* --- experiment --- *)

let experiment jobs names =
  let print = print_endline in
  match names with
  | [] -> Experiments.Run_all.run_everything ~print ~jobs ()
  | names -> List.iter (Experiments.Run_all.run ~print ~jobs) names

let experiment_cmd =
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Experiments to run (default: all). Known: %s."
               (String.concat ", " Experiments.Run_all.names)))
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's tables and figures (see EXPERIMENTS.md).")
    Term.(const experiment $ jobs_arg $ names_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "eco" ~version:"1.0"
       ~doc:
         "Reproduction of 'Combining Models and Guided Empirical Search to \
          Optimize for Multiple Levels of the Memory Hierarchy' (CGO 2005).")
    [ describe_cmd; derive_cmd; tune_cmd; run_cmd; codegen_cmd; experiment_cmd ]

let () = exit (Cmd.eval main_cmd)
