(* A polynomial is a sorted association list from monomials (sorted
   variable multisets) to non-zero integer coefficients. *)

type mono = string list

type t = (mono * int) list

let mono_compare = compare

let normalize terms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (m, c) ->
      let m = List.sort String.compare m in
      let prev = try Hashtbl.find tbl m with Not_found -> 0 in
      Hashtbl.replace tbl m (prev + c))
    terms;
  Hashtbl.fold (fun m c acc -> if c = 0 then acc else (m, c) :: acc) tbl []
  |> List.sort (fun (m1, _) (m2, _) -> mono_compare m1 m2)

let zero = []
let const c = if c = 0 then [] else [ ([], c) ]
let one = const 1
let var x = [ ([ x ], 1) ]
let add a b = normalize (a @ b)
let scale k p = if k = 0 then [] else List.map (fun (m, c) -> (m, k * c)) p
let sub a b = add a (scale (-1) b)

let mul a b =
  normalize
    (List.concat_map
       (fun (m1, c1) -> List.map (fun (m2, c2) -> (m1 @ m2, c1 * c2)) b)
       a)

let add_const p k = add p (const k)

let of_aff a =
  let terms = List.map (fun (c, x) -> ([ x ], c)) (Ir.Aff.terms a) in
  normalize ((([], Ir.Aff.const_part a)) :: terms)

let is_const = function
  | [] -> Some 0
  | [ ([], c) ] -> Some c
  | _ -> None

let vars p =
  List.sort_uniq String.compare (List.concat_map (fun (m, _) -> m) p)

let eval lookup p =
  List.fold_left
    (fun acc (m, c) ->
      acc + (c * List.fold_left (fun prod x -> prod * lookup x) 1 m))
    0 p

let monomials p = List.map (fun (m, c) -> (c, m)) p
let equal a b = a = b
let compare = Stdlib.compare

let pp fmt p =
  let pp_mono fmt m =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt "*")
      Format.pp_print_string fmt m
  in
  match p with
  | [] -> Format.fprintf fmt "0"
  | terms ->
    List.iteri
      (fun i (m, c) ->
        let sign_prefix =
          if i = 0 then if c < 0 then "-" else ""
          else if c < 0 then " - "
          else " + "
        in
        let c = abs c in
        match m with
        | [] -> Format.fprintf fmt "%s%d" sign_prefix c
        | _ when c = 1 -> Format.fprintf fmt "%s%a" sign_prefix pp_mono m
        | _ -> Format.fprintf fmt "%s%d*%a" sign_prefix c pp_mono m)
      terms

let to_string p = Format.asprintf "%a" pp p
