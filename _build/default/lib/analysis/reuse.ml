type group = {
  array : string;
  signature : Ir.Aff.t list;
  members : (Ir.Reference.t * bool) list;
}

let groups_of_body body =
  let accesses = Ir.Stmt.access_refs body in
  let table : (string * Ir.Aff.t list, (Ir.Reference.t * bool) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun (r, w) ->
      let key = (r.Ir.Reference.array, Ir.Reference.coeff_signature r) in
      match Hashtbl.find_opt table key with
      | Some members -> members := (r, w) :: !members
      | None ->
        Hashtbl.add table key (ref [ (r, w) ]);
        order := key :: !order)
    accesses;
  List.rev_map
    (fun ((array, signature) as key) ->
      { array; signature; members = List.rev !(Hashtbl.find table key) })
    !order

let self_temporal r v = not (Ir.Reference.mem v r)

let self_spatial (r : Ir.Reference.t) v =
  match r.Ir.Reference.idx with
  | [] -> false
  | dim0 :: rest ->
    abs (Ir.Aff.coeff dim0 v) = 1 && not (List.exists (Ir.Aff.mem v) rest)

(* Coefficients of [v] per signature dimension. *)
let coeffs_of g v = List.map (fun s -> Ir.Aff.coeff s v) g.signature

(* Offsets of a member per dimension. *)
let offsets (r, _) = Ir.Reference.offsets r

(* Does some other (or, for invariant coefficients, the same) member touch
   member [m]'s element [d] iterations earlier, for a small [d]? *)
let reused_within ~window g coeffs m =
  let off_m = offsets m in
  let invariant = List.for_all (( = ) 0) coeffs in
  if invariant then true
  else
    List.exists
      (fun m' ->
        m' != m
        &&
        let off' = offsets m' in
        let rec matches d =
          d <= window
          && (List.for_all2
                (fun (o, o') c -> o' - o = c * d)
                (List.combine off_m off')
                coeffs
             || matches (d + 1))
        in
        matches 1)
      g.members

let group_temporal_savings g v =
  let coeffs = coeffs_of g v in
  (* A dimension mixing [v] with other variables defeats the uniform
     analysis: claim no loop-carried reuse (conservative). *)
  let mixed =
    List.exists2
      (fun s c -> c <> 0 && List.length (Ir.Aff.vars s) > 1)
      g.signature coeffs
  in
  if mixed then 0
  else
    List.fold_left
      (fun acc m -> if reused_within ~window:4 g coeffs m then acc + 1 else acc)
      0 g.members

let loop_temporal_savings groups v =
  List.fold_left (fun acc g -> acc + group_temporal_savings g v) 0 groups

let loop_spatial_score groups v =
  List.fold_left
    (fun acc g ->
      acc
      + List.fold_left
          (fun acc (r, _) -> if self_spatial r v then acc + 1 else acc)
          0 g.members)
    0 groups

let register_retainable g ~rotation =
  let coeffs = coeffs_of g rotation in
  let invariant = List.for_all (( = ) 0) coeffs in
  if invariant then g.members
  else
    List.filter
      (fun m ->
        let off_m = offsets m in
        List.exists
          (fun m' ->
            m' != m
            &&
            let off' = offsets m' in
            (* Offset difference must be a (non-zero) multiple of the
               rotation coefficients in every dimension. *)
            let rec multiple d =
              d <= 4
              && (List.for_all2
                    (fun (o, o') c -> abs (o' - o) = abs (c * d))
                    (List.combine off_m off')
                    coeffs
                 || multiple (d + 1))
            in
            multiple 1)
          g.members)
      g.members

let pp_group fmt g =
  Format.fprintf fmt "%s{%s}" g.array
    (String.concat "; "
       (List.map
          (fun (r, w) ->
            Printf.sprintf "%s%s" (Ir.Reference.to_string r) (if w then "!" else ""))
          g.members))
