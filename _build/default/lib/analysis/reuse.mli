(** Reuse analysis in the style of Wolf & Lam, as used by the paper's
    phase 1 (§3.1.1): classify self/group × temporal/spatial reuse and
    quantify, per loop, the memory accesses saved by keeping the reused
    data in a level of the memory hierarchy. *)

(** References with identical linear index parts (same array), differing
    only in constant offsets: the unit of group reuse.  [members] pairs
    each reference with whether it is a write. *)
type group = {
  array : string;
  signature : Ir.Aff.t list;  (** linear parts, constants stripped *)
  members : (Ir.Reference.t * bool) list;
}

(** Partition the accesses of a program body into uniform groups. *)
val groups_of_body : Ir.Stmt.t list -> group list

(** [self_temporal r v]: [r] touches the same element across iterations
    of [v] (i.e. [v] does not appear in [r]'s indices). *)
val self_temporal : Ir.Reference.t -> string -> bool

(** [self_spatial r v]: consecutive iterations of [v] walk the
    fastest-varying dimension with unit stride (and [v] appears nowhere
    else). *)
val self_spatial : Ir.Reference.t -> string -> bool

(** Loop-carried accesses saved per iteration of [v] by exploiting the
    group's temporal reuse: invariant members count fully, members
    sharing elements across iterations (constant offsets along [v]) count
    minus the fresh element each iteration brings in.  Loop-independent
    (same-iteration) reuse is excluded — it does not depend on loop
    order. *)
val group_temporal_savings : group -> string -> int

(** Sum of {!group_temporal_savings} over all groups. *)
val loop_temporal_savings : group list -> string -> int

(** Number of references with self-spatial reuse in [v]. *)
val loop_spatial_score : group list -> string -> int

(** Members of the group that a register-level scalar replacement can
    retain when [rotation] is the innermost loop variable: those whose
    offsets differ from some other member only along the rotation
    dimension (plus invariant members).  For the paper's Jacobi this is
    the {i B[I-1], B[I+1]} chain; halo references are excluded. *)
val register_retainable : group -> rotation:string -> (Ir.Reference.t * bool) list

val pp_group : Format.formatter -> group -> unit
