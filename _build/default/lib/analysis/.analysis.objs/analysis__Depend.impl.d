lib/analysis/depend.ml: Format Ir List Printf String
