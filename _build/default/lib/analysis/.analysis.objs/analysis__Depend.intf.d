lib/analysis/depend.mli: Format Ir
