lib/analysis/poly.mli: Format Ir
