lib/analysis/reuse.ml: Format Hashtbl Ir List Printf String
