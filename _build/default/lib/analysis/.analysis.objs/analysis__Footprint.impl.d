lib/analysis/footprint.ml: Ir List Poly Reuse
