lib/analysis/poly.ml: Format Hashtbl Ir List Stdlib String
