lib/analysis/reuse.mli: Format Ir
