lib/analysis/footprint.mli: Ir Poly Reuse
