(** Symbolic footprint analysis: how many array elements (or pages) a set
    of references touches during one iteration of a reuse-carrying loop,
    as a polynomial in the tile/unroll parameters.

    Per uniform group and dimension, the extent is
    [sum_v |coeff_v| * (extent_v - 1) + offset_span + 1]; the footprint
    of the group is the product of its dimension extents, and footprints
    of distinct groups add.  Instantiated with tile parameters this
    yields exactly the constraints of the paper's Table 4
    (e.g. B's tile: [TJ*TK]). *)

(** Extent (trip count) of each loop variable as seen by the footprint:
    a symbolic parameter (tile size, unroll factor), the problem size, or
    1 for loops not enclosing the reference at this level. *)
type extents = string -> Poly.t

val extent_one : extents

(** [of_extent_list l] builds extents from an association list; unlisted
    variables get extent 1. *)
val of_extent_list : (string * Poly.t) list -> extents

(** Elements touched by the group during one iteration of the enclosing
    reuse loop, given the inner extents. *)
val group_elements : extents -> Reuse.group -> Poly.t

(** Elements touched by a single reference. *)
val ref_elements : extents -> Ir.Reference.t -> Poly.t

(** Sum over groups. *)
val elements : extents -> Reuse.group list -> Poly.t

(** Number of distinct contiguous runs the group touches: the product of
    the dimension extents beyond the fastest dimension.  Used with
    {!group_elements} to bound the TLB (page) footprint. *)
val group_runs : extents -> Reuse.group -> Poly.t

(** Memory pages touched by a group, for concrete parameter values
    [lookup]: contiguous dimension prefixes fold into runs, each run
    costs [ceil (run / page_elems)] pages (plus one for misalignment
    when there are several runs).  [array_dims] gives the concrete
    dimension sizes of the group's array.  Used for the TLB-footprint
    constraint and tile-controlling-loop ordering. *)
val pages :
  page_elems:int ->
  array_dims:int list ->
  lookup:(string -> int) ->
  extents ->
  Reuse.group ->
  int
