type extents = string -> Poly.t

let extent_one _ = Poly.one

let of_extent_list l v =
  match List.assoc_opt v l with Some p -> p | None -> Poly.one

(* Extent of one dimension of a group: the linear part contributes
   |coeff| * (extent - 1) per variable; the constant offsets of the
   members contribute their span; plus 1 for the base element. *)
let dim_extent extents signature_dim offsets_dim =
  let from_vars =
    List.fold_left
      (fun acc (c, v) ->
        Poly.add acc (Poly.scale (abs c) (Poly.add_const (extents v) (-1))))
      Poly.zero
      (Ir.Aff.terms signature_dim)
  in
  let span =
    match offsets_dim with
    | [] -> 0
    | o :: rest ->
      let mn = List.fold_left min o rest and mx = List.fold_left max o rest in
      mx - mn
  in
  Poly.add_const from_vars (span + 1)

let group_dim_offsets (g : Reuse.group) =
  (* Transpose member offsets: per dimension, the list of constant
     offsets across members. *)
  let member_offsets =
    List.map (fun (r, _) -> Ir.Reference.offsets r) g.Reuse.members
  in
  match member_offsets with
  | [] -> []
  | first :: _ ->
    List.mapi (fun d _ -> List.map (fun off -> List.nth off d) member_offsets) first

let group_elements extents (g : Reuse.group) =
  let offsets = group_dim_offsets g in
  List.fold_left2
    (fun acc sig_dim off_dim -> Poly.mul acc (dim_extent extents sig_dim off_dim))
    Poly.one g.Reuse.signature offsets

let ref_elements extents (r : Ir.Reference.t) =
  group_elements extents
    {
      Reuse.array = r.Ir.Reference.array;
      signature = Ir.Reference.coeff_signature r;
      members = [ (r, false) ];
    }

let group_runs extents (g : Reuse.group) =
  match (g.Reuse.signature, group_dim_offsets g) with
  | [], _ | _, [] -> Poly.one
  | _ :: sig_rest, _ :: off_rest ->
    List.fold_left2
      (fun acc sig_dim off_dim -> Poly.mul acc (dim_extent extents sig_dim off_dim))
      Poly.one sig_rest off_rest

let elements extents groups =
  List.fold_left (fun acc g -> Poly.add acc (group_elements extents g)) Poly.zero
    groups

let pages ~page_elems ~array_dims ~lookup extents (g : Reuse.group) =
  let offsets = group_dim_offsets g in
  let extent_ints =
    List.map2
      (fun sig_dim off_dim -> Poly.eval lookup (dim_extent extents sig_dim off_dim))
      g.Reuse.signature offsets
  in
  (* Fold contiguous full-dimension prefixes into runs. *)
  let rec fold run segments prefix_full extents_dims =
    match extents_dims with
    | [] -> (run, segments)
    | (e, s) :: rest ->
      if prefix_full then fold (run * e) segments (e >= s) rest
      else fold run (segments * e) false rest
  in
  let run, segments = fold 1 1 true (List.combine extent_ints array_dims) in
  let pages_per_run = (run + page_elems - 1) / page_elems in
  let misalign = if segments > 1 || run mod page_elems <> 0 then 1 else 0 in
  segments * (pages_per_run + misalign)
