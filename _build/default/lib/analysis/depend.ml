type dir = Dist of int | Plus | Star

type kind = Flow | Anti | Output

type t = {
  kind : kind;
  array : string;
  dirs : (string * dir) list;
}

(* Per-variable entry before orientation: either a constrained exact
   distance or a free variable (absent from both references). *)
type entry = Constrained of int | Free

(* Solve, per loop variable, the distance implied by the offset deltas of
   a uniform pair.  [None] = no dependence possible. *)
let entries_of_pair ~loop_order (src : Ir.Reference.t) (dst : Ir.Reference.t) =
  let sig_src = Ir.Reference.coeff_signature src in
  let sig_dst = Ir.Reference.coeff_signature dst in
  if not (List.for_all2 Ir.Aff.equal sig_src sig_dst) then
    (* Non-uniform pair: unknown in every loop. *)
    Some (List.map (fun _ -> Free) loop_order, true)
  else
    let deltas =
      List.map2
        (fun a b -> Ir.Aff.const_part b - Ir.Aff.const_part a)
        src.Ir.Reference.idx dst.Ir.Reference.idx
    in
    (* For each variable: collect the constraints [c * d = delta] from
       every dimension that mentions it alone; dimensions mixing several
       variables make the variable unknown (conservative). *)
    let exception No_dependence in
    let entry v =
      let constraints =
        List.filter_map
          (fun (sig_dim, delta) ->
            let c = Ir.Aff.coeff sig_dim v in
            if c = 0 then None
            else if List.length (Ir.Aff.vars sig_dim) = 1 then Some (c, delta)
            else Some (0, delta) (* mixed dimension: mark unknown *))
          (List.combine sig_src deltas)
      in
      if constraints = [] then Free
      else if List.exists (fun (c, _) -> c = 0) constraints then Free
      else
        let solve (c, delta) =
          if delta mod c <> 0 then raise No_dependence else delta / c
        in
        match List.map solve constraints with
        | [] -> Free
        | d :: rest ->
          if List.for_all (fun d' -> d' = d) rest then Constrained d
          else raise No_dependence
    in
    (try Some (List.map entry loop_order, false) with No_dependence -> None)

(* All lexicographically positive direction vectors compatible with the
   entries.  Constrained components keep their exact distance; free
   components enumerate the positions at which the vector first becomes
   positive. *)
let rec positive_vectors entries =
  match entries with
  | [] -> []
  | Constrained d :: rest ->
    if d > 0 then [ Dist d :: List.map always_star rest ]
    else if d < 0 then []
    else List.map (fun v -> Dist 0 :: v) (positive_vectors rest)
  | Free :: rest ->
    (Plus :: List.map always_star rest)
    :: List.map (fun v -> Dist 0 :: v) (positive_vectors rest)

and always_star = function Constrained d -> Dist d | Free -> Star

let classify ~src_write ~dst_write =
  match (src_write, dst_write) with
  | true, false -> Flow
  | false, true -> Anti
  | true, true -> Output
  | false, false -> assert false

let analyze (p : Ir.Program.t) =
  let loop_order = Ir.Stmt.loop_vars p.Ir.Program.body in
  let accesses = Ir.Stmt.access_refs p.Ir.Program.body in
  let deps = ref [] in
  let add kind array dirs = deps := { kind; array; dirs } :: !deps in
  let consider (src, src_write) (dst, dst_write) =
    if
      src.Ir.Reference.array = dst.Ir.Reference.array
      && (src_write || dst_write)
      && Ir.Reference.rank src = Ir.Reference.rank dst
    then
      match entries_of_pair ~loop_order src dst with
      | None -> ()
      | Some (entries, _unknown) ->
        List.iter
          (fun vec ->
            add
              (classify ~src_write ~dst_write)
              src.Ir.Reference.array
              (List.combine loop_order vec))
          (positive_vectors entries)
  in
  List.iter
    (fun a1 -> List.iter (fun a2 -> consider a1 a2) accesses)
    accesses;
  (* Deduplicate structurally. *)
  List.sort_uniq compare !deps

let vector_nonnegative dirs_in_order =
  let rec go = function
    | [] -> true (* all zero: loop independent, fine *)
    | Dist 0 :: rest -> go rest
    | Dist d :: _ -> d > 0
    | Plus :: _ -> true
    | Star :: _ -> false
  in
  go dirs_in_order

let permutation_legal deps order =
  List.for_all
    (fun dep ->
      let reordered =
        List.map
          (fun v ->
            match List.assoc_opt v dep.dirs with
            | Some d -> d
            | None -> Dist 0)
          order
      in
      vector_nonnegative reordered)
    deps

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))
      l

let fully_permutable deps =
  match deps with
  | [] -> true
  | { dirs; _ } :: _ ->
    let vars = List.map fst dirs in
    List.for_all (permutation_legal deps) (permutations vars)

let innermost_legal deps ~order var =
  let new_order = List.filter (( <> ) var) order @ [ var ] in
  permutation_legal deps new_order

let dir_string = function
  | Dist d -> string_of_int d
  | Plus -> "+"
  | Star -> "*"

let kind_string = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

let pp fmt t =
  Format.fprintf fmt "%s dep on %s (%s)" (kind_string t.kind) t.array
    (String.concat ", "
       (List.map (fun (v, d) -> Printf.sprintf "%s:%s" v (dir_string d)) t.dirs))
