(** Data-dependence analysis for uniform (constant-distance) references,
    producing direction vectors used to check the legality of loop
    permutation, tiling and unroll-and-jam.

    Two references are {e uniform} when their index expressions have
    identical linear parts and differ only by constants — true of all
    dense-kernel pairs the paper considers.  Non-uniform pairs yield a
    fully unknown vector, which conservatively blocks reordering. *)

type dir =
  | Dist of int  (** exact dependence distance for this loop *)
  | Plus  (** some positive distance *)
  | Star  (** unknown — any distance *)

type kind = Flow | Anti | Output

type t = {
  kind : kind;
  array : string;
  dirs : (string * dir) list;
      (** one entry per loop variable, outermost first; the vector is
          lexicographically positive *)
}

(** All loop-carried dependences of the program's body.  Loop order is
    the syntactic nesting order.  Loop-independent (all-zero)
    dependences are omitted — they constrain statement order, not loop
    reordering. *)
val analyze : Ir.Program.t -> t list

(** [permutation_legal deps order] checks that every dependence vector
    remains lexicographically non-negative under the new loop [order]
    (outermost first; must be a permutation of the analyzed loops). *)
val permutation_legal : t list -> string list -> bool

(** All orders legal — the precondition for rectangular tiling of the
    whole band. *)
val fully_permutable : t list -> bool

(** Legality of moving [var] innermost while keeping the relative order
    of the others — the condition for unroll-and-jam of an outer loop. *)
val innermost_legal : t list -> order:string list -> string -> bool

val pp : Format.formatter -> t -> unit
