(** Polynomials with integer coefficients over named parameters (tile
    sizes, unroll factors, problem sizes).  Footprint analysis produces
    these, and the capacity constraints attached to code variants bound
    them (e.g. [TJ*TK <= 2048] in the paper's Table 4). *)

type t

val zero : t
val one : t
val const : int -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : int -> t -> t
val add_const : t -> int -> t

(** [of_aff a] converts an affine expression (all of whose variables are
    parameters). *)
val of_aff : Ir.Aff.t -> t

val is_const : t -> int option
val vars : t -> string list
val eval : (string -> int) -> t -> int

(** Monomials as [(coefficient, sorted variable multiset)]. *)
val monomials : t -> (int * string list) list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
