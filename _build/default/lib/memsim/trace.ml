(* Events are packed as [addr lsl 2 lor tag] in a growable int array. *)

let tag_load = 0
let tag_store = 1
let tag_prefetch = 2

type t = {
  mutable buf : int array;
  mutable len : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_prefetches : int;
}

let create () =
  { buf = Array.make 4096 0; len = 0; n_loads = 0; n_stores = 0; n_prefetches = 0 }

let push t v =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- v;
  t.len <- t.len + 1

let sink t =
  {
    Ir.Sink.load =
      (fun addr ->
        t.n_loads <- t.n_loads + 1;
        push t ((addr lsl 2) lor tag_load));
    Ir.Sink.store =
      (fun addr ->
        t.n_stores <- t.n_stores + 1;
        push t ((addr lsl 2) lor tag_store));
    Ir.Sink.prefetch =
      (fun addr ->
        t.n_prefetches <- t.n_prefetches + 1;
        push t ((addr lsl 2) lor tag_prefetch));
  }

let tee a b =
  {
    Ir.Sink.load =
      (fun addr ->
        a.Ir.Sink.load addr;
        b.Ir.Sink.load addr);
    Ir.Sink.store =
      (fun addr ->
        a.Ir.Sink.store addr;
        b.Ir.Sink.store addr);
    Ir.Sink.prefetch =
      (fun addr ->
        a.Ir.Sink.prefetch addr;
        b.Ir.Sink.prefetch addr);
  }

let length t = t.len
let loads t = t.n_loads
let stores t = t.n_stores
let prefetches t = t.n_prefetches

let replay t (sink : Ir.Sink.t) =
  for i = 0 to t.len - 1 do
    let v = t.buf.(i) in
    let addr = v lsr 2 in
    match v land 3 with
    | 0 -> sink.Ir.Sink.load addr
    | 1 -> sink.Ir.Sink.store addr
    | _ -> sink.Ir.Sink.prefetch addr
  done

let of_program ~params program =
  let t = create () in
  ignore (Ir.Exec.run ~sink:(sink t) ~params program);
  t

let misses_under t geometry =
  let cache = Cache.create geometry in
  let accesses = ref 0 and misses = ref 0 in
  let touch addr =
    incr accesses;
    let line = Cache.line_of_addr cache addr in
    match Cache.lookup cache ~now:0 ~line with
    | Cache.Hit _ -> ()
    | Cache.Miss ->
      incr misses;
      ignore (Cache.insert cache ~now:0 ~ready:0 ~dirty:false ~line)
  in
  replay t
    { Ir.Sink.load = touch; Ir.Sink.store = touch; Ir.Sink.prefetch = ignore };
  (!accesses, !misses)
