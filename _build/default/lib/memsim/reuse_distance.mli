(** LRU stack (reuse) distance analysis of an address stream.

    The reuse distance of an access is the number of {e distinct} lines
    touched since the previous access to the same line (infinity for
    first touches).  Classic result: a fully associative LRU cache of
    capacity [C] lines hits exactly the accesses with distance < [C] —
    which makes this module an independent oracle for testing the cache
    simulator, and a capacity-vs-conflict miss classifier for the
    analyses. *)

type t

(** [create ~line_bytes ()] processes addresses at line granularity. *)
val create : ?line_bytes:int -> unit -> t

(** Feed one byte address. *)
val access : t -> int -> unit

(** A {!Ir.Sink.t} that feeds loads and stores (prefetches ignored). *)
val sink : t -> Ir.Sink.t

(** Number of accesses with finite reuse distance [< c]; with
    [infinite] first touches, [hits_at c + misses_at c = total]. *)
val hits_at : t -> int -> int

val misses_at : t -> int -> int
val total : t -> int

(** First touches (compulsory misses at any capacity). *)
val cold : t -> int

(** Histogram as [(distance_bucket_upper_bound, count)] pairs in
    power-of-two buckets, cold misses excluded. *)
val histogram : t -> (int * int) list

(** Smallest power-of-two capacity (in lines) at which the miss ratio
    (excluding cold misses) drops below [threshold]. *)
val working_set : t -> threshold:float -> int
