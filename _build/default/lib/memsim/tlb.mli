(** Translation lookaside buffer: fully associative with FIFO
    replacement (a good match for the R10000's random-replacement TLB at
    the granularity our experiments observe), with a one-entry MRU fast
    path. *)

type t

val create : Machine.tlb -> t
val page_bytes : t -> int
val page_of_addr : t -> int -> int

(** [access t ~page] is [true] on a hit; on a miss the page is brought
    in, evicting the oldest entry when full. *)
val access : t -> page:int -> bool

(** [probe t ~page] checks residency without installing on a miss (used
    for prefetches, which the R10000 drops on a TLB miss). *)
val probe : t -> page:int -> bool

val reset : t -> unit
val occupancy : t -> int
