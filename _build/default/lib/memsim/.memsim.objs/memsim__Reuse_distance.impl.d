lib/memsim/reuse_distance.ml: Array Hashtbl Ir List
