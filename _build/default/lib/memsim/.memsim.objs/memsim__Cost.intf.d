lib/memsim/cost.mli: Counters Format Ir Machine
