lib/memsim/classify.mli: Format Ir Machine
