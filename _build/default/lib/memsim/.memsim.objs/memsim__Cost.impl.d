lib/memsim/cost.ml: Counters Float Format Ir Machine
