lib/memsim/classify.ml: Cache Format Ir Machine Reuse_distance
