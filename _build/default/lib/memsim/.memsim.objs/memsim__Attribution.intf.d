lib/memsim/attribution.mli: Ir Machine
