lib/memsim/tlb.mli: Machine
