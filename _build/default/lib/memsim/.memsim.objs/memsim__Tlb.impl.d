lib/memsim/tlb.ml: Array Hashtbl Machine
