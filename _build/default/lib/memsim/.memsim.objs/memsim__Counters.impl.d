lib/memsim/counters.ml: Array Format
