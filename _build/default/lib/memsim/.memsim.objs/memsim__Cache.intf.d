lib/memsim/cache.mli: Machine
