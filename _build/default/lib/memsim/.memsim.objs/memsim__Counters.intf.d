lib/memsim/counters.mli: Format
