lib/memsim/trace.ml: Array Cache Ir
