lib/memsim/hierarchy.ml: Array Cache Counters Ir List Machine Tlb
