lib/memsim/cache.ml: Array Machine Printf
