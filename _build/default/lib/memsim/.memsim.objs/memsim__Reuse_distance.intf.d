lib/memsim/reuse_distance.mli: Ir
