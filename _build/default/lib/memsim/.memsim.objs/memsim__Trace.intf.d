lib/memsim/trace.mli: Ir Machine
