lib/memsim/hierarchy.mli: Cache Counters Ir Machine Tlb
