lib/memsim/attribution.ml: Array Cache Ir List Machine
