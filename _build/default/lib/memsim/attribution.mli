(** Per-array miss attribution: replay an address stream through one
    cache level and charge each miss to the array whose address range it
    falls in — the per-structure view behind statements like the paper's
    "exploiting the reuse of B(K,J)" (§2) that aggregate hardware
    counters cannot give. *)

type stats = { accesses : int; misses : int }

type t

(** [create geometry ~regions] with [regions] as
    [(name, first_byte, bytes)]. *)
val create : Machine.cache -> regions:(string * int * int) list -> t

val access : t -> int -> unit
val sink : t -> Ir.Sink.t

(** Stats per region, in registration order; accesses outside every
    region are accumulated under ["<other>"] (only if any occurred). *)
val report : t -> (string * stats) list

(** Regions of a program's heap arrays (from the executor's
    deterministic layout). *)
val regions_of_program :
  params:(string * int) list -> Ir.Program.t -> (string * int * int) list

(** Run a program and attribute its misses at cache [level]. *)
val of_program :
  Machine.t ->
  level:int ->
  params:(string * int) list ->
  Ir.Program.t ->
  (string * stats) list
