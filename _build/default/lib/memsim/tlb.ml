type t = {
  entries : int;
  page_bytes : int;
  page_shift : int;
  slots : int array;  (* ring buffer of resident pages; -1 = empty *)
  table : (int, int) Hashtbl.t;  (* page -> slot *)
  mutable next : int;
  mutable last_page : int;  (* MRU fast path *)
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (g : Machine.tlb) =
  {
    entries = g.Machine.entries;
    page_bytes = g.Machine.page_bytes;
    page_shift = log2 g.Machine.page_bytes;
    slots = Array.make g.Machine.entries (-1);
    table = Hashtbl.create (2 * g.Machine.entries);
    next = 0;
    last_page = -1;
  }

let page_bytes t = t.page_bytes
let page_of_addr t addr = addr lsr t.page_shift

let access t ~page =
  if page = t.last_page then true
  else if Hashtbl.mem t.table page then begin
    t.last_page <- page;
    true
  end
  else begin
    let victim = t.slots.(t.next) in
    if victim <> -1 then Hashtbl.remove t.table victim;
    t.slots.(t.next) <- page;
    Hashtbl.replace t.table page t.next;
    t.next <- (t.next + 1) mod t.entries;
    t.last_page <- page;
    false
  end

let probe t ~page = page = t.last_page || Hashtbl.mem t.table page

let reset t =
  Array.fill t.slots 0 t.entries (-1);
  Hashtbl.reset t.table;
  t.next <- 0;
  t.last_page <- -1

let occupancy t = Hashtbl.length t.table
