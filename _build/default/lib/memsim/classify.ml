type report = {
  accesses : int;
  compulsory : int;
  capacity : int;
  conflict : int;
  real_misses : int;
  fa_misses : int;
}

type t = {
  real : Cache.t;
  rd : Reuse_distance.t;  (* oracle for the fully associative cache *)
  capacity_lines : int;
  mutable accesses : int;
  mutable real_misses : int;
}

let create (g : Machine.cache) =
  {
    real = Cache.create g;
    rd = Reuse_distance.create ~line_bytes:g.Machine.line_bytes ();
    capacity_lines = g.Machine.size_bytes / g.Machine.line_bytes;
    accesses = 0;
    real_misses = 0;
  }

let access t addr =
  t.accesses <- t.accesses + 1;
  let line = Cache.line_of_addr t.real addr in
  (match Cache.lookup t.real ~now:0 ~line with
  | Cache.Hit _ -> ()
  | Cache.Miss ->
    t.real_misses <- t.real_misses + 1;
    ignore (Cache.insert t.real ~now:0 ~ready:0 ~dirty:false ~line));
  Reuse_distance.access t.rd addr

let sink t =
  {
    Ir.Sink.load = (fun addr -> access t addr);
    Ir.Sink.store = (fun addr -> access t addr);
    Ir.Sink.prefetch = ignore;
  }

let report t =
  let compulsory = Reuse_distance.cold t.rd in
  let fa_misses = Reuse_distance.misses_at t.rd t.capacity_lines in
  let capacity =
    max 0 (min (fa_misses - compulsory) (t.real_misses - compulsory))
  in
  let conflict = max 0 (t.real_misses - fa_misses) in
  {
    accesses = t.accesses;
    compulsory;
    capacity;
    conflict;
    real_misses = t.real_misses;
    fa_misses;
  }

let of_program machine ~level ~params program =
  let t = create (Machine.cache_level machine level) in
  ignore (Ir.Exec.run ~sink:(sink t) ~params program);
  report t

let pp fmt (r : report) =
  Format.fprintf fmt
    "%d accesses: %d misses (%d compulsory, %d capacity, %d conflict)"
    r.accesses r.real_misses r.compulsory r.capacity r.conflict
