(** Miss classification: split a cache level's misses into compulsory,
    capacity and conflict components by simulating the same address
    stream through (a) the real set-associative cache, (b) a fully
    associative LRU cache of equal capacity, and (c) reuse-distance
    analysis (for compulsory misses).

    Conflict misses — misses of the real cache that the fully
    associative one avoids — are the phenomenon the paper's copy
    optimization removes, and the reason the native compiler's Matrix
    Multiply collapses at pathological sizes (§4.1). *)

type report = {
  accesses : int;
  compulsory : int;  (** first touches *)
  capacity : int;
      (** fully-associative LRU misses beyond compulsory, clamped to the
          real cache's non-compulsory misses: when the working set sits
          just above capacity, FA-LRU thrashes everything while the
          set-indexed cache retains part of it (the "LRU cliff"), and the
          unclamped value would exceed the real miss count *)
  conflict : int;  (** real-cache misses beyond fully-associative *)
  real_misses : int;
  fa_misses : int;  (** raw fully-associative misses (incl. compulsory) *)
}

type t

(** [create cache_geometry] builds a classifier for one cache level. *)
val create : Machine.cache -> t

val access : t -> int -> unit
val sink : t -> Ir.Sink.t
val report : t -> report

(** Convenience: run a program and classify its L1 behaviour on the
    given machine. *)
val of_program :
  Machine.t -> level:int -> params:(string * int) list -> Ir.Program.t -> report

val pp : Format.formatter -> report -> unit
