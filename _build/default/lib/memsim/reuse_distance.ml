(* Exact LRU stack distances via a Fenwick tree over access timestamps:
   each line's most recent access time is marked "live"; the distance of
   a reuse is the number of live marks after the line's previous
   timestamp. *)

type t = {
  line_shift : int;
  mutable time : int;
  mutable bit : int array;  (* Fenwick tree over timestamps, 1-based *)
  last : (int, int) Hashtbl.t;  (* line -> last access time *)
  counts : (int, int) Hashtbl.t;  (* exact distance -> occurrences *)
  mutable cold : int;
  mutable total : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(line_bytes = 32) () =
  {
    line_shift = log2 line_bytes;
    time = 0;
    bit = Array.make 1024 0;
    last = Hashtbl.create 4096;
    counts = Hashtbl.create 256;
    cold = 0;
    total = 0;
  }

let grow t needed =
  if needed >= Array.length t.bit then begin
    let size = ref (Array.length t.bit) in
    while needed >= !size do
      size := !size * 2
    done;
    (* Rebuild the Fenwick tree at the new size from the live marks. *)
    let bit = Array.make !size 0 in
    let add i =
      let i = ref (i + 1) in
      while !i < !size do
        bit.(!i) <- bit.(!i) + 1;
        i := !i + (!i land - !i)
      done
    in
    Hashtbl.iter (fun _ time -> add time) t.last;
    t.bit <- bit
  end

let bit_add t i delta =
  let i = ref (i + 1) in
  let n = Array.length t.bit in
  while !i < n do
    t.bit.(!i) <- t.bit.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* live marks in [0, i] *)
let bit_sum t i =
  let i = ref (i + 1) in
  let acc = ref 0 in
  while !i > 0 do
    acc := !acc + t.bit.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

let access t addr =
  let line = addr lsr t.line_shift in
  grow t (t.time + 1);
  t.total <- t.total + 1;
  (match Hashtbl.find_opt t.last line with
  | Some t0 ->
    let live_after_t0 = bit_sum t (t.time - 1) - bit_sum t t0 in
    let count = try Hashtbl.find t.counts live_after_t0 with Not_found -> 0 in
    Hashtbl.replace t.counts live_after_t0 (count + 1);
    bit_add t t0 (-1)
  | None -> t.cold <- t.cold + 1);
  Hashtbl.replace t.last line t.time;
  bit_add t t.time 1;
  t.time <- t.time + 1

let sink t =
  {
    Ir.Sink.load = (fun addr -> access t addr);
    Ir.Sink.store = (fun addr -> access t addr);
    Ir.Sink.prefetch = ignore;
  }

let hits_at t c =
  Hashtbl.fold (fun d n acc -> if d < c then acc + n else acc) t.counts 0

let misses_at t c = t.total - hits_at t c
let total t = t.total
let cold t = t.cold

let histogram t =
  let buckets = Hashtbl.create 40 in
  Hashtbl.iter
    (fun d n ->
      let b = if d = 0 then 1 else 1 lsl (log2 d + 1) in
      let prev = try Hashtbl.find buckets b with Not_found -> 0 in
      Hashtbl.replace buckets b (prev + n))
    t.counts;
  List.sort compare (Hashtbl.fold (fun b n acc -> (b, n) :: acc) buckets [])

let working_set t ~threshold =
  let reuses = t.total - t.cold in
  if reuses = 0 then 1
  else begin
    let rec go c =
      if c > 1 lsl 30 then c
      else if
        float_of_int (reuses - hits_at t c) /. float_of_int reuses < threshold
      then c
      else go (c * 2)
    in
    go 1
  end
