type stats = { accesses : int; misses : int }

type region = {
  name : string;
  lo : int;
  hi : int;  (* exclusive *)
  mutable r_accesses : int;
  mutable r_misses : int;
}

type t = {
  cache : Cache.t;
  regions : region array;
  other : region;
}

let create (g : Machine.cache) ~regions =
  {
    cache = Cache.create g;
    regions =
      Array.of_list
        (List.map
           (fun (name, lo, bytes) ->
             { name; lo; hi = lo + bytes; r_accesses = 0; r_misses = 0 })
           regions);
    other = { name = "<other>"; lo = 0; hi = 0; r_accesses = 0; r_misses = 0 };
  }

let region_of t addr =
  let n = Array.length t.regions in
  let rec go i =
    if i >= n then t.other
    else
      let r = t.regions.(i) in
      if addr >= r.lo && addr < r.hi then r else go (i + 1)
  in
  go 0

let access t addr =
  let r = region_of t addr in
  r.r_accesses <- r.r_accesses + 1;
  let line = Cache.line_of_addr t.cache addr in
  match Cache.lookup t.cache ~now:0 ~line with
  | Cache.Hit _ -> ()
  | Cache.Miss ->
    r.r_misses <- r.r_misses + 1;
    ignore (Cache.insert t.cache ~now:0 ~ready:0 ~dirty:false ~line)

let sink t =
  {
    Ir.Sink.load = (fun addr -> access t addr);
    Ir.Sink.store = (fun addr -> access t addr);
    Ir.Sink.prefetch = ignore;
  }

let report t =
  let entries =
    Array.to_list
      (Array.map
         (fun r -> (r.name, { accesses = r.r_accesses; misses = r.r_misses }))
         t.regions)
  in
  if t.other.r_accesses > 0 then
    entries
    @ [
        ( t.other.name,
          { accesses = t.other.r_accesses; misses = t.other.r_misses } );
      ]
  else entries

let regions_of_program ~params (p : Ir.Program.t) =
  let lookup x =
    match List.assoc_opt x params with
    | Some v -> v
    | None -> invalid_arg ("Attribution: unbound parameter " ^ x)
  in
  List.map
    (fun (name, base_elems) ->
      let d = Ir.Program.find_decl_exn p name in
      (name, base_elems * 8, Ir.Decl.elements lookup d * 8))
    (Ir.Exec.layout ~params p)

let of_program machine ~level ~params program =
  let t =
    create
      (Machine.cache_level machine level)
      ~regions:(regions_of_program ~params program)
  in
  ignore (Ir.Exec.run ~sink:(sink t) ~params program);
  report t
