(** Figure 5 — Jacobi performance (MFLOPS vs. problem size) on the two
    simulated machines: ECO against the native-compiler model (the only
    comparator the paper has for Jacobi). *)

type result = {
  machine : Machine.t;
  series : Series.t list;  (** ECO, Native *)
  eco_points : int;
}

val run :
  ?mode:Core.Executor.mode -> ?sizes:int list -> ?tune_n:int -> Machine.t -> result
val render : result -> string list
val run_all : unit -> result list
