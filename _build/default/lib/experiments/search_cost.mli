(** §4.3 — "Cost of Search": points evaluated and CPU seconds for the
    ECO search on each kernel/machine, against the ATLAS-style
    exhaustive sweep for Matrix Multiply.  The paper reports 60/44
    ECO points for MM (8/6 min) and 94/148 for Jacobi, with the ATLAS
    search 2–4x slower; the reproduction's claim is the same ordering:
    ECO needs several times fewer points and less time than the
    un-guided search. *)

type entry = {
  what : string;
  machine : string;
  points : int;
  seconds : float;
  best_mflops : float;
}

val run : ?mode:Core.Executor.mode -> unit -> entry list
val render : entry list -> string list
