type entry = {
  what : string;
  n : int;
  report : Memsim.Classify.report;
}

let n_aff = Ir.Aff.var "n"

(* A controlled pair: identical tiling and register blocking, with and
   without the copy optimization, so the conflict column isolates
   exactly what copying buys. *)
let tiled_mm ~copy =
  {
    Core.Variant.name = (if copy then "tiled+copy" else "tiled");
    kernel = Kernels.Matmul.kernel;
    element_order = [ "j"; "i"; "k" ];
    tiles = [ ("k", "tk"); ("j", "tj"); ("i", "ti") ];
    unrolls = [ ("j", "uj"); ("i", "ui") ];
    copies =
      (if copy then
         [
           {
             Core.Variant.array = "b";
             temp = "p_b";
             at = "j";
             dims =
               [
                 { Core.Variant.tiled_loop = "k"; bound = n_aff };
                 { Core.Variant.tiled_loop = "j"; bound = n_aff };
               ];
           };
           {
             Core.Variant.array = "a";
             temp = "q_a";
             at = "i";
             dims =
               [
                 { Core.Variant.tiled_loop = "i"; bound = n_aff };
                 { Core.Variant.tiled_loop = "k"; bound = n_aff };
               ];
           };
         ]
       else []);
    constraints = [];
    notes = [];
  }

let bindings = [ ("tk", 32); ("tj", 32); ("ti", 32); ("ui", 2); ("uj", 2) ]

let run ?(machine = Machine.sgi_r10000) ?sizes () =
  (* A benign size and a conflict-pathological power of two; the column
     stride is what matters, not the total footprint. *)
  let sizes = match sizes with Some s -> s | None -> [ 96; 128 ] in
  let kernel = Kernels.Matmul.kernel in
  List.concat_map
    (fun n ->
      let classify what variant =
        let program = Core.Variant.instantiate variant ~bindings in
        {
          what;
          n;
          report =
            Memsim.Classify.of_program machine ~level:0
              ~params:[ (kernel.Kernels.Kernel.size_param, n) ]
              program;
        }
      in
      [
        classify "no-copy" (tiled_mm ~copy:false);
        classify "copy" (tiled_mm ~copy:true);
      ])
    sizes

let render entries =
  Printf.sprintf "%-8s %6s %12s %12s %12s %12s %12s" "Version" "n" "accesses"
    "misses" "compulsory" "capacity" "conflict"
  :: List.map
       (fun e ->
         Printf.sprintf "%-8s %6d %12d %12d %12d %12d %12d" e.what e.n
           e.report.Memsim.Classify.accesses e.report.Memsim.Classify.real_misses
           e.report.Memsim.Classify.compulsory e.report.Memsim.Classify.capacity
           e.report.Memsim.Classify.conflict)
       entries
