(** Table 2 — "Comparison of two systems": the architectural parameters
    of the two simulated machines (clock, registers, caches, TLB), plus
    the cost-model parameters our simulator adds. *)

val render : unit -> string list
