(** Table 4 — "Code variants considered for Matrix Multiply on the SGI":
    the output of phase 1 ({!Core.Derive}) formatted as in the paper —
    one block per variant with, per memory level, the reuse-carrying
    loop, the transformations, the parameters and the constraints.

    The paper prints the two headline variants; we print the full
    derived set (the paper's search also walked branch variants, §4.3)
    with the headline pair — copy-B (Figure 1(b)) and copy-A-and-B
    (Figure 1(c)) — first. *)

val variants : ?machine:Machine.t -> unit -> Core.Variant.t list
val render : ?machine:Machine.t -> unit -> string list
