(** Rendering of size-sweep results: aligned text tables and an ASCII
    chart — the textual analogue of the paper's Figures 4 and 5. *)

type t = {
  label : string;
  mark : char;  (** one-character series marker in the chart *)
  points : (int * float) list;  (** (size, MFLOPS) *)
}

val make : string -> char -> (int * float) list -> t

val mean : t -> float
val minimum : t -> float
val maximum : t -> float

(** Aligned table: one row per size, one column per series. *)
val table : t list -> string list

(** ASCII chart (sizes on x, MFLOPS on y). *)
val chart : ?height:int -> t list -> string list

(** Summary line per series: label, min, mean, max. *)
val summary : t list -> string list
