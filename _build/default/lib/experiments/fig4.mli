(** Figure 4 — Matrix Multiply performance (MFLOPS vs. problem size) on
    the two simulated machines: ECO against the Native-compiler model,
    the ATLAS-style tuner and the hand-tuned vendor BLAS model.

    ECO and ATLAS are each tuned once at the reference size and their
    winning parameterizations are then swept across sizes, exactly as the
    paper's versions were. *)

type result = {
  machine : Machine.t;
  series : Series.t list;  (** ECO, Native, ATLAS, Vendor *)
  eco_points : int;  (** search points ECO used *)
  atlas_points : int;
}

val run :
  ?mode:Core.Executor.mode -> ?sizes:int list -> ?tune_n:int -> Machine.t -> result
val render : result -> string list

(** Both machines, both panels (a) and (b). *)
val run_all : unit -> result list
