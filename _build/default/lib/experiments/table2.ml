let cache_desc (c : Machine.cache) =
  Printf.sprintf "%dKB %s %d-way (%dB lines, +%d cyc)" (c.Machine.size_bytes / 1024)
    c.Machine.name c.Machine.assoc c.Machine.line_bytes c.Machine.hit_cycles

let render () =
  let header =
    Printf.sprintf "%-20s %-10s %-10s %-34s %-34s %-24s %s" "Architecture"
      "Clock" "FP regs" "L1 cache" "L2 cache" "TLB" "Mem latency"
  in
  header
  :: List.map
       (fun (m : Machine.t) ->
         let l1 = List.nth m.Machine.caches 0 in
         let l2 = List.nth m.Machine.caches 1 in
         Printf.sprintf "%-20s %-10s %-10d %-34s %-34s %-24s %d cyc" m.Machine.name
           (Printf.sprintf "%.0fMHz" m.Machine.cpu.Machine.clock_mhz)
           m.Machine.cpu.Machine.fp_registers (cache_desc l1) (cache_desc l2)
           (Printf.sprintf "%d entries, %dKB pages" m.Machine.tlb.Machine.entries
              (m.Machine.tlb.Machine.page_bytes / 1024))
           m.Machine.memory_latency_cycles)
       [ Machine.sgi_r10000; Machine.ultrasparc_iie ]
