(** Ablation of the design decisions DESIGN.md calls out, on Matrix
    Multiply at the reference size:

    - {b hybrid} (the full ECO pipeline) vs {b model-only} (phase 1 +
      model-initial parameters, zero experiments — the Yotov et al.
      configuration) vs {b search-only} (the ATLAS-style sweep with no
      models);
    - {b no-copy}: the best ECO variant that does not use copy
      optimization — quantifies how much conflict-miss smoothing buys;
    - {b no-prefetch}: the winning ECO version with its prefetches
      stripped. *)

type entry = { what : string; mflops : float; points : int }

val run : ?mode:Core.Executor.mode -> ?machine:Machine.t -> ?n:int -> unit -> entry list
val render : entry list -> string list
