type t = {
  label : string;
  mark : char;
  points : (int * float) list;
}

let make label mark points = { label; mark; points }

let values s = List.map snd s.points

let mean s =
  match values s with
  | [] -> 0.0
  | vs -> List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)

let minimum s = List.fold_left Float.min infinity (values s)
let maximum s = List.fold_left Float.max neg_infinity (values s)

let table series =
  let sizes =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let header =
    Printf.sprintf "%6s %s" "n"
      (String.concat " "
         (List.map (fun s -> Printf.sprintf "%10s" s.label) series))
  in
  let rows =
    List.map
      (fun n ->
        Printf.sprintf "%6d %s" n
          (String.concat " "
             (List.map
                (fun s ->
                  match List.assoc_opt n s.points with
                  | Some v -> Printf.sprintf "%10.1f" v
                  | None -> Printf.sprintf "%10s" "-")
                series)))
      sizes
  in
  header :: rows

let chart ?(height = 16) series =
  let all_points = List.concat_map (fun s -> s.points) series in
  match all_points with
  | [] -> [ "(no data)" ]
  | _ ->
    let sizes = List.sort_uniq compare (List.map fst all_points) in
    let vmax = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 all_points in
    let vmax = if vmax <= 0.0 then 1.0 else vmax in
    let width = List.length sizes in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        List.iter
          (fun (n, v) ->
            match List.find_index (( = ) n) sizes with
            | None -> ()
            | Some col ->
              let row =
                height - 1 - int_of_float (v /. vmax *. float_of_int (height - 1))
              in
              let row = max 0 (min (height - 1) row) in
              if grid.(row).(col) = ' ' then grid.(row).(col) <- s.mark
              else grid.(row).(col) <- '*')
          s.points)
      series;
    let rows =
      List.init height (fun r ->
          let label =
            if r = 0 then Printf.sprintf "%7.0f |" vmax
            else if r = height - 1 then Printf.sprintf "%7.0f |" 0.0
            else Printf.sprintf "%7s |" ""
          in
          label ^ String.init width (fun c -> grid.(r).(c)))
    in
    let x_axis =
      Printf.sprintf "%7s +%s" "" (String.make width '-')
      ::
      [
        Printf.sprintf "%7s  n: %d .. %d    legend: %s" ""
          (List.hd sizes)
          (List.nth sizes (width - 1))
          (String.concat "  "
             (List.map (fun s -> Printf.sprintf "%c=%s" s.mark s.label) series));
      ]
    in
    rows @ x_axis

let summary series =
  List.map
    (fun s ->
      Printf.sprintf "%-12s min %7.1f   mean %7.1f   max %7.1f MFLOPS" s.label
        (minimum s) (mean s) (maximum s))
    series
