(** Table 1 — "Performance variation with optimization parameters".

    Reproduces the paper's motivating experiment: five Matrix Multiply
    versions (mm1–mm5) and six Jacobi versions (j1–j6) with the paper's
    own tile-size settings, measured on the simulated SGI; reports
    Loads, L1 misses, L2 misses, TLB misses and Cycles per version.

    Shape expectations (paper §2): mm1 has the fewest L1 misses; mm3
    slashes L2 misses at the cost of L1; mm5 reaches the fewest cycles
    with the most loads (prefetch); Jacobi's prefetched versions beat
    their unprefetched twins; j6 < j4 < j2 in cycles. *)

type row = {
  name : string;
  ti : int;
  tj : int;
  tk : int;
  pref : bool;
  loads : float;
  l1_misses : float;
  l2_misses : float;
  tlb_misses : float;
  cycles : float;
  mflops : float;
}

(** All eleven rows (budget-scaled counters). *)
val rows : ?machine:Machine.t -> ?mode:Core.Executor.mode -> unit -> row list

val mm_rows : row list -> row list
val jacobi_rows : row list -> row list
val render : row list -> string list
