(** Orchestration: run a named experiment (or all of them) and print its
    rendered output through the supplied line printer. *)

val names : string list

(** [run ~print name] runs one experiment; raises [Invalid_argument] on
    unknown names. *)
val run : print:(string -> unit) -> string -> unit

val run_everything : print:(string -> unit) -> unit
