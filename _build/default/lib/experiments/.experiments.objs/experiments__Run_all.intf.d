lib/experiments/run_all.mli:
