lib/experiments/series.mli:
