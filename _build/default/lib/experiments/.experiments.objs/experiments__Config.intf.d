lib/experiments/config.mli: Core
