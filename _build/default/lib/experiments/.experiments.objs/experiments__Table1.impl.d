lib/experiments/table1.ml: Config Core Ir Kernels List Machine Memsim Printf String
