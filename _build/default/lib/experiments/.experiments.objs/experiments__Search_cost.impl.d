lib/experiments/search_cost.ml: Baselines Config Core Kernels List Machine Printf Sys
