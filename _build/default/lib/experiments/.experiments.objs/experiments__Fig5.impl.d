lib/experiments/fig5.ml: Baselines Config Core Kernels List Machine Printf Series
