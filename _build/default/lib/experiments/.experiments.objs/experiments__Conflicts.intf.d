lib/experiments/conflicts.mli: Machine Memsim
