lib/experiments/strategies.mli: Core Machine
