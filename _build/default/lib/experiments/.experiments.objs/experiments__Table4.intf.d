lib/experiments/table4.mli: Core Machine
