lib/experiments/ablation.ml: Baselines Config Core Kernels List Machine Printf
