lib/experiments/padding.mli: Core Machine Series
