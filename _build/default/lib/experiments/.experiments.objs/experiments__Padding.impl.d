lib/experiments/padding.ml: Config Core Kernels List Machine Printf Series Transform
