lib/experiments/table2.ml: List Machine Printf
