lib/experiments/search_cost.mli: Core
