lib/experiments/ablation.mli: Core Machine
