lib/experiments/run_all.ml: Ablation Conflicts Fig4 Fig5 List Machine Padding Printf Search_cost Strategies String Table1 Table2 Table4
