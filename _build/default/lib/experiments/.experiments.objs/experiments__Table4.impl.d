lib/experiments/table4.ml: Core Kernels List Machine Printf String
