lib/experiments/strategies.ml: Baselines Config Core Kernels List Machine Printf
