lib/experiments/fig4.ml: Baselines Config Core Kernels List Machine Printf Series
