lib/experiments/config.ml: Core String Sys
