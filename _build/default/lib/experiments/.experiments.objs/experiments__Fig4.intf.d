lib/experiments/fig4.mli: Core Machine Series
