lib/experiments/table1.mli: Core Machine
