lib/experiments/conflicts.ml: Core Ir Kernels List Machine Memsim Printf
