let copied (v : Core.Variant.t) =
  List.sort String.compare
    (List.map (fun (c : Core.Variant.copy_spec) -> c.Core.Variant.array) v.Core.Variant.copies)

let variants ?(machine = Machine.sgi_r10000) () =
  let all = Core.Derive.variants machine Kernels.Matmul.kernel in
  (* Headline order: the paper's v1 (copy B only) and v2 (copy A and B)
     first, then the remaining branches. *)
  let score v =
    match copied v with
    | [ "b" ] -> 0
    | [ "a"; "b" ] -> 1
    | [ "a" ] -> 2
    | _ -> 3
  in
  List.stable_sort (fun a b -> compare (score a) (score b)) all

let render ?machine () =
  List.concat_map
    (fun (v : Core.Variant.t) ->
      Printf.sprintf "%s  (order %s%s)" v.Core.Variant.name
        (String.concat ""
           (List.map String.uppercase_ascii v.Core.Variant.element_order))
        (match copied v with
        | [] -> ", no copy"
        | arrays -> ", copy " ^ String.concat "," arrays)
      :: Printf.sprintf "  %-5s %-5s %-34s %-10s %s" "Level" "Loop" "Transf"
           "Param" "Constraints"
      :: List.map
           (fun (level, loop, transf, params, constraints) ->
             Printf.sprintf "  %-5s %-5s %-34s %-10s %s" level loop transf
               params constraints)
           (Core.Variant.table_rows v)
      @ [ "" ])
    (variants ?machine ())
