(** Extension experiment — why the Native compiler collapses at
    pathological sizes (paper §4.1: "it appears to suffer from severe
    conflict misses for some matrix sizes because the SGI compiler does
    not apply copying").

    The miss classifier splits L1 misses of the Native-compiled and the
    ECO-tuned Matrix Multiply into compulsory / capacity / conflict
    components at a well-behaved size and at a pathological power of
    two: Native's extra misses at the bad size are (almost entirely)
    conflict misses, and ECO's copy optimization removes them. *)

type entry = {
  what : string;
  n : int;
  report : Memsim.Classify.report;
}

val run : ?machine:Machine.t -> ?sizes:int list -> unit -> entry list
val render : entry list -> string list
