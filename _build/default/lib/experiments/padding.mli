(** Extension experiment — array padding for Jacobi.

    The paper (§4.2) observes that both the native compiler's and ECO's
    Jacobi fluctuate badly at conflict-pathological sizes because neither
    pads or copies, and notes that "manual experiments show that array
    padding can be used to stabilize this behavior".  This experiment
    performs those manual experiments: the ECO-tuned Jacobi is measured
    with and without one cache line of padding on the arrays' leading
    dimension, across a size sweep that includes the pathological
    powers of two. *)

type result = {
  machine : Machine.t;
  series : Series.t list;  (** ECO, ECO+pad *)
}

val run : ?mode:Core.Executor.mode -> ?sizes:int list -> ?tune_n:int -> Machine.t -> result
val render : result -> string list
