(** Extension experiment — search strategies at equal measurement budget.

    The paper argues (abstract, §5) that un-guided searches waste
    experiments because they ignore domain knowledge.  This experiment
    makes the comparison concrete: the ECO guided search, a random
    sampler over the same variant's parameter space given the {e same}
    number of executed points, the exhaustive ATLAS-style grid, and the
    model's single prediction, all on Matrix Multiply. *)

type entry = { what : string; mflops : float; points : int }

val run :
  ?mode:Core.Executor.mode -> ?machine:Machine.t -> ?n:int -> unit -> entry list

val render : entry list -> string list
