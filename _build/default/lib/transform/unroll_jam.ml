(* Jam [u] copies of [body] (copy [c] has [v := v + c]) through inner
   loops whose bounds are independent of [v]; at the first level where
   fusion is impossible, fall back to sequential duplication (plain
   unrolling), which is always correct. *)
let rec jam v u body =
  match body with
  | [ Ir.Stmt.Loop inner ]
    when (not (Ir.Bexp.mem v inner.Ir.Stmt.lo))
         && not (Ir.Bexp.mem v inner.Ir.Stmt.hi) ->
    [ Ir.Stmt.Loop { inner with Ir.Stmt.body = jam v u inner.Ir.Stmt.body } ]
  | stmts ->
    List.concat
      (List.init u (fun c ->
           if c = 0 then stmts
           else Ir.Stmt.subst_body v (Ir.Aff.add_const (Ir.Aff.var v) c) stmts))

let unroll_loop (l : Ir.Stmt.loop) u =
  if l.Ir.Stmt.step <> 1 then
    invalid_arg "Unroll_jam.apply: loop must have unit step";
  let lo_aff =
    match Ir.Bexp.as_aff l.Ir.Stmt.lo with
    | Some a -> a
    | None -> invalid_arg "Unroll_jam.apply: lower bound must be affine"
  in
  let v = l.Ir.Stmt.var in
  (* whole = max (u * floor ((hi - lo + 1) / u)) 0 *)
  let trip =
    Ir.Bexp.add_aff l.Ir.Stmt.hi (Ir.Aff.add_const (Ir.Aff.neg lo_aff) 1)
  in
  let whole = Ir.Bexp.max_ (Ir.Bexp.floor_mult trip u) (Ir.Bexp.const 0) in
  let main_hi =
    Ir.Bexp.add_aff (Ir.Bexp.add whole (Ir.Bexp.aff lo_aff)) (Ir.Aff.const (-1))
  in
  let rem_lo = Ir.Bexp.add whole (Ir.Bexp.aff lo_aff) in
  let main =
    Ir.Stmt.Loop
      {
        Ir.Stmt.var = v;
        lo = l.Ir.Stmt.lo;
        hi = main_hi;
        step = u;
        body = jam v u l.Ir.Stmt.body;
      }
  in
  let remainder =
    Ir.Stmt.Loop
      { Ir.Stmt.var = v; lo = rem_lo; hi = l.Ir.Stmt.hi; step = 1; body = l.Ir.Stmt.body }
  in
  [ main; remainder ]

let apply (p : Ir.Program.t) v u =
  if u < 1 then invalid_arg "Unroll_jam.apply: factor must be >= 1";
  if u = 1 then p
  else
    match
      Ir.Stmt.replace_loop v (fun l -> unroll_loop l u) p.Ir.Program.body
    with
    | body -> Ir.Program.with_body p body
    | exception Not_found ->
      invalid_arg (Printf.sprintf "Unroll_jam.apply: no loop over %s" v)
