let apply (p : Ir.Program.t) order =
  let headers, innermost = Nest.extract p.Ir.Program.body in
  let vars = List.map (fun h -> h.Nest.var) headers in
  if List.sort String.compare vars <> List.sort String.compare order then
    invalid_arg
      (Printf.sprintf "Permute.apply: %s is not a permutation of the nest [%s]"
         (String.concat "," order) (String.concat "," vars));
  if not (Nest.rectangular headers) then
    invalid_arg "Permute.apply: nest is not rectangular";
  let reordered =
    List.map
      (fun v ->
        match Nest.header_of headers v with
        | Some h -> h
        | None -> assert false)
      order
  in
  Ir.Program.with_body p (Nest.rebuild reordered innermost)
