lib/transform/unroll_jam.ml: Ir List Printf
