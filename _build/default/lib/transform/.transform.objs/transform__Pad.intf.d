lib/transform/pad.mli: Ir Machine
