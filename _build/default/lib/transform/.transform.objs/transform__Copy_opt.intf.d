lib/transform/copy_opt.mli: Ir
