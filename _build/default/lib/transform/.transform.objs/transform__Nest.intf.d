lib/transform/nest.mli: Ir
