lib/transform/permute.mli: Ir
