lib/transform/tile.mli: Ir
