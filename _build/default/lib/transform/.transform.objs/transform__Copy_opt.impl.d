lib/transform/copy_opt.ml: Ir List Printf
