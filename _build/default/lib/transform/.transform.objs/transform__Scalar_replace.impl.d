lib/transform/scalar_replace.ml: Array Hashtbl Ir List Printf String
