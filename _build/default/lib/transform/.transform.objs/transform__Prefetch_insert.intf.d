lib/transform/prefetch_insert.mli: Ir
