lib/transform/permute.ml: Ir List Nest Printf String
