lib/transform/unroll_jam.mli: Ir
