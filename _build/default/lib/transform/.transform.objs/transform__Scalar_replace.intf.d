lib/transform/scalar_replace.mli: Ir
