lib/transform/prefetch_insert.ml: Hashtbl Ir List
