lib/transform/tile.ml: Ir List Nest Printf String
