lib/transform/nest.ml: Ir List
