lib/transform/pad.ml: Ir List Machine
