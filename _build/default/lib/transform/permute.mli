(** Loop permutation (interchange) of a perfect rectangular nest. *)

(** [apply p order] reorders the nest's loops to [order] (outermost
    first).  [order] must be a permutation of the nest's loop variables
    and the nest must be rectangular.
    @raise Invalid_argument otherwise.  Legality with respect to data
    dependences is the caller's responsibility (see
    {!Analysis.Depend.permutation_legal}). *)
val apply : Ir.Program.t -> string list -> Ir.Program.t
