type header = { var : string; lo : Ir.Bexp.t; hi : Ir.Bexp.t; step : int }

let rec extract body =
  match body with
  | [ Ir.Stmt.Loop l ] ->
    let inner_headers, innermost = extract l.Ir.Stmt.body in
    ( { var = l.Ir.Stmt.var; lo = l.Ir.Stmt.lo; hi = l.Ir.Stmt.hi; step = l.Ir.Stmt.step }
      :: inner_headers,
      innermost )
  | other -> ([], other)

let rebuild headers innermost =
  List.fold_right
    (fun h acc -> [ Ir.Stmt.loop ~step:h.step h.var ~lo:h.lo ~hi:h.hi acc ])
    headers innermost

let header_of headers v = List.find_opt (fun h -> h.var = v) headers

let rectangular headers =
  let vars = List.map (fun h -> h.var) headers in
  List.for_all
    (fun h ->
      List.for_all
        (fun v -> not (Ir.Bexp.mem v h.lo) && not (Ir.Bexp.mem v h.hi))
        vars)
    headers
