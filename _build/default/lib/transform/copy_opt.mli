(** Copy optimization: copy the data tile of an array into a contiguous
    temporary at the top of a tile-controlling loop, and redirect the
    tile body's references to the temporary.  Eliminates conflict misses
    within the tile, at the price of the copy traffic — the trade-off
    the paper exploits for Matrix Multiply and rejects for Jacobi. *)

type dim_spec = {
  base : Ir.Aff.t;
      (** index of the tile's first element in this dimension (e.g. the
          tile-controlling variable [kk], or a constant) *)
  extent : int;  (** tile extent in elements *)
  bound : Ir.Aff.t;
      (** extent of the array in this dimension (for boundary clipping,
          e.g. [n]) *)
}

(** [apply p ~array ~temp ~at ~dims] inserts, at the top of the body of
    the loop over [at], loops copying
    [array[base .. base+extent-1, ...]] into the new array [temp] (with
    dimensions [extents], clipped against [bound] at array edges), and
    rewrites every reference to [array] strictly inside that loop to an
    equivalent reference to [temp].

    Requirements checked: [array] is read-only inside the [at] loop, and
    every inside reference's index lies within the copied tile (verified
    symbolically: index minus [base] must be independent of [base]'s
    variables).
    @raise Invalid_argument when requirements fail. *)
val apply :
  Ir.Program.t ->
  array:string ->
  temp:string ->
  at:string ->
  dims:dim_spec list ->
  Ir.Program.t
