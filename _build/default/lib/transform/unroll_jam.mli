(** Unroll-and-jam with exact remainder handling.

    Unrolling loop [v] by factor [u] produces:
    - a {e main} loop stepping by [u] over the largest multiple-of-[u]
      prefix of the iteration range, whose copies of the body are jammed
      (fused) through any inner loops whose bounds do not depend on [v];
    - a {e remainder} loop with the original body over the leftover
      iterations.

    Bounds may contain [min]/[max] (tiled loops); the split point is
    expressed with floor arithmetic, so the transformation is exact for
    every runtime trip count, including zero.

    Jamming reorders iterations like a loop interchange; legality is the
    caller's responsibility ({!Analysis.Depend.innermost_legal}). *)

(** [apply p v u] unrolls every loop over [v] in the program (there may
    be several after earlier main/remainder splits).
    @raise Invalid_argument if [u < 1], if no loop over [v] exists, if a
    loop over [v] has non-unit step or a non-affine lower bound. *)
val apply : Ir.Program.t -> string -> int -> Ir.Program.t
