let apply (p : Ir.Program.t) ~array ~amount =
  if amount < 0 then invalid_arg "Pad.apply: negative padding";
  let decls =
    List.map
      (fun (d : Ir.Decl.t) ->
        if d.Ir.Decl.name = array && List.length d.Ir.Decl.dims >= 2 then
          match d.Ir.Decl.dims with
          | dim0 :: rest ->
            { d with Ir.Decl.dims = Ir.Aff.add_const dim0 amount :: rest }
          | [] -> d
        else d)
      p.Ir.Program.decls
  in
  { p with Ir.Program.decls }

let apply_all (p : Ir.Program.t) ~amount =
  List.fold_left
    (fun p (d : Ir.Decl.t) ->
      if d.Ir.Decl.storage = Ir.Decl.Heap then
        apply p ~array:d.Ir.Decl.name ~amount
      else p)
    p p.Ir.Program.decls

let default_amount (m : Machine.t) = Machine.line_elems m 0
