(** Scalar replacement: map reused array elements to register
    temporaries around innermost loops (Carr–Kennedy style).

    Three forms are applied automatically to every innermost loop:

    - {e invariant replacement}: a reference whose indices do not mention
      the loop variable is loaded into a register before the loop,
      used/updated in registers inside, and stored back after the loop
      (the paper's "load C[I..I+UI-1,J..J+UJ-1] into registers");
    - {e rotating replacement}: a read-only group whose members differ
      only by constant offsets along the loop direction keeps the whole
      offset chain in registers, loads only the leading element each
      iteration, and shifts registers at the end of the body (the
      paper's Jacobi code, Figure 2(b));
    - {e operand reuse}: a reference read several times within one
      (unrolled) iteration, to an array the body never writes, is loaded
      once per iteration into a register (the paper's "multiply A's and
      P's to registers" — this is what makes register pressure grow with
      the unroll factors).

    Replacement is performed only when aliasing is statically refutable:
    all other accesses to the same array must be uniform with the
    replaced reference and differ by constant offsets. *)

val apply : Ir.Program.t -> Ir.Program.t

(** Number of register temporaries [apply] would introduce (for tests
    and the register-pressure model). *)
val count_registers : Ir.Program.t -> int
