type spec = { var : string; size : int; control : string }

let apply (p : Ir.Program.t) specs ~control_order =
  let headers, innermost = Nest.extract p.Ir.Program.body in
  if not (Nest.rectangular headers) then
    invalid_arg "Tile.apply: nest is not rectangular";
  List.iter
    (fun s ->
      if s.size < 1 then invalid_arg "Tile.apply: tile size must be >= 1";
      if Nest.header_of headers s.var = None then
        invalid_arg (Printf.sprintf "Tile.apply: no loop %s in nest" s.var))
    specs;
  let controls = List.map (fun s -> s.control) specs in
  if List.sort String.compare controls <> List.sort String.compare control_order
  then invalid_arg "Tile.apply: control_order must list exactly the new controls";
  let control_headers =
    List.map
      (fun cv ->
        let s = List.find (fun s -> s.control = cv) specs in
        let h =
          match Nest.header_of headers s.var with
          | Some h -> h
          | None -> assert false
        in
        if h.Nest.step <> 1 then
          invalid_arg "Tile.apply: tiled loop must have unit step";
        { Nest.var = cv; lo = h.Nest.lo; hi = h.Nest.hi; step = s.size })
      control_order
  in
  let element_headers =
    List.map
      (fun h ->
        match List.find_opt (fun s -> s.var = h.Nest.var) specs with
        | None -> h
        | Some s ->
          let lo = Ir.Bexp.var s.control in
          let hi =
            Ir.Bexp.min_
              (Ir.Bexp.add_const (Ir.Bexp.var s.control) (s.size - 1))
              h.Nest.hi
          in
          { h with Nest.lo; hi })
      headers
  in
  Ir.Program.with_body p (Nest.rebuild (control_headers @ element_headers) innermost)
