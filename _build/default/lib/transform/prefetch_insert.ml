(* One prefetch per stream: streams are reference classes deduplicated so
   that members differing only by a dimension-0 offset within one cache
   line share a prefetch. *)

let stream_key ~line_elems (r : Ir.Reference.t) =
  let signature = Ir.Reference.coeff_signature r in
  let offsets = Ir.Reference.offsets r in
  match offsets with
  | [] -> (signature, [])
  | o0 :: rest ->
    (* Round the fastest-dimension offset down to a line boundary. *)
    (signature, (if o0 >= 0 then o0 / line_elems else (o0 - line_elems + 1) / line_elems) :: rest)

let is_innermost (l : Ir.Stmt.loop) =
  not
    (List.exists
       (function Ir.Stmt.Loop _ -> true | Ir.Stmt.Assign _ | Ir.Stmt.Prefetch _ -> false)
       l.Ir.Stmt.body)

let apply (p : Ir.Program.t) ~array ~distance ~line_elems =
  if distance < 1 then invalid_arg "Prefetch_insert.apply: distance must be >= 1";
  let rec go = function
    | (Ir.Stmt.Assign _ | Ir.Stmt.Prefetch _) as s -> s
    | Ir.Stmt.Loop l when is_innermost l ->
      let v = l.Ir.Stmt.var in
      let refs =
        List.filter
          (fun ((r : Ir.Reference.t), _) -> r.Ir.Reference.array = array)
          (Ir.Stmt.access_refs l.Ir.Stmt.body)
      in
      if refs = [] then Ir.Stmt.Loop l
      else begin
        let seen = Hashtbl.create 8 in
        let prefetches =
          List.filter_map
            (fun (r, _) ->
              let key = stream_key ~line_elems r in
              if Hashtbl.mem seen key then None
              else begin
                Hashtbl.add seen key ();
                Some
                  (Ir.Stmt.Prefetch
                     (Ir.Reference.subst v
                        (Ir.Aff.add_const (Ir.Aff.var v) (distance * l.Ir.Stmt.step))
                        r))
              end)
            refs
        in
        Ir.Stmt.Loop { l with Ir.Stmt.body = prefetches @ l.Ir.Stmt.body }
      end
    | Ir.Stmt.Loop l -> Ir.Stmt.Loop { l with Ir.Stmt.body = List.map go l.Ir.Stmt.body }
  in
  Ir.Program.with_body p (List.map go p.Ir.Program.body)

let remove (p : Ir.Program.t) ~array =
  let rec go = function
    | Ir.Stmt.Loop l -> [ Ir.Stmt.Loop { l with Ir.Stmt.body = List.concat_map go l.Ir.Stmt.body } ]
    | Ir.Stmt.Prefetch r when r.Ir.Reference.array = array -> []
    | s -> [ s ]
  in
  Ir.Program.with_body p (List.concat_map go p.Ir.Program.body)

let candidates (p : Ir.Program.t) =
  let arrays = ref [] in
  let heap name =
    match Ir.Program.find_decl p name with
    | Some d -> d.Ir.Decl.storage = Ir.Decl.Heap
    | None -> false
  in
  let rec go = function
    | Ir.Stmt.Assign (lhs, rhs) ->
      List.iter
        (fun (r : Ir.Reference.t) ->
          let a = r.Ir.Reference.array in
          if heap a && not (List.mem a !arrays) then arrays := a :: !arrays)
        (lhs :: Ir.Fexpr.refs rhs)
    | Ir.Stmt.Prefetch _ -> ()
    | Ir.Stmt.Loop l -> List.iter go l.Ir.Stmt.body
  in
  List.iter go p.Ir.Program.body;
  List.rev !arrays
