(** Helpers for perfect loop nests: extraction and reconstruction. *)

type header = { var : string; lo : Ir.Bexp.t; hi : Ir.Bexp.t; step : int }

(** [extract body] splits a perfect nest into its loop headers
    (outermost first) and the innermost statement list.  Stops at the
    first level that is not a single loop. *)
val extract : Ir.Stmt.t list -> header list * Ir.Stmt.t list

(** Rebuild a perfect nest. *)
val rebuild : header list -> Ir.Stmt.t list -> Ir.Stmt.t list

(** [header_of hs v] finds the header for variable [v]. *)
val header_of : header list -> string -> header option

(** True when every header's bounds mention none of the nest's own loop
    variables (rectangular nest — the precondition for permutation and
    rectangular tiling). *)
val rectangular : header list -> bool
