type dim_spec = { base : Ir.Aff.t; extent : int; bound : Ir.Aff.t }

(* Collect every loop header in a statement list (recursively). *)
let rec headers_in acc = function
  | Ir.Stmt.Assign _ | Ir.Stmt.Prefetch _ -> acc
  | Ir.Stmt.Loop l ->
    List.fold_left headers_in
      ((l.Ir.Stmt.var, l.Ir.Stmt.lo, l.Ir.Stmt.hi) :: acc)
      l.Ir.Stmt.body

(* Does the loop [lo] start at [base]?  Accepts the exact base (main
   loops after tiling) and the [whole + base] shape of unroll-and-jam
   remainder loops (whole >= 0 by construction). *)
let rec lo_starts_at_base lo base =
  match lo with
  | Ir.Bexp.Aff a -> Ir.Aff.equal a base
  | Ir.Bexp.Add (_, rest) -> lo_starts_at_base rest base
  | Ir.Bexp.Min _ | Ir.Bexp.Max _ | Ir.Bexp.Floor_mult _ -> false

(* Does the upper bound clip at [base + extent - 1]? *)
let rec hi_clips_at hi target =
  match hi with
  | Ir.Bexp.Aff a -> Ir.Aff.equal a target
  | Ir.Bexp.Min (x, y) -> hi_clips_at x target || hi_clips_at y target
  | Ir.Bexp.Add _ | Ir.Bexp.Max _ | Ir.Bexp.Floor_mult _ -> false

let apply (p : Ir.Program.t) ~array ~temp ~at ~dims =
  (match Ir.Program.find_decl p array with
  | Some d ->
    if List.length d.Ir.Decl.dims <> List.length dims then
      invalid_arg "Copy_opt.apply: dimension count mismatch"
  | None -> invalid_arg (Printf.sprintf "Copy_opt.apply: unknown array %s" array));
  let temp_decl =
    Ir.Decl.heap temp (List.map (fun d -> Ir.Aff.const d.extent) dims)
  in
  let copy_vars =
    List.mapi (fun d _ -> Printf.sprintf "%s_c%d" temp d) dims
  in
  let transform (l : Ir.Stmt.loop) =
    (* Read-only requirement. *)
    List.iter
      (fun ((r : Ir.Reference.t), w) ->
        if w && r.Ir.Reference.array = array then
          invalid_arg
            (Printf.sprintf "Copy_opt.apply: %s is written inside loop %s" array at))
      (Ir.Stmt.access_refs l.Ir.Stmt.body);
    let headers = List.fold_left headers_in [] l.Ir.Stmt.body in
    (* Verify that every reference to [array] inside stays within the
       copied tile, and rewrite it to the temporary. *)
    let rewrite_ref (r : Ir.Reference.t) =
      if r.Ir.Reference.array <> array then r
      else begin
        let idx' =
          List.map2
            (fun idx (spec : dim_spec) ->
              let diff = Ir.Aff.sub idx spec.base in
              (* Substitute every element variable that provably iterates
                 within the tile ([base .. base+extent-1]) by [base]; the
                 remainder must be a constant offset within the extent. *)
              let in_tile v =
                Ir.Aff.coeff diff v = 1
                && List.exists
                     (fun (hv, lo, hi) ->
                       hv = v
                       && lo_starts_at_base lo spec.base
                       && hi_clips_at hi
                            (Ir.Aff.add_const spec.base (spec.extent - 1)))
                     headers
              in
              let reduced =
                List.fold_left
                  (fun e v -> if in_tile v then Ir.Aff.subst v spec.base e else e)
                  diff (Ir.Aff.vars diff)
              in
              match Ir.Aff.is_const reduced with
              | Some c when c >= 0 && c < spec.extent -> diff
              | Some c ->
                invalid_arg
                  (Printf.sprintf
                     "Copy_opt.apply: offset %d of %s outside tile extent %d" c
                     array spec.extent)
              | None ->
                invalid_arg
                  (Printf.sprintf
                     "Copy_opt.apply: reference %s not provably within the %s tile"
                     (Ir.Reference.to_string r) array))
            r.Ir.Reference.idx dims
        in
        Ir.Reference.make temp idx'
      end
    in
    let rec rewrite_stmt = function
      | Ir.Stmt.Assign (lhs, rhs) ->
        Ir.Stmt.Assign (rewrite_ref lhs, Ir.Fexpr.map_refs rewrite_ref rhs)
      | Ir.Stmt.Prefetch r -> Ir.Stmt.Prefetch (rewrite_ref r)
      | Ir.Stmt.Loop l -> Ir.Stmt.Loop { l with Ir.Stmt.body = List.map rewrite_stmt l.Ir.Stmt.body }
    in
    (* Copy loops: innermost walks the fastest dimension. *)
    let copy_assign =
      Ir.Stmt.assign
        (Ir.Reference.make temp (List.map Ir.Aff.var copy_vars))
        (Ir.Fexpr.ref_
           (Ir.Reference.make array
              (List.map2
                 (fun cv (spec : dim_spec) -> Ir.Aff.add (Ir.Aff.var cv) spec.base)
                 copy_vars dims)))
    in
    let copy_loops =
      List.fold_left2
        (fun inner cv (spec : dim_spec) ->
          [
            Ir.Stmt.loop cv ~lo:(Ir.Bexp.const 0)
              ~hi:
                (Ir.Bexp.min_
                   (Ir.Bexp.const (spec.extent - 1))
                   (Ir.Bexp.aff
                      (Ir.Aff.add_const (Ir.Aff.sub spec.bound spec.base) (-1))))
              inner;
          ])
        [ copy_assign ] copy_vars dims
    in
    [
      Ir.Stmt.Loop
        { l with Ir.Stmt.body = copy_loops @ List.map rewrite_stmt l.Ir.Stmt.body };
    ]
  in
  match Ir.Stmt.replace_loop at transform p.Ir.Program.body with
  | body -> Ir.Program.add_decl (Ir.Program.with_body p body) temp_decl
  | exception Not_found ->
    invalid_arg (Printf.sprintf "Copy_opt.apply: no loop over %s" at)
