(** Array padding: grow an array's leading (fastest-varying) dimension by
    a few elements so that column strides stop being multiples of the
    cache size — the classic conflict-miss cure the paper mentions for
    Jacobi ("manual experiments show that array padding can be used to
    stabilize this behavior", §4.2).

    Padding only changes the memory layout (declaration extents); index
    expressions are untouched, so semantics are preserved by
    construction. *)

(** [apply p ~array ~amount] pads [array]'s dimension 0 by [amount]
    elements.  Scalars and 1-D arrays are returned unchanged (padding a
    vector's only dimension would change nothing but waste). *)
val apply : Ir.Program.t -> array:string -> amount:int -> Ir.Program.t

(** Pad every heap array of rank >= 2. *)
val apply_all : Ir.Program.t -> amount:int -> Ir.Program.t

(** A good default padding for a machine: one L1 cache line. *)
val default_amount : Machine.t -> int
