(** Rectangular loop tiling: strip-mine selected loops and hoist their
    tile-controlling loops to the outermost positions. *)

type spec = {
  var : string;  (** element loop to tile *)
  size : int;  (** concrete tile size (>= 1) *)
  control : string;  (** name of the new tile-controlling variable *)
}

(** [apply p specs ~control_order] tiles each listed loop of the
    (rectangular, perfect) nest.  The resulting nest has the control
    loops first, in [control_order] (which must list exactly the control
    names of [specs]), then the element loops in their original relative
    order.  A tiled element loop [v] runs from its control variable to
    [min (control + size - 1) original_hi].

    Legality (full permutability of the tiled band) is the caller's
    responsibility. *)
val apply : Ir.Program.t -> spec list -> control_order:string list -> Ir.Program.t
