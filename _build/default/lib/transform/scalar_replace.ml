(* See the interface for the two replacement forms.  The walk rewrites
   every innermost loop; new register declarations are accumulated and
   appended to the program. *)

type class_info = {
  ref_ : Ir.Reference.t;  (* representative *)
  mutable reads : int;
  mutable writes : int;
}

(* Distinct reference classes (by structural equality) of the accesses,
   in first-occurrence order. *)
let classes_of accesses =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (r, w) ->
      let info =
        match Hashtbl.find_opt table r with
        | Some info -> info
        | None ->
          let info = { ref_ = r; reads = 0; writes = 0 } in
          Hashtbl.add table r info;
          order := info :: !order;
          info
      in
      if w then info.writes <- info.writes + 1 else info.reads <- info.reads + 1)
    accesses;
  List.rev !order

(* All accesses to [array] share [signature]?  (Alias refutability.) *)
let array_uniform accesses array signature =
  List.for_all
    (fun ((r : Ir.Reference.t), _) ->
      r.Ir.Reference.array <> array
      || List.for_all2 Ir.Aff.equal (Ir.Reference.coeff_signature r) signature)
    accesses

let array_written accesses array =
  List.exists
    (fun ((r : Ir.Reference.t), w) -> w && r.Ir.Reference.array = array)
    accesses

let max_rotation_span = 6

type rotation = {
  chain : (int * class_info) list;  (* offset along the rotation dim, ascending *)
  dim : int;
  rep : Ir.Reference.t;  (* representative ref for building indices *)
  o_min : int;
  o_max : int;
  regs : string array;  (* o_min + p <-> regs.(p) *)
}

let is_innermost (l : Ir.Stmt.loop) =
  not
    (List.exists
       (function Ir.Stmt.Loop _ -> true | Ir.Stmt.Assign _ | Ir.Stmt.Prefetch _ -> false)
       l.Ir.Stmt.body)

let transform_innermost ~heap ~fresh (l : Ir.Stmt.loop) =
  let v = l.Ir.Stmt.var in
  let accesses = Ir.Stmt.access_refs l.Ir.Stmt.body in
  let heap_accesses =
    List.filter (fun ((r : Ir.Reference.t), _) -> heap r.Ir.Reference.array) accesses
  in
  let classes = classes_of heap_accesses in
  (* --- invariant replacement --- *)
  let invariant =
    List.filter
      (fun c ->
        (not (Ir.Reference.mem v c.ref_))
        && array_uniform heap_accesses c.ref_.Ir.Reference.array
             (Ir.Reference.coeff_signature c.ref_))
      classes
  in
  let invariant =
    List.map (fun c -> (c, fresh (c.ref_.Ir.Reference.array ^ "_r"))) invariant
  in
  (* --- rotating replacement --- *)
  let rotations =
    if l.Ir.Stmt.step <> 1 || Ir.Bexp.as_aff l.Ir.Stmt.lo = None then []
    else
      (* Candidate arrays: read-only, uniform, with v in exactly one
         dimension with coefficient +1 and in no other dimension. *)
      let arrays =
        List.sort_uniq String.compare
          (List.map (fun c -> c.ref_.Ir.Reference.array)
             (List.filter (fun c -> Ir.Reference.mem v c.ref_) classes))
      in
      List.concat_map
        (fun array ->
          let members =
            List.filter (fun c -> c.ref_.Ir.Reference.array = array) classes
          in
          match members with
          | [] -> []
          | first :: _ ->
            let signature = Ir.Reference.coeff_signature first.ref_ in
            let dims_with_v =
              List.mapi (fun d s -> (d, Ir.Aff.coeff s v)) signature
              |> List.filter (fun (_, c) -> c <> 0)
            in
            if
              array_written heap_accesses array
              || not (array_uniform heap_accesses array signature)
              || List.length dims_with_v <> 1
              || snd (List.hd dims_with_v) <> 1
            then []
            else
              let dim = fst (List.hd dims_with_v) in
              (* Partition members by their offsets in the other dims. *)
              let key c =
                List.filteri (fun d _ -> d <> dim) (Ir.Reference.offsets c.ref_)
              in
              let keys = List.sort_uniq compare (List.map key members) in
              List.filter_map
                (fun k ->
                  let chain =
                    List.filter (fun c -> key c = k) members
                    |> List.map (fun c ->
                           (List.nth (Ir.Reference.offsets c.ref_) dim, c))
                    |> List.sort compare
                  in
                  match (chain, List.rev chain) with
                  | (o_min, rep_c) :: _ :: _, (o_max, _) :: _
                    when o_max - o_min <= max_rotation_span ->
                    let span = o_max - o_min in
                    let regs =
                      Array.init (span + 1) (fun _ -> fresh (array ^ "_rot"))
                    in
                    Some { chain; dim; rep = rep_c.ref_; o_min; o_max; regs }
                  | _ -> None)
                keys)
        arrays
  in
  (* Don't rotate classes that invariant replacement already took (it
     cannot: rotation classes mention v), but make sure we don't emit a
     rotation whose array is also invariant-replaced (impossible for the
     same signature; keep the check cheap by construction). *)
  let replace_map =
    List.concat
      (List.map (fun (c, reg) -> [ (c.ref_, Ir.Reference.scalar reg) ]) invariant
      @ List.map
          (fun rot ->
            List.map
              (fun (o, c) ->
                (c.ref_, Ir.Reference.scalar rot.regs.(o - rot.o_min)))
              rot.chain)
          rotations)
  in
  (* --- per-iteration operand reuse (the paper's "multiply A's and P's
     to registers"): a reference read several times in the (unrolled)
     body, to an array never written in the body, is loaded once into a
     register at the top of each iteration. --- *)
  let cse =
    List.filter_map
      (fun c ->
        if
          c.reads >= 2 && c.writes = 0
          && (not (array_written heap_accesses c.ref_.Ir.Reference.array))
          && not (List.mem_assoc c.ref_ replace_map)
        then Some (c, fresh (c.ref_.Ir.Reference.array ^ "_t"))
        else None)
      classes
  in
  let replace_map =
    replace_map
    @ List.map (fun (c, reg) -> (c.ref_, Ir.Reference.scalar reg)) cse
  in
  if replace_map = [] then [ Ir.Stmt.Loop l ]
  else begin
    let rewrite_ref r =
      match List.assoc_opt r replace_map with Some r' -> r' | None -> r
    in
    let rewrite_stmt = function
      | Ir.Stmt.Assign (lhs, rhs) ->
        Ir.Stmt.Assign (rewrite_ref lhs, Ir.Fexpr.map_refs rewrite_ref rhs)
      | Ir.Stmt.Prefetch r -> Ir.Stmt.Prefetch r
      | Ir.Stmt.Loop _ -> assert false (* innermost *)
    in
    let lo_aff =
      match Ir.Bexp.as_aff l.Ir.Stmt.lo with
      | Some a -> a
      | None -> Ir.Aff.zero (* rotations are empty in this case *)
    in
    (* Index of the element at chain position [p] with [v] at value [at]. *)
    let rot_ref rot ~p ~at =
      let idx =
        List.mapi
          (fun d a ->
            if d = rot.dim then
              let linear =
                Ir.Aff.sub a
                  (Ir.Aff.const (List.nth (Ir.Reference.offsets rot.rep) d))
              in
              Ir.Aff.add_const (Ir.Aff.subst v at linear) (rot.o_min + p)
            else a)
          rot.rep.Ir.Reference.idx
      in
      Ir.Reference.make rot.rep.Ir.Reference.array idx
    in
    (* Invariant temporaries are always pre-loaded — even for write-only
       classes — so that the store-back after a zero-trip loop writes the
       original value (a no-op) rather than garbage. *)
    let preheader =
      List.map
        (fun (c, reg) ->
          ignore c.reads;
          Ir.Stmt.assign (Ir.Reference.scalar reg) (Ir.Fexpr.ref_ c.ref_))
        invariant
      @ List.concat_map
          (fun rot ->
            List.init
              (Array.length rot.regs - 1)
              (fun p ->
                Ir.Stmt.assign
                  (Ir.Reference.scalar rot.regs.(p))
                  (Ir.Fexpr.ref_ (rot_ref rot ~p ~at:lo_aff))))
          rotations
    in
    let leading_loads =
      List.map
        (fun rot ->
          let p = Array.length rot.regs - 1 in
          Ir.Stmt.assign
            (Ir.Reference.scalar rot.regs.(p))
            (Ir.Fexpr.ref_ (rot_ref rot ~p ~at:(Ir.Aff.var v))))
        rotations
      @ List.map
          (fun (c, reg) ->
            Ir.Stmt.assign (Ir.Reference.scalar reg) (Ir.Fexpr.ref_ c.ref_))
          cse
    in
    let rotates =
      List.concat_map
        (fun rot ->
          List.init
            (Array.length rot.regs - 1)
            (fun p ->
              Ir.Stmt.assign
                (Ir.Reference.scalar rot.regs.(p))
                (Ir.Fexpr.ref_ (Ir.Reference.scalar rot.regs.(p + 1)))))
        rotations
    in
    let postexit =
      List.filter_map
        (fun (c, reg) ->
          if c.writes > 0 then
            Some (Ir.Stmt.assign c.ref_ (Ir.Fexpr.ref_ (Ir.Reference.scalar reg)))
          else None)
        invariant
    in
    let body' = leading_loads @ List.map rewrite_stmt l.Ir.Stmt.body @ rotates in
    preheader @ [ Ir.Stmt.Loop { l with Ir.Stmt.body = body' } ] @ postexit
  end

let apply (p : Ir.Program.t) =
  let new_decls = ref [] in
  let taken = Hashtbl.create 16 in
  let declared = Hashtbl.create 16 in
  List.iter (fun (d : Ir.Decl.t) -> Hashtbl.replace taken d.Ir.Decl.name ()) p.Ir.Program.decls;
  List.iter (fun v -> Hashtbl.replace taken v ()) (Ir.Stmt.loop_vars p.Ir.Program.body);
  List.iter (fun s -> Hashtbl.replace taken s ()) p.Ir.Program.params;
  (* Register names are deterministic per innermost loop, so disjoint
     sibling loops (main + remainder of an unroll) reuse the same
     temporaries instead of doubling register pressure.  Reuse is safe
     because every temporary is written (pre-loaded) before use. *)
  let make_fresh () =
    let per_base = Hashtbl.create 8 in
    let rec fresh base =
      let k = try Hashtbl.find per_base base with Not_found -> 0 in
      Hashtbl.replace per_base base (k + 1);
      let name = Printf.sprintf "%s%d" base k in
      if Hashtbl.mem declared name then name
      else if Hashtbl.mem taken name then fresh base
      else begin
        Hashtbl.replace taken name ();
        Hashtbl.replace declared name ();
        new_decls := Ir.Decl.register name :: !new_decls;
        name
      end
    in
    fresh
  in
  let heap name =
    match Ir.Program.find_decl p name with
    | Some d -> d.Ir.Decl.storage = Ir.Decl.Heap
    | None -> false
  in
  let rec go stmts = List.concat_map go_stmt stmts
  and go_stmt = function
    | (Ir.Stmt.Assign _ | Ir.Stmt.Prefetch _) as s -> [ s ]
    | Ir.Stmt.Loop l ->
      if is_innermost l then transform_innermost ~heap ~fresh:(make_fresh ()) l
      else [ Ir.Stmt.Loop { l with Ir.Stmt.body = go l.Ir.Stmt.body } ]
  in
  let body = go p.Ir.Program.body in
  let p = Ir.Program.with_body p body in
  List.fold_left Ir.Program.add_decl p (List.rev !new_decls)

let count_registers p =
  let before =
    List.length
      (List.filter
         (fun (d : Ir.Decl.t) -> d.Ir.Decl.storage = Ir.Decl.Register)
         p.Ir.Program.decls)
  in
  let after =
    List.length
      (List.filter
         (fun (d : Ir.Decl.t) -> d.Ir.Decl.storage = Ir.Decl.Register)
         (apply p).Ir.Program.decls)
  in
  after - before
