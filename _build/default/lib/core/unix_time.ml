(* Sys.time is CPU time, which is what search-cost accounting wants in a
   single-threaded tuner (and is immune to machine load). *)
let now () = Sys.time ()
