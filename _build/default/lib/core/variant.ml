type copy_dim = { tiled_loop : string; bound : Ir.Aff.t }

type copy_spec = {
  array : string;
  temp : string;
  at : string;
  dims : copy_dim list;
}

type level_note = {
  level : string;
  reuse_loop : string;
  transf : string;
  level_params : string list;
  level_constraints : Constr.t list;
}

type t = {
  name : string;
  kernel : Kernels.Kernel.t;
  element_order : string list;
  tiles : (string * string) list;
  unrolls : (string * string) list;
  copies : copy_spec list;
  constraints : Constr.t list;
  notes : level_note list;
}

let control_of v = v ^ v

let params t =
  List.map (fun (loop, _) -> Param.unroll loop) t.unrolls
  @ List.map (fun (loop, _) -> Param.tile loop) t.tiles

let param_names t = List.map snd t.unrolls @ List.map snd t.tiles

let binding_lookup ~n bindings x =
  if x = "n" then n
  else
    match List.assoc_opt x bindings with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Variant: unbound parameter %s" x)

let feasible t ~n bindings =
  let lookup = binding_lookup ~n bindings in
  let ranges_ok =
    List.for_all (fun (_, p) -> let u = lookup p in u >= 1 && u <= 64) t.unrolls
    && List.for_all (fun (_, p) -> let s = lookup p in s >= 1 && s <= n) t.tiles
  in
  ranges_ok && List.for_all (fun c -> Constr.satisfied c lookup) t.constraints

let instantiate t ~bindings =
  let value p =
    match List.assoc_opt p bindings with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Variant.instantiate: unbound %s" p)
  in
  let p = Transform.Permute.apply t.kernel.Kernels.Kernel.program t.element_order in
  let p =
    if t.tiles = [] then p
    else
      Transform.Tile.apply p
        (List.map
           (fun (v, param) ->
             { Transform.Tile.var = v; size = value param; control = control_of v })
           t.tiles)
        ~control_order:(List.map (fun (v, _) -> control_of v) t.tiles)
  in
  let p =
    List.fold_left
      (fun p (c : copy_spec) ->
        let tile_param_of v =
          match List.assoc_opt v t.tiles with
          | Some param -> param
          | None ->
            invalid_arg
              (Printf.sprintf "Variant.instantiate: copy dim loop %s not tiled" v)
        in
        Transform.Copy_opt.apply p ~array:c.array ~temp:c.temp
          ~at:(control_of c.at)
          ~dims:
            (List.map
               (fun (d : copy_dim) ->
                 {
                   Transform.Copy_opt.base = Ir.Aff.var (control_of d.tiled_loop);
                   extent = value (tile_param_of d.tiled_loop);
                   bound = d.bound;
                 })
               c.dims))
      p t.copies
  in
  let p =
    List.fold_left
      (fun p (v, param) -> Transform.Unroll_jam.apply p v (value param))
      p t.unrolls
  in
  Transform.Scalar_replace.apply p

let pp fmt t =
  Format.fprintf fmt "variant %s: order [%s]" t.name
    (String.concat " " t.element_order);
  if t.unrolls <> [] then
    Format.fprintf fmt ", unroll %s"
      (String.concat ","
         (List.map (fun (v, p) -> Printf.sprintf "%s:%s" v p) t.unrolls));
  if t.tiles <> [] then
    Format.fprintf fmt ", tile %s"
      (String.concat ","
         (List.map (fun (v, p) -> Printf.sprintf "%s:%s" v p) t.tiles));
  List.iter (fun (c : copy_spec) -> Format.fprintf fmt ", copy %s->%s" c.array c.temp) t.copies;
  Format.fprintf fmt "@.";
  List.iter
    (fun c -> Format.fprintf fmt "  constraint %s@." (Constr.describe c))
    t.constraints

let table_rows t =
  List.map
    (fun note ->
      ( note.level,
        String.uppercase_ascii note.reuse_loop,
        note.transf,
        String.concat ", " (List.map String.uppercase_ascii note.level_params),
        String.concat "; " (List.map Constr.describe note.level_constraints) ))
    t.notes
