type outcome = {
  variant : Variant.t;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  program : Ir.Program.t;
  measurement : Executor.measurement;
}

type state = {
  machine : Machine.t;
  n : int;
  mode : Executor.mode;
  log : Search_log.t option;
  variant : Variant.t;
  memo : ((string * int) list * (string * int) list, float option) Hashtbl.t;
  mutable best : outcome option;
}

let line_elems st = Machine.line_elems st.machine 0

let build st ~bindings ~prefetch =
  match Variant.instantiate st.variant ~bindings with
  | exception Invalid_argument _ -> None
  | program ->
    let program =
      List.fold_left
        (fun p (array, distance) ->
          Transform.Prefetch_insert.apply p ~array ~distance
            ~line_elems:(line_elems st))
        program prefetch
    in
    Some program

(* Evaluate one point; memoized.  Returns simulated cycles, or [None]
   when infeasible. *)
let evaluate st ~bindings ~prefetch =
  let bindings = List.sort compare bindings in
  let prefetch = List.sort compare prefetch in
  let key = (bindings, prefetch) in
  match Hashtbl.find_opt st.memo key with
  | Some cached -> cached
  | None ->
    let result =
      if not (Variant.feasible st.variant ~n:st.n bindings) then None
      else
        match build st ~bindings ~prefetch with
        | None -> None
        | Some program -> (
          match
            Executor.measure st.machine st.variant.Variant.kernel ~n:st.n
              ~mode:st.mode program
          with
          | exception Invalid_argument _ -> None
          | m ->
            (match st.log with
            | Some log ->
              Search_log.record log
                {
                  Search_log.variant = st.variant.Variant.name;
                  bindings;
                  prefetch;
                  cycles = Executor.cycles m;
                  mflops = m.Executor.mflops;
                }
            | None -> ());
            let c = Executor.cycles m in
            (match st.best with
            | Some b when Executor.cycles b.measurement <= c -> ()
            | _ ->
              st.best <-
                Some { variant = st.variant; bindings; prefetch; program; measurement = m });
            Some c)
    in
    Hashtbl.replace st.memo key result;
    result

(* --- stage search over a subset of parameters --- *)

let set_params bindings updates =
  List.map
    (fun (k, v) -> match List.assoc_opt k updates with Some v' -> (k, v') | None -> (k, v))
    bindings

(* Largest uniform value for the stage parameters that stays feasible
   (the model's initial point: the footprint heuristic saturates the
   capacity constraints). *)
let initial_uniform st stage bindings =
  let feasible_at m =
    Variant.feasible st.variant ~n:st.n
      (set_params bindings (List.map (fun p -> (p, m)) stage))
  in
  let rec grow m = if m * 2 <= 4096 && feasible_at (m * 2) then grow (m * 2) else m in
  let rec refine lo hi =
    (* invariant: feasible_at lo, not feasible_at (hi+1) conceptually *)
    if hi - lo <= 1 then if feasible_at hi then hi else lo
    else
      let mid = (lo + hi) / 2 in
      if feasible_at mid then refine mid hi else refine lo mid
  in
  if not (feasible_at 1) then None
  else
    let m = grow 1 in
    (* try to push between m and 2m *)
    Some (if feasible_at (m * 2) then m * 2 else refine m (m * 2))

let halve v = max 1 (v / 2)

(* One shape-walk sweep: try doubling p while halving q, for all ordered
   pairs; move greedily while improving. *)
let rec shape_walk st stage ~prefetch bindings current =
  let candidates =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun q ->
            if p = q then None
            else
              let bp = List.assoc p bindings and bq = List.assoc q bindings in
              if bq <= 1 then None
              else Some (set_params bindings [ (p, bp * 2); (q, halve bq) ]))
          stage)
      stage
  in
  let best =
    List.fold_left
      (fun acc cand ->
        match evaluate st ~bindings:cand ~prefetch with
        | Some c -> (
          match acc with
          | Some (_, c') when c' <= c -> acc
          | _ -> Some (cand, c))
        | None -> acc)
      None candidates
  in
  match best with
  | Some (cand, c) when c < current -> shape_walk st stage ~prefetch cand c
  | _ -> (bindings, current)

(* Linear refinement: nudge each parameter by +-delta while improving. *)
let rec linear_refine st stage ~prefetch ~delta bindings current =
  let candidates =
    List.concat_map
      (fun p ->
        let v = List.assoc p bindings in
        let d = delta p in
        List.filter_map
          (fun v' -> if v' >= 1 && v' <> v then Some (set_params bindings [ (p, v') ]) else None)
          [ v + d; v - d ])
      stage
  in
  let best =
    List.fold_left
      (fun acc cand ->
        match evaluate st ~bindings:cand ~prefetch with
        | Some c -> (
          match acc with
          | Some (_, c') when c' <= c -> acc
          | _ -> Some (cand, c))
        | None -> acc)
      None candidates
  in
  match best with
  | Some (cand, c) when c < current ->
    linear_refine st stage ~prefetch ~delta cand c
  | _ -> (bindings, current)

let stage_search st stage ~prefetch ~delta bindings =
  if stage = [] then
    match evaluate st ~bindings ~prefetch with
    | Some c -> Some (bindings, c)
    | None -> None
  else
    match initial_uniform st stage bindings with
    | None -> None
    | Some m0 ->
      let start = set_params bindings (List.map (fun p -> (p, m0)) stage) in
      (match evaluate st ~bindings:start ~prefetch with
      | None -> None
      | Some c0 ->
        (* Alternate shape walks and footprint halvings while improving. *)
        let rec outer bindings current =
          let bindings, current = shape_walk st stage ~prefetch bindings current in
          let halved =
            set_params bindings
              (List.map (fun p -> (p, halve (List.assoc p bindings))) stage)
          in
          if halved = bindings then (bindings, current)
          else
            match evaluate st ~bindings:halved ~prefetch with
            | Some c when c < current ->
              let b', c' = shape_walk st stage ~prefetch halved c in
              outer b' c'
            | _ -> (bindings, current)
        in
        let bindings, current = outer start c0 in
        Some (linear_refine st stage ~prefetch ~delta bindings current))

(* "To simplify the code generated, tiling parameter values that are
   multiples of any tile size or unroll factor previously selected are
   favored" (§3.2): snap each tile to a nearby multiple of its loop's
   unroll factor or of the cache line, keeping the snap if performance
   does not degrade beyond a whisker. *)
let snap_multiples st ~prefetch bindings current =
  let tolerance = 1.0 in
  List.fold_left
    (fun (bindings, current) (loop, tparam) ->
      let v = List.assoc tparam bindings in
      let bases =
        (match List.assoc_opt loop st.variant.Variant.unrolls with
        | Some uparam -> [ List.assoc uparam bindings ]
        | None -> [])
        @ [ line_elems st ]
      in
      List.fold_left
        (fun (bindings, current) base ->
          if base <= 1 || v mod base = 0 then (bindings, current)
          else
            let candidates = [ v / base * base; ((v / base) + 1) * base ] in
            List.fold_left
              (fun (bindings, current) v' ->
                if v' < 1 then (bindings, current)
                else
                  let cand = set_params bindings [ (tparam, v') ] in
                  match evaluate st ~bindings:cand ~prefetch with
                  | Some c when c <= current *. tolerance -> (cand, c)
                  | _ -> (bindings, current))
              (bindings, current) candidates)
        (bindings, current) bases)
    (bindings, current) st.variant.Variant.tiles

(* --- prefetch search --- *)

let prefetch_search st ~bindings current_cycles =
  match build st ~bindings ~prefetch:[] with
  | None -> ([], current_cycles)
  | Some program ->
    let candidates = Transform.Prefetch_insert.candidates program in
    List.fold_left
      (fun (chosen, best_c) array ->
        let try_distance d = evaluate st ~bindings ~prefetch:((array, d) :: chosen) in
        match try_distance 1 with
        | Some c1 when c1 < best_c ->
          (* Grow the distance while it improves; keep the smallest best. *)
          let rec grow d best_d best_c =
            let d' = d * 2 in
            if d' > 32 then (best_d, best_c)
            else
              match try_distance d' with
              | Some c when c < best_c -> grow d' d' c
              | _ -> (best_d, best_c)
          in
          let d, c = grow 1 1 c1 in
          ((array, d) :: chosen, c)
        | _ -> (chosen, best_c))
      ([], current_cycles)
      candidates

(* --- post-prefetch adjustment: grow the innermost tile --- *)

let adjust st ~prefetch bindings current =
  match List.rev st.variant.Variant.tiles with
  | [] -> (bindings, current)
  | (innermost_tiled, param) :: _ ->
    ignore innermost_tiled;
    let rec grow bindings current =
      let v = List.assoc param bindings in
      let cand = set_params bindings [ (param, v * 2) ] in
      match evaluate st ~bindings:cand ~prefetch with
      | Some c when c < current -> grow cand c
      | _ -> (bindings, current)
    in
    grow bindings current

let tune_variant machine ~n ~mode ~log variant =
  let st =
    {
      machine;
      n;
      mode;
      log = Some log;
      variant;
      memo = Hashtbl.create 64;
      best = None;
    }
  in
  let unroll_params = List.map snd variant.Variant.unrolls in
  let tile_params = List.map snd variant.Variant.tiles in
  let all_params = unroll_params @ tile_params in
  let start = List.map (fun p -> (p, 1)) all_params in
  (* Give the cache tiles their model-initial (uniform, capacity-filling)
     values before searching the register tiles, so stage 1 does not run
     against degenerate size-1 tiles. *)
  let start =
    match initial_uniform st tile_params start with
    | Some m when tile_params <> [] ->
      set_params start (List.map (fun p -> (p, m)) tile_params)
    | _ -> start
  in
  let delta_unroll _ = 1 in
  let line = line_elems st in
  (* The paper's linear-refinement step: max(register tile, line size). *)
  let delta_tile _ = max 1 line in
  (* Stage 1: unroll factors. *)
  match stage_search st unroll_params ~prefetch:[] ~delta:delta_unroll start with
  | None -> None
  | Some (b1, _) -> (
    (* Stage 2: tile sizes, carrying the unrolls over. *)
    match stage_search st tile_params ~prefetch:[] ~delta:delta_tile b1 with
    | None -> None
    | Some (b2, c2) ->
      let b2, c2 = snap_multiples st ~prefetch:[] b2 c2 in
      let prefetch, c3 = prefetch_search st ~bindings:b2 c2 in
      let b3, _ = adjust st ~prefetch b2 c3 in
      ignore b3;
      st.best)

let model_point machine ~n variant =
  let st =
    {
      machine;
      n;
      mode = Executor.Full;
      log = None;
      variant;
      memo = Hashtbl.create 1;
      best = None;
    }
  in
  let unroll_params = List.map snd variant.Variant.unrolls in
  let tile_params = List.map snd variant.Variant.tiles in
  let start = List.map (fun p -> (p, 1)) (unroll_params @ tile_params) in
  match initial_uniform st tile_params start with
  | None -> None
  | Some mt ->
    let with_tiles =
      if tile_params = [] then start
      else set_params start (List.map (fun p -> (p, mt)) tile_params)
    in
    (match initial_uniform st unroll_params with_tiles with
    | None -> None
    | Some mu ->
      if unroll_params = [] then Some with_tiles
      else Some (set_params with_tiles (List.map (fun p -> (p, mu)) unroll_params)))

let measure_point machine ~n ~mode ?log variant ~bindings ~prefetch =
  let st =
    { machine; n; mode; log; variant; memo = Hashtbl.create 4; best = None }
  in
  match evaluate st ~bindings ~prefetch with
  | Some _ -> st.best
  | None -> None
