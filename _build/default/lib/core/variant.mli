(** A parameterized code variant, the output of phase 1 (Figure 3): a
    loop order, the loops to unroll-and-jam, the loops to tile, the
    arrays to copy, and the constraints on parameter values.  Phase 2
    binds the parameters and instantiates the variant into an executable
    program. *)

type copy_dim = {
  tiled_loop : string;
      (** loop whose tile covers this array dimension; the copy extent is
          that loop's tile parameter and the base its control variable *)
  bound : Ir.Aff.t;  (** array extent in this dimension, for clipping *)
}

type copy_spec = {
  array : string;
  temp : string;
  at : string;  (** tiled loop whose control loop hosts the copy *)
  dims : copy_dim list;
}

(** One row of the paper's Table 4. *)
type level_note = {
  level : string;  (** "Reg", "L1", "L2" *)
  reuse_loop : string;
  transf : string;
  level_params : string list;
  level_constraints : Constr.t list;
}

type t = {
  name : string;
  kernel : Kernels.Kernel.t;
  element_order : string list;  (** outermost first; last = register loop *)
  tiles : (string * string) list;
      (** (loop, tile parameter), in control-loop order outermost first *)
  unrolls : (string * string) list;  (** (loop, unroll parameter) *)
  copies : copy_spec list;
  constraints : Constr.t list;
  notes : level_note list;
}

(** Name of the tile-controlling variable for a tiled loop ("k" -> "kk"). *)
val control_of : string -> string

val params : t -> Param.t list

(** Parameter-name list in a canonical order (unrolls then tiles). *)
val param_names : t -> string list

(** Are the bindings feasible: all phase-1 constraints hold, unroll
    factors lie in [1,64], and tile sizes in [1,n]? *)
val feasible : t -> n:int -> (string * int) list -> bool

(** Build the executable program: permute, tile, copy, unroll-and-jam,
    scalar-replace (prefetch is layered separately by the search).
    @raise Invalid_argument on malformed bindings. *)
val instantiate : t -> bindings:(string * int) list -> Ir.Program.t

val pp : Format.formatter -> t -> unit

(** Render the variant's notes as rows (level, loop, transformation,
    parameters, constraints) — the shape of the paper's Table 4. *)
val table_rows : t -> (string * string * string * string * string) list
