type mode = Full | Budget of int

let default_budget = Budget 4_000_000

type measurement = {
  cost : Memsim.Cost.t;
  counters : Memsim.Counters.t;
  stats : Ir.Exec.stats;
  scale : float;
  mflops : float;
}

let measure machine (kernel : Kernels.Kernel.t) ~n ~mode program =
  let hierarchy = Memsim.Hierarchy.create machine in
  let params = [ (kernel.Kernels.Kernel.size_param, n) ] in
  let register_budget = Machine.available_registers machine in
  let sink = Memsim.Hierarchy.sink hierarchy in
  let flop_budget = match mode with Full -> None | Budget b -> Some b in
  (* In budget (sampled) mode, run a short warm-up pass first and discard
     its counters, so compulsory misses of the sampled prefix do not
     masquerade as steady-state behaviour.  Addresses are deterministic
     across runs, so the cache contents carry over. *)
  (match mode with
  | Full -> ()
  | Budget b ->
    let total = kernel.Kernels.Kernel.flops n in
    if b < total then begin
      ignore
        (Ir.Exec.run ~sink ~flop_budget:(max 1 (b / 2)) ~register_budget ~params
           program);
      Memsim.Hierarchy.reset_counters hierarchy
    end);
  let result =
    Ir.Exec.run ~sink ?flop_budget ~register_budget ~params program
  in
  let counters = Memsim.Hierarchy.counters hierarchy in
  let cost = Memsim.Cost.evaluate machine counters result.Ir.Exec.stats in
  let total_flops = kernel.Kernels.Kernel.flops n in
  let scale =
    if result.Ir.Exec.stats.Ir.Exec.completed then 1.0
    else if result.Ir.Exec.stats.Ir.Exec.flops > 0 then
      float_of_int total_flops /. float_of_int result.Ir.Exec.stats.Ir.Exec.flops
    else 1.0
  in
  let cost = if scale = 1.0 then cost else Memsim.Cost.scale scale cost in
  {
    cost;
    counters = Memsim.Counters.copy counters;
    stats = result.Ir.Exec.stats;
    scale;
    mflops = cost.Memsim.Cost.mflops;
  }

let cycles m = m.cost.Memsim.Cost.total_cycles
