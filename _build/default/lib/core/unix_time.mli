(** Minimal monotonic-ish wall-clock without a Unix dependency. *)

val now : unit -> float
