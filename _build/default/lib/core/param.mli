(** Optimization parameters attached to code variants: unroll factors and
    tile sizes, named as in the paper (e.g. [ui], [tk]). *)

type kind = Unroll | Tile

type t = {
  name : string;
  kind : kind;
  loop : string;  (** the loop variable the parameter controls *)
}

val unroll : string -> t
val tile : string -> t
val pp : Format.formatter -> t -> unit
