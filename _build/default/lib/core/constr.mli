(** Capacity constraints attached by phase 1 to the parameters of a code
    variant (paper §3.1, Table 4).  All are evaluated against a binding
    of parameter names (plus the problem size) to integers. *)

type t =
  | Poly_le of { poly : Analysis.Poly.t; bound : int; what : string }
      (** footprint in elements vs (scaled) capacity, e.g.
          [TJ*TK <= 2048] *)
  | Pages_le of {
      elems : Analysis.Poly.t;
      runs : Analysis.Poly.t;  (** distinct contiguous runs *)
      page_elems : int;
      bound : int;
      what : string;
    }
      (** TLB footprint: pages >= max(runs, elems/page) must not exceed
          the entry count *)
  | Stride_not_multiple of {
      elems : Analysis.Poly.t;
      modulus : int;
      what : string;
    }
      (** the paper's copy-array conflict-avoidance condition:
          [mod (Size(CopyArrays), Capacity(level-1)) <> 0] — trivially
          satisfied when the copy array fits below the modulus *)

val satisfied : t -> (string -> int) -> bool

(** Parameters mentioned by the constraint. *)
val vars : t -> string list

val describe : t -> string
val pp : Format.formatter -> t -> unit
