type kind = Unroll | Tile

type t = { name : string; kind : kind; loop : string }

let unroll loop = { name = "u" ^ loop; kind = Unroll; loop }
let tile loop = { name = "t" ^ loop; kind = Tile; loop }

let pp fmt t =
  Format.fprintf fmt "%s(%s %s)" t.name
    (match t.kind with Unroll -> "unroll" | Tile -> "tile")
    t.loop
