(** The "empirical" in guided empirical search: run an instantiated
    program on the simulated machine and measure it.

    Two modes: [Full] simulates the entire computation; [Budget f] stops
    after [f] useful flops and extrapolates steady-state cycles to the
    full problem — the sampled-simulation substitute for wall-clock
    timing on real hardware (see DESIGN.md). *)

type mode = Full | Budget of int

(** A sensible default budget for searches (a few tens of millions of
    simulated accesses per candidate). *)
val default_budget : mode

type measurement = {
  cost : Memsim.Cost.t;  (** extrapolated to the full problem in budget mode *)
  counters : Memsim.Counters.t;  (** raw (unscaled) hierarchy counters *)
  stats : Ir.Exec.stats;  (** raw executor statistics *)
  scale : float;  (** extrapolation factor (1.0 when complete) *)
  mflops : float;  (** convenience: [cost.mflops] *)
}

(** [measure machine kernel ~n ~mode program] runs [program] (an
    instantiated variant of [kernel]) with the kernel's size parameter
    bound to [n], streaming accesses through a fresh hierarchy of
    [machine], spilling registers beyond the machine's available
    register file.

    @raise Invalid_argument if the program is malformed. *)
val measure :
  Machine.t -> Kernels.Kernel.t -> n:int -> mode:mode -> Ir.Program.t -> measurement

(** Total simulated cycles — the search's objective function. *)
val cycles : measurement -> float
