lib/core/constr.mli: Analysis Format
