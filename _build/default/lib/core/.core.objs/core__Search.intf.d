lib/core/search.mli: Executor Ir Machine Search_log Variant
