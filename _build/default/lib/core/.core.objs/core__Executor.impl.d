lib/core/executor.ml: Ir Kernels Machine Memsim
