lib/core/param.ml: Format
