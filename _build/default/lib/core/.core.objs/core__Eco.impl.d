lib/core/eco.ml: Derive Executor Kernels List Param Printf Search Search_log Variant
