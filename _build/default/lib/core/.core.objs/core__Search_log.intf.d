lib/core/search_log.mli: Format
