lib/core/constr.ml: Analysis Format List Printf String
