lib/core/search.ml: Executor Hashtbl Ir List Machine Search_log Transform Variant
