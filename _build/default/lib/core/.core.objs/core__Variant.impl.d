lib/core/variant.ml: Constr Format Ir Kernels List Param Printf String Transform
