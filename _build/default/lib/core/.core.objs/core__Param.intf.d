lib/core/param.mli: Format
