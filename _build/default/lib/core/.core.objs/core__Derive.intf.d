lib/core/derive.mli: Kernels Machine Variant
