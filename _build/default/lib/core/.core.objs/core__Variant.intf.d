lib/core/variant.mli: Constr Format Ir Kernels Param
