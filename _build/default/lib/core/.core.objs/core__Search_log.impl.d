lib/core/search_log.ml: Format List Printf String Unix_time
