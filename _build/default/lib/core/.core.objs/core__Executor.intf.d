lib/core/executor.mli: Ir Kernels Machine Memsim
