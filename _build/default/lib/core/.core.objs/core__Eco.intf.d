lib/core/eco.mli: Executor Kernels Machine Search Search_log Variant
