lib/core/derive.ml: Analysis Constr Hashtbl Ir Kernels List Machine Param Printf String Variant
