(** Log of every empirical experiment the search runs — the data behind
    the paper's §4.3 search-cost comparison. *)

type entry = {
  variant : string;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  cycles : float;
  mflops : float;
}

type t

val create : unit -> t
val record : t -> entry -> unit
val entries : t -> entry list

(** Number of distinct points evaluated (cache hits excluded). *)
val points : t -> int

(** Wall-clock seconds since [create]. *)
val seconds : t -> float

val best : t -> entry option
val pp : Format.formatter -> t -> unit
