type result = {
  outcome : Search.outcome;
  measurement : Executor.measurement;
  variants : Variant.t list;
  log : Search_log.t;
}

let optimize ?(mode = Executor.default_budget) ?(max_variants = 4) machine kernel ~n =
  let variants = Derive.variants machine kernel in
  let log = Search_log.create () in
  (* Triage: measure every variant once at its model-initial point and
     fully search only the most promising — the "models limit the search
     to a small number of candidate implementations" part of the
     paper's abstract. *)
  let triaged =
    let scored =
      List.filter_map
        (fun v ->
          match Search.model_point machine ~n v with
          | None -> None
          | Some bindings -> (
            match
              Search.measure_point machine ~n ~mode ~log v ~bindings ~prefetch:[]
            with
            | Some o -> Some (v, Executor.cycles o.Search.measurement)
            | None -> None))
        variants
    in
    let sorted = List.sort (fun (_, c1) (_, c2) -> compare c1 c2) scored in
    List.filteri (fun i _ -> i < max_variants) (List.map fst sorted)
  in
  let outcomes =
    List.filter_map (Search.tune_variant machine ~n ~mode ~log) triaged
  in
  match outcomes with
  | [] ->
    failwith
      (Printf.sprintf "Eco.optimize: no feasible variant for %s at n=%d"
         kernel.Kernels.Kernel.name n)
  | o :: rest ->
    let best =
      List.fold_left
        (fun acc o ->
          if Executor.cycles o.Search.measurement < Executor.cycles acc.Search.measurement
          then o
          else acc)
        o rest
    in
    { outcome = best; measurement = best.Search.measurement; variants; log }

let remeasure ?(mode = Executor.default_budget) machine result ~n =
  let o = result.outcome in
  (* A tuned version keeps its parameters across problem sizes; tiles
     larger than the problem simply cover the whole array. *)
  let tile_params =
    List.filter_map
      (fun (p : Param.t) ->
        match p.Param.kind with
        | Param.Tile -> Some p.Param.name
        | Param.Unroll -> None)
      (Variant.params o.Search.variant)
  in
  let bindings =
    List.map
      (fun (k, v) -> if List.mem k tile_params then (k, min v n) else (k, v))
      o.Search.bindings
  in
  match
    Search.measure_point machine ~n ~mode o.Search.variant ~bindings
      ~prefetch:o.Search.prefetch
  with
  | Some outcome -> Some outcome.Search.measurement
  | None -> None
