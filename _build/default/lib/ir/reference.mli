(** Array references with affine index expressions.

    Index dimensions are stored fastest-varying first (column-major, as in
    the paper's Fortran kernels): [idx.(0)] walks contiguous memory. *)

type t = {
  array : string;
  idx : Aff.t list;  (** fastest-varying dimension first *)
}

val make : string -> Aff.t list -> t

(** A scalar (0-dimensional) reference, used for register temporaries. *)
val scalar : string -> t

val rank : t -> int
val vars : t -> string list
val mem : string -> t -> bool
val subst : string -> Aff.t -> t -> t
val rename : string -> string -> t -> t

(** [coeff_signature r] is, per dimension, the variable terms of the index
    expression with the constant stripped.  Two references with equal
    signatures differ only by constant offsets — the condition for group
    reuse. *)
val coeff_signature : t -> Aff.t list

(** Constant offsets per dimension. *)
val offsets : t -> int list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
