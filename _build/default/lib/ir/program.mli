(** A complete kernel: symbolic size parameters, array declarations and a
    statement list. *)

type t = {
  name : string;
  params : string list;  (** symbolic sizes, e.g. ["n"] *)
  decls : Decl.t list;
  body : Stmt.t list;
}

val make : name:string -> params:string list -> decls:Decl.t list -> Stmt.t list -> t
val find_decl : t -> string -> Decl.t option
val find_decl_exn : t -> string -> Decl.t
val add_decl : t -> Decl.t -> t
val with_body : t -> Stmt.t list -> t
val with_name : t -> string -> t

(** Heap arrays in declaration order. *)
val heap_arrays : t -> Decl.t list

(** [fresh_name p base] is a name starting with [base] that clashes with
    no declaration, parameter or loop variable of [p]. *)
val fresh_name : t -> string -> string

(** Checks well-formedness: every referenced array is declared with a
    matching rank, loop variables are distinct from parameters and not
    shadowed, and index expressions use only in-scope variables.
    Returns the list of violations (empty = well-formed). *)
val validate : t -> string list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
