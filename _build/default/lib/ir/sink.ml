type t = {
  load : int -> unit;
  store : int -> unit;
  prefetch : int -> unit;
}

let null = { load = ignore; store = ignore; prefetch = ignore }
