(** Fortran 90 code generation — the output language of the paper's
    SUIF-based implementation (which consumed and produced Fortran).

    Conventions:
    - one subroutine per program; symbolic parameters become [integer]
      arguments and heap arrays with symbolic extents become
      assumed-shape-free explicit arrays indexed from 0, so subscripts
      match the IR exactly (Fortran is column-major like the IR, so the
      dimension order is preserved as written);
    - constant-extent heap arrays (copy temporaries) and register
      scalars become local [real(8)] variables ([save] for the
      temporaries);
    - [min]/[max] map to intrinsics; the unroll remainder's floor
      arithmetic uses [floor] on real division avoided in favour of
      integer arithmetic via the [eco_floormult] helper emitted in the
      preamble module;
    - prefetches become comments (standard Fortran has no portable
      prefetch intrinsic), preserving the annotation for vendor
      compilers. *)

val subroutine_code : ?name:string -> Program.t -> string

(** Helper functions as a Fortran module. *)
val preamble : string

(** Complete file: helper module + subroutine. *)
val file : ?name:string -> Program.t -> string
