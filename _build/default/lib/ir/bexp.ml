type t =
  | Aff of Aff.t
  | Min of t * t
  | Max of t * t
  | Add of t * t
  | Floor_mult of t * int

let aff a = Aff a
let const c = Aff (Aff.const c)
let var x = Aff (Aff.var x)

let min_ a b = if a = b then a else Min (a, b)
let max_ a b = if a = b then a else Max (a, b)

let add a b =
  match (a, b) with
  | Aff x, Aff y -> Aff (Aff.add x y)
  | _ -> Add (a, b)

let add_aff b a =
  if Aff.equal a Aff.zero then b
  else match b with Aff x -> Aff (Aff.add x a) | _ -> Add (b, Aff a)

let add_const b c = add_aff b (Aff.const c)

let floor_mult b k =
  assert (k > 0);
  if k = 1 then b else Floor_mult (b, k)

let as_aff = function Aff a -> Some a | Min _ | Max _ | Add _ | Floor_mult _ -> None

let rec is_const = function
  | Aff a -> Aff.is_const a
  | Min (a, b) -> (
    match (is_const a, is_const b) with
    | Some x, Some y -> Some (min x y)
    | _ -> None)
  | Max (a, b) -> (
    match (is_const a, is_const b) with
    | Some x, Some y -> Some (max x y)
    | _ -> None)
  | Add (a, b) -> (
    match (is_const a, is_const b) with
    | Some x, Some y -> Some (x + y)
    | _ -> None)
  | Floor_mult (a, k) -> (
    match is_const a with
    | Some x -> Some (k * if x >= 0 then x / k else -(((-x) + k - 1) / k))
    | None -> None)

let rec vars_acc acc = function
  | Aff a -> List.rev_append (Aff.vars a) acc
  | Min (a, b) | Max (a, b) | Add (a, b) -> vars_acc (vars_acc acc a) b
  | Floor_mult (a, _) -> vars_acc acc a

let vars b = List.sort_uniq String.compare (vars_acc [] b)
let mem x b = List.mem x (vars b)

let rec subst x e = function
  | Aff a -> Aff (Aff.subst x e a)
  | Min (a, b) -> Min (subst x e a, subst x e b)
  | Max (a, b) -> Max (subst x e a, subst x e b)
  | Add (a, b) -> Add (subst x e a, subst x e b)
  | Floor_mult (a, k) -> Floor_mult (subst x e a, k)

let rename x y b = subst x (Aff.var y) b

let floor_div x k = if x >= 0 then x / k else -(((-x) + k - 1) / k)

let rec eval lookup = function
  | Aff a -> Aff.eval lookup a
  | Min (a, b) -> min (eval lookup a) (eval lookup b)
  | Max (a, b) -> max (eval lookup a) (eval lookup b)
  | Add (a, b) -> eval lookup a + eval lookup b
  | Floor_mult (a, k) -> k * floor_div (eval lookup a) k

let equal a b = a = b

let rec pp fmt = function
  | Aff a -> Aff.pp fmt a
  | Min (a, b) -> Format.fprintf fmt "min(%a, %a)" pp a pp b
  | Max (a, b) -> Format.fprintf fmt "max(%a, %a)" pp a pp b
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
  | Floor_mult (a, k) -> Format.fprintf fmt "%d*floor((%a)/%d)" k pp a k

let to_string b = Format.asprintf "%a" pp b
