type storage = Heap | Register

type t = { name : string; dims : Aff.t list; storage : storage }

let heap name dims = { name; dims; storage = Heap }
let register name = { name; dims = []; storage = Register }
let rank d = List.length d.dims

let elements lookup d =
  List.fold_left (fun acc a -> acc * Aff.eval lookup a) 1 d.dims

let strides lookup d =
  let rec go stride = function
    | [] -> []
    | dim :: rest -> stride :: go (stride * Aff.eval lookup dim) rest
  in
  go 1 d.dims

let pp fmt d =
  let storage = match d.storage with Heap -> "" | Register -> "register " in
  match d.dims with
  | [] -> Format.fprintf fmt "%s%s" storage d.name
  | dims ->
    Format.fprintf fmt "%s%s[%a]" storage d.name
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         Aff.pp)
      dims
