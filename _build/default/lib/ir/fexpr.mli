(** Floating-point right-hand-side expressions of assignments. *)

type binop = Add | Sub | Mul | Div

type t =
  | Ref of Reference.t
  | Const of float
  | Neg of t
  | Bin of binop * t * t

val ref_ : Reference.t -> t
val const : float -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

(** All array references in the expression, in left-to-right order,
    with duplicates. *)
val refs : t -> Reference.t list

(** Number of floating-point operations in one evaluation. *)
val flops : t -> int

val subst : string -> Aff.t -> t -> t
val rename : string -> string -> t -> t

(** [map_refs f e] rewrites every reference through [f]. *)
val map_refs : (Reference.t -> Reference.t) -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
