type binop = Add | Sub | Mul | Div

type t =
  | Ref of Reference.t
  | Const of float
  | Neg of t
  | Bin of binop * t * t

let ref_ r = Ref r
let const c = Const c
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)

let rec refs_acc acc = function
  | Ref r -> r :: acc
  | Const _ -> acc
  | Neg e -> refs_acc acc e
  | Bin (_, a, b) -> refs_acc (refs_acc acc a) b

let refs e = List.rev (refs_acc [] e)

let rec flops = function
  | Ref _ | Const _ -> 0
  | Neg e -> Stdlib.( + ) 1 (flops e)
  | Bin (_, a, b) -> Stdlib.( + ) 1 (Stdlib.( + ) (flops a) (flops b))

let rec map_refs f = function
  | Ref r -> Ref (f r)
  | Const c -> Const c
  | Neg e -> Neg (map_refs f e)
  | Bin (op, a, b) -> Bin (op, map_refs f a, map_refs f b)

let subst x e t = map_refs (Reference.subst x e) t
let rename x y t = subst x (Aff.var y) t
let equal a b = a = b

let op_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp fmt = function
  | Ref r -> Reference.pp fmt r
  | Const c -> Format.fprintf fmt "%g" c
  | Neg e -> Format.fprintf fmt "(-%a)" pp e
  | Bin (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp a (op_string op) pp b
