type t =
  | Assign of Reference.t * Fexpr.t
  | Loop of loop
  | Prefetch of Reference.t

and loop = { var : string; lo : Bexp.t; hi : Bexp.t; step : int; body : t list }

let loop ?(step = 1) var ~lo ~hi body =
  assert (step > 0);
  Loop { var; lo; hi; step; body }

let loop_aff ?step var ~lo ~hi body =
  loop ?step var ~lo:(Bexp.aff lo) ~hi:(Bexp.aff hi) body

let assign r e = Assign (r, e)

let rec map_loops f = function
  | Assign _ as s -> s
  | Prefetch _ as s -> s
  | Loop l -> f { l with body = List.map (map_loops f) l.body }

let rec iter f s =
  f s;
  match s with
  | Assign _ | Prefetch _ -> ()
  | Loop l -> List.iter (iter f) l.body

let loop_vars body =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec go = function
    | Assign _ | Prefetch _ -> ()
    | Loop l ->
      if not (Hashtbl.mem seen l.var) then begin
        Hashtbl.add seen l.var ();
        order := l.var :: !order
      end;
      List.iter go l.body
  in
  List.iter go body;
  List.rev !order

let find_loop v body =
  let exception Found of loop in
  let rec go = function
    | Assign _ | Prefetch _ -> ()
    | Loop l -> if l.var = v then raise (Found l) else List.iter go l.body
  in
  try
    List.iter go body;
    None
  with Found l -> Some l

let all_refs body =
  let acc = ref [] in
  let rec go = function
    | Assign (lhs, rhs) ->
      acc := lhs :: !acc;
      List.iter (fun r -> acc := r :: !acc) (Fexpr.refs rhs)
    | Prefetch r -> acc := r :: !acc
    | Loop l -> List.iter go l.body
  in
  List.iter go body;
  List.rev !acc

let access_refs body =
  let acc = ref [] in
  let rec go = function
    | Assign (lhs, rhs) ->
      List.iter (fun r -> acc := (r, false) :: !acc) (Fexpr.refs rhs);
      acc := (lhs, true) :: !acc
    | Prefetch _ -> ()
    | Loop l -> List.iter go l.body
  in
  List.iter go body;
  List.rev !acc

let rec subst x e = function
  | Assign (lhs, rhs) ->
    Assign (Reference.subst x e lhs, Fexpr.subst x e rhs)
  | Prefetch r -> Prefetch (Reference.subst x e r)
  | Loop l ->
    (* A loop over [x] rebinds it: bounds are evaluated in the outer
       scope, the body is not rewritten. *)
    let lo = Bexp.subst x e l.lo and hi = Bexp.subst x e l.hi in
    if l.var = x then Loop { l with lo; hi }
    else Loop { l with lo; hi; body = List.map (subst x e) l.body }

let subst_body x e body = List.map (subst x e) body

let rec binds v = function
  | Assign _ | Prefetch _ -> false
  | Loop l -> l.var = v || List.exists (binds v) l.body

let innermost_loops body =
  let acc = ref [] in
  let rec go = function
    | Assign _ | Prefetch _ -> ()
    | Loop l ->
      if List.exists (function Loop _ -> true | _ -> false) l.body then
        List.iter go l.body
      else acc := l :: !acc
  in
  List.iter go body;
  List.rev !acc

let replace_loop v f body =
  let found = ref false in
  let rec go s =
    match s with
    | Assign _ | Prefetch _ -> [ s ]
    | Loop l ->
      if l.var = v then begin
        found := true;
        f l
      end
      else [ Loop { l with body = List.concat_map go l.body } ]
  in
  let result = List.concat_map go body in
  if not !found then raise Not_found;
  result

let rec static_flops_stmt = function
  | Assign (_, rhs) -> Fexpr.flops rhs
  | Prefetch _ -> 0
  | Loop l -> static_flops l.body

and static_flops body = List.fold_left (fun acc s -> acc + static_flops_stmt s) 0 body

let equal a b = a = b
