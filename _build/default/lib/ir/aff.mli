(** Normalized affine expressions over named integer atoms.

    An affine expression is [c0 + c1*x1 + ... + cn*xn] where the [xi] are
    names of loop index variables or symbolic parameters and the [ci] are
    integer coefficients.  Values of this type are kept in a canonical
    form (terms sorted by name, no zero coefficients), so structural
    equality coincides with semantic equality. *)

type t

val zero : t
val const : int -> t
val var : string -> t

(** [term c x] is [c * x]. *)
val term : int -> string -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** [scale k e] is [k * e]. *)
val scale : int -> t -> t

(** [add_const e k] is [e + k]. *)
val add_const : t -> int -> t

(** [coeff e x] is the coefficient of variable [x] in [e] (0 if absent). *)
val coeff : t -> string -> int

(** Constant part of the expression. *)
val const_part : t -> int

(** [is_const e] is [Some c] when [e] has no variable terms. *)
val is_const : t -> int option

(** Variables occurring with a non-zero coefficient, sorted. *)
val vars : t -> string list

val mem : string -> t -> bool

(** [subst x e' e] replaces every occurrence of variable [x] in [e] by the
    affine expression [e']. *)
val subst : string -> t -> t -> t

(** [rename x y e] renames variable [x] to [y]. *)
val rename : string -> string -> t -> t

(** [eval lookup e] evaluates [e]; [lookup] gives the value of each
    variable.  Raises whatever [lookup] raises on unbound names. *)
val eval : (string -> int) -> t -> int

(** Terms of the expression as [(coefficient, variable)] pairs, sorted by
    variable name.  Excludes the constant part. *)
val terms : t -> (int * string) list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
