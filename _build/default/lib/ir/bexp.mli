(** Loop-bound expressions.

    Bounds extend affine expressions with [min]/[max] (needed for tiled
    loops such as [min (jj + tj - 1) n]) and with rounded-down multiples
    (needed for the main/remainder split produced by unroll-and-jam:
    [lo + u * floor ((hi - lo + 1) / u) - 1]). *)

type t =
  | Aff of Aff.t
  | Min of t * t
  | Max of t * t
  | Add of t * t
  | Floor_mult of t * int
      (** [Floor_mult (e, k)] is [k * floor (e / k)]; requires [k > 0]
          and evaluates with floor semantics for negative [e]. *)

val aff : Aff.t -> t
val const : int -> t
val var : string -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val add : t -> t -> t
val add_const : t -> int -> t
val add_aff : t -> Aff.t -> t
val floor_mult : t -> int -> t

(** [as_aff b] is [Some a] when the bound is a plain affine expression. *)
val as_aff : t -> Aff.t option

val is_const : t -> int option

(** Variables occurring anywhere in the bound, sorted, without
    duplicates. *)
val vars : t -> string list

val mem : string -> t -> bool
val subst : string -> Aff.t -> t -> t
val rename : string -> string -> t -> t
val eval : (string -> int) -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
