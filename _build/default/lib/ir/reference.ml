type t = { array : string; idx : Aff.t list }

let make array idx = { array; idx }
let scalar name = { array = name; idx = [] }
let rank r = List.length r.idx

let vars r =
  List.sort_uniq String.compare (List.concat_map Aff.vars r.idx)

let mem x r = List.exists (Aff.mem x) r.idx
let subst x e r = { r with idx = List.map (Aff.subst x e) r.idx }
let rename x y r = subst x (Aff.var y) r

let coeff_signature r =
  List.map (fun a -> Aff.sub a (Aff.const (Aff.const_part a))) r.idx

let offsets r = List.map Aff.const_part r.idx
let equal a b = a = b
let compare = Stdlib.compare

let pp fmt r =
  match r.idx with
  | [] -> Format.fprintf fmt "%s" r.array
  | idx ->
    Format.fprintf fmt "%s[%a]" r.array
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         Aff.pp)
      idx

let to_string r = Format.asprintf "%a" pp r
