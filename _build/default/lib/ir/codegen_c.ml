let preamble =
  "#include <stddef.h>\n\
   #ifndef ECO_HELPERS\n\
   #define ECO_HELPERS\n\
   #define ECO_MIN(a, b) ((a) < (b) ? (a) : (b))\n\
   #define ECO_MAX(a, b) ((a) > (b) ? (a) : (b))\n\
   #define ECO_FLOORDIV(e, k) ((e) >= 0 ? (e) / (k) : -((-(e) + (k) - 1) / (k)))\n\
   #define ECO_FLOORMULT(e, k) ((k) * ECO_FLOORDIV(e, k))\n\
   #if !defined(__GNUC__) && !defined(__clang__)\n\
   #define __builtin_prefetch(p) ((void)(p))\n\
   #endif\n\
   #endif\n"

let aff_to_c (a : Aff.t) =
  let terms = Aff.terms a in
  let const = Aff.const_part a in
  if terms = [] then string_of_int const
  else begin
    let buf = Buffer.create 32 in
    List.iteri
      (fun i (c, v) ->
        if i = 0 then begin
          if c = 1 then Buffer.add_string buf v
          else if c = -1 then Buffer.add_string buf ("-" ^ v)
          else Buffer.add_string buf (Printf.sprintf "%d*%s" c v)
        end
        else if c >= 0 then
          if c = 1 then Buffer.add_string buf (" + " ^ v)
          else Buffer.add_string buf (Printf.sprintf " + %d*%s" c v)
        else if c = -1 then Buffer.add_string buf (" - " ^ v)
        else Buffer.add_string buf (Printf.sprintf " - %d*%s" (-c) v))
      terms;
    if const > 0 then Buffer.add_string buf (Printf.sprintf " + %d" const)
    else if const < 0 then Buffer.add_string buf (Printf.sprintf " - %d" (-const));
    Buffer.contents buf
  end

let rec bexp_to_c (b : Bexp.t) =
  match b with
  | Bexp.Aff a -> aff_to_c a
  | Bexp.Min (x, y) -> Printf.sprintf "ECO_MIN(%s, %s)" (bexp_to_c x) (bexp_to_c y)
  | Bexp.Max (x, y) -> Printf.sprintf "ECO_MAX(%s, %s)" (bexp_to_c x) (bexp_to_c y)
  | Bexp.Add (x, y) -> Printf.sprintf "(%s + %s)" (bexp_to_c x) (bexp_to_c y)
  | Bexp.Floor_mult (x, k) -> Printf.sprintf "ECO_FLOORMULT(%s, %d)" (bexp_to_c x) k

(* Flat column-major index: d0 + dim0*(d1 + dim1*(d2 + ...)). *)
let index_to_c (decl : Decl.t) (idx : Aff.t list) =
  let rec go idx dims =
    match (idx, dims) with
    | [], _ -> "0"
    | [ last ], _ -> Printf.sprintf "(%s)" (aff_to_c last)
    | i0 :: rest, dim0 :: dims_rest ->
      Printf.sprintf "(%s) + (%s)*(%s)" (aff_to_c i0) (aff_to_c dim0)
        (go rest dims_rest)
    | _ :: _, [] -> invalid_arg "Codegen_c: rank mismatch"
  in
  go idx decl.Decl.dims

let ref_to_c find_decl (r : Reference.t) =
  let decl = find_decl r.Reference.array in
  match (decl.Decl.storage, r.Reference.idx) with
  | Decl.Register, [] -> r.Reference.array
  | Decl.Register, _ -> invalid_arg "Codegen_c: indexed register"
  | Decl.Heap, idx ->
    Printf.sprintf "%s[%s]" r.Reference.array (index_to_c decl idx)

let rec fexpr_to_c find_decl (e : Fexpr.t) =
  match e with
  | Fexpr.Ref r -> ref_to_c find_decl r
  | Fexpr.Const c ->
    if Float.is_integer c && Float.abs c < 1e15 then
      Printf.sprintf "%.1f" c
    else Printf.sprintf "%.17g" c
  | Fexpr.Neg x -> Printf.sprintf "(-%s)" (fexpr_to_c find_decl x)
  | Fexpr.Bin (op, a, b) ->
    let ops =
      match op with
      | Fexpr.Add -> "+"
      | Fexpr.Sub -> "-"
      | Fexpr.Mul -> "*"
      | Fexpr.Div -> "/"
    in
    Printf.sprintf "(%s %s %s)" (fexpr_to_c find_decl a) ops
      (fexpr_to_c find_decl b)

let rec stmt_to_c find_decl buf indent (s : Stmt.t) =
  let pad = String.make indent ' ' in
  match s with
  | Stmt.Assign (lhs, rhs) ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s;\n" pad (ref_to_c find_decl lhs)
         (fexpr_to_c find_decl rhs))
  | Stmt.Prefetch r ->
    Buffer.add_string buf
      (Printf.sprintf "%s__builtin_prefetch(&%s);\n" pad (ref_to_c find_decl r))
  | Stmt.Loop l ->
    Buffer.add_string buf
      (Printf.sprintf "%sfor (ptrdiff_t %s = %s; %s <= %s; %s += %d) {\n" pad
         l.Stmt.var (bexp_to_c l.Stmt.lo) l.Stmt.var (bexp_to_c l.Stmt.hi)
         l.Stmt.var l.Stmt.step);
    List.iter (stmt_to_c find_decl buf (indent + 2)) l.Stmt.body;
    Buffer.add_string buf (pad ^ "}\n")

let is_parameter_array (d : Decl.t) =
  d.Decl.storage = Decl.Heap
  && (d.Decl.dims = [] || List.exists (fun a -> Aff.vars a <> []) d.Decl.dims)

let prototype ?name (p : Program.t) =
  let fname = match name with Some n -> n | None -> p.Program.name in
  let params = List.map (fun s -> Printf.sprintf "ptrdiff_t %s" s) p.Program.params in
  let arrays =
    List.filter_map
      (fun (d : Decl.t) ->
        if is_parameter_array d then
          Some (Printf.sprintf "double *restrict %s" d.Decl.name)
        else None)
      p.Program.decls
  in
  Printf.sprintf "void %s(%s)" fname (String.concat ", " (params @ arrays))

let function_code ?name (p : Program.t) =
  (match Program.validate p with
  | [] -> ()
  | errs ->
    invalid_arg
      (Printf.sprintf "Codegen_c: invalid program: %s" (String.concat "; " errs)));
  let find_decl a = Program.find_decl_exn p a in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (prototype ?name p);
  Buffer.add_string buf " {\n";
  (* Constant-extent heap arrays (copy temporaries) and register
     scalars become locals. *)
  List.iter
    (fun (d : Decl.t) ->
      match d.Decl.storage with
      | Decl.Register -> Buffer.add_string buf (Printf.sprintf "  double %s;\n" d.Decl.name)
      | Decl.Heap ->
        if not (is_parameter_array d) then begin
          let elements =
            List.fold_left
              (fun acc a ->
                match Aff.is_const a with
                | Some c -> acc * c
                | None -> assert false)
              1 d.Decl.dims
          in
          Buffer.add_string buf
            (Printf.sprintf "  static double %s[%d];\n" d.Decl.name
               (max 1 elements))
        end)
    p.Program.decls;
  List.iter (stmt_to_c find_decl buf 2) p.Program.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let file ?name p =
  preamble ^ "\n" ^ function_code ?name p
