let preamble =
  "module eco_helpers\n\
   contains\n\
   ! k * floor(e / k), exact for negative e (unlike Fortran's / on\n\
   ! negative integers, which truncates toward zero)\n\
   pure integer function eco_floormult(e, k)\n\
   \  integer, intent(in) :: e, k\n\
   \  if (e >= 0) then\n\
   \    eco_floormult = k * (e / k)\n\
   \  else\n\
   \    eco_floormult = -k * ((-e + k - 1) / k)\n\
   \  end if\n\
   end function eco_floormult\n\
   end module eco_helpers\n"

let aff_to_f (a : Aff.t) =
  let terms = Aff.terms a in
  let const = Aff.const_part a in
  if terms = [] then string_of_int const
  else begin
    let buf = Buffer.create 32 in
    List.iteri
      (fun i (c, v) ->
        if i = 0 then begin
          if c = 1 then Buffer.add_string buf v
          else if c = -1 then Buffer.add_string buf ("-" ^ v)
          else Buffer.add_string buf (Printf.sprintf "%d*%s" c v)
        end
        else if c >= 0 then
          if c = 1 then Buffer.add_string buf (" + " ^ v)
          else Buffer.add_string buf (Printf.sprintf " + %d*%s" c v)
        else if c = -1 then Buffer.add_string buf (" - " ^ v)
        else Buffer.add_string buf (Printf.sprintf " - %d*%s" (-c) v))
      terms;
    if const > 0 then Buffer.add_string buf (Printf.sprintf " + %d" const)
    else if const < 0 then Buffer.add_string buf (Printf.sprintf " - %d" (-const));
    Buffer.contents buf
  end

let rec bexp_to_f (b : Bexp.t) =
  match b with
  | Bexp.Aff a -> aff_to_f a
  | Bexp.Min (x, y) -> Printf.sprintf "min(%s, %s)" (bexp_to_f x) (bexp_to_f y)
  | Bexp.Max (x, y) -> Printf.sprintf "max(%s, %s)" (bexp_to_f x) (bexp_to_f y)
  | Bexp.Add (x, y) -> Printf.sprintf "(%s + %s)" (bexp_to_f x) (bexp_to_f y)
  | Bexp.Floor_mult (x, k) ->
    Printf.sprintf "eco_floormult(%s, %d)" (bexp_to_f x) k

let ref_to_f find_decl (r : Reference.t) =
  let decl = find_decl r.Reference.array in
  match (decl.Decl.storage, r.Reference.idx) with
  | Decl.Register, [] -> r.Reference.array
  | Decl.Register, _ -> invalid_arg "Codegen_f90: indexed register"
  | Decl.Heap, [] -> r.Reference.array
  | Decl.Heap, idx ->
    Printf.sprintf "%s(%s)" r.Reference.array
      (String.concat ", " (List.map aff_to_f idx))

let rec fexpr_to_f find_decl (e : Fexpr.t) =
  match e with
  | Fexpr.Ref r -> ref_to_f find_decl r
  | Fexpr.Const c -> Printf.sprintf "%.17gd0" c
  | Fexpr.Neg x -> Printf.sprintf "(-%s)" (fexpr_to_f find_decl x)
  | Fexpr.Bin (op, a, b) ->
    let ops =
      match op with
      | Fexpr.Add -> "+"
      | Fexpr.Sub -> "-"
      | Fexpr.Mul -> "*"
      | Fexpr.Div -> "/"
    in
    Printf.sprintf "(%s %s %s)" (fexpr_to_f find_decl a) ops
      (fexpr_to_f find_decl b)

let rec stmt_to_f find_decl buf indent (s : Stmt.t) =
  let pad = String.make indent ' ' in
  match s with
  | Stmt.Assign (lhs, rhs) ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s\n" pad (ref_to_f find_decl lhs)
         (fexpr_to_f find_decl rhs))
  | Stmt.Prefetch r ->
    Buffer.add_string buf
      (Printf.sprintf "%s! prefetch %s\n" pad (ref_to_f find_decl r))
  | Stmt.Loop l ->
    if l.Stmt.step = 1 then
      Buffer.add_string buf
        (Printf.sprintf "%sdo %s = %s, %s\n" pad l.Stmt.var
           (bexp_to_f l.Stmt.lo) (bexp_to_f l.Stmt.hi))
    else
      Buffer.add_string buf
        (Printf.sprintf "%sdo %s = %s, %s, %d\n" pad l.Stmt.var
           (bexp_to_f l.Stmt.lo) (bexp_to_f l.Stmt.hi) l.Stmt.step);
    List.iter (stmt_to_f find_decl buf (indent + 2)) l.Stmt.body;
    Buffer.add_string buf (pad ^ "end do\n")

let is_parameter_array (d : Decl.t) =
  d.Decl.storage = Decl.Heap
  && (d.Decl.dims = [] || List.exists (fun a -> Aff.vars a <> []) d.Decl.dims)

let dim_spec (a : Aff.t) = Printf.sprintf "0:%s" (aff_to_f (Aff.add_const a (-1)))

let subroutine_code ?name (p : Program.t) =
  (match Program.validate p with
  | [] -> ()
  | errs ->
    invalid_arg
      (Printf.sprintf "Codegen_f90: invalid program: %s"
         (String.concat "; " errs)));
  let fname = match name with Some n -> n | None -> p.Program.name in
  let find_decl a = Program.find_decl_exn p a in
  let buf = Buffer.create 4096 in
  let param_arrays = List.filter is_parameter_array p.Program.decls in
  let args =
    p.Program.params @ List.map (fun (d : Decl.t) -> d.Decl.name) param_arrays
  in
  Buffer.add_string buf
    (Printf.sprintf "subroutine %s(%s)\n" fname (String.concat ", " args));
  Buffer.add_string buf "  use eco_helpers\n  implicit none\n";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  integer, intent(in) :: %s\n" s))
    p.Program.params;
  List.iter
    (fun (d : Decl.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  real(8), intent(inout) :: %s(%s)\n" d.Decl.name
           (String.concat ", " (List.map dim_spec d.Decl.dims))))
    param_arrays;
  (* Locals: loop counters, copy temporaries, register scalars. *)
  let loop_vars = Stmt.loop_vars p.Program.body in
  if loop_vars <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  integer :: %s\n" (String.concat ", " loop_vars));
  List.iter
    (fun (d : Decl.t) ->
      match d.Decl.storage with
      | Decl.Register ->
        Buffer.add_string buf (Printf.sprintf "  real(8) :: %s\n" d.Decl.name)
      | Decl.Heap ->
        if not (is_parameter_array d) then
          Buffer.add_string buf
            (Printf.sprintf "  real(8), save :: %s(%s)\n" d.Decl.name
               (String.concat ", " (List.map dim_spec d.Decl.dims))))
    p.Program.decls;
  List.iter (stmt_to_f find_decl buf 2) p.Program.body;
  Buffer.add_string buf (Printf.sprintf "end subroutine %s\n" fname);
  Buffer.contents buf

let file ?name p = preamble ^ "\n" ^ subroutine_code ?name p
