type t = {
  name : string;
  params : string list;
  decls : Decl.t list;
  body : Stmt.t list;
}

let make ~name ~params ~decls body = { name; params; decls; body }

let find_decl p name =
  List.find_opt (fun (d : Decl.t) -> d.Decl.name = name) p.decls

let find_decl_exn p name =
  match find_decl p name with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Program.find_decl_exn: %s" name)

let add_decl p d = { p with decls = p.decls @ [ d ] }
let with_body p body = { p with body }
let with_name p name = { p with name }

let heap_arrays p =
  List.filter (fun (d : Decl.t) -> d.Decl.storage = Decl.Heap) p.decls

let fresh_name p base =
  let used = Hashtbl.create 16 in
  List.iter (fun (d : Decl.t) -> Hashtbl.replace used d.Decl.name ()) p.decls;
  List.iter (fun s -> Hashtbl.replace used s ()) p.params;
  List.iter (fun v -> Hashtbl.replace used v ()) (Stmt.loop_vars p.body);
  if not (Hashtbl.mem used base) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s%d" base i in
      if Hashtbl.mem used candidate then go (i + 1) else candidate
    in
    go 1

let validate p =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let check_ref scope (r : Reference.t) =
    (match find_decl p r.Reference.array with
    | None -> err "reference to undeclared array %s" r.Reference.array
    | Some d ->
      if Decl.rank d <> Reference.rank r then
        err "rank mismatch on %s: declared %d, used %d" r.Reference.array
          (Decl.rank d) (Reference.rank r));
    List.iter
      (fun v ->
        if not (List.mem v scope) then
          err "index variable %s of %s not in scope" v (Reference.to_string r))
      (Reference.vars r)
  in
  let check_bound scope b =
    List.iter
      (fun v ->
        if not (List.mem v scope) then err "bound variable %s not in scope" v)
      (Bexp.vars b)
  in
  let rec go scope = function
    | Stmt.Assign (lhs, rhs) ->
      check_ref scope lhs;
      List.iter (check_ref scope) (Fexpr.refs rhs)
    | Stmt.Prefetch r -> check_ref scope r
    | Stmt.Loop l ->
      if List.mem l.Stmt.var scope then err "loop variable %s shadowed or clashes" l.Stmt.var;
      check_bound scope l.Stmt.lo;
      check_bound scope l.Stmt.hi;
      List.iter (go (l.Stmt.var :: scope)) l.Stmt.body
  in
  List.iter (go p.params) p.body;
  List.rev !errors

let rec pp_stmt indent fmt = function
  | Stmt.Assign (lhs, rhs) ->
    Format.fprintf fmt "%s%a = %a@." indent Reference.pp lhs Fexpr.pp rhs
  | Stmt.Prefetch r ->
    Format.fprintf fmt "%sprefetch %a@." indent Reference.pp r
  | Stmt.Loop l ->
    if l.Stmt.step = 1 then
      Format.fprintf fmt "%sDO %s = %a, %a@." indent l.Stmt.var Bexp.pp l.Stmt.lo
        Bexp.pp l.Stmt.hi
    else
      Format.fprintf fmt "%sDO %s = %a, %a, %d@." indent l.Stmt.var Bexp.pp
        l.Stmt.lo Bexp.pp l.Stmt.hi l.Stmt.step;
    List.iter (pp_stmt (indent ^ "  ") fmt) l.Stmt.body

let pp fmt p =
  Format.fprintf fmt "kernel %s(%s)@." p.name (String.concat ", " p.params);
  List.iter (fun d -> Format.fprintf fmt "  array %a@." Decl.pp d) p.decls;
  List.iter (pp_stmt "  " fmt) p.body

let to_string p = Format.asprintf "%a" pp p
