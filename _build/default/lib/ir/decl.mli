(** Array declarations.

    Dimensions are element counts, fastest-varying dimension first
    (column-major).  Sizes may be affine in the program's symbolic
    parameters.  Storage class [Register] marks scalar temporaries that
    the backend maps to machine registers: they generate no memory
    traffic unless spilled. *)

type storage = Heap | Register

type t = {
  name : string;
  dims : Aff.t list;  (** element extents, fastest-varying first; [[]] = scalar *)
  storage : storage;
}

val heap : string -> Aff.t list -> t
val register : string -> t
val rank : t -> int

(** Total element count once parameters are bound. *)
val elements : (string -> int) -> t -> int

(** Element strides (in elements) per dimension, fastest first. *)
val strides : (string -> int) -> t -> int list

val pp : Format.formatter -> t -> unit
