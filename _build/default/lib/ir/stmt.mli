(** Statements: assignments, loops and software prefetches.

    A loop body is a statement list, so explicit blocks are not needed.
    [step] is a positive integer constant; lower and upper bounds are
    inclusive ([for var = lo to hi step step]). *)

type t =
  | Assign of Reference.t * Fexpr.t
  | Loop of loop
  | Prefetch of Reference.t

and loop = { var : string; lo : Bexp.t; hi : Bexp.t; step : int; body : t list }

val loop : ?step:int -> string -> lo:Bexp.t -> hi:Bexp.t -> t list -> t

(** Simple loop [for var = lo to hi] with affine bounds. *)
val loop_aff : ?step:int -> string -> lo:Aff.t -> hi:Aff.t -> t list -> t

val assign : Reference.t -> Fexpr.t -> t

(** {2 Traversal} *)

(** [map_loops f s] applies [f] bottom-up to every loop. *)
val map_loops : (loop -> t) -> t -> t

val iter : (t -> unit) -> t -> unit

(** Loop variables in the order the loops are first encountered
    (pre-order). *)
val loop_vars : t list -> string list

(** [find_loop v body] is the first loop over variable [v], searched
    pre-order. *)
val find_loop : string -> t list -> loop option

(** All references appearing in a statement list, including left-hand
    sides, reads and prefetches, with duplicates, in syntactic order. *)
val all_refs : t list -> Reference.t list

(** References of the computation only (no prefetches): [(ref, is_write)]
    pairs in syntactic order. *)
val access_refs : t list -> (Reference.t * bool) list

(** Substitute an affine expression for a variable everywhere (bounds and
    indices). *)
val subst : string -> Aff.t -> t -> t

val subst_body : string -> Aff.t -> t list -> t list

(** Statements contained in loops over [v]?  True when [v] is used as a
    loop variable somewhere in the statement. *)
val binds : string -> t -> bool

(** Innermost loops: loops whose bodies contain no further loops.
    Returned in pre-order. *)
val innermost_loops : t list -> loop list

(** [replace_loop v f body] rewrites every loop over [v] (there may be
    several after main/remainder splits) by the statements returned by
    [f].  Raises [Not_found] when no such loop exists. *)
val replace_loop : string -> (loop -> t list) -> t list -> t list

(** Number of floating-point operations executed per evaluation of each
    assignment statement, summed syntactically (not trip-count
    weighted). *)
val static_flops : t list -> int

val equal : t -> t -> bool
