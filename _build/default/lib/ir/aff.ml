type t = {
  terms : (string * int) list;  (* sorted by name, coefficients non-zero *)
  const : int;
}

let zero = { terms = []; const = 0 }
let const c = { terms = []; const = c }
let term c x = if c = 0 then zero else { terms = [ (x, c) ]; const = 0 }
let var x = term 1 x

(* Merge two sorted term lists, adding coefficients and dropping zeros. *)
let rec merge ts1 ts2 =
  match (ts1, ts2) with
  | [], ts | ts, [] -> ts
  | (x1, c1) :: r1, (x2, c2) :: r2 ->
    let cmp = String.compare x1 x2 in
    if cmp < 0 then (x1, c1) :: merge r1 ts2
    else if cmp > 0 then (x2, c2) :: merge ts1 r2
    else
      let c = c1 + c2 in
      if c = 0 then merge r1 r2 else (x1, c) :: merge r1 r2

let add a b = { terms = merge a.terms b.terms; const = a.const + b.const }

let scale k e =
  if k = 0 then zero
  else if k = 1 then e
  else
    { terms = List.map (fun (x, c) -> (x, k * c)) e.terms; const = k * e.const }

let neg e = scale (-1) e
let sub a b = add a (neg b)
let add_const e k = { e with const = e.const + k }
let coeff e x = match List.assoc_opt x e.terms with Some c -> c | None -> 0
let const_part e = e.const
let is_const e = if e.terms = [] then Some e.const else None
let vars e = List.map fst e.terms
let mem x e = List.mem_assoc x e.terms

let subst x e' e =
  let c = coeff e x in
  if c = 0 then e
  else
    let without = { e with terms = List.remove_assoc x e.terms } in
    add without (scale c e')

let rename x y e = subst x (var y) e

let eval lookup e =
  List.fold_left (fun acc (x, c) -> acc + (c * lookup x)) e.const e.terms

let terms e = List.map (fun (x, c) -> (c, x)) e.terms
let equal a b = a = b
let compare = Stdlib.compare

let pp fmt e =
  let pp_term first fmt (x, c) =
    if c = 1 then Format.fprintf fmt "%s%s" (if first then "" else " + ") x
    else if c = -1 then Format.fprintf fmt "%s%s" (if first then "-" else " - ") x
    else if c >= 0 then
      Format.fprintf fmt "%s%d*%s" (if first then "" else " + ") c x
    else Format.fprintf fmt "%s%d*%s" (if first then "" else " - ") (-c) x
  in
  match e.terms with
  | [] -> Format.fprintf fmt "%d" e.const
  | t0 :: rest ->
    pp_term true fmt t0;
    List.iter (pp_term false fmt) rest;
    if e.const > 0 then Format.fprintf fmt " + %d" e.const
    else if e.const < 0 then Format.fprintf fmt " - %d" (-e.const)

let to_string e = Format.asprintf "%a" pp e
