lib/ir/stmt.mli: Aff Bexp Fexpr Reference
