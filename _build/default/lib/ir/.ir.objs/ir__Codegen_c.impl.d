lib/ir/codegen_c.ml: Aff Bexp Buffer Decl Fexpr Float List Printf Program Reference Stmt String
