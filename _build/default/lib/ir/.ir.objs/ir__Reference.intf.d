lib/ir/reference.mli: Aff Format
