lib/ir/codegen_f90.mli: Program
