lib/ir/program.mli: Decl Format Stmt
