lib/ir/bexp.mli: Aff Format
