lib/ir/stmt.ml: Bexp Fexpr Hashtbl List Reference
