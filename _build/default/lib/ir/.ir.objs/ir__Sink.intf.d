lib/ir/sink.mli:
