lib/ir/exec.ml: Aff Array Bexp Decl Fexpr Float Hashtbl List Printf Program Reference Sink Stmt String
