lib/ir/decl.ml: Aff Format List
