lib/ir/program.ml: Bexp Decl Fexpr Format Hashtbl List Printf Reference Stmt String
