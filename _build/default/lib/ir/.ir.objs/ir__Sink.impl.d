lib/ir/sink.ml:
