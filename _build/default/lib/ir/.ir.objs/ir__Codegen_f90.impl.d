lib/ir/codegen_f90.ml: Aff Bexp Buffer Decl Fexpr List Printf Program Reference Stmt String
