lib/ir/aff.ml: Format List Stdlib String
