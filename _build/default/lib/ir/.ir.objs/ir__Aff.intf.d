lib/ir/aff.mli: Format
