lib/ir/decl.mli: Aff Format
