lib/ir/fexpr.mli: Aff Format Reference
