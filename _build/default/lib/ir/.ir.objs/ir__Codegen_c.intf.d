lib/ir/codegen_c.mli: Program
