lib/ir/fexpr.ml: Aff Format List Reference Stdlib
