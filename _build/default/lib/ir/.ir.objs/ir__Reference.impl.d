lib/ir/reference.ml: Aff Format List Stdlib String
