lib/ir/exec.mli: Program Sink
