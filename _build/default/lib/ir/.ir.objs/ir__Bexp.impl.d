lib/ir/bexp.ml: Aff Format List String
