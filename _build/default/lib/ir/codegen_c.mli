(** C code generation: emit an optimized program as a compilable,
    self-contained C function, so tuned kernels can be used outside the
    simulator (the role SUIF's Fortran output plays in the paper).

    Conventions of the generated code:
    - one function per program; symbolic parameters become [ptrdiff_t]
      arguments and heap arrays with symbolic extents become
      [double *restrict] arguments (column-major, fastest dimension
      first, matching the executor's layout);
    - heap arrays with constant extents (copy temporaries) become
      [static double] locals;
    - register scalars become [double] locals;
    - [min]/[max]/floor bounds map to helper macros, prefetches to
      [__builtin_prefetch]. *)

(** [function_code ?name p] is the C source of the function (helpers
    included via {!preamble} must be prepended once per file). *)
val function_code : ?name:string -> Program.t -> string

(** Helper macros (idempotent; include once per translation unit). *)
val preamble : string

(** [file ?name p] is a complete translation unit: preamble + function. *)
val file : ?name:string -> Program.t -> string

(** C prototype of the generated function, e.g.
    ["void matmul(ptrdiff_t n, double *restrict a, ...)"]. *)
val prototype : ?name:string -> Program.t -> string
