(** Abstract consumer of the memory-access stream produced by executing a
    program.  The memory-hierarchy simulator implements this interface;
    keeping it abstract lets the IR library stay independent of the
    simulator.  Addresses are byte addresses. *)

type t = {
  load : int -> unit;
  store : int -> unit;
  prefetch : int -> unit;
}

(** A sink that discards everything (pure value execution). *)
val null : t
