open Ir

let n = Aff.var "n"
let last = Aff.add_const n (-1)

let program =
  let a i k = Reference.make "a" [ i; k ] in
  let b k j = Reference.make "b" [ k; j ] in
  let c i j = Reference.make "c" [ i; j ] in
  let i = Aff.var "i" and j = Aff.var "j" and k = Aff.var "k" in
  let body =
    Stmt.assign (c i j)
      Fexpr.(ref_ (c i j) + (ref_ (a i k) * ref_ (b k j)))
  in
  Program.make ~name:"matmul" ~params:[ "n" ]
    ~decls:[ Decl.heap "a" [ n; n ]; Decl.heap "b" [ n; n ]; Decl.heap "c" [ n; n ] ]
    [
      Stmt.loop_aff "k" ~lo:Aff.zero ~hi:last
        [
          Stmt.loop_aff "j" ~lo:Aff.zero ~hi:last
            [ Stmt.loop_aff "i" ~lo:Aff.zero ~hi:last [ body ] ];
        ];
    ]

let kernel =
  {
    Kernel.name = "matmul";
    program;
    size_param = "n";
    min_size = 4;
    flops = (fun n -> 2 * n * n * n);
    description = "dense matrix multiply C += A*B (column-major)";
  }

let reference n =
  let init name =
    Array.init (n * n) (fun e -> Exec.initial_value_at name [ e mod n; e / n ])
  in
  let a = init "a" and b = init "b" and c = init "c" in
  (* Same loop order (K,J,I) and association as the IR program. *)
  for k = 0 to n - 1 do
    for j = 0 to n - 1 do
      for i = 0 to n - 1 do
        c.((j * n) + i) <-
          c.((j * n) + i) +. (a.((k * n) + i) *. b.((j * n) + k))
      done
    done
  done;
  c
