(** Common shape of a tunable kernel: the naive program plus the metadata
    the optimizer and the experiment harness need. *)

type t = {
  name : string;
  program : Ir.Program.t;  (** the original, untransformed loop nest *)
  size_param : string;  (** the symbolic problem size, e.g. "n" *)
  min_size : int;  (** smallest meaningful problem size *)
  flops : int -> int;  (** useful floating-point operations at size [n] *)
  description : string;
}

(** [params t n] binds the size parameter. *)
val params : t -> int -> (string * int) list

(** Run the kernel's original program at size [n] without simulation;
    returns the heap arrays (ground truth for equivalence tests). *)
val run_original : t -> int -> Ir.Exec.result

(** Checksum of the original program's output at size [n]. *)
val original_checksum : t -> int -> float
