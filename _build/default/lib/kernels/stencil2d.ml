open Ir

let coefficient = 0.25
let n = Aff.var "n"

let program =
  let i = Aff.var "i" and j = Aff.var "j" in
  let b di dj =
    Fexpr.ref_ (Reference.make "b" [ Aff.add_const i di; Aff.add_const j dj ])
  in
  let a = Reference.make "a" [ i; j ] in
  let rhs = Fexpr.(const coefficient * (b (-1) 0 + b 1 0 + b 0 (-1) + b 0 1)) in
  let lo = Aff.const 1 and hi = Aff.add_const n (-2) in
  Program.make ~name:"stencil2d" ~params:[ "n" ]
    ~decls:[ Decl.heap "a" [ n; n ]; Decl.heap "b" [ n; n ] ]
    [
      Stmt.loop_aff "j" ~lo ~hi
        [ Stmt.loop_aff "i" ~lo ~hi [ Stmt.assign a rhs ] ];
    ]

let kernel =
  {
    Kernel.name = "stencil2d";
    program;
    size_param = "n";
    min_size = 4;
    flops = (fun n -> 4 * (n - 2) * (n - 2));
    description = "2-D 5-point Jacobi stencil A = c*(4-point sum of B)";
  }

let reference n =
  let init name =
    Array.init (n * n) (fun e -> Exec.initial_value_at name [ e mod n; e / n ])
  in
  let a = init "a" and b = init "b" in
  let at arr i j = arr.((j * n) + i) in
  for j = 1 to n - 2 do
    for i = 1 to n - 2 do
      a.((j * n) + i) <-
        coefficient
        *. (at b (i - 1) j +. at b (i + 1) j +. at b i (j - 1) +. at b i (j + 1))
    done
  done;
  a
