open Ir

let coefficient = 1.0 /. 6.0
let n = Aff.var "n"

let program =
  let i = Aff.var "i" and j = Aff.var "j" and k = Aff.var "k" in
  let b di dj dk =
    Fexpr.ref_
      (Reference.make "b"
         [ Aff.add_const i di; Aff.add_const j dj; Aff.add_const k dk ])
  in
  let a = Reference.make "a" [ i; j; k ] in
  let rhs =
    Fexpr.(
      const coefficient
      * (b (-1) 0 0 + b 1 0 0 + b 0 (-1) 0 + b 0 1 0 + b 0 0 (-1) + b 0 0 1))
  in
  let lo = Aff.const 1 and hi = Aff.add_const n (-2) in
  Program.make ~name:"jacobi3d" ~params:[ "n" ]
    ~decls:[ Decl.heap "a" [ n; n; n ]; Decl.heap "b" [ n; n; n ] ]
    [
      Stmt.loop_aff "k" ~lo ~hi
        [
          Stmt.loop_aff "j" ~lo ~hi
            [ Stmt.loop_aff "i" ~lo ~hi [ Stmt.assign a rhs ] ];
        ];
    ]

let kernel =
  {
    Kernel.name = "jacobi3d";
    program;
    size_param = "n";
    min_size = 6;
    flops = (fun n -> 6 * (n - 2) * (n - 2) * (n - 2));
    description = "3-D Jacobi relaxation A = c*(6-point stencil of B)";
  }

let reference n =
  let init name =
    Array.init (n * n * n) (fun e ->
        Exec.initial_value_at name [ e mod n; e / n mod n; e / (n * n) ])
  in
  let a = init "a" and b = init "b" in
  let at arr i j k = arr.((((k * n) + j) * n) + i) in
  for k = 1 to n - 2 do
    for j = 1 to n - 2 do
      for i = 1 to n - 2 do
        a.((((k * n) + j) * n) + i) <-
          coefficient
          *. (at b (i - 1) j k +. at b (i + 1) j k +. at b i (j - 1) k
            +. at b i (j + 1) k +. at b i j (k - 1) +. at b i j (k + 1))
      done
    done
  done;
  a
