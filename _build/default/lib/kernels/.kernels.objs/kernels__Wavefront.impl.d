lib/kernels/wavefront.ml: Aff Array Decl Exec Fexpr Ir Kernel Program Reference Stmt
