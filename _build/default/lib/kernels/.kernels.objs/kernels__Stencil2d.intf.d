lib/kernels/stencil2d.mli: Kernel
