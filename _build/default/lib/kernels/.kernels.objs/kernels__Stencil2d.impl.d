lib/kernels/stencil2d.ml: Aff Array Decl Exec Fexpr Ir Kernel Program Reference Stmt
