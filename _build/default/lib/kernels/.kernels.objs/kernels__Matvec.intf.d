lib/kernels/matvec.mli: Kernel
