lib/kernels/matvec.ml: Aff Array Decl Exec Fexpr Ir Kernel Program Reference Stmt
