lib/kernels/jacobi3d.mli: Kernel
