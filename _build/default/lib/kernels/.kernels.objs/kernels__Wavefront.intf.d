lib/kernels/wavefront.mli: Kernel
