lib/kernels/kernel.ml: Ir
