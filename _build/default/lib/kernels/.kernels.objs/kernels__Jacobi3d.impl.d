lib/kernels/jacobi3d.ml: Aff Array Decl Exec Fexpr Ir Kernel Program Reference Stmt
