lib/kernels/matmul.mli: Kernel
