lib/kernels/kernel.mli: Ir
