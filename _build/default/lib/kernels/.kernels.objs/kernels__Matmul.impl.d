lib/kernels/matmul.ml: Aff Array Decl Exec Fexpr Ir Kernel Program Reference Stmt
