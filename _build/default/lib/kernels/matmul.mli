(** Matrix Multiply, the paper's first case study (Figure 1(a)):

    {v
      DO K = 1,N
        DO J = 1,N
          DO I = 1,N
            C[I,J] = C[I,J] + A[I,K]*B[K,J]
    v}

    Arrays are column-major with [I] fastest-varying, matching the
    paper's Fortran layout (we use 0-based bounds). *)

val kernel : Kernel.t

(** Independent reference implementation (plain OCaml loops over the same
    deterministic initial values); returns C. *)
val reference : int -> float array
