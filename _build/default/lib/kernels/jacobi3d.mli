(** Three-dimensional Jacobi relaxation, the paper's second case study
    (Figure 2(a)):

    {v
      DO K = 2,N-1
        DO J = 2,N-1
          DO I = 2,N-1
            A[I,J,K] = c*(B[I-1,J,K]+B[I+1,J,K]+B[I,J-1,K]+
                          B[I,J+1,K]+B[I,J,K-1]+B[I,J,K+1])
    v}

    6 flops per point (5 adds + 1 multiply); group-temporal reuse of B in
    all three loops and spatial reuse in the innermost. *)

val kernel : Kernel.t

(** The stencil coefficient [c]. *)
val coefficient : float

(** Independent reference implementation; returns A. *)
val reference : int -> float array
