(** Dense matrix-vector multiply [y += A*x], a third kernel used by the
    examples and as extra coverage for the optimizer (register reuse of
    [y], cache reuse of [x]):

    {v
      DO J = 1,N
        DO I = 1,N
          Y[I] = Y[I] + A[I,J]*X[J]
    v} *)

val kernel : Kernel.t
val reference : int -> float array
