type t = {
  name : string;
  program : Ir.Program.t;
  size_param : string;
  min_size : int;
  flops : int -> int;
  description : string;
}

let params t n = [ (t.size_param, n) ]
let run_original t n = Ir.Exec.run ~params:(params t n) t.program
let original_checksum t n = Ir.Exec.checksum (run_original t n)
