(** Two-dimensional 5-point Jacobi stencil, a smaller stencil companion
    to {!Jacobi3d} used by examples and tests:

    {v
      DO J = 2,N-1
        DO I = 2,N-1
          A[I,J] = c*(B[I-1,J]+B[I+1,J]+B[I,J-1]+B[I,J+1])
    v} *)

val kernel : Kernel.t
val coefficient : float
val reference : int -> float array
