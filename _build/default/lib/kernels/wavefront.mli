(** A 1-D wavefront (time-stepped stencil stored per step):

    {v
      DO T = 1,N-2
        DO I = 1,N-2
          A[I,T] = 0.5*(A[I-1,T-1] + A[I+1,T-1])
    v}

    Unlike the paper's two kernels this one carries real loop-carried
    flow dependences — distance vectors (T:1, I:±1) — so interchange and
    unroll-and-jam of the time loop are illegal.  It exists to exercise
    the optimizer's legality pruning: phase 1 must produce only
    conservative (correct) variants for it. *)

val kernel : Kernel.t
val reference : int -> float array
