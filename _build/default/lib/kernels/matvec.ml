open Ir

let n = Aff.var "n"
let last = Aff.add_const n (-1)

let program =
  let i = Aff.var "i" and j = Aff.var "j" in
  let y = Reference.make "y" [ i ] in
  let a = Reference.make "a" [ i; j ] in
  let x = Reference.make "x" [ j ] in
  Program.make ~name:"matvec" ~params:[ "n" ]
    ~decls:[ Decl.heap "a" [ n; n ]; Decl.heap "x" [ n ]; Decl.heap "y" [ n ] ]
    [
      Stmt.loop_aff "j" ~lo:Aff.zero ~hi:last
        [
          Stmt.loop_aff "i" ~lo:Aff.zero ~hi:last
            [ Stmt.assign y Fexpr.(ref_ y + (ref_ a * ref_ x)) ];
        ];
    ]

let kernel =
  {
    Kernel.name = "matvec";
    program;
    size_param = "n";
    min_size = 2;
    flops = (fun n -> 2 * n * n);
    description = "dense matrix-vector multiply y += A*x";
  }

let reference n =
  let a =
    Array.init (n * n) (fun e -> Exec.initial_value_at "a" [ e mod n; e / n ])
  in
  let x = Array.init n (Exec.initial_value "x") in
  let y = Array.init n (Exec.initial_value "y") in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      y.(i) <- y.(i) +. (a.((j * n) + i) *. x.(j))
    done
  done;
  y
