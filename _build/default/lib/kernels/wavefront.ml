open Ir

let n = Aff.var "n"

let program =
  let i = Aff.var "i" and t = Aff.var "t" in
  let a di dt =
    Reference.make "a" [ Aff.add_const i di; Aff.add_const t dt ]
  in
  let lo = Aff.const 1 and hi = Aff.add_const n (-2) in
  Program.make ~name:"wavefront" ~params:[ "n" ]
    ~decls:[ Decl.heap "a" [ n; n ] ]
    [
      Stmt.loop_aff "t" ~lo ~hi
        [
          Stmt.loop_aff "i" ~lo ~hi
            [
              Stmt.assign (a 0 0)
                Fexpr.(const 0.5 * (ref_ (a (-1) (-1)) + ref_ (a 1 (-1))));
            ];
        ];
    ]

let kernel =
  {
    Kernel.name = "wavefront";
    program;
    size_param = "n";
    min_size = 4;
    flops = (fun n -> 2 * (n - 2) * (n - 2));
    description = "time-stepped 1-D wavefront with carried dependences";
  }

let reference n =
  let a =
    Array.init (n * n) (fun e -> Exec.initial_value_at "a" [ e mod n; e / n ])
  in
  for t = 1 to n - 2 do
    for i = 1 to n - 2 do
      a.((t * n) + i) <-
        0.5 *. (a.(((t - 1) * n) + i - 1) +. a.(((t - 1) * n) + i + 1))
    done
  done;
  a
