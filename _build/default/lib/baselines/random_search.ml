type result = {
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
  evaluated : int;
}

(* Small deterministic LCG so results are reproducible without touching
   the global Random state. *)
let lcg state =
  let state = ((state * 0x5DEECE66D) + 0xB) land 0x3FFFFFFFFFFF in
  (state, state lsr 17)

let tune machine ~n ~mode ~points ~seed variant =
  let params = Core.Variant.params variant in
  let state = ref (seed lxor 0x9E3779B9) in
  let next_int bound =
    let s, v = lcg !state in
    state := s;
    1 + (v mod bound)
  in
  let sample_param (p : Core.Param.t) =
    match p.Core.Param.kind with
    | Core.Param.Unroll -> (p.Core.Param.name, next_int 8)
    | Core.Param.Tile ->
      (* log-uniform in [1, n] *)
      let max_log = int_of_float (Float.log2 (float_of_int (max 2 n))) in
      let magnitude = 1 lsl next_int max_log in
      (p.Core.Param.name, max 1 (min n (next_int magnitude)))
  in
  let best = ref None in
  let evaluated = ref 0 in
  let attempts = ref 0 in
  while !evaluated < points && !attempts < points * 50 do
    incr attempts;
    let bindings = List.map sample_param params in
    if Core.Variant.feasible variant ~n bindings then begin
      incr evaluated;
      match
        Core.Search.measure_point machine ~n ~mode variant ~bindings
          ~prefetch:[]
      with
      | Some o ->
        let c = Core.Executor.cycles o.Core.Search.measurement in
        (match !best with
        | Some (_, _, c') when c' <= c -> ()
        | _ -> best := Some (bindings, o.Core.Search.measurement, c))
      | None -> ()
    end
  done;
  match !best with
  | Some (bindings, measurement, _) ->
    Some { bindings; measurement; evaluated = !evaluated }
  | None -> None
