lib/baselines/atlas_search.mli: Core Ir Kernels Machine
