lib/baselines/atlas_search.ml: Core Ir Kernels List Machine Sys
