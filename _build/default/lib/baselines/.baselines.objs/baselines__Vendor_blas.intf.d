lib/baselines/vendor_blas.mli: Core Ir Machine
