lib/baselines/anneal.ml: Core List
