lib/baselines/random_search.ml: Core Float List
