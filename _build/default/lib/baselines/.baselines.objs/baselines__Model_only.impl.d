lib/baselines/model_only.ml: Core
