lib/baselines/model_only.mli: Core Kernels Machine
