lib/baselines/vendor_blas.ml: Core Ir Kernels List Machine Transform
