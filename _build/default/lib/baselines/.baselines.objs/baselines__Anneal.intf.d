lib/baselines/anneal.mli: Core Machine
