lib/baselines/native_compiler.mli: Core Ir Kernels Machine
