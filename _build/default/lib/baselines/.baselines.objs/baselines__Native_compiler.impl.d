lib/baselines/native_compiler.ml: Analysis Core Ir Kernels List Machine Transform
