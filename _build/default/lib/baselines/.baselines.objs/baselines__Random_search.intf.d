lib/baselines/random_search.mli: Core Machine
