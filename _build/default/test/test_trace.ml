(* Trace recording/replay tests: replaying a trace must be
   indistinguishable from the original execution for every consumer. *)

module Matmul = Kernels.Matmul
module Kernel = Kernels.Kernel

let test_counts () =
  let n = 10 in
  let t =
    Memsim.Trace.of_program ~params:[ ("n", n) ] Matmul.kernel.Kernel.program
  in
  Alcotest.(check int) "loads" (3 * n * n * n) (Memsim.Trace.loads t);
  Alcotest.(check int) "stores" (n * n * n) (Memsim.Trace.stores t);
  Alcotest.(check int) "prefetches" 0 (Memsim.Trace.prefetches t);
  Alcotest.(check int) "length" (4 * n * n * n) (Memsim.Trace.length t)

let test_replay_matches_direct () =
  (* Hierarchy counters from a replay equal those from direct
     execution. *)
  let n = 16 in
  let p = Matmul.kernel.Kernel.program in
  let direct = Memsim.Hierarchy.create Machine.sgi_r10000 in
  ignore
    (Ir.Exec.run ~sink:(Memsim.Hierarchy.sink direct) ~params:[ ("n", n) ] p);
  let t = Memsim.Trace.of_program ~params:[ ("n", n) ] p in
  let replayed = Memsim.Hierarchy.create Machine.sgi_r10000 in
  Memsim.Trace.replay t (Memsim.Hierarchy.sink replayed);
  let cd = Memsim.Hierarchy.counters direct in
  let cr = Memsim.Hierarchy.counters replayed in
  Alcotest.(check int) "loads" cd.Memsim.Counters.loads cr.Memsim.Counters.loads;
  Alcotest.(check int) "L1 misses" (Memsim.Counters.l1_misses cd)
    (Memsim.Counters.l1_misses cr);
  Alcotest.(check int) "L2 misses" (Memsim.Counters.l2_misses cd)
    (Memsim.Counters.l2_misses cr);
  Alcotest.(check int) "TLB misses" cd.Memsim.Counters.tlb_misses
    cr.Memsim.Counters.tlb_misses

let test_prefetch_events_recorded () =
  let p =
    Transform.Prefetch_insert.apply Matmul.kernel.Kernel.program ~array:"a"
      ~distance:1 ~line_elems:4
  in
  let t = Memsim.Trace.of_program ~params:[ ("n", 8) ] p in
  Alcotest.(check int) "one prefetch per inner iteration" (8 * 8 * 8)
    (Memsim.Trace.prefetches t)

let test_tee () =
  let t1 = Memsim.Trace.create () and t2 = Memsim.Trace.create () in
  let s = Memsim.Trace.tee (Memsim.Trace.sink t1) (Memsim.Trace.sink t2) in
  s.Ir.Sink.load 8;
  s.Ir.Sink.store 16;
  Alcotest.(check int) "t1 sees both" 2 (Memsim.Trace.length t1);
  Alcotest.(check int) "t2 sees both" 2 (Memsim.Trace.length t2)

let test_cache_sweep () =
  (* misses_under is monotonically non-increasing in capacity for
     fully-associative LRU. *)
  let t =
    Memsim.Trace.of_program ~params:[ ("n", 16) ] Matmul.kernel.Kernel.program
  in
  let misses assoc =
    snd
      (Memsim.Trace.misses_under t
         {
           Machine.name = "fa";
           size_bytes = assoc * 32;
           line_bytes = 32;
           assoc;
           hit_cycles = 0;
         })
  in
  Alcotest.(check bool) "monotone" true
    (misses 64 <= misses 16 && misses 16 <= misses 4)

let suite =
  [
    Alcotest.test_case "event counts" `Quick test_counts;
    Alcotest.test_case "replay matches direct" `Quick test_replay_matches_direct;
    Alcotest.test_case "prefetch events" `Quick test_prefetch_events_recorded;
    Alcotest.test_case "tee" `Quick test_tee;
    Alcotest.test_case "capacity sweep" `Quick test_cache_sweep;
  ]
