(* Tests for the cache, TLB, hierarchy and cost model. *)

let check_int = Alcotest.(check int)

let tiny_cache ?(assoc = 2) ?(size = 1024) ?(line = 32) () =
  Memsim.Cache.create
    { Machine.name = "T"; size_bytes = size; line_bytes = line; assoc; hit_cycles = 0 }

let is_hit = function Memsim.Cache.Hit _ -> true | Memsim.Cache.Miss -> false

let test_cache_cold_miss_then_hit () =
  let c = tiny_cache () in
  Alcotest.(check bool) "cold miss" false
    (is_hit (Memsim.Cache.lookup c ~now:0 ~line:5));
  ignore (Memsim.Cache.insert c ~now:0 ~ready:0 ~dirty:false ~line:5);
  Alcotest.(check bool) "hit after insert" true
    (is_hit (Memsim.Cache.lookup c ~now:1 ~line:5))

let test_cache_line_granularity () =
  (* 32-byte lines: addresses 0 and 31 share a line, 32 does not. *)
  let c = tiny_cache () in
  check_int "same line" (Memsim.Cache.line_of_addr c 0) (Memsim.Cache.line_of_addr c 31);
  Alcotest.(check bool) "next line differs" true
    (Memsim.Cache.line_of_addr c 32 <> Memsim.Cache.line_of_addr c 0)

let test_cache_lru_eviction () =
  (* 2-way: fill one set with lines a and b; touching a then inserting c
     must evict b (the LRU way). Lines conflict when they share the low
     set bits: sets = 1024/32/2 = 16. *)
  let c = tiny_cache () in
  let sets = Memsim.Cache.sets c in
  let a = 3 and b = 3 + sets and d = 3 + (2 * sets) in
  ignore (Memsim.Cache.insert c ~now:0 ~ready:0 ~dirty:false ~line:a);
  ignore (Memsim.Cache.insert c ~now:1 ~ready:0 ~dirty:false ~line:b);
  ignore (is_hit (Memsim.Cache.lookup c ~now:2 ~line:a));
  ignore (Memsim.Cache.insert c ~now:3 ~ready:0 ~dirty:false ~line:d);
  Alcotest.(check bool) "a survives (recently used)" true
    (Memsim.Cache.resident c ~line:a);
  Alcotest.(check bool) "b evicted (LRU)" false (Memsim.Cache.resident c ~line:b);
  Alcotest.(check bool) "d resident" true (Memsim.Cache.resident c ~line:d)

let test_cache_conflict_within_capacity () =
  (* Direct-mapped: two lines mapping to the same set conflict even
     though the cache has room elsewhere. *)
  let c = tiny_cache ~assoc:1 () in
  let sets = Memsim.Cache.sets c in
  ignore (Memsim.Cache.insert c ~now:0 ~ready:0 ~dirty:false ~line:7);
  ignore (Memsim.Cache.insert c ~now:1 ~ready:0 ~dirty:false ~line:(7 + sets));
  Alcotest.(check bool) "first line evicted" false
    (Memsim.Cache.resident c ~line:7)

let test_cache_dirty_eviction_reported () =
  let c = tiny_cache ~assoc:1 () in
  let sets = Memsim.Cache.sets c in
  ignore (Memsim.Cache.insert c ~now:0 ~ready:0 ~dirty:true ~line:9);
  let wb = Memsim.Cache.insert c ~now:1 ~ready:0 ~dirty:false ~line:(9 + sets) in
  Alcotest.(check bool) "writeback" true wb;
  let wb2 = Memsim.Cache.insert c ~now:2 ~ready:0 ~dirty:false ~line:9 in
  Alcotest.(check bool) "clean eviction" false wb2

let test_cache_set_dirty () =
  let c = tiny_cache ~assoc:1 () in
  let sets = Memsim.Cache.sets c in
  ignore (Memsim.Cache.insert c ~now:0 ~ready:0 ~dirty:false ~line:4);
  Memsim.Cache.set_dirty c ~line:4;
  let wb = Memsim.Cache.insert c ~now:1 ~ready:0 ~dirty:false ~line:(4 + sets) in
  Alcotest.(check bool) "writeback after set_dirty" true wb

let test_cache_fill_time_returned () =
  let c = tiny_cache () in
  ignore (Memsim.Cache.insert c ~now:10 ~ready:150 ~dirty:false ~line:2);
  match Memsim.Cache.lookup c ~now:20 ~line:2 with
  | Memsim.Cache.Hit ready -> check_int "fill time" 150 ready
  | Memsim.Cache.Miss -> Alcotest.fail "expected hit"

let test_cache_reset () =
  let c = tiny_cache () in
  ignore (Memsim.Cache.insert c ~now:0 ~ready:0 ~dirty:false ~line:1);
  check_int "occupied" 1 (Memsim.Cache.occupancy c);
  Memsim.Cache.reset c;
  check_int "empty" 0 (Memsim.Cache.occupancy c)

let test_cache_rejects_bad_geometry () =
  match
    Memsim.Cache.create
      { Machine.name = "bad"; size_bytes = 3000; line_bytes = 32; assoc = 2; hit_cycles = 0 }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let tiny_tlb ?(entries = 4) () =
  Memsim.Tlb.create { Machine.entries; page_bytes = 4096; miss_cycles = 10 }

let test_tlb_hit_miss () =
  let t = tiny_tlb () in
  Alcotest.(check bool) "cold miss" false (Memsim.Tlb.access t ~page:1);
  Alcotest.(check bool) "hit" true (Memsim.Tlb.access t ~page:1)

let test_tlb_fifo_eviction () =
  let t = tiny_tlb ~entries:2 () in
  ignore (Memsim.Tlb.access t ~page:1);
  ignore (Memsim.Tlb.access t ~page:2);
  ignore (Memsim.Tlb.access t ~page:3);
  (* page 1 was oldest *)
  Alcotest.(check bool) "page 1 evicted" false (Memsim.Tlb.probe t ~page:1);
  Alcotest.(check bool) "page 2 resident" true (Memsim.Tlb.probe t ~page:2);
  Alcotest.(check bool) "page 3 resident" true (Memsim.Tlb.probe t ~page:3)

let test_tlb_probe_does_not_install () =
  let t = tiny_tlb () in
  Alcotest.(check bool) "probe miss" false (Memsim.Tlb.probe t ~page:9);
  Alcotest.(check bool) "still miss" false (Memsim.Tlb.probe t ~page:9);
  check_int "occupancy unchanged" 0 (Memsim.Tlb.occupancy t)

let test_tlb_working_set_thrash () =
  (* Cycling through entries+1 pages must miss every time (FIFO). *)
  let t = tiny_tlb ~entries:4 () in
  let misses = ref 0 in
  for _round = 1 to 3 do
    for page = 0 to 4 do
      if not (Memsim.Tlb.access t ~page) then incr misses
    done
  done;
  check_int "all misses" 15 !misses

let sgi () = Memsim.Hierarchy.create Machine.sgi_r10000

let test_hierarchy_counters_cold_then_warm () =
  let h = sgi () in
  let c = Memsim.Hierarchy.counters h in
  Memsim.Hierarchy.load h 0;
  check_int "1 load" 1 c.Memsim.Counters.loads;
  check_int "1 L1 miss" 1 (Memsim.Counters.l1_misses c);
  check_int "1 L2 miss" 1 (Memsim.Counters.l2_misses c);
  check_int "1 TLB miss" 1 c.Memsim.Counters.tlb_misses;
  Memsim.Hierarchy.load h 8;
  (* same 32B line *)
  check_int "2 loads" 2 c.Memsim.Counters.loads;
  check_int "still 1 L1 miss" 1 (Memsim.Counters.l1_misses c)

let test_hierarchy_l2_hit_after_l1_eviction () =
  (* Touch enough distinct lines to overflow L1 (32KB, 2-way, 32B lines)
     but stay inside L2 (1MB): re-touching the first line misses L1 but
     hits L2. *)
  let h = sgi () in
  let c = Memsim.Hierarchy.counters h in
  let line_bytes = 32 in
  let lines = (64 * 1024) / line_bytes in
  for i = 0 to lines - 1 do
    Memsim.Hierarchy.load h (i * line_bytes)
  done;
  let l2_misses_before = (Memsim.Counters.l2_misses c) in
  Memsim.Hierarchy.load h 0;
  check_int "L2 misses unchanged" l2_misses_before (Memsim.Counters.l2_misses c);
  Alcotest.(check bool) "L2 hits grew" true ((Memsim.Counters.l2_hits c) > 0)

let test_hierarchy_stall_accounting () =
  let h = sgi () in
  let c = Memsim.Hierarchy.counters h in
  Memsim.Hierarchy.load h 0;
  (* cold: TLB miss + L2 hit latency is 10, memory 90, TLB 60 *)
  let expected =
    Machine.sgi_r10000.Machine.tlb.Machine.miss_cycles
    + (List.nth Machine.sgi_r10000.Machine.caches 1).Machine.hit_cycles
    + Machine.sgi_r10000.Machine.memory_latency_cycles
  in
  check_int "cold stall" expected c.Memsim.Counters.stall_cycles;
  let before = c.Memsim.Counters.stall_cycles in
  Memsim.Hierarchy.load h 0;
  check_int "warm hit free" before c.Memsim.Counters.stall_cycles

let test_prefetch_hides_latency () =
  (* Prefetch a line, do enough other work for it to arrive, then load:
     the load must not stall. *)
  let h = sgi () in
  let c = Memsim.Hierarchy.counters h in
  (* Warm the TLB page first so the prefetch is not dropped. *)
  Memsim.Hierarchy.load h 4096;
  Memsim.Hierarchy.prefetch h (4096 + 64);
  let stall_after_prefetch = c.Memsim.Counters.stall_cycles in
  (* Simulate elapsed time: touch already-resident data many times. *)
  for _ = 1 to 300 do
    Memsim.Hierarchy.load h 4096
  done;
  Memsim.Hierarchy.load h (4096 + 64);
  check_int "no extra stall" stall_after_prefetch c.Memsim.Counters.stall_cycles

let test_prefetch_partial_hiding () =
  (* A demand access immediately after the prefetch pays only part of the
     latency. *)
  let h = sgi () in
  let c = Memsim.Hierarchy.counters h in
  Memsim.Hierarchy.load h 4096;
  let stall0 = c.Memsim.Counters.stall_cycles in
  Memsim.Hierarchy.prefetch h (4096 + 64);
  Memsim.Hierarchy.load h (4096 + 64);
  let paid = c.Memsim.Counters.stall_cycles - stall0 in
  let full =
    (List.nth Machine.sgi_r10000.Machine.caches 1).Machine.hit_cycles
    + Machine.sgi_r10000.Machine.memory_latency_cycles
  in
  Alcotest.(check bool) "partial stall" true (paid > 0 && paid < full)

let test_prefetch_dropped_on_tlb_miss () =
  let h = sgi () in
  let c = Memsim.Hierarchy.counters h in
  Memsim.Hierarchy.prefetch h (1 lsl 24);
  check_int "counted as load" 1 c.Memsim.Counters.loads;
  check_int "no L1 miss recorded (dropped)" 0 (Memsim.Counters.l1_misses c);
  (* The line was not fetched. *)
  Memsim.Hierarchy.load h (1 lsl 24);
  check_int "demand still misses" 1 (Memsim.Counters.l1_misses c)

let test_prefetch_counted_as_load () =
  let h = sgi () in
  let c = Memsim.Hierarchy.counters h in
  Memsim.Hierarchy.load h 0;
  Memsim.Hierarchy.prefetch h 4096;
  check_int "loads include prefetch" 2 c.Memsim.Counters.loads;
  check_int "prefetches" 1 c.Memsim.Counters.prefetches

let test_store_writeback_traffic () =
  (* Write a line, then evict it by walking a conflicting set: a
     writeback must be counted. *)
  let h = Memsim.Hierarchy.create Machine.ultrasparc_iie in
  let c = Memsim.Hierarchy.counters h in
  Memsim.Hierarchy.store h 0;
  (* L1 is 16KB direct mapped: address 16384 conflicts with 0. *)
  Memsim.Hierarchy.load h 16384;
  Alcotest.(check bool) "writeback counted" true (c.Memsim.Counters.writebacks >= 1)

let test_hierarchy_reset () =
  let h = sgi () in
  Memsim.Hierarchy.load h 0;
  Memsim.Hierarchy.reset h;
  let c = Memsim.Hierarchy.counters h in
  check_int "loads cleared" 0 c.Memsim.Counters.loads;
  Memsim.Hierarchy.load h 0;
  check_int "cold again" 1 (Memsim.Counters.l1_misses c)

let run_with_sim machine kernel n =
  let h = Memsim.Hierarchy.create machine in
  let result =
    Ir.Exec.run
      ~sink:(Memsim.Hierarchy.sink h)
      ~params:[ (kernel.Kernels.Kernel.size_param, n) ]
      kernel.Kernels.Kernel.program
  in
  (h, result)

let test_end_to_end_matmul_counts () =
  let n = 24 in
  let h, result = run_with_sim Machine.sgi_r10000 Kernels.Matmul.kernel n in
  let c = Memsim.Hierarchy.counters h in
  check_int "loads = 3n^3" (3 * n * n * n) c.Memsim.Counters.loads;
  check_int "stores = n^3" (n * n * n) c.Memsim.Counters.stores;
  Alcotest.(check bool) "some misses" true ((Memsim.Counters.l1_misses c) > 0);
  Alcotest.(check bool) "misses bounded by accesses" true
    ((Memsim.Counters.l1_misses c) <= Memsim.Counters.accesses c);
  Alcotest.(check bool) "completed" true result.Ir.Exec.stats.Ir.Exec.completed

let test_cost_model_basics () =
  let n = 24 in
  let h, result = run_with_sim Machine.sgi_r10000 Kernels.Matmul.kernel n in
  let cost =
    Memsim.Cost.evaluate Machine.sgi_r10000
      (Memsim.Hierarchy.counters h)
      result.Ir.Exec.stats
  in
  Alcotest.(check bool) "positive cycles" true (cost.Memsim.Cost.total_cycles > 0.0);
  Alcotest.(check bool) "mflops below peak" true
    (cost.Memsim.Cost.mflops < Machine.peak_mflops Machine.sgi_r10000);
  Alcotest.(check bool) "mflops positive" true (cost.Memsim.Cost.mflops > 0.0)

let test_cost_more_misses_more_cycles () =
  (* The same computation with a colder hierarchy (smaller cache) must
     not be faster. *)
  let n = 32 in
  let h1, r1 = run_with_sim Machine.sgi_r10000 Kernels.Matmul.kernel n in
  let h2, r2 = run_with_sim Machine.generic_small Kernels.Matmul.kernel n in
  (* Compare stall cycles rather than total (clock rates differ). *)
  let c1 = (Memsim.Hierarchy.counters h1).Memsim.Counters.stall_cycles in
  let c2 = (Memsim.Hierarchy.counters h2).Memsim.Counters.stall_cycles in
  ignore r1;
  ignore r2;
  Alcotest.(check bool) "smaller caches stall at least as much" true (c2 >= c1)

let test_cost_scale () =
  let t =
    {
      Memsim.Cost.mem_issue_cycles = 10.0;
      fp_issue_cycles = 20.0;
      other_issue_cycles = 5.0;
      stall_cycles = 15.0;
      total_cycles = 40.0;
      seconds = 1.0;
      flops = 100;
      mflops = 7.5;
    }
  in
  let s = Memsim.Cost.scale 2.0 t in
  Alcotest.(check (float 1e-9)) "cycles scaled" 80.0 s.Memsim.Cost.total_cycles;
  check_int "flops scaled" 200 s.Memsim.Cost.flops;
  Alcotest.(check (float 1e-9)) "mflops invariant" 7.5 s.Memsim.Cost.mflops

let prop_misses_bounded =
  QCheck.Test.make ~name:"cache misses never exceed accesses" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 100_000))
    (fun addrs ->
      let h = sgi () in
      List.iter (fun a -> Memsim.Hierarchy.load h (a * 8)) addrs;
      let c = Memsim.Hierarchy.counters h in
      (Memsim.Counters.l1_misses c) <= c.Memsim.Counters.loads
      && (Memsim.Counters.l2_misses c) <= (Memsim.Counters.l1_misses c)
      && c.Memsim.Counters.tlb_misses <= c.Memsim.Counters.loads)

let prop_higher_assoc_no_more_misses_single_set =
  (* LRU inclusion property on a single-set (fully-associative) cache:
     more ways can only reduce misses for any trace. *)
  QCheck.Test.make ~name:"LRU: more ways, fewer misses" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 300) (int_range 0 15))
    (fun lines ->
      let misses assoc =
        let c =
          Memsim.Cache.create
            {
              Machine.name = "fa";
              size_bytes = assoc * 32;
              line_bytes = 32;
              assoc;
              hit_cycles = 0;
            }
        in
        List.fold_left
          (fun acc line ->
            match Memsim.Cache.lookup c ~now:0 ~line with
            | Memsim.Cache.Hit _ -> acc
            | Memsim.Cache.Miss ->
              ignore (Memsim.Cache.insert c ~now:0 ~ready:0 ~dirty:false ~line);
              acc + 1)
          0 lines
      in
      misses 8 <= misses 4 && misses 4 <= misses 2 && misses 2 <= misses 1)

let suite =
  [
    Alcotest.test_case "cold miss then hit" `Quick test_cache_cold_miss_then_hit;
    Alcotest.test_case "line granularity" `Quick test_cache_line_granularity;
    Alcotest.test_case "LRU eviction order" `Quick test_cache_lru_eviction;
    Alcotest.test_case "conflict within capacity" `Quick
      test_cache_conflict_within_capacity;
    Alcotest.test_case "dirty eviction reported" `Quick
      test_cache_dirty_eviction_reported;
    Alcotest.test_case "set_dirty" `Quick test_cache_set_dirty;
    Alcotest.test_case "fill time returned" `Quick test_cache_fill_time_returned;
    Alcotest.test_case "cache reset" `Quick test_cache_reset;
    Alcotest.test_case "bad geometry rejected" `Quick
      test_cache_rejects_bad_geometry;
    Alcotest.test_case "tlb hit/miss" `Quick test_tlb_hit_miss;
    Alcotest.test_case "tlb FIFO eviction" `Quick test_tlb_fifo_eviction;
    Alcotest.test_case "tlb probe does not install" `Quick
      test_tlb_probe_does_not_install;
    Alcotest.test_case "tlb thrash" `Quick test_tlb_working_set_thrash;
    Alcotest.test_case "hierarchy counters cold/warm" `Quick
      test_hierarchy_counters_cold_then_warm;
    Alcotest.test_case "L2 hit after L1 eviction" `Quick
      test_hierarchy_l2_hit_after_l1_eviction;
    Alcotest.test_case "stall accounting" `Quick test_hierarchy_stall_accounting;
    Alcotest.test_case "prefetch hides latency" `Quick test_prefetch_hides_latency;
    Alcotest.test_case "prefetch partial hiding" `Quick
      test_prefetch_partial_hiding;
    Alcotest.test_case "prefetch dropped on TLB miss" `Quick
      test_prefetch_dropped_on_tlb_miss;
    Alcotest.test_case "prefetch counted as load" `Quick
      test_prefetch_counted_as_load;
    Alcotest.test_case "store writeback traffic" `Quick
      test_store_writeback_traffic;
    Alcotest.test_case "hierarchy reset" `Quick test_hierarchy_reset;
    Alcotest.test_case "end-to-end matmul counters" `Quick
      test_end_to_end_matmul_counts;
    Alcotest.test_case "cost model basics" `Quick test_cost_model_basics;
    Alcotest.test_case "more misses, more stalls" `Quick
      test_cost_more_misses_more_cycles;
    Alcotest.test_case "cost scaling" `Quick test_cost_scale;
    QCheck_alcotest.to_alcotest prop_misses_bounded;
    QCheck_alcotest.to_alcotest prop_higher_assoc_no_more_misses_single_set;
  ]
