(* Tests for the compiler models: polynomials, dependences, reuse and
   footprints — checked against the paper's own numbers (Table 4). *)

open Analysis
module Kernel = Kernels.Kernel

let mm = Kernels.Matmul.kernel.Kernel.program
let jacobi = Kernels.Jacobi3d.kernel.Kernel.program

let lookup_of bindings x =
  match List.assoc_opt x bindings with
  | Some v -> v
  | None -> Alcotest.failf "unbound %s" x

(* --- Poly --- *)

let test_poly_basics () =
  let p = Poly.mul (Poly.var "ti") (Poly.var "tj") in
  Alcotest.(check int) "ti*tj at 4,8" 32
    (Poly.eval (lookup_of [ ("ti", 4); ("tj", 8) ]) p);
  Alcotest.(check string) "pp" "ti*tj" (Poly.to_string p)

let test_poly_normalization () =
  let a = Poly.add (Poly.var "x") (Poly.var "x") in
  Alcotest.(check bool) "x+x = 2x" true (Poly.equal a (Poly.scale 2 (Poly.var "x")));
  let z = Poly.sub a a in
  Alcotest.(check (option int)) "cancellation" (Some 0) (Poly.is_const z)

let test_poly_distribution () =
  (* (x+1)(y+2) = xy + 2x + y + 2 *)
  let p =
    Poly.mul (Poly.add_const (Poly.var "x") 1) (Poly.add_const (Poly.var "y") 2)
  in
  let env = lookup_of [ ("x", 5); ("y", 7) ] in
  Alcotest.(check int) "eval" 54 (Poly.eval env p);
  Alcotest.(check int) "monomials" 4 (List.length (Poly.monomials p))

let prop_poly_eval_homomorphic =
  let arb =
    QCheck.make
      ~print:(fun (a, b) -> Poly.to_string a ^ " / " ^ Poly.to_string b)
      QCheck.Gen.(
        let arb_poly =
          map
            (fun terms ->
              List.fold_left
                (fun acc (c, vs) ->
                  Poly.add acc
                    (Poly.scale c
                       (List.fold_left
                          (fun m v -> Poly.mul m (Poly.var v))
                          Poly.one vs)))
                Poly.zero terms)
            (small_list
               (pair (int_range (-4) 4)
                  (small_list (oneofl [ "x"; "y"; "z" ]))))
        in
        pair arb_poly arb_poly)
  in
  QCheck.Test.make ~name:"poly eval is a ring homomorphism" ~count:200 arb
    (fun (a, b) ->
      let env = lookup_of [ ("x", 3); ("y", -2); ("z", 5) ] in
      Poly.eval env (Poly.add a b) = Poly.eval env a + Poly.eval env b
      && Poly.eval env (Poly.mul a b) = Poly.eval env a * Poly.eval env b)

(* --- Depend --- *)

let test_mm_dependences () =
  let deps = Depend.analyze mm in
  (* Only C carries dependences, all on loop k. *)
  List.iter
    (fun (d : Depend.t) ->
      Alcotest.(check string) "array" "c" d.Depend.array;
      Alcotest.(check bool) "k positive" true
        (List.assoc "k" d.Depend.dirs = Depend.Plus);
      Alcotest.(check bool) "i zero" true
        (List.assoc "i" d.Depend.dirs = Depend.Dist 0);
      Alcotest.(check bool) "j zero" true
        (List.assoc "j" d.Depend.dirs = Depend.Dist 0))
    deps;
  Alcotest.(check bool) "has deps" true (deps <> [])

let test_mm_fully_permutable () =
  Alcotest.(check bool) "mm fully permutable" true
    (Depend.fully_permutable (Depend.analyze mm))

let test_jacobi_no_deps () =
  Alcotest.(check (list string)) "jacobi has no dependences" []
    (List.map (fun (d : Depend.t) -> d.Depend.array) (Depend.analyze jacobi))

let test_seidel_not_permutable () =
  (* Gauss-Seidel-like in-place stencil: A[i] = A[i-1] + A[i+1] carries a
     flow dependence that forbids reversing... here, interchange with an
     outer loop must be blocked by the (+,-) vector. *)
  let open Ir in
  let i = Aff.var "i" and j = Aff.var "j" in
  let a di dj =
    Reference.make "a" [ Aff.add_const i di; Aff.add_const j dj ]
  in
  let p =
    Program.make ~name:"seidel" ~params:[ "n" ]
      ~decls:[ Decl.heap "a" [ Aff.var "n"; Aff.var "n" ] ]
      [
        Stmt.loop_aff "j" ~lo:(Aff.const 1) ~hi:(Aff.add_const (Aff.var "n") (-2))
          [
            Stmt.loop_aff "i" ~lo:(Aff.const 1)
              ~hi:(Aff.add_const (Aff.var "n") (-2))
              [ Stmt.assign (a 0 0) Ir.Fexpr.(ref_ (a (-1) 1) + ref_ (a 1 0)) ];
          ];
      ]
  in
  let deps = Depend.analyze p in
  Alcotest.(check bool) "has deps" true (deps <> []);
  Alcotest.(check bool) "interchange illegal" false
    (Depend.permutation_legal deps [ "i"; "j" ])

let test_innermost_legal () =
  let deps = Depend.analyze mm in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s innermost legal" v)
        true
        (Depend.innermost_legal deps ~order:[ "k"; "j"; "i" ] v))
    [ "k"; "j"; "i" ]

(* --- Reuse --- *)

let mm_groups = Reuse.groups_of_body mm.Ir.Program.body
let jacobi_groups = Reuse.groups_of_body jacobi.Ir.Program.body

let test_mm_groups () =
  (* c (read+write), a, b *)
  Alcotest.(check int) "three groups" 3 (List.length mm_groups);
  let c = List.find (fun g -> g.Reuse.array = "c") mm_groups in
  Alcotest.(check int) "c has two members" 2 (List.length c.Reuse.members)

let test_jacobi_groups () =
  (* a (write), b (6 reads, one uniform group) *)
  Alcotest.(check int) "two groups" 2 (List.length jacobi_groups);
  let b = List.find (fun g -> g.Reuse.array = "b") jacobi_groups in
  Alcotest.(check int) "b has six members" 6 (List.length b.Reuse.members)

let test_self_temporal () =
  let c = Ir.Reference.make "c" [ Ir.Aff.var "i"; Ir.Aff.var "j" ] in
  Alcotest.(check bool) "c temporal in k" true (Reuse.self_temporal c "k");
  Alcotest.(check bool) "c not temporal in i" false (Reuse.self_temporal c "i")

let test_self_spatial () =
  let a = Ir.Reference.make "a" [ Ir.Aff.var "i"; Ir.Aff.var "k" ] in
  Alcotest.(check bool) "a spatial in i" true (Reuse.self_spatial a "i");
  Alcotest.(check bool) "a not spatial in k" false (Reuse.self_spatial a "k")

let test_mm_temporal_savings () =
  (* The decisive numbers behind choosing K innermost (see §3.1.2): K
     saves 2 accesses/iteration (C load + store), I and J save 1. *)
  Alcotest.(check int) "k" 2 (Reuse.loop_temporal_savings mm_groups "k");
  Alcotest.(check int) "j" 1 (Reuse.loop_temporal_savings mm_groups "j");
  Alcotest.(check int) "i" 1 (Reuse.loop_temporal_savings mm_groups "i")

let test_jacobi_temporal_savings_tie () =
  let s v = Reuse.loop_temporal_savings jacobi_groups v in
  Alcotest.(check int) "i" 1 (s "i");
  Alcotest.(check int) "j" 1 (s "j");
  Alcotest.(check int) "k" 1 (s "k")

let test_jacobi_spatial_breaks_tie () =
  let sp v = Reuse.loop_spatial_score jacobi_groups v in
  Alcotest.(check bool) "i spatially dominant" true (sp "i" > sp "j" && sp "i" > sp "k")

let test_register_retainable () =
  let b = List.find (fun g -> g.Reuse.array = "b") jacobi_groups in
  let retained = Reuse.register_retainable b ~rotation:"i" in
  (* Exactly the B[i-1], B[i+1] chain; the four halo refs excluded. *)
  Alcotest.(check int) "two chain members" 2 (List.length retained);
  let c = List.find (fun g -> g.Reuse.array = "c") mm_groups in
  Alcotest.(check int) "c fully retainable" 2
    (List.length (Reuse.register_retainable c ~rotation:"k"))

(* --- Footprint --- *)

let test_footprint_mm_register () =
  (* C with unrolls UI, UJ -> UI*UJ, the paper's register constraint. *)
  let c = List.find (fun g -> g.Reuse.array = "c") mm_groups in
  let extents =
    Footprint.of_extent_list [ ("i", Poly.var "ui"); ("j", Poly.var "uj") ]
  in
  let fp = Footprint.group_elements extents c in
  Alcotest.(check int) "4x2 -> 8" 8
    (Poly.eval (lookup_of [ ("ui", 4); ("uj", 2) ]) fp);
  Alcotest.(check string) "symbolic form" "ui*uj" (Poly.to_string fp)

let test_footprint_mm_l1 () =
  (* B over one I iteration with J,K tiled: TJ*TK (Table 4, v1). *)
  let b = List.find (fun g -> g.Reuse.array = "b") mm_groups in
  let extents =
    Footprint.of_extent_list [ ("j", Poly.var "tj"); ("k", Poly.var "tk") ]
  in
  let fp = Footprint.group_elements extents b in
  Alcotest.(check string) "symbolic form" "tj*tk" (Poly.to_string fp)

let test_footprint_jacobi_registers () =
  (* B with rotation along i and unrolls UJ, UK: 3*(UJ+2)*(UK+2) for the
     full group; the retained chain alone is 3*UJ*UK-ish — we check the
     full-group polynomial at a point. *)
  let b = List.find (fun g -> g.Reuse.array = "b") jacobi_groups in
  let extents =
    Footprint.of_extent_list [ ("j", Poly.var "uj"); ("k", Poly.var "uk") ]
  in
  let fp = Footprint.group_elements extents b in
  (* extents: i-span 3, j: uj+2, k: uk+2 *)
  Alcotest.(check int) "at uj=uk=2" (3 * 4 * 4)
    (Poly.eval (lookup_of [ ("uj", 2); ("uk", 2) ]) fp)

let test_footprint_additive_across_groups () =
  let extents = Footprint.of_extent_list [ ("i", Poly.const 4) ] in
  let total = Footprint.elements extents mm_groups in
  let by_sum =
    List.fold_left
      (fun acc g -> Poly.add acc (Footprint.group_elements extents g))
      Poly.zero mm_groups
  in
  Alcotest.(check bool) "additive" true (Poly.equal total by_sum)

let test_footprint_pages_contiguous () =
  (* A 512x8-element tile of a 512-column array: dimension 0 is full, so
     the tile is 8 contiguous runs... the run folds: extent0=512=dim0 ->
     run = 512*8 = 4096 elements = 8 pages. *)
  let r = Ir.Reference.make "x" [ Ir.Aff.var "i"; Ir.Aff.var "j" ] in
  let g =
    {
      Reuse.array = "x";
      signature = Ir.Reference.coeff_signature r;
      members = [ (r, false) ];
    }
  in
  let extents =
    Footprint.of_extent_list [ ("i", Poly.const 512); ("j", Poly.const 8) ]
  in
  let pages =
    Footprint.pages ~page_elems:512 ~array_dims:[ 512; 512 ]
      ~lookup:(lookup_of []) extents g
  in
  Alcotest.(check int) "8 pages" 8 pages

let test_footprint_pages_strided () =
  (* An 8x8 tile of a 1024-column array: 8 separate runs of 8 elements,
     each potentially straddling a page boundary. *)
  let r = Ir.Reference.make "x" [ Ir.Aff.var "i"; Ir.Aff.var "j" ] in
  let g =
    {
      Reuse.array = "x";
      signature = Ir.Reference.coeff_signature r;
      members = [ (r, false) ];
    }
  in
  let extents =
    Footprint.of_extent_list [ ("i", Poly.const 8); ("j", Poly.const 8) ]
  in
  let pages =
    Footprint.pages ~page_elems:512 ~array_dims:[ 1024; 1024 ]
      ~lookup:(lookup_of []) extents g
  in
  Alcotest.(check int) "8 runs x 2 pages" 16 pages

let suite =
  [
    Alcotest.test_case "poly basics" `Quick test_poly_basics;
    Alcotest.test_case "poly normalization" `Quick test_poly_normalization;
    Alcotest.test_case "poly distribution" `Quick test_poly_distribution;
    QCheck_alcotest.to_alcotest prop_poly_eval_homomorphic;
    Alcotest.test_case "mm dependences on k only" `Quick test_mm_dependences;
    Alcotest.test_case "mm fully permutable" `Quick test_mm_fully_permutable;
    Alcotest.test_case "jacobi independent" `Quick test_jacobi_no_deps;
    Alcotest.test_case "seidel interchange illegal" `Quick
      test_seidel_not_permutable;
    Alcotest.test_case "mm innermost moves legal" `Quick test_innermost_legal;
    Alcotest.test_case "mm groups" `Quick test_mm_groups;
    Alcotest.test_case "jacobi groups" `Quick test_jacobi_groups;
    Alcotest.test_case "self temporal" `Quick test_self_temporal;
    Alcotest.test_case "self spatial" `Quick test_self_spatial;
    Alcotest.test_case "mm temporal savings (k wins)" `Quick
      test_mm_temporal_savings;
    Alcotest.test_case "jacobi temporal tie" `Quick test_jacobi_temporal_savings_tie;
    Alcotest.test_case "jacobi spatial tie-break" `Quick
      test_jacobi_spatial_breaks_tie;
    Alcotest.test_case "register retainable" `Quick test_register_retainable;
    Alcotest.test_case "footprint: mm registers (UI*UJ)" `Quick
      test_footprint_mm_register;
    Alcotest.test_case "footprint: mm L1 (TJ*TK)" `Quick test_footprint_mm_l1;
    Alcotest.test_case "footprint: jacobi registers" `Quick
      test_footprint_jacobi_registers;
    Alcotest.test_case "footprint: additive" `Quick
      test_footprint_additive_across_groups;
    Alcotest.test_case "footprint pages: contiguous" `Quick
      test_footprint_pages_contiguous;
    Alcotest.test_case "footprint pages: strided" `Quick
      test_footprint_pages_strided;
  ]
