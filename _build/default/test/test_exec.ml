(* Tests for the closure-compiling executor: value correctness against
   independent references, counter behaviour, budgets, spills, layout. *)

open Ir
module Kernel = Kernels.Kernel
module Matmul = Kernels.Matmul
module Jacobi3d = Kernels.Jacobi3d
module Matvec = Kernels.Matvec
module Stencil2d = Kernels.Stencil2d

let matmul_program = Matmul.kernel.Kernel.program

let float_arrays_close ?(eps = 1e-9) msg expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: length %d <> %d" msg (Array.length expected)
      (Array.length actual);
  Array.iteri
    (fun i e ->
      let a = actual.(i) in
      let scale = Float.max 1.0 (Float.abs e) in
      if Float.abs (e -. a) > eps *. scale then
        Alcotest.failf "%s: element %d: expected %.17g, got %.17g" msg i e a)
    expected

let array_of result name = List.assoc name result.Exec.arrays

let test_matmul_matches_reference () =
  let n = 13 in
  let result = Kernel.run_original Matmul.kernel n in
  float_arrays_close "matmul C" (Matmul.reference n) (array_of result "c")

let test_jacobi_matches_reference () =
  let n = 9 in
  let result = Kernel.run_original Jacobi3d.kernel n in
  float_arrays_close "jacobi A" (Jacobi3d.reference n) (array_of result "a")

let test_matvec_matches_reference () =
  let n = 17 in
  let result = Kernel.run_original Matvec.kernel n in
  float_arrays_close "matvec y" (Matvec.reference n) (array_of result "y")

let test_stencil2d_matches_reference () =
  let n = 11 in
  let result = Kernel.run_original Stencil2d.kernel n in
  float_arrays_close "stencil2d A" (Stencil2d.reference n) (array_of result "a")

let test_flop_count () =
  let n = 8 in
  let result = Kernel.run_original Matmul.kernel n in
  Alcotest.(check int) "2*n^3 flops" (2 * n * n * n) result.Exec.stats.Exec.flops

let test_loop_iterations () =
  let n = 5 in
  let result = Kernel.run_original Matmul.kernel n in
  Alcotest.(check int) "n + n^2 + n^3 iterations"
    (n + (n * n) + (n * n * n))
    result.Exec.stats.Exec.loop_iterations

let test_budget_stops () =
  let result =
    Exec.run ~flop_budget:100 ~params:[ ("n", 32) ] matmul_program
  in
  Alcotest.(check bool) "not completed" false result.Exec.stats.Exec.completed;
  Alcotest.(check bool) "flops near budget" true
    (result.Exec.stats.Exec.flops >= 100 && result.Exec.stats.Exec.flops <= 102)

let test_budget_large_enough_completes () =
  let n = 6 in
  let result =
    Exec.run
      ~flop_budget:(2 * n * n * n)
      ~params:[ ("n", n) ]
      matmul_program
  in
  Alcotest.(check bool) "completed" true result.Exec.stats.Exec.completed

let test_unbound_param_rejected () =
  Alcotest.check_raises "unbound param"
    (Invalid_argument "Exec.run: unbound parameter n") (fun () ->
      ignore (Exec.run ~params:[] matmul_program))

let test_undeclared_array_rejected () =
  let bad =
    Program.make ~name:"bad" ~params:[]
      ~decls:[]
      [ Stmt.assign (Reference.make "ghost" [ Aff.zero ]) (Fexpr.const 1.0) ]
  in
  match Exec.run ~params:[] bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let count_sink () =
  let loads = ref 0 and stores = ref 0 and prefs = ref 0 in
  let sink =
    {
      Sink.load = (fun _ -> incr loads);
      Sink.store = (fun _ -> incr stores);
      Sink.prefetch = (fun _ -> incr prefs);
    }
  in
  (sink, loads, stores, prefs)

let test_sink_counts () =
  let n = 7 in
  let sink, loads, stores, _ = count_sink () in
  ignore (Exec.run ~sink ~params:[ ("n", n) ] matmul_program);
  (* Each inner iteration: loads C, A, B; stores C. *)
  Alcotest.(check int) "loads" (3 * n * n * n) !loads;
  Alcotest.(check int) "stores" (n * n * n) !stores

let test_register_refs_bypass_sink () =
  (* r = 2.0; x[0] = r + 1  — only the store to x is memory traffic. *)
  let r = Reference.scalar "r" in
  let x = Reference.make "x" [ Aff.zero ] in
  let p =
    Program.make ~name:"regs" ~params:[]
      ~decls:[ Decl.register "r"; Decl.heap "x" [ Aff.const 4 ] ]
      [
        Stmt.assign r (Fexpr.const 2.0);
        Stmt.assign x Fexpr.(ref_ r + const 1.0);
      ]
  in
  let sink, loads, stores, _ = count_sink () in
  let result = Exec.run ~sink ~params:[] p in
  Alcotest.(check int) "no loads" 0 !loads;
  Alcotest.(check int) "one store" 1 !stores;
  Alcotest.(check (float 1e-12)) "value" 3.0 (array_of result "x").(0);
  Alcotest.(check int) "no spills" 0 result.Exec.stats.Exec.spilled_scalars

let test_register_spill () =
  (* Three register scalars with budget 1: two spill to memory. *)
  let mk name = Reference.scalar name in
  let p =
    Program.make ~name:"spill" ~params:[]
      ~decls:
        [
          Decl.register "r0";
          Decl.register "r1";
          Decl.register "r2";
          Decl.heap "x" [ Aff.const 1 ];
        ]
      [
        Stmt.assign (mk "r0") (Fexpr.const 1.0);
        Stmt.assign (mk "r1") (Fexpr.const 2.0);
        Stmt.assign (mk "r2") (Fexpr.const 3.0);
        Stmt.assign
          (Reference.make "x" [ Aff.zero ])
          Fexpr.(ref_ (mk "r0") + ref_ (mk "r1") + ref_ (mk "r2"));
      ]
  in
  let sink, loads, stores, _ = count_sink () in
  let result = Exec.run ~sink ~register_budget:1 ~params:[] p in
  Alcotest.(check int) "spilled" 2 result.Exec.stats.Exec.spilled_scalars;
  Alcotest.(check int) "spill stores + x store" 3 !stores;
  Alcotest.(check int) "spill loads" 2 !loads;
  float_arrays_close "value" [| 6.0 |] (array_of result "x")

let test_register_move_counted () =
  let p =
    Program.make ~name:"moves" ~params:[]
      ~decls:[ Decl.register "r0"; Decl.register "r1"; Decl.heap "x" [ Aff.const 1 ] ]
      [
        Stmt.assign (Reference.scalar "r0") (Fexpr.const 5.0);
        Stmt.assign (Reference.scalar "r1") (Fexpr.ref_ (Reference.scalar "r0"));
        Stmt.assign (Reference.make "x" [ Aff.zero ]) (Fexpr.ref_ (Reference.scalar "r1"));
      ]
  in
  let result = Exec.run ~params:[] p in
  Alcotest.(check int) "one register move" 1 result.Exec.stats.Exec.register_moves;
  float_arrays_close "value" [| 5.0 |] (array_of result "x")

let test_layout_page_aligned () =
  let bases = Exec.layout ~params:[ ("n", 100) ] matmul_program in
  Alcotest.(check int) "three arrays" 3 (List.length bases);
  List.iter
    (fun (name, base) ->
      if base mod 512 <> 0 then Alcotest.failf "%s base %d not page aligned" name base)
    bases;
  (* Bases must not overlap: each array is n*n elements. *)
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) bases in
  let rec check = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) "no overlap" true (b - a >= 100 * 100);
      check rest
    | _ -> ()
  in
  check sorted

let test_checksum_distinguishes () =
  let c1 = Kernel.original_checksum Matmul.kernel 8 in
  let c2 = Kernel.original_checksum Matmul.kernel 9 in
  Alcotest.(check bool) "different sizes differ" true (c1 <> c2)

let test_checksum_deterministic () =
  let c1 = Kernel.original_checksum Jacobi3d.kernel 8 in
  let c2 = Kernel.original_checksum Jacobi3d.kernel 8 in
  Alcotest.(check (float 0.0)) "deterministic" c1 c2

let test_step_loop () =
  (* DO i = 0, 9, 3: touches x[0], x[3], x[6], x[9]. *)
  let i = Aff.var "i" in
  let p =
    Program.make ~name:"step" ~params:[]
      ~decls:[ Decl.heap "x" [ Aff.const 10 ] ]
      [
        Stmt.loop ~step:3 "i" ~lo:(Bexp.const 0) ~hi:(Bexp.const 9)
          [ Stmt.assign (Reference.make "x" [ i ]) (Fexpr.const 1.0) ];
      ]
  in
  let result = Exec.run ~params:[] p in
  let x = array_of result "x" in
  let touched = ref [] in
  Array.iteri (fun idx v -> if v = 1.0 then touched := idx :: !touched) x;
  Alcotest.(check (list int)) "strided elements" [ 0; 3; 6; 9 ]
    (List.rev !touched);
  Alcotest.(check int) "4 iterations" 4 result.Exec.stats.Exec.loop_iterations

let test_empty_loop_runs_zero_times () =
  let i = Aff.var "i" in
  let p =
    Program.make ~name:"empty" ~params:[]
      ~decls:[ Decl.heap "x" [ Aff.const 4 ] ]
      [
        Stmt.loop "i" ~lo:(Bexp.const 5) ~hi:(Bexp.const 2)
          [ Stmt.assign (Reference.make "x" [ i ]) (Fexpr.const 1.0) ];
      ]
  in
  let result = Exec.run ~params:[] p in
  Alcotest.(check int) "0 iterations" 0 result.Exec.stats.Exec.loop_iterations

let prop_initial_value_in_range =
  QCheck.Test.make ~name:"initial values lie in [0.5, 1.5)" ~count:1000
    QCheck.(pair (oneofl [ "a"; "b"; "c"; "p"; "q" ]) (int_range 0 1_000_000))
    (fun (name, i) ->
      let v = Exec.initial_value name i in
      v >= 0.5 && v < 1.5)

let suite =
  [
    Alcotest.test_case "matmul matches independent reference" `Quick
      test_matmul_matches_reference;
    Alcotest.test_case "jacobi3d matches independent reference" `Quick
      test_jacobi_matches_reference;
    Alcotest.test_case "matvec matches independent reference" `Quick
      test_matvec_matches_reference;
    Alcotest.test_case "stencil2d matches independent reference" `Quick
      test_stencil2d_matches_reference;
    Alcotest.test_case "flop count" `Quick test_flop_count;
    Alcotest.test_case "loop iteration count" `Quick test_loop_iterations;
    Alcotest.test_case "flop budget stops execution" `Quick test_budget_stops;
    Alcotest.test_case "sufficient budget completes" `Quick
      test_budget_large_enough_completes;
    Alcotest.test_case "unbound parameter rejected" `Quick
      test_unbound_param_rejected;
    Alcotest.test_case "undeclared array rejected" `Quick
      test_undeclared_array_rejected;
    Alcotest.test_case "sink sees every heap access" `Quick test_sink_counts;
    Alcotest.test_case "register refs bypass the sink" `Quick
      test_register_refs_bypass_sink;
    Alcotest.test_case "register spill over budget" `Quick test_register_spill;
    Alcotest.test_case "register moves counted" `Quick test_register_move_counted;
    Alcotest.test_case "layout page aligned, no overlap" `Quick
      test_layout_page_aligned;
    Alcotest.test_case "checksum distinguishes outputs" `Quick
      test_checksum_distinguishes;
    Alcotest.test_case "checksum deterministic" `Quick test_checksum_deterministic;
    Alcotest.test_case "strided loop" `Quick test_step_loop;
    Alcotest.test_case "empty loop" `Quick test_empty_loop_runs_zero_times;
    QCheck_alcotest.to_alcotest prop_initial_value_in_range;
  ]
