test/test_extensions.ml: Alcotest Array Baselines Core Experiments Float Ir Kernels List Machine Memsim Printf Transform
