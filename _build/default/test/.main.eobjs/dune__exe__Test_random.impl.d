test/test_random.ml: Aff Array Decl Exec Fexpr Float Ir List Printf Program QCheck QCheck_alcotest Reference Stmt String Transform
