test/test_baselines.ml: Alcotest Array Baselines Core Float Ir Kernels List Machine Printf
