test/test_transform.ml: Aff Alcotest Array Decl Exec Float Ir Kernels List Printf Program QCheck QCheck_alcotest Reference Sink Stmt String Transform
