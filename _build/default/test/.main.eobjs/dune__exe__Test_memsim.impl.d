test/test_memsim.ml: Alcotest Gen Ir Kernels List Machine Memsim QCheck QCheck_alcotest
