test/test_core.ml: Alcotest Analysis Array Core Float Ir Kernels Lazy List Machine Printf String
