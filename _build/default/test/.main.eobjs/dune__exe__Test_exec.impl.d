test/test_exec.ml: Aff Alcotest Array Bexp Decl Exec Fexpr Float Ir Kernels List Program QCheck QCheck_alcotest Reference Sink Stmt
