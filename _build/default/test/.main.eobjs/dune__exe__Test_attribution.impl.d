test/test_attribution.ml: Aff Alcotest Baselines Core Ir Kernels List Machine Memsim Transform
