test/test_aff.ml: Aff Alcotest Bexp Gen Ir List QCheck QCheck_alcotest
