test/test_analysis.ml: Aff Alcotest Analysis Decl Depend Footprint Ir Kernels List Poly Printf Program QCheck QCheck_alcotest Reference Reuse Stmt
