test/test_trace.ml: Alcotest Ir Kernels Machine Memsim Transform
