test/test_codegen.ml: Aff Alcotest Array Buffer Codegen_c Codegen_f90 Core Decl Exec Filename Ir Kernels Lazy List Machine Printf Program String Sys Transform
