test/main.mli:
