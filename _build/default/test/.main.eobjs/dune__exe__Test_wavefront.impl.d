test/test_wavefront.ml: Alcotest Analysis Array Core Float Ir Kernels List Machine Transform
