test/test_reuse_distance.ml: Alcotest Gen Ir Kernels List Machine Memsim Printf QCheck QCheck_alcotest Transform
