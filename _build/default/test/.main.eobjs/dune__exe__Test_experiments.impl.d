test/test_experiments.ml: Alcotest Core Experiments Lazy List Machine String
