(* Unit and property tests for the affine/bound expression algebra. *)

open Ir

let check_int = Alcotest.(check int)

let lookup_of bindings x =
  match List.assoc_opt x bindings with
  | Some v -> v
  | None -> Alcotest.failf "unbound %s" x

let test_const () =
  check_int "const" 7 (Aff.eval (lookup_of []) (Aff.const 7));
  Alcotest.(check (option int)) "is_const" (Some 7) (Aff.is_const (Aff.const 7))

let test_add_normalizes () =
  let e = Aff.add (Aff.term 2 "x") (Aff.term 3 "x") in
  Alcotest.check Alcotest.bool "2x+3x = 5x" true (Aff.equal e (Aff.term 5 "x"))

let test_cancel () =
  let e = Aff.sub (Aff.term 2 "x") (Aff.term 2 "x") in
  Alcotest.(check (option int)) "2x-2x = 0" (Some 0) (Aff.is_const e);
  Alcotest.check Alcotest.bool "equal zero" true (Aff.equal e Aff.zero)

let test_coeff () =
  let e = Aff.add (Aff.term 4 "i") (Aff.add_const (Aff.term (-2) "j") 9) in
  check_int "coeff i" 4 (Aff.coeff e "i");
  check_int "coeff j" (-2) (Aff.coeff e "j");
  check_int "coeff k" 0 (Aff.coeff e "k");
  check_int "const" 9 (Aff.const_part e)

let test_subst () =
  (* (3i + 2) [i -> j + 1] = 3j + 5 *)
  let e = Aff.add_const (Aff.term 3 "i") 2 in
  let e' = Aff.subst "i" (Aff.add_const (Aff.var "j") 1) e in
  Alcotest.check Alcotest.bool "subst result" true
    (Aff.equal e' (Aff.add_const (Aff.term 3 "j") 5))

let test_subst_absent () =
  let e = Aff.term 3 "i" in
  Alcotest.check Alcotest.bool "subst of absent var is identity" true
    (Aff.equal e (Aff.subst "z" (Aff.const 100) e))

let test_rename () =
  let e = Aff.add (Aff.var "i") (Aff.var "j") in
  let e' = Aff.rename "i" "k" e in
  check_int "renamed eval" 30
    (Aff.eval (lookup_of [ ("k", 10); ("j", 20) ]) e')

let test_vars_sorted () =
  let e = Aff.add (Aff.var "z") (Aff.add (Aff.var "a") (Aff.var "m")) in
  Alcotest.(check (list string)) "vars" [ "a"; "m"; "z" ] (Aff.vars e)

let test_pp () =
  let e = Aff.add_const (Aff.add (Aff.term 2 "i") (Aff.term (-1) "j")) 3 in
  Alcotest.(check string) "pp" "2*i - j + 3" (Aff.to_string e)

let test_bexp_min_max () =
  let lookup = lookup_of [ ("n", 10) ] in
  let b = Bexp.min_ (Bexp.var "n") (Bexp.const 7) in
  check_int "min" 7 (Bexp.eval lookup b);
  let b = Bexp.max_ (Bexp.var "n") (Bexp.const 7) in
  check_int "max" 10 (Bexp.eval lookup b)

let test_bexp_floor_mult () =
  let lookup = lookup_of [] in
  check_int "4*floor(10/4)" 8 (Bexp.eval lookup (Bexp.floor_mult (Bexp.const 10) 4));
  check_int "4*floor(8/4)" 8 (Bexp.eval lookup (Bexp.floor_mult (Bexp.const 8) 4));
  check_int "floor of negative" (-4)
    (Bexp.eval lookup (Bexp.floor_mult (Bexp.const (-1)) 4));
  check_int "k=1 identity" 5 (Bexp.eval lookup (Bexp.floor_mult (Bexp.const 5) 1))

let test_bexp_subst () =
  let b =
    Bexp.min_
      (Bexp.aff (Aff.add_const (Aff.var "jj") 15))
      (Bexp.aff (Aff.add_const (Aff.var "n") (-1)))
  in
  let b' = Bexp.subst "jj" (Aff.const 32) b in
  check_int "substituted min" 47 (Bexp.eval (lookup_of [ ("n", 100) ]) b');
  check_int "substituted min clipped" 39 (Bexp.eval (lookup_of [ ("n", 40) ]) b')

let test_bexp_vars () =
  let b = Bexp.add (Bexp.var "a") (Bexp.min_ (Bexp.var "b") (Bexp.var "a")) in
  Alcotest.(check (list string)) "vars dedup" [ "a"; "b" ] (Bexp.vars b)

(* Property: evaluation is linear — eval(a + k*b) = eval(a) + k*eval(b). *)
let arb_aff =
  let open QCheck in
  let gen =
    Gen.(
      map2
        (fun terms c ->
          List.fold_left
            (fun acc (coef, v) -> Aff.add acc (Aff.term coef v))
            (Aff.const c) terms)
        (small_list (pair (int_range (-5) 5) (oneofl [ "i"; "j"; "k"; "n" ])))
        (int_range (-100) 100))
  in
  make ~print:Aff.to_string gen

let env = [ ("i", 3); ("j", -7); ("k", 11); ("n", 64) ]

let prop_linear =
  QCheck.Test.make ~name:"aff eval is linear" ~count:500
    QCheck.(pair arb_aff (pair arb_aff (int_range (-4) 4)))
    (fun (a, (b, k)) ->
      let ev e = Aff.eval (lookup_of env) e in
      ev (Aff.add a (Aff.scale k b)) = ev a + (k * ev b))

let prop_subst_sound =
  QCheck.Test.make ~name:"aff subst agrees with env rebinding" ~count:500
    QCheck.(pair arb_aff arb_aff)
    (fun (e, r) ->
      let rv = Aff.eval (lookup_of env) r in
      let direct = Aff.eval (lookup_of (("i", rv) :: List.remove_assoc "i" env)) e in
      Aff.eval (lookup_of env) (Aff.subst "i" r e) = direct)

let prop_floor_mult =
  QCheck.Test.make ~name:"floor_mult bounds its argument" ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 64))
    (fun (v, k) ->
      let fm = Bexp.eval (lookup_of []) (Bexp.floor_mult (Bexp.const v) k) in
      fm mod k = 0 && fm <= v && v - fm < k)

let suite =
  [
    Alcotest.test_case "const" `Quick test_const;
    Alcotest.test_case "add normalizes" `Quick test_add_normalizes;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "coeff access" `Quick test_coeff;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "substitution of absent var" `Quick test_subst_absent;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "vars sorted" `Quick test_vars_sorted;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "bexp min/max" `Quick test_bexp_min_max;
    Alcotest.test_case "bexp floor_mult" `Quick test_bexp_floor_mult;
    Alcotest.test_case "bexp subst" `Quick test_bexp_subst;
    Alcotest.test_case "bexp vars" `Quick test_bexp_vars;
    QCheck_alcotest.to_alcotest prop_linear;
    QCheck_alcotest.to_alcotest prop_subst_sound;
    QCheck_alcotest.to_alcotest prop_floor_mult;
  ]
