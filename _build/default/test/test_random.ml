(* Generative testing: random rectangular kernels pushed through random
   transformation pipelines must compute exactly what the original
   computes.  This is the broadest soundness net in the suite — it
   exercises permutation x tiling x unroll-and-jam x scalar replacement
   x prefetching on programs nobody hand-picked. *)

open Ir

(* --- random kernel generator ---

   Shape: 2 or 3 nested loops over [0, n), one statement
     W[idx] = W[idx] + sum of products of reads
   where W is indexed by all "space" loop variables (so every iteration
   writes a distinct element and the nest is fully permutable), and the
   reads index random loop variables with small constant offsets (offsets
   are clamped so accesses stay in bounds via a shifted domain). *)

type spec = {
  depth : int;  (* 2 or 3 loops *)
  read_arrays : (string * (int * int) list list) list;
      (* array -> list of refs, each ref = per-dim (var index, offset) *)
  n : int;
}

let loop_vars = [| "i"; "j"; "k" |]

let gen_spec =
  QCheck.Gen.(
    let* depth = int_range 2 3 in
    let* n = int_range 6 12 in
    (* every reference to one array must have that array's rank *)
    let gen_dim =
      let* var = int_range 0 (depth - 1) in
      let* off = int_range (-1) 1 in
      return (var, off)
    in
    let gen_refs count_gen =
      let* rank = int_range 1 2 in
      let* count = count_gen in
      list_repeat count (list_repeat rank gen_dim)
    in
    let* a_refs = gen_refs (int_range 1 3) in
    let* b_refs = gen_refs (int_range 0 2) in
    return { depth; read_arrays = [ ("a", a_refs); ("b", b_refs) ]; n })

let build_program spec =
  let n = Aff.var "n" in
  (* domain [1, n-2] so that +-1 offsets stay inside [0, n-1] *)
  let lo = Aff.const 1 and hi = Aff.add_const n (-2) in
  let vars = Array.sub loop_vars 0 spec.depth in
  let dims rank = List.init rank (fun _ -> n) in
  let read_ref (array, dim_specs) =
    Reference.make array
      (List.map
         (fun (var, off) -> Aff.add_const (Aff.var vars.(var)) off)
         dim_specs)
  in
  let w_ref =
    Reference.make "w" (Array.to_list (Array.map Aff.var vars))
  in
  let reads =
    List.concat_map
      (fun (array, refs) -> List.map (fun r -> read_ref (array, r)) refs)
      spec.read_arrays
  in
  let rhs =
    List.fold_left
      (fun acc r -> Fexpr.(acc + ref_ r))
      (Fexpr.ref_ w_ref) reads
  in
  let decls =
    Decl.heap "w" (dims spec.depth)
    :: List.filter_map
         (fun (array, refs) ->
           match refs with
           | [] -> None
           | r :: _ -> Some (Decl.heap array (dims (List.length r))))
         spec.read_arrays
  in
  let body =
    Array.fold_right
      (fun v acc -> [ Stmt.loop_aff v ~lo ~hi acc ])
      vars
      [ Stmt.assign w_ref rhs ]
  in
  Program.make ~name:"random" ~params:[ "n" ] ~decls body

(* --- random pipeline --- *)

type pipeline = {
  order_seed : int;
  tiles : (int * int) list;  (* (var index, size) *)
  unrolls : (int * int) list;
  prefetch_a : int option;
  pad : int;
}

let gen_pipeline =
  QCheck.Gen.(
    let* order_seed = int_range 0 5 in
    let* tiles =
      list_size (int_range 0 2) (pair (int_range 0 2) (int_range 2 5))
    in
    let* unrolls =
      list_size (int_range 0 2) (pair (int_range 0 2) (int_range 2 4))
    in
    let* prefetch_a = option (int_range 1 4) in
    let* pad = int_range 0 5 in
    return { order_seed; tiles; unrolls; prefetch_a; pad })

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun r -> x :: r) (permutations (List.filter (( <> ) x) l)))
      l

let apply_pipeline spec pipe program =
  let vars = Array.to_list (Array.sub loop_vars 0 spec.depth) in
  let orders = permutations vars in
  let order = List.nth orders (pipe.order_seed mod List.length orders) in
  let p = Transform.Permute.apply program order in
  let tiles =
    List.sort_uniq
      (fun (a, _) (b, _) -> compare a b)
      (List.filter (fun (v, _) -> v < spec.depth) pipe.tiles)
  in
  let p =
    if tiles = [] then p
    else
      Transform.Tile.apply p
        (List.map
           (fun (v, size) ->
             {
               Transform.Tile.var = loop_vars.(v);
               size;
               control = loop_vars.(v) ^ loop_vars.(v);
             })
           tiles)
        ~control_order:
          (List.map (fun (v, _) -> loop_vars.(v) ^ loop_vars.(v)) tiles)
  in
  let unrolls =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b)
      (List.filter (fun (v, _) -> v < spec.depth) pipe.unrolls)
  in
  let p =
    List.fold_left
      (fun p (v, u) -> Transform.Unroll_jam.apply p loop_vars.(v) u)
      p unrolls
  in
  let p = Transform.Scalar_replace.apply p in
  let p =
    match pipe.prefetch_a with
    | Some d -> Transform.Prefetch_insert.apply p ~array:"a" ~distance:d ~line_elems:4
    | None -> p
  in
  if pipe.pad > 0 then Transform.Pad.apply_all p ~amount:pipe.pad else p

(* Compare w at logical coordinates: the transformed program may have a
   padded layout, so flat indices are decoded through each program's own
   declared extents. *)
let equivalent p1 p2 n =
  let r1 = Exec.run ~params:[ ("n", n) ] p1 in
  let r2 = Exec.run ~params:[ ("n", n) ] p2 in
  let w1 = List.assoc "w" r1.Exec.arrays in
  let w2 = List.assoc "w" r2.Exec.arrays in
  let strides p =
    Decl.strides (fun _ -> n) (Program.find_decl_exn p "w")
  in
  let s1 = strides p1 and s2 = strides p2 in
  let rank = List.length s1 in
  let rec check coords d =
    if d = rank then begin
      let flat s = List.fold_left2 (fun acc c st -> acc + (c * st)) 0 coords s in
      let a = w1.(flat s1) and b = w2.(flat s2) in
      Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)
    end
    else
      let rec go c = c >= n || (check (coords @ [ c ]) (d + 1) && go (c + 1)) in
      go 0
  in
  check [] 0

let arb =
  QCheck.make
    ~print:(fun (spec, pipe) ->
      Printf.sprintf "depth=%d n=%d tiles=[%s] unrolls=[%s] order=%d pad=%d"
        spec.depth spec.n
        (String.concat ";"
           (List.map (fun (v, s) -> Printf.sprintf "%d:%d" v s) pipe.tiles))
        (String.concat ";"
           (List.map (fun (v, u) -> Printf.sprintf "%d:%d" v u) pipe.unrolls))
        pipe.order_seed pipe.pad)
    QCheck.Gen.(pair gen_spec gen_pipeline)

let prop_random_pipelines_sound =
  QCheck.Test.make ~name:"random kernels x random pipelines are sound"
    ~count:120 arb
    (fun (spec, pipe) ->
      let program = build_program spec in
      match Program.validate program with
      | _ :: _ -> QCheck.Test.fail_report "generator built invalid program"
      | [] ->
        let transformed = apply_pipeline spec pipe program in
        (match Program.validate transformed with
        | [] -> ()
        | errs ->
          QCheck.Test.fail_report
            ("transformed program invalid: " ^ String.concat "; " errs));
        equivalent program transformed spec.n)

(* The padded program must also produce identical simulated *values*
   while having different array placement. *)
let prop_padding_changes_layout_not_values =
  QCheck.Test.make ~name:"padding changes layout, not values" ~count:50
    QCheck.Gen.(QCheck.make (pair gen_spec (int_range 1 8)))
    (fun (spec, pad) ->
      let program = build_program spec in
      let padded = Transform.Pad.apply_all program ~amount:pad in
      equivalent program padded spec.n
      &&
      let l1 = Exec.layout ~params:[ ("n", spec.n) ] program in
      let l2 = Exec.layout ~params:[ ("n", spec.n) ] padded in
      List.length l1 = List.length l2)

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:true prop_random_pipelines_sound;
    QCheck_alcotest.to_alcotest prop_padding_changes_layout_not_values;
  ]
