(* Legality pruning on a dependence-carrying kernel: the optimizer must
   only produce correct variants for the wavefront, and the dependence
   analysis must forbid the transformations that would break it. *)

module Kernel = Kernels.Kernel
module Wavefront = Kernels.Wavefront

let program = Wavefront.kernel.Kernel.program
let fast = Core.Executor.Budget 20_000

let test_reference_matches () =
  let n = 12 in
  let result = Kernel.run_original Wavefront.kernel n in
  let got = List.assoc "a" result.Ir.Exec.arrays in
  let want = Wavefront.reference n in
  Array.iteri
    (fun i w ->
      if Float.abs (w -. got.(i)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
        Alcotest.failf "a[%d] differs" i)
    want

let test_dependences_found () =
  let deps = Analysis.Depend.analyze program in
  Alcotest.(check bool) "has dependences" true (deps <> []);
  (* Every dependence is carried by t with distance 1. *)
  List.iter
    (fun (d : Analysis.Depend.t) ->
      Alcotest.(check bool) "t distance 1" true
        (List.assoc "t" d.Analysis.Depend.dirs = Analysis.Depend.Dist 1))
    deps

let test_interchange_illegal () =
  let deps = Analysis.Depend.analyze program in
  Alcotest.(check bool) "t..i legal" true
    (Analysis.Depend.permutation_legal deps [ "t"; "i" ]);
  Alcotest.(check bool) "i..t illegal" false
    (Analysis.Depend.permutation_legal deps [ "i"; "t" ]);
  Alcotest.(check bool) "not fully permutable" false
    (Analysis.Depend.fully_permutable deps)

let test_t_not_jammable () =
  let deps = Analysis.Depend.analyze program in
  Alcotest.(check bool) "t cannot move innermost" false
    (Analysis.Depend.innermost_legal deps ~order:[ "t"; "i" ] "t")

let test_derive_produces_only_legal_variants () =
  let variants = Core.Derive.variants Machine.sgi_r10000 Wavefront.kernel in
  Alcotest.(check bool) "at least one variant" true (variants <> []);
  List.iter
    (fun (v : Core.Variant.t) ->
      (* t is never unroll-and-jammed and the element order keeps t
         outside i. *)
      Alcotest.(check bool)
        (v.Core.Variant.name ^ ": t not jammed")
        false
        (List.mem_assoc "t" v.Core.Variant.unrolls);
      Alcotest.(check (list string))
        (v.Core.Variant.name ^ ": order preserved")
        [ "t"; "i" ] v.Core.Variant.element_order)
    variants

let test_derived_variants_compute_correctly () =
  let n = 11 in
  let want = Wavefront.reference n in
  List.iter
    (fun (v : Core.Variant.t) ->
      let bindings =
        List.map
          (fun p ->
            ( p.Core.Param.name,
              match p.Core.Param.kind with
              | Core.Param.Unroll -> 2
              | Core.Param.Tile -> 4 ))
          (Core.Variant.params v)
      in
      let p = Core.Variant.instantiate v ~bindings in
      let got = List.assoc "a" (Ir.Exec.run ~params:[ ("n", n) ] p).Ir.Exec.arrays in
      Array.iteri
        (fun i w ->
          if Float.abs (w -. got.(i)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
            Alcotest.failf "%s: a[%d] differs" v.Core.Variant.name i)
        want)
    (Core.Derive.variants Machine.sgi_r10000 Wavefront.kernel)

let test_eco_end_to_end_correct () =
  let r = Core.Eco.optimize ~mode:fast Machine.sgi_r10000 Wavefront.kernel ~n:32 in
  let n = 14 in
  let got =
    List.assoc "a"
      (Ir.Exec.run ~params:[ ("n", n) ] r.Core.Eco.outcome.Core.Search.program)
        .Ir.Exec.arrays
  in
  let want = Wavefront.reference n in
  Array.iteri
    (fun i w ->
      if Float.abs (w -. got.(i)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
        Alcotest.failf "tuned wavefront: a[%d] differs" i)
    want

let test_no_rotation_on_written_array () =
  (* A is written, so rotating scalar replacement must not fire. *)
  let p = Transform.Scalar_replace.apply program in
  let regs =
    List.filter
      (fun (d : Ir.Decl.t) -> d.Ir.Decl.storage = Ir.Decl.Register)
      p.Ir.Program.decls
  in
  Alcotest.(check int) "no rotation registers" 0 (List.length regs)

let suite =
  [
    Alcotest.test_case "reference matches" `Quick test_reference_matches;
    Alcotest.test_case "dependences found" `Quick test_dependences_found;
    Alcotest.test_case "interchange illegal" `Quick test_interchange_illegal;
    Alcotest.test_case "t not jammable" `Quick test_t_not_jammable;
    Alcotest.test_case "derive: only legal variants" `Quick
      test_derive_produces_only_legal_variants;
    Alcotest.test_case "derive: variants correct" `Quick
      test_derived_variants_compute_correctly;
    Alcotest.test_case "eco: end-to-end correct" `Quick test_eco_end_to_end_correct;
    Alcotest.test_case "no rotation on written array" `Quick
      test_no_rotation_on_written_array;
  ]
