(* Soundness tests for the loop transformations: every transformed
   program must compute exactly the same values as the original, for
   arbitrary (including non-dividing) parameter combinations. *)

open Ir
module Kernel = Kernels.Kernel
module Matmul = Kernels.Matmul
module Jacobi3d = Kernels.Jacobi3d
module Matvec = Kernels.Matvec

let mm = Matmul.kernel.Kernel.program
let jacobi = Jacobi3d.kernel.Kernel.program

let run ?(n = 13) p = Exec.run ~params:[ ("n", n) ] p

(* Compare the arrays of the reference program; the transformed program
   may declare extra temporaries (copy buffers), which are ignored. *)
let check_equiv ?(n = 13) msg reference transformed =
  let r1 = run ~n reference and r2 = run ~n transformed in
  List.iter
    (fun (name, a1) ->
      let a2 =
        match List.assoc_opt name r2.Exec.arrays with
        | Some a -> a
        | None -> Alcotest.failf "%s: array %s missing" msg name
      in
      if Array.length a1 <> Array.length a2 then
        Alcotest.failf "%s: %s sizes differ" msg name;
      Array.iteri
        (fun i v1 ->
          let v2 = a2.(i) in
          let scale = Float.max 1.0 (Float.abs v1) in
          if Float.abs (v1 -. v2) > 1e-9 *. scale then
            Alcotest.failf "%s: %s[%d]: %.17g <> %.17g" msg name i v1 v2)
        a1)
    r1.Exec.arrays

(* --- Permute --- *)

let test_permute_all_orders () =
  let orders =
    [
      [ "k"; "j"; "i" ]; [ "k"; "i"; "j" ]; [ "j"; "k"; "i" ];
      [ "j"; "i"; "k" ]; [ "i"; "k"; "j" ]; [ "i"; "j"; "k" ];
    ]
  in
  List.iter
    (fun order ->
      check_equiv
        (Printf.sprintf "order %s" (String.concat "" order))
        mm
        (Transform.Permute.apply mm order))
    orders

let test_permute_rejects_non_permutation () =
  match Transform.Permute.apply mm [ "k"; "j" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_permute_preserves_decls () =
  let p = Transform.Permute.apply mm [ "i"; "j"; "k" ] in
  Alcotest.(check int) "decls" 3 (List.length p.Program.decls)

(* --- Tile --- *)

let tile_mm ?(tj = 5) ?(tk = 7) () =
  Transform.Tile.apply mm
    [
      { Transform.Tile.var = "j"; size = tj; control = "jj" };
      { Transform.Tile.var = "k"; size = tk; control = "kk" };
    ]
    ~control_order:[ "kk"; "jj" ]

let test_tile_equivalent () = check_equiv "tiled mm" mm (tile_mm ())

let test_tile_non_dividing () =
  (* n = 13 with tiles 5 and 7 exercises partial tiles already; try more. *)
  List.iter
    (fun (tj, tk) ->
      check_equiv
        (Printf.sprintf "tile %dx%d" tj tk)
        mm
        (tile_mm ~tj ~tk ()))
    [ (1, 1); (13, 13); (4, 6); (2, 13); (17, 3) ]

let test_tile_structure () =
  let p = tile_mm () in
  let vars = Stmt.loop_vars p.Program.body in
  Alcotest.(check (list string)) "loop order" [ "kk"; "jj"; "k"; "j"; "i" ] vars

let test_tile_rejects_unknown_var () =
  match
    Transform.Tile.apply mm
      [ { Transform.Tile.var = "z"; size = 4; control = "zz" } ]
      ~control_order:[ "zz" ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* --- Unroll-and-jam --- *)

let test_unroll_jam_equivalent () =
  List.iter
    (fun (ui, uj) ->
      let p = Transform.Unroll_jam.apply mm "i" ui in
      let p = Transform.Unroll_jam.apply p "j" uj in
      check_equiv (Printf.sprintf "unroll %dx%d" ui uj) mm p)
    [ (2, 2); (3, 2); (4, 4); (5, 3); (13, 2); (16, 16) ]

let test_unroll_innermost () =
  let p = Transform.Unroll_jam.apply mm "i" 4 in
  check_equiv "unroll innermost" mm p

let test_unroll_after_tile () =
  (* The paper's composition: tile then unroll-and-jam the element loops. *)
  let p = tile_mm () in
  let p = Transform.Unroll_jam.apply p "i" 3 in
  let p = Transform.Unroll_jam.apply p "j" 2 in
  check_equiv "tile+unroll" mm p

let test_unroll_one_is_identity () =
  let p = Transform.Unroll_jam.apply mm "i" 1 in
  Alcotest.(check bool) "identity" true (p.Program.body = mm.Program.body)

let test_unroll_rejects_missing_loop () =
  match Transform.Unroll_jam.apply mm "z" 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_unroll_flop_preserving () =
  (* The unrolled program performs exactly the same flops. *)
  let p = Transform.Unroll_jam.apply mm "j" 5 in
  let r0 = run mm and r1 = run p in
  Alcotest.(check int) "flops" r0.Exec.stats.Exec.flops r1.Exec.stats.Exec.flops

let test_unroll_reduces_iterations () =
  let p = Transform.Unroll_jam.apply mm "i" 4 in
  let r0 = run mm and r1 = run p in
  Alcotest.(check bool) "fewer loop iterations" true
    (r1.Exec.stats.Exec.loop_iterations < r0.Exec.stats.Exec.loop_iterations)

(* --- Copy optimization --- *)

let copy_b_variant ?(tj = 5) ?(tk = 7) () =
  let p = tile_mm ~tj ~tk () in
  Transform.Copy_opt.apply p ~array:"b" ~temp:"p_b" ~at:"jj"
    ~dims:
      [
        { Transform.Copy_opt.base = Aff.var "kk"; extent = tk; bound = Aff.var "n" };
        { Transform.Copy_opt.base = Aff.var "jj"; extent = tj; bound = Aff.var "n" };
      ]

let test_copy_equivalent () = check_equiv "copy b" mm (copy_b_variant ())

let test_copy_non_dividing () =
  List.iter
    (fun (tj, tk) ->
      check_equiv (Printf.sprintf "copy %dx%d" tj tk) mm (copy_b_variant ~tj ~tk ()))
    [ (3, 5); (13, 4); (6, 13) ]

let test_copy_rewrites_refs () =
  let p = copy_b_variant () in
  let arrays =
    List.sort_uniq String.compare
      (List.map
         (fun (r : Reference.t) -> r.Reference.array)
         (Stmt.all_refs p.Program.body))
  in
  Alcotest.(check bool) "temp referenced" true (List.mem "p_b" arrays);
  (* b survives only in the copy loops (as the source). *)
  let innermost = Stmt.innermost_loops p.Program.body in
  Alcotest.(check int) "two innermost loops (copy + compute)" 2
    (List.length innermost)

let test_copy_rejects_written_array () =
  let p = tile_mm () in
  match
    Transform.Copy_opt.apply p ~array:"c" ~temp:"p_c" ~at:"jj"
      ~dims:
        [
          { Transform.Copy_opt.base = Aff.zero; extent = 13; bound = Aff.var "n" };
          { Transform.Copy_opt.base = Aff.var "jj"; extent = 5; bound = Aff.var "n" };
        ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection (c is written)"

let test_copy_then_unroll () =
  let p = copy_b_variant () in
  let p = Transform.Unroll_jam.apply p "i" 4 in
  let p = Transform.Unroll_jam.apply p "j" 2 in
  check_equiv "copy+unroll" mm p

(* --- Scalar replacement --- *)

let test_scalar_replace_mm () =
  let p = Transform.Scalar_replace.apply mm in
  check_equiv "scalar replace mm" mm p;
  Alcotest.(check bool) "introduced registers" true
    (List.exists
       (fun (d : Decl.t) -> d.Decl.storage = Decl.Register)
       p.Program.decls)

let test_scalar_replace_after_unroll () =
  let p = Transform.Unroll_jam.apply mm "i" 4 in
  let p = Transform.Unroll_jam.apply p "j" 2 in
  let p = Transform.Scalar_replace.apply p in
  check_equiv "unroll+scalar" mm p

let test_scalar_replace_reduces_accesses () =
  (* With K innermost, C's load+store leave the K loop: accesses drop
     from 4n^3 to ~2n^3. *)
  let mm = Transform.Permute.apply mm [ "i"; "j"; "k" ] in
  let count p =
    let loads = ref 0 and stores = ref 0 in
    let sink =
      {
        Sink.load = (fun _ -> incr loads);
        Sink.store = (fun _ -> incr stores);
        Sink.prefetch = ignore;
      }
    in
    ignore (Exec.run ~sink ~params:[ ("n", 13) ] p);
    !loads + !stores
  in
  let before = count mm in
  let after = count (Transform.Scalar_replace.apply mm) in
  Alcotest.(check bool)
    (Printf.sprintf "accesses reduced (%d -> %d)" before after)
    true
    (after < (before * 6 / 10))

let test_scalar_replace_jacobi_rotation () =
  (* B[i-1],B[i+1] rotate through registers along the innermost i loop. *)
  let p = Transform.Scalar_replace.apply jacobi in
  check_equiv "jacobi rotation" jacobi p;
  let regs =
    List.filter (fun (d : Decl.t) -> d.Decl.storage = Decl.Register) p.Program.decls
  in
  Alcotest.(check bool) "rotation registers allocated" true
    (List.length regs >= 3)

let test_scalar_replace_jacobi_after_unroll () =
  let p = Transform.Unroll_jam.apply jacobi "j" 2 in
  let p = Transform.Unroll_jam.apply p "k" 2 in
  let p = Transform.Scalar_replace.apply p in
  check_equiv "jacobi unroll+rotation" jacobi p

let test_scalar_replace_register_moves () =
  let p = Transform.Scalar_replace.apply jacobi in
  let r = run p in
  Alcotest.(check bool) "rotation emits register moves" true
    (r.Exec.stats.Exec.register_moves > 0)

let test_count_registers () =
  let count = Transform.Scalar_replace.count_registers mm in
  Alcotest.(check int) "one register for C" 1 count

(* --- Prefetch insertion --- *)

let test_prefetch_preserves_semantics () =
  let p = Transform.Prefetch_insert.apply mm ~array:"a" ~distance:2 ~line_elems:4 in
  check_equiv "prefetch" mm p

let test_prefetch_emits_prefetches () =
  let p = Transform.Prefetch_insert.apply mm ~array:"a" ~distance:2 ~line_elems:4 in
  let prefs = ref 0 in
  let sink =
    { Sink.load = ignore; Sink.store = ignore; Sink.prefetch = (fun _ -> incr prefs) }
  in
  ignore (Exec.run ~sink ~params:[ ("n", 8) ] p);
  Alcotest.(check int) "one prefetch per inner iteration" (8 * 8 * 8) !prefs

let test_prefetch_remove () =
  let p = Transform.Prefetch_insert.apply mm ~array:"a" ~distance:2 ~line_elems:4 in
  let p = Transform.Prefetch_insert.remove p ~array:"a" in
  Alcotest.(check bool) "body restored" true (p.Program.body = mm.Program.body)

let test_prefetch_dedup_unrolled () =
  (* After 4x i-unroll, the four A streams differ only in dim-0 offsets
     within one line: they share one prefetch. *)
  let p = Transform.Unroll_jam.apply mm "i" 4 in
  let p = Transform.Prefetch_insert.apply p ~array:"a" ~distance:1 ~line_elems:4 in
  let count_prefetch_stmts body =
    let n = ref 0 in
    List.iter
      (fun s ->
        Stmt.iter (function Stmt.Prefetch _ -> incr n | _ -> ()) s)
      body;
    !n
  in
  (* main innermost has 1 (4 offsets in one line), remainder has 1 *)
  Alcotest.(check int) "deduplicated" 2 (count_prefetch_stmts p.Program.body)

let test_prefetch_candidates () =
  Alcotest.(check (list string)) "mm candidates" [ "c"; "a"; "b" ]
    (Transform.Prefetch_insert.candidates mm)

(* --- Full paper pipeline (Figure 1(b) by hand) --- *)

let figure_1b ?(ui = 4) ?(uj = 2) ?(tj = 6) ?(tk = 7) () =
  let p = Transform.Permute.apply mm [ "i"; "j"; "k" ] in
  let p =
    Transform.Tile.apply p
      [
        { Transform.Tile.var = "j"; size = tj; control = "jj" };
        { Transform.Tile.var = "k"; size = tk; control = "kk" };
      ]
      ~control_order:[ "kk"; "jj" ]
  in
  let p =
    Transform.Copy_opt.apply p ~array:"b" ~temp:"p_b" ~at:"jj"
      ~dims:
        [
          { Transform.Copy_opt.base = Aff.var "kk"; extent = tk; bound = Aff.var "n" };
          { Transform.Copy_opt.base = Aff.var "jj"; extent = tj; bound = Aff.var "n" };
        ]
  in
  let p = Transform.Unroll_jam.apply p "i" ui in
  let p = Transform.Unroll_jam.apply p "j" uj in
  let p = Transform.Scalar_replace.apply p in
  Transform.Prefetch_insert.apply p ~array:"a" ~distance:2 ~line_elems:4

let test_figure_1b_pipeline () = check_equiv "figure 1(b)" mm (figure_1b ())

let test_figure_1b_many_sizes () =
  List.iter
    (fun n -> check_equiv ~n (Printf.sprintf "figure 1(b) n=%d" n) mm (figure_1b ()))
    [ 4; 7; 12; 16; 23 ]

(* Property: the full pipeline is semantics-preserving for random
   parameters. *)
let prop_pipeline_sound =
  QCheck.Test.make ~name:"figure 1(b) pipeline sound for random params" ~count:30
    QCheck.(
      quad (int_range 1 6) (int_range 1 6) (int_range 1 10) (int_range 1 10))
    (fun (ui, uj, tj, tk) ->
      let n = 11 in
      let p = figure_1b ~ui ~uj ~tj ~tk () in
      let r1 = Exec.run ~params:[ ("n", n) ] mm in
      let r2 = Exec.run ~params:[ ("n", n) ] p in
      let c1 = List.assoc "c" r1.Exec.arrays in
      let c2 = List.assoc "c" r2.Exec.arrays in
      Array.for_all2
        (fun v1 v2 -> Float.abs (v1 -. v2) <= 1e-9 *. Float.max 1.0 (Float.abs v1))
        c1 c2)

let prop_jacobi_pipeline_sound =
  QCheck.Test.make ~name:"jacobi tile+unroll+rotate sound" ~count:30
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 1 8))
    (fun (uj, uk, tj) ->
      let n = 10 in
      let p = Transform.Permute.apply jacobi [ "k"; "j"; "i" ] in
      let p =
        Transform.Tile.apply p
          [ { Transform.Tile.var = "j"; size = tj; control = "jj" } ]
          ~control_order:[ "jj" ]
      in
      let p = Transform.Unroll_jam.apply p "j" uj in
      let p = Transform.Unroll_jam.apply p "k" uk in
      let p = Transform.Scalar_replace.apply p in
      let r1 = Exec.run ~params:[ ("n", n) ] jacobi in
      let r2 = Exec.run ~params:[ ("n", n) ] p in
      let a1 = List.assoc "a" r1.Exec.arrays in
      let a2 = List.assoc "a" r2.Exec.arrays in
      Array.for_all2
        (fun v1 v2 -> Float.abs (v1 -. v2) <= 1e-9 *. Float.max 1.0 (Float.abs v1))
        a1 a2)

let suite =
  [
    Alcotest.test_case "permute: all 6 orders" `Quick test_permute_all_orders;
    Alcotest.test_case "permute: rejects non-permutation" `Quick
      test_permute_rejects_non_permutation;
    Alcotest.test_case "permute: preserves decls" `Quick test_permute_preserves_decls;
    Alcotest.test_case "tile: equivalent" `Quick test_tile_equivalent;
    Alcotest.test_case "tile: non-dividing sizes" `Quick test_tile_non_dividing;
    Alcotest.test_case "tile: structure" `Quick test_tile_structure;
    Alcotest.test_case "tile: rejects unknown var" `Quick
      test_tile_rejects_unknown_var;
    Alcotest.test_case "unroll-jam: equivalent" `Quick test_unroll_jam_equivalent;
    Alcotest.test_case "unroll: innermost" `Quick test_unroll_innermost;
    Alcotest.test_case "unroll after tile" `Quick test_unroll_after_tile;
    Alcotest.test_case "unroll by 1 = identity" `Quick test_unroll_one_is_identity;
    Alcotest.test_case "unroll: rejects missing loop" `Quick
      test_unroll_rejects_missing_loop;
    Alcotest.test_case "unroll: flop preserving" `Quick test_unroll_flop_preserving;
    Alcotest.test_case "unroll: reduces loop overhead" `Quick
      test_unroll_reduces_iterations;
    Alcotest.test_case "copy: equivalent" `Quick test_copy_equivalent;
    Alcotest.test_case "copy: non-dividing" `Quick test_copy_non_dividing;
    Alcotest.test_case "copy: rewrites references" `Quick test_copy_rewrites_refs;
    Alcotest.test_case "copy: rejects written array" `Quick
      test_copy_rejects_written_array;
    Alcotest.test_case "copy then unroll" `Quick test_copy_then_unroll;
    Alcotest.test_case "scalar replace: mm" `Quick test_scalar_replace_mm;
    Alcotest.test_case "scalar replace: after unroll" `Quick
      test_scalar_replace_after_unroll;
    Alcotest.test_case "scalar replace: reduces accesses" `Quick
      test_scalar_replace_reduces_accesses;
    Alcotest.test_case "scalar replace: jacobi rotation" `Quick
      test_scalar_replace_jacobi_rotation;
    Alcotest.test_case "scalar replace: jacobi after unroll" `Quick
      test_scalar_replace_jacobi_after_unroll;
    Alcotest.test_case "scalar replace: register moves" `Quick
      test_scalar_replace_register_moves;
    Alcotest.test_case "count_registers" `Quick test_count_registers;
    Alcotest.test_case "prefetch: semantics preserved" `Quick
      test_prefetch_preserves_semantics;
    Alcotest.test_case "prefetch: emitted" `Quick test_prefetch_emits_prefetches;
    Alcotest.test_case "prefetch: remove" `Quick test_prefetch_remove;
    Alcotest.test_case "prefetch: dedup after unroll" `Quick
      test_prefetch_dedup_unrolled;
    Alcotest.test_case "prefetch: candidates" `Quick test_prefetch_candidates;
    Alcotest.test_case "figure 1(b) pipeline" `Quick test_figure_1b_pipeline;
    Alcotest.test_case "figure 1(b) many sizes" `Quick test_figure_1b_many_sizes;
    QCheck_alcotest.to_alcotest prop_pipeline_sound;
    QCheck_alcotest.to_alcotest prop_jacobi_pipeline_sound;
  ]
