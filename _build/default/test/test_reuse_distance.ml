(* Reuse-distance analysis tests, including the classic oracle property:
   a fully associative LRU cache of capacity C hits exactly the accesses
   with stack distance < C. *)

let rd () = Memsim.Reuse_distance.create ~line_bytes:32 ()

let feed t lines = List.iter (fun l -> Memsim.Reuse_distance.access t (l * 32)) lines

let test_cold_only () =
  let t = rd () in
  feed t [ 1; 2; 3; 4 ];
  Alcotest.(check int) "all cold" 4 (Memsim.Reuse_distance.cold t);
  Alcotest.(check int) "no hits at any capacity" 0
    (Memsim.Reuse_distance.hits_at t 1_000_000)

let test_immediate_reuse () =
  let t = rd () in
  feed t [ 7; 7; 7 ];
  Alcotest.(check int) "one cold" 1 (Memsim.Reuse_distance.cold t);
  Alcotest.(check int) "two zero-distance reuses" 2
    (Memsim.Reuse_distance.hits_at t 1)

let test_distance_counting () =
  (* a b c a : the second 'a' has distance 2 (b and c in between). *)
  let t = rd () in
  feed t [ 1; 2; 3; 1 ];
  Alcotest.(check int) "miss at capacity 2" 0 (Memsim.Reuse_distance.hits_at t 2);
  Alcotest.(check int) "hit at capacity 3" 1 (Memsim.Reuse_distance.hits_at t 3)

let test_duplicates_not_double_counted () =
  (* a b b b a : distance of the last 'a' is 1 (only b distinct). *)
  let t = rd () in
  feed t [ 1; 2; 2; 2; 1 ];
  Alcotest.(check int) "distance 1" 1
    (Memsim.Reuse_distance.hits_at t 2 - Memsim.Reuse_distance.hits_at t 1);
  Alcotest.(check int) "b reuses at distance 0" 2 (Memsim.Reuse_distance.hits_at t 1)

let test_line_granularity () =
  let t = rd () in
  Memsim.Reuse_distance.access t 0;
  Memsim.Reuse_distance.access t 8;
  (* same 32B line *)
  Alcotest.(check int) "one cold" 1 (Memsim.Reuse_distance.cold t);
  Alcotest.(check int) "one reuse" 1 (Memsim.Reuse_distance.hits_at t 1)

let test_histogram_total () =
  let t = rd () in
  feed t [ 1; 2; 1; 3; 2; 1; 4; 4 ];
  let hist_sum =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Memsim.Reuse_distance.histogram t)
  in
  Alcotest.(check int) "histogram covers all reuses"
    (Memsim.Reuse_distance.total t - Memsim.Reuse_distance.cold t)
    hist_sum

let test_working_set () =
  (* Cycling over 8 lines: distance 7 for every reuse; working set 8. *)
  let t = rd () in
  for _ = 1 to 10 do
    feed t [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  done;
  Alcotest.(check int) "working set 8" 8
    (Memsim.Reuse_distance.working_set t ~threshold:0.01)

(* Oracle property: fully associative LRU cache vs stack distances. *)
let lru_hits capacity lines =
  let cache =
    Memsim.Cache.create
      {
        Machine.name = "fa";
        size_bytes = capacity * 32;
        line_bytes = 32;
        assoc = capacity;
        hit_cycles = 0;
      }
  in
  List.fold_left
    (fun acc line ->
      match Memsim.Cache.lookup cache ~now:0 ~line with
      | Memsim.Cache.Hit _ -> acc + 1
      | Memsim.Cache.Miss ->
        ignore (Memsim.Cache.insert cache ~now:0 ~ready:0 ~dirty:false ~line);
        acc)
    0 lines

let prop_lru_oracle =
  QCheck.Test.make ~name:"stack distance predicts fully-associative LRU"
    ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 400) (int_range 0 30))
        (oneofl [ 1; 2; 4; 8; 16 ]))
    (fun (lines, capacity) ->
      let t = rd () in
      feed t lines;
      Memsim.Reuse_distance.hits_at t capacity = lru_hits capacity lines)

let test_mm_tiling_shrinks_working_set () =
  (* Tiling must shrink matmul's measured working set: the analysis sees
     it directly from the trace. *)
  let measure p =
    let t = rd () in
    ignore
      (Ir.Exec.run
         ~sink:(Memsim.Reuse_distance.sink t)
         ~params:[ ("n", 40) ]
         p);
    Memsim.Reuse_distance.working_set t ~threshold:0.05
  in
  let naive = Kernels.Matmul.kernel.Kernels.Kernel.program in
  let tiled =
    Transform.Tile.apply naive
      [
        { Transform.Tile.var = "j"; size = 8; control = "jj" };
        { Transform.Tile.var = "k"; size = 8; control = "kk" };
      ]
      ~control_order:[ "kk"; "jj" ]
  in
  let ws_naive = measure naive and ws_tiled = measure tiled in
  Alcotest.(check bool)
    (Printf.sprintf "tiled working set smaller (%d < %d)" ws_tiled ws_naive)
    true (ws_tiled < ws_naive)

let suite =
  [
    Alcotest.test_case "cold misses" `Quick test_cold_only;
    Alcotest.test_case "immediate reuse" `Quick test_immediate_reuse;
    Alcotest.test_case "distance counting" `Quick test_distance_counting;
    Alcotest.test_case "duplicates counted once" `Quick
      test_duplicates_not_double_counted;
    Alcotest.test_case "line granularity" `Quick test_line_granularity;
    Alcotest.test_case "histogram totals" `Quick test_histogram_total;
    Alcotest.test_case "working set" `Quick test_working_set;
    QCheck_alcotest.to_alcotest prop_lru_oracle;
    Alcotest.test_case "tiling shrinks working set" `Quick
      test_mm_tiling_shrinks_working_set;
  ]
