(* The analysis substrate as a toolbox: record one trace of a kernel and
   interrogate it — reuse distances, working sets, per-array misses,
   conflict/capacity classification, cache-geometry sweeps — the
   measurements behind every claim in the paper's Section 2.

   Run with:  dune exec examples/memory_analysis.exe *)

let () =
  let n = 64 in
  let params = [ ("n", n) ] in
  let naive = Kernels.Matmul.kernel.Kernels.Kernel.program in
  let tiled =
    Transform.Tile.apply naive
      [
        { Transform.Tile.var = "j"; size = 16; control = "jj" };
        { Transform.Tile.var = "k"; size = 16; control = "kk" };
      ]
      ~control_order:[ "kk"; "jj" ]
  in

  (* 1. Working sets via reuse-distance analysis. *)
  let working_set p =
    let rd = Memsim.Reuse_distance.create ~line_bytes:32 () in
    ignore (Ir.Exec.run ~sink:(Memsim.Reuse_distance.sink rd) ~params p);
    Memsim.Reuse_distance.working_set rd ~threshold:0.05
  in
  Format.printf "Working set (lines for <5%% reuse misses): naive %d, tiled %d@."
    (working_set naive) (working_set tiled);

  (* 2. Per-array misses: who actually misses in L1? *)
  Format.printf "@.Per-array L1 behaviour of the naive kernel:@.";
  List.iter
    (fun (name, s) ->
      Format.printf "  %-4s %9d accesses  %8d misses (%.1f%%)@." name
        s.Memsim.Attribution.accesses s.Memsim.Attribution.misses
        (100.0
        *. float_of_int s.Memsim.Attribution.misses
        /. float_of_int (max 1 s.Memsim.Attribution.accesses)))
    (Memsim.Attribution.of_program Machine.sgi_r10000 ~level:0 ~params naive);

  (* 3. Conflict vs capacity classification. *)
  let report p =
    Memsim.Classify.of_program Machine.sgi_r10000 ~level:0 ~params p
  in
  Format.printf "@.L1 miss classification:@.";
  Format.printf "  naive: %a@." Memsim.Classify.pp (report naive);
  Format.printf "  tiled: %a@." Memsim.Classify.pp (report tiled);

  (* 4. One trace, many cache geometries. *)
  let trace = Memsim.Trace.of_program ~params tiled in
  Format.printf "@.Tiled kernel, L1 geometry sweep (trace replay, %d events):@."
    (Memsim.Trace.length trace);
  List.iter
    (fun (kb, assoc) ->
      let accesses, misses =
        Memsim.Trace.misses_under trace
          {
            Machine.name = "sweep";
            size_bytes = kb * 1024;
            line_bytes = 32;
            assoc;
            hit_cycles = 0;
          }
      in
      Format.printf "  %3dKB %d-way: %.2f%% miss ratio@." kb assoc
        (100.0 *. float_of_int misses /. float_of_int accesses))
    [ (4, 1); (4, 2); (16, 1); (16, 2); (32, 2); (64, 4) ]
