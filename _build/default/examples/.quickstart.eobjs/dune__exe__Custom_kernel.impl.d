examples/custom_kernel.ml: Aff Array Core Decl Exec Fexpr Float Format Ir Kernels List Machine Program Reference Stmt
