examples/memory_analysis.mli:
