examples/quickstart.mli:
