examples/arch_compare.ml: Core Float Format Kernels List Machine Printf String
