examples/memory_analysis.ml: Format Ir Kernels List Machine Memsim Transform
