examples/quickstart.ml: Core Format Ir Kernels List Machine Printf String
