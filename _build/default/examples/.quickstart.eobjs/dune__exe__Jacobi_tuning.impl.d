examples/jacobi_tuning.ml: Baselines Core Format Ir Kernels List Machine Printf String
