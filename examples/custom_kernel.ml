(* Bringing your own kernel: the optimizer is not limited to the paper's
   two case studies.  This example defines a dense rank-2 update
   (SYR2K-like):

     DO J = 0,N-1
       DO K = 0,N-1
         DO I = 0,N-1
           C[I,J] = C[I,J] + A[I,K]*B[J,K] + B[I,K]*A[J,K]

   builds it with the public IR combinators, validates it against a
   plain-OCaml reference, and runs the full two-phase optimizer on it.

   Run with:  dune exec examples/custom_kernel.exe *)

open Ir

let n = Aff.var "n"
let last = Aff.add_const n (-1)

let program =
  let i = Aff.var "i" and j = Aff.var "j" and k = Aff.var "k" in
  let a r c = Fexpr.ref_ (Reference.make "a" [ r; c ]) in
  let b r c = Fexpr.ref_ (Reference.make "b" [ r; c ]) in
  let cref = Reference.make "c" [ i; j ] in
  let body =
    Stmt.assign cref
      Fexpr.(ref_ cref + (a i k * b j k) + (b i k * a j k))
  in
  Program.make ~name:"syr2k" ~params:[ "n" ]
    ~decls:[ Decl.heap "a" [ n; n ]; Decl.heap "b" [ n; n ]; Decl.heap "c" [ n; n ] ]
    [
      Stmt.loop_aff "j" ~lo:Aff.zero ~hi:last
        [
          Stmt.loop_aff "k" ~lo:Aff.zero ~hi:last
            [ Stmt.loop_aff "i" ~lo:Aff.zero ~hi:last [ body ] ];
        ];
    ]

let kernel =
  {
    Kernels.Kernel.name = "syr2k";
    program;
    size_param = "n";
    min_size = 2;
    flops = (fun n -> 6 * n * n * n);
    description = "rank-2 update C += A*B' + B*A'";
  }

(* Independent reference for validation. *)
let reference nv =
  let init name =
    Array.init (nv * nv) (fun e ->
        Exec.initial_value_at name [ e mod nv; e / nv ])
  in
  let a = init "a" and b = init "b" and c = init "c" in
  let at m r col = m.((col * nv) + r) in
  for j = 0 to nv - 1 do
    for k = 0 to nv - 1 do
      for i = 0 to nv - 1 do
        c.((j * nv) + i) <-
          at c i j +. (at a i k *. at b j k) +. (at b i k *. at a j k)
      done
    done
  done;
  c

let () =
  (* 1. Validate the IR program against the hand-written reference. *)
  let nv = 10 in
  let result = Exec.run ~params:[ ("n", nv) ] program in
  let got = List.assoc "c" result.Exec.arrays in
  let want = reference nv in
  Array.iteri
    (fun idx w ->
      if Float.abs (w -. got.(idx)) > 1e-9 *. Float.max 1.0 (Float.abs w) then
        failwith "custom kernel does not match its reference!")
    want;
  Format.printf "IR program validated against the OCaml reference.@.@.";

  (* 2. Let phase 1 analyze it. *)
  let variants = Core.Derive.variants Machine.sgi_r10000 kernel in
  Format.printf "Phase 1 derived %d variants; the first:@.%a@."
    (List.length variants)
    Core.Variant.pp (List.hd variants);

  (* 3. Tune and compare against the untransformed nest. *)
  let mode = Core.Executor.Budget 200_000 in
  let tuned = Core.Eco.optimize ~mode Machine.sgi_r10000 kernel ~n:96 in
  let naive =
    Core.Engine.measure_program tuned.Core.Eco.engine kernel ~n:96 ~mode program
  in
  Format.printf "naive: %.1f MFLOPS, tuned: %.1f MFLOPS (%.1fx)@."
    naive.Core.Executor.mflops
    tuned.Core.Eco.measurement.Core.Executor.mflops
    (tuned.Core.Eco.measurement.Core.Executor.mflops
    /. naive.Core.Executor.mflops)
