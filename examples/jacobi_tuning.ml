(* Jacobi relaxation, the paper's second case study: the optimizer
   discovers that copying is not profitable for a stencil (the retained
   group is not invariant in any cache loop), keeps the B neighbourhood
   in rotating registers along I, and tiles for L1.

   Run with:  dune exec examples/jacobi_tuning.exe *)

let show_variant (v : Core.Variant.t) =
  Format.printf "  %s: order %s, copies: %s@." v.Core.Variant.name
    (String.concat " "
       (List.map String.uppercase_ascii v.Core.Variant.element_order))
    (match v.Core.Variant.copies with
    | [] -> "none (stencil reuse does not amortize a copy)"
    | cs ->
      String.concat ", "
        (List.map (fun (c : Core.Variant.copy_spec) -> c.Core.Variant.array) cs))

let () =
  let kernel = Kernels.Jacobi3d.kernel in
  let n = 96 in
  let mode = Core.Executor.Budget 200_000 in

  Format.printf "Phase 1 on the SGI derives:@.";
  List.iter show_variant (Core.Derive.variants Machine.sgi_r10000 kernel);
  Format.printf "@.";

  List.iter
    (fun machine ->
      let result = Core.Eco.optimize ~mode machine kernel ~n in
      let native =
        Baselines.Native_compiler.measure result.Core.Eco.engine kernel ~n ~mode
      in
      Format.printf "%-22s ECO %6.1f MFLOPS  (native compiler %6.1f)  [%s %s]@."
        machine.Machine.name result.Core.Eco.measurement.Core.Executor.mflops
        native.Core.Executor.mflops
        result.Core.Eco.outcome.Core.Search.variant.Core.Variant.name
        (String.concat " "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              result.Core.Eco.outcome.Core.Search.bindings)))
    [ Machine.sgi_r10000; Machine.ultrasparc_iie ];

  (* The rotating-register stencil body the paper shows in Figure 2(b). *)
  let result = Core.Eco.optimize ~mode Machine.sgi_r10000 kernel ~n in
  Format.printf "@.Optimized stencil (SGI):@.%a" Ir.Program.pp
    result.Core.Eco.outcome.Core.Search.program
