(* Quickstart: optimize Matrix Multiply for the simulated SGI R10000.

   Run with:  dune exec examples/quickstart.exe

   The two-phase optimizer (Core.Eco.optimize) derives parameterized
   variants from compiler models, searches their parameter spaces
   empirically on the simulated machine, and returns the best version
   found, its parameters and the search log. *)

let () =
  let machine = Machine.sgi_r10000 in
  let kernel = Kernels.Matmul.kernel in
  let n = 128 in
  Format.printf "Tuning %s (n=%d) for %a@.@." kernel.Kernels.Kernel.name n
    Machine.pp machine;

  (* A budget caps the simulated flops per candidate measurement, like
     timing a few iterations instead of the whole run. *)
  let mode = Core.Executor.Budget 200_000 in
  let result = Core.Eco.optimize ~mode machine kernel ~n in

  let outcome = result.Core.Eco.outcome in
  Format.printf "Winning variant: %s@."
    outcome.Core.Search.variant.Core.Variant.name;
  Format.printf "Parameters:      %s@."
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          outcome.Core.Search.bindings));
  Format.printf "Prefetch:        %s@."
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s@%d" k v)
          outcome.Core.Search.prefetch));
  Format.printf "Performance:     %.1f MFLOPS (theoretical peak %.0f)@."
    result.Core.Eco.measurement.Core.Executor.mflops
    (Machine.peak_mflops machine);
  Format.printf "Search cost:     %d candidate executions@.@."
    (Core.Search_log.points result.Core.Eco.log);

  (* The untransformed kernel, for contrast — measured through the same
     engine the search used. *)
  let naive =
    Core.Engine.measure_program result.Core.Eco.engine kernel ~n ~mode
      kernel.Kernels.Kernel.program
  in
  Format.printf "Untransformed:   %.1f MFLOPS (%.1fx speedup)@.@."
    naive.Core.Executor.mflops
    (result.Core.Eco.measurement.Core.Executor.mflops
    /. naive.Core.Executor.mflops);

  Format.printf "Optimized loop nest:@.%a" Ir.Program.pp
    outcome.Core.Search.program
