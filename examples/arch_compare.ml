(* Architecture sensitivity: the same kernel tuned for machines with
   different cache geometries picks different parameters — the reason
   empirical tuning exists at all.  Compares the tuned Matrix Multiply
   parameters across the SGI (32KB 2-way L1, 1MB L2), the UltraSparc
   (16KB direct-mapped L1, 256KB 4-way L2) and a small generic machine,
   and cross-measures each tuned version on every machine.

   Run with:  dune exec examples/arch_compare.exe *)

let machines = [ Machine.sgi_r10000; Machine.ultrasparc_iie; Machine.generic_small ]

let () =
  let kernel = Kernels.Matmul.kernel in
  let n = 128 in
  let mode = Core.Executor.Budget 200_000 in
  (* One engine per machine, reused for the cross-measurement below so
     the diagonal entries come straight from the memo table. *)
  let engines = List.map (fun m -> (m, Core.Engine.create m)) machines in
  let tuned =
    List.map
      (fun (machine, engine) ->
        (machine, engine, Core.Eco.optimize_with ~mode engine kernel ~n))
      engines
  in
  Format.printf "Tuned parameters per machine:@.";
  List.iter
    (fun ((machine : Machine.t), _engine, r) ->
      Format.printf "  %-24s %-12s %s@." machine.Machine.name
        r.Core.Eco.outcome.Core.Search.variant.Core.Variant.name
        (String.concat " "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              r.Core.Eco.outcome.Core.Search.bindings)))
    tuned;

  (* Cross-measurement matrix: how does the version tuned for machine X
     fare on machine Y?  The diagonal should win each column. *)
  Format.printf "@.MFLOPS of (row = tuned-for) x (column = measured-on):@.";
  Format.printf "  %-24s" "";
  List.iter
    (fun (m : Machine.t) -> Format.printf " %20s" m.Machine.name)
    machines;
  Format.printf "@.";
  List.iter
    (fun ((tuned_for : Machine.t), _engine, r) ->
      Format.printf "  %-24s" tuned_for.Machine.name;
      List.iter
        (fun (_, measured_on_engine) ->
          let o = r.Core.Eco.outcome in
          let mflops =
            match
              Core.Search.measure_point measured_on_engine ~n ~mode
                o.Core.Search.variant ~bindings:o.Core.Search.bindings
                ~prefetch:o.Core.Search.prefetch
            with
            | Some out -> out.Core.Search.measurement.Core.Executor.mflops
            | None -> Float.nan
          in
          Format.printf " %20.1f" mflops)
        engines;
      Format.printf "@.")
    tuned
