type t = {
  mem_issue_cycles : float;
  fp_issue_cycles : float;
  other_issue_cycles : float;
  stall_cycles : float;
  total_cycles : float;
  seconds : float;
  flops : int;
  mflops : float;
}

(* The issue/overlap arithmetic shared by the simulator-backed cost
   (counted issue slots and stalls) and the analytical model (predicted
   ones): memory and FP issue overlap, integer work and demand stalls
   are serial. *)
let of_components (m : Machine.t) ~mem_issue ~fp_issue ~other_issue ~stall
    ~flops =
  let total = Float.max mem_issue fp_issue +. other_issue +. stall in
  let seconds = total /. (m.Machine.cpu.Machine.clock_mhz *. 1e6) in
  let mflops =
    if seconds > 0.0 then float_of_int flops /. seconds /. 1e6 else 0.0
  in
  {
    mem_issue_cycles = mem_issue;
    fp_issue_cycles = fp_issue;
    other_issue_cycles = other_issue;
    stall_cycles = stall;
    total_cycles = total;
    seconds;
    flops;
    mflops;
  }

let evaluate (m : Machine.t) (c : Counters.t) (s : Ir.Exec.stats) =
  let cpu = m.Machine.cpu in
  let mem_issue =
    float_of_int (Counters.accesses c) /. float_of_int cpu.Machine.mem_ports
  in
  let fp_issue =
    float_of_int s.Ir.Exec.flops /. float_of_int cpu.Machine.flops_per_cycle
  in
  let other_issue =
    float_of_int
      (s.Ir.Exec.loop_iterations * cpu.Machine.loop_overhead_cycles)
    +. (0.5 *. float_of_int s.Ir.Exec.register_moves)
    +. float_of_int (c.Counters.prefetches * (cpu.Machine.prefetch_issue_cycles - 1))
  in
  let stall = float_of_int c.Counters.stall_cycles in
  of_components m ~mem_issue ~fp_issue ~other_issue ~stall
    ~flops:s.Ir.Exec.flops

let scale f t =
  {
    mem_issue_cycles = f *. t.mem_issue_cycles;
    fp_issue_cycles = f *. t.fp_issue_cycles;
    other_issue_cycles = f *. t.other_issue_cycles;
    stall_cycles = f *. t.stall_cycles;
    total_cycles = f *. t.total_cycles;
    seconds = f *. t.seconds;
    flops = int_of_float (Float.round (f *. float_of_int t.flops));
    mflops = t.mflops;
  }

let pp fmt t =
  Format.fprintf fmt
    "cycles=%.0f (mem=%.0f fp=%.0f other=%.0f stall=%.0f) %.1f MFLOPS"
    t.total_cycles t.mem_issue_cycles t.fp_issue_cycles t.other_issue_cycles
    t.stall_cycles t.mflops
