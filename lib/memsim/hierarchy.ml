type t = {
  machine : Machine.t;
  caches : Cache.t array;
  hit_cycles : int array;
  tlb : Tlb.t;
  counters : Counters.t;
  mem_latency : int;
}

let create (m : Machine.t) =
  {
    machine = m;
    caches = Array.of_list (List.map Cache.create m.Machine.caches);
    hit_cycles =
      Array.of_list (List.map (fun c -> c.Machine.hit_cycles) m.Machine.caches);
    tlb = Tlb.create m.Machine.tlb;
    counters = Counters.create ~levels:(List.length m.Machine.caches) ();
    mem_latency = m.Machine.memory_latency_cycles;
  }

let machine t = t.machine
let counters t = t.counters
let now t = Counters.accesses t.counters + t.counters.stall_cycles
let cache t i = t.caches.(i)
let tlb t = t.tlb

let count_miss t level =
  let m = t.counters.Counters.misses in
  m.(level) <- m.(level) + 1

let count_hit t level =
  let h = t.counters.Counters.hits in
  h.(level) <- h.(level) + 1

(* Latency to deliver [addr] to level [level-1], allocating the line at
   every level it missed in.  [ready_base] is the cycle the request was
   issued; lines are installed with fill time [ready_base + returned
   latency] (the caller charges or hides that latency). *)
let rec service t ~level ~now ~addr ~dirty =
  if level >= Array.length t.caches then t.mem_latency
  else
    let cache = t.caches.(level) in
    let line = Cache.line_of_addr cache addr in
    match Cache.lookup cache ~now ~line with
    | Cache.Hit ready ->
      count_hit t level;
      t.hit_cycles.(level) + max 0 (ready - now)
    | Cache.Miss ->
      count_miss t level;
      let below = service t ~level:(level + 1) ~now ~addr ~dirty:false in
      let latency = t.hit_cycles.(level) + below in
      let evicted_dirty =
        Cache.insert cache ~now ~ready:(now + latency) ~dirty ~line
      in
      if evicted_dirty then begin
        t.counters.Counters.writebacks <- t.counters.Counters.writebacks + 1;
        (* Propagate the dirty data to the next level if resident there. *)
        if level + 1 < Array.length t.caches then
          Cache.set_dirty t.caches.(level + 1) ~line:(Cache.line_of_addr t.caches.(level + 1) addr)
      end;
      latency

let translate t ~addr =
  let page = Tlb.page_of_addr t.tlb addr in
  Tlb.access t.tlb ~page

let demand t ~addr ~write =
  let c = t.counters in
  if write then c.Counters.stores <- c.Counters.stores + 1
  else c.Counters.loads <- c.Counters.loads + 1;
  if not (translate t ~addr) then begin
    c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
    c.Counters.stall_cycles <-
      c.Counters.stall_cycles + t.machine.Machine.tlb.Machine.miss_cycles
  end;
  let now = now t in
  let l1 = t.caches.(0) in
  let line = Cache.line_of_addr l1 addr in
  (match Cache.lookup l1 ~now ~line with
  | Cache.Hit ready ->
    count_hit t 0;
    if ready > now then
      c.Counters.stall_cycles <- c.Counters.stall_cycles + (ready - now)
  | Cache.Miss ->
    count_miss t 0;
    let below = service t ~level:1 ~now ~addr ~dirty:false in
    c.Counters.stall_cycles <- c.Counters.stall_cycles + below;
    let evicted_dirty = Cache.insert l1 ~now ~ready:now ~dirty:write ~line in
    if evicted_dirty then begin
      c.Counters.writebacks <- c.Counters.writebacks + 1;
      if Array.length t.caches > 1 then
        Cache.set_dirty t.caches.(1) ~line:(Cache.line_of_addr t.caches.(1) addr)
    end);
  if write then Cache.set_dirty l1 ~line

let load t addr = demand t ~addr ~write:false
let store t addr = demand t ~addr ~write:true

let prefetch t addr =
  let c = t.counters in
  (* A prefetch occupies a memory issue slot and is counted as a load by
     the hardware counters (Table 1: mm5's loads exceed mm4's by the
     prefetch count). *)
  c.Counters.loads <- c.Counters.loads + 1;
  c.Counters.prefetches <- c.Counters.prefetches + 1;
  let page = Tlb.page_of_addr t.tlb addr in
  (* Dropped on TLB miss, like the R10000's pref instruction; the probe
     does not install a translation. *)
  if not (Tlb.probe t.tlb ~page) then ()
  else begin
    let now = now t in
    let l1 = t.caches.(0) in
    let line = Cache.line_of_addr l1 addr in
    match Cache.lookup l1 ~now ~line with
    | Cache.Hit _ -> ()
    | Cache.Miss ->
      count_miss t 0;
      let below = service t ~level:1 ~now ~addr ~dirty:false in
      c.Counters.prefetch_hidden_cycles <-
        c.Counters.prefetch_hidden_cycles + below;
      let evicted_dirty =
        Cache.insert l1 ~now ~ready:(now + below) ~dirty:false ~line
      in
      if evicted_dirty then begin
        c.Counters.writebacks <- c.Counters.writebacks + 1;
        if Array.length t.caches > 1 then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end
  end

(* Batched replay of a packed event buffer ([Ir.Sink.pack] encoding):
   one tight loop over [buf.(pos .. pos+len-1)] with the per-access
   closure dispatch, variant allocations and redundant L1 re-probes of
   [sink]-driven simulation removed.  Counter and cache evolution is
   identical to feeding the same events through {!load}/{!store}/
   {!prefetch} (the [memsim] test suite checks this): the only
   structural difference is skipping the trailing [Cache.set_dirty] on
   a demand-write miss, where [insert ~dirty:true] has already marked
   the line. *)
let replay_packed t buf ~pos ~len =
  let c = t.counters in
  let l1 = t.caches.(0) in
  let tlb = t.tlb in
  let multi = Array.length t.caches > 1 in
  let tlb_miss_cycles = t.machine.Machine.tlb.Machine.miss_cycles in
  for k = pos to pos + len - 1 do
    let v = Array.unsafe_get buf k in
    let addr = v lsr 2 in
    let tag = v land 3 in
    if tag <> Ir.Sink.tag_prefetch then begin
      let write = tag = Ir.Sink.tag_store in
      if write then c.Counters.stores <- c.Counters.stores + 1
      else c.Counters.loads <- c.Counters.loads + 1;
      let page = Tlb.page_of_addr tlb addr in
      if not (Tlb.access tlb ~page) then begin
        c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
        c.Counters.stall_cycles <- c.Counters.stall_cycles + tlb_miss_cycles
      end;
      let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
      let line = Cache.line_of_addr l1 addr in
      let fill = Cache.access l1 ~line ~write in
      if fill <> Cache.absent then begin
        count_hit t 0;
        if fill > now then
          c.Counters.stall_cycles <- c.Counters.stall_cycles + (fill - now)
      end
      else begin
        count_miss t 0;
        let below = service t ~level:1 ~now ~addr ~dirty:false in
        c.Counters.stall_cycles <- c.Counters.stall_cycles + below;
        let evicted_dirty = Cache.insert l1 ~now ~ready:now ~dirty:write ~line in
        if evicted_dirty then begin
          c.Counters.writebacks <- c.Counters.writebacks + 1;
          if multi then
            Cache.set_dirty t.caches.(1)
              ~line:(Cache.line_of_addr t.caches.(1) addr)
        end
      end
    end
    else begin
      c.Counters.loads <- c.Counters.loads + 1;
      c.Counters.prefetches <- c.Counters.prefetches + 1;
      let page = Tlb.page_of_addr tlb addr in
      if Tlb.probe tlb ~page then begin
        let now =
          c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles
        in
        let line = Cache.line_of_addr l1 addr in
        if Cache.access l1 ~line ~write:false = Cache.absent then begin
          count_miss t 0;
          let below = service t ~level:1 ~now ~addr ~dirty:false in
          c.Counters.prefetch_hidden_cycles <-
            c.Counters.prefetch_hidden_cycles + below;
          let evicted_dirty =
            Cache.insert l1 ~now ~ready:(now + below) ~dirty:false ~line
          in
          if evicted_dirty then begin
            c.Counters.writebacks <- c.Counters.writebacks + 1;
            if multi then
              Cache.set_dirty t.caches.(1)
                ~line:(Cache.line_of_addr t.caches.(1) addr)
          end
        end
      end
    end
  done

(* Per-event twin of one [replay_packed] iteration, for callers that
   interleave events from several streams (the batched multi-plan walk
   in [Core.Demand_trace]).  The body is kept a literal copy of the
   loop above rather than shared through a call so the packed loop —
   the exact-path throughput the eval benchmark gates — keeps its
   hoisted locals.  Any change here must be mirrored there. *)
let replay_event t v =
  let c = t.counters in
  let l1 = t.caches.(0) in
  let addr = v lsr 2 in
  let tag = v land 3 in
  if tag <> Ir.Sink.tag_prefetch then begin
    let write = tag = Ir.Sink.tag_store in
    if write then c.Counters.stores <- c.Counters.stores + 1
    else c.Counters.loads <- c.Counters.loads + 1;
    let page = Tlb.page_of_addr t.tlb addr in
    if not (Tlb.access t.tlb ~page) then begin
      c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
      c.Counters.stall_cycles <-
        c.Counters.stall_cycles + t.machine.Machine.tlb.Machine.miss_cycles
    end;
    let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
    let line = Cache.line_of_addr l1 addr in
    let fill = Cache.access l1 ~line ~write in
    if fill <> Cache.absent then begin
      count_hit t 0;
      if fill > now then
        c.Counters.stall_cycles <- c.Counters.stall_cycles + (fill - now)
    end
    else begin
      count_miss t 0;
      let below = service t ~level:1 ~now ~addr ~dirty:false in
      c.Counters.stall_cycles <- c.Counters.stall_cycles + below;
      let evicted_dirty = Cache.insert l1 ~now ~ready:now ~dirty:write ~line in
      if evicted_dirty then begin
        c.Counters.writebacks <- c.Counters.writebacks + 1;
        if Array.length t.caches > 1 then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end
    end
  end
  else begin
    c.Counters.loads <- c.Counters.loads + 1;
    c.Counters.prefetches <- c.Counters.prefetches + 1;
    let page = Tlb.page_of_addr t.tlb addr in
    if Tlb.probe t.tlb ~page then begin
      let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
      let line = Cache.line_of_addr l1 addr in
      if Cache.access l1 ~line ~write:false = Cache.absent then begin
        count_miss t 0;
        let below = service t ~level:1 ~now ~addr ~dirty:false in
        c.Counters.prefetch_hidden_cycles <-
          c.Counters.prefetch_hidden_cycles + below;
        let evicted_dirty =
          Cache.insert l1 ~now ~ready:(now + below) ~dirty:false ~line
        in
        if evicted_dirty then begin
          c.Counters.writebacks <- c.Counters.writebacks + 1;
          if Array.length t.caches > 1 then
            Cache.set_dirty t.caches.(1)
              ~line:(Cache.line_of_addr t.caches.(1) addr)
        end
      end
    end
  end

let no_slack = min_int

(* [replay_event] with timing feedback for the incremental prefetch
   repricer: identical counter/state evolution (it IS the same body,
   plus the return value), so interleaving it with [replay_event] on
   the same stream changes nothing. *)
let replay_event_slack t v =
  let c = t.counters in
  let l1 = t.caches.(0) in
  let addr = v lsr 2 in
  let tag = v land 3 in
  if tag <> Ir.Sink.tag_prefetch then begin
    let write = tag = Ir.Sink.tag_store in
    if write then c.Counters.stores <- c.Counters.stores + 1
    else c.Counters.loads <- c.Counters.loads + 1;
    let page = Tlb.page_of_addr t.tlb addr in
    if not (Tlb.access t.tlb ~page) then begin
      c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
      c.Counters.stall_cycles <-
        c.Counters.stall_cycles + t.machine.Machine.tlb.Machine.miss_cycles
    end;
    let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
    let line = Cache.line_of_addr l1 addr in
    let fill = Cache.access l1 ~line ~write in
    if fill <> Cache.absent then begin
      count_hit t 0;
      if fill > now then
        c.Counters.stall_cycles <- c.Counters.stall_cycles + (fill - now);
      now - fill
    end
    else begin
      count_miss t 0;
      let below = service t ~level:1 ~now ~addr ~dirty:false in
      c.Counters.stall_cycles <- c.Counters.stall_cycles + below;
      let evicted_dirty = Cache.insert l1 ~now ~ready:now ~dirty:write ~line in
      if evicted_dirty then begin
        c.Counters.writebacks <- c.Counters.writebacks + 1;
        if Array.length t.caches > 1 then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end;
      no_slack
    end
  end
  else begin
    c.Counters.loads <- c.Counters.loads + 1;
    c.Counters.prefetches <- c.Counters.prefetches + 1;
    let page = Tlb.page_of_addr t.tlb addr in
    if not (Tlb.probe t.tlb ~page) then no_slack
    else begin
      let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
      let line = Cache.line_of_addr l1 addr in
      if Cache.access l1 ~line ~write:false = Cache.absent then begin
        count_miss t 0;
        let below = service t ~level:1 ~now ~addr ~dirty:false in
        c.Counters.prefetch_hidden_cycles <-
          c.Counters.prefetch_hidden_cycles + below;
        let evicted_dirty =
          Cache.insert l1 ~now ~ready:(now + below) ~dirty:false ~line
        in
        if evicted_dirty then begin
          c.Counters.writebacks <- c.Counters.writebacks + 1;
          if Array.length t.caches > 1 then
            Cache.set_dirty t.caches.(1)
              ~line:(Cache.line_of_addr t.caches.(1) addr)
        end
      end;
      0
    end
  end

(* State-only service for the warm-up pass: same lookup/insert/dirty
   sequence as {!service} (so LRU ticks and residency evolve
   identically), no latency arithmetic or counters.  Fill times are
   arbitrary here because [reset_counters] settles them before anything
   is measured. *)
let rec warm_service t ~level ~addr =
  if level < Array.length t.caches then begin
    let cache = t.caches.(level) in
    let line = Cache.line_of_addr cache addr in
    match Cache.lookup cache ~now:0 ~line with
    | Cache.Hit _ -> ()
    | Cache.Miss ->
      warm_service t ~level:(level + 1) ~addr;
      let evicted_dirty =
        Cache.insert cache ~now:0 ~ready:0 ~dirty:false ~line
      in
      if evicted_dirty && level + 1 < Array.length t.caches then
        Cache.set_dirty t.caches.(level + 1)
          ~line:(Cache.line_of_addr t.caches.(level + 1) addr)
  end

(* Replay that evolves cache/TLB state but keeps no accounting: the
   warm-up prefix of a sampled measurement, whose counters are thrown
   away by the [reset_counters] that follows.  Performs exactly the
   probe/insert sequence of {!replay_packed} (residency, LRU and dirty
   state end up identical — the [vm] differential suite checks the
   measured pass downstream), skipping the stall/latency bookkeeping,
   which is most of the per-event work on the hit path. *)
let warm_packed t buf ~pos ~len =
  let l1 = t.caches.(0) in
  let tlb = t.tlb in
  let multi = Array.length t.caches > 1 in
  for k = pos to pos + len - 1 do
    let v = Array.unsafe_get buf k in
    let addr = v lsr 2 in
    let tag = v land 3 in
    if tag <> Ir.Sink.tag_prefetch then begin
      let write = tag = Ir.Sink.tag_store in
      ignore (Tlb.access tlb ~page:(Tlb.page_of_addr tlb addr));
      let line = Cache.line_of_addr l1 addr in
      if Cache.access l1 ~line ~write = Cache.absent then begin
        warm_service t ~level:1 ~addr;
        let evicted_dirty = Cache.insert l1 ~now:0 ~ready:0 ~dirty:write ~line in
        if evicted_dirty && multi then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end
    end
    else if Tlb.probe tlb ~page:(Tlb.page_of_addr tlb addr) then begin
      let line = Cache.line_of_addr l1 addr in
      if Cache.access l1 ~line ~write:false = Cache.absent then begin
        warm_service t ~level:1 ~addr;
        let evicted_dirty =
          Cache.insert l1 ~now:0 ~ready:0 ~dirty:false ~line
        in
        if evicted_dirty && multi then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end
    end
  done

(* Per-event twin of one [warm_packed] iteration; same duplication
   rationale as [replay_event]. *)
let warm_event t v =
  let l1 = t.caches.(0) in
  let tlb = t.tlb in
  let multi = Array.length t.caches > 1 in
  let addr = v lsr 2 in
  let tag = v land 3 in
  if tag <> Ir.Sink.tag_prefetch then begin
    let write = tag = Ir.Sink.tag_store in
    ignore (Tlb.access tlb ~page:(Tlb.page_of_addr tlb addr));
    let line = Cache.line_of_addr l1 addr in
    if Cache.access l1 ~line ~write = Cache.absent then begin
      warm_service t ~level:1 ~addr;
      let evicted_dirty = Cache.insert l1 ~now:0 ~ready:0 ~dirty:write ~line in
      if evicted_dirty && multi then
        Cache.set_dirty t.caches.(1)
          ~line:(Cache.line_of_addr t.caches.(1) addr)
    end
  end
  else if Tlb.probe tlb ~page:(Tlb.page_of_addr tlb addr) then begin
    let line = Cache.line_of_addr l1 addr in
    if Cache.access l1 ~line ~write:false = Cache.absent then begin
      warm_service t ~level:1 ~addr;
      let evicted_dirty = Cache.insert l1 ~now:0 ~ready:0 ~dirty:false ~line in
      if evicted_dirty && multi then
        Cache.set_dirty t.caches.(1)
          ~line:(Cache.line_of_addr t.caches.(1) addr)
    end
  end

(* --- Structure-of-arrays batched replay ------------------------------

   The prefetch sweep feeds ONE shared demand stream to K plan states.
   Driving that through K [replay_event] calls per event touches five
   mutable record fields per plan per event; for K beyond ~16 the
   per-plan counter records defeat the cache.  [Batch] splits the hot
   counters (loads / stores / stall / L1 hits / prefetches — the ones
   every event updates) into flat int arrays indexed by plan, so the
   K-plan inner loop is a strided walk over five contiguous arrays with
   the decoded event, line and page number computed once per event.
   Cold counters (level misses, TLB misses, writebacks,
   prefetch-hidden cycles and the level >= 1 hit/miss tallies of
   {!service}) stay in the per-plan {!Counters.t} records and are only
   touched out of line on the miss paths.

   Invariant: per plan, the arithmetic is a verbatim transliteration of
   {!replay_event} over the same event sequence, so counters after
   {!Batch.sync} are bit-identical to the unbatched path (the replay
   test suite checks structural equality).  While a batch is live, its
   plans' hot counter fields in {!Counters.t} are STALE — every feed
   must go through the [Batch] functions, and {!Batch.sync} must run
   before the records are read. *)
module Batch = struct
  type hierarchy = t

  type t = {
    hs : hierarchy array;
    k : int;
    l1s : Cache.t array;
    tlbs : Tlb.t array;
    b_loads : int array;
    b_stores : int array;
    b_stall : int array;
    b_hit0 : int array;
    b_prefs : int array;
    tlb_miss_cycles : int;
    multi : bool;
  }

  let create hs =
    let k = Array.length hs in
    if k = 0 then invalid_arg "Hierarchy.Batch.create: empty batch";
    let l1s = Array.map (fun t -> t.caches.(0)) hs in
    let tlbs = Array.map (fun t -> t.tlb) hs in
    (* The shared once-per-event line/page decode requires uniform
       geometry across the pool. *)
    Array.iter
      (fun t ->
        if
          Cache.line_bytes t.caches.(0) <> Cache.line_bytes hs.(0).caches.(0)
          || Tlb.page_bytes t.tlb <> Tlb.page_bytes hs.(0).tlb
        then invalid_arg "Hierarchy.Batch.create: mixed machine geometry")
      hs;
    {
      hs;
      k;
      l1s;
      tlbs;
      b_loads = Array.map (fun t -> t.counters.Counters.loads) hs;
      b_stores = Array.map (fun t -> t.counters.Counters.stores) hs;
      b_stall = Array.map (fun t -> t.counters.Counters.stall_cycles) hs;
      b_hit0 = Array.map (fun t -> t.counters.Counters.hits.(0)) hs;
      b_prefs = Array.map (fun t -> t.counters.Counters.prefetches) hs;
      tlb_miss_cycles = hs.(0).machine.Machine.tlb.Machine.miss_cycles;
      multi = Array.length hs.(0).caches > 1;
    }

  let size b = b.k

  let sync b =
    for i = 0 to b.k - 1 do
      let c = b.hs.(i).counters in
      c.Counters.loads <- b.b_loads.(i);
      c.Counters.stores <- b.b_stores.(i);
      c.Counters.stall_cycles <- b.b_stall.(i);
      c.Counters.prefetches <- b.b_prefs.(i);
      c.Counters.hits.(0) <- b.b_hit0.(i)
    done

  let reset_counters b =
    Array.iter
      (fun t ->
        Array.iter Cache.settle t.caches;
        Counters.reset t.counters)
      b.hs;
    Array.fill b.b_loads 0 b.k 0;
    Array.fill b.b_stores 0 b.k 0;
    Array.fill b.b_stall 0 b.k 0;
    Array.fill b.b_hit0 0 b.k 0;
    Array.fill b.b_prefs 0 b.k 0

  (* Cold paths, out of line so the hot loops stay small. *)

  let tlb_refill b i =
    let t = Array.unsafe_get b.hs i in
    t.counters.Counters.tlb_misses <- t.counters.Counters.tlb_misses + 1;
    Array.unsafe_set b.b_stall i
      (Array.unsafe_get b.b_stall i + b.tlb_miss_cycles)

  let demand_miss b i ~now ~addr ~write ~line =
    let t = Array.unsafe_get b.hs i in
    count_miss t 0;
    let below = service t ~level:1 ~now ~addr ~dirty:false in
    Array.unsafe_set b.b_stall i (Array.unsafe_get b.b_stall i + below);
    let evicted_dirty =
      Cache.insert (Array.unsafe_get b.l1s i) ~now ~ready:now ~dirty:write ~line
    in
    if evicted_dirty then begin
      t.counters.Counters.writebacks <- t.counters.Counters.writebacks + 1;
      if b.multi then
        Cache.set_dirty t.caches.(1) ~line:(Cache.line_of_addr t.caches.(1) addr)
    end

  let prefetch_miss b i ~now ~addr ~line =
    let t = Array.unsafe_get b.hs i in
    count_miss t 0;
    let below = service t ~level:1 ~now ~addr ~dirty:false in
    t.counters.Counters.prefetch_hidden_cycles <-
      t.counters.Counters.prefetch_hidden_cycles + below;
    let evicted_dirty =
      Cache.insert
        (Array.unsafe_get b.l1s i)
        ~now ~ready:(now + below) ~dirty:false ~line
    in
    if evicted_dirty then begin
      t.counters.Counters.writebacks <- t.counters.Counters.writebacks + 1;
      if b.multi then
        Cache.set_dirty t.caches.(1) ~line:(Cache.line_of_addr t.caches.(1) addr)
    end

  let warm_miss b i ~addr ~write ~line =
    let t = Array.unsafe_get b.hs i in
    warm_service t ~level:1 ~addr;
    let evicted_dirty =
      Cache.insert (Array.unsafe_get b.l1s i) ~now:0 ~ready:0 ~dirty:write ~line
    in
    if evicted_dirty && b.multi then
      Cache.set_dirty t.caches.(1) ~line:(Cache.line_of_addr t.caches.(1) addr)

  (* One shared event run through every plan: decode, line and page
     once; then a branch-light, allocation-free walk over the K plans'
     flat counters. *)
  let replay_all b buf ~pos ~len =
    let k = b.k in
    let loads = b.b_loads
    and stores = b.b_stores
    and stall = b.b_stall
    and hit0 = b.b_hit0 in
    let l1s = b.l1s and tlbs = b.tlbs in
    let l1g = Array.unsafe_get l1s 0 and tlbg = Array.unsafe_get tlbs 0 in
    for e = pos to pos + len - 1 do
      let v = Array.unsafe_get buf e in
      let addr = v lsr 2 in
      let tag = v land 3 in
      let line = Cache.line_of_addr l1g addr in
      let page = Tlb.page_of_addr tlbg addr in
      if tag <> Ir.Sink.tag_prefetch then begin
        let write = tag = Ir.Sink.tag_store in
        let cnt = if write then stores else loads in
        for i = 0 to k - 1 do
          Array.unsafe_set cnt i (Array.unsafe_get cnt i + 1);
          if not (Tlb.access (Array.unsafe_get tlbs i) ~page) then
            tlb_refill b i;
          let now =
            Array.unsafe_get loads i + Array.unsafe_get stores i
            + Array.unsafe_get stall i
          in
          let fill = Cache.access (Array.unsafe_get l1s i) ~line ~write in
          if fill <> Cache.absent then begin
            Array.unsafe_set hit0 i (Array.unsafe_get hit0 i + 1);
            if fill > now then
              Array.unsafe_set stall i (Array.unsafe_get stall i + (fill - now))
          end
          else demand_miss b i ~now ~addr ~write ~line
        done
      end
      else begin
        let prefs = b.b_prefs in
        for i = 0 to k - 1 do
          Array.unsafe_set loads i (Array.unsafe_get loads i + 1);
          Array.unsafe_set prefs i (Array.unsafe_get prefs i + 1);
          if Tlb.probe (Array.unsafe_get tlbs i) ~page then begin
            let now =
              Array.unsafe_get loads i + Array.unsafe_get stores i
              + Array.unsafe_get stall i
            in
            if
              Cache.access (Array.unsafe_get l1s i) ~line ~write:false
              = Cache.absent
            then prefetch_miss b i ~now ~addr ~line
          end
        done
      end
    done

  (* One event for plan [i] only (per-plan prefetch emissions and
     sampled segments): the [replay_event] body against the flat
     counters. *)
  let replay_one b i v =
    let addr = v lsr 2 in
    let tag = v land 3 in
    let l1 = Array.unsafe_get b.l1s i in
    let tlb = Array.unsafe_get b.tlbs i in
    let line = Cache.line_of_addr l1 addr in
    if tag <> Ir.Sink.tag_prefetch then begin
      let write = tag = Ir.Sink.tag_store in
      (if write then
         Array.unsafe_set b.b_stores i (Array.unsafe_get b.b_stores i + 1)
       else Array.unsafe_set b.b_loads i (Array.unsafe_get b.b_loads i + 1));
      if not (Tlb.access tlb ~page:(Tlb.page_of_addr tlb addr)) then
        tlb_refill b i;
      let now =
        Array.unsafe_get b.b_loads i
        + Array.unsafe_get b.b_stores i
        + Array.unsafe_get b.b_stall i
      in
      let fill = Cache.access l1 ~line ~write in
      if fill <> Cache.absent then begin
        Array.unsafe_set b.b_hit0 i (Array.unsafe_get b.b_hit0 i + 1);
        if fill > now then
          Array.unsafe_set b.b_stall i
            (Array.unsafe_get b.b_stall i + (fill - now))
      end
      else demand_miss b i ~now ~addr ~write ~line
    end
    else begin
      Array.unsafe_set b.b_loads i (Array.unsafe_get b.b_loads i + 1);
      Array.unsafe_set b.b_prefs i (Array.unsafe_get b.b_prefs i + 1);
      if Tlb.probe tlb ~page:(Tlb.page_of_addr tlb addr) then begin
        let now =
          Array.unsafe_get b.b_loads i
          + Array.unsafe_get b.b_stores i
          + Array.unsafe_get b.b_stall i
        in
        if Cache.access l1 ~line ~write:false = Cache.absent then
          prefetch_miss b i ~now ~addr ~line
      end
    end

  let replay_range b i buf ~pos ~len =
    for e = pos to pos + len - 1 do
      replay_one b i (Array.unsafe_get buf e)
    done

  (* Warm variants: no counters are involved, so the per-plan forms
     delegate to the scalar warm paths; the shared form still hoists
     the decode. *)
  let warm_all b buf ~pos ~len =
    let k = b.k in
    let l1s = b.l1s and tlbs = b.tlbs in
    let l1g = Array.unsafe_get l1s 0 and tlbg = Array.unsafe_get tlbs 0 in
    for e = pos to pos + len - 1 do
      let v = Array.unsafe_get buf e in
      let addr = v lsr 2 in
      let tag = v land 3 in
      let line = Cache.line_of_addr l1g addr in
      let page = Tlb.page_of_addr tlbg addr in
      if tag <> Ir.Sink.tag_prefetch then begin
        let write = tag = Ir.Sink.tag_store in
        for i = 0 to k - 1 do
          ignore (Tlb.access (Array.unsafe_get tlbs i) ~page);
          if Cache.access (Array.unsafe_get l1s i) ~line ~write = Cache.absent
          then warm_miss b i ~addr ~write ~line
        done
      end
      else
        for i = 0 to k - 1 do
          if Tlb.probe (Array.unsafe_get tlbs i) ~page then
            if
              Cache.access (Array.unsafe_get l1s i) ~line ~write:false
              = Cache.absent
            then warm_miss b i ~addr ~write:false ~line
        done
    done

  let warm_one b i v = warm_event (Array.unsafe_get b.hs i) v

  let warm_range b i buf ~pos ~len = warm_packed b.hs.(i) buf ~pos ~len
end

(* Sampled replay: the sampler decides, window by window, whether the
   next run of events is measured ([replay_packed]), replayed
   state-only to re-warm residency ([warm_packed] — safe here because
   LRU is tick-based and the [ready:0] fills it installs are already
   in the past relative to the monotonically growing counter clock),
   or skipped.  The caller extrapolates the counters by
   [Sampling.factor]. *)
let replay_sampled t sampler buf ~pos ~len =
  let p = ref pos in
  let remaining = ref len in
  while !remaining > 0 do
    let action, k = Sampling.take sampler !remaining in
    (match action with
    | Sampling.Measure -> replay_packed t buf ~pos:!p ~len:k
    | Sampling.Warm -> warm_packed t buf ~pos:!p ~len:k
    | Sampling.Drop -> ());
    p := !p + k;
    remaining := !remaining - k
  done

let sink t =
  {
    Ir.Sink.load = (fun addr -> load t addr);
    Ir.Sink.store = (fun addr -> store t addr);
    Ir.Sink.prefetch = (fun addr -> prefetch t addr);
  }

let reset t =
  Array.iter Cache.reset t.caches;
  Tlb.reset t.tlb;
  Counters.reset t.counters

let reset_counters t =
  Array.iter Cache.settle t.caches;
  Counters.reset t.counters
