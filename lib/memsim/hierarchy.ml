type t = {
  machine : Machine.t;
  caches : Cache.t array;
  hit_cycles : int array;
  tlb : Tlb.t;
  counters : Counters.t;
  mem_latency : int;
}

let create (m : Machine.t) =
  {
    machine = m;
    caches = Array.of_list (List.map Cache.create m.Machine.caches);
    hit_cycles =
      Array.of_list (List.map (fun c -> c.Machine.hit_cycles) m.Machine.caches);
    tlb = Tlb.create m.Machine.tlb;
    counters = Counters.create ~levels:(List.length m.Machine.caches) ();
    mem_latency = m.Machine.memory_latency_cycles;
  }

let machine t = t.machine
let counters t = t.counters
let now t = Counters.accesses t.counters + t.counters.stall_cycles
let cache t i = t.caches.(i)
let tlb t = t.tlb

let count_miss t level =
  let m = t.counters.Counters.misses in
  m.(level) <- m.(level) + 1

let count_hit t level =
  let h = t.counters.Counters.hits in
  h.(level) <- h.(level) + 1

(* Latency to deliver [addr] to level [level-1], allocating the line at
   every level it missed in.  [ready_base] is the cycle the request was
   issued; lines are installed with fill time [ready_base + returned
   latency] (the caller charges or hides that latency). *)
let rec service t ~level ~now ~addr ~dirty =
  if level >= Array.length t.caches then t.mem_latency
  else
    let cache = t.caches.(level) in
    let line = Cache.line_of_addr cache addr in
    match Cache.lookup cache ~now ~line with
    | Cache.Hit ready ->
      count_hit t level;
      t.hit_cycles.(level) + max 0 (ready - now)
    | Cache.Miss ->
      count_miss t level;
      let below = service t ~level:(level + 1) ~now ~addr ~dirty:false in
      let latency = t.hit_cycles.(level) + below in
      let evicted_dirty =
        Cache.insert cache ~now ~ready:(now + latency) ~dirty ~line
      in
      if evicted_dirty then begin
        t.counters.Counters.writebacks <- t.counters.Counters.writebacks + 1;
        (* Propagate the dirty data to the next level if resident there. *)
        if level + 1 < Array.length t.caches then
          Cache.set_dirty t.caches.(level + 1) ~line:(Cache.line_of_addr t.caches.(level + 1) addr)
      end;
      latency

let translate t ~addr =
  let page = Tlb.page_of_addr t.tlb addr in
  Tlb.access t.tlb ~page

let demand t ~addr ~write =
  let c = t.counters in
  if write then c.Counters.stores <- c.Counters.stores + 1
  else c.Counters.loads <- c.Counters.loads + 1;
  if not (translate t ~addr) then begin
    c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
    c.Counters.stall_cycles <-
      c.Counters.stall_cycles + t.machine.Machine.tlb.Machine.miss_cycles
  end;
  let now = now t in
  let l1 = t.caches.(0) in
  let line = Cache.line_of_addr l1 addr in
  (match Cache.lookup l1 ~now ~line with
  | Cache.Hit ready ->
    count_hit t 0;
    if ready > now then
      c.Counters.stall_cycles <- c.Counters.stall_cycles + (ready - now)
  | Cache.Miss ->
    count_miss t 0;
    let below = service t ~level:1 ~now ~addr ~dirty:false in
    c.Counters.stall_cycles <- c.Counters.stall_cycles + below;
    let evicted_dirty = Cache.insert l1 ~now ~ready:now ~dirty:write ~line in
    if evicted_dirty then begin
      c.Counters.writebacks <- c.Counters.writebacks + 1;
      if Array.length t.caches > 1 then
        Cache.set_dirty t.caches.(1) ~line:(Cache.line_of_addr t.caches.(1) addr)
    end);
  if write then Cache.set_dirty l1 ~line

let load t addr = demand t ~addr ~write:false
let store t addr = demand t ~addr ~write:true

let prefetch t addr =
  let c = t.counters in
  (* A prefetch occupies a memory issue slot and is counted as a load by
     the hardware counters (Table 1: mm5's loads exceed mm4's by the
     prefetch count). *)
  c.Counters.loads <- c.Counters.loads + 1;
  c.Counters.prefetches <- c.Counters.prefetches + 1;
  let page = Tlb.page_of_addr t.tlb addr in
  (* Dropped on TLB miss, like the R10000's pref instruction; the probe
     does not install a translation. *)
  if not (Tlb.probe t.tlb ~page) then ()
  else begin
    let now = now t in
    let l1 = t.caches.(0) in
    let line = Cache.line_of_addr l1 addr in
    match Cache.lookup l1 ~now ~line with
    | Cache.Hit _ -> ()
    | Cache.Miss ->
      count_miss t 0;
      let below = service t ~level:1 ~now ~addr ~dirty:false in
      c.Counters.prefetch_hidden_cycles <-
        c.Counters.prefetch_hidden_cycles + below;
      let evicted_dirty =
        Cache.insert l1 ~now ~ready:(now + below) ~dirty:false ~line
      in
      if evicted_dirty then begin
        c.Counters.writebacks <- c.Counters.writebacks + 1;
        if Array.length t.caches > 1 then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end
  end

(* Batched replay of a packed event buffer ([Ir.Sink.pack] encoding):
   one tight loop over [buf.(pos .. pos+len-1)] with the per-access
   closure dispatch, variant allocations and redundant L1 re-probes of
   [sink]-driven simulation removed.  Counter and cache evolution is
   identical to feeding the same events through {!load}/{!store}/
   {!prefetch} (the [memsim] test suite checks this): the only
   structural difference is skipping the trailing [Cache.set_dirty] on
   a demand-write miss, where [insert ~dirty:true] has already marked
   the line. *)
let replay_packed t buf ~pos ~len =
  let c = t.counters in
  let l1 = t.caches.(0) in
  let tlb = t.tlb in
  let multi = Array.length t.caches > 1 in
  let tlb_miss_cycles = t.machine.Machine.tlb.Machine.miss_cycles in
  for k = pos to pos + len - 1 do
    let v = Array.unsafe_get buf k in
    let addr = v lsr 2 in
    let tag = v land 3 in
    if tag <> Ir.Sink.tag_prefetch then begin
      let write = tag = Ir.Sink.tag_store in
      if write then c.Counters.stores <- c.Counters.stores + 1
      else c.Counters.loads <- c.Counters.loads + 1;
      let page = Tlb.page_of_addr tlb addr in
      if not (Tlb.access tlb ~page) then begin
        c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
        c.Counters.stall_cycles <- c.Counters.stall_cycles + tlb_miss_cycles
      end;
      let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
      let line = Cache.line_of_addr l1 addr in
      let fill = Cache.access l1 ~line ~write in
      if fill <> Cache.absent then begin
        count_hit t 0;
        if fill > now then
          c.Counters.stall_cycles <- c.Counters.stall_cycles + (fill - now)
      end
      else begin
        count_miss t 0;
        let below = service t ~level:1 ~now ~addr ~dirty:false in
        c.Counters.stall_cycles <- c.Counters.stall_cycles + below;
        let evicted_dirty = Cache.insert l1 ~now ~ready:now ~dirty:write ~line in
        if evicted_dirty then begin
          c.Counters.writebacks <- c.Counters.writebacks + 1;
          if multi then
            Cache.set_dirty t.caches.(1)
              ~line:(Cache.line_of_addr t.caches.(1) addr)
        end
      end
    end
    else begin
      c.Counters.loads <- c.Counters.loads + 1;
      c.Counters.prefetches <- c.Counters.prefetches + 1;
      let page = Tlb.page_of_addr tlb addr in
      if Tlb.probe tlb ~page then begin
        let now =
          c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles
        in
        let line = Cache.line_of_addr l1 addr in
        if Cache.access l1 ~line ~write:false = Cache.absent then begin
          count_miss t 0;
          let below = service t ~level:1 ~now ~addr ~dirty:false in
          c.Counters.prefetch_hidden_cycles <-
            c.Counters.prefetch_hidden_cycles + below;
          let evicted_dirty =
            Cache.insert l1 ~now ~ready:(now + below) ~dirty:false ~line
          in
          if evicted_dirty then begin
            c.Counters.writebacks <- c.Counters.writebacks + 1;
            if multi then
              Cache.set_dirty t.caches.(1)
                ~line:(Cache.line_of_addr t.caches.(1) addr)
          end
        end
      end
    end
  done

(* Per-event twin of one [replay_packed] iteration, for callers that
   interleave events from several streams (the batched multi-plan walk
   in [Core.Demand_trace]).  The body is kept a literal copy of the
   loop above rather than shared through a call so the packed loop —
   the exact-path throughput the eval benchmark gates — keeps its
   hoisted locals.  Any change here must be mirrored there. *)
let replay_event t v =
  let c = t.counters in
  let l1 = t.caches.(0) in
  let addr = v lsr 2 in
  let tag = v land 3 in
  if tag <> Ir.Sink.tag_prefetch then begin
    let write = tag = Ir.Sink.tag_store in
    if write then c.Counters.stores <- c.Counters.stores + 1
    else c.Counters.loads <- c.Counters.loads + 1;
    let page = Tlb.page_of_addr t.tlb addr in
    if not (Tlb.access t.tlb ~page) then begin
      c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
      c.Counters.stall_cycles <-
        c.Counters.stall_cycles + t.machine.Machine.tlb.Machine.miss_cycles
    end;
    let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
    let line = Cache.line_of_addr l1 addr in
    let fill = Cache.access l1 ~line ~write in
    if fill <> Cache.absent then begin
      count_hit t 0;
      if fill > now then
        c.Counters.stall_cycles <- c.Counters.stall_cycles + (fill - now)
    end
    else begin
      count_miss t 0;
      let below = service t ~level:1 ~now ~addr ~dirty:false in
      c.Counters.stall_cycles <- c.Counters.stall_cycles + below;
      let evicted_dirty = Cache.insert l1 ~now ~ready:now ~dirty:write ~line in
      if evicted_dirty then begin
        c.Counters.writebacks <- c.Counters.writebacks + 1;
        if Array.length t.caches > 1 then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end
    end
  end
  else begin
    c.Counters.loads <- c.Counters.loads + 1;
    c.Counters.prefetches <- c.Counters.prefetches + 1;
    let page = Tlb.page_of_addr t.tlb addr in
    if Tlb.probe t.tlb ~page then begin
      let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
      let line = Cache.line_of_addr l1 addr in
      if Cache.access l1 ~line ~write:false = Cache.absent then begin
        count_miss t 0;
        let below = service t ~level:1 ~now ~addr ~dirty:false in
        c.Counters.prefetch_hidden_cycles <-
          c.Counters.prefetch_hidden_cycles + below;
        let evicted_dirty =
          Cache.insert l1 ~now ~ready:(now + below) ~dirty:false ~line
        in
        if evicted_dirty then begin
          c.Counters.writebacks <- c.Counters.writebacks + 1;
          if Array.length t.caches > 1 then
            Cache.set_dirty t.caches.(1)
              ~line:(Cache.line_of_addr t.caches.(1) addr)
        end
      end
    end
  end

let no_slack = min_int

(* [replay_event] with timing feedback for the incremental prefetch
   repricer: identical counter/state evolution (it IS the same body,
   plus the return value), so interleaving it with [replay_event] on
   the same stream changes nothing. *)
let replay_event_slack t v =
  let c = t.counters in
  let l1 = t.caches.(0) in
  let addr = v lsr 2 in
  let tag = v land 3 in
  if tag <> Ir.Sink.tag_prefetch then begin
    let write = tag = Ir.Sink.tag_store in
    if write then c.Counters.stores <- c.Counters.stores + 1
    else c.Counters.loads <- c.Counters.loads + 1;
    let page = Tlb.page_of_addr t.tlb addr in
    if not (Tlb.access t.tlb ~page) then begin
      c.Counters.tlb_misses <- c.Counters.tlb_misses + 1;
      c.Counters.stall_cycles <-
        c.Counters.stall_cycles + t.machine.Machine.tlb.Machine.miss_cycles
    end;
    let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
    let line = Cache.line_of_addr l1 addr in
    let fill = Cache.access l1 ~line ~write in
    if fill <> Cache.absent then begin
      count_hit t 0;
      if fill > now then
        c.Counters.stall_cycles <- c.Counters.stall_cycles + (fill - now);
      now - fill
    end
    else begin
      count_miss t 0;
      let below = service t ~level:1 ~now ~addr ~dirty:false in
      c.Counters.stall_cycles <- c.Counters.stall_cycles + below;
      let evicted_dirty = Cache.insert l1 ~now ~ready:now ~dirty:write ~line in
      if evicted_dirty then begin
        c.Counters.writebacks <- c.Counters.writebacks + 1;
        if Array.length t.caches > 1 then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end;
      no_slack
    end
  end
  else begin
    c.Counters.loads <- c.Counters.loads + 1;
    c.Counters.prefetches <- c.Counters.prefetches + 1;
    let page = Tlb.page_of_addr t.tlb addr in
    if not (Tlb.probe t.tlb ~page) then no_slack
    else begin
      let now = c.Counters.loads + c.Counters.stores + c.Counters.stall_cycles in
      let line = Cache.line_of_addr l1 addr in
      if Cache.access l1 ~line ~write:false = Cache.absent then begin
        count_miss t 0;
        let below = service t ~level:1 ~now ~addr ~dirty:false in
        c.Counters.prefetch_hidden_cycles <-
          c.Counters.prefetch_hidden_cycles + below;
        let evicted_dirty =
          Cache.insert l1 ~now ~ready:(now + below) ~dirty:false ~line
        in
        if evicted_dirty then begin
          c.Counters.writebacks <- c.Counters.writebacks + 1;
          if Array.length t.caches > 1 then
            Cache.set_dirty t.caches.(1)
              ~line:(Cache.line_of_addr t.caches.(1) addr)
        end
      end;
      0
    end
  end

(* One shared event applied to K plan states: the inner loop keeps the
   decoded event hot while each hierarchy takes its turn — the batched
   sweep's demand segments go through here. *)
let replay_many ts buf ~pos ~len =
  let nt = Array.length ts in
  for k = pos to pos + len - 1 do
    let v = Array.unsafe_get buf k in
    for i = 0 to nt - 1 do
      replay_event (Array.unsafe_get ts i) v
    done
  done

(* State-only service for the warm-up pass: same lookup/insert/dirty
   sequence as {!service} (so LRU ticks and residency evolve
   identically), no latency arithmetic or counters.  Fill times are
   arbitrary here because [reset_counters] settles them before anything
   is measured. *)
let rec warm_service t ~level ~addr =
  if level < Array.length t.caches then begin
    let cache = t.caches.(level) in
    let line = Cache.line_of_addr cache addr in
    match Cache.lookup cache ~now:0 ~line with
    | Cache.Hit _ -> ()
    | Cache.Miss ->
      warm_service t ~level:(level + 1) ~addr;
      let evicted_dirty =
        Cache.insert cache ~now:0 ~ready:0 ~dirty:false ~line
      in
      if evicted_dirty && level + 1 < Array.length t.caches then
        Cache.set_dirty t.caches.(level + 1)
          ~line:(Cache.line_of_addr t.caches.(level + 1) addr)
  end

(* Replay that evolves cache/TLB state but keeps no accounting: the
   warm-up prefix of a sampled measurement, whose counters are thrown
   away by the [reset_counters] that follows.  Performs exactly the
   probe/insert sequence of {!replay_packed} (residency, LRU and dirty
   state end up identical — the [vm] differential suite checks the
   measured pass downstream), skipping the stall/latency bookkeeping,
   which is most of the per-event work on the hit path. *)
let warm_packed t buf ~pos ~len =
  let l1 = t.caches.(0) in
  let tlb = t.tlb in
  let multi = Array.length t.caches > 1 in
  for k = pos to pos + len - 1 do
    let v = Array.unsafe_get buf k in
    let addr = v lsr 2 in
    let tag = v land 3 in
    if tag <> Ir.Sink.tag_prefetch then begin
      let write = tag = Ir.Sink.tag_store in
      ignore (Tlb.access tlb ~page:(Tlb.page_of_addr tlb addr));
      let line = Cache.line_of_addr l1 addr in
      if Cache.access l1 ~line ~write = Cache.absent then begin
        warm_service t ~level:1 ~addr;
        let evicted_dirty = Cache.insert l1 ~now:0 ~ready:0 ~dirty:write ~line in
        if evicted_dirty && multi then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end
    end
    else if Tlb.probe tlb ~page:(Tlb.page_of_addr tlb addr) then begin
      let line = Cache.line_of_addr l1 addr in
      if Cache.access l1 ~line ~write:false = Cache.absent then begin
        warm_service t ~level:1 ~addr;
        let evicted_dirty =
          Cache.insert l1 ~now:0 ~ready:0 ~dirty:false ~line
        in
        if evicted_dirty && multi then
          Cache.set_dirty t.caches.(1)
            ~line:(Cache.line_of_addr t.caches.(1) addr)
      end
    end
  done

(* Per-event twin of one [warm_packed] iteration; same duplication
   rationale as [replay_event]. *)
let warm_event t v =
  let l1 = t.caches.(0) in
  let tlb = t.tlb in
  let multi = Array.length t.caches > 1 in
  let addr = v lsr 2 in
  let tag = v land 3 in
  if tag <> Ir.Sink.tag_prefetch then begin
    let write = tag = Ir.Sink.tag_store in
    ignore (Tlb.access tlb ~page:(Tlb.page_of_addr tlb addr));
    let line = Cache.line_of_addr l1 addr in
    if Cache.access l1 ~line ~write = Cache.absent then begin
      warm_service t ~level:1 ~addr;
      let evicted_dirty = Cache.insert l1 ~now:0 ~ready:0 ~dirty:write ~line in
      if evicted_dirty && multi then
        Cache.set_dirty t.caches.(1)
          ~line:(Cache.line_of_addr t.caches.(1) addr)
    end
  end
  else if Tlb.probe tlb ~page:(Tlb.page_of_addr tlb addr) then begin
    let line = Cache.line_of_addr l1 addr in
    if Cache.access l1 ~line ~write:false = Cache.absent then begin
      warm_service t ~level:1 ~addr;
      let evicted_dirty = Cache.insert l1 ~now:0 ~ready:0 ~dirty:false ~line in
      if evicted_dirty && multi then
        Cache.set_dirty t.caches.(1)
          ~line:(Cache.line_of_addr t.caches.(1) addr)
    end
  end

let warm_many ts buf ~pos ~len =
  let nt = Array.length ts in
  for k = pos to pos + len - 1 do
    let v = Array.unsafe_get buf k in
    for i = 0 to nt - 1 do
      warm_event (Array.unsafe_get ts i) v
    done
  done

(* Sampled replay: the sampler decides, window by window, whether the
   next run of events is measured ([replay_packed]), replayed
   state-only to re-warm residency ([warm_packed] — safe here because
   LRU is tick-based and the [ready:0] fills it installs are already
   in the past relative to the monotonically growing counter clock),
   or skipped.  The caller extrapolates the counters by
   [Sampling.factor]. *)
let replay_sampled t sampler buf ~pos ~len =
  let p = ref pos in
  let remaining = ref len in
  while !remaining > 0 do
    let action, k = Sampling.take sampler !remaining in
    (match action with
    | Sampling.Measure -> replay_packed t buf ~pos:!p ~len:k
    | Sampling.Warm -> warm_packed t buf ~pos:!p ~len:k
    | Sampling.Drop -> ());
    p := !p + k;
    remaining := !remaining - k
  done

let sink t =
  {
    Ir.Sink.load = (fun addr -> load t addr);
    Ir.Sink.store = (fun addr -> store t addr);
    Ir.Sink.prefetch = (fun addr -> prefetch t addr);
  }

let reset t =
  Array.iter Cache.reset t.caches;
  Tlb.reset t.tlb;
  Counters.reset t.counters

let reset_counters t =
  Array.iter Cache.settle t.caches;
  Counters.reset t.counters
