(** Memory-trace recording and replay.

    A trace captures the exact access stream of one execution in a
    compact growable buffer; replaying it into different sinks evaluates
    many cache configurations (or analyses: classification, attribution,
    reuse distance) without re-executing the program — the
    trace-driven-simulation counterpart to our usual execution-driven
    mode. *)

type t

(** [create ?capacity ()] — the default capacity is sized so a typical
    budgeted measurement fills the buffer without reallocating. *)
val create : ?capacity:int -> unit -> t

(** Forget all recorded events (keeps the buffer for reuse). *)
val clear : t -> unit

(** Sink that appends to the trace (tee it with {!tee} to also feed a
    live consumer). *)
val sink : t -> Ir.Sink.t

(** [tee a b] forwards every event to both sinks. *)
val tee : Ir.Sink.t -> Ir.Sink.t -> Ir.Sink.t

(** Events recorded so far. *)
val length : t -> int

val loads : t -> int
val stores : t -> int
val prefetches : t -> int

(** Replay in recording order. *)
val replay : t -> Ir.Sink.t -> unit

(** Replay straight into a hierarchy via
    {!Hierarchy.replay_packed} — no per-event closure dispatch. *)
val replay_packed : t -> Hierarchy.t -> unit

(** The packed event buffer (valid indices [0 .. length - 1];
    {!Ir.Sink.pack} encoding).  Borrowed: invalidated by further
    recording. *)
val raw : t -> int array

(** Record a program's address stream. *)
val of_program : params:(string * int) list -> Ir.Program.t -> t

(** [misses_under t geometry] replays through a fresh cache of the given
    geometry and returns (accesses, misses) — the one-liner for
    cache-configuration sweeps. *)
val misses_under : t -> Machine.cache -> int * int
