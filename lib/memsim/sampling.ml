type t = { shrink : int; window : int; gap : int; warm : int }

let default = { shrink = 8; window = 4096; gap = 28672; warm = 2048 }

let clamp s =
  let shrink = max 1 s.shrink in
  let window = max 1 s.window in
  let gap = max 0 s.gap in
  let warm = min (max 0 s.warm) gap in
  { shrink; window; gap; warm }

let parse str =
  let set acc (k, v) =
    let v =
      match int_of_string_opt v with
      | Some v -> v
      | None ->
        invalid_arg (Printf.sprintf "sampling spec: %s=%s is not an integer" k v)
    in
    match k with
    | "shrink" -> { acc with shrink = v }
    | "window" -> { acc with window = v }
    | "gap" -> { acc with gap = v }
    | "warm" -> { acc with warm = v }
    | _ -> invalid_arg (Printf.sprintf "sampling spec: unknown key %s" k)
  in
  let field acc part =
    match String.index_opt part '=' with
    | Some i ->
      set acc
        ( String.trim (String.sub part 0 i),
          String.trim (String.sub part (i + 1) (String.length part - i - 1)) )
    | None -> invalid_arg (Printf.sprintf "sampling spec: bad field %S" part)
  in
  let parts =
    List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' str)
  in
  clamp (List.fold_left field default parts)

let to_string s =
  Printf.sprintf "shrink=%d,window=%d,gap=%d,warm=%d" s.shrink s.window s.gap
    s.warm

(* How much of a sampled replay's cold warm-up prefix is actually
   replayed state-only: the trailing [window + gap] events.  Mid-stream,
   every measured window trusts at most one period of history ([gap]
   skipped events re-warmed by the last [warm]); granting the first
   window a full period of true state-only history makes its starting
   state at least as representative as any later window's, so replaying
   the prefix beyond one period buys nothing the estimator relies on.
   Short prefixes (at most one period) are unaffected — they replay in
   full, so small-budget estimates are bit-identical to the uncapped
   behaviour. *)
let prefix_cap s =
  let s = clamp s in
  s.window + s.gap

type action = Measure | Warm | Drop

type sampler = {
  spec : t;
  mutable phase : action;
  mutable left : int;
  mutable n_fed : int;
  mutable n_measured : int;
}

let sampler spec =
  let spec = clamp spec in
  { spec; phase = Measure; left = spec.window; n_fed = 0; n_measured = 0 }

(* Advance to the next phase once the current one is exhausted.  With
   [gap = 0] the cursor never leaves Measure (full replay). *)
let refill s =
  match s.phase with
  | Measure ->
    if s.spec.gap = 0 then s.left <- s.spec.window
    else begin
      let drop = s.spec.gap - s.spec.warm in
      if drop > 0 then begin
        s.phase <- Drop;
        s.left <- drop
      end
      else begin
        s.phase <- Warm;
        s.left <- s.spec.warm
      end
    end
  | Drop ->
    if s.spec.warm > 0 then begin
      s.phase <- Warm;
      s.left <- s.spec.warm
    end
    else begin
      s.phase <- Measure;
      s.left <- s.spec.window
    end
  | Warm ->
    s.phase <- Measure;
    s.left <- s.spec.window

let take s n =
  if n <= 0 then invalid_arg "Sampling.take: n must be positive";
  if s.left = 0 then refill s;
  let k = min n s.left in
  s.left <- s.left - k;
  s.n_fed <- s.n_fed + k;
  if s.phase = Measure then s.n_measured <- s.n_measured + k;
  (s.phase, k)

let fed s = s.n_fed
let measured s = s.n_measured

let factor s =
  if s.n_measured = 0 then 1.0 else float_of_int s.n_fed /. float_of_int s.n_measured
