type t = {
  sets : int;
  assoc : int;
  line_bytes : int;
  line_shift : int;
  set_mask : int;
  tags : int array;  (* sets * assoc; -1 = invalid *)
  stamps : int array;  (* LRU: larger = more recent *)
  fills : int array;  (* cycle at which the line's data arrives *)
  dirty : bool array;
  mutable tick : int;
}

type lookup = Hit of int | Miss

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (c : Machine.cache) =
  let lines = c.Machine.size_bytes / c.Machine.line_bytes in
  let sets = lines / c.Machine.assoc in
  if not (is_pow2 sets) then
    invalid_arg
      (Printf.sprintf "Cache.create: %s has %d sets (must be a power of two)"
         c.Machine.name sets);
  if not (is_pow2 c.Machine.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  {
    sets;
    assoc = c.Machine.assoc;
    line_bytes = c.Machine.line_bytes;
    line_shift = log2 c.Machine.line_bytes;
    set_mask = sets - 1;
    tags = Array.make (sets * c.Machine.assoc) (-1);
    stamps = Array.make (sets * c.Machine.assoc) 0;
    fills = Array.make (sets * c.Machine.assoc) 0;
    dirty = Array.make (sets * c.Machine.assoc) false;
    tick = 0;
  }

let sets c = c.sets
let assoc c = c.assoc
let line_bytes c = c.line_bytes
let line_of_addr c addr = addr lsr c.line_shift

let lookup c ~now:_ ~line =
  let base = (line land c.set_mask) * c.assoc in
  let rec go way =
    if way >= c.assoc then Miss
    else
      let i = base + way in
      if Array.unsafe_get c.tags i = line then begin
        c.tick <- c.tick + 1;
        Array.unsafe_set c.stamps i c.tick;
        Hit (Array.unsafe_get c.fills i)
      end
      else go (way + 1)
  in
  go 0

let insert c ~now:_ ~ready ~dirty ~line =
  let base = (line land c.set_mask) * c.assoc in
  (* The first invalid way wins outright (any invalid way is as good as
     another, so scanning on is wasted work); otherwise evict the LRU
     way, earliest index winning stamp ties. *)
  let victim = ref (-1) in
  let lru = ref base in
  let lru_stamp = ref max_int in
  let way = ref 0 in
  while !victim < 0 && !way < c.assoc do
    let i = base + !way in
    if c.tags.(i) = -1 then victim := i
    else begin
      if c.stamps.(i) < !lru_stamp then begin
        lru := i;
        lru_stamp := c.stamps.(i)
      end;
      incr way
    end
  done;
  let i = if !victim >= 0 then !victim else !lru in
  let evicted_dirty = c.tags.(i) <> -1 && c.dirty.(i) in
  c.tick <- c.tick + 1;
  c.tags.(i) <- line;
  c.stamps.(i) <- c.tick;
  c.fills.(i) <- ready;
  c.dirty.(i) <- dirty;
  evicted_dirty

let set_dirty c ~line =
  (* A line occupies at most one way ([insert] only runs on a miss), so
     stop at the first match. *)
  let base = (line land c.set_mask) * c.assoc in
  let rec go way =
    if way < c.assoc then
      let i = base + way in
      if c.tags.(i) = line then c.dirty.(i) <- true else go (way + 1)
  in
  go 0

let absent = min_int

let access c ~line ~write =
  (* Fused probe for the batched-replay fast path: [lookup] plus the
     dirty marking a demand write performs on a hit, without the
     [lookup] variant allocation.  Returns the fill cycle, or {!absent}
     on a miss (the caller services and inserts, making the trailing
     [set_dirty] of the hit path unnecessary there). *)
  if c.assoc = 1 then begin
    let i = line land c.set_mask in
    if Array.unsafe_get c.tags i = line then begin
      c.tick <- c.tick + 1;
      Array.unsafe_set c.stamps i c.tick;
      if write then Array.unsafe_set c.dirty i true;
      Array.unsafe_get c.fills i
    end
    else absent
  end
  else if c.assoc = 2 then begin
    (* Two-way caches (both levels of the R10000 model) probe with two
       straight-line compares. *)
    let i = (line land c.set_mask) * 2 in
    if Array.unsafe_get c.tags i = line then begin
      c.tick <- c.tick + 1;
      Array.unsafe_set c.stamps i c.tick;
      if write then Array.unsafe_set c.dirty i true;
      Array.unsafe_get c.fills i
    end
    else
      let i = i + 1 in
      if Array.unsafe_get c.tags i = line then begin
        c.tick <- c.tick + 1;
        Array.unsafe_set c.stamps i c.tick;
        if write then Array.unsafe_set c.dirty i true;
        Array.unsafe_get c.fills i
      end
      else absent
  end
  else begin
    let base = (line land c.set_mask) * c.assoc in
    let rec go way =
      if way >= c.assoc then absent
      else
        let i = base + way in
        if Array.unsafe_get c.tags i = line then begin
          c.tick <- c.tick + 1;
          Array.unsafe_set c.stamps i c.tick;
          if write then Array.unsafe_set c.dirty i true;
          Array.unsafe_get c.fills i
        end
        else go (way + 1)
    in
    go 0
  end

let resident c ~line =
  let base = (line land c.set_mask) * c.assoc in
  let rec go way =
    way < c.assoc && (c.tags.(base + way) = line || go (way + 1))
  in
  go 0

let reset c =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  Array.fill c.stamps 0 (Array.length c.stamps) 0;
  Array.fill c.fills 0 (Array.length c.fills) 0;
  Array.fill c.dirty 0 (Array.length c.dirty) false;
  c.tick <- 0

let settle c = Array.fill c.fills 0 (Array.length c.fills) 0

let occupancy c =
  Array.fold_left (fun acc t -> if t <> -1 then acc + 1 else acc) 0 c.tags
