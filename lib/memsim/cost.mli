(** Cycle-count and MFLOPS model combining the hierarchy's counters with
    the executor's instruction statistics.

    The machine is modeled as a superscalar in-order core: memory
    operations and floating-point operations issue on separate pipelines
    and overlap (total issue time is the max of the two streams), loop
    overhead (branch + index update) and register moves add integer
    work, and demand stalls from the hierarchy are serial.  Peak MFLOPS
    is reached exactly when FP issue dominates — e.g. a register-tiled
    matrix-multiply kernel whose loads are amortized over many
    multiply-adds. *)

type t = {
  mem_issue_cycles : float;
  fp_issue_cycles : float;
  other_issue_cycles : float;
  stall_cycles : float;
  total_cycles : float;
  seconds : float;
  flops : int;
  mflops : float;
}

val evaluate : Machine.t -> Counters.t -> Ir.Exec.stats -> t

(** The issue-width/overlap arithmetic of {!evaluate}, exposed for
    callers that produce the components themselves — notably the
    analytical model, which predicts issue slots and stalls instead of
    counting them.  [total = max mem_issue fp_issue + other_issue +
    stall]. *)
val of_components :
  Machine.t ->
  mem_issue:float ->
  fp_issue:float ->
  other_issue:float ->
  stall:float ->
  flops:int ->
  t

(** [scale f c] multiplies every extensive quantity by [f]; used to
    extrapolate budgeted (sampled) runs to the full problem size.  The
    flop count is rounded to the nearest integer (not truncated), so
    extrapolating a sampled run recovers the exact total when [f] is
    the exact sampling ratio. *)
val scale : float -> t -> t

val pp : Format.formatter -> t -> unit
