(** Event counters mirroring the PAPI counters the paper reports in
    Table 1 — loads, per-level cache misses, TLB misses — plus the stall
    cycles the hierarchy accumulates.  Cache hit/miss counts are kept per
    level, for any hierarchy depth. *)

type t = {
  mutable loads : int;  (** includes prefetch instructions, as PAPI does *)
  mutable stores : int;
  mutable prefetches : int;
  hits : int array;  (** per cache level, 0 = L1 *)
  misses : int array;
  mutable tlb_misses : int;
  mutable writebacks : int;
  mutable stall_cycles : int;
  mutable prefetch_hidden_cycles : int;
      (** latency that in-flight prefetches removed from demand stalls *)
}

(** [create ~levels ()] makes counters for a hierarchy of [levels] cache
    levels (default 2). *)
val create : ?levels:int -> unit -> t

val levels : t -> int
val reset : t -> unit
val accesses : t -> int

(** Convenience accessors for the common two-level machines (a level
    beyond the hierarchy reads as 0). *)
val l1_hits : t -> int

val l1_misses : t -> int
val l2_hits : t -> int
val l2_misses : t -> int
val level_hits : t -> int -> int
val level_misses : t -> int -> int

val copy : t -> t

(** [extrapolate c f] scales every counter by [f] (rounded to nearest),
    in place — used by sampled simulation to estimate full-replay
    counts from the measured windows. *)
val extrapolate : t -> float -> unit
val pp : Format.formatter -> t -> unit
