(** One level of set-associative cache with true-LRU replacement,
    write-back/write-allocate, and per-line fill times used to model
    in-flight software prefetches. *)

type t

type lookup = Hit of int  (** cycle at which the line's data is ready *) | Miss

val create : Machine.cache -> t

(** Geometry echoes. *)
val sets : t -> int

val assoc : t -> int
val line_bytes : t -> int

(** Line number of a byte address at this level's line size. *)
val line_of_addr : t -> int -> int

(** [lookup c ~now ~line] probes for [line]; on a hit the LRU state is
    updated.  Does not allocate on miss. *)
val lookup : t -> now:int -> line:int -> lookup

(** [insert c ~now ~ready ~dirty ~line] allocates [line], evicting the
    LRU way.  Returns [true] when a dirty line was evicted (write-back
    traffic).  [ready] is the cycle at which the fill completes. *)
val insert : t -> now:int -> ready:int -> dirty:bool -> line:int -> bool

(** Mark a resident line dirty (no-op when absent). *)
val set_dirty : t -> line:int -> unit

(** Sentinel returned by {!access} on a miss. *)
val absent : int

(** [access c ~line ~write] fuses {!lookup} with the dirty marking a
    demand write performs on a hit: on a hit, updates LRU state, marks
    the line dirty when [write], and returns the fill cycle; on a miss,
    returns {!absent} and changes nothing (the caller is expected to
    {!insert} with the right dirty bit).  Equivalent to
    [lookup]-then-[set_dirty] but allocation-free, with a single-probe
    path for direct-mapped caches. *)
val access : t -> line:int -> write:bool -> int

(** [resident c ~line] is true when the line is present (no LRU update). *)
val resident : t -> line:int -> bool

val reset : t -> unit

(** Mark every resident line's fill as complete (used when counters are
    rewound between a warm-up pass and a measured pass, so stale future
    fill times cannot charge phantom stalls). *)
val settle : t -> unit

(** Number of resident lines (for tests). *)
val occupancy : t -> int
