(** The full memory hierarchy of one machine: TLB + cache levels +
    memory, driven by the address stream of an executing program.

    Timing model: the processor is in-order and blocking on demand
    misses; software prefetches are non-blocking and install lines with a
    future fill time, so a demand access that arrives before the fill
    completes pays only the remaining latency (partial hiding), and one
    that arrives after pays nothing — exactly the trade-off the paper's
    prefetch-distance search explores.  A prefetch that misses in the TLB
    is dropped, as on the R10000. *)

type t

val create : Machine.t -> t
val machine : t -> Machine.t
val counters : t -> Counters.t

(** Current cycle estimate: memory issue slots consumed plus demand
    stalls so far. *)
val now : t -> int

val load : t -> int -> unit
val store : t -> int -> unit
val prefetch : t -> int -> unit

(** The {!Sink.t} interface for {!Ir.Exec.run}. *)
val sink : t -> Ir.Sink.t

(** [replay_packed t buf ~pos ~len] simulates the packed events
    ({!Ir.Sink.pack} encoding) in [buf.(pos .. pos+len-1)] in one tight
    loop — the batched fast path of the sink interface.  Counter and
    cache state evolution is identical to dispatching the same events
    through {!load}/{!store}/{!prefetch}. *)
val replay_packed : t -> int array -> pos:int -> len:int -> unit

(** As {!replay_packed}, but evolving cache/TLB state only — no
    counters, no stall accounting.  Only valid for a warm-up prefix
    that is followed by {!reset_counters} (which discards the counters
    and settles fill times) before anything is measured; residency, LRU
    and dirty state after the prefix are identical to
    {!replay_packed}'s. *)
val warm_packed : t -> int array -> pos:int -> len:int -> unit

(** [replay_event t v] simulates the single packed event [v] — one
    iteration of {!replay_packed}, for callers that interleave events
    from several streams (the batched multi-plan sweep).  Feeding a
    buffer event by event is bit-identical to one {!replay_packed}
    call over it. *)
val replay_event : t -> int -> unit

(** As {!replay_event}, additionally returning timing feedback for the
    incremental prefetch repricer: for a demand event that hits in L1,
    [now - fill] of the line (>= 0 when the line was ready that many
    cycles early, negative = the stall cycles paid); {!no_slack} on a
    demand miss.  For a prefetch event, [0] when the prefetch was
    issued (installed the line or found it resident), {!no_slack} when
    it was dropped on a TLB miss.  Counter and state evolution is
    identical to {!replay_event}. *)
val replay_event_slack : t -> int -> int

val no_slack : int

(** Per-event twin of one {!warm_packed} iteration. *)
val warm_event : t -> int -> unit

(** Structure-of-arrays batched replay over K plan states sharing one
    demand stream (the prefetch sweep).  The hot counters every event
    updates (loads, stores, stall cycles, L1 hits, prefetches) live in
    flat int arrays indexed by plan, so the K-plan inner loop is
    branch-light and allocation-free and scales past K = 16; cold
    counters (level misses, TLB misses, writebacks) stay in each plan's
    {!Counters.t} and are updated out of line on miss paths.

    Per plan, the arithmetic is a verbatim transliteration of
    {!replay_event}, so after {!Batch.sync} the counters are
    bit-identical to replaying that plan's stream unbatched.  While a
    batch is live its plans' hot counter fields are stale: every feed
    must go through the batch, and {!Batch.sync} must be called before
    the {!Counters.t} records are read. *)
module Batch : sig
  type hierarchy := t
  type t

  (** [create hs] wraps the pool [hs] (uniform machine geometry
      required), seeding the flat counters from each hierarchy's
      current {!Counters.t}. *)
  val create : hierarchy array -> t

  val size : t -> int

  (** [replay_all b buf ~pos ~len] feeds the shared run to every plan —
      equivalent to K {!replay_packed} calls, decoding each event (and
      its line and page number) once. *)
  val replay_all : t -> int array -> pos:int -> len:int -> unit

  (** [replay_one b i v] feeds the single event [v] to plan [i]
      (per-plan prefetch emissions). *)
  val replay_one : t -> int -> int -> unit

  (** [replay_range b i buf ~pos ~len] feeds a run to plan [i] only
      (sampled measured windows). *)
  val replay_range : t -> int -> int array -> pos:int -> len:int -> unit

  (** State-only counterparts for the warm-up region. *)
  val warm_all : t -> int array -> pos:int -> len:int -> unit

  val warm_one : t -> int -> int -> unit
  val warm_range : t -> int -> int array -> pos:int -> len:int -> unit

  (** Write the flat counters back into each plan's {!Counters.t}. *)
  val sync : t -> unit

  (** {!Hierarchy.reset_counters} on every plan, plus a flat-counter
      rewind — discards a warm-up pass. *)
  val reset_counters : t -> unit
end

(** [replay_sampled t sampler buf ~pos ~len] replays only the
    sampler's measured windows with full accounting, re-warms state
    through its warm runs, and skips the rest; the caller scales the
    counters by [Sampling.factor] to estimate the full replay. *)
val replay_sampled : t -> Sampling.sampler -> int array -> pos:int -> len:int -> unit

(** Clear both the counters and all cache/TLB state. *)
val reset : t -> unit

(** Clear the counters but keep cache/TLB contents (fill times are
    settled) — used to discard a warm-up pass. *)
val reset_counters : t -> unit

val cache : t -> int -> Cache.t
val tlb : t -> Tlb.t
