(** The full memory hierarchy of one machine: TLB + cache levels +
    memory, driven by the address stream of an executing program.

    Timing model: the processor is in-order and blocking on demand
    misses; software prefetches are non-blocking and install lines with a
    future fill time, so a demand access that arrives before the fill
    completes pays only the remaining latency (partial hiding), and one
    that arrives after pays nothing — exactly the trade-off the paper's
    prefetch-distance search explores.  A prefetch that misses in the TLB
    is dropped, as on the R10000. *)

type t

val create : Machine.t -> t
val machine : t -> Machine.t
val counters : t -> Counters.t

(** Current cycle estimate: memory issue slots consumed plus demand
    stalls so far. *)
val now : t -> int

val load : t -> int -> unit
val store : t -> int -> unit
val prefetch : t -> int -> unit

(** The {!Sink.t} interface for {!Ir.Exec.run}. *)
val sink : t -> Ir.Sink.t

(** [replay_packed t buf ~pos ~len] simulates the packed events
    ({!Ir.Sink.pack} encoding) in [buf.(pos .. pos+len-1)] in one tight
    loop — the batched fast path of the sink interface.  Counter and
    cache state evolution is identical to dispatching the same events
    through {!load}/{!store}/{!prefetch}. *)
val replay_packed : t -> int array -> pos:int -> len:int -> unit

(** As {!replay_packed}, but evolving cache/TLB state only — no
    counters, no stall accounting.  Only valid for a warm-up prefix
    that is followed by {!reset_counters} (which discards the counters
    and settles fill times) before anything is measured; residency, LRU
    and dirty state after the prefix are identical to
    {!replay_packed}'s. *)
val warm_packed : t -> int array -> pos:int -> len:int -> unit

(** Clear both the counters and all cache/TLB state. *)
val reset : t -> unit

(** Clear the counters but keep cache/TLB contents (fill times are
    settled) — used to discard a warm-up pass. *)
val reset_counters : t -> unit

val cache : t -> int -> Cache.t
val tlb : t -> Tlb.t
