type t = {
  entries : int;
  page_bytes : int;
  page_shift : int;
  slots : int array;  (* ring buffer of resident pages; -1 = empty *)
  keys : int array;  (* open-addressing hash set of resident pages *)
  mask : int;
  mutable next : int;
  mutable last_page : int;  (* MRU fast path *)
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (g : Machine.tlb) =
  (* The resident set is probed on every simulated access, so it is an
     open-addressing table kept at most quarter-full: pages hash by
     identity (working sets are contiguous page runs, which distribute
     perfectly) and linear probing rarely moves past the home slot. *)
  let size =
    let rec go s = if s >= 4 * g.Machine.entries then s else go (2 * s) in
    go 16
  in
  {
    entries = g.Machine.entries;
    page_bytes = g.Machine.page_bytes;
    page_shift = log2 g.Machine.page_bytes;
    slots = Array.make g.Machine.entries (-1);
    keys = Array.make size (-1);
    mask = size - 1;
    next = 0;
    last_page = -1;
  }

let page_bytes t = t.page_bytes
let page_of_addr t addr = addr lsr t.page_shift

let mem t page =
  let keys = t.keys and mask = t.mask in
  let rec go i =
    let k = Array.unsafe_get keys i in
    k = page || (k <> -1 && go ((i + 1) land mask))
  in
  go (page land mask)

let add t page =
  let keys = t.keys and mask = t.mask in
  let rec go i =
    if Array.unsafe_get keys i = -1 then Array.unsafe_set keys i page
    else go ((i + 1) land mask)
  in
  go (page land mask)

(* Backward-shift deletion: refill the hole left at the removed slot by
   sliding later chain members whose home slot lies at or before the
   hole, so [mem]'s stop-at-empty probe stays correct. *)
let remove t page =
  let keys = t.keys and mask = t.mask in
  let rec find i = if keys.(i) = page then i else find ((i + 1) land mask) in
  let hole = ref (find (page land mask)) in
  keys.(!hole) <- -1;
  let j = ref !hole in
  let scanning = ref true in
  while !scanning do
    j := (!j + 1) land mask;
    let k = keys.(!j) in
    if k = -1 then scanning := false
    else if (!j - (k land mask)) land mask >= (!j - !hole) land mask then begin
      keys.(!hole) <- k;
      keys.(!j) <- -1;
      hole := !j
    end
  done

let access t ~page =
  if page = t.last_page then true
  else if mem t page then begin
    t.last_page <- page;
    true
  end
  else begin
    let victim = t.slots.(t.next) in
    if victim <> -1 then remove t victim;
    t.slots.(t.next) <- page;
    add t page;
    t.next <- (t.next + 1) mod t.entries;
    t.last_page <- page;
    false
  end

let probe t ~page = page = t.last_page || mem t page

let reset t =
  Array.fill t.slots 0 t.entries (-1);
  Array.fill t.keys 0 (t.mask + 1) (-1);
  t.next <- 0;
  t.last_page <- -1

let occupancy t =
  Array.fold_left (fun acc k -> if k = -1 then acc else acc + 1) 0 t.keys
