(** Sampled simulation: replay only periodic windows of the packed
    event stream and extrapolate the counters, SimPoint-style.

    A sampling spec drives a small state machine (the {!sampler}) that
    classifies each successive event of a measured replay into one of
    three actions:

    - [Measure] — replay with full accounting ({!Hierarchy.replay_packed}
      semantics);
    - [Warm] — replay state-only ({!Hierarchy.warm_packed} semantics), to
      re-warm cache/TLB contents after a skipped stretch;
    - [Drop] — skip entirely.

    The stream alternates a measured window of [window] events with a
    gap of [gap] events, of which the last [warm] are replayed
    state-only so the next window starts from representative cache
    contents.  The measured counters are then scaled by
    [fed / measured] to estimate the full-replay counters.

    The same sampler is shared by single-plan ({!Hierarchy.replay_sampled})
    and batched ({!Core.Demand_trace}) replays, so both make identical
    window decisions for the same event stream. *)

type t = {
  shrink : int;
      (** divide the VM flop budget by this before tracing (1 = trace
          the full budget); the executor's flop-scale extrapolation
          recovers full-run magnitudes *)
  window : int;  (** measured events per period *)
  gap : int;  (** skipped events between measured windows *)
  warm : int;  (** trailing events of each gap replayed state-only *)
}

(** [shrink=8, window=4096, gap=28672, warm=2048]: measure 1/8 of the
    traced events, on a trace 1/8 the exact-path length. *)
val default : t

(** Clamp a spec into validity: [shrink >= 1], [window >= 1],
    [gap >= 0], [0 <= warm <= gap].  [gap = 0] degenerates to full
    replay of the (possibly shrunken) trace. *)
val clamp : t -> t

(** Parse a comma-separated spec like ["shrink=4,window=8192"];
    unmentioned fields keep their {!default}.  Raises
    [Invalid_argument] on malformed input or unknown keys. *)
val parse : string -> t

val to_string : t -> string

(** Cap on the state-only replay of a sampled measurement's cold
    warm-up prefix: only the trailing [window + gap] events of the
    prefix are fed to the hierarchy (the rest are skipped outright).
    Mid-stream, every measured window trusts at most one period of
    history, so a full period of true state-only history leaves the
    first window's state at least as representative as any later
    window's; prefixes no longer than one period replay in full, making
    small-budget estimates bit-identical to the uncapped behaviour.
    All sampled replay paths (direct, from-trace, and batched) apply
    the same cap to the same stream positions, so their estimates stay
    bit-identical to each other. *)
val prefix_cap : t -> int

type action = Measure | Warm | Drop

(** Mutable window cursor over one event stream. *)
type sampler

(** A fresh sampler (clamps the spec); streams start in a measured
    window. *)
val sampler : t -> sampler

(** [take s n] classifies the next run of events: returns the action
    and how many of the next [n] events (1 <= k <= n) it covers, and
    advances the cursor past them. *)
val take : sampler -> int -> action * int

(** Events consumed so far. *)
val fed : sampler -> int

(** Events consumed inside measured windows so far. *)
val measured : sampler -> int

(** Extrapolation factor [fed / measured] (1.0 before anything was
    measured). *)
val factor : sampler -> float
