type t = {
  mutable loads : int;
  mutable stores : int;
  mutable prefetches : int;
  hits : int array;
  misses : int array;
  mutable tlb_misses : int;
  mutable writebacks : int;
  mutable stall_cycles : int;
  mutable prefetch_hidden_cycles : int;
}

let create ?(levels = 2) () =
  {
    loads = 0;
    stores = 0;
    prefetches = 0;
    hits = Array.make levels 0;
    misses = Array.make levels 0;
    tlb_misses = 0;
    writebacks = 0;
    stall_cycles = 0;
    prefetch_hidden_cycles = 0;
  }

let levels c = Array.length c.hits

let reset c =
  c.loads <- 0;
  c.stores <- 0;
  c.prefetches <- 0;
  Array.fill c.hits 0 (Array.length c.hits) 0;
  Array.fill c.misses 0 (Array.length c.misses) 0;
  c.tlb_misses <- 0;
  c.writebacks <- 0;
  c.stall_cycles <- 0;
  c.prefetch_hidden_cycles <- 0

let accesses c = c.loads + c.stores
let level_hits c i = if i < Array.length c.hits then c.hits.(i) else 0
let level_misses c i = if i < Array.length c.misses then c.misses.(i) else 0
let l1_hits c = level_hits c 0
let l1_misses c = level_misses c 0
let l2_hits c = level_hits c 1
let l2_misses c = level_misses c 1

let copy c =
  {
    loads = c.loads;
    stores = c.stores;
    prefetches = c.prefetches;
    hits = Array.copy c.hits;
    misses = Array.copy c.misses;
    tlb_misses = c.tlb_misses;
    writebacks = c.writebacks;
    stall_cycles = c.stall_cycles;
    prefetch_hidden_cycles = c.prefetch_hidden_cycles;
  }

let extrapolate c f =
  if f <> 1.0 then begin
    let s x = int_of_float (Float.round (float_of_int x *. f)) in
    c.loads <- s c.loads;
    c.stores <- s c.stores;
    c.prefetches <- s c.prefetches;
    for i = 0 to Array.length c.hits - 1 do
      c.hits.(i) <- s c.hits.(i);
      c.misses.(i) <- s c.misses.(i)
    done;
    c.tlb_misses <- s c.tlb_misses;
    c.writebacks <- s c.writebacks;
    c.stall_cycles <- s c.stall_cycles;
    c.prefetch_hidden_cycles <- s c.prefetch_hidden_cycles
  end

let pp fmt c =
  Format.fprintf fmt "loads=%d stores=%d prefetches=%d" c.loads c.stores
    c.prefetches;
  Array.iteri
    (fun i m -> Format.fprintf fmt " L%d=%d/%d" (i + 1) m (c.hits.(i) + m))
    c.misses;
  Format.fprintf fmt " tlb_miss=%d wb=%d stall=%d" c.tlb_misses c.writebacks
    c.stall_cycles
