(* Events are packed as [addr lsl 2 lor tag] (the Ir.Sink.pack
   encoding) in a growable int array. *)

let tag_load = Ir.Sink.tag_load
let tag_store = Ir.Sink.tag_store
let tag_prefetch = Ir.Sink.tag_prefetch

type t = {
  mutable buf : int array;
  mutable len : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_prefetches : int;
}

(* Even tiny kernels emit tens of thousands of events, so start big
   enough that a typical budgeted measurement never reallocates. *)
let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  {
    buf = Array.make (max 1 capacity) 0;
    len = 0;
    n_loads = 0;
    n_stores = 0;
    n_prefetches = 0;
  }

let clear t =
  t.len <- 0;
  t.n_loads <- 0;
  t.n_stores <- 0;
  t.n_prefetches <- 0

let push t v =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- v;
  t.len <- t.len + 1

let sink t =
  {
    Ir.Sink.load =
      (fun addr ->
        t.n_loads <- t.n_loads + 1;
        push t ((addr lsl 2) lor tag_load));
    Ir.Sink.store =
      (fun addr ->
        t.n_stores <- t.n_stores + 1;
        push t ((addr lsl 2) lor tag_store));
    Ir.Sink.prefetch =
      (fun addr ->
        t.n_prefetches <- t.n_prefetches + 1;
        push t ((addr lsl 2) lor tag_prefetch));
  }

let tee a b =
  {
    Ir.Sink.load =
      (fun addr ->
        a.Ir.Sink.load addr;
        b.Ir.Sink.load addr);
    Ir.Sink.store =
      (fun addr ->
        a.Ir.Sink.store addr;
        b.Ir.Sink.store addr);
    Ir.Sink.prefetch =
      (fun addr ->
        a.Ir.Sink.prefetch addr;
        b.Ir.Sink.prefetch addr);
  }

let length t = t.len
let loads t = t.n_loads
let stores t = t.n_stores
let prefetches t = t.n_prefetches

let raw t = t.buf

let replay_packed t hierarchy =
  Hierarchy.replay_packed hierarchy t.buf ~pos:0 ~len:t.len

let replay t (sink : Ir.Sink.t) =
  for i = 0 to t.len - 1 do
    let v = t.buf.(i) in
    let addr = v lsr 2 in
    match v land 3 with
    | 0 -> sink.Ir.Sink.load addr
    | 1 -> sink.Ir.Sink.store addr
    | _ -> sink.Ir.Sink.prefetch addr
  done

let of_program ~params program =
  let t = create () in
  ignore (Ir.Exec.run ~sink:(sink t) ~params program);
  t

let misses_under t geometry =
  let cache = Cache.create geometry in
  let accesses = ref 0 and misses = ref 0 in
  let touch addr =
    incr accesses;
    let line = Cache.line_of_addr cache addr in
    match Cache.lookup cache ~now:0 ~line with
    | Cache.Hit _ -> ()
    | Cache.Miss ->
      incr misses;
      ignore (Cache.insert cache ~now:0 ~ready:0 ~dirty:false ~line)
  in
  replay t
    { Ir.Sink.load = touch; Ir.Sink.store = touch; Ir.Sink.prefetch = ignore };
  (!accesses, !misses)
