type t = {
  load : int -> unit;
  store : int -> unit;
  prefetch : int -> unit;
}

let null = { load = ignore; store = ignore; prefetch = ignore }

(* Packed-event encoding shared by every trace producer and consumer
   (Ir.Vm, Memsim.Trace, Memsim.Hierarchy.replay_packed): one event is
   [addr lsl 2 lor tag]. *)
let tag_load = 0
let tag_store = 1
let tag_prefetch = 2

let pack ~tag addr = (addr lsl 2) lor tag
let packed_addr v = v lsr 2
let packed_tag v = v land 3
