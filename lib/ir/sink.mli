(** Abstract consumer of the memory-access stream produced by executing a
    program.  The memory-hierarchy simulator implements this interface;
    keeping it abstract lets the IR library stay independent of the
    simulator.  Addresses are byte addresses. *)

type t = {
  load : int -> unit;
  store : int -> unit;
  prefetch : int -> unit;
}

(** A sink that discards everything (pure value execution). *)
val null : t

(** {1 Packed events}

    The canonical packed encoding of one access event, shared by every
    trace producer and consumer in the system ({!Vm}, [Memsim.Trace],
    [Memsim.Hierarchy.replay_packed]): an event is
    [addr lsl 2 lor tag]. *)

val tag_load : int
val tag_store : int
val tag_prefetch : int

val pack : tag:int -> int -> int
val packed_addr : int -> int
val packed_tag : int -> int
