exception Budget_exhausted

type stats = {
  flops : int;
  loop_iterations : int;
  register_moves : int;
  spilled_scalars : int;
  completed : bool;
}

type result = {
  stats : stats;
  arrays : (string * float array) list;
}

type ctx = {
  env : int array;
  mutable flops : int;
  mutable iters : int;
  mutable moves : int;
}

let page_elems = 512 (* 4 KiB pages, 8-byte elements *)
let align_up n k = (n + k - 1) / k * k

let initial_value name i =
  let h = Hashtbl.hash name in
  let x = (i * 2654435761) lxor (h * 40503) in
  let x = x land 0xFFFFF in
  0.5 +. (float_of_int x /. 1048576.0)

(* Coordinates are folded slowest-dimension-first so that a rank-1
   coordinate [i] reduces to [i] (compatible with [initial_value]). *)
let initial_value_at name coords =
  let combined =
    List.fold_left (fun acc c -> (acc * 1_000_003) + c) 0 (List.rev coords)
  in
  initial_value name combined

(* Placement of every array (heap arrays and spilled scalars) in a flat
   element-granularity address space, each base page-aligned as a real
   allocator would do. *)
type placement = {
  name : string;
  data : float array;
  base : int;  (* element address *)
  strides : int list;
  in_memory : bool;  (* false for true register scalars *)
}

let build_placements ?(with_data = true) ~lookup ~register_budget (p : Program.t) =
  let registers =
    List.filter (fun (d : Decl.t) -> d.Decl.storage = Decl.Register) p.Program.decls
  in
  let budget = match register_budget with None -> max_int | Some b -> b in
  let kept = Hashtbl.create 16 in
  List.iteri
    (fun i (d : Decl.t) ->
      if i < budget then Hashtbl.replace kept d.Decl.name ())
    registers;
  let spilled = max 0 (List.length registers - budget) in
  let next_base = ref 0 in
  let placements =
    List.map
      (fun (d : Decl.t) ->
        let elements = max 1 (Decl.elements lookup d) in
        let strides = Decl.strides lookup d in
        let strides = if strides = [] then [] else strides in
        let in_memory =
          match d.Decl.storage with
          | Decl.Heap -> true
          | Decl.Register -> not (Hashtbl.mem kept d.Decl.name)
        in
        let base = align_up !next_base page_elems in
        next_base := base + elements;
        let data = if with_data then Array.make elements 0.0 else [||] in
        (match d.Decl.storage with
        | Decl.Heap when with_data ->
          (* Initialize by logical coordinates (decomposed through the
             dimension extents), so padded layouts hold the same values
             at the same logical positions. *)
          let dims = List.map (Aff.eval lookup) d.Decl.dims in
          let rec coords_of flat = function
            | [] -> []
            | [ _ ] -> [ flat ]
            | dim :: rest -> (flat mod dim) :: coords_of (flat / dim) rest
          in
          for i = 0 to elements - 1 do
            data.(i) <- initial_value_at d.Decl.name (coords_of i dims)
          done
        | Decl.Heap | Decl.Register -> ());
        { name = d.Decl.name; data; base; strides; in_memory })
      p.Program.decls
  in
  (placements, spilled)

(* Shared with the bytecode VM ({!Vm}): the address-space layout of a
   program at given parameter values, mirroring [run]'s lookup rules
   (loop variables may not appear in array bounds). *)
let placements ?(with_data = true) ?register_budget ~params (p : Program.t) =
  let loop_vars = Stmt.loop_vars p.Program.body in
  let is_loop_var = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace is_loop_var v ()) loop_vars;
  let lookup x =
    if Hashtbl.mem is_loop_var x then
      invalid_arg
        (Printf.sprintf "Exec.placements: loop variable %s in array bound" x)
    else
      match List.assoc_opt x params with
      | Some v -> v
      | None ->
        invalid_arg (Printf.sprintf "Exec.placements: unbound parameter %s" x)
  in
  build_placements ~with_data ~lookup ~register_budget p

let layout ~params (p : Program.t) =
  let lookup x =
    match List.assoc_opt x params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Exec.layout: unbound parameter %s" x)
  in
  let placements, _ = build_placements ~lookup ~register_budget:None p in
  List.filter_map
    (fun pl -> if pl.in_memory then Some (pl.name, pl.base) else None)
    placements

let run ?(sink = Sink.null) ?flop_budget ?register_budget ~params (p : Program.t) =
  (match Program.validate p with
  | [] -> ()
  | errs ->
    invalid_arg
      (Printf.sprintf "Exec.run: invalid program %s: %s" p.Program.name
         (String.concat "; " errs)));
  let loop_vars = Stmt.loop_vars p.Program.body in
  let slot_of = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace slot_of v i) loop_vars;
  let param_value x =
    match List.assoc_opt x params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Exec.run: unbound parameter %s" x)
  in
  let lookup x =
    if Hashtbl.mem slot_of x then
      invalid_arg (Printf.sprintf "Exec.run: loop variable %s in array bound" x)
    else param_value x
  in
  let placements, spilled = build_placements ~lookup ~register_budget p in
  let placement_of name = List.find (fun pl -> pl.name = name) placements in
  let ctx = { env = Array.make (max 1 (List.length loop_vars)) 0; flops = 0; iters = 0; moves = 0 } in
  let budget = match flop_budget with None -> max_int | Some b -> b in

  (* Affine expression -> closure.  Parameter terms fold into the
     constant; loop-variable terms read the environment. *)
  let compile_aff (a : Aff.t) : unit -> int =
    let const = ref (Aff.const_part a) in
    let var_terms =
      List.filter_map
        (fun (c, x) ->
          match Hashtbl.find_opt slot_of x with
          | Some slot -> Some (slot, c)
          | None ->
            const := !const + (c * param_value x);
            None)
        (Aff.terms a)
    in
    let c = !const in
    let env = ctx.env in
    match var_terms with
    | [] -> fun () -> c
    | [ (s1, 1) ] -> fun () -> c + env.(s1)
    | [ (s1, k1) ] -> fun () -> c + (k1 * env.(s1))
    | [ (s1, 1); (s2, k2) ] -> fun () -> c + env.(s1) + (k2 * env.(s2))
    | [ (s1, k1); (s2, k2) ] -> fun () -> c + (k1 * env.(s1)) + (k2 * env.(s2))
    | terms ->
      let arr = Array.of_list terms in
      fun () ->
        let acc = ref c in
        Array.iter (fun (s, k) -> acc := !acc + (k * env.(s))) arr;
        !acc
  in
  let rec compile_bexp (b : Bexp.t) : unit -> int =
    match b with
    | Bexp.Aff a -> compile_aff a
    | Bexp.Min (x, y) ->
      let fx = compile_bexp x and fy = compile_bexp y in
      fun () -> min (fx ()) (fy ())
    | Bexp.Max (x, y) ->
      let fx = compile_bexp x and fy = compile_bexp y in
      fun () -> max (fx ()) (fy ())
    | Bexp.Add (x, y) ->
      let fx = compile_bexp x and fy = compile_bexp y in
      fun () -> fx () + fy ()
    | Bexp.Floor_mult (x, k) ->
      let fx = compile_bexp x in
      fun () ->
        let v = fx () in
        k * (if v >= 0 then v / k else -(((-v) + k - 1) / k))
  in
  (* Flatten a reference's index expressions into a single affine element
     offset using the array's strides, then compile it once. *)
  let compile_offset (r : Reference.t) =
    let pl = placement_of r.Reference.array in
    let offset =
      List.fold_left2
        (fun acc idx stride -> Aff.add acc (Aff.scale stride idx))
        Aff.zero r.Reference.idx pl.strides
    in
    (pl, compile_aff offset)
  in
  let load = sink.Sink.load
  and store = sink.Sink.store
  and pref = sink.Sink.prefetch in
  let compile_load (r : Reference.t) : unit -> float =
    let pl, off = compile_offset r in
    if pl.in_memory then
      let base = pl.base and data = pl.data in
      fun () ->
        let o = off () in
        load ((base + o) lsl 3);
        Array.unsafe_get data o
    else
      let data = pl.data in
      fun () -> Array.unsafe_get data (off ())
  in
  let compile_store (r : Reference.t) : float -> unit =
    let pl, off = compile_offset r in
    if pl.in_memory then
      let base = pl.base and data = pl.data in
      fun v ->
        let o = off () in
        store ((base + o) lsl 3);
        Array.unsafe_set data o v
    else
      let data = pl.data in
      fun v -> Array.unsafe_set data (off ()) v
  in
  let rec compile_fexpr (e : Fexpr.t) : unit -> float =
    match e with
    | Fexpr.Ref r -> compile_load r
    | Fexpr.Const c -> fun () -> c
    | Fexpr.Neg x ->
      let fx = compile_fexpr x in
      fun () -> -.fx ()
    | Fexpr.Bin (op, a, b) ->
      let fa = compile_fexpr a and fb = compile_fexpr b in
      (match op with
      | Fexpr.Add -> fun () -> fa () +. fb ()
      | Fexpr.Sub -> fun () -> fa () -. fb ()
      | Fexpr.Mul -> fun () -> fa () *. fb ()
      | Fexpr.Div -> fun () -> fa () /. fb ())
  in
  let is_register_ref (r : Reference.t) =
    not (placement_of r.Reference.array).in_memory
    && (placement_of r.Reference.array).data != [||]
  in
  let rec compile_stmt (s : Stmt.t) : unit -> unit =
    match s with
    | Stmt.Assign (lhs, rhs) ->
      let n = Fexpr.flops rhs in
      let rhs_f = compile_fexpr rhs in
      let store_f = compile_store lhs in
      let is_move =
        n = 0
        &&
        match rhs with
        | Fexpr.Ref r -> is_register_ref r && is_register_ref lhs
        | _ -> false
      in
      if is_move then fun () ->
        ctx.moves <- ctx.moves + 1;
        store_f (rhs_f ())
      else fun () ->
        ctx.flops <- ctx.flops + n;
        if ctx.flops > budget then raise Budget_exhausted;
        store_f (rhs_f ())
    | Stmt.Prefetch r ->
      let pl, off = compile_offset r in
      if pl.in_memory then
        let base = pl.base in
        fun () -> pref ((base + off ()) lsl 3)
      else fun () -> ()
    | Stmt.Loop l ->
      let lo_f = compile_bexp l.Stmt.lo and hi_f = compile_bexp l.Stmt.hi in
      let slot = Hashtbl.find slot_of l.Stmt.var in
      let body = compile_body l.Stmt.body in
      let step = l.Stmt.step in
      let env = ctx.env in
      fun () ->
        let hi = hi_f () in
        let i = ref (lo_f ()) in
        while !i <= hi do
          env.(slot) <- !i;
          ctx.iters <- ctx.iters + 1;
          body ();
          i := !i + step
        done
  and compile_body body : unit -> unit =
    match List.map compile_stmt body with
    | [] -> fun () -> ()
    | [ f ] -> f
    | [ f1; f2 ] -> fun () -> f1 (); f2 ()
    | fs ->
      let arr = Array.of_list fs in
      fun () -> Array.iter (fun f -> f ()) arr
  in
  let top = compile_body p.Program.body in
  let completed = try top (); true with Budget_exhausted -> false in
  let arrays =
    List.filter_map
      (fun pl ->
        match (Program.find_decl_exn p pl.name).Decl.storage with
        | Decl.Heap -> Some (pl.name, pl.data)
        | Decl.Register -> None)
      placements
  in
  {
    stats =
      {
        flops = ctx.flops;
        loop_iterations = ctx.iters;
        register_moves = ctx.moves;
        spilled_scalars = spilled;
        completed;
      };
    arrays;
  }

let checksum result =
  let round v =
    if Float.is_nan v then 0.0
    else if v = 0.0 then 0.0
    else
      let exp = Float.round (Float.log10 (Float.abs v)) in
      let scale = Float.pow 10.0 (6.0 -. exp) in
      Float.round (v *. scale) /. scale
  in
  List.fold_left
    (fun acc (name, data) ->
      let h = float_of_int (Hashtbl.hash name land 0xFF) in
      let s = ref 0.0 in
      Array.iteri
        (fun i v ->
          s := !s +. (round v *. (1.0 +. (float_of_int (i land 31) /. 37.0))))
        data;
      acc +. (!s *. (1.0 +. (h /. 1000.0))))
    0.0 result.arrays
