(** Bytecode virtual machine: the evaluation fast path.

    {!compile} lowers a program (with all symbolic parameters bound)
    once into a flat int-array bytecode — strides, parameter terms and
    array bases folded into per-reference affine tables, loop bounds
    into small RPN programs — and {!run} executes it in a tight
    dispatch loop.  The closure interpreter in {!Exec} remains the
    reference semantics; the VM is validated against it bit-for-bit
    (see the [vm] test suite) and exists purely to make repeated
    measurement cheap.

    Two compile modes:
    - the default address-only mode allocates no float storage and
      performs no arithmetic: it emits the packed access-event stream
      (encoding of {!Sink.pack}) plus {!Exec.stats}, which is all a
      measurement needs;
    - [~compute:true] additionally interprets the floating-point
      semantics on a value stack (arrays re-initialized from pristine
      masters on every run), used by the differential tests to compare
      checksums with the interpreter.

    With [~marks:true], the VM records a side buffer of {e iteration
    marks}: one record per innermost-loop iteration, containing the
    mark id, the event-buffer position at iteration start and the
    values of the loop variables used by the body's memory references.
    Marks let the demand-trace cache synthesize prefetch events for
    any candidate distance without re-running the program
    (see [Core.Demand_trace]).

    A compiled program carries its own mutable scratch state (loop
    variables, stacks); a given [t] must not be run from two domains
    at once. *)

(** Growable int buffer, passed into {!run} so callers can pool
    allocations across evaluations. *)
module Buf : sig
  type t

  val create : ?capacity:int -> unit -> t
  val clear : t -> unit
  val length : t -> int
  val push : t -> int -> unit

  (** Current backing store; valid indices are [0 .. length - 1].  The
      array is replaced when the buffer grows, so don't hold on to it
      across pushes. *)
  val data : t -> int array
end

type t

(** [compile ?compute ?marks ?register_budget ~params p] lowers [p].
    Mirrors {!Exec.run}'s placement and spill rules exactly.
    @raise Invalid_argument on invalid programs or unbound parameters. *)
val compile :
  ?compute:bool ->
  ?marks:bool ->
  ?register_budget:int ->
  params:(string * int) list ->
  Program.t ->
  t

(** Per-innermost-loop environment slots recorded in each mark, in
    mark-id order; each entry is sorted ascending.  A mark record is
    [mark_id; event_pos; env.(s) for s in mark_slots.(mark_id)]. *)
val mark_slots : t -> int array array

(** Number of register scalars spilled to memory (as in
    {!Exec.stats.spilled_scalars}). *)
val spilled : t -> int

type run = {
  stats : Exec.stats;
  events : int array;
      (** borrowed from the events buffer — packed {!Sink.pack} values *)
  n_events : int;
  marks : int array;  (** borrowed from the marks buffer *)
  n_marks : int;  (** in words, not records *)
  cut_events : int;
      (** event count when [warm_budget] was first exceeded (the warm-up
          prefix used by sampled measurement); [-1] without a
          [warm_budget] *)
  cut_marks : int;  (** mark-buffer word position at the cut; [-1] likewise *)
}

(** [run ?flop_budget ?warm_budget ?events ?marks t] executes the
    compiled program, with {!Exec.run}'s exact flop-budget semantics
    (graceful stop, [completed = false]).  [events] and [marks] are
    cleared and refilled; fresh buffers are allocated when omitted. *)
val run :
  ?flop_budget:int ->
  ?warm_budget:int ->
  ?events:Buf.t ->
  ?marks:Buf.t ->
  t ->
  run

(** Heap arrays after the latest {!run} (declaration order), for
    checksum comparison with the interpreter.  Empty arrays unless
    compiled with [~compute:true]; contents are overwritten by the next
    [run]. *)
val arrays : t -> (string * float array) list
