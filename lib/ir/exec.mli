(** Execution of programs.

    A program is compiled to closures once (with all symbolic parameters
    bound to integers), then run.  Execution always computes real
    floating-point values — this is what makes transformation-soundness
    testing possible — and, when a {!Sink.t} is supplied, streams every
    heap memory access to it as byte addresses.

    Register-storage scalars generate no memory traffic.  When
    [register_budget] is given and the program declares more register
    scalars than the budget, the excess scalars (in declaration order)
    are spilled: they are allocated in memory and their accesses reach
    the sink — this is how the empirical search "detects register
    pressure", as in the paper (§3.1.1). *)

exception Budget_exhausted

type stats = {
  flops : int;  (** floating-point operations executed *)
  loop_iterations : int;  (** loop-header iterations executed *)
  register_moves : int;  (** register-to-register copies executed *)
  spilled_scalars : int;  (** register scalars demoted to memory *)
  completed : bool;  (** false when the flop budget stopped the run *)
}

type result = {
  stats : stats;
  arrays : (string * float array) list;
      (** heap arrays after execution, in declaration order *)
}

(** [run ?sink ?flop_budget ?register_budget ~params p] executes [p].

    @param sink consumer of the address stream (default: none).
    @param flop_budget stop (gracefully) after this many flops; used for
      sampled simulation of large problem sizes.
    @param register_budget number of register scalars the target can
      hold; excess scalars spill to memory.
    @param params values for the symbolic parameters of [p]; every
      parameter must be bound.
    @raise Invalid_argument on unbound parameters or malformed programs. *)
val run :
  ?sink:Sink.t ->
  ?flop_budget:int ->
  ?register_budget:int ->
  params:(string * int) list ->
  Program.t ->
  result

(** Deterministic initial value for element [i] of a one-dimensional
    array [name]; equal to [initial_value_at name [i]]. *)
val initial_value : string -> int -> float

(** Deterministic initial value for the element at logical coordinates
    [coords] (fastest-varying first) of array [name].  [run] initializes
    heap arrays with this, so initial contents depend only on logical
    positions — never on layout — and layout transformations such as
    padding preserve program results exactly. *)
val initial_value_at : string -> int list -> float

(** Order-insensitive checksum of a result's heap arrays, for comparing
    program variants that may compute in different orders (sums are
    rounded to make the comparison robust to reassociation). *)
val checksum : result -> float

(** Page-aligned element base addresses chosen for the heap arrays of a
    program, in declaration order.  Exposed for tests. *)
val layout : params:(string * int) list -> Program.t -> (string * int) list

(** {1 Placements}

    The address-space layout the interpreter assigns to a program's
    arrays.  Exposed so the bytecode VM ({!Vm}) and the demand-trace
    synthesizer can fold the very same bases and strides at compile
    time and stay bit-identical with the closure interpreter. *)

type placement = {
  name : string;
  data : float array;  (** [[||]] when built with [with_data:false] *)
  base : int;  (** element address; multiply by 8 for bytes *)
  strides : int list;
  in_memory : bool;  (** false for true register scalars *)
}

(** [placements ?with_data ?register_budget ~params p] computes the
    placement of every declaration of [p] (declaration order) plus the
    number of spilled register scalars, using exactly the rules of
    {!run}.  With [with_data:false] no float storage is allocated
    (address-only use).
    @raise Invalid_argument on unbound parameters or when an array
      bound mentions a loop variable. *)
val placements :
  ?with_data:bool ->
  ?register_budget:int ->
  params:(string * int) list ->
  Program.t ->
  placement list * int
