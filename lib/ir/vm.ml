(* Bytecode VM: the measurement fast path.  Compiles a fully-bound
   program once into flat int arrays and replays it in a tight loop.
   Semantics (statement order, evaluation order, budget behaviour,
   spill rules, address computation) mirror the closure interpreter in
   exec.ml exactly — the differential test suite holds the two
   bit-identical. *)

module Buf = struct
  type t = { mutable a : int array; mutable len : int }

  let create ?(capacity = 4096) () = { a = Array.make (max 1 capacity) 0; len = 0 }
  let clear t = t.len <- 0
  let length t = t.len
  let data t = t.a

  let grow t =
    let bigger = Array.make (2 * Array.length t.a) 0 in
    Array.blit t.a 0 bigger 0 t.len;
    t.a <- bigger

  let push t v =
    if t.len = Array.length t.a then grow t;
    Array.unsafe_set t.a t.len v;
    t.len <- t.len + 1
end

(* Opcodes (code array). *)
let op_halt = 0
let op_flops = 1 (* [op; n] *)
let op_move = 2 (* [op] *)
let op_touch = 3 (* [op; aff]  affine pre-packed: ((base+o) lsl 5) lor tag *)
let op_loop = 4 (* [op; slot; step; lo_pc; hi_pc; end_pc; mark_id] *)
let op_end = 5 (* [op; loop_pc] *)

(* Compute-mode opcodes (float stack machine). *)
let op_fconst = 6 (* [op; fidx] *)
let op_floadh = 7 (* [op; aff; d; pbase]  pbase = (base lsl 5) lor tag *)
let op_floadr = 8 (* [op; aff; d] *)
let op_fneg = 9 (* [op] *)
let op_fadd = 10 (* [op] *)
let op_fsub = 11 (* [op] *)
let op_fmul = 12 (* [op] *)
let op_fdiv = 13 (* [op] *)
let op_fstoreh = 14 (* [op; aff; d; pbase] *)
let op_fstorer = 15 (* [op; aff; d] *)
let op_prefh = 16 (* [op; aff; pbase] *)

(* Loop-bound opcodes (bcode array, RPN). *)
let b_aff = 0 (* [op; aff] *)
let b_min = 1
let b_max = 2
let b_add = 3
let b_floormult = 4 (* [op; k] *)
let b_ret = 5

type t = {
  code : int array;
  bcode : int array;
  (* Affine table: value j = aconst.(j) + sum over k in
     [aoff.(j), aoff.(j)+alen.(j)) of acoef.(k) * env.(aslot.(k)). *)
  aconst : int array;
  aoff : int array;
  alen : int array;
  aslot : int array;
  acoef : int array;
  fconsts : float array;
  data : float array array;  (* per declaration; [||] entries in fast mode *)
  masters : float array array;  (* pristine copies, re-blitted each run *)
  heap_arrays : (string * int) list;  (* heap decls, declaration order *)
  spilled : int;
  mark_slots : int array array;
  (* Mutable scratch (one runner at a time). *)
  env : int array;
  f_slot : int array;
  f_step : int array;
  f_hi : int array;
  f_body_pc : int array;
  f_mark : int array;
  bstack : int array;
  fstack : float array;
}

let mark_slots t = t.mark_slots
let spilled t = t.spilled

let arrays t = List.map (fun (name, d) -> (name, t.data.(d))) t.heap_arrays

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile ?(compute = false) ?(marks = false) ?register_budget ~params
    (p : Program.t) =
  (match Program.validate p with
  | [] -> ()
  | errs ->
    invalid_arg
      (Printf.sprintf "Vm.compile: invalid program %s: %s" p.Program.name
         (String.concat "; " errs)));
  let loop_vars = Stmt.loop_vars p.Program.body in
  let slot_of = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace slot_of v i) loop_vars;
  let param_value x =
    match List.assoc_opt x params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Vm.compile: unbound parameter %s" x)
  in
  let placements, spilled =
    Exec.placements ~with_data:compute ?register_budget ~params p
  in
  let placement_of name =
    List.find (fun pl -> pl.Exec.name = name) placements
  in
  let code = Buf.create ~capacity:256 () in
  let bcode = Buf.create ~capacity:64 () in
  let aconst = Buf.create ~capacity:64 () in
  let aoff = Buf.create ~capacity:64 () in
  let alen = Buf.create ~capacity:64 () in
  let aslot = Buf.create ~capacity:64 () in
  let acoef = Buf.create ~capacity:64 () in
  let fconsts = ref [] and n_fconsts = ref 0 in
  let intern_fconst c =
    fconsts := c :: !fconsts;
    incr n_fconsts;
    !n_fconsts - 1
  in
  (* Intern an affine expression: parameter terms fold into the
     constant, loop-variable terms read the environment.  [shift] and
     [tag] pre-pack the packed-event encoding for fast-mode touches. *)
  let intern_aff ?(shift = 0) ?(tag = 0) ?(base = 0) (a : Aff.t) =
    let const = ref (Aff.const_part a) in
    let terms =
      List.filter_map
        (fun (c, x) ->
          match Hashtbl.find_opt slot_of x with
          | Some slot -> Some (slot, c)
          | None ->
            const := !const + (c * param_value x);
            None)
        (Aff.terms a)
    in
    let j = Buf.length aconst in
    Buf.push aconst (((base + !const) lsl shift) lor tag);
    Buf.push aoff (Buf.length aslot);
    Buf.push alen (List.length terms);
    List.iter
      (fun (slot, c) ->
        Buf.push aslot slot;
        Buf.push acoef (c lsl shift))
      terms;
    j
  in
  let fold_offset (r : Reference.t) =
    let pl = placement_of r.Reference.array in
    let offset =
      List.fold_left2
        (fun acc idx stride -> Aff.add acc (Aff.scale stride idx))
        Aff.zero r.Reference.idx pl.Exec.strides
    in
    (pl, offset)
  in
  (* Loop bounds: RPN programs in [bcode]. *)
  let bexp_depth = ref 1 in
  let emit_bexp_prog (b : Bexp.t) =
    let start = Buf.length bcode in
    let rec emit depth b =
      bexp_depth := max !bexp_depth depth;
      match b with
      | Bexp.Aff a ->
        Buf.push bcode b_aff;
        Buf.push bcode (intern_aff a)
      | Bexp.Min (x, y) ->
        emit depth x;
        emit (depth + 1) y;
        Buf.push bcode b_min
      | Bexp.Max (x, y) ->
        emit depth x;
        emit (depth + 1) y;
        Buf.push bcode b_max
      | Bexp.Add (x, y) ->
        emit depth x;
        emit (depth + 1) y;
        Buf.push bcode b_add
      | Bexp.Floor_mult (x, k) ->
        emit depth x;
        Buf.push bcode b_floormult;
        Buf.push bcode k
    in
    emit 1 b;
    Buf.push bcode b_ret;
    start
  in
  (* In exec.ml [is_register_ref] is [not in_memory && data != [||]];
     the interpreter always allocates data, so it reduces to
     [not in_memory] — which also holds with [with_data:false]. *)
  let is_register_ref (r : Reference.t) =
    not (placement_of r.Reference.array).Exec.in_memory
  in
  (* Fast mode: the access events of an expression, in the closure
     interpreter's right-to-left evaluation order ([fa () +. fb ()]
     evaluates [fb] first). *)
  let rec emit_touches (e : Fexpr.t) =
    match e with
    | Fexpr.Ref r ->
      let pl, offset = fold_offset r in
      if pl.Exec.in_memory then begin
        Buf.push code op_touch;
        Buf.push code
          (intern_aff ~shift:5 ~tag:Sink.tag_load ~base:pl.Exec.base offset)
      end
    | Fexpr.Const _ -> ()
    | Fexpr.Neg x -> emit_touches x
    | Fexpr.Bin (_, a, b) ->
      emit_touches b;
      emit_touches a
  in
  (* Compute mode: float stack machine, same evaluation order. *)
  let data_index =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i pl -> Hashtbl.replace tbl pl.Exec.name i) placements;
    fun name -> Hashtbl.find tbl name
  in
  let fexpr_depth = ref 1 in
  let rec emit_fexpr depth (e : Fexpr.t) =
    fexpr_depth := max !fexpr_depth depth;
    match e with
    | Fexpr.Ref r ->
      let pl, offset = fold_offset r in
      if pl.Exec.in_memory then begin
        Buf.push code op_floadh;
        Buf.push code (intern_aff offset);
        Buf.push code (data_index r.Reference.array);
        Buf.push code ((pl.Exec.base lsl 5) lor Sink.tag_load)
      end
      else begin
        Buf.push code op_floadr;
        Buf.push code (intern_aff offset);
        Buf.push code (data_index r.Reference.array)
      end
    | Fexpr.Const c ->
      Buf.push code op_fconst;
      Buf.push code (intern_fconst c)
    | Fexpr.Neg x ->
      emit_fexpr depth x;
      Buf.push code op_fneg
    | Fexpr.Bin (op, a, b) ->
      emit_fexpr depth b;
      emit_fexpr (depth + 1) a;
      Buf.push code
        (match op with
        | Fexpr.Add -> op_fadd
        | Fexpr.Sub -> op_fsub
        | Fexpr.Mul -> op_fmul
        | Fexpr.Div -> op_fdiv)
  in
  let emit_store (lhs : Reference.t) =
    let pl, offset = fold_offset lhs in
    if compute then
      if pl.Exec.in_memory then begin
        Buf.push code op_fstoreh;
        Buf.push code (intern_aff offset);
        Buf.push code (data_index lhs.Reference.array);
        Buf.push code ((pl.Exec.base lsl 5) lor Sink.tag_store)
      end
      else begin
        Buf.push code op_fstorer;
        Buf.push code (intern_aff offset);
        Buf.push code (data_index lhs.Reference.array)
      end
    else if pl.Exec.in_memory then begin
      Buf.push code op_touch;
      Buf.push code
        (intern_aff ~shift:5 ~tag:Sink.tag_store ~base:pl.Exec.base offset)
    end
  in
  (* Iteration marks: slots feeding the folded offsets of the
     in-memory references of an innermost loop body. *)
  let mark_slot_lists = ref [] and n_marks = ref 0 in
  let body_mark_slots body =
    let slots = ref [] in
    List.iter
      (fun r ->
        let pl, offset = fold_offset r in
        if pl.Exec.in_memory then
          List.iter
            (fun (_, x) ->
              match Hashtbl.find_opt slot_of x with
              | Some s when not (List.mem s !slots) -> slots := s :: !slots
              | _ -> ())
            (Aff.terms offset))
      (Stmt.all_refs body);
    Array.of_list (List.sort compare !slots)
  in
  let is_innermost body =
    not (List.exists (function Stmt.Loop _ -> true | _ -> false) body)
  in
  let max_depth = ref 0 in
  let rec emit_stmt depth (s : Stmt.t) =
    match s with
    | Stmt.Assign (lhs, rhs) ->
      let n = Fexpr.flops rhs in
      let is_move =
        n = 0
        &&
        match rhs with
        | Fexpr.Ref r -> is_register_ref r && is_register_ref lhs
        | _ -> false
      in
      if is_move then Buf.push code op_move
      else begin
        Buf.push code op_flops;
        Buf.push code n
      end;
      if compute then emit_fexpr 1 rhs else emit_touches rhs;
      emit_store lhs
    | Stmt.Prefetch r ->
      let pl, offset = fold_offset r in
      if pl.Exec.in_memory then
        if compute then begin
          Buf.push code op_prefh;
          Buf.push code (intern_aff offset);
          Buf.push code ((pl.Exec.base lsl 5) lor Sink.tag_prefetch)
        end
        else begin
          Buf.push code op_touch;
          Buf.push code
            (intern_aff ~shift:5 ~tag:Sink.tag_prefetch ~base:pl.Exec.base
               offset)
        end
    | Stmt.Loop l ->
      max_depth := max !max_depth depth;
      (* The interpreter evaluates [hi] before [lo] at loop entry. *)
      let hi_pc = emit_bexp_prog l.Stmt.hi in
      let lo_pc = emit_bexp_prog l.Stmt.lo in
      let mark_id =
        if marks && is_innermost l.Stmt.body then begin
          mark_slot_lists := body_mark_slots l.Stmt.body :: !mark_slot_lists;
          incr n_marks;
          !n_marks - 1
        end
        else -1
      in
      let loop_pc = Buf.length code in
      Buf.push code op_loop;
      Buf.push code (Hashtbl.find slot_of l.Stmt.var);
      Buf.push code l.Stmt.step;
      Buf.push code lo_pc;
      Buf.push code hi_pc;
      let end_patch = Buf.length code in
      Buf.push code 0;
      Buf.push code mark_id;
      List.iter (emit_stmt (depth + 1)) l.Stmt.body;
      Buf.push code op_end;
      Buf.push code loop_pc;
      (Buf.data code).(end_patch) <- Buf.length code
  in
  List.iter (emit_stmt 1) p.Program.body;
  Buf.push code op_halt;
  let data = Array.of_list (List.map (fun pl -> pl.Exec.data) placements) in
  let masters = Array.map Array.copy data in
  let heap_arrays =
    List.filter_map
      (fun pl ->
        match (Program.find_decl_exn p pl.Exec.name).Decl.storage with
        | Decl.Heap -> Some (pl.Exec.name, data_index pl.Exec.name)
        | Decl.Register -> None)
      placements
  in
  let sub b = Array.sub (Buf.data b) 0 (Buf.length b) in
  {
    code = sub code;
    bcode = sub bcode;
    aconst = sub aconst;
    aoff = sub aoff;
    alen = sub alen;
    aslot = sub aslot;
    acoef = sub acoef;
    fconsts = Array.of_list (List.rev !fconsts);
    data;
    masters;
    heap_arrays;
    spilled;
    mark_slots = Array.of_list (List.rev !mark_slot_lists);
    env = Array.make (max 1 (List.length loop_vars)) 0;
    f_slot = Array.make (max 1 !max_depth) 0;
    f_step = Array.make (max 1 !max_depth) 0;
    f_hi = Array.make (max 1 !max_depth) 0;
    f_body_pc = Array.make (max 1 !max_depth) 0;
    f_mark = Array.make (max 1 !max_depth) 0;
    bstack = Array.make (!bexp_depth + 1) 0;
    fstack = Array.make (!fexpr_depth + 1) 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type run = {
  stats : Exec.stats;
  events : int array;
  n_events : int;
  marks : int array;
  n_marks : int;
  cut_events : int;
  cut_marks : int;
}

let run ?flop_budget ?warm_budget ?events ?marks t =
  let ev = match events with Some b -> Buf.clear b; b | None -> Buf.create () in
  let mk =
    match marks with Some b -> Buf.clear b; b | None -> Buf.create ~capacity:64 ()
  in
  let budget = match flop_budget with None -> max_int | Some b -> b in
  let warm = match warm_budget with None -> max_int | Some w -> w in
  let code = t.code and bcode = t.bcode in
  let aconst = t.aconst
  and aoff = t.aoff
  and alen = t.alen
  and aslot = t.aslot
  and acoef = t.acoef in
  let env = t.env in
  Array.fill env 0 (Array.length env) 0;
  Array.iteri (fun i m -> Array.blit m 0 t.data.(i) 0 (Array.length m)) t.masters;
  let halt_pc = Array.length code - 1 in
  let eval_aff j =
    let o = Array.unsafe_get aoff j in
    match Array.unsafe_get alen j with
    | 0 -> Array.unsafe_get aconst j
    | 1 ->
      Array.unsafe_get aconst j
      + (Array.unsafe_get acoef o * Array.unsafe_get env (Array.unsafe_get aslot o))
    | 2 ->
      Array.unsafe_get aconst j
      + (Array.unsafe_get acoef o * Array.unsafe_get env (Array.unsafe_get aslot o))
      + Array.unsafe_get acoef (o + 1)
        * Array.unsafe_get env (Array.unsafe_get aslot (o + 1))
    | n ->
      let acc = ref (Array.unsafe_get aconst j) in
      for k = o to o + n - 1 do
        acc :=
          !acc
          + (Array.unsafe_get acoef k
            * Array.unsafe_get env (Array.unsafe_get aslot k))
      done;
      !acc
  in
  let bstack = t.bstack in
  let eval_bexp start =
    let pc = ref start and sp = ref 0 in
    let result = ref 0 in
    let running = ref true in
    while !running do
      let op = Array.unsafe_get bcode !pc in
      if op = b_aff then begin
        bstack.(!sp) <- eval_aff bcode.(!pc + 1);
        incr sp;
        pc := !pc + 2
      end
      else if op = b_ret then begin
        result := bstack.(!sp - 1);
        running := false
      end
      else if op = b_floormult then begin
        let k = bcode.(!pc + 1) in
        let v = bstack.(!sp - 1) in
        bstack.(!sp - 1) <-
          k * (if v >= 0 then v / k else -(((-v) + k - 1) / k));
        pc := !pc + 2
      end
      else begin
        let y = bstack.(!sp - 1) and x = bstack.(!sp - 2) in
        bstack.(!sp - 2) <-
          (if op = b_min then min x y else if op = b_max then max x y else x + y);
        decr sp;
        pc := !pc + 1
      end
    done;
    !result
  in
  let f_slot = t.f_slot
  and f_step = t.f_step
  and f_hi = t.f_hi
  and f_body_pc = t.f_body_pc
  and f_mark = t.f_mark in
  let fstack = t.fstack and data = t.data and fconsts = t.fconsts in
  let sp = ref 0 and fsp = ref 0 in
  let flops = ref 0 and iters = ref 0 and moves = ref 0 in
  let completed = ref true in
  let cut_e = ref (-1) and cut_m = ref (-1) in
  let record_mark mark_id =
    Buf.push mk mark_id;
    Buf.push mk ev.Buf.len;
    let slots = t.mark_slots.(mark_id) in
    for i = 0 to Array.length slots - 1 do
      Buf.push mk env.(slots.(i))
    done
  in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let op = Array.unsafe_get code !pc in
    if op = op_touch then begin
      (* Hottest opcode: emit one pre-packed event. *)
      let v = eval_aff (Array.unsafe_get code (!pc + 1)) in
      if ev.Buf.len = Array.length ev.Buf.a then Buf.grow ev;
      Array.unsafe_set ev.Buf.a ev.Buf.len v;
      ev.Buf.len <- ev.Buf.len + 1;
      pc := !pc + 2
    end
    else if op = op_flops then begin
      flops := !flops + Array.unsafe_get code (!pc + 1);
      if !flops > warm && !cut_e = -1 then begin
        cut_e := ev.Buf.len;
        cut_m := mk.Buf.len
      end;
      if !flops > budget then begin
        completed := false;
        pc := halt_pc
      end
      else pc := !pc + 2
    end
    else if op = op_end then begin
      let f = !sp - 1 in
      let slot = Array.unsafe_get f_slot f in
      let i = Array.unsafe_get env slot + Array.unsafe_get f_step f in
      if i <= Array.unsafe_get f_hi f then begin
        Array.unsafe_set env slot i;
        incr iters;
        let m = Array.unsafe_get f_mark f in
        if m >= 0 then record_mark m;
        pc := Array.unsafe_get f_body_pc f
      end
      else begin
        sp := f;
        pc := !pc + 2
      end
    end
    else if op = op_loop then begin
      let hi = eval_bexp code.(!pc + 4) in
      let lo = eval_bexp code.(!pc + 3) in
      if lo > hi then pc := code.(!pc + 5)
      else begin
        let slot = code.(!pc + 1) in
        let f = !sp in
        f_slot.(f) <- slot;
        f_step.(f) <- code.(!pc + 2);
        f_hi.(f) <- hi;
        f_body_pc.(f) <- !pc + 7;
        f_mark.(f) <- code.(!pc + 6);
        sp := f + 1;
        env.(slot) <- lo;
        incr iters;
        let m = code.(!pc + 6) in
        if m >= 0 then record_mark m;
        pc := !pc + 7
      end
    end
    else if op = op_move then begin
      incr moves;
      pc := !pc + 1
    end
    else if op = op_halt then running := false
    else if op = op_floadh then begin
      let o = eval_aff code.(!pc + 1) in
      Buf.push ev (code.(!pc + 3) + (o lsl 5));
      fstack.(!fsp) <- Array.unsafe_get data.(code.(!pc + 2)) o;
      incr fsp;
      pc := !pc + 4
    end
    else if op = op_floadr then begin
      let o = eval_aff code.(!pc + 1) in
      fstack.(!fsp) <- Array.unsafe_get data.(code.(!pc + 2)) o;
      incr fsp;
      pc := !pc + 3
    end
    else if op = op_fstoreh then begin
      let o = eval_aff code.(!pc + 1) in
      Buf.push ev (code.(!pc + 3) + (o lsl 5));
      decr fsp;
      Array.unsafe_set data.(code.(!pc + 2)) o fstack.(!fsp);
      pc := !pc + 4
    end
    else if op = op_fstorer then begin
      let o = eval_aff code.(!pc + 1) in
      decr fsp;
      Array.unsafe_set data.(code.(!pc + 2)) o fstack.(!fsp);
      pc := !pc + 3
    end
    else if op = op_fconst then begin
      fstack.(!fsp) <- fconsts.(code.(!pc + 1));
      incr fsp;
      pc := !pc + 2
    end
    else if op = op_fneg then begin
      fstack.(!fsp - 1) <- -.fstack.(!fsp - 1);
      pc := !pc + 1
    end
    else if op = op_prefh then begin
      let o = eval_aff code.(!pc + 1) in
      Buf.push ev (code.(!pc + 2) + (o lsl 5));
      pc := !pc + 3
    end
    else begin
      (* Binary float op: x (top of stack) is the left operand, as in
         [fa () op fb ()] with right-to-left operand evaluation. *)
      let x = fstack.(!fsp - 1) and y = fstack.(!fsp - 2) in
      fstack.(!fsp - 2) <-
        (if op = op_fadd then x +. y
         else if op = op_fsub then x -. y
         else if op = op_fmul then x *. y
         else x /. y);
      decr fsp;
      pc := !pc + 1
    end
  done;
  if warm_budget <> None && !cut_e = -1 then begin
    cut_e := ev.Buf.len;
    cut_m := mk.Buf.len
  end;
  {
    stats =
      {
        Exec.flops = !flops;
        loop_iterations = !iters;
        register_moves = !moves;
        spilled_scalars = t.spilled;
        completed = !completed;
      };
    events = ev.Buf.a;
    n_events = ev.Buf.len;
    marks = mk.Buf.a;
    n_marks = mk.Buf.len;
    cut_events = !cut_e;
    cut_marks = !cut_m;
  }
