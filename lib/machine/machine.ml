type cache = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_cycles : int;
}

type tlb = { entries : int; page_bytes : int; miss_cycles : int }

type cpu = {
  clock_mhz : float;
  fp_registers : int;
  reserved_registers : int;
  flops_per_cycle : int;
  mem_ports : int;
  loop_overhead_cycles : int;
  prefetch_issue_cycles : int;
}

type t = {
  name : string;
  cpu : cpu;
  caches : cache list;
  tlb : tlb;
  memory_latency_cycles : int;
}

let available_registers m = m.cpu.fp_registers - m.cpu.reserved_registers
let peak_mflops m = m.cpu.clock_mhz *. float_of_int m.cpu.flops_per_cycle
let cache_level m i = List.nth m.caches i
let levels m = List.length m.caches
let cache_capacity_elems m i = (cache_level m i).size_bytes / 8
let line_elems m i = (cache_level m i).line_bytes / 8

let sgi_r10000 =
  {
    name = "SGI R10000";
    cpu =
      {
        clock_mhz = 195.0;
        fp_registers = 32;
        reserved_registers = 0;
        flops_per_cycle = 2;
        mem_ports = 1;
        loop_overhead_cycles = 2;
        prefetch_issue_cycles = 1;
      };
    caches =
      [
        { name = "L1"; size_bytes = 32 * 1024; line_bytes = 32; assoc = 2; hit_cycles = 0 };
        { name = "L2"; size_bytes = 1024 * 1024; line_bytes = 128; assoc = 2; hit_cycles = 10 };
      ];
    tlb = { entries = 64; page_bytes = 16384; miss_cycles = 60 };
    memory_latency_cycles = 90;
  }

let ultrasparc_iie =
  {
    name = "Sun UltraSparc IIe";
    cpu =
      {
        clock_mhz = 500.0;
        fp_registers = 32;
        reserved_registers = 0;
        flops_per_cycle = 2;
        mem_ports = 1;
        loop_overhead_cycles = 2;
        prefetch_issue_cycles = 1;
      };
    caches =
      [
        { name = "L1"; size_bytes = 16 * 1024; line_bytes = 32; assoc = 1; hit_cycles = 0 };
        { name = "L2"; size_bytes = 256 * 1024; line_bytes = 64; assoc = 4; hit_cycles = 12 };
      ];
    tlb = { entries = 64; page_bytes = 8192; miss_cycles = 70 };
    memory_latency_cycles = 140;
  }

let generic_small =
  {
    name = "generic-small";
    cpu =
      {
        clock_mhz = 100.0;
        fp_registers = 16;
        reserved_registers = 0;
        flops_per_cycle = 2;
        mem_ports = 1;
        loop_overhead_cycles = 2;
        prefetch_issue_cycles = 1;
      };
    caches =
      [
        { name = "L1"; size_bytes = 4 * 1024; line_bytes = 32; assoc = 2; hit_cycles = 0 };
        { name = "L2"; size_bytes = 64 * 1024; line_bytes = 64; assoc = 4; hit_cycles = 8 };
      ];
    tlb = { entries = 16; page_bytes = 4096; miss_cycles = 40 };
    memory_latency_cycles = 60;
  }

let sgi_r10000_mini =
  {
    name = "SGI R10000 (1/16 capacity)";
    cpu = sgi_r10000.cpu;
    caches =
      [
        { name = "L1"; size_bytes = 2 * 1024; line_bytes = 32; assoc = 2; hit_cycles = 0 };
        { name = "L2"; size_bytes = 64 * 1024; line_bytes = 128; assoc = 2; hit_cycles = 10 };
      ];
    tlb = { entries = 20; page_bytes = 4096; miss_cycles = 60 };
    memory_latency_cycles = 90;
  }

let modern_3level =
  {
    name = "modern-3level";
    cpu =
      {
        clock_mhz = 1000.0;
        fp_registers = 32;
        reserved_registers = 0;
        flops_per_cycle = 4;
        mem_ports = 2;
        loop_overhead_cycles = 1;
        prefetch_issue_cycles = 1;
      };
    caches =
      [
        { name = "L1"; size_bytes = 32 * 1024; line_bytes = 64; assoc = 8; hit_cycles = 0 };
        { name = "L2"; size_bytes = 256 * 1024; line_bytes = 64; assoc = 8; hit_cycles = 10 };
        { name = "L3"; size_bytes = 8 * 1024 * 1024; line_bytes = 64; assoc = 16; hit_cycles = 30 };
      ];
    tlb = { entries = 64; page_bytes = 4096; miss_cycles = 30 };
    memory_latency_cycles = 200;
  }

let all =
  [ sgi_r10000; ultrasparc_iie; generic_small; sgi_r10000_mini; modern_3level ]

let by_name name =
  let canon s = String.lowercase_ascii s in
  let aliases =
    [
      ("sgi", sgi_r10000);
      ("r10000", sgi_r10000);
      ("sun", ultrasparc_iie);
      ("ultrasparc", ultrasparc_iie);
      ("generic", generic_small);
      ("modern", modern_3level);
      ("3level", modern_3level);
      ("mini", sgi_r10000_mini);
    ]
  in
  match List.find_opt (fun m -> canon m.name = canon name) all with
  | Some m -> Some m
  | None -> List.assoc_opt (canon name) aliases

let pp fmt m =
  Format.fprintf fmt "%s: %.0f MHz, %d FP registers" m.name m.cpu.clock_mhz
    m.cpu.fp_registers;
  List.iter
    (fun (c : cache) ->
      Format.fprintf fmt ", %s %dKB %d-way (%dB lines, %d-cycle hit)" c.name
        (c.size_bytes / 1024) c.assoc c.line_bytes c.hit_cycles)
    m.caches;
  Format.fprintf fmt ", TLB %d entries (%dB pages, %d-cycle miss)"
    m.tlb.entries m.tlb.page_bytes m.tlb.miss_cycles;
  Format.fprintf fmt ", %d-cycle memory latency" m.memory_latency_cycles
