(** Target-architecture descriptions.

    These play the role of the paper's Table 2: per-level capacities,
    associativities and latencies that the compiler models consult and
    that parameterize the memory-hierarchy simulator standing in for the
    real hardware. *)

type cache = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;  (** 1 = direct mapped *)
  hit_cycles : int;  (** additional latency of a hit at this level *)
}

type tlb = {
  entries : int;
  page_bytes : int;
  miss_cycles : int;
}

type cpu = {
  clock_mhz : float;
  fp_registers : int;
  reserved_registers : int;
      (** registers the backend keeps for pipeline/operands; the rest are
          available for scalar replacement *)
  flops_per_cycle : int;  (** peak FP throughput *)
  mem_ports : int;  (** loads/stores issued per cycle *)
  loop_overhead_cycles : int;  (** branch + index update per iteration *)
  prefetch_issue_cycles : int;
}

type t = {
  name : string;
  cpu : cpu;
  caches : cache list;  (** ordered from L1 outward *)
  tlb : tlb;
  memory_latency_cycles : int;  (** miss in the last cache level *)
}

(** Registers available to scalar replacement. *)
val available_registers : t -> int

(** Theoretical peak in MFLOPS. *)
val peak_mflops : t -> float

(** Capacity of cache level [i] (0 = L1) in 8-byte elements. *)
val cache_capacity_elems : t -> int -> int

val cache_level : t -> int -> cache
val levels : t -> int

(** Elements per cache line at level [i]. *)
val line_elems : t -> int -> int

(** The SGI R10000 of the paper: 195 MHz, 32 FP registers, 32 KB 2-way L1
    data cache (32 B lines), 1 MB 2-way unified L2 (128 B lines), 64-entry
    TLB. *)
val sgi_r10000 : t

(** The Sun UltraSparc IIe of the paper: 500 MHz, 32 FP registers, 16 KB
    direct-mapped L1 data cache (32 B lines), 256 KB 4-way unified L2
    (64 B lines), 64-entry TLB. *)
val ultrasparc_iie : t

(** A small generic machine, convenient for fast tests: 4 KB 2-way L1,
    64 KB 4-way L2, 16-entry TLB. *)
val generic_small : t

(** The SGI R10000 with every capacity (caches, TLB reach) scaled down
    16x and latencies/associativities/line sizes preserved.  Used by the
    Table 1 reproduction so that the paper's tile-to-capacity ratios can
    be exercised at problem sizes a sampled simulation covers
    representatively (see DESIGN.md on scaled simulation). *)
val sgi_r10000_mini : t

(** A three-level hierarchy in the style of a 2000s-ated x86 server
    (32KB 8-way L1 / 256KB 8-way L2 / 8MB 16-way L3, 64B lines).  The
    optimizer and the simulator are generic in the number of levels;
    this machine exercises that. *)
val modern_3level : t

(** Look a machine up by (case-insensitive) name or alias: ["sgi"] /
    ["r10000"], ["sun"] / ["ultrasparc"], ["generic"], ["modern"] /
    ["3level"], ["mini"]. *)
val by_name : string -> t option

val all : t list

(** One-line summary: clock, registers, every cache level with its size,
    associativity, line size and hit latency, the TLB with its miss
    penalty, and the memory latency. *)
val pp : Format.formatter -> t -> unit
