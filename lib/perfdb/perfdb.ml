exception Corrupt of string
exception Locked of string

type point = {
  variant : string;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  cycles : float;
  mflops : float;
}

type summary = {
  kernel : string;
  machine : string;
  capacity : float array;
  n : int;
  best : point;
  frontier : point list;
}

(* What actually travels through the file.  Measurement payloads stay
   opaque strings so this library does not depend on [core] (whose
   [Executor.measurement] they marshal). *)
type record =
  | Measurement of {
      key : string;
      kernel : string;
      machine : string;
      n : int;
      payload : string;
    }
  | Summary of summary

type t = {
  path : string;
  measurements : (string, record) Hashtbl.t;  (* key -> Measurement *)
  summaries : (string * string * int, summary) Hashtbl.t;
  mutable out : out_channel option;  (* lazy append channel *)
  mutable lock : Unix.file_descr option;  (* single-writer advisory lock *)
  mutable file_records : int;
  mutable appended : int;
  mutable torn_bytes : int;
  mutable bytes : int;
}

let frontier_width = 8

let magic = "ECO-PERFDB-1\n"

(* ---------- frames ---------- *)
(* Same shape as the PR 4 checkpoint snapshot: length, digest, marshaled
   payload — but repeated, one frame per record, so that concurrent
   appenders interleave at record granularity and a torn tail is
   recognizable as such. *)

let write_frame oc (r : record) =
  let payload = Marshal.to_string r [] in
  Printf.fprintf oc "%08x" (String.length payload);
  output_string oc (Digest.string payload);
  output_string oc payload;
  (* one record = one durable unit: without this, a killed writer loses
     an unbounded suffix instead of at most the in-flight frame *)
  flush oc

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

(* Reads the next frame.  [`Record r] on success, [`Torn n] when the
   remaining [n] bytes cannot hold a complete frame (expected crash
   residue), raises [Corrupt] when a complete frame fails its digest or
   the length header is not even hex (mid-file damage). *)
let read_frame ic total =
  let pos = pos_in ic in
  let remaining = total - pos in
  if remaining = 0 then `End
  else if remaining < 8 + 16 then `Torn remaining
  else begin
    let len_s = really_input_string ic 8 in
    if not (String.for_all is_hex len_s) then
      raise (Corrupt (Printf.sprintf "bad frame header at byte %d" pos));
    let len = int_of_string ("0x" ^ len_s) in
    if remaining < 8 + 16 + len then `Torn remaining
    else begin
      let digest = really_input_string ic 16 in
      let payload = really_input_string ic len in
      if not (String.equal (Digest.string payload) digest) then
        raise (Corrupt (Printf.sprintf "digest mismatch at byte %d" pos));
      match (Marshal.from_string payload 0 : record) with
      | r -> `Record r
      | exception _ ->
          raise (Corrupt (Printf.sprintf "unreadable record at byte %d" pos))
    end
  end

(* ---------- summary normalization & merge ---------- *)

let point_key (p : point) = (p.variant, p.bindings, p.prefetch)

let compare_point a b =
  match compare a.cycles b.cycles with
  | 0 -> compare (point_key a) (point_key b)
  | c -> c

let dedup_keep_first ps =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let k = point_key p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    ps

(* Canonical form: frontier sorted by (cycles, identity), deduped,
   capped, best = head.  Applied both on [add_summary] input and on
   every merge, so a summary read back from disk re-normalizes to
   itself — the keystone of compact ≡ store and reopen ≡ before.

   Selection is variant-diverse rather than a flat top-k: each
   variant's best point is kept before the remaining slots fill in
   global cycle order.  A dominant variant would otherwise crowd out
   every other, and a frontier with only the winner transfers nothing
   when that variant is infeasible at the target problem size (e.g. a
   TLB-bound variant that only exists for small n). *)
let normalize (s : summary) =
  let all = dedup_keep_first (List.sort compare_point (s.best :: s.frontier)) in
  let keep = Hashtbl.create 16 in
  let variants = Hashtbl.create 8 in
  (* pass 1: each variant's best ([all] is sorted, first hit wins) *)
  List.iter
    (fun p ->
      if
        (not (Hashtbl.mem variants p.variant))
        && Hashtbl.length variants < frontier_width
      then begin
        Hashtbl.add variants p.variant ();
        Hashtbl.replace keep (point_key p) ()
      end)
    all;
  (* pass 2: fill the remaining slots with the global best points *)
  List.iter
    (fun p ->
      if
        Hashtbl.length keep < frontier_width
        && not (Hashtbl.mem keep (point_key p))
      then Hashtbl.replace keep (point_key p) ())
    all;
  let frontier = List.filter (fun p -> Hashtbl.mem keep (point_key p)) all in
  match frontier with
  | [] -> s  (* unreachable: best is always present *)
  | best :: _ -> { s with best; frontier }

let merge_summary (a : summary) (b : summary) =
  normalize { b with frontier = a.frontier @ b.frontier }

let summary_key (s : summary) = (s.kernel, s.machine, s.n)

(* The one fold step shared by load, add and compact: later records win
   for measurements (keys are content-addressed so duplicates are
   identical anyway) and merge for summaries. *)
let absorb t = function
  | Measurement m as r -> Hashtbl.replace t.measurements m.key r
  | Summary s ->
      let k = summary_key s in
      let s =
        match Hashtbl.find_opt t.summaries k with
        | None -> normalize s
        | Some prev -> merge_summary prev s
      in
      Hashtbl.replace t.summaries k s

(* ---------- load ---------- *)

(* Single-writer advisory lock, taken on a sidecar [path.lock] file
   (never on the store itself: [compact] renames the store, and a lock
   pinned to a renamed inode would let a later opener "lock" the new
   file while the old holder still appends).  fcntl-style [lockf] locks
   die with the process, so a kill -9 can never leave a stale lock —
   the property the crash-only daemon restart depends on.  The holder's
   pid is written into the file purely for the error message. *)
let lock_path path = path ^ ".lock"

let acquire_lock path =
  let fd =
    Unix.openfile (lock_path path) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () ->
    (try
       ignore (Unix.ftruncate fd 0);
       let pid = Printf.sprintf "%d\n" (Unix.getpid ()) in
       ignore (Unix.write_substring fd pid 0 (String.length pid))
     with Unix.Unix_error _ -> ());
    fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
    Unix.close fd;
    let holder =
      try
        let ic = open_in (lock_path path) in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> String.trim (input_line ic))
      with _ -> ""
    in
    raise
      (Locked
         (Printf.sprintf "%s is locked by another writer%s" path
            (if holder = "" then "" else Printf.sprintf " (pid %s)" holder)))
  | exception e ->
    Unix.close fd;
    raise e

let load ?(lock = false) path =
  let lock_fd = if lock then Some (acquire_lock path) else None in
  let t =
    {
      path;
      measurements = Hashtbl.create 64;
      summaries = Hashtbl.create 16;
      out = None;
      lock = lock_fd;
      file_records = 0;
      appended = 0;
      torn_bytes = 0;
      bytes = 0;
    }
  in
  (* If the file turns out corrupt, release the lock on the way out:
     the caller never sees the handle, so it could never unlock. *)
  let release_on_error f =
    try f ()
    with e ->
      (match lock_fd with Some fd -> (try Unix.close fd with _ -> ()) | None -> ());
      raise e
  in
  if not (Sys.file_exists path) then t
  else release_on_error @@ fun () ->
  begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let total = in_channel_length ic in
        t.bytes <- total;
        if total > 0 then begin
          let mlen = String.length magic in
          if total < mlen then begin
            (* shorter than the magic: a writer died creating the file *)
            t.torn_bytes <- total
          end
          else begin
            let got = really_input_string ic mlen in
            if not (String.equal got magic) then
              raise (Corrupt "bad magic (not a perfdb file)");
            let rec loop () =
              match read_frame ic total with
              | `End -> ()
              | `Torn n -> t.torn_bytes <- n
              | `Record r ->
                  absorb t r;
                  t.file_records <- t.file_records + 1;
                  loop ()
            in
            loop ()
          end
        end);
    (* Repair the torn tail so our own appends start on a frame
       boundary; best effort — a read-only file still loads fine, the
       tail is just re-skipped next time. *)
    if t.torn_bytes > 0 then begin
      (try Unix.truncate path (t.bytes - t.torn_bytes) with _ -> ());
      t.bytes <- t.bytes - t.torn_bytes
    end;
    t
  end

let path t = t.path
let locked t = t.lock <> None

let flush_append t =
  match t.out with
  | None -> ()
  | Some oc ->
      t.out <- None;
      close_out_noerr oc

let close t =
  flush_append t;
  match t.lock with
  | None -> ()
  | Some fd ->
      t.lock <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let append_channel t =
  match t.out with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
          t.path
      in
      (* Decide freshness from the opened descriptor, not the load-time
         snapshot: another handle on the same file may have written the
         magic (and frames) since this store loaded, and a second magic
         mid-file would read as a bad frame. *)
      let size = (Unix.fstat (Unix.descr_of_out_channel oc)).Unix.st_size in
      if size = 0 then begin
        output_string oc magic;
        flush oc
      end;
      t.out <- Some oc;
      oc

let append t r =
  write_frame (append_channel t) r;
  t.appended <- t.appended + 1

(* ---------- measurements ---------- *)

let mem_measurement t ~key = Hashtbl.mem t.measurements key

let find_measurement t ~key =
  match Hashtbl.find_opt t.measurements key with
  | Some (Measurement m) -> Some m.payload
  | _ -> None

let add_measurement t ~key ~kernel ~machine ~n ~payload =
  if Hashtbl.mem t.measurements key then false
  else begin
    let r = Measurement { key; kernel; machine; n; payload } in
    absorb t r;
    append t r;
    true
  end

(* ---------- summaries ---------- *)

let add_summary t s =
  absorb t (Summary s);
  (* append the post-merge record so a pure replay of the file (load,
     compact) reconverges on the in-memory state *)
  let merged = Hashtbl.find t.summaries (summary_key s) in
  append t (Summary merged)

let find_summary t ~kernel ~machine ~n =
  Hashtbl.find_opt t.summaries (kernel, machine, n)

let iter_summaries t f =
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.summaries [] in
  List.iter f (List.sort (fun a b -> compare (summary_key a) (summary_key b)) all)

(* ---------- nearest neighbor ---------- *)

let log2 x = log x /. log 2.0

let capacity_vector (m : Machine.t) =
  let regs = float_of_int (Machine.available_registers m) in
  let caches =
    List.init (Machine.levels m) (fun i ->
        float_of_int (Machine.cache_capacity_elems m i))
  in
  let tlb_reach =
    float_of_int (m.Machine.tlb.Machine.entries * m.Machine.tlb.Machine.page_bytes)
    /. 8.0
  in
  Array.of_list (List.map log2 (regs :: (caches @ [ tlb_reach ])))

(* Pad-with-last comparison: a 2-level hierarchy's missing L3 behaves
   like its L2 (the outermost capacity bounds everything beyond it). *)
let machine_distance a b =
  let la = Array.length a and lb = Array.length b in
  let len = max la lb in
  let get v l i = if i < l then v.(i) else v.(l - 1) in
  let d = ref 0.0 in
  for i = 0 to len - 1 do
    d := !d +. abs_float (get a la i -. get b lb i)
  done;
  !d

let distance ~capacity ~n (s : summary) =
  ( machine_distance capacity s.capacity,
    abs_float (log2 (float_of_int n) -. log2 (float_of_int s.n)) )

let nearest t ~kernel ~capacity ~n =
  let better cand best =
    match best with
    | None -> true
    | Some (bd, bs, b) ->
        let cd, cs, c = cand in
        (* lexicographic (machine, size) distance, then deterministic
           tie-breaks independent of hash-table order *)
        compare (cd, cs, c.n, c.machine) (bd, bs, b.n, b.machine) < 0
  in
  Hashtbl.fold
    (fun _ s acc ->
      if not (String.equal s.kernel kernel) then acc
      else
        let dm, ds = distance ~capacity ~n s in
        if better (dm, ds, s) acc then Some (dm, ds, s) else acc)
    t.summaries None
  |> Option.map (fun (_, _, s) -> s)

(* ---------- maintenance ---------- *)

type stat = {
  file_records : int;
  appended : int;
  measurements : int;
  summaries : int;
  torn_bytes : int;
  bytes : int;
}

let stat (t : t) =
  {
    file_records = t.file_records;
    appended = t.appended;
    measurements = Hashtbl.length t.measurements;
    summaries = Hashtbl.length t.summaries;
    torn_bytes = t.torn_bytes;
    bytes = t.bytes;
  }

let live_records (t : t) =
  let ms = Hashtbl.fold (fun _ r acc -> r :: acc) t.measurements [] in
  let ms =
    List.sort
      (fun a b ->
        match (a, b) with
        | Measurement a, Measurement b -> compare a.key b.key
        | _ -> 0)
      ms
  in
  let ss = Hashtbl.fold (fun _ s acc -> Summary s :: acc) t.summaries [] in
  let ss =
    List.sort
      (fun a b ->
        match (a, b) with
        | Summary a, Summary b -> compare (summary_key a) (summary_key b)
        | _ -> 0)
      ss
  in
  ms @ ss

let compact t =
  flush_append t;
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      List.iter (write_frame oc) (live_records t));
  Sys.rename tmp t.path;
  t.file_records <- Hashtbl.length t.measurements + Hashtbl.length t.summaries;
  t.torn_bytes <- 0;
  t.bytes <- (try (Unix.stat t.path).Unix.st_size with _ -> 0)

(* ---------- export ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_point (p : point) =
  let pairs kvs =
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v) kvs)
  in
  Printf.sprintf
    "{\"variant\": \"%s\", \"bindings\": {%s}, \"prefetch\": {%s}, \
     \"cycles\": %.1f, \"mflops\": %.2f}"
    (json_escape p.variant) (pairs p.bindings) (pairs p.prefetch) p.cycles
    p.mflops

let export (t : t) =
  let b = Buffer.create 4096 in
  let st = stat t in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"file\": \"%s\",\n  \"records\": %d,\n  \"measurements\": %d,\n\
       \  \"summaries\": %d,\n  \"torn_bytes\": %d,\n"
       (json_escape t.path) st.file_records st.measurements st.summaries
       st.torn_bytes);
  let ms =
    List.sort compare
      (Hashtbl.fold
         (fun _ r acc ->
           match r with
           | Measurement m ->
               (m.key, m.kernel, m.machine, m.n, String.length m.payload) :: acc
           | Summary _ -> acc)
         t.measurements [])
  in
  Buffer.add_string b "  \"measurement_index\": [\n";
  List.iteri
    (fun i (key, kernel, machine, n, bytes) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"key\": \"%s\", \"kernel\": \"%s\", \"machine\": \"%s\", \
            \"n\": %d, \"payload_bytes\": %d}%s\n"
           (json_escape key) (json_escape kernel) (json_escape machine) n bytes
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  Buffer.add_string b "  ],\n  \"summaries_index\": [\n";
  let ss = ref [] in
  iter_summaries t (fun s -> ss := s :: !ss);
  let ss = List.rev !ss in
  List.iteri
    (fun i (s : summary) ->
      let caps =
        String.concat ", "
          (Array.to_list (Array.map (Printf.sprintf "%.3f") s.capacity))
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"machine\": \"%s\", \"n\": %d, \
            \"capacity_log2\": [%s],\n     \"best\": %s,\n\
            \     \"frontier\": [%s]}%s\n"
           (json_escape s.kernel) (json_escape s.machine) s.n caps
           (json_point s.best)
           (String.concat ", " (List.map json_point s.frontier))
           (if i = List.length ss - 1 then "" else ",")))
    ss;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
