(** Persistent performance database: an append-only, on-disk store of
    empirical search results, shared across runs (and across concurrent
    writers) — the paper's "empirical results are expensive, reuse
    them" premise made durable.  ATLAS bakes measured tables into
    installs; this is the same move keyed the way the rest of the
    system keys measurements.

    Two record kinds live in one file:

    - {b measurement records} — one aggregated successful measurement,
      keyed by the engine's canonical candidate fingerprint (digested
      together with the measurement context: machine, fault plan,
      protocol).  These are the exact-hit tier: {!Core.Engine} serves a
      request whose key is on record without re-simulating, like a memo
      hit that survives the process.  The payload is the marshaled
      [Executor.measurement], opaque to this module — perfdb sits below
      [core] in the dependency order.
    - {b summary records} — per [(kernel, machine, problem size)]: the
      best point found plus a top-k frontier of runner-up points, with
      the machine's capacity vector.  These feed the nearest-neighbor
      transfer warm-start in [Core.Search].

    {b File format.}  A magic line, then a sequence of frames; each
    frame is an 8-hex-digit payload length, a 16-byte MD5 digest of the
    payload, and the marshaled record.  Appends write one whole frame
    per record and flush, so concurrent appenders interleave at frame
    granularity.  Recovery is crash-only, with the same posture as the
    checkpoint format this reuses: an {e incomplete} frame at the end
    of the file is a torn append (the writer died mid-write) and is
    silently dropped — and the file is truncated back to the last
    complete frame so later appends stay reachable — while a {e
    complete} frame whose digest does not match, or a bad magic, is
    real corruption and raises the typed {!Corrupt}. *)

(** Raised on load when the file is not a valid database: bad magic, a
    mid-file frame whose digest fails, or an unmarshalable record.  A
    merely truncated tail does {e not} raise — that is the expected
    shape of a killed writer. *)
exception Corrupt of string

(** Raised by [load ~lock:true] when another process already holds the
    store's single-writer lock.  The message names the store and, when
    readable, the holder's pid. *)
exception Locked of string

(** One recorded search point: the variant name, its parameter
    bindings and prefetch plan (both in canonical sorted order), and
    the measured objective values. *)
type point = {
  variant : string;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  cycles : float;
  mflops : float;
}

(** Best + frontier for one [(kernel, machine, n)].  [frontier] is
    sorted by ascending cycles, starts with [best], is deduplicated by
    (variant, bindings, prefetch) and capped at {!frontier_width}. *)
type summary = {
  kernel : string;
  machine : string;
  capacity : float array;  (** {!capacity_vector} of the machine *)
  n : int;
  best : point;
  frontier : point list;
}

type t

(** Frontier points kept per summary (8). *)
val frontier_width : int

(** [load file] opens (or, for a missing file, creates an empty store
    bound to) [file] and folds every complete frame into memory.

    [lock] (default false) additionally takes a single-writer advisory
    lock on a sidecar [file.lock], held for the life of the process:
    long-lived writers (the autotuning daemon, [eco tune --db]) use it
    so two of them cannot interleave appends into one store.  The lock
    is an OS-level [lockf] record lock, so a killed holder releases it
    automatically — no stale-lock recovery needed.  Plain readers and
    the concurrent-append property tests open without it.

    @raise Corrupt on real corruption (see above).
    @raise Locked when [lock] is set and another process holds the
    store's lock. *)
val load : ?lock:bool -> string -> t

val path : t -> string

(** Was this handle opened with [~lock:true]? *)
val locked : t -> bool

(** Flush and close the append channel (appends reopen it lazily) and
    release the writer lock, if this handle holds it. *)
val close : t -> unit

(** {2 Measurement records (exact-hit tier)} *)

val mem_measurement : t -> key:string -> bool
val find_measurement : t -> key:string -> string option

(** Append one aggregated successful measurement unless [key] is
    already present (in this process's view); returns whether a record
    was written.  The dedup makes re-runs and checkpoint resumes
    idempotent: replaying a prefix of the search never double-appends. *)
val add_measurement :
  t -> key:string -> kernel:string -> machine:string -> n:int ->
  payload:string -> bool

(** {2 Summary records (transfer tier)} *)

(** Merge a summary into the store (union of frontiers per
    [(kernel, machine, n)], re-sorted, deduplicated, capped) and append
    the merged record. *)
val add_summary : t -> summary -> unit

val find_summary : t -> kernel:string -> machine:string -> n:int -> summary option
val iter_summaries : t -> (summary -> unit) -> unit

(** {2 Nearest-neighbor lookup}

    The distance between a query [(capacity, n)] and a summary is the
    lexicographic pair (machine distance, size distance):

    - {e machine distance} = sum over components of |a_i - b_i| between
      the two capacity vectors, whose entries are log2 of: available
      registers, each cache level's capacity in elements (L1 outward),
      and the TLB reach in elements.  Vectors of different depths are
      compared by repeating the last (outermost) entry — a 2-level
      hierarchy's "L3" is its L2.
    - {e size distance} = |log2 n - log2 n'|.

    Ties break towards the smaller recorded [n], then the
    lexicographically smaller machine name — fully deterministic and
    independent of record order. *)

val capacity_vector : Machine.t -> float array
val machine_distance : float array -> float array -> float

(** [distance ~capacity ~n s] is the (machine, size) distance pair. *)
val distance : capacity:float array -> n:int -> summary -> float * float

(** Closest summary for [kernel] under the metric above; [None] when
    the store has no summary for that kernel. *)
val nearest : t -> kernel:string -> capacity:float array -> n:int -> summary option

(** {2 Maintenance} *)

type stat = {
  file_records : int;  (** complete frames read at {!load} *)
  appended : int;  (** records appended through this handle *)
  measurements : int;  (** distinct measurement keys *)
  summaries : int;  (** distinct (kernel, machine, n) summaries *)
  torn_bytes : int;  (** truncated-tail bytes dropped at {!load} *)
  bytes : int;  (** file size at load *)
}

val stat : t -> stat

(** Rewrite the file as one frame per live record (measurements first,
    then merged summaries, both in sorted key order): drops superseded
    summary revisions and any interleaving noise.  Atomic
    (write-to-temp then rename), like the checkpoint writer.  Loading a
    compacted file yields the same store. *)
val compact : t -> unit

(** The store as a JSON document (stats + summaries; measurement
    payloads are listed by key and size, not decoded). *)
val export : t -> string
