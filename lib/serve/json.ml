type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest float form that round-trips; integral floats keep a ".0" so
   they stay floats on re-parse.  Non-finite floats have no JSON
   spelling — they surface as null. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string b (float_str f)
    else Buffer.add_string b "null"
  | String s -> escape b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ---------- parsing ---------- *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at position %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string"
    else
      match st.src.[st.pos] with
      | '"' -> st.pos <- st.pos + 1
      | '\\' ->
        st.pos <- st.pos + 1;
        (if st.pos >= String.length st.src then fail st "unterminated escape"
         else
           match st.src.[st.pos] with
           | '"' -> Buffer.add_char b '"'; st.pos <- st.pos + 1
           | '\\' -> Buffer.add_char b '\\'; st.pos <- st.pos + 1
           | '/' -> Buffer.add_char b '/'; st.pos <- st.pos + 1
           | 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1
           | 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1
           | 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1
           | 'b' -> Buffer.add_char b '\b'; st.pos <- st.pos + 1
           | 'f' -> Buffer.add_char b '\012'; st.pos <- st.pos + 1
           | 'u' ->
             if st.pos + 4 >= String.length st.src then fail st "bad \\u escape";
             let hex = String.sub st.src (st.pos + 1) 4 in
             let code =
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> fail st "bad \\u escape"
             in
             (* UTF-8 encode the code point (basic plane only — enough
                for the protocol's escaped control characters) *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
             end;
             st.pos <- st.pos + 5
           | c -> fail st (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let mem name v = Option.value (member name v) ~default:Null
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list = function List xs -> xs | _ -> []
