(** Minimal JSON for the autotuning service's newline-delimited
    JSON-RPC protocol.  Self-contained on purpose: the toolchain is
    frozen (no external JSON dependency), and the daemon needs exactly
    parse + print + a few typed accessors.

    Printing is canonical and single-line — no newlines ever appear
    inside a value, so one value per line IS the framing.  Integers
    round-trip as integers; floats print with enough digits to
    round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Parse one JSON value (leading/trailing whitespace allowed).
    @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(** Canonical single-line rendering. *)
val to_string : t -> string

(** {2 Accessors} — total, [None]/default on shape mismatch. *)

(** Field of an object ([None] for missing field or non-object). *)
val member : string -> t -> t option

(** [mem name obj] = the field, or [Null]. *)
val mem : string -> t -> t

val to_int_opt : t -> int option

(** Accepts both [Int] and integral [Float]. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list : t -> t list
