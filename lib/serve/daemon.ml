(* The autotuning service.  One coordinating domain interleaves every
   live tuning session cooperatively: a session's search suspends (via
   the [Yield] effect, performed from the engine's batch-boundary hook)
   and is resumed round-robin, so all sessions share each measurement
   context's engine — memo table, demand-trace cache and database tier
   included.  A second domain does nothing but read stdin lines into a
   queue, which the coordinator drains both between slices and from the
   engine poll hook, so cancels and new requests are admitted even
   while a search is running. *)

module Engine = Core.Engine
module Eco = Core.Eco
module Search = Core.Search
module Search_log = Core.Search_log
module Objective = Core.Objective
module Executor = Core.Executor
module Unix_time = Core.Unix_time

type config = {
  machine : Machine.t;
  jobs : int;
  db_file : string option;
  warm_start : bool;
  checkpoint_dir : string;
  checkpoint_every : int;
  max_live : int;
  max_queue : int;
  default_deadline_s : float;
  watchdog_s : float;
  watchdog_retries : int;
  watchdog_backoff_s : float;
  progress_every_s : float;
  service_faults : Faults.Service.t;
}

let default_config =
  {
    machine = Machine.sgi_r10000;
    jobs = 1;
    db_file = None;
    warm_start = false;
    checkpoint_dir = ".eco-serve";
    checkpoint_every = 16;
    max_live = 2;
    max_queue = 8;
    default_deadline_s = 0.0;
    watchdog_s = 0.0;
    watchdog_retries = 2;
    watchdog_backoff_s = 0.05;
    progress_every_s = 0.25;
    service_faults = Faults.Service.none;
  }

let kernels =
  [
    ("matmul", Kernels.Matmul.kernel);
    ("jacobi3d", Kernels.Jacobi3d.kernel);
    ("matvec", Kernels.Matvec.kernel);
    ("stencil2d", Kernels.Stencil2d.kernel);
    ("wavefront", Kernels.Wavefront.kernel);
  ]

(* Mirrors [eco tune]'s checkpoint tag for the service's fixed knobs
   (fast path, no measurement faults, default protocol), so a daemon
   checkpoint is verified against exactly the configuration that must
   reproduce its answer. *)
let session_tag cfg ~kernel ~n ~machine ~budget ~objective ~prefilter =
  Printf.sprintf
    "tune|m=%s|k=%s|n=%d|b=%d|path=fast|faults=none|trials=1|retries=2|obj=%s|pf=%s|db=%s|sample=off|batch=on|incr=off|confirm=adaptive"
    machine.Machine.name kernel n budget
    (Objective.to_string objective)
    (match prefilter with Some k -> string_of_int k | None -> "off")
    (match cfg.db_file with
    | None -> "off"
    | Some _ -> if cfg.warm_start then "warm" else "exact")

(* ---------- requests and sessions ---------- *)

type request = {
  kernel_name : string;
  kernel : Kernels.Kernel.t;
  n : int;
  rmachine : Machine.t;
  budget : int;
  objective : Objective.t;
  prefilter : int option;
  deadline_s : float;  (* <= 0 = none *)
  cycle_budget : float;  (* <= 0 = none *)
}

type session = {
  sid : int;
  rpc_id : Json.t;
  key : string;  (* rendered rpc_id: the cancel-lookup key *)
  name : string;  (* "s<sid>": the fault-plan stream key *)
  req : request;
  engine : Engine.t;
  log : Search_log.t;
  tag : string;
  ck_file : string;
  req_file : string;
  recovered : bool;
  deadline : float;  (* absolute; [infinity] = none *)
  mutable resumed_from : int;
  mutable cancelled : bool;
  mutable batches : int;
  mutable stalls : int;
  mutable batch_started : float;
  mutable last_progress : float;
  mutable events : int;
  mutable client_gone : bool;
  mutable finished : bool;
}

type outcome =
  | Done
  | Suspended of (unit, outcome) Effect.Deep.continuation

type runnable =
  | Start of session
  | Resume of session * (unit, outcome) Effect.Deep.continuation

type daemon = {
  cfg : config;
  oc : out_channel;
  mutable out_dead : bool;
  inbox : string Queue.t;
  inbox_m : Mutex.t;
  inbox_c : Condition.t;
  mutable reader_done : bool;
  engines : (string, Engine.t) Hashtbl.t;
  mutable db : Perfdb.t option;
  mutable db_degraded : string option;
  sessions : (string, session) Hashtbl.t;
  ready : runnable Queue.t;
  waiting : session Queue.t;
  mutable live : int;
  mutable current : session option;
  mutable total_batches : int;
  mutable next_sid : int;
  mutable shutting_down : bool;
}

type _ Effect.t += Yield : unit Effect.t

exception Cancelled
exception Quarantined_session of string
exception Cycle_budget_exceeded

(* ---------- output ---------- *)

let emit d v =
  if not d.out_dead then (
    try
      output_string d.oc (Json.to_string v);
      output_char d.oc '\n';
      flush d.oc
    with Sys_error _ -> d.out_dead <- true)

let notification meth params =
  Json.Obj [ ("method", Json.String meth); ("params", Json.Obj params) ]

let respond_result d id fields =
  emit d (Json.Obj [ ("id", id); ("result", Json.Obj fields) ])

let respond_error d id (e : Errors.t) =
  emit d (Json.Obj [ ("id", id); ("error", Errors.to_json e) ])

(* ---------- small helpers ---------- *)

let bindings_str bs =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) bs)

let session_cycles s =
  List.fold_left
    (fun acc (e : Search_log.entry) -> acc +. e.Search_log.cycles)
    0.0 (Search_log.entries s.log)

let remove_quietly file = try Sys.remove file with Sys_error _ -> ()

let db_state d =
  let engine_degraded =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with Some _ -> acc | None -> Engine.db_degraded e)
      d.engines None
  in
  (match (d.db_degraded, engine_degraded) with
  | None, Some r -> d.db_degraded <- Some r
  | _ -> ());
  match d.db_degraded with
  | Some reason -> ("degraded", Some reason)
  | None -> if d.db = None then ("off", None) else ("ok", None)

let db_state_json d =
  let state, reason = db_state d in
  ("db", Json.String state)
  ::
  (match reason with
  | Some r -> [ ("db_reason", Json.String r) ]
  | None -> [])

let telemetry_json s =
  [
    ("fresh", Json.Int (Search_log.fresh s.log));
    ("hits", Json.Int (Search_log.hits s.log));
    ("db_hits", Json.Int (Search_log.db_hits s.log));
    ("pruned", Json.Int (Search_log.pruned s.log));
    ("failed", Json.Int (Search_log.failed s.log));
    ( "quarantined",
      Json.Int (Engine.stats s.engine).Engine.failed_quarantined );
    ("seconds", Json.Float (Search_log.seconds s.log));
    ("batches", Json.Int s.batches);
    ("resumed", Json.Bool (s.resumed_from > 0));
  ]

let best_json s =
  match Search_log.best s.log with
  | None -> []
  | Some (e : Search_log.entry) ->
    [
      ("best_variant", Json.String e.Search_log.variant);
      ("parameters", Json.String (bindings_str e.Search_log.bindings));
      ( "prefetch",
        Json.String
          (if e.Search_log.prefetch = [] then "(none)"
           else bindings_str e.Search_log.prefetch) );
      ("mflops", Json.Float e.Search_log.mflops);
      ("performance", Json.String (Printf.sprintf "%.1f" e.Search_log.mflops));
      ("cycles", Json.Float e.Search_log.cycles);
    ]

let ident_json s =
  [
    ("session", s.rpc_id);
    ("sid", Json.Int s.sid);
    ("kernel", Json.String s.req.kernel_name);
    ("n", Json.Int s.req.n);
    ("machine", Json.String s.req.rmachine.Machine.name);
  ]

(* ---------- session finalization ---------- *)

(* A finished session removes its request file only after the answer is
   on the wire: a crash in between replays the request on restart
   (at-least-once), which is the crash-only contract. *)
let finish_common d s result_fields =
  s.finished <- true;
  if s.client_gone then
    emit d
      (notification "session_dropped"
         (ident_json s @ [ ("reason", Json.String "client_disconnected") ]))
  else if s.recovered then
    emit d (notification "recovered" (ident_json s @ result_fields))
  else respond_result d s.rpc_id (ident_json s @ result_fields);
  remove_quietly s.req_file

let finish_ok d s (r : Eco.result) =
  Engine.checkpoint_now s.engine;
  let o = r.Eco.outcome in
  let m = r.Eco.measurement in
  finish_common d s
    ([
       ("status", Json.String "ok");
       ("best_variant", Json.String o.Search.variant.Core.Variant.name);
       ("parameters", Json.String (bindings_str o.Search.bindings));
       ( "prefetch",
         Json.String
           (if o.Search.prefetch = [] then "(none)"
            else bindings_str o.Search.prefetch) );
       ("mflops", Json.Float m.Executor.mflops);
       ( "performance",
         Json.String (Printf.sprintf "%.1f" m.Executor.mflops) );
       ("cycles", Json.Float (Executor.cycles m));
     ]
    @ telemetry_json s @ db_state_json d);
  (* a complete answer needs no resume state *)
  remove_quietly s.ck_file

let finish_partial d s ~status ~reason =
  (* persist the resumable cursor before reporting: re-submitting the
     same request (or restarting the daemon) resumes from here *)
  Engine.checkpoint_now s.engine;
  finish_common d s
    ([ ("status", Json.String status); ("reason", Json.String reason) ]
    @ best_json s @ telemetry_json s
    @ [ ("checkpoint", Json.String s.ck_file) ]
    @ db_state_json d)

let finish_error d s (e : Errors.t) =
  s.finished <- true;
  if not s.client_gone then
    emit d (Json.Obj [ ("id", s.rpc_id); ("error", Errors.to_json e) ]);
  remove_quietly s.req_file

(* ---------- request parsing ---------- *)

let parse_request cfg params =
  let str k = Json.to_string_opt (Json.mem k params) in
  let int k = Json.to_int_opt (Json.mem k params) in
  let flt k = Json.to_float_opt (Json.mem k params) in
  let bad msg = Error (Errors.make ~code:"bad_request" msg) in
  match str "kernel" with
  | None -> bad "params.kernel is required"
  | Some kname -> (
    match List.assoc_opt kname kernels with
    | None ->
      bad
        (Printf.sprintf "unknown kernel %s (have: %s)" kname
           (String.concat ", " (List.map fst kernels)))
    | Some kernel -> (
      let n = Option.value (int "n") ~default:256 in
      if n < 2 then bad "params.n must be at least 2"
      else
        match
          match str "machine" with
          | None -> Ok cfg.machine
          | Some name -> (
            match Machine.by_name name with
            | Some m -> Ok m
            | None -> bad (Printf.sprintf "unknown machine %s" name))
        with
        | Error e -> Error e
        | Ok rmachine ->
          let budget = Option.value (int "budget") ~default:400_000 in
          (match
             match str "objective" with
             | None -> Ok Objective.Cycles
             | Some o -> (
               match Objective.of_string o with
               | Some o -> Ok o
               | None -> bad (Printf.sprintf "unknown objective %s" o))
           with
          | Error e -> Error e
          | Ok objective ->
            let prefilter =
              match int "prefilter" with Some k when k >= 1 -> Some k | _ -> None
            in
            let deadline_s =
              match flt "deadline_s" with
              | Some v when v > 0.0 -> v
              | _ -> cfg.default_deadline_s
            in
            let cycle_budget =
              match flt "cycle_budget" with Some v when v > 0.0 -> v | _ -> 0.0
            in
            Ok
              {
                kernel_name = kname;
                kernel;
                n;
                rmachine;
                budget;
                objective;
                prefilter;
                deadline_s;
                cycle_budget;
              })))

let request_json rpc_id req =
  Json.Obj
    [
      ("id", rpc_id);
      ( "params",
        Json.Obj
          ([
             ("kernel", Json.String req.kernel_name);
             ("n", Json.Int req.n);
             ("machine", Json.String req.rmachine.Machine.name);
             ("budget", Json.Int req.budget);
             ("objective", Json.String (Objective.to_string req.objective));
           ]
          @ (match req.prefilter with
            | Some k -> [ ("prefilter", Json.Int k) ]
            | None -> [])
          @ (if req.deadline_s > 0.0 then
               [ ("deadline_s", Json.Float req.deadline_s) ]
             else [])
          @
          if req.cycle_budget > 0.0 then
            [ ("cycle_budget", Json.Float req.cycle_budget) ]
          else []) );
    ]

let write_request_file s =
  let tmp = s.req_file ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (request_json s.rpc_id s.req));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp s.req_file

(* ---------- inbox ---------- *)

let inbox_pop d =
  Mutex.lock d.inbox_m;
  let v = if Queue.is_empty d.inbox then None else Some (Queue.pop d.inbox) in
  Mutex.unlock d.inbox_m;
  v

let inbox_wait d =
  Mutex.lock d.inbox_m;
  while Queue.is_empty d.inbox && not d.reader_done do
    Condition.wait d.inbox_c d.inbox_m
  done;
  Mutex.unlock d.inbox_m

let reader_loop d ic =
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         Mutex.lock d.inbox_m;
         Queue.push line d.inbox;
         Condition.signal d.inbox_c;
         Mutex.unlock d.inbox_m
       end
     done
   with End_of_file | Sys_error _ -> ());
  Mutex.lock d.inbox_m;
  d.reader_done <- true;
  Condition.broadcast d.inbox_c;
  Mutex.unlock d.inbox_m

(* ---------- the coordinator ---------- *)

let cancel_all d =
  Hashtbl.iter (fun _ s -> if not s.finished then s.cancelled <- true) d.sessions

let status_json d =
  let fresh, hits, db_hits =
    Hashtbl.fold
      (fun _ e (f, h, dbh) ->
        let s = Engine.stats e in
        (f + s.Engine.fresh, h + s.Engine.hits, dbh + s.Engine.db_hits))
      d.engines (0, 0, 0)
  in
  [
    ("live", Json.Int d.live);
    ("queued", Json.Int (Queue.length d.waiting));
    ("sessions", Json.Int (d.next_sid - 1));
    ("engines", Json.Int (Hashtbl.length d.engines));
    ("fresh", Json.Int fresh);
    ("hits", Json.Int hits);
    ("db_hits", Json.Int db_hits);
    ("shutting_down", Json.Bool d.shutting_down);
  ]
  @ db_state_json d

let rec drain d =
  match inbox_pop d with
  | Some line ->
    process_line d line;
    drain d
  | None -> ()

and process_line d line =
  match Json.of_string line with
  | exception Json.Parse_error msg ->
    respond_error d Json.Null
      (Errors.make ~code:"bad_request" ("invalid JSON: " ^ msg))
  | j -> (
    let id = Json.mem "id" j in
    match Json.to_string_opt (Json.mem "method" j) with
    | Some "tune" -> (
      match parse_request d.cfg (Json.mem "params" j) with
      | Ok req -> ignore (admit d ~rpc_id:id ~recovered:false req)
      | Error e -> respond_error d id e)
    | Some "cancel" ->
      let target = Json.mem "session" (Json.mem "params" j) in
      let key = Json.to_string target in
      let hit =
        match Hashtbl.find_opt d.sessions key with
        | Some s when not s.finished ->
          s.cancelled <- true;
          true
        | _ -> false
      in
      respond_result d id
        [ ("session", target); ("cancelled", Json.Bool hit) ]
    | Some "status" -> respond_result d id (status_json d)
    | Some "shutdown" ->
      respond_result d id [ ("ok", Json.Bool true) ];
      d.shutting_down <- true;
      cancel_all d
    | Some m ->
      respond_error d id (Errors.make ~code:"bad_request" ("unknown method " ^ m))
    | None ->
      respond_error d id (Errors.make ~code:"bad_request" "missing method"))

and admit d ~rpc_id ~recovered req =
  let key = Json.to_string rpc_id in
  let duplicate =
    match Hashtbl.find_opt d.sessions key with
    | Some s -> not s.finished
    | None -> false
  in
  if duplicate then begin
    respond_error d rpc_id
      (Errors.make ~code:"bad_request" "a live session already uses this id");
    None
  end
  else if d.shutting_down then begin
    respond_error d rpc_id
      (Errors.make ~code:"shutdown" "daemon is shutting down");
    None
  end
  else if
    (* replayed requests were admitted by a previous incarnation: they
       never bounce off admission control again *)
    (not recovered)
    && d.live >= d.cfg.max_live
    && Queue.length d.waiting >= d.cfg.max_queue
  then begin
    respond_error d rpc_id
      (Errors.busy ~retry_after_s:1.0
         (Printf.sprintf "%d live and %d queued sessions: admission full"
            d.live (Queue.length d.waiting)));
    None
  end
  else begin
    let s = create_session d ~rpc_id ~recovered req in
    Hashtbl.replace d.sessions key s;
    write_request_file s;
    let queued = d.live >= d.cfg.max_live in
    if queued then Queue.push s d.waiting
    else begin
      d.live <- d.live + 1;
      Queue.push (Start s) d.ready
    end;
    emit d
      (notification "accepted"
         (ident_json s
         @ [
             ("queued", Json.Bool queued);
             ("position", Json.Int (Queue.length d.waiting));
             ("recovered", Json.Bool recovered);
           ]));
    Some s
  end

and create_session d ~rpc_id ~recovered req =
  let sid = d.next_sid in
  d.next_sid <- sid + 1;
  let engine = engine_for d req in
  let tag =
    session_tag d.cfg ~kernel:req.kernel_name ~n:req.n ~machine:req.rmachine
      ~budget:req.budget ~objective:req.objective ~prefilter:req.prefilter
  in
  let base =
    Filename.concat d.cfg.checkpoint_dir
      ("session-" ^ Digest.to_hex (Digest.string tag))
  in
  let s =
    {
      sid;
      rpc_id;
      key = Json.to_string rpc_id;
      name = "s" ^ string_of_int sid;
      req;
      engine;
      log = Search_log.create ();
      tag;
      ck_file = base ^ ".ck";
      req_file = base ^ ".req";
      recovered;
      deadline =
        (if req.deadline_s > 0.0 then Unix_time.now () +. req.deadline_s
         else infinity);
      resumed_from = 0;
      cancelled = false;
      batches = 0;
      stalls = 0;
      batch_started = 0.0;
      last_progress = Unix_time.now ();
      events = 0;
      client_gone = false;
      finished = false;
    }
  in
  (* Resume a prior incarnation's checkpoint only into an engine with no
     state yet (i.e. right after a restart): mid-service, the shared
     memo already holds everything a cancelled session measured, so the
     replay is served from memory without touching the file. *)
  let st = Engine.stats engine in
  (if st.Engine.fresh = 0 && st.Engine.hits = 0 then
     match Engine.load_checkpoint engine ~tag s.ck_file with
     | Some r -> s.resumed_from <- r.Engine.resumed_entries
     | None -> ()
     | exception Engine.Checkpoint_mismatch _ -> ());
  s

and engine_for d req =
  let key =
    Printf.sprintf "%s|%s|%s" req.rmachine.Machine.name
      (Objective.to_string req.objective)
      (match req.prefilter with Some k -> string_of_int k | None -> "off")
  in
  match Hashtbl.find_opt d.engines key with
  | Some e -> e
  | None ->
    let e =
      Engine.create ~jobs:d.cfg.jobs ~objective:req.objective
        ?prefilter:req.prefilter req.rmachine
    in
    (match d.db with
    | Some db -> Engine.set_db e ~warm_start:d.cfg.warm_start db
    | None -> ());
    Engine.set_poll e (Some (fun () -> poll d));
    Engine.set_yield e (Some (fun () -> yield d));
    Hashtbl.add d.engines key e;
    e

(* The poll hook: runs before/after every evaluation of the current
   session.  Drains the inbox (so a cancel aimed at us lands), then
   raises the session's cooperative aborts. *)
and poll d =
  drain d;
  match d.current with
  | None -> ()
  | Some s ->
    if s.cancelled then raise Cancelled;
    if s.req.cycle_budget > 0.0 && session_cycles s > s.req.cycle_budget then
      raise Cycle_budget_exceeded;
    let now = Unix_time.now () in
    if now -. s.last_progress >= d.cfg.progress_every_s then begin
      s.last_progress <- now;
      progress d s;
      (* a simulated client disconnect cancels on the spot *)
      if s.cancelled then raise Cancelled
    end

(* The batch-boundary hook: watchdog, fault injection, and the one
   point where the whole search suspends so other sessions run. *)
and yield d =
  match d.current with
  | None -> ()
  | Some s ->
    s.batches <- s.batches + 1;
    d.total_batches <- d.total_batches + 1;
    (match d.cfg.service_faults.Faults.Service.kill_after with
    | Some k when d.total_batches >= k ->
      (* simulated SIGKILL: no cleanup, no flush, no final checkpoint *)
      Unix._exit 9
    | _ -> ());
    (if d.cfg.watchdog_s > 0.0 && s.batch_started > 0.0 then
       let elapsed = Unix_time.now () -. s.batch_started in
       if elapsed > d.cfg.watchdog_s then begin
         s.stalls <- s.stalls + 1;
         if s.stalls > d.cfg.watchdog_retries then
           raise
             (Quarantined_session
                (Printf.sprintf
                   "measurement batches stalled %d times (watchdog %.3gs, \
                    last batch %.3gs)"
                   s.stalls d.cfg.watchdog_s elapsed));
         (* retry the substrate after an exponential backoff *)
         Unix.sleepf
           (d.cfg.watchdog_backoff_s *. (2.0 ** float_of_int (s.stalls - 1)))
       end);
    Effect.perform Yield;
    (* resumed: a new batch begins on our slice *)
    s.batch_started <- Unix_time.now ();
    if
      Faults.Service.hangs d.cfg.service_faults ~session:s.name
        ~batch:s.batches
    then Unix.sleepf d.cfg.service_faults.Faults.Service.hang_s

and progress d s =
  s.events <- s.events + 1;
  if
    Faults.Service.disconnects d.cfg.service_faults ~session:s.name
      ~event:s.events
  then begin
    s.client_gone <- true;
    s.cancelled <- true
  end
  else
    emit d
      (notification "progress"
         (ident_json s
         @ [ ("phase", Json.String "searching") ]
         @ best_json s @ telemetry_json s))

(* ---------- scheduling ---------- *)

let scheduler =
  {
    Effect.Deep.retc = (fun () -> Done);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (a, outcome) Effect.Deep.continuation) -> Suspended k)
        | _ -> None);
  }

let run_session d s () =
  (try
     let mode =
       if s.req.budget <= 0 then Executor.Full else Executor.Budget s.req.budget
     in
     let r = Eco.optimize_with ~mode ~log:s.log s.engine s.req.kernel ~n:s.req.n in
     finish_ok d s r
   with
  | Cancelled -> finish_partial d s ~status:"cancelled" ~reason:"cancelled"
  | Engine.Deadline_exceeded ->
    finish_partial d s ~status:"timeout"
      ~reason:(Printf.sprintf "deadline of %.3gs exceeded" s.req.deadline_s)
  | Cycle_budget_exceeded ->
    finish_partial d s ~status:"cycle_budget"
      ~reason:
        (Printf.sprintf "simulated-cycle budget of %.3g exhausted"
           s.req.cycle_budget)
  | Quarantined_session why -> finish_partial d s ~status:"quarantined" ~reason:why
  | Eco.No_feasible_variant { kernel; n; per_variant } ->
    finish_error d s (Errors.no_feasible_variant ~kernel ~n per_variant)
  | e ->
    finish_error d s
      (Errors.make ~code:"internal" (Printexc.to_string e)));
  ()

let bind d s =
  d.current <- Some s;
  Engine.set_checkpoint s.engine ~every:d.cfg.checkpoint_every ~tag:s.tag
    s.ck_file;
  Engine.set_deadline s.engine
    (if s.deadline = infinity then None else Some s.deadline)

let unbind d s =
  d.current <- None;
  Engine.set_deadline s.engine None

let promote d =
  while d.live < d.cfg.max_live && not (Queue.is_empty d.waiting) do
    let s = Queue.pop d.waiting in
    d.live <- d.live + 1;
    Queue.push (Start s) d.ready
  done

let settle d s = function
  | Suspended k ->
    unbind d s;
    Queue.push (Resume (s, k)) d.ready
  | Done ->
    unbind d s;
    d.live <- d.live - 1;
    ignore (db_state d);
    promote d

let step d = function
  | Start s ->
    if s.cancelled then begin
      (* cancelled while still queued: nothing ran, nothing to persist *)
      s.finished <- true;
      if not s.client_gone then
        respond_result d s.rpc_id
          (ident_json s
          @ [
              ("status", Json.String "cancelled");
              ("reason", Json.String "cancelled before start");
            ]);
      remove_quietly s.req_file;
      d.live <- d.live - 1;
      promote d
    end
    else begin
      bind d s;
      s.batch_started <- Unix_time.now ();
      settle d s (Effect.Deep.match_with (run_session d s) () scheduler)
    end
  | Resume (s, k) ->
    bind d s;
    let outcome =
      if s.cancelled then Effect.Deep.discontinue k Cancelled
      else Effect.Deep.continue k ()
    in
    settle d s outcome

(* Stdin closing means "no more requests": outstanding sessions drain
   to completion, then the daemon exits.  Only an explicit [shutdown]
   request cancels work in flight. *)
let rec loop d =
  drain d;
  if not (Queue.is_empty d.ready) then begin
    step d (Queue.pop d.ready);
    loop d
  end
  else if d.live > 0 then begin
    (* unreachable: a live session is always current or in [ready] *)
    Unix.sleepf 0.01;
    loop d
  end
  else if d.shutting_down || d.reader_done then ()
  else begin
    inbox_wait d;
    loop d
  end

(* ---------- startup ---------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let open_db d =
  match d.cfg.db_file with
  | None -> ()
  | Some file -> (
    match Perfdb.load ~lock:true file with
    | db -> d.db <- Some db
    | exception Perfdb.Locked msg ->
      (* a second writer is a deployment error, not a degraded mode *)
      emit d
        (Json.Obj
           [
             ("id", Json.Null);
             ( "error",
               Errors.to_json
                 (Errors.make ~code:"db_locked"
                    ~data:[ ("path", Json.String file) ]
                    msg) );
           ]);
      prerr_endline ("eco serve: " ^ msg);
      exit 1
    | exception Perfdb.Corrupt msg ->
      (* crash-only: a torn store degrades the persistence tier, it
         does not take the service down *)
      d.db_degraded <- Some msg)

(* Replay every request file a dead incarnation left behind: each one
   was acknowledged but never answered.  Their checkpoints restore the
   memo, so the replayed search is memo-served up to the crash point
   and lands on the identical answer. *)
let recover d =
  match Sys.readdir d.cfg.checkpoint_dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.sort compare files;
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".req" then begin
          let path = Filename.concat d.cfg.checkpoint_dir f in
          match Json.of_string (String.trim (read_file path)) with
          | exception _ -> remove_quietly path
          | j -> (
            match parse_request d.cfg (Json.mem "params" j) with
            | Error _ -> remove_quietly path
            | Ok req -> (
              (* admission rewrites the request at its canonical
                 (tag-digest) name before the original is dropped, so
                 the request exists on disk at every instant *)
              match admit d ~rpc_id:(Json.mem "id" j) ~recovered:true req with
              | Some s when Filename.basename s.req_file <> f ->
                remove_quietly path
              | Some _ -> ()
              | None -> remove_quietly path))
        end)
      files

let run ?(ic = stdin) ?(oc = stdout) cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  mkdir_p cfg.checkpoint_dir;
  let d =
    {
      cfg;
      oc;
      out_dead = false;
      inbox = Queue.create ();
      inbox_m = Mutex.create ();
      inbox_c = Condition.create ();
      reader_done = false;
      engines = Hashtbl.create 7;
      db = None;
      db_degraded = None;
      sessions = Hashtbl.create 31;
      ready = Queue.create ();
      waiting = Queue.create ();
      live = 0;
      current = None;
      total_batches = 0;
      next_sid = 1;
      shutting_down = false;
    }
  in
  open_db d;
  emit d
    (notification "ready"
       ([
          ("pid", Json.Int (Unix.getpid ()));
          ("machine", Json.String cfg.machine.Machine.name);
          ("max_live", Json.Int cfg.max_live);
          ("max_queue", Json.Int cfg.max_queue);
        ]
       @ db_state_json d));
  recover d;
  let reader = Domain.spawn (fun () -> reader_loop d ic) in
  loop d;
  (match d.db with
  | Some db -> ( try Perfdb.close db with _ -> ())
  | None -> ());
  (* the reader ends with its input; join it only when it already has,
     so a [shutdown] request doesn't block on an open stdin *)
  if d.reader_done then (try Domain.join reader with _ -> ());
  0
