(** The one error schema service clients and the CLI share.

    Every typed failure the optimizer can surface — a candidate's
    {!Core.Engine.failure_reason}, a per-variant
    {!Core.Eco.infeasibility} report, a locked or corrupt store, a
    deadline — renders to the same JSON payload shape:

    {[ {"code": <slug>, "message": <human line>, "data": {...}} ]}

    The daemon embeds it as the JSON-RPC ["error"] member; the CLI
    prints it as one [error: {...}] line on stderr next to the human
    text.  Codes are stable strings ({!Core.Engine.failure_code},
    {!Core.Eco.infeasibility_code}, plus the service-level codes
    [busy], [bad_request], [db_locked], [db_corrupt], [shutdown]). *)

type t = { code : string; message : string; data : (string * Json.t) list }

val make : ?data:(string * Json.t) list -> code:string -> string -> t

(** Render as the schema object. *)
val to_json : t -> Json.t

(** The one-line [error: {...}] form the CLI prints on stderr. *)
val to_cli_line : t -> string

(** A measurement failure, with its typed reason in [data.reason]. *)
val of_failure : Core.Engine.failure_reason -> t

(** The [No_feasible_variant] report: code [no_feasible_variant],
    per-variant diagnoses as [data.per_variant], each with its
    {!Core.Eco.infeasibility_code} (and the inner
    {!Core.Engine.failure_code} for [point_failed]). *)
val no_feasible_variant :
  kernel:string ->
  n:int ->
  (string * Core.Eco.infeasibility) list ->
  t

(** Admission-control rejection with a retry hint ([data.retry_after_s]). *)
val busy : retry_after_s:float -> string -> t
