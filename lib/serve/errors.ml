type t = { code : string; message : string; data : (string * Json.t) list }

let make ?(data = []) ~code message = { code; message; data }

let to_json e =
  Json.Obj
    ([ ("code", Json.String e.code); ("message", Json.String e.message) ]
    @ if e.data = [] then [] else [ ("data", Json.Obj e.data) ])

let to_cli_line e = "error: " ^ Json.to_string (to_json e)

let of_failure reason =
  make
    ~code:(Core.Engine.failure_code reason)
    ~data:[ ("reason", Json.String (Core.Engine.describe_failure reason)) ]
    (Core.Engine.describe_failure reason)

let infeasibility_json (variant, why) =
  Json.Obj
    ([
       ("variant", Json.String variant);
       ("code", Json.String (Core.Eco.infeasibility_code why));
     ]
    @ (match why with
      | Core.Eco.Point_failed reason ->
        [ ("failure", Json.String (Core.Engine.failure_code reason)) ]
      | _ -> [])
    @ [ ("detail", Json.String (Core.Eco.describe_infeasibility why)) ])

let no_feasible_variant ~kernel ~n per_variant =
  make ~code:"no_feasible_variant"
    ~data:
      [
        ("kernel", Json.String kernel);
        ("n", Json.Int n);
        ("per_variant", Json.List (List.map infeasibility_json per_variant));
      ]
    (Printf.sprintf "no feasible variant for %s at n=%d" kernel n)

let busy ~retry_after_s message =
  make ~code:"busy"
    ~data:[ ("retry_after_s", Json.Float retry_after_s) ]
    message
