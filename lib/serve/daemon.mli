(** The autotuning service: a long-running, crash-only daemon that
    speaks newline-delimited JSON-RPC over stdin/stdout and serves
    tune requests from one shared evaluation engine per measurement
    context — so repeat queries are answered from the in-memory memo
    (and the shared performance database) instead of re-simulating.

    {b Protocol} (one JSON value per line, both directions):

    - [{"id": I, "method": "tune", "params": {"kernel": K, "n": N,
       "machine": M?, "budget": B?, "objective": O?, "prefilter": P?,
       "deadline_s": D?, "cycle_budget": C?}}] — start a session.
      The daemon emits an [accepted] notification, streams [progress]
      notifications while the search runs, and finally answers with
      [{"id": I, "result": {...}}] whose ["status"] is [ok] or a typed
      partial outcome ([timeout], [cancelled], [quarantined],
      [cycle_budget]) carrying the best point found so far — or with
      [{"id": I, "error": {...}}] using the {!Errors} schema.
    - [{"id": I, "method": "cancel", "params": {"session": J}}] —
      cooperatively cancel session [J] (the tune request's id).  The
      running search aborts at its next evaluation, persists a
      resumable checkpoint and releases its slot.
    - [{"id": I, "method": "status"}] — daemon telemetry, including
      ["db"]: [ok], [off] or [degraded].
    - [{"id": I, "method": "shutdown"}] — cancel everything (each
      session persists its checkpoint) and exit.  Closing stdin
      instead drains the outstanding sessions to completion and then
      exits — so [printf '...requests...' | eco serve] works as a
      batch client.

    {b Sessions} are interleaved cooperatively on the coordinating
    domain: each search suspends (via an effect) at every engine batch
    boundary, so [max_live] sessions make progress concurrently while
    sharing one memo, one demand-trace cache and one database handle
    per context.  Admission control queues up to [max_queue] further
    sessions and rejects beyond that with a typed [busy] error
    carrying [retry_after_s].

    {b Crash-only recovery}: each session persists a request file and
    a periodic engine checkpoint under [checkpoint_dir] (named by the
    digest of the session's run tag — the same tag format [eco tune
    --checkpoint] uses).  A daemon killed at any instant leaves both
    consistent; on restart, orphaned request files are replayed
    (resuming from their checkpoints) and announced as [recovered]
    notifications with the identical answer the one-shot CLI path
    produces.  A corrupt shared store degrades the persistence tier
    ([db: degraded] in telemetry) instead of taking the daemon down. *)

type config = {
  machine : Machine.t;  (** default machine for requests that name none *)
  jobs : int;  (** evaluation parallelism per engine *)
  db_file : string option;  (** shared performance database *)
  warm_start : bool;
      (** enable nearest-neighbor transfer seeding (default off in the
          service: warm starts make answers depend on store contents) *)
  checkpoint_dir : string;  (** session request + checkpoint files *)
  checkpoint_every : int;
  max_live : int;  (** sessions interleaved concurrently *)
  max_queue : int;  (** sessions queued beyond that before [busy] *)
  default_deadline_s : float;  (** per-request wall deadline; 0 = none *)
  watchdog_s : float;
      (** a batch taking longer than this counts as a stall; 0 = off *)
  watchdog_retries : int;
      (** stalls tolerated (with backoff) before the session is
          quarantined *)
  watchdog_backoff_s : float;
  progress_every_s : float;  (** progress notification cadence *)
  service_faults : Faults.Service.t;
}

(** Defaults: the [sgi] machine, [jobs = 1], no database, warm starts
    off, [.eco-serve] checkpoint dir, [checkpoint_every = 16],
    [max_live = 2], [max_queue = 8], no default deadline, watchdog off
    ([watchdog_s = 0.], 2 retries, 0.05s backoff), progress every
    0.25s, no service faults. *)
val default_config : config

(** Run the daemon over [ic]/[oc] (default stdin/stdout) until stdin
    closes or a [shutdown] request arrives; returns the exit code (0).
    Exits the process directly with code 1 when the database is locked
    by another writer, and with code 9 at an injected
    {!Faults.Service.kill_after} instant (simulated SIGKILL: no
    cleanup, no final checkpoint). *)
val run : ?ic:in_channel -> ?oc:out_channel -> config -> int

(** The run tag of a service session — identical in shape to [eco
    tune]'s checkpoint tag, so daemon checkpoints verify against the
    configuration that must reproduce the answer.  Exposed for tests. *)
val session_tag :
  config ->
  kernel:string ->
  n:int ->
  machine:Machine.t ->
  budget:int ->
  objective:Core.Objective.t ->
  prefilter:int option ->
  string
