type t = {
  active : bool;
  seed : int;
  noise : float;
  transient : float;
  hang : float;
  outlier : float;
  outlier_factor : float;
  crash : float;
}

let none =
  {
    active = false;
    seed = 0;
    noise = 0.0;
    transient = 0.0;
    hang = 0.0;
    outlier = 0.0;
    outlier_factor = 25.0;
    crash = 0.0;
  }

let check_rate name v =
  if not (v >= 0.0 && v <= 1.0) then
    invalid_arg (Printf.sprintf "Faults: %s must be in [0,1] (got %g)" name v)

let make ?(seed = 1) ?(noise = 0.0) ?(transient = 0.0) ?(hang = 0.0)
    ?(outlier = 0.0) ?(outlier_factor = 25.0) ?(crash = 0.0) () =
  if not (noise >= 0.0) then
    invalid_arg (Printf.sprintf "Faults: noise must be >= 0 (got %g)" noise);
  check_rate "transient" transient;
  check_rate "hang" hang;
  check_rate "outlier" outlier;
  check_rate "crash" crash;
  if not (outlier_factor >= 1.0) then
    invalid_arg
      (Printf.sprintf "Faults: outlier_factor must be >= 1 (got %g)"
         outlier_factor);
  { active = true; seed; noise; transient; hang; outlier; outlier_factor; crash }

let of_spec s =
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ',' (String.trim s))
  in
  if fields = [] then invalid_arg "Faults.of_spec: empty spec";
  if fields = [ "none" ] then none
  else
  List.fold_left
    (fun t field ->
      match String.index_opt field '=' with
      | None ->
        invalid_arg
          (Printf.sprintf "Faults.of_spec: expected key=value, got %S" field)
      | Some i ->
        let key = String.trim (String.sub field 0 i) in
        let value =
          String.trim (String.sub field (i + 1) (String.length field - i - 1))
        in
        let num () =
          match float_of_string_opt value with
          | Some v -> v
          | None ->
            invalid_arg
              (Printf.sprintf "Faults.of_spec: %s needs a number, got %S" key
                 value)
        in
        let t =
          match key with
          | "seed" -> (
            match int_of_string_opt value with
            | Some v -> { t with seed = v }
            | None ->
              invalid_arg
                (Printf.sprintf "Faults.of_spec: seed needs an integer, got %S"
                   value))
          | "noise" -> { t with noise = num () }
          | "transient" -> { t with transient = num () }
          | "hang" -> { t with hang = num () }
          | "outlier" -> { t with outlier = num () }
          | "outlier_factor" -> { t with outlier_factor = num () }
          | "crash" -> { t with crash = num () }
          | _ ->
            invalid_arg
              (Printf.sprintf
                 "Faults.of_spec: unknown key %S (known: seed, noise, \
                  transient, hang, outlier, outlier_factor, crash)"
                 key)
        in
        (* revalidate through [make] so specs and code share the checks *)
        make ~seed:t.seed ~noise:t.noise ~transient:t.transient ~hang:t.hang
          ~outlier:t.outlier ~outlier_factor:t.outlier_factor ~crash:t.crash ())
    none fields

let to_spec t =
  if not t.active then "none"
  else
    let f name v l = if v <> 0.0 then Printf.sprintf "%s=%g" name v :: l else l in
    String.concat ","
      (Printf.sprintf "seed=%d" t.seed
      :: f "noise" t.noise
           (f "transient" t.transient
              (f "hang" t.hang
                 (f "outlier" t.outlier
                    ((if t.outlier <> 0.0 && t.outlier_factor <> 25.0 then
                        [ Printf.sprintf "outlier_factor=%g" t.outlier_factor ]
                      else [])
                    @ f "crash" t.crash [])))))

let noisy t = t.active && (t.noise > 0.0 || t.outlier > 0.0)

let pp fmt t =
  if not t.active then Format.pp_print_string fmt "no faults"
  else
    Format.fprintf fmt
      "faults(seed=%d, noise=%g, transient=%g, hang=%g, outlier=%g x%g, \
       crash=%g)"
      t.seed t.noise t.transient t.hang t.outlier t.outlier_factor t.crash

(* --- keyed splitmix64 streams --------------------------------------- *)

(* Same generator as the differential-testing harness (Check.Rng):
   splitmix64, full-period and identical on every platform.  Duplicated
   here because [check] depends on [core] which depends on this library,
   so the dependency cannot point the other way. *)

type stream = { mutable state : int64 }

let next r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_parts parts =
  let r = { state = 0x5851F42D4C957F2DL } in
  List.iter
    (fun p ->
      r.state <- Int64.logxor r.state (Int64.of_int p);
      ignore (next r))
    parts;
  r

let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)

(* uniform in [0,1): the top 53 bits of one output *)
let uniform r =
  Int64.to_float (Int64.shift_right_logical (next r) 11) *. 0x1p-53

(* standard normal (Box–Muller) *)
let gauss r =
  let u1 = Float.max (uniform r) 0x1p-60 in
  let u2 = uniform r in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

type fate = Sample of float | Transient_failure | Hang

let draw t ~key ~trial ~attempt =
  if not t.active then Sample 1.0
  else begin
    let r = of_parts [ t.seed; hash_string key; 0; trial; attempt ] in
    let u = uniform r in
    if u < t.transient then Transient_failure
    else if u < t.transient +. t.hang then Hang
    else if t.outlier > 0.0 && uniform r < t.outlier then
      Sample t.outlier_factor
    else if t.noise > 0.0 then Sample (exp (t.noise *. gauss r))
    else Sample 1.0
  end

let crashes t ~key =
  t.active && t.crash > 0.0
  && uniform (of_parts [ t.seed; hash_string key; 1; 0; 0 ]) < t.crash

(* --- service-level fault plans --------------------------------------- *)

module Service = struct
  type t = {
    active : bool;
    seed : int;
    hang : float;
    hang_s : float;
    disconnect : float;
    kill_after : int option;
  }

  let none =
    {
      active = false;
      seed = 0;
      hang = 0.0;
      hang_s = 0.05;
      disconnect = 0.0;
      kill_after = None;
    }

  let make ?(seed = 1) ?(hang = 0.0) ?(hang_s = 0.05) ?(disconnect = 0.0)
      ?kill_after () =
    check_rate "hang" hang;
    check_rate "disconnect" disconnect;
    if not (hang_s >= 0.0) then
      invalid_arg
        (Printf.sprintf "Faults.Service: hang_s must be >= 0 (got %g)" hang_s);
    (match kill_after with
    | Some k when k < 1 ->
      invalid_arg
        (Printf.sprintf "Faults.Service: kill_after must be >= 1 (got %d)" k)
    | _ -> ());
    { active = true; seed; hang; hang_s; disconnect; kill_after }

  let of_spec s =
    let fields =
      List.filter (fun f -> f <> "") (String.split_on_char ',' (String.trim s))
    in
    if fields = [] then invalid_arg "Faults.Service.of_spec: empty spec";
    if fields = [ "none" ] then none
    else
      List.fold_left
        (fun t field ->
          match String.index_opt field '=' with
          | None ->
            invalid_arg
              (Printf.sprintf "Faults.Service.of_spec: expected key=value, got %S"
                 field)
          | Some i ->
            let key = String.trim (String.sub field 0 i) in
            let value =
              String.trim (String.sub field (i + 1) (String.length field - i - 1))
            in
            let num () =
              match float_of_string_opt value with
              | Some v -> v
              | None ->
                invalid_arg
                  (Printf.sprintf "Faults.Service.of_spec: %s needs a number, got %S"
                     key value)
            in
            let int_ () =
              match int_of_string_opt value with
              | Some v -> v
              | None ->
                invalid_arg
                  (Printf.sprintf
                     "Faults.Service.of_spec: %s needs an integer, got %S" key
                     value)
            in
            let t =
              match key with
              | "seed" -> { t with seed = int_ () }
              | "hang" -> { t with hang = num () }
              | "hang_s" -> { t with hang_s = num () }
              | "disconnect" -> { t with disconnect = num () }
              | "kill_after" -> { t with kill_after = Some (int_ ()) }
              | _ ->
                invalid_arg
                  (Printf.sprintf
                     "Faults.Service.of_spec: unknown key %S (known: seed, \
                      hang, hang_s, disconnect, kill_after)"
                     key)
            in
            make ~seed:t.seed ~hang:t.hang ~hang_s:t.hang_s
              ~disconnect:t.disconnect ?kill_after:t.kill_after ())
        none fields

  let to_spec t =
    if not t.active then "none"
    else
      let f name v l =
        if v <> 0.0 then Printf.sprintf "%s=%g" name v :: l else l
      in
      String.concat ","
        (Printf.sprintf "seed=%d" t.seed
        :: f "hang" t.hang
             ((if t.hang <> 0.0 && t.hang_s <> 0.05 then
                 [ Printf.sprintf "hang_s=%g" t.hang_s ]
               else [])
             @ f "disconnect" t.disconnect
                 (match t.kill_after with
                 | Some k -> [ Printf.sprintf "kill_after=%d" k ]
                 | None -> [])))

  (* Drawn from the same keyed splitmix64 streams as the measurement
     plan, with distinct stream tags (2 = batch hang, 3 = client
     disconnect), so service faults are a pure function of (session,
     event index) — bit-identical under any scheduling. *)
  let hangs t ~session ~batch =
    t.active && t.hang > 0.0
    && uniform (of_parts [ t.seed; hash_string session; 2; batch; 0 ]) < t.hang

  let disconnects t ~session ~event =
    t.active && t.disconnect > 0.0
    && uniform (of_parts [ t.seed; hash_string session; 3; event; 0 ])
       < t.disconnect
end

(* --- aggregation ----------------------------------------------------- *)

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Faults.median: empty sample";
  let b = sorted a in
  if n land 1 = 1 then b.(n / 2) else 0.5 *. (b.((n / 2) - 1) +. b.(n / 2))

let aggregate a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Faults.aggregate: empty sample";
  if n < 5 then median a
  else begin
    let b = sorted a in
    let k = max 1 (n / 5) in
    let sum = ref 0.0 in
    for i = k to n - 1 - k do
      sum := !sum +. b.(i)
    done;
    !sum /. float_of_int (n - (2 * k))
  end

let rel_spread a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let b = sorted a in
    let m = median a in
    if m = 0.0 then 0.0 else (b.(n - 1) -. b.(0)) /. Float.abs m
