(** Deterministic, seeded fault injection for the empirical measurement
    substrate.

    The paper's premise is that every surviving candidate is actually
    executed and timed on the target machine — and real machines are
    hostile: timings are noisy, runs crash or hang, and measurements are
    occasionally corrupted outright.  A {!t} is a {e fault plan}: a
    seeded description of that hostility that the evaluation engine
    injects around the (deterministic) simulator.  It is both the test
    harness for the engine's resilient measurement protocol and a
    realism knob for experiments (the noise-sensitivity study).

    Every random decision is drawn from a splitmix64 stream keyed by
    [(seed, candidate key, trial, attempt)], so the injected faults are
    a pure function of the candidate — bit-identical at any evaluation
    order, any [--jobs] setting, and on any platform. *)

type t = {
  active : bool;  (** [false] = {!none}: the plan injects nothing *)
  seed : int;
  noise : float;
      (** sigma of multiplicative log-normal timing noise (0 = exact) *)
  transient : float;  (** probability an attempt fails transiently *)
  hang : float;
      (** probability an attempt hangs (simulated-cycle overrun,
          surfaced as a timeout) *)
  outlier : float;
      (** probability a measurement is corrupted into a large outlier *)
  outlier_factor : float;  (** cycle multiplier of a corrupted measurement *)
  crash : float;
      (** probability the bytecode fast path crashes for a candidate,
          forcing the engine to degrade to the reference interpreter *)
}

(** The inactive plan: no draws, no perturbation.  An engine configured
    with [none] behaves bit-for-bit like one with no fault layer. *)
val none : t

(** Build an active plan.  All rates default to 0, [outlier_factor] to
    25; a plan with every rate and [noise] at zero still exercises the
    full measurement protocol (draws, trials, aggregation) without
    changing any result — that is what the protocol-overhead benchmark
    runs.  @raise Invalid_argument on rates outside [0,1], negative
    [noise], or [outlier_factor < 1]. *)
val make :
  ?seed:int ->
  ?noise:float ->
  ?transient:float ->
  ?hang:float ->
  ?outlier:float ->
  ?outlier_factor:float ->
  ?crash:float ->
  unit ->
  t

(** Parse a plan from a comma-separated spec, e.g.
    ["seed=7,noise=0.05,transient=0.02,hang=0.01,outlier=0.01,crash=0"].
    Keys: [seed], [noise], [transient], [hang], [outlier],
    [outlier_factor], [crash].  @raise Invalid_argument on unknown keys
    or malformed values. *)
val of_spec : string -> t

(** Canonical spec string ([of_spec (to_spec t) = t]); ["none"] for the
    inactive plan. *)
val to_spec : t -> string

(** Can the plan change a measurement's {e value} (noise or outlier
    corruption)?  False for zero-rate active plans: they exercise the
    protocol but every sample equals the clean measurement, so
    value-dependent machinery (e.g. a confirmation pass over the
    leaderboard) is pointless for them. *)
val noisy : t -> bool

val pp : Format.formatter -> t -> unit

(** What the plan does to one measurement attempt. *)
type fate =
  | Sample of float
      (** the attempt yields a measurement; multiply its cycles by the
          factor (1.0 = clean) *)
  | Transient_failure  (** the attempt fails; retrying may succeed *)
  | Hang  (** the attempt overruns its deadline *)

(** [draw t ~key ~trial ~attempt] is the fate of one measurement
    attempt of the candidate identified by [key].  Pure: the same
    arguments always produce the same fate. *)
val draw : t -> key:string -> trial:int -> attempt:int -> fate

(** Does the fast path crash for this candidate?  Drawn once per
    candidate (pure), independent of the trial/attempt streams. *)
val crashes : t -> key:string -> bool

(** {2 Service-level fault plans}

    Fault plans for the autotuning daemon ([lib/serve]): hostility at
    the service boundary rather than inside one measurement.  Drawn
    from the same keyed splitmix64 streams (keyed by [(seed, session,
    event index)]), so an injected service fault is a pure function of
    the session — deterministic under any request interleaving. *)
module Service : sig
  type t = {
    active : bool;  (** [false] = {!Service.none}: nothing injected *)
    seed : int;
    hang : float;  (** probability a measurement batch hangs (stalls) *)
    hang_s : float;  (** how long an injected hang stalls, in seconds *)
    disconnect : float;
        (** probability the client disconnects at a progress event *)
    kill_after : int option;
        (** SIGKILL the daemon after this many batch boundaries —
            crash-only recovery injection *)
  }

  val none : t

  (** @raise Invalid_argument on rates outside [0,1], negative [hang_s]
      or [kill_after < 1]. *)
  val make :
    ?seed:int ->
    ?hang:float ->
    ?hang_s:float ->
    ?disconnect:float ->
    ?kill_after:int ->
    unit ->
    t

  (** Parse from a comma-separated spec, e.g.
      ["seed=7,hang=0.2,hang_s=0.05,disconnect=0.1,kill_after=12"].
      @raise Invalid_argument on unknown keys or malformed values. *)
  val of_spec : string -> t

  (** Canonical spec string; ["none"] for the inactive plan. *)
  val to_spec : t -> string

  (** Does batch number [batch] of [session] hang?  Pure. *)
  val hangs : t -> session:string -> batch:int -> bool

  (** Does the client disconnect at progress event [event]?  Pure. *)
  val disconnects : t -> session:string -> event:int -> bool
end

(** {2 Aggregation of repeated measurements}

    Pure helpers used by the engine's [--trials] protocol and unit-tested
    directly. *)

(** Median ([n >= 1]; mean of the two middle elements when [n] is even).
    @raise Invalid_argument on an empty array. *)
val median : float array -> float

(** Robust location estimate of repeated measurements: the median for
    fewer than 5 samples, otherwise the trimmed mean discarding
    [max 1 (n/5)] samples at each end — so a single corrupted outlier
    never reaches the aggregate.  @raise Invalid_argument on empty. *)
val aggregate : float array -> float

(** Relative spread [(max - min) / |median|] (0 for fewer than 2
    samples or a zero median) — the adaptive early-stop criterion. *)
val rel_spread : float array -> float
