type mismatch = {
  array : string;
  index : int;
  expected : float;
  actual : float;
  ulps : float;
}

type verdict =
  | Agree
  | Differ of mismatch
  | Shape_error of string
  | Crash of string

let default_max_ulps = 1024

(* Map the doubles onto a line where adjacent representable values are
   adjacent integers (the usual bits trick, with the negative half
   reflected), then measure the distance there. *)
let ordered f =
  let b = Int64.bits_of_float f in
  if Int64.compare b 0L >= 0 then b else Int64.sub Int64.min_int b

let ulp_distance a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0.
  | true, false | false, true -> infinity
  | false, false ->
    Float.abs (Int64.to_float (ordered a) -. Int64.to_float (ordered b))

let values_match ~max_ulps a b =
  ulp_distance a b <= float_of_int max_ulps || Float.abs (a -. b) <= 1e-12

let compare_arrays ~max_ulps ~reference ~candidate =
  let check_array acc (name, expected) =
    match acc with
    | Agree -> (
      match List.assoc_opt name candidate with
      | None -> Shape_error (Printf.sprintf "array %s missing from candidate" name)
      | Some actual when Array.length actual <> Array.length expected ->
        Shape_error
          (Printf.sprintf "array %s: %d elements, reference has %d" name
             (Array.length actual) (Array.length expected))
      | Some actual ->
        let verdict = ref Agree in
        (try
           Array.iteri
             (fun i e ->
               if not (values_match ~max_ulps e actual.(i)) then begin
                 verdict :=
                   Differ
                     {
                       array = name;
                       index = i;
                       expected = e;
                       actual = actual.(i);
                       ulps = ulp_distance e actual.(i);
                     };
                 raise Exit
               end)
             expected
         with Exit -> ());
        !verdict)
    | stop -> stop
  in
  List.fold_left check_array Agree reference

let check_program ?(max_ulps = default_max_ulps) (kernel : Kernels.Kernel.t) ~n
    candidate =
  let reference = Kernels.Kernel.run_original kernel n in
  match Ir.Exec.run ~params:(Kernels.Kernel.params kernel n) candidate with
  | exception e -> Crash (Printexc.to_string e)
  | result ->
    compare_arrays ~max_ulps ~reference:reference.Ir.Exec.arrays
      ~candidate:result.Ir.Exec.arrays

let describe = function
  | Agree -> "agree"
  | Differ m ->
    Printf.sprintf "%s[%d]: expected %.17g, got %.17g (%.3g ulps)" m.array
      m.index m.expected m.actual m.ulps
  | Shape_error s -> "shape error: " ^ s
  | Crash s -> "crash: " ^ s

let agrees = function Agree -> true | _ -> false
