(** Explicit transformation pipelines: a printable, parseable recipe of
    transformation steps applied directly to a kernel's program.  The
    harness uses these for trials that go beyond what phase 1 derives
    (arbitrary orders, tiles larger than the trip count, unusual
    compositions), and — because a pipeline round-trips through a short
    string — as the reproducible repro line of a shrunk failure. *)

type step =
  | Permute of string list  (** new loop order, outermost first *)
  | Tile of (string * int) list
      (** (loop, tile size); controls are named {!Core.Variant.control_of}
          and placed outermost in the listed order *)
  | Copy of string
      (** copy the array's tile (dimensions driven by previously tiled
          loops) into a contiguous temporary [p_<array>] *)
  | Unroll of string * int  (** unroll-and-jam (loop, factor) *)
  | Scalar_replace
  | Prefetch of string * int  (** (array, distance), one-line granularity *)

type t = step list

(** Apply the steps left to right to the kernel's original program.
    @raise Invalid_argument when a step is malformed for the kernel
    (unknown loop, copy of an untiled or written array, ...) — the
    underlying transformations perform the checking. *)
val apply : Kernels.Kernel.t -> t -> Ir.Program.t

(** Concrete syntax, e.g.
    ["permute:i,j,k;tile:j=5,k=7;copy:b;unroll:i=4;scalar;prefetch:a=2"]. *)
val to_string : t -> string

(** Inverse of {!to_string}.  @raise Invalid_argument on syntax errors. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
