(** Property-based differential testing of the transformation system
    against the reference interpreter (the correctness backstop behind
    every Table 1–4 number): seeded random parameter bindings over the
    phase-1 variants plus random transformation pipelines, an
    ULP-tolerant oracle comparing each instantiated program's output
    arrays against the untransformed kernel, and greedy shrinking of any
    failure to a minimal, reproducible (kernel, case, size) triple.

    Reports are a pure function of [(seed, trials, kernels, machine)] —
    identical at any [jobs] — so a failing seed from CI replays exactly
    on a laptop. *)

module Rng : module type of Rng
module Oracle : module type of Oracle
module Pipe : module type of Pipe
module Gen : module type of Gen
module Shrink : module type of Shrink

(** One checkable case: a parameter binding of a derived variant
    (optionally with a prefetch layer), or an explicit transformation
    pipeline. *)
type case =
  | Point of {
      variant : Core.Variant.t;
      bindings : (string * int) list;
      prefetch : (string * int) list;
      n : int;
    }
  | Pipeline of { pipe : Pipe.t; n : int }

type failure = {
  kernel : string;
  case : case;  (** already shrunk *)
  verdict : Oracle.verdict;  (** of the shrunk case *)
  repro : string;  (** an [eco check] command replaying the case *)
}

type kernel_report = {
  kernel : string;
  trials : int;
  checked : int;  (** trials that ran the oracle *)
  skipped : int;  (** trials with no feasible sampled point *)
  failures : failure list;
}

type report = {
  seed : int;
  trials : int;  (** per kernel *)
  machine : string;
  max_ulps : int;
  kernels : kernel_report list;
}

(** Instantiate a variant at explicit bindings (plus prefetches, at the
    machine's L1 line granularity) and compare against the reference.
    Instantiation errors become [Crash]. *)
val check_point :
  ?max_ulps:int ->
  machine:Machine.t ->
  Core.Variant.t ->
  bindings:(string * int) list ->
  prefetch:(string * int) list ->
  n:int ->
  Oracle.verdict

(** Apply an explicit pipeline and compare against the reference.
    Construction errors become [Crash]. *)
val check_pipe :
  ?max_ulps:int -> Kernels.Kernel.t -> pipe:Pipe.t -> n:int -> Oracle.verdict

(** Re-run a (possibly shrunk) case. *)
val run_case :
  ?max_ulps:int -> machine:Machine.t -> Kernels.Kernel.t -> case -> Oracle.verdict

(** The harness: [trials] seeded trials per kernel, each drawing either
    a random feasible point of a random derived variant or a random
    transformation pipeline, checking it, and shrinking any failure.
    [jobs > 1] spreads trials over that many domains; the report is
    identical at any value. *)
val run :
  ?machine:Machine.t ->
  ?jobs:int ->
  ?max_ulps:int ->
  seed:int ->
  trials:int ->
  Kernels.Kernel.t list ->
  report

val ok : report -> bool
val failures : report -> failure list
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

(** [eco check] command line replaying a case. *)
val repro_line : machine:Machine.t -> kernel:string -> case -> string

(** Differentially validate a tuned outcome (the [tune --validate]
    backstop): re-check the variant at its winning bindings and prefetch
    against the reference at up to two sizes derived from [n] but capped
    for tractability (full interpretation is O(n^3) for matmul) — the
    cap and a nearby non-dividing size exercise the same transformation
    structure. *)
val validate :
  ?max_ulps:int ->
  machine:Machine.t ->
  Core.Variant.t ->
  bindings:(string * int) list ->
  prefetch:(string * int) list ->
  n:int ->
  (int * Oracle.verdict) list

(** Parse ["ui=4,tj=8"]-style binding lists (the [--point] /
    [--prefetch] syntax).  @raise Invalid_argument on syntax errors. *)
val parse_bindings : string -> (string * int) list

val bindings_to_string : (string * int) list -> string

(** Look up a derived variant by name ([--variant]). *)
val find_variant :
  machine:Machine.t -> Kernels.Kernel.t -> string -> Core.Variant.t option
