(** Deterministic pseudo-random stream for the differential-testing
    harness (splitmix64).  Unlike [Stdlib.Random], the sequence is fixed
    by this module alone, so a seed printed in a report reproduces the
    same trials on any platform, OCaml version, or [--jobs] setting. *)

type t

(** [make seed] starts a stream. *)
val make : int -> t

(** [of_list parts] starts a stream keyed by all of [parts] (e.g.
    [[seed; kernel_hash; trial_index]]), so every trial owns an
    independent deterministic stream regardless of evaluation order. *)
val of_list : int list -> t

(** Stable 64-bit FNV-1a hash of a string (for keying streams by kernel
    or variant name). *)
val hash_string : string -> int

(** [int t bound] is uniform in [\[0, bound)]; [bound >= 1]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** [subset t l] keeps each element independently with probability 1/2. *)
val subset : t -> 'a list -> 'a list

(** Fisher–Yates shuffle. *)
val shuffle : t -> 'a list -> 'a list
