type step =
  | Permute of string list
  | Tile of (string * int) list
  | Copy of string
  | Unroll of string * int
  | Scalar_replace
  | Prefetch of string * int

type t = step list

(* A copy step recovers its dimension specs the way Derive does: the
   array's uniform reference group must have every dimension driven by
   exactly one (previously tiled) loop; the copy base is that loop's
   control variable and the extent its tile size. *)
let copy_spec groups (program : Ir.Program.t) ~tiles array =
  let dim_loops (g : Analysis.Reuse.group) =
    List.map
      (fun s -> match Ir.Aff.terms s with [ (1, v) ] -> Some v | _ -> None)
      g.Analysis.Reuse.signature
  in
  let eligible g =
    g.Analysis.Reuse.array = array
    && g.Analysis.Reuse.signature <> []
    && List.for_all
         (function Some v -> List.mem_assoc v tiles | None -> false)
         (dim_loops g)
  in
  match List.find_opt eligible groups with
  | None ->
    invalid_arg
      (Printf.sprintf "Pipe: copy:%s needs every dimension driven by a tiled loop"
         array)
  | Some g ->
    let loops = List.filter_map Fun.id (dim_loops g) in
    let decl = Ir.Program.find_decl_exn program array in
    let dims =
      List.map2
        (fun v bound ->
          {
            Transform.Copy_opt.base = Ir.Aff.var (Core.Variant.control_of v);
            extent = List.assoc v tiles;
            bound;
          })
        loops decl.Ir.Decl.dims
    in
    let at =
      List.fold_left
        (fun acc (v, _) -> if List.mem v loops then Some v else acc)
        None tiles
    in
    let at = match at with Some v -> Core.Variant.control_of v | None -> assert false in
    (at, dims)

let apply (kernel : Kernels.Kernel.t) steps =
  let original = kernel.Kernels.Kernel.program in
  let groups = Analysis.Reuse.groups_of_body original.Ir.Program.body in
  let step (p, tiles) = function
    | Permute order -> (Transform.Permute.apply p order, tiles)
    | Tile specs ->
      let p =
        Transform.Tile.apply p
          (List.map
             (fun (v, size) ->
               { Transform.Tile.var = v; size; control = Core.Variant.control_of v })
             specs)
          ~control_order:(List.map (fun (v, _) -> Core.Variant.control_of v) specs)
      in
      (p, tiles @ specs)
    | Copy array ->
      let at, dims = copy_spec groups original ~tiles array in
      (Transform.Copy_opt.apply p ~array ~temp:("p_" ^ array) ~at ~dims, tiles)
    | Unroll (v, u) -> (Transform.Unroll_jam.apply p v u, tiles)
    | Scalar_replace -> (Transform.Scalar_replace.apply p, tiles)
    | Prefetch (array, distance) ->
      (Transform.Prefetch_insert.apply p ~array ~distance ~line_elems:4, tiles)
  in
  fst (List.fold_left step (original, []) steps)

let to_string steps =
  let assigns l = String.concat "," (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) l) in
  String.concat ";"
    (List.map
       (function
         | Permute order -> "permute:" ^ String.concat "," order
         | Tile specs -> "tile:" ^ assigns specs
         | Copy a -> "copy:" ^ a
         | Unroll (v, u) -> Printf.sprintf "unroll:%s=%d" v u
         | Scalar_replace -> "scalar"
         | Prefetch (a, d) -> Printf.sprintf "prefetch:%s=%d" a d)
       steps)

let split_on c s = String.split_on_char c s |> List.map String.trim

let parse_assigns what s =
  List.map
    (fun part ->
      match split_on '=' part with
      | [ v; x ] -> (
        match int_of_string_opt x with
        | Some i -> (v, i)
        | None -> invalid_arg (Printf.sprintf "Pipe: %s: bad integer %S" what x))
      | _ -> invalid_arg (Printf.sprintf "Pipe: %s: expected var=int, got %S" what part))
    (split_on ',' s)

let of_string s =
  List.filter_map
    (fun part ->
      if part = "" then None
      else
        Some
          (match split_on ':' part with
          | [ "scalar" ] -> Scalar_replace
          | [ "permute"; order ] -> Permute (split_on ',' order)
          | [ "tile"; specs ] -> Tile (parse_assigns "tile" specs)
          | [ "copy"; a ] -> Copy a
          | [ "unroll"; spec ] -> (
            match parse_assigns "unroll" spec with
            | [ (v, u) ] -> Unroll (v, u)
            | _ -> invalid_arg "Pipe: unroll takes exactly one loop=factor")
          | [ "prefetch"; spec ] -> (
            match parse_assigns "prefetch" spec with
            | [ (a, d) ] -> Prefetch (a, d)
            | _ -> invalid_arg "Pipe: prefetch takes exactly one array=distance")
          | _ -> invalid_arg (Printf.sprintf "Pipe: unknown step %S" part)))
    (split_on ';' s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
