module Rng = Rng
module Oracle = Oracle
module Pipe = Pipe
module Gen = Gen
module Shrink = Shrink
module Kernel = Kernels.Kernel

type case =
  | Point of {
      variant : Core.Variant.t;
      bindings : (string * int) list;
      prefetch : (string * int) list;
      n : int;
    }
  | Pipeline of { pipe : Pipe.t; n : int }

type failure = {
  kernel : string;
  case : case;
  verdict : Oracle.verdict;
  repro : string;
}

type kernel_report = {
  kernel : string;
  trials : int;
  checked : int;
  skipped : int;
  failures : failure list;
}

type report = {
  seed : int;
  trials : int;
  machine : string;
  max_ulps : int;
  kernels : kernel_report list;
}

let bindings_to_string bindings =
  String.concat "," (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) bindings)

let parse_bindings s =
  List.map
    (fun part ->
      match String.split_on_char '=' (String.trim part) with
      | [ p; v ] -> (
        match int_of_string_opt v with
        | Some i -> (String.trim p, i)
        | None -> invalid_arg (Printf.sprintf "bad integer in binding %S" part))
      | _ -> invalid_arg (Printf.sprintf "expected name=int, got %S" part))
    (String.split_on_char ',' s)

let find_variant ~machine kernel name =
  List.find_opt
    (fun (v : Core.Variant.t) -> v.Core.Variant.name = name)
    (Core.Derive.variants machine kernel)

(* --- running cases --- *)

let check_point ?(max_ulps = Oracle.default_max_ulps) ~machine
    (variant : Core.Variant.t) ~bindings ~prefetch ~n =
  let kernel = variant.Core.Variant.kernel in
  match Core.Variant.instantiate variant ~bindings with
  | exception Invalid_argument msg -> Oracle.Crash ("instantiate: " ^ msg)
  | program -> (
    let line_elems = Machine.line_elems machine 0 in
    match
      List.fold_left
        (fun p (array, distance) ->
          Transform.Prefetch_insert.apply p ~array ~distance ~line_elems)
        program prefetch
    with
    | exception Invalid_argument msg -> Oracle.Crash ("prefetch: " ^ msg)
    | program -> Oracle.check_program ~max_ulps kernel ~n program)

let check_pipe ?(max_ulps = Oracle.default_max_ulps) kernel ~pipe ~n =
  match Pipe.apply kernel pipe with
  | exception Invalid_argument msg -> Oracle.Crash ("pipeline: " ^ msg)
  | program -> Oracle.check_program ~max_ulps kernel ~n program

let run_case ?max_ulps ~machine kernel = function
  | Point { variant; bindings; prefetch; n } ->
    ignore kernel;
    check_point ?max_ulps ~machine variant ~bindings ~prefetch ~n
  | Pipeline { pipe; n } -> check_pipe ?max_ulps kernel ~pipe ~n

let repro_line ~machine ~kernel case =
  let base =
    Printf.sprintf "eco check -m '%s' -k %s" machine.Machine.name kernel
  in
  match case with
  | Point { variant; bindings; prefetch; n } ->
    Printf.sprintf "%s --size %d --variant %s --point %s%s" base n
      variant.Core.Variant.name
      (bindings_to_string bindings)
      (if prefetch = [] then ""
       else " --prefetch " ^ bindings_to_string prefetch)
  | Pipeline { pipe; n } ->
    Printf.sprintf "%s --size %d --pipeline '%s'" base n (Pipe.to_string pipe)

(* --- one trial --- *)

type trial_outcome = Passed | Skipped | Failed of failure

(* During shrinking, only a case that constructs and then disagrees (or
   dies executing) counts as failing; a candidate the transformations
   reject outright is a rejection, not the bug being chased. *)
let verdict_fails = function
  | Oracle.Agree -> false
  | Oracle.Crash msg ->
    not
      (String.length msg >= 12
      && (String.sub msg 0 12 = "instantiate:" || String.sub msg 0 9 = "pipeline:"))
  | Oracle.Differ _ | Oracle.Shape_error _ -> true

let fail ~machine kernel case verdict =
  Failed
    {
      kernel;
      case;
      verdict;
      repro = repro_line ~machine ~kernel case;
    }

let point_trial ~machine ~max_ulps (kernel : Kernel.t) variants rng n =
  let variant = Rng.choose rng variants in
  match Gen.point rng ~n variant with
  | None -> Skipped
  | Some bindings -> (
    let prefetch =
      match Core.Variant.instantiate variant ~bindings with
      | exception Invalid_argument _ -> []
      | program -> Gen.prefetch rng program
    in
    match check_point ~max_ulps ~machine variant ~bindings ~prefetch ~n with
    | Oracle.Agree -> Passed
    | first ->
      (* Prefetch rarely matters; prefer the repro without it. *)
      let prefetch =
        if
          prefetch <> []
          && verdict_fails
               (check_point ~max_ulps ~machine variant ~bindings ~prefetch:[] ~n)
        then []
        else prefetch
      in
      let fails b n' =
        verdict_fails (check_point ~max_ulps ~machine variant ~bindings:b ~prefetch ~n:n')
      in
      let bindings, n =
        if fails bindings n then
          Shrink.point ~fails ~min_n:kernel.Kernel.min_size ~bindings ~n
        else (bindings, n)
      in
      let case = Point { variant; bindings; prefetch; n } in
      let verdict =
        match run_case ~max_ulps ~machine kernel case with
        | Oracle.Agree -> first  (* shrink lost the failure; report the original *)
        | v -> v
      in
      fail ~machine kernel.Kernel.name case verdict)

let pipeline_trial ~machine ~max_ulps (kernel : Kernel.t) rng n =
  let pipe = Gen.pipeline rng ~n kernel in
  match check_pipe ~max_ulps kernel ~pipe ~n with
  | Oracle.Agree -> Passed
  | first ->
    let fails p n' = verdict_fails (check_pipe ~max_ulps kernel ~pipe:p ~n:n') in
    let pipe, n =
      if fails pipe n then
        Shrink.pipeline ~fails ~min_n:kernel.Kernel.min_size ~pipe ~n
      else (pipe, n)
    in
    let case = Pipeline { pipe; n } in
    let verdict =
      match run_case ~max_ulps ~machine kernel case with
      | Oracle.Agree -> first
      | v -> v
    in
    fail ~machine kernel.Kernel.name case verdict

let run_trial ~machine ~max_ulps ~seed (kernel : Kernel.t) variants i =
  let rng = Rng.of_list [ seed; Rng.hash_string kernel.Kernel.name; i ] in
  let n = Gen.size rng kernel in
  if variants = [] || Rng.int rng 3 = 0 then
    pipeline_trial ~machine ~max_ulps kernel rng n
  else point_trial ~machine ~max_ulps kernel variants rng n

(* --- the harness --- *)

(* Strided order-preserving parallel map: each index is written by
   exactly one domain, results are read only after join, so any [jobs]
   yields the same list. *)
let parallel_map ~jobs f tasks =
  let tasks = Array.of_list tasks in
  let m = Array.length tasks in
  let jobs = max 1 (min jobs m) in
  if jobs = 1 then Array.to_list (Array.map f tasks)
  else begin
    let results = Array.make m None in
    let worker w () =
      let i = ref w in
      while !i < m do
        results.(!i) <- Some (f tasks.(!i));
        i := !i + jobs
      done
    in
    let domains = List.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let run ?(machine = Machine.sgi_r10000) ?(jobs = 1)
    ?(max_ulps = Oracle.default_max_ulps) ~seed ~trials kernels =
  let tasks =
    List.concat_map
      (fun (kernel : Kernel.t) ->
        let variants = Core.Derive.variants machine kernel in
        List.init trials (fun i -> (kernel, variants, i)))
      kernels
  in
  let outcomes =
    parallel_map ~jobs
      (fun (kernel, variants, i) ->
        (kernel.Kernel.name, run_trial ~machine ~max_ulps ~seed kernel variants i))
      tasks
  in
  let kernel_report (kernel : Kernel.t) =
    let mine =
      List.filter_map
        (fun (name, o) -> if name = kernel.Kernel.name then Some o else None)
        outcomes
    in
    {
      kernel = kernel.Kernel.name;
      trials = List.length mine;
      checked =
        List.length (List.filter (function Skipped -> false | _ -> true) mine);
      skipped = List.length (List.filter (( = ) Skipped) mine);
      failures =
        List.filter_map (function Failed f -> Some f | _ -> None) mine;
    }
  in
  {
    seed;
    trials;
    machine = machine.Machine.name;
    max_ulps;
    kernels = List.map kernel_report kernels;
  }

let failures report = List.concat_map (fun k -> k.failures) report.kernels
let ok report = failures report = []

let pp_case fmt = function
  | Point { variant; bindings; prefetch; n } ->
    Format.fprintf fmt "variant %s n=%d %s%s" variant.Core.Variant.name n
      (bindings_to_string bindings)
      (if prefetch = [] then ""
       else " prefetch " ^ bindings_to_string prefetch)
  | Pipeline { pipe; n } ->
    Format.fprintf fmt "pipeline '%s' n=%d" (Pipe.to_string pipe) n

let pp_report fmt report =
  Format.fprintf fmt
    "differential check: seed %d, %d trials/kernel, machine %s, tolerance %d ulps@."
    report.seed report.trials report.machine report.max_ulps;
  List.iter
    (fun k ->
      Format.fprintf fmt "  %-10s %4d trials  %4d checked  %3d skipped  %d failures@."
        k.kernel k.trials k.checked k.skipped (List.length k.failures))
    report.kernels;
  List.iter
    (fun (f : failure) ->
      Format.fprintf fmt "  FAIL %s: %a@." f.kernel pp_case f.case;
      Format.fprintf fmt "    %s@." (Oracle.describe f.verdict);
      Format.fprintf fmt "    repro: %s@." f.repro)
    (failures report);
  if ok report then
    Format.fprintf fmt "result: all checked cases agree with the reference interpreter@."
  else
    Format.fprintf fmt "result: %d FAILING case(s)@." (List.length (failures report))

let report_to_string report = Format.asprintf "%a" pp_report report

let validate ?max_ulps ~machine variant ~bindings ~prefetch ~n =
  let kernel = variant.Core.Variant.kernel in
  let cap = 31 in
  let c1 = max kernel.Kernel.min_size (min n cap) in
  let c2 = max kernel.Kernel.min_size (c1 - 5) in
  List.map
    (fun size ->
      (size, check_point ?max_ulps ~machine variant ~bindings ~prefetch ~n:size))
    (List.sort_uniq compare [ c1; c2 ])
