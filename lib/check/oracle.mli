(** The differential-correctness oracle: run a transformed program
    through {!Ir.Exec} and compare its heap arrays element-wise against
    the untransformed reference program under the same deterministic
    inputs.

    Comparison is ULP-tolerant: tiling, unroll-and-jam and scalar
    replacement reassociate reductions, so results may differ from the
    reference in the last few bits, but a transformation {e bug} (a
    dropped or duplicated iteration, a mis-clipped copy) perturbs values
    by many orders of magnitude more.  Arrays declared only by the
    candidate (copy temporaries, spilled scalars) are ignored; every
    reference array must be present with the same length. *)

type mismatch = {
  array : string;
  index : int;  (** flat (column-major) element index *)
  expected : float;  (** reference interpreter's value *)
  actual : float;  (** candidate's value *)
  ulps : float;  (** distance in units-in-the-last-place (infinite across signs/NaN) *)
}

type verdict =
  | Agree
  | Differ of mismatch  (** first mismatching element *)
  | Shape_error of string  (** an array is missing or has the wrong length *)
  | Crash of string  (** the candidate raised during execution *)

(** 1024: orders of magnitude tighter than the 1e-9 relative tolerance
    the unit tests use, yet far above any legitimate reassociation noise
    of the bundled kernels. *)
val default_max_ulps : int

(** ULP distance between two doubles; [infinity] when exactly one is
    NaN or the values straddle a sign change by more than [2^52] ULPs;
    [0.] when both are NaN. *)
val ulp_distance : float -> float -> float

(** [values_match ~max_ulps a b]: within [max_ulps] ULPs, or absolutely
    within 1e-12 (reassociated cancellation may turn an exact 0 into a
    tiny residue, which is astronomically far in ULPs). *)
val values_match : max_ulps:int -> float -> float -> bool

(** Compare candidate arrays against reference arrays (name, contents)
    in reference order. *)
val compare_arrays :
  max_ulps:int ->
  reference:(string * float array) list ->
  candidate:(string * float array) list ->
  verdict

(** [check_program kernel ~n candidate] runs both the kernel's original
    program and [candidate] at size [n] and compares.  Exceptions raised
    by the candidate's execution become [Crash]. *)
val check_program :
  ?max_ulps:int -> Kernels.Kernel.t -> n:int -> Ir.Program.t -> verdict

val describe : verdict -> string
val agrees : verdict -> bool
