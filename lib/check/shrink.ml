(* Values shrink toward 1, sizes toward min_n; biggest jumps first so
   the common case converges in a handful of oracle runs. *)
let smaller_values v =
  List.sort_uniq compare (List.filter (fun c -> c >= 1 && c < v) [ 1; v / 2; v - 1 ])

let smaller_sizes ~min_n n =
  List.sort_uniq compare
    (List.filter (fun c -> c >= min_n && c < n) [ min_n; (n + min_n) / 2; n - 1 ])

let max_steps = 200

let greedy ~candidates ~fails start =
  let rec go state steps =
    if steps = 0 then state
    else
      match List.find_opt fails (candidates state) with
      | Some better -> go better (steps - 1)
      | None -> state
  in
  go start max_steps

let point ~fails ~min_n ~bindings ~n =
  let candidates (bindings, n) =
    List.map (fun n' -> (bindings, n')) (smaller_sizes ~min_n n)
    @ List.concat_map
        (fun (name, v) ->
          List.map
            (fun v' ->
              ( List.map (fun (p, x) -> if p = name then (p, v') else (p, x)) bindings,
                n ))
            (smaller_values v))
        bindings
  in
  greedy ~candidates ~fails:(fun (b, n) -> fails b n) (bindings, n)

(* Without the tile step its copies cannot be constructed, so removing a
   Tile also removes every Copy (the copy would only mask the shrink). *)
let drop_step pipe i =
  let dropped = List.nth pipe i in
  let rest = List.filteri (fun j _ -> j <> i) pipe in
  match dropped with
  | Pipe.Tile _ ->
    List.filter (function Pipe.Copy _ -> false | _ -> true) rest
  | _ -> rest

let shrink_step = function
  | Pipe.Tile specs ->
    List.concat_map
      (fun (v, s) ->
        List.map
          (fun s' ->
            Pipe.Tile
              (List.map (fun (w, x) -> if w = v then (w, s') else (w, x)) specs))
          (smaller_values s))
      specs
  | Pipe.Unroll (v, u) -> List.map (fun u' -> Pipe.Unroll (v, u')) (smaller_values u)
  | Pipe.Prefetch (a, d) ->
    List.map (fun d' -> Pipe.Prefetch (a, d')) (smaller_values d)
  | Pipe.Permute _ | Pipe.Copy _ | Pipe.Scalar_replace -> []

let pipeline ~fails ~min_n ~pipe ~n =
  let candidates (pipe, n) =
    List.map (fun n' -> (pipe, n')) (smaller_sizes ~min_n n)
    @ List.mapi (fun i _ -> (drop_step pipe i, n)) pipe
    @ List.concat
        (List.mapi
           (fun i s ->
             List.map
               (fun s' -> (List.mapi (fun j t -> if j = i then s' else t) pipe, n))
               (shrink_step s))
           pipe)
  in
  greedy ~candidates ~fails:(fun (p, n) -> fails p n) (pipe, n)
