(** Greedy shrinking of failing cases to minimal repros.

    [fails] is the failure predicate re-running the oracle; a candidate
    that cannot even be constructed (an [Invalid_argument] from a
    transformation) must make it return [false] — construction errors
    are rejections, not the bug being chased.  Shrinking repeatedly
    commits the first strictly-smaller candidate that still fails, until
    a fixpoint (bounded by an internal step limit), so the result is
    deterministic. *)

(** Shrink a failing (bindings, n) pair: the problem size moves down
    toward [min_n], each binding value toward 1. *)
val point :
  fails:((string * int) list -> int -> bool) ->
  min_n:int ->
  bindings:(string * int) list ->
  n:int ->
  (string * int) list * int

(** Shrink a failing (pipeline, n) pair: drop whole steps (a dropped
    tile step also drops dependent copy steps), shrink tile sizes,
    unroll factors and prefetch distances toward 1, and shrink [n]. *)
val pipeline :
  fails:(Pipe.t -> int -> bool) ->
  min_n:int ->
  pipe:Pipe.t ->
  n:int ->
  Pipe.t * int
