module Kernel = Kernels.Kernel
module Depend = Analysis.Depend

let size rng (kernel : Kernel.t) =
  let m = kernel.Kernel.min_size in
  let candidates = [ m; m + 1; m + 3; 7; 8; 9; 11; 13; 16 ] in
  let candidates = List.filter (fun n -> n >= m) candidates in
  Rng.choose rng candidates

let point rng ~n (variant : Core.Variant.t) =
  let params = Core.Variant.params variant in
  match
    Core.Constr.sample ~rand:(Rng.int rng) ~n params
      variant.Core.Variant.constraints
  with
  | None -> None
  | Some bindings ->
    (* Bias toward the boundaries the sampler may still miss: force one
       tile to the full trip count, or all unroll factors to 1, keeping
       the tweak only when it stays feasible. *)
    let tweaked =
      match Rng.int rng 4 with
      | 0 when variant.Core.Variant.tiles <> [] ->
        let _, param = Rng.choose rng variant.Core.Variant.tiles in
        List.map (fun (p, v) -> if p = param then (p, n) else (p, v)) bindings
      | 1 when variant.Core.Variant.unrolls <> [] ->
        let unroll_params = List.map snd variant.Core.Variant.unrolls in
        List.map
          (fun (p, v) -> if List.mem p unroll_params then (p, 1) else (p, v))
          bindings
      | _ -> bindings
    in
    if
      tweaked != bindings
      && Core.Variant.feasible variant ~n tweaked
    then Some tweaked
    else Some bindings

let prefetch rng (program : Ir.Program.t) =
  if Rng.int rng 4 <> 0 then []
  else
    match Ir.Program.heap_arrays program with
    | [] -> []
    | arrays ->
      let d = Rng.choose rng (arrays : Ir.Decl.t list) in
      [ (d.Ir.Decl.name, Rng.choose rng [ 1; 2; 8 ]) ]

let unroll_factor rng n = Rng.choose rng [ 1; 2; 3; 4; 7; n; n + 1 ]
let tile_size rng n = Rng.choose rng [ 1; 2; 3; 5; 7; n - 1; n; n + 2 ]

let pipeline rng ~n (kernel : Kernel.t) =
  let program = kernel.Kernel.program in
  let loops = Ir.Stmt.loop_vars program.Ir.Program.body in
  let deps = Depend.analyze program in
  (* Permutation: a few random shuffles, keep the first legal one. *)
  let order, permute_step =
    if Rng.int rng 3 = 0 then (loops, [])
    else
      let rec try_shuffle k =
        if k = 0 then (loops, [])
        else
          let order = Rng.shuffle rng loops in
          if Depend.permutation_legal deps order then
            (order, if order = loops then [] else [ Pipe.Permute order ])
          else try_shuffle (k - 1)
      in
      try_shuffle 4
  in
  (* Tiling requires a fully permutable nest (the tile-controlling loops
     move outermost past everything else). *)
  let tiles, tile_step =
    if Depend.fully_permutable deps && Rng.int rng 3 <> 2 then
      match Rng.subset rng order with
      | [] -> ([], [])
      | chosen ->
        let specs = List.map (fun v -> (v, tile_size rng n)) chosen in
        (specs, [ Pipe.Tile specs ])
    else ([], [])
  in
  (* Copy an eligible array: read-only and every dimension of its
     uniform group driven by a tiled loop (mirrors Derive's test). *)
  let copy_step =
    if tiles = [] || Rng.bool rng then []
    else
      let groups = Analysis.Reuse.groups_of_body program.Ir.Program.body in
      let written (g : Analysis.Reuse.group) =
        List.exists (fun (_, w) -> w) g.Analysis.Reuse.members
      in
      let eligible (g : Analysis.Reuse.group) =
        (not (written g))
        && g.Analysis.Reuse.signature <> []
        && List.for_all
             (fun s ->
               match Ir.Aff.terms s with
               | [ (1, v) ] -> List.mem_assoc v tiles
               | _ -> false)
             g.Analysis.Reuse.signature
        (* Halo groups (stencil neighbours at i-1/i+1) index outside the
           copied tile; Copy_opt rightly rejects them, as the paper
           declines to copy Jacobi's stencil group. *)
        && List.for_all
             (fun ((r : Ir.Reference.t), _) ->
               List.for_all (( = ) 0) (Ir.Reference.offsets r))
             g.Analysis.Reuse.members
      in
      (* An array written through another reference group is still not
         copyable; defer to the program-level check. *)
      let read_only a =
        not
          (List.exists
             (fun ((r : Ir.Reference.t), w) -> w && r.Ir.Reference.array = a)
             (Ir.Stmt.access_refs program.Ir.Program.body))
      in
      match
        List.filter
          (fun g -> eligible g && read_only g.Analysis.Reuse.array)
          groups
      with
      | [] -> []
      | gs -> [ Pipe.Copy (Rng.choose rng gs).Analysis.Reuse.array ]
  in
  (* Unroll-and-jam any loops that may legally move innermost. *)
  let unroll_steps =
    List.filter_map
      (fun v ->
        if Rng.int rng 3 = 0 && Depend.innermost_legal deps ~order v then
          let u = unroll_factor rng n in
          if u > 1 then Some (Pipe.Unroll (v, u)) else None
        else None)
      order
  in
  let scalar_step = if Rng.int rng 4 <> 0 then [ Pipe.Scalar_replace ] else [] in
  let prefetch_step =
    match prefetch rng program with
    | [] -> []
    | (a, d) :: _ -> [ Pipe.Prefetch (a, d) ]
  in
  permute_step @ tile_step @ copy_step @ unroll_steps @ scalar_step
  @ prefetch_step
