(** Seeded random generation of test cases: problem sizes, feasible
    parameter bindings for derived variants, and legal transformation
    pipelines.  Everything is driven by a {!Rng.t}, so a trial is a pure
    function of its seed. *)

(** A small problem size biased toward the interesting edges: the
    kernel's minimal (degenerate) size, primes (nothing divides evenly),
    and powers of two. *)
val size : Rng.t -> Kernels.Kernel.t -> int

(** A feasible binding of the variant's parameters at size [n], drawn
    through {!Core.Constr.sample} with extra boundary bias (tile = trip
    count, all unrolls = 1).  [None] when no feasible point was found
    (contradictory or very tight constraint systems). *)
val point : Rng.t -> n:int -> Core.Variant.t -> (string * int) list option

(** An optional prefetch layer for a program: a random heap array at a
    random distance, or none. *)
val prefetch : Rng.t -> Ir.Program.t -> (string * int) list

(** A random legal transformation pipeline for the kernel at size [n]:
    a dependence-legal permutation, tiling of a random subset of loops
    (only when the nest is fully permutable) with sizes that may exceed
    the trip count, a copy of an eligible array, unroll-and-jam of
    jam-legal loops (factors may exceed the trip count), scalar
    replacement, and prefetching.  The pipeline may be empty (identity),
    which checks the executor against itself. *)
val pipeline : Rng.t -> n:int -> Kernels.Kernel.t -> Pipe.t
