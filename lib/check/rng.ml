type t = { mutable state : int64 }

(* splitmix64 (Steele, Lea & Flood): tiny, full-period, and identical on
   every platform — exactly what a printable repro seed needs. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed =
  let t = { state = Int64.of_int seed } in
  ignore (next t);
  t

let of_list parts =
  let t = { state = 0x5851F42D4C957F2DL } in
  List.iter
    (fun p ->
      t.state <- Int64.logxor t.state (Int64.of_int p);
      ignore (next t))
    parts;
  t

let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  (* keep it positive and within OCaml's int *)
  Int64.to_int (Int64.shift_right_logical !h 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else if bound = 1 then 0
  else
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = int t 2 = 0

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let subset t l = List.filter (fun _ -> bool t) l

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
