let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string (String.trim s) with Failure _ -> default)
  | None -> default

let fast () =
  match Sys.getenv_opt "ECO_FAST" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let budget () = Core.Executor.Budget (env_int "ECO_BUDGET" 400_000)
let table1_budget () = Core.Executor.Budget (env_int "ECO_TABLE1_BUDGET" 2_000_000)

let range lo hi step =
  let rec go n = if n > hi then [] else n :: go (n + step) in
  go lo

let mm_sizes () =
  if fast () then [ 64; 128; 192; 256 ] else range 64 768 32

let jacobi_sizes () =
  if fast () then [ 40; 64; 96 ] else range 40 272 8

let rankcheck_mm_sizes () = if fast () then [ 64 ] else [ 96; 160; 240 ]
let rankcheck_jacobi_sizes () = if fast () then [ 40 ] else [ 64; 96; 120 ]

(* Donor sizes sit above n=64 on purpose: the TLB-bound matmul_v3
   variant wins below that and does not exist at larger sizes, so a
   64->80 transfer would have nothing same-variant to carry over. *)
let transfer_mm_pairs () =
  if fast () then [ (80, 96) ] else [ (128, 160); (192, 240) ]

let transfer_jacobi_pairs () =
  if fast () then [ (40, 48) ] else [ (64, 72); (96, 112) ]

(* Cross-machine transfers hold the problem size fixed so the row
   isolates the machine axis; sizes match the first same-machine donor
   sizes above. *)
let transfer_cross_mm_n () = if fast () then 80 else 128
let transfer_cross_jacobi_n () = if fast () then 40 else 64
let mm_tune_size () = env_int "ECO_MM_TUNE" 240
let jacobi_tune_size () = env_int "ECO_JACOBI_TUNE" 120
let table1_mm_size () = env_int "ECO_TABLE1_MM" 512
let table1_jacobi_size () = env_int "ECO_TABLE1_JACOBI" 160
