type row = {
  name : string;
  ti : int;
  tj : int;
  tk : int;
  pref : bool;
  loads : float;
  l1_misses : float;
  l2_misses : float;
  tlb_misses : float;
  cycles : float;
  mflops : float;
}

let n_aff = Ir.Aff.var "n"

(* Matrix Multiply in the paper's Figure 1(b)/(c) shape with explicit
   tile sizes; a size of 1 means "loop not tiled", as in the paper's
   table.  B is copied whenever its two dimensions are tiled. *)
let mm_variant ~ti ~tj ~tk =
  let tiles =
    List.filter_map
      (fun (v, s) -> if s > 1 then Some (v, "t" ^ v) else None)
      [ ("k", tk); ("j", tj); ("i", ti) ]
  in
  (* Figure 1(b) copies B; Figure 1(c) — the fully tiled versions —
     additionally copies A into a contiguous Q (which is also what keeps
     their TLB footprint small). *)
  let copies =
    (if List.mem_assoc "k" tiles && List.mem_assoc "j" tiles then
       [
         {
           Core.Variant.array = "b";
           temp = "p_b";
           at = "j";
           dims =
             [
               { Core.Variant.tiled_loop = "k"; bound = n_aff };
               { Core.Variant.tiled_loop = "j"; bound = n_aff };
             ];
         };
       ]
     else [])
    @
    if List.mem_assoc "i" tiles && List.mem_assoc "k" tiles then
      [
        {
          Core.Variant.array = "a";
          temp = "q_a";
          at = "i";
          dims =
            [
              { Core.Variant.tiled_loop = "i"; bound = n_aff };
              { Core.Variant.tiled_loop = "k"; bound = n_aff };
            ];
        };
      ]
    else []
  in
  {
    Core.Variant.name = "table1_mm";
    kernel = Kernels.Matmul.kernel;
    element_order = [ "j"; "i"; "k" ];
    tiles;
    unrolls = [ ("j", "uj"); ("i", "ui") ];
    copies;
    constraints = [];
    notes = [];
  }

let jacobi_variant ~ti ~tj ~tk =
  let tiles =
    List.filter_map
      (fun (v, s) -> if s > 1 then Some (v, "t" ^ v) else None)
      [ ("k", tk); ("j", tj); ("i", ti) ]
  in
  {
    Core.Variant.name = "table1_jacobi";
    kernel = Kernels.Jacobi3d.kernel;
    element_order = [ "k"; "j"; "i" ];
    tiles;
    unrolls = [ ("k", "uk"); ("j", "uj") ];
    copies = [];
    constraints = [];
    notes = [];
  }

let measure_version engine mode ~kernel ~variant ~bindings ~prefetch ~n =
  match
    Core.Search.measure_point engine ~n ~mode variant ~bindings ~prefetch
  with
  | Some o ->
    ignore kernel;
    Some o.Core.Search.measurement
  | None -> None

let mm_row engine mode ~name ~ti ~tj ~tk ~pref =
  let n = Config.table1_mm_size () in
  let ti = min ti n and tj = min tj n and tk = min tk n in
  let variant = mm_variant ~ti ~tj ~tk in
  let bindings =
    List.filter_map
      (fun (v, s) ->
        if List.mem_assoc v variant.Core.Variant.tiles then Some ("t" ^ v, s)
        else None)
      [ ("k", tk); ("j", tj); ("i", ti) ]
    @ [ ("ui", 4); ("uj", 4) ]
  in
  let prefetch = if pref then [ ("q_a", 8); ("p_b", 8) ] else [] in
  match
    measure_version engine mode ~kernel:Kernels.Matmul.kernel ~variant
      ~bindings ~prefetch ~n
  with
  | None -> failwith ("table1: infeasible " ^ name)
  | Some m ->
    let s = m.Core.Executor.scale in
    let c = m.Core.Executor.counters in
    {
      name;
      ti;
      tj;
      tk;
      pref;
      loads = s *. float_of_int c.Memsim.Counters.loads;
      l1_misses = s *. float_of_int (Memsim.Counters.l1_misses c);
      l2_misses = s *. float_of_int (Memsim.Counters.l2_misses c);
      tlb_misses = s *. float_of_int c.Memsim.Counters.tlb_misses;
      cycles = m.Core.Executor.cost.Memsim.Cost.total_cycles;
      mflops = m.Core.Executor.mflops;
    }

let jacobi_row engine mode ~name ~ti ~tj ~tk ~pref =
  let n = Config.table1_jacobi_size () in
  let ti = min ti n and tj = min tj n and tk = min tk n in
  let variant = jacobi_variant ~ti ~tj ~tk in
  let bindings =
    List.filter_map
      (fun (v, s) ->
        if List.mem_assoc v variant.Core.Variant.tiles then Some ("t" ^ v, s)
        else None)
      [ ("k", tk); ("j", tj); ("i", ti) ]
    @ [ ("uj", 2); ("uk", 2) ]
  in
  let prefetch = if pref then [ ("a", 4); ("b", 4) ] else [] in
  match
    measure_version engine mode ~kernel:Kernels.Jacobi3d.kernel ~variant
      ~bindings ~prefetch ~n
  with
  | None -> failwith ("table1: infeasible " ^ name)
  | Some m ->
    let s = m.Core.Executor.scale in
    let c = m.Core.Executor.counters in
    {
      name;
      ti;
      tj;
      tk;
      pref;
      loads = s *. float_of_int c.Memsim.Counters.loads;
      l1_misses = s *. float_of_int (Memsim.Counters.l1_misses c);
      l2_misses = s *. float_of_int (Memsim.Counters.l2_misses c);
      tlb_misses = s *. float_of_int c.Memsim.Counters.tlb_misses;
      cycles = m.Core.Executor.cost.Memsim.Cost.total_cycles;
      mflops = m.Core.Executor.mflops;
    }

(* The mm rows run on the capacity-scaled SGI (1/16 caches and TLB
   reach) with the paper's tile sizes scaled by the same factor (1/4 in
   each tiled cache dimension), so each tile occupies the same fraction
   of its cache level as in the paper, and a sampled simulation covers
   several outer-tile periods.  The Jacobi rows fit the real machine's
   behaviour at a simulable size directly. *)
let rows ?machine ?mode () =
  let mm_machine =
    match machine with Some m -> m | None -> Machine.sgi_r10000_mini
  in
  let j_machine = match machine with Some m -> m | None -> Machine.sgi_r10000 in
  let mode = match mode with Some m -> m | None -> Config.table1_budget () in
  let mm_engine = Core.Engine.create mm_machine in
  let j_engine = Core.Engine.create j_machine in
  [
    mm_row mm_engine mode ~name:"mm1" ~ti:1 ~tj:8 ~tk:16 ~pref:false;
    mm_row mm_engine mode ~name:"mm2" ~ti:1 ~tj:4 ~tk:32 ~pref:false;
    mm_row mm_engine mode ~name:"mm3" ~ti:8 ~tj:64 ~tk:64 ~pref:false;
    mm_row mm_engine mode ~name:"mm4" ~ti:16 ~tj:128 ~tk:32 ~pref:false;
    mm_row mm_engine mode ~name:"mm5" ~ti:16 ~tj:128 ~tk:32 ~pref:true;
    jacobi_row j_engine mode ~name:"j1" ~ti:1 ~tj:1 ~tk:1 ~pref:false;
    jacobi_row j_engine mode ~name:"j2" ~ti:1 ~tj:1 ~tk:1 ~pref:true;
    jacobi_row j_engine mode ~name:"j3" ~ti:1 ~tj:16 ~tk:8 ~pref:false;
    jacobi_row j_engine mode ~name:"j4" ~ti:1 ~tj:16 ~tk:8 ~pref:true;
    jacobi_row j_engine mode ~name:"j5" ~ti:300 ~tj:16 ~tk:1 ~pref:false;
    jacobi_row j_engine mode ~name:"j6" ~ti:300 ~tj:16 ~tk:1 ~pref:true;
  ]

let mm_rows rows = List.filter (fun r -> String.length r.name >= 2 && r.name.[0] = 'm') rows
let jacobi_rows rows = List.filter (fun r -> r.name.[0] = 'j') rows

let render rows =
  let header =
    Printf.sprintf "%-5s %4s %4s %4s %5s %14s %12s %12s %10s %14s %8s" "Ver"
      "TI" "TJ" "TK" "Pref" "Loads" "L1 misses" "L2 misses" "TLB miss" "Cycles"
      "MFLOPS"
  in
  header
  :: List.map
       (fun r ->
         Printf.sprintf "%-5s %4d %4d %4d %5s %14.0f %12.0f %12.0f %10.0f %14.0f %8.1f"
           r.name r.ti r.tj r.tk
           (if r.pref then "yes" else "no")
           r.loads r.l1_misses r.l2_misses r.tlb_misses r.cycles r.mflops)
       rows
