type entry = {
  kernel : string;
  sigma : float;
  trials : int;
  mflops : float;
  degradation_pct : float;
  points : int;
  retries : int;
}

let sigmas = [ 0.0; 0.01; 0.05; 0.10; 0.20 ]
let transient = 0.02

let cases () =
  [ (Kernels.Matmul.kernel, 96); (Kernels.Jacobi3d.kernel, 40) ]

let run ?(machine = Machine.sgi_r10000) ?(jobs = 1) () =
  let mode = Config.budget () in
  List.concat_map
    (fun ((kernel : Kernels.Kernel.t), n) ->
      (* The fault-free reference: the optimum the search finds when it
         can trust every measurement.  Also the engine every chosen
         point is re-measured on, so degradations compare true costs. *)
      let clean = Core.Engine.create ~jobs machine in
      let reference = Core.Eco.optimize_with ~mode clean kernel ~n in
      let c_ref = Core.Executor.cycles reference.Core.Eco.measurement in
      List.map
        (fun sigma ->
          if sigma = 0.0 then
            {
              kernel = kernel.Kernels.Kernel.name;
              sigma;
              trials = 1;
              mflops = reference.Core.Eco.measurement.Core.Executor.mflops;
              degradation_pct = 0.0;
              points = Core.Search_log.points reference.Core.Eco.log;
              retries = 0;
            }
          else begin
            let faults = Faults.make ~seed:11 ~noise:sigma ~transient () in
            (* A noisier machine needs quadratically more repeats: the
               search's near-tie decisions need the aggregate's noise
               held at ~0.4% regardless of sigma, so trials scale with
               sigma^2 (and trial to completion — the adaptive early
               stop trades exactly this robustness for speed).  Each
               trial re-draws the injected noise but reuses the one
               deterministic simulation, mirroring cheap re-timing of a
               compiled candidate on a real machine. *)
            let trials =
              max 3 (int_of_float (ceil (90_000.0 *. sigma *. sigma)))
            in
            let protocol =
              { Core.Engine.default_protocol with trials; min_trials = trials }
            in
            let engine =
              Core.Engine.create ~jobs ~faults ~protocol machine
            in
            let r = Core.Eco.optimize_with ~mode engine kernel ~n in
            let o = r.Core.Eco.outcome in
            (* What the noisy search chose, at its true (clean) cost. *)
            let true_m =
              match
                Core.Search.measure_point clean ~n ~mode o.Core.Search.variant
                  ~bindings:o.Core.Search.bindings
                  ~prefetch:o.Core.Search.prefetch
              with
              | Some out -> out.Core.Search.measurement
              | None -> o.Core.Search.measurement
            in
            let c = Core.Executor.cycles true_m in
            {
              kernel = kernel.Kernels.Kernel.name;
              sigma;
              trials;
              mflops = true_m.Core.Executor.mflops;
              degradation_pct = (c -. c_ref) /. c_ref *. 100.0;
              points = Core.Search_log.points r.Core.Eco.log;
              retries = (Core.Engine.stats engine).Core.Engine.retries;
            }
          end)
        sigmas)
    (cases ())

let render entries =
  Printf.sprintf "%-10s %7s %7s %10s %14s %8s %8s" "Kernel" "sigma" "trials"
    "MFLOPS" "degradation%" "points" "retries"
  :: List.map
       (fun e ->
         Printf.sprintf "%-10s %7.2f %7d %10.1f %14.2f %8d %8d" e.kernel
           e.sigma e.trials e.mflops e.degradation_pct e.points e.retries)
       entries
