(** Extension experiment — noise sensitivity of the guided search.

    The paper's search trusts every empirical measurement; real machines
    return noisy, occasionally corrupted timings.  This experiment
    quantifies how much that costs: tune under seeded measurement faults
    (log-normal timing noise of increasing sigma plus a transient
    failure rate, absorbed by the engine's trials/retry protocol), then
    re-measure each chosen point on a {e clean} engine and report its
    true degradation against the fault-free optimum.  The robustness
    claim is that moderate noise (sigma up to ~10%) degrades the found
    optimum by well under 10%. *)

type entry = {
  kernel : string;
  sigma : float;  (** injected log-normal noise sigma (0 = fault-free) *)
  trials : int;
      (** repeated measurements per candidate, scaled with sigma^2 to
          hold the aggregate's noise roughly constant *)
  mflops : float;  (** true (clean-engine) MFLOPS of the chosen point *)
  degradation_pct : float;
      (** true cycles of the chosen point vs the fault-free optimum, in
          percent (0 = found the same-quality point) *)
  points : int;  (** fresh evaluations the faulty search ran *)
  retries : int;  (** protocol retries it absorbed *)
}

val run : ?machine:Machine.t -> ?jobs:int -> unit -> entry list
val render : entry list -> string list
