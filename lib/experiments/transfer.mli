(** Transfer warm-starts from the persistent performance database: does
    tuning knowledge gathered at one problem size cut the search cost at
    a neighboring size, and what does trusting it cost?

    For each (kernel, machine, size pair) the experiment runs three
    searches, all with the analytical pre-filter armed at the default k:

    - {b populate}: a normal search at the source size [n_from] writing
      its aggregated measurements and summary record into a fresh
      database file (empty at the start, so nothing warm-starts here);
    - {b cold}: the plain search at the target size [n_to] with no
      database — the PR 6 baseline;
    - {b warm}: the same target-size search against the populated
      database — exact hits are served without simulation and the
      nearest-neighbor summary seeds rescaled transfer anchors.

    The row reports fresh simulations saved (cold vs warm), the exact-hit
    and warm-seed counts, and the chosen-point degradation (% MFLOPS lost
    at the tuned point — the price of trusting transferred knowledge). *)

type row = {
  kernel : string;
  machine : string;  (** target: the machine the tuned search runs on *)
  donor : string;
      (** machine whose search populated the database; equals [machine]
          except in cross-machine rows *)
  n_from : int;  (** size the database was populated at *)
  n_to : int;  (** neighboring size the warm search runs at *)
  sims_cold : int;  (** fresh simulations, no database *)
  sims_warm : int;  (** fresh simulations, warm-started *)
  saved_pct : float;  (** (cold - warm) / cold * 100 *)
  db_hits : int;  (** candidates served from the database *)
  warm_seeds : int;  (** transferred warm-start anchors evaluated *)
  mflops_cold : float;
  mflops_warm : float;
  degradation_pct : float;
      (** chosen-point loss when warm-starting: positive = slower *)
}

(** [?donor] populates the database by searching on a different
    machine than the one being tuned (default: the target itself). *)
val run_one :
  ?mode:Core.Executor.mode ->
  ?donor:Machine.t ->
  Machine.t ->
  Kernels.Kernel.t ->
  n_from:int ->
  n_to:int ->
  row

val run : ?mode:Core.Executor.mode -> unit -> row list

(** Every ordered pair of distinct machines, each populating a database
    the other warm-starts from, at a fixed problem size per kernel
    ({!Config.transfer_cross_mm_n} / {!Config.transfer_cross_jacobi_n}).
    Measurement keys carry the machine, so these rows get no exact
    database hits — transfer flows only through the capacity-vector
    nearest-neighbor summary. *)
val run_cross : ?mode:Core.Executor.mode -> unit -> row list
val render : row list -> string list
