type entry = {
  what : string;
  machine : string;
  points : int;
  seconds : float;
  best_mflops : float;
}

let eco_entry engine kernel ~n ~mode what =
  let t0 = Core.Unix_time.now () in
  let r = Core.Eco.optimize_with ~mode engine kernel ~n in
  {
    what;
    machine = (Core.Engine.machine engine).Machine.name;
    points = Core.Search_log.points r.Core.Eco.log;
    seconds = Core.Unix_time.now () -. t0;
    best_mflops = r.Core.Eco.measurement.Core.Executor.mflops;
  }

let atlas_entry engine ~n ~mode =
  let r = Baselines.Atlas_search.tune engine ~n ~mode in
  {
    what = "ATLAS-style MM";
    machine = (Core.Engine.machine engine).Machine.name;
    points = r.Baselines.Atlas_search.points;
    seconds = r.Baselines.Atlas_search.seconds;
    best_mflops = r.Baselines.Atlas_search.measurement.Core.Executor.mflops;
  }

let run ?mode ?(jobs = 1) () =
  let mode = match mode with Some m -> m | None -> Config.budget () in
  let mm_n = Config.mm_tune_size () and j_n = Config.jacobi_tune_size () in
  List.concat_map
    (fun machine ->
      (* One engine per machine: the three searches share its memo
         table, and jobs > 1 spreads each one's candidate batches over
         the domain pool. *)
      let engine = Core.Engine.create ~jobs machine in
      [
        eco_entry engine Kernels.Matmul.kernel ~n:mm_n ~mode "ECO MM";
        atlas_entry engine ~n:mm_n ~mode;
        eco_entry engine Kernels.Jacobi3d.kernel ~n:j_n ~mode "ECO Jacobi";
      ])
    [ Machine.sgi_r10000; Machine.ultrasparc_iie ]

let render entries =
  Printf.sprintf "%-16s %-20s %8s %10s %10s" "Search" "Machine" "Points"
    "Wall sec" "Best MF"
  :: List.map
       (fun e ->
         Printf.sprintf "%-16s %-20s %8d %10.2f %10.1f" e.what e.machine
           e.points e.seconds e.best_mflops)
       entries
