type result = {
  machine : Machine.t;
  series : Series.t list;
}

let run ?mode ?sizes ?tune_n machine =
  let mode = match mode with Some m -> m | None -> Config.budget () in
  let sizes = match sizes with Some s -> s | None -> Config.jacobi_sizes () in
  let tune_n =
    match tune_n with Some n -> n | None -> Config.jacobi_tune_size ()
  in
  let kernel = Kernels.Jacobi3d.kernel in
  let engine = Core.Engine.create machine in
  let eco = Core.Eco.optimize_with ~mode engine kernel ~n:tune_n in
  let program = eco.Core.Eco.outcome.Core.Search.program in
  let padded =
    Transform.Pad.apply_all program ~amount:(Transform.Pad.default_amount machine)
  in
  let sweep p =
    List.map
      (fun n ->
        ( n,
          (Core.Engine.measure_program engine kernel ~n ~mode p)
            .Core.Executor.mflops ))
      sizes
  in
  {
    machine;
    series =
      [
        Series.make "ECO" 'E' (sweep program);
        Series.make "ECO+pad" 'P' (sweep padded);
      ];
  }

let render r =
  (Printf.sprintf "Jacobi with and without array padding on %s"
     r.machine.Machine.name
   :: Series.chart r.series)
  @ ("" :: Series.table r.series)
  @ ("" :: Series.summary r.series)
