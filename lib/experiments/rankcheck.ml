type row = {
  kernel : string;
  machine : string;
  n : int;
  points : int;  (** distinct simulated candidates correlated *)
  spearman : float;
  recall : float;  (** top-k recall at k = [Engine.default_prefilter] *)
  sims_off : int;  (** full simulations, pre-filter disabled *)
  sims_on : int;  (** full simulations, pre-filter at the default k *)
  prefiltered : int;  (** candidates the model skipped *)
  mflops_off : float;
  mflops_on : float;
  degradation_pct : float;
      (** chosen-point loss when pre-filtering: positive = slower *)
}

(* Average ranks (1-based; ties share their mean rank). *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

(* Spearman's rho: Pearson correlation of the rank vectors (the general
   form, correct under ties). *)
let spearman xs ys =
  let n = Array.length xs in
  if n < 2 then 1.0
  else
    let rx = ranks xs and ry = ranks ys in
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean rx and my = mean ry in
    let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
    for i = 0 to n - 1 do
      let a = rx.(i) -. mx and b = ry.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b)
    done;
    if !dx = 0.0 || !dy = 0.0 then 1.0 else !num /. sqrt (!dx *. !dy)

(* Indices of the k smallest values (ties towards the earlier index —
   the same order the engine's pre-filter uses). *)
let top_k k xs =
  let idx = Array.init (Array.length xs) (fun i -> i) in
  Array.sort (fun a b -> compare (xs.(a), a) (xs.(b), b)) idx;
  Array.to_list (Array.sub idx 0 (min k (Array.length idx)))

let run_one ?mode machine kernel ~n =
  let mode = match mode with Some m -> m | None -> Config.budget () in
  (* Reference search: pre-filter off, every candidate fully simulated.
     Its log is the candidate population the model is judged on. *)
  let eng_off = Core.Engine.create machine in
  let eco_off = Core.Eco.optimize_with ~mode eng_off kernel ~n in
  let entries = Core.Search_log.entries eco_off.Core.Eco.log in
  let variants =
    List.map
      (fun (v : Core.Variant.t) -> (v.Core.Variant.name, v))
      eco_off.Core.Eco.variants
  in
  let prepared = Hashtbl.create 8 in
  let score_entry (e : Core.Search_log.entry) =
    match List.assoc_opt e.Core.Search_log.variant variants with
    | None -> None
    | Some v ->
      let p =
        match Hashtbl.find_opt prepared e.Core.Search_log.variant with
        | Some p -> p
        | None ->
          let p = Core.Predict.prepare v ~n in
          Hashtbl.add prepared e.Core.Search_log.variant p;
          p
      in
      (match
         Core.Predict.score machine p ~bindings:e.Core.Search_log.bindings
           ~prefetch:e.Core.Search_log.prefetch
       with
      | s when Float.is_nan s -> None
      | s -> Some (s, e.Core.Search_log.cycles)
      | exception _ -> None)
  in
  let pairs = List.filter_map score_entry entries in
  let predicted = Array.of_list (List.map fst pairs) in
  let measured = Array.of_list (List.map snd pairs) in
  let k = Core.Engine.default_prefilter in
  let recall =
    let points = Array.length measured in
    if points = 0 then 0.0
    else
      let k = min k points in
      let model_top = top_k k predicted and sim_top = top_k k measured in
      float_of_int (List.length (List.filter (fun i -> List.mem i sim_top) model_top))
      /. float_of_int k
  in
  (* Pre-filtered search: same machine, same searches, but each batch
     simulates only the model's top k candidates. *)
  let eng_on = Core.Engine.create ~prefilter:k machine in
  let eco_on = Core.Eco.optimize_with ~mode eng_on kernel ~n in
  let mflops_off = eco_off.Core.Eco.measurement.Core.Executor.mflops in
  let mflops_on = eco_on.Core.Eco.measurement.Core.Executor.mflops in
  {
    kernel = kernel.Kernels.Kernel.name;
    machine = machine.Machine.name;
    n;
    points = Array.length measured;
    spearman = spearman predicted measured;
    recall;
    sims_off = Core.Search_log.fresh eco_off.Core.Eco.log;
    sims_on = Core.Search_log.fresh eco_on.Core.Eco.log;
    prefiltered = Core.Search_log.prefiltered eco_on.Core.Eco.log;
    mflops_off;
    mflops_on;
    degradation_pct =
      (if mflops_off > 0.0 then (mflops_off -. mflops_on) /. mflops_off *. 100.0
       else 0.0);
  }

let machines () =
  [ Machine.sgi_r10000; Machine.ultrasparc_iie; Machine.modern_3level ]

let run ?mode () =
  List.concat_map
    (fun machine ->
      List.map
        (fun n -> run_one ?mode machine Kernels.Matmul.kernel ~n)
        (Config.rankcheck_mm_sizes ())
      @ List.map
          (fun n -> run_one ?mode machine Kernels.Jacobi3d.kernel ~n)
          (Config.rankcheck_jacobi_sizes ()))
    (machines ())

let render rows =
  let header =
    Printf.sprintf "%-10s %-16s %5s %6s %8s %8s %9s %9s %8s" "kernel"
      "machine" "n" "points" "rho" "recall" "sims" "filtered" "deg%"
  in
  let line r =
    Printf.sprintf "%-10s %-16s %5d %6d %8.3f %8.2f %4d/%-4d %9d %+8.2f"
      r.kernel r.machine r.n r.points r.spearman r.recall r.sims_on r.sims_off
      r.prefiltered r.degradation_pct
  in
  let summary =
    let total_off = List.fold_left (fun a r -> a + r.sims_off) 0 rows in
    let total_on = List.fold_left (fun a r -> a + r.sims_on) 0 rows in
    let worst_deg =
      List.fold_left (fun a r -> Float.max a r.degradation_pct) neg_infinity rows
    in
    Printf.sprintf
      "simulations %d -> %d (%.1fx fewer); worst chosen-point degradation \
       %+.2f%%"
      total_off total_on
      (if total_on > 0 then float_of_int total_off /. float_of_int total_on
       else 0.0)
      worst_deg
  in
  (header :: List.map line rows) @ [ ""; summary ]
