type result = {
  machine : Machine.t;
  series : Series.t list;
  eco_points : int;
  atlas_points : int;
}

let run ?mode ?sizes ?tune_n machine =
  let mode = match mode with Some m -> m | None -> Config.budget () in
  let sizes = match sizes with Some s -> s | None -> Config.mm_sizes () in
  let tune_n = match tune_n with Some n -> n | None -> Config.mm_tune_size () in
  (* One engine per machine: the tuning searches and the size sweeps of
     all four versions share its memo table. *)
  let engine = Core.Engine.create machine in
  let eco = Core.Eco.optimize_with ~mode engine Kernels.Matmul.kernel ~n:tune_n in
  let atlas = Baselines.Atlas_search.tune engine ~n:tune_n ~mode in
  let sweep f = List.map (fun n -> (n, f n)) sizes in
  let eco_series =
    sweep (fun n ->
        match Core.Eco.remeasure ~mode machine eco ~n with
        | Some m -> m.Core.Executor.mflops
        | None -> 0.0)
  in
  let native_series =
    sweep (fun n ->
        (Baselines.Native_compiler.measure engine Kernels.Matmul.kernel ~n ~mode)
          .Core.Executor.mflops)
  in
  let atlas_series =
    sweep (fun n ->
        (Baselines.Atlas_search.measure_at engine
           atlas.Baselines.Atlas_search.config ~n ~mode)
          .Core.Executor.mflops)
  in
  let vendor_series =
    sweep (fun n ->
        (Baselines.Vendor_blas.measure engine ~n ~mode).Core.Executor.mflops)
  in
  {
    machine;
    series =
      [
        Series.make "ECO" 'E' eco_series;
        Series.make "Native" 'N' native_series;
        Series.make "ATLAS" 'A' atlas_series;
        Series.make "Vendor" 'V' vendor_series;
      ];
    eco_points = Core.Search_log.points eco.Core.Eco.log;
    atlas_points = atlas.Baselines.Atlas_search.points;
  }

let render r =
  (Printf.sprintf "Matrix Multiply on %s (peak %.0f MFLOPS)"
     r.machine.Machine.name
     (Machine.peak_mflops r.machine)
   :: Series.chart r.series)
  @ ("" :: Series.table r.series)
  @ ("" :: Series.summary r.series)

let run_all () =
  [ run Machine.sgi_r10000; run Machine.ultrasparc_iie ]
