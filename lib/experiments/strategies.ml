type entry = { what : string; mflops : float; points : int }

let run ?mode ?(machine = Machine.sgi_r10000) ?n () =
  let mode = match mode with Some m -> m | None -> Config.budget () in
  let n = match n with Some n -> n | None -> Config.mm_tune_size () in
  let kernel = Kernels.Matmul.kernel in
  (* All five strategies measure through one engine, so a point two
     strategies both visit is simulated once. *)
  let engine = Core.Engine.create machine in
  let eco = Core.Eco.optimize_with ~mode engine kernel ~n in
  let eco_points = Core.Search_log.points eco.Core.Eco.log in
  let guided =
    {
      what = "ECO guided search";
      mflops = eco.Core.Eco.measurement.Core.Executor.mflops;
      points = eco_points;
    }
  in
  (* Random sampling over the winning variant's space, same budget. *)
  let variant = eco.Core.Eco.outcome.Core.Search.variant in
  let random =
    match
      Baselines.Random_search.tune engine ~n ~mode ~points:eco_points ~seed:42
        variant
    with
    | Some r ->
      {
        what = "random sampling (same budget)";
        mflops = r.Baselines.Random_search.measurement.Core.Executor.mflops;
        points = r.Baselines.Random_search.evaluated;
      }
    | None -> { what = "random sampling (same budget)"; mflops = 0.0; points = 0 }
  in
  let annealed =
    match
      Baselines.Anneal.tune engine ~n ~mode ~points:eco_points ~seed:42 variant
    with
    | Some r ->
      {
        what = "simulated annealing (same budget)";
        mflops = r.Baselines.Anneal.measurement.Core.Executor.mflops;
        points = r.Baselines.Anneal.evaluated;
      }
    | None ->
      { what = "simulated annealing (same budget)"; mflops = 0.0; points = 0 }
  in
  let atlas = Baselines.Atlas_search.tune engine ~n ~mode in
  let exhaustive =
    {
      what = "exhaustive grid (ATLAS-style)";
      mflops = atlas.Baselines.Atlas_search.measurement.Core.Executor.mflops;
      points = atlas.Baselines.Atlas_search.points;
    }
  in
  let model =
    match Baselines.Model_only.optimize engine kernel ~n ~mode with
    | Some r ->
      {
        what = "model prediction (no search)";
        mflops = r.Baselines.Model_only.measurement.Core.Executor.mflops;
        points = 1;
      }
    | None -> { what = "model prediction (no search)"; mflops = 0.0; points = 0 }
  in
  [ guided; random; annealed; exhaustive; model ]

let render entries =
  Printf.sprintf "%-34s %10s %8s" "Strategy" "MFLOPS" "Points"
  :: List.map
       (fun e -> Printf.sprintf "%-34s %10.1f %8d" e.what e.mflops e.points)
       entries
