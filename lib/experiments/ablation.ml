type entry = { what : string; mflops : float; points : int }

let run ?mode ?(machine = Machine.sgi_r10000) ?n () =
  let mode = match mode with Some m -> m | None -> Config.budget () in
  let n = match n with Some n -> n | None -> Config.mm_tune_size () in
  let kernel = Kernels.Matmul.kernel in
  (* One engine across all ablation arms: what the full hybrid already
     measured, the handicapped arms replay from the memo table. *)
  let engine = Core.Engine.create machine in
  let eco = Core.Eco.optimize_with ~mode engine kernel ~n in
  let hybrid =
    {
      what = "ECO hybrid (models + search)";
      mflops = eco.Core.Eco.measurement.Core.Executor.mflops;
      points = Core.Search_log.points eco.Core.Eco.log;
    }
  in
  let model_only =
    match Baselines.Model_only.optimize engine kernel ~n ~mode with
    | Some r ->
      {
        what = "model only (no search)";
        mflops = r.Baselines.Model_only.measurement.Core.Executor.mflops;
        points = 1;
      }
    | None -> { what = "model only (no search)"; mflops = 0.0; points = 0 }
  in
  let atlas = Baselines.Atlas_search.tune engine ~n ~mode in
  let search_only =
    {
      what = "search only (no models)";
      mflops = atlas.Baselines.Atlas_search.measurement.Core.Executor.mflops;
      points = atlas.Baselines.Atlas_search.points;
    }
  in
  let no_copy =
    let variants =
      List.filter
        (fun (v : Core.Variant.t) -> v.Core.Variant.copies = [])
        (Core.Derive.variants machine kernel)
    in
    let log = Core.Search_log.create () in
    let outcomes =
      List.filter_map (Core.Search.tune_variant engine ~n ~mode ~log) variants
    in
    match outcomes with
    | [] -> { what = "ECO without copy"; mflops = 0.0; points = 0 }
    | o :: rest ->
      let best =
        List.fold_left
          (fun acc o ->
            if
              Core.Executor.cycles o.Core.Search.measurement
              < Core.Executor.cycles acc.Core.Search.measurement
            then o
            else acc)
          o rest
      in
      {
        what = "ECO without copy";
        mflops = best.Core.Search.measurement.Core.Executor.mflops;
        points = Core.Search_log.points log;
      }
  in
  let no_prefetch =
    let o = eco.Core.Eco.outcome in
    match
      Core.Search.measure_point engine ~n ~mode o.Core.Search.variant
        ~bindings:o.Core.Search.bindings ~prefetch:[]
    with
    | Some out ->
      {
        what = "ECO without prefetch";
        mflops = out.Core.Search.measurement.Core.Executor.mflops;
        points = 1;
      }
    | None -> { what = "ECO without prefetch"; mflops = 0.0; points = 0 }
  in
  [ hybrid; model_only; search_only; no_copy; no_prefetch ]

let render entries =
  Printf.sprintf "%-32s %10s %8s" "Configuration" "MFLOPS" "Points"
  :: List.map
       (fun e -> Printf.sprintf "%-32s %10.1f %8d" e.what e.mflops e.points)
       entries
