let names =
  [ "table1"; "table2"; "table4"; "fig4a"; "fig4b"; "fig5a"; "fig5b";
    "search_cost"; "ablation"; "padding"; "strategies"; "conflicts"; "noise";
    "rankcheck"; "transfer" ]

let banner print title =
  print "";
  print (String.make 72 '=');
  print title;
  print (String.make 72 '=')

let run ~print ?(jobs = 1) name =
  match name with
  | "table1" ->
    banner print "Table 1: performance variation with optimization parameters (SGI)";
    List.iter print (Table1.render (Table1.rows ()))
  | "table2" ->
    banner print "Table 2: simulated architectures";
    List.iter print (Table2.render ())
  | "table4" ->
    banner print "Table 4: derived Matrix Multiply variants (SGI)";
    List.iter print (Table4.render ())
  | "fig4a" ->
    banner print "Figure 4(a): Matrix Multiply on SGI R10000";
    List.iter print (Fig4.render (Fig4.run Machine.sgi_r10000))
  | "fig4b" ->
    banner print "Figure 4(b): Matrix Multiply on Sun UltraSparc IIe";
    List.iter print (Fig4.render (Fig4.run Machine.ultrasparc_iie))
  | "fig5a" ->
    banner print "Figure 5(a): Jacobi on SGI R10000";
    List.iter print (Fig5.render (Fig5.run Machine.sgi_r10000))
  | "fig5b" ->
    banner print "Figure 5(b): Jacobi on Sun UltraSparc IIe";
    List.iter print (Fig5.render (Fig5.run Machine.ultrasparc_iie))
  | "search_cost" ->
    banner print "Section 4.3: cost of search";
    List.iter print (Search_cost.render (Search_cost.run ~jobs ()))
  | "ablation" ->
    banner print "Ablation: models vs search vs hybrid; copy and prefetch (SGI MM)";
    List.iter print (Ablation.render (Ablation.run ()))
  | "padding" ->
    banner print "Extension (paper 4.2): array padding stabilizes Jacobi (SGI)";
    List.iter print (Padding.render (Padding.run Machine.sgi_r10000))
  | "strategies" ->
    banner print "Extension: search strategies at equal budget (SGI MM)";
    List.iter print (Strategies.render (Strategies.run ()))
  | "conflicts" ->
    banner print "Extension: conflict-miss classification of Native vs ECO (SGI MM)";
    List.iter print (Conflicts.render (Conflicts.run ()))
  | "noise" ->
    banner print "Extension: noise sensitivity of the guided search (SGI)";
    List.iter print (Noise.render (Noise.run ~jobs ()))
  | "rankcheck" ->
    banner print
      "Extension: analytical-model rank agreement and pre-filter cost";
    List.iter print (Rankcheck.render (Rankcheck.run ()))
  | "transfer" ->
    banner print
      "Extension: transfer warm-starts from the performance database";
    List.iter print (Transfer.render (Transfer.run ()));
    banner print
      "Extension: cross-machine transfer (donor hierarchy ≠ target)";
    List.iter print (Transfer.render (Transfer.run_cross ()))
  | other ->
    invalid_arg
      (Printf.sprintf "unknown experiment %s (known: %s)" other
         (String.concat ", " names))

let run_everything ~print ?(jobs = 1) () =
  List.iter (run ~print ~jobs) names
