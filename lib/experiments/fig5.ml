type result = {
  machine : Machine.t;
  series : Series.t list;
  eco_points : int;
}

let run ?mode ?sizes ?tune_n machine =
  let mode = match mode with Some m -> m | None -> Config.budget () in
  let sizes = match sizes with Some s -> s | None -> Config.jacobi_sizes () in
  let tune_n = match tune_n with Some n -> n | None -> Config.jacobi_tune_size () in
  let engine = Core.Engine.create machine in
  let eco =
    Core.Eco.optimize_with ~mode engine Kernels.Jacobi3d.kernel ~n:tune_n
  in
  let sweep f = List.map (fun n -> (n, f n)) sizes in
  let eco_series =
    sweep (fun n ->
        match Core.Eco.remeasure ~mode machine eco ~n with
        | Some m -> m.Core.Executor.mflops
        | None -> 0.0)
  in
  let native_series =
    sweep (fun n ->
        (Baselines.Native_compiler.measure engine Kernels.Jacobi3d.kernel ~n ~mode)
          .Core.Executor.mflops)
  in
  {
    machine;
    series =
      [
        Series.make "ECO" 'E' eco_series;
        Series.make "Native" 'N' native_series;
      ];
    eco_points = Core.Search_log.points eco.Core.Eco.log;
  }

let render r =
  (Printf.sprintf "Jacobi on %s" r.machine.Machine.name :: Series.chart r.series)
  @ ("" :: Series.table r.series)
  @ ("" :: Series.summary r.series)

let run_all () = [ run Machine.sgi_r10000; run Machine.ultrasparc_iie ]
