(** §4.3 — "Cost of Search": points evaluated and wall-clock seconds for
    the ECO search on each kernel/machine, against the ATLAS-style
    exhaustive sweep for Matrix Multiply.  The paper reports 60/44
    ECO points for MM (8/6 min) and 94/148 for Jacobi, with the ATLAS
    search 2–4x slower; the reproduction's claim is the same ordering:
    ECO needs several times fewer points and less time than the
    un-guided search.  [jobs > 1] evaluates candidate batches in
    parallel (same points and winners; less wall time). *)

type entry = {
  what : string;
  machine : string;
  points : int;
  seconds : float;  (** wall-clock search time *)
  best_mflops : float;
}

val run : ?mode:Core.Executor.mode -> ?jobs:int -> unit -> entry list
val render : entry list -> string list
