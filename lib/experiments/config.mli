(** Experiment-wide knobs, overridable from the environment so the bench
    harness can trade fidelity for wall-clock:

    - [ECO_BUDGET]: flop budget per simulated measurement (default 400k);
    - [ECO_TABLE1_BUDGET]: budget for the Table-1 counter runs (default 2M);
    - [ECO_FAST]: when set (=1), shrink size sweeps for smoke runs. *)

val budget : unit -> Core.Executor.mode
val table1_budget : unit -> Core.Executor.mode
val fast : unit -> bool

(** Matrix-multiply sweep sizes (Figure 4). *)
val mm_sizes : unit -> int list

(** Jacobi sweep sizes (Figure 5). *)
val jacobi_sizes : unit -> int list

(** Problem sizes the rank-agreement experiment searches at (a subset of
    the Figure 4 / Figure 5 sweeps: each size means two full searches
    per machine). *)
val rankcheck_mm_sizes : unit -> int list

val rankcheck_jacobi_sizes : unit -> int list

(** (populate size, warm-start size) pairs for the transfer-learning
    experiment: the database is filled at the first size and the warm
    search runs at the second. *)
val transfer_mm_pairs : unit -> (int * int) list

val transfer_jacobi_pairs : unit -> (int * int) list

(** Fixed problem sizes for the cross-machine transfer rows (the size
    axis is held constant so each row isolates the machine axis). *)
val transfer_cross_mm_n : unit -> int

val transfer_cross_jacobi_n : unit -> int

(** Reference tuning size for matrix multiply / Jacobi. *)
val mm_tune_size : unit -> int

val jacobi_tune_size : unit -> int

(** Problem sizes for the Table 1 counter experiments. *)
val table1_mm_size : unit -> int

val table1_jacobi_size : unit -> int
