(** Rank-agreement check for the analytical model: does the model order
    candidates the way the simulator does, and what does trusting it
    cost?

    For each (kernel, machine, n) — Matrix Multiply and Jacobi at a
    subset of the Figure 4 / Figure 5 sweep sizes, on both paper
    machines plus the three-level modern configuration — the experiment
    runs the full ECO search twice against fresh engines:

    - {b pre-filter off}: every candidate fully simulated.  The search
      log is the candidate population; each logged point is re-scored
      with {!Core.Predict} and the model's ordering is compared to the
      simulator's via Spearman's rho and top-k recall (k =
      {!Core.Engine.default_prefilter}).
    - {b pre-filter on} at the default k: the two-stage search.  The row
      reports simulations saved ([sims_on] vs [sims_off], plus the
      skipped count) and the chosen-point degradation (% MFLOPS lost at
      the tuned point — the price of trusting the model's ranking). *)

type row = {
  kernel : string;
  machine : string;
  n : int;
  points : int;  (** distinct simulated candidates correlated *)
  spearman : float;  (** rank correlation, model score vs simulated cycles *)
  recall : float;  (** top-k recall at k = [Engine.default_prefilter] *)
  sims_off : int;  (** full simulations, pre-filter disabled *)
  sims_on : int;  (** full simulations, pre-filter at the default k *)
  prefiltered : int;  (** candidates the model skipped *)
  mflops_off : float;
  mflops_on : float;
  degradation_pct : float;
      (** chosen-point loss when pre-filtering: positive = slower *)
}

val run_one : ?mode:Core.Executor.mode -> Machine.t -> Kernels.Kernel.t -> n:int -> row
val run : ?mode:Core.Executor.mode -> unit -> row list
val render : row list -> string list
