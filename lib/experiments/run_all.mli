(** Orchestration: run a named experiment (or all of them) and print its
    rendered output through the supplied line printer. *)

val names : string list

(** [run ~print name] runs one experiment; raises [Invalid_argument] on
    unknown names.  [jobs] sets the evaluation parallelism for the
    experiments that expose it (currently the search-cost comparison);
    results are identical at any [jobs]. *)
val run : print:(string -> unit) -> ?jobs:int -> string -> unit

val run_everything : print:(string -> unit) -> ?jobs:int -> unit -> unit
