type row = {
  kernel : string;
  machine : string;
  donor : string;
  n_from : int;
  n_to : int;
  sims_cold : int;
  sims_warm : int;
  saved_pct : float;
  db_hits : int;
  warm_seeds : int;
  mflops_cold : float;
  mflops_warm : float;
  degradation_pct : float;
}

let with_temp_db f =
  let file = Filename.temp_file "eco_transfer" ".perfdb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () -> f file)

let run_one ?mode ?donor machine kernel ~n_from ~n_to =
  let mode = match mode with Some m -> m | None -> Config.budget () in
  let donor = match donor with Some d -> d | None -> machine in
  let k = Core.Engine.default_prefilter in
  with_temp_db (fun file ->
      (* Populate: a normal two-stage search at the source size ON THE
         DONOR MACHINE (the target machine itself unless [?donor] says
         otherwise), writing its measurements and summary into a fresh
         database.  The file starts empty, so no warm-start fires here.
         Cross-machine rows rely on measurement keys carrying the
         machine: the target search gets no exact hits, only
         nearest-neighbor frontier seeds. *)
      let db = Perfdb.load file in
      let eng_pop = Core.Engine.create ~prefilter:k donor in
      Core.Engine.set_db eng_pop db;
      let (_ : Core.Eco.result) =
        Core.Eco.optimize_with ~mode eng_pop kernel ~n:n_from
      in
      Perfdb.close db;
      (* Cold reference at the target size: the plain PR 6 search, no
         database at all. *)
      let eng_cold = Core.Engine.create ~prefilter:k machine in
      let eco_cold = Core.Eco.optimize_with ~mode eng_cold kernel ~n:n_to in
      (* Warm run at the target size: same search, but seeded from the
         nearest-neighbor summary (and serving any exact hits). *)
      let db = Perfdb.load file in
      let eng_warm = Core.Engine.create ~prefilter:k machine in
      Core.Engine.set_db eng_warm db;
      let eco_warm = Core.Eco.optimize_with ~mode eng_warm kernel ~n:n_to in
      Perfdb.close db;
      let sims_cold = Core.Search_log.fresh eco_cold.Core.Eco.log in
      let sims_warm = Core.Search_log.fresh eco_warm.Core.Eco.log in
      let stats = Core.Engine.stats eng_warm in
      let mflops_cold = eco_cold.Core.Eco.measurement.Core.Executor.mflops in
      let mflops_warm = eco_warm.Core.Eco.measurement.Core.Executor.mflops in
      {
        kernel = kernel.Kernels.Kernel.name;
        machine = machine.Machine.name;
        donor = donor.Machine.name;
        n_from;
        n_to;
        sims_cold;
        sims_warm;
        saved_pct =
          (if sims_cold > 0 then
             float_of_int (sims_cold - sims_warm)
             /. float_of_int sims_cold *. 100.0
           else 0.0);
        db_hits = stats.Core.Engine.db_hits;
        warm_seeds = stats.Core.Engine.warm_starts;
        mflops_cold;
        mflops_warm;
        degradation_pct =
          (if mflops_cold > 0.0 then
             (mflops_cold -. mflops_warm) /. mflops_cold *. 100.0
           else 0.0);
      })

let machines () =
  [ Machine.sgi_r10000; Machine.ultrasparc_iie; Machine.modern_3level ]

let run ?mode () =
  List.concat_map
    (fun machine ->
      List.map
        (fun (n_from, n_to) ->
          run_one ?mode machine Kernels.Matmul.kernel ~n_from ~n_to)
        (Config.transfer_mm_pairs ())
      @ List.map
          (fun (n_from, n_to) ->
            run_one ?mode machine Kernels.Jacobi3d.kernel ~n_from ~n_to)
          (Config.transfer_jacobi_pairs ()))
    (machines ())

(* Cross-machine transfer: populate the database on one memory
   hierarchy, warm-start a DIFFERENT one from it.  The problem size is
   held fixed so each row isolates the machine axis — the
   nearest-neighbor summary is found purely through the capacity-vector
   distance (Perfdb), never through an exact key match. *)
let run_cross ?mode () =
  let ms = machines () in
  let pairs =
    List.concat_map
      (fun d -> List.filter_map (fun t -> if d == t then None else Some (d, t)) ms)
      ms
  in
  List.concat_map
    (fun (donor, target) ->
      let n_mm = Config.transfer_cross_mm_n () in
      let n_j = Config.transfer_cross_jacobi_n () in
      [
        run_one ?mode ~donor target Kernels.Matmul.kernel ~n_from:n_mm
          ~n_to:n_mm;
        run_one ?mode ~donor target Kernels.Jacobi3d.kernel ~n_from:n_j
          ~n_to:n_j;
      ])
    pairs

let render rows =
  let header =
    Printf.sprintf "%-10s %-18s %-18s %9s %9s %7s %5s %6s %8s" "kernel"
      "donor" "machine" "n" "sims" "saved%" "hits" "seeds" "deg%"
  in
  let line r =
    let donor = if String.equal r.donor r.machine then "-" else r.donor in
    Printf.sprintf
      "%-10s %-18s %-18s %4d->%-4d %4d/%-4d %6.1f%% %5d %6d %+7.2f%%" r.kernel
      donor r.machine r.n_from r.n_to r.sims_warm r.sims_cold r.saved_pct
      r.db_hits r.warm_seeds r.degradation_pct
  in
  let summary =
    let total_cold = List.fold_left (fun a r -> a + r.sims_cold) 0 rows in
    let total_warm = List.fold_left (fun a r -> a + r.sims_warm) 0 rows in
    let worst_deg =
      List.fold_left (fun a r -> Float.max a r.degradation_pct) neg_infinity
        rows
    in
    Printf.sprintf
      "fresh simulations %d -> %d (%.1f%% fewer with warm-starts); worst \
       chosen-point degradation %+.2f%%"
      total_cold total_warm
      (if total_cold > 0 then
         float_of_int (total_cold - total_warm)
         /. float_of_int total_cold *. 100.0
       else 0.0)
      worst_deg
  in
  (header :: List.map line rows) @ [ ""; summary ]
