(** ECM-style analytical throughput model (the missing middle tier
    between pure constraint arithmetic and full cache simulation).

    Given a machine description and a {!nest} — the fully-bound loop
    structure of one candidate implementation, with its uniformly
    generated reference groups — the model predicts per-cache-level
    line traffic, TLB traffic and issue-slot pressure, and combines
    them with {!Memsim.Cost.of_components} into predicted cycles.  No
    trace is generated and nothing is simulated: the cost is
    O(loops x groups x levels) per candidate, thousands of times
    cheaper than even the sampled simulator, which is what makes
    analytical-first ranking of whole candidate batches affordable.

    The traffic prediction is the classical working-set argument run
    per level: scanning the loop nest from the outside in, find the
    outermost depth at which the combined footprint of one iteration
    (via {!Analysis.Footprint}) fits the level's effective capacity;
    every group then misses once per line of that footprint, re-fetched
    once per iteration of the loops outside that depth — except along
    loops the group is invariant to, which re-use the resident lines.
    TLB behaviour follows the same scheme with pages against the TLB
    reach.  Predicted stalls charge each level's misses with the
    machine's per-level latencies exactly as the simulator's demand
    accounting does, so predictions and measurements live on the same
    scale. *)

(** One loop of the candidate nest, outermost first.  [var] is the
    original (element) loop variable whose extent this loop advances:
    a tiled loop appears twice — a control loop with [trip = ceil(range
    / tile)] and an element loop with [trip = tile].  [unroll] > 1
    marks an unroll-and-jammed loop: its body covers [unroll] values of
    [var] per executed iteration (the trip count still counts iteration
    {e points}, so overhead is divided by [unroll]). *)
type loop = { var : string; trip : int; unroll : int }

(** A candidate implementation as the model sees it: the loop structure,
    the uniformly generated reference groups of the body (from
    {!Analysis.Reuse.groups_of_body} of the {e untransformed} kernel —
    the nest's loop structure encodes the transformation), the total
    flop count, the register-reuse (innermost) loop variable if scalar
    replacement rotates along one, arrays covered by software prefetch
    with their distances, and arrays copied into contiguous
    temporaries. *)
type nest = {
  loops : loop list;  (** outermost first; empty means a straight body *)
  groups : Analysis.Reuse.group list;
  flops : int;
  reuse_var : string option;
  prefetch : (string * int) list;  (** (array, distance) *)
  copied : string list;
}

(** What the model predicted, level by level. *)
type prediction = {
  cost : Memsim.Cost.t;  (** predicted cycles via {!Memsim.Cost.of_components} *)
  accesses : float;  (** predicted loads + stores (demand) *)
  level_misses : float array;  (** predicted misses per cache level *)
  tlb_misses : float;
  fit_depths : int array;
      (** per level, the loop depth (0 = whole nest) whose working set
          first fits — the tile level the capacity maps to *)
}

val predict : Machine.t -> nest -> prediction

(** Predicted total cycles — the ranking score. *)
val cycles : prediction -> float

val pp : Format.formatter -> prediction -> unit
