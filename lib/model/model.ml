module Footprint = Analysis.Footprint
module Reuse = Analysis.Reuse
module Poly = Analysis.Poly

type loop = { var : string; trip : int; unroll : int }

type nest = {
  loops : loop list;
  groups : Reuse.group list;
  flops : int;
  reuse_var : string option;
  prefetch : (string * int) list;
  copied : string list;
}

type prediction = {
  cost : Memsim.Cost.t;
  accesses : float;
  level_misses : float array;
  tlb_misses : float;
  fit_depths : int array;
}

let cycles p = p.cost.Memsim.Cost.total_cycles

(* Effective capacity of cache level [l] in elements: the same
   associativity-reduced bound the derivation's capacity constraints use
   ((assoc-1)/assoc of the capacity — one way per set is lost to the
   streaming references), so the model's fitting depths agree with the
   tile sizes the constraints admit. *)
let effective_capacity machine l =
  let c = Machine.cache_level machine l in
  let cap = c.Machine.size_bytes / 8 in
  if c.Machine.assoc = 1 then cap else (c.Machine.assoc - 1) * cap / c.Machine.assoc

(* Fraction of a prefetched stream's miss latency the simulator manages
   to hide: distance 1 overlaps roughly one iteration of latency,
   larger distances asymptotically hide everything.  Saturates below 1
   — the TLB-dropped and ramp-up prefetches always leak some stall. *)
let prefetch_hiding distance =
  if distance <= 0 then 0.0
  else Float.min 0.95 (float_of_int distance /. float_of_int (distance + 1))

let predict machine nest =
  let loops = Array.of_list nest.loops in
  let m = Array.length loops in
  let n_levels = Machine.levels machine in
  let trip i = max 1 loops.(i).trip in
  (* Extent of [v] inside scope depth [d] (loops d..m-1): the product of
     the trips of the inner loops advancing it. *)
  let extent_at d v =
    let e = ref 1 in
    for i = d to m - 1 do
      if loops.(i).var = v then e := !e * trip i
    done;
    !e
  in
  let extents_at d v = Poly.const (extent_at d v) in
  let peval p = Poly.eval (fun _ -> 1) p in
  let is_copied g = List.mem g.Reuse.array nest.copied in
  (* Per-group footprint of one iteration at scope depth [d]. *)
  let g_elems g d = peval (Footprint.group_elements (extents_at d) g) in
  let g_runs g d =
    if is_copied g then 1 else max 1 (peval (Footprint.group_runs (extents_at d) g))
  in
  let total_elems d =
    List.fold_left (fun acc g -> acc + g_elems g d) 0 nest.groups
  in
  (* Distinct lines of granularity [line] behind a footprint of [elems]
     elements in [runs] contiguous runs. *)
  let lines_of ~line ~elems ~runs =
    let run_len = float_of_int elems /. float_of_int runs in
    float_of_int runs *. Float.max 1.0 (Float.round (run_len /. float_of_int line +. 0.5))
  in
  let pages_of ~page_elems ~elems ~runs =
    lines_of ~line:page_elems ~elems ~runs
  in
  let outer_iters d =
    let p = ref 1.0 in
    for i = 0 to d - 1 do
      p := !p *. float_of_int (trip i)
    done;
    !p
  in
  let invariant_along g i =
    List.for_all (fun s -> Ir.Aff.coeff s loops.(i).var = 0) g.Reuse.signature
  in
  (* Times the fitting-scope footprint of [g] is re-fetched: once per
     iteration of the loops outside depth [d_fit], except that loops
     immediately outside that the group is invariant to keep its lines
     resident.  The credit applies while the resident set fits the
     protected ways (the associativity-reduced capacity): the way per
     set the reduction surrenders is what absorbs the streaming
     neighbours flowing around the resident tile. *)
  let refetches g d_fit cap =
    let resident = g_elems g d_fit in
    let rec peel d =
      if d = 0 then 1.0
      else if invariant_along g (d - 1) && resident <= cap then peel (d - 1)
      else outer_iters d
    in
    peel d_fit
  in
  (* Fitting depth at capacity [cap]: the outermost scope whose combined
     working set fits. *)
  let fit_depth cap =
    let rec go d = if d > m then m else if total_elems d <= cap then d else go (d + 1) in
    go 0
  in
  (* --- per-level cache traffic --- *)
  let fit_depths = Array.make n_levels 0 in
  let level_misses = Array.make n_levels 0.0 in
  let miss_at g ~cap ~line d =
    refetches g d cap *. lines_of ~line ~elems:(g_elems g d) ~runs:(g_runs g d)
  in
  (* A set-associative cache does not fall off a cliff the instant the
     working set exceeds the capacity: a footprint a few percent over
     still keeps most of its lines resident.  Blend between the
     estimates at the fitting depth and one scope further out in
     proportion to the overflow, so the model's cost is continuous in
     the tile sizes instead of inverting the ranking right at the
     capacity boundary (where the constraints place the best tiles). *)
  let group_misses g ~cap ~line =
    let d = fit_depth cap in
    if d = 0 then miss_at g ~cap ~line 0
    else
      let over = float_of_int (total_elems (d - 1)) /. float_of_int cap in
      if over <= 2.0 then
        let q = over -. 1.0 in
        (q *. miss_at g ~cap ~line d)
        +. ((1.0 -. q) *. miss_at g ~cap ~line (d - 1))
      else miss_at g ~cap ~line d
  in
  let group_level_misses =
    (* per group, per level, for the stall attribution below *)
    List.map
      (fun g ->
        let per_level =
          Array.init n_levels (fun l ->
              let cap = effective_capacity machine l in
              let line = Machine.line_elems machine l in
              group_misses g ~cap ~line)
        in
        (g, per_level))
      nest.groups
  in
  for l = 0 to n_levels - 1 do
    fit_depths.(l) <- fit_depth (effective_capacity machine l);
    level_misses.(l) <-
      List.fold_left (fun acc (_, per) -> acc +. per.(l)) 0.0 group_level_misses
  done;
  (* A level cannot miss more often than the level above it misses into
     it; clamping keeps the per-level numbers physically consistent even
     where the independent fitting-depth estimates disagree. *)
  for l = 1 to n_levels - 1 do
    if level_misses.(l) > level_misses.(l - 1) then
      level_misses.(l) <- level_misses.(l - 1)
  done;
  (* --- TLB traffic --- *)
  let page_elems = machine.Machine.tlb.Machine.page_bytes / 8 in
  let tlb_reach = machine.Machine.tlb.Machine.entries * page_elems in
  let tlb_pages g d =
    pages_of ~page_elems ~elems:(g_elems g d) ~runs:(g_runs g d)
  in
  let tlb_total d =
    List.fold_left (fun acc g -> acc +. tlb_pages g d) 0.0 nest.groups
  in
  let tlb_entries = float_of_int machine.Machine.tlb.Machine.entries in
  let tlb_fit =
    let rec go d =
      if d > m then m else if tlb_total d <= tlb_entries then d else go (d + 1)
    in
    go 0
  in
  let tlb_miss_at d =
    List.fold_left
      (fun acc g -> acc +. (refetches g d tlb_reach *. tlb_pages g d))
      0.0 nest.groups
  in
  let tlb_misses =
    (* Same overflow blending as the caches: the TLB's reach boundary is
       not a cliff either. *)
    if tlb_fit = 0 then tlb_miss_at 0
    else
      let over = tlb_total (tlb_fit - 1) /. tlb_entries in
      if over <= 2.0 then
        let q = over -. 1.0 in
        (q *. tlb_miss_at tlb_fit) +. ((1.0 -. q) *. tlb_miss_at (tlb_fit - 1))
      else tlb_miss_at tlb_fit
  in
  (* --- issue-slot pressure --- *)
  let points = outer_iters m in
  let innermost_trip v =
    (* trip of the innermost loop advancing [v]: the span a register
       rotation along [v] persists for *)
    let t = ref 1 in
    Array.iter (fun l -> if l.var = v then t := max 1 l.trip) loops;
    !t
  in
  let group_accesses g =
    let members = List.length g.Reuse.members in
    let fresh =
      match nest.reuse_var with
      | Some v ->
        let saved = Reuse.group_temporal_savings g v in
        (* Saved members cost one real access per rotation span instead
           of one per point. *)
        float_of_int (max 0 (members - saved))
        +. (float_of_int (min members saved) /. float_of_int (innermost_trip v))
      | None -> float_of_int members
    in
    (* Unroll-and-jam: a group invariant along a jammed loop is loaded
       once per jam factor (scalar replacement holds it across the
       unrolled copies). *)
    let jam_credit =
      Array.fold_left
        (fun acc i ->
          let l = loops.(i) in
          if
            l.unroll > 1
            && Some l.var <> nest.reuse_var
            && invariant_along g i
          then acc *. float_of_int l.unroll
          else acc)
        1.0
        (Array.init m (fun i -> i))
    in
    fresh /. jam_credit *. points
  in
  let demand_accesses =
    List.fold_left (fun acc g -> acc +. group_accesses g) 0.0 nest.groups
  in
  let prefetch_count =
    (* One prefetch per line per prefetched stream: the inserted
       prefetches are guarded to the line boundary, so each L1 line of
       the stream costs one issue slot. *)
    let line = float_of_int (Machine.line_elems machine 0) in
    List.fold_left
      (fun acc (array, _) ->
        List.fold_left
          (fun acc (g, _) ->
            if g.Reuse.array = array then acc +. (points /. line) else acc)
          acc group_level_misses)
      0.0 nest.prefetch
  in
  let cpu = machine.Machine.cpu in
  let mem_issue =
    (demand_accesses +. prefetch_count) /. float_of_int cpu.Machine.mem_ports
  in
  let fp_issue =
    float_of_int nest.flops /. float_of_int cpu.Machine.flops_per_cycle
  in
  let loop_iterations =
    (* executed iterations of every loop statement; a jammed loop (and
       everything it encloses) executes 1/unroll as many bodies *)
    let it = ref 0.0 in
    let enclosing_unroll = ref 1.0 in
    let prefix = ref 1.0 in
    for i = 0 to m - 1 do
      if loops.(i).unroll > 1 then
        enclosing_unroll := !enclosing_unroll *. float_of_int loops.(i).unroll;
      prefix := !prefix *. float_of_int (trip i);
      it := !it +. (!prefix /. !enclosing_unroll)
    done;
    !it
  in
  let other_issue =
    (loop_iterations *. float_of_int cpu.Machine.loop_overhead_cycles)
    +. (prefetch_count *. float_of_int (cpu.Machine.prefetch_issue_cycles - 1))
  in
  (* --- predicted stalls: the simulator's demand accounting ---
     a miss at level l-1 pays hit_cycles(l) to be served by level l,
     a miss in the last cache pays the memory latency, and each TLB
     miss pays the refill penalty.  Prefetched arrays keep the traffic
     (the lines still move) but hide most of the latency. *)
  let stall =
    let hit_cycles l = (Machine.cache_level machine l).Machine.hit_cycles in
    let per_group (g, per) =
      let s = ref 0.0 in
      for l = 1 to n_levels - 1 do
        s := !s +. (per.(l - 1) *. float_of_int (hit_cycles l))
      done;
      s := !s +. (per.(n_levels - 1) *. float_of_int machine.Machine.memory_latency_cycles);
      let hidden =
        match List.assoc_opt g.Reuse.array nest.prefetch with
        | Some d -> prefetch_hiding d
        | None -> 0.0
      in
      !s *. (1.0 -. hidden)
    in
    List.fold_left (fun acc gp -> acc +. per_group gp) 0.0 group_level_misses
    +. (tlb_misses *. float_of_int machine.Machine.tlb.Machine.miss_cycles)
  in
  let cost =
    Memsim.Cost.of_components machine ~mem_issue ~fp_issue ~other_issue ~stall
      ~flops:nest.flops
  in
  {
    cost;
    accesses = demand_accesses +. prefetch_count;
    level_misses;
    tlb_misses;
    fit_depths;
  }

let pp fmt p =
  Format.fprintf fmt "predicted %a; accesses=%.0f" Memsim.Cost.pp p.cost
    p.accesses;
  Array.iteri
    (fun l miss ->
      Format.fprintf fmt " L%d=%.0f@@d%d" (l + 1) miss p.fit_depths.(l))
    p.level_misses;
  Format.fprintf fmt " tlb=%.0f" p.tlb_misses
