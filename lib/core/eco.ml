type result = {
  outcome : Search.outcome;
  measurement : Executor.measurement;
  variants : Variant.t list;
  log : Search_log.t;
  engine : Engine.t;
}

type infeasibility =
  | No_model_point
  | Point_pruned
  | Point_failed of Engine.failure_reason
  | Search_found_nothing

exception
  No_feasible_variant of {
    kernel : string;
    n : int;
    per_variant : (string * infeasibility) list;
  }

let describe_infeasibility = function
  | No_model_point -> "the model found no starting point"
  | Point_pruned -> "model-initial point rejected by the constraints"
  | Point_failed reason -> Engine.describe_failure reason
  | Search_found_nothing -> "search measured no feasible point"

(* Stable slugs for the shared CLI/service error schema; [Point_failed]
   composes with [Engine.failure_code] downstream. *)
let infeasibility_code = function
  | No_model_point -> "no_model_point"
  | Point_pruned -> "point_pruned"
  | Point_failed _ -> "point_failed"
  | Search_found_nothing -> "search_found_nothing"

let () =
  Printexc.register_printer (function
    | No_feasible_variant { kernel; n; per_variant } ->
      Some
        (Printf.sprintf "Eco.No_feasible_variant(%s, n=%d):\n%s" kernel n
           (String.concat "\n"
              (List.map
                 (fun (v, why) ->
                   Printf.sprintf "  %s: %s" v (describe_infeasibility why))
                 per_variant)))
    | _ -> None)

let optimize_with ?(mode = Executor.default_budget) ?(max_variants = 4) ?log
    engine kernel ~n =
  let machine = Engine.machine engine in
  (* With the default [Cycles] objective this is exactly
     [Executor.cycles] — triage and winner selection are byte-for-byte
     the historical behaviour. *)
  let score m = Objective.score (Engine.objective engine) machine m in
  let variants = Derive.variants machine kernel in
  (* A caller-supplied log lets graceful-degradation paths (the CLI's
     --timeout, the service's cancel/deadline partial results) report
     the best point found before the search was cut short. *)
  let log = match log with Some l -> l | None -> Search_log.create () in
  let armed = Engine.prefilter engine <> None in
  (* Triage: measure every variant once at its model-initial point and
     fully search only the most promising — the "models limit the search
     to a small number of candidate implementations" part of the
     paper's abstract.  The triage points are independent across
     variants, so they evaluate as one engine batch. *)
  let triaged =
    if armed then []
    else
    let pointed =
      List.filter_map
        (fun v ->
          match Search.model_point machine ~n v with
          | None -> None
          | Some bindings -> Some (v, bindings))
        variants
    in
    let evaluations =
      Engine.evaluate_batch engine ~log
        (List.map
           (fun (v, bindings) ->
             Engine.request v ~n ~mode ~bindings:(List.sort compare bindings))
           pointed)
    in
    let scored =
      List.concat
        (List.map2
           (fun (v, _) ev ->
             match ev with
             | Some ev -> [ (v, score ev.Engine.measurement) ]
             | None -> [])
           pointed evaluations)
    in
    let sorted = List.sort (fun (_, c1) (_, c2) -> compare c1 c2) scored in
    List.filteri (fun i _ -> i < max_variants) (List.map fst sorted)
  in
  let outcomes =
    if armed then
      (* Analytical triage: rank every variant's model-initial point
         with the predictor (zero simulations) and tune the best-ranked
         variant, falling back down the ranking when a search comes up
         empty.  Combined with the armed batch search this is what
         makes the pre-filter's >=3x simulation saving possible: the
         model, not the simulator, narrows both the variant and the
         candidate sets. *)
      let ranked =
        List.map fst
          (List.sort
             (fun (_, s1) (_, s2) -> compare s1 s2)
             (List.filter_map
                (fun v ->
                  match Search.model_point machine ~n v with
                  | None -> None
                  | Some bindings ->
                    let s =
                      match
                        Predict.score_point machine v ~n ~bindings ~prefetch:[]
                      with
                      | s when Float.is_nan s -> infinity
                      | s -> s
                      | exception _ -> infinity
                    in
                    Some (v, s))
                variants))
      in
      let keep = max 1 (max_variants / 4) in
      let rec first k = function
        | [] -> []
        | _ when k = 0 -> []
        | v :: rest -> (
          match Search.tune_variant engine ~n ~mode ~log v with
          | Some o -> o :: first (k - 1) rest
          | None -> first k rest)
      in
      first keep ranked
    else List.filter_map (Search.tune_variant engine ~n ~mode ~log) triaged
  in
  match outcomes with
  | [] ->
    (* Nothing survived.  Diagnose each derived variant from the
       engine's memo: the triage already evaluated every variant's
       model-initial point, so the typed reason is on record. *)
    let per_variant =
      List.map
        (fun v ->
          let why =
            match Search.model_point machine ~n v with
            | None -> No_model_point
            | Some bindings -> (
              match
                Engine.explain engine
                  (Engine.request v ~n ~mode
                     ~bindings:(List.sort compare bindings))
              with
              | `Pruned -> Point_pruned
              | `Failed reason -> Point_failed reason
              | `Measured | `Unknown -> Search_found_nothing)
          in
          (v.Variant.name, why))
        variants
    in
    raise
      (No_feasible_variant
         { kernel = kernel.Kernels.Kernel.name; n; per_variant })
  | o :: rest ->
    let best =
      List.fold_left
        (fun acc o ->
          if score o.Search.measurement < score acc.Search.measurement then o
          else acc)
        o rest
    in
    (* Sampled runs: the adaptive confirmation policy may have deferred
       the per-variant exact polish; the cross-variant winner gets it
       here, once.  Memoized evaluations make this free when the
       per-variant polish already ran. *)
    let best = Search.polish_winner engine ~n ~mode ~log best in
    (* Persist the run's summary for future transfer warm-starts: the
       chosen point plus the log's fresh evaluations as the frontier
       (the database normalizes, dedups and caps it).  Only successful
       measurements appear here — failed and quarantined candidates
       never produced log entries. *)
    (match Engine.db engine with
    | None -> ()
    | Some db ->
      let point_of_entry (e : Search_log.entry) =
        {
          Perfdb.variant = e.Search_log.variant;
          bindings = List.sort compare e.Search_log.bindings;
          prefetch = List.sort compare e.Search_log.prefetch;
          cycles = e.Search_log.cycles;
          mflops = e.Search_log.mflops;
        }
      in
      let best_point =
        {
          Perfdb.variant = best.Search.variant.Variant.name;
          bindings = List.sort compare best.Search.bindings;
          prefetch = List.sort compare best.Search.prefetch;
          cycles = Executor.cycles best.Search.measurement;
          mflops = best.Search.measurement.Executor.mflops;
        }
      in
      match
        Perfdb.add_summary db
          {
            Perfdb.kernel = kernel.Kernels.Kernel.name;
            machine = machine.Machine.name;
            capacity = Perfdb.capacity_vector machine;
            n;
            best = best_point;
            frontier =
              best_point :: List.map point_of_entry (Search_log.entries log);
          }
      with
      | () -> ()
      | exception e ->
        (* an unappendable store degrades persistence; the answer in
           hand is unaffected *)
        Engine.degrade_db engine (Printexc.to_string e));
    { outcome = best; measurement = best.Search.measurement; variants; log; engine }

let optimize ?mode ?max_variants ?jobs ?objective ?prefilter machine kernel ~n =
  optimize_with ?mode ?max_variants
    (Engine.create ?jobs ?objective ?prefilter machine)
    kernel ~n

let remeasure ?(mode = Executor.default_budget) machine result ~n =
  let o = result.outcome in
  (* Reuse the tuning engine (and its memo) when re-measuring on the
     same machine; cross-machine remeasurement gets its own engine. *)
  let engine =
    if
      (Engine.machine result.engine).Machine.name = machine.Machine.name
    then result.engine
    else Engine.create machine
  in
  (* A tuned version keeps its parameters across problem sizes; tiles
     larger than the problem simply cover the whole array. *)
  let tile_params =
    List.filter_map
      (fun (p : Param.t) ->
        match p.Param.kind with
        | Param.Tile -> Some p.Param.name
        | Param.Unroll -> None)
      (Variant.params o.Search.variant)
  in
  let bindings =
    List.map
      (fun (k, v) -> if List.mem k tile_params then (k, min v n) else (k, v))
      o.Search.bindings
  in
  match
    Search.measure_point engine ~n ~mode o.Search.variant ~bindings
      ~prefetch:o.Search.prefetch
  with
  | Some outcome -> Some outcome.Search.measurement
  | None -> None
