(* Demand-trace capture and prefetch synthesis.

   The prefetch-distance search evaluates many candidates whose demand
   accesses are identical — only the injected prefetch events differ.
   [capture] runs the demand (prefetch-free) program once through the
   bytecode VM with iteration marks enabled; [synthesize] then rebuilds
   the exact packed event stream of any prefetch plan by interleaving
   the recorded demand events with prefetch events computed from the
   marks — no re-interpretation of the program.

   Exactness contract (checked by the [vm] test suite): the synthesized
   stream is bit-identical to executing
   [Prefetch_insert.apply]-transformed programs, including the warm-up
   cut position used by budgeted measurement.  This relies on mirroring
   three behaviours: [apply] prepends one prefetch per deduplicated
   stream to each innermost-loop body (so per-iteration order is
   prefetches first, in application order — last applied array first);
   the prefetch address is the demand offset shifted by
   [coeff(var) * distance * step]; and the interpreter emits nothing
   for prefetches of register-resident scalars. *)

type rep = {
  rconst : int;
      (* ((base + folded const) lsl 5) lor tag_prefetch: the packed
         event value at distance 0 with all mark slots zero *)
  rterms : (int * int) array;  (* (mark-record field, coeff lsl 5) *)
  vcoef : int;  (* coeff of the loop var * step, lsl 5 *)
}

type t = {
  program : Ir.Program.t;  (* the demand program *)
  stats : Ir.Exec.stats;
  events : int array;
  marks : int array;
  cut_events : int;  (* -1 when the mode needs no warm-up pass *)
  cut_marks : int;
  sites : (string * rep array) array array;  (* per mark id *)
  mark_width : int array;  (* record width in words, per mark id *)
  words : int;
}

let program t = t.program
let stats t = t.stats
let words t = t.words

let capture machine (kernel : Kernels.Kernel.t) ~n ~(mode : Executor.mode)
    (program : Ir.Program.t) =
  let params = Kernels.Kernel.params kernel n in
  let register_budget = Machine.available_registers machine in
  let line_elems = Machine.line_elems machine 0 in
  let vm = Ir.Vm.compile ~marks:true ~register_budget ~params program in
  let flop_budget, warm_budget =
    match mode with
    | Executor.Full -> (None, None)
    | Executor.Budget b ->
      ( Some b,
        if b < kernel.Kernels.Kernel.flops n then Some (max 1 (b / 2)) else None
      )
  in
  let r = Ir.Vm.run ?flop_budget ?warm_budget vm in
  let mark_slots = Ir.Vm.mark_slots vm in
  let placements, _ =
    Ir.Exec.placements ~with_data:false ~register_budget ~params program
  in
  let placement_of name =
    List.find (fun pl -> pl.Ir.Exec.name = name) placements
  in
  let param_value x =
    match List.assoc_opt x params with
    | Some v -> v
    | None ->
      invalid_arg (Printf.sprintf "Demand_trace.capture: unbound parameter %s" x)
  in
  let slot_of = Hashtbl.create 16 in
  List.iteri
    (fun i v -> Hashtbl.replace slot_of v i)
    (Ir.Stmt.loop_vars program.Ir.Program.body);
  let inner = Ir.Stmt.innermost_loops program.Ir.Program.body in
  let sites =
    List.mapi
      (fun id (l : Ir.Stmt.loop) ->
        let field_of_slot =
          let tbl = Hashtbl.create 8 in
          Array.iteri (fun i s -> Hashtbl.replace tbl s i) mark_slots.(id);
          Hashtbl.find tbl
        in
        let refs = Ir.Stmt.access_refs l.Ir.Stmt.body in
        (* Group by array, first-occurrence order, in-memory only. *)
        let arrays = ref [] in
        List.iter
          (fun ((r : Ir.Reference.t), _) ->
            let a = r.Ir.Reference.array in
            if
              (placement_of a).Ir.Exec.in_memory
              && not (List.mem a !arrays)
            then arrays := a :: !arrays)
          refs;
        List.rev_map
          (fun a ->
            let pl = placement_of a in
            let seen = Hashtbl.create 8 in
            let reps =
              List.filter_map
                (fun ((r : Ir.Reference.t), _) ->
                  if r.Ir.Reference.array <> a then None
                  else
                    let key =
                      Transform.Prefetch_insert.stream_key ~line_elems r
                    in
                    if Hashtbl.mem seen key then None
                    else begin
                      Hashtbl.add seen key ();
                      let offset =
                        List.fold_left2
                          (fun acc idx stride ->
                            Ir.Aff.add acc (Ir.Aff.scale stride idx))
                          Ir.Aff.zero r.Ir.Reference.idx pl.Ir.Exec.strides
                      in
                      let const = ref (Ir.Aff.const_part offset) in
                      let terms =
                        List.filter_map
                          (fun (c, x) ->
                            match Hashtbl.find_opt slot_of x with
                            | Some slot -> Some (slot, c)
                            | None ->
                              const := !const + (c * param_value x);
                              None)
                          (Ir.Aff.terms offset)
                      in
                      let rconst =
                        ((pl.Ir.Exec.base + !const) lsl 5)
                        lor Ir.Sink.tag_prefetch
                      in
                      let rterms =
                        Array.of_list
                          (List.map
                             (fun (slot, c) -> (field_of_slot slot, c lsl 5))
                             terms)
                      in
                      let vcoef =
                        (Ir.Aff.coeff offset l.Ir.Stmt.var * l.Ir.Stmt.step)
                        lsl 5
                      in
                      Some { rconst; rterms; vcoef }
                    end)
                refs
            in
            (a, Array.of_list reps))
          !arrays
        |> Array.of_list)
      inner
  in
  {
    program;
    stats = r.Ir.Vm.stats;
    events = Array.sub r.Ir.Vm.events 0 r.Ir.Vm.n_events;
    marks = Array.sub r.Ir.Vm.marks 0 r.Ir.Vm.n_marks;
    cut_events = r.Ir.Vm.cut_events;
    cut_marks = r.Ir.Vm.cut_marks;
    sites = Array.of_list sites;
    mark_width = Array.map (fun slots -> 2 + Array.length slots) mark_slots;
    words = r.Ir.Vm.n_events + r.Ir.Vm.n_marks;
  }

let synthesize t ~plan ~(into : Ir.Vm.Buf.t) =
  Ir.Vm.Buf.clear into;
  (* Per-iteration emission list per mark id: [apply] is folded over the
     plan in ascending order and prepends to the body, so the
     last-applied (greatest) array's prefetches come first. *)
  let emit =
    Array.map
      (fun site ->
        let site = Array.to_list site in
        Array.concat
          (List.rev_map
             (fun (a, d) ->
               match List.assoc_opt a site with
               | None -> [||]
               | Some reps ->
                 Array.map
                   (fun rep -> (rep.rconst + (rep.vcoef * d), rep.rterms))
                   reps)
             plan))
      t.sites
  in
  let events = t.events and marks = t.marks in
  let n_events = Array.length events and n_marks = Array.length marks in
  let cut = ref (-1) in
  let prev = ref 0 in
  let pos = ref 0 in
  while !pos < n_marks do
    if !pos = t.cut_marks && t.cut_events >= 0 then
      cut := Ir.Vm.Buf.length into + (t.cut_events - !prev);
    let id = marks.(!pos) in
    let epos = marks.(!pos + 1) in
    for i = !prev to epos - 1 do
      Ir.Vm.Buf.push into events.(i)
    done;
    prev := epos;
    let ems = emit.(id) in
    for e = 0 to Array.length ems - 1 do
      let base, terms = ems.(e) in
      let v = ref base in
      for k = 0 to Array.length terms - 1 do
        let field, coeff = terms.(k) in
        v := !v + (coeff * marks.(!pos + 2 + field))
      done;
      Ir.Vm.Buf.push into !v
    done;
    pos := !pos + t.mark_width.(id)
  done;
  if t.cut_events >= 0 && !cut = -1 then
    cut := Ir.Vm.Buf.length into + (t.cut_events - !prev);
  for i = !prev to n_events - 1 do
    Ir.Vm.Buf.push into events.(i)
  done;
  !cut
