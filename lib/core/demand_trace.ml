(* Demand-trace capture and prefetch synthesis.

   The prefetch-distance search evaluates many candidates whose demand
   accesses are identical — only the injected prefetch events differ.
   [capture] runs the demand (prefetch-free) program once through the
   bytecode VM with iteration marks enabled; [synthesize] then rebuilds
   the exact packed event stream of any prefetch plan by interleaving
   the recorded demand events with prefetch events computed from the
   marks — no re-interpretation of the program.

   Exactness contract (checked by the [vm] test suite): the synthesized
   stream is bit-identical to executing
   [Prefetch_insert.apply]-transformed programs, including the warm-up
   cut position used by budgeted measurement.  This relies on mirroring
   three behaviours: [apply] prepends one prefetch per deduplicated
   stream to each innermost-loop body (so per-iteration order is
   prefetches first, in application order — last applied array first);
   the prefetch address is the demand offset shifted by
   [coeff(var) * distance * step]; and the interpreter emits nothing
   for prefetches of register-resident scalars. *)

type rep = {
  rconst : int;
      (* ((base + folded const) lsl 5) lor tag_prefetch: the packed
         event value at distance 0 with all mark slots zero *)
  rterms : (int * int) array;  (* (mark-record field, coeff lsl 5) *)
  vcoef : int;  (* coeff of the loop var * step, lsl 5 *)
}

type t = {
  program : Ir.Program.t;  (* the demand program *)
  stats : Ir.Exec.stats;
  events : int array;
  marks : int array;
  cut_events : int;  (* -1 when the mode needs no warm-up pass *)
  cut_marks : int;
  sites : (string * rep array) array array;  (* per mark id *)
  mark_width : int array;  (* record width in words, per mark id *)
  words : int;
}

let program t = t.program
let stats t = t.stats
let words t = t.words

let capture machine (kernel : Kernels.Kernel.t) ~n ~(mode : Executor.mode)
    (program : Ir.Program.t) =
  let params = Kernels.Kernel.params kernel n in
  let register_budget = Machine.available_registers machine in
  let line_elems = Machine.line_elems machine 0 in
  let vm = Ir.Vm.compile ~marks:true ~register_budget ~params program in
  let flop_budget, warm_budget =
    match mode with
    | Executor.Full -> (None, None)
    | Executor.Budget b ->
      ( Some b,
        if b < kernel.Kernels.Kernel.flops n then Some (max 1 (b / 2)) else None
      )
  in
  let r = Ir.Vm.run ?flop_budget ?warm_budget vm in
  let mark_slots = Ir.Vm.mark_slots vm in
  let placements, _ =
    Ir.Exec.placements ~with_data:false ~register_budget ~params program
  in
  let placement_of name =
    List.find (fun pl -> pl.Ir.Exec.name = name) placements
  in
  let param_value x =
    match List.assoc_opt x params with
    | Some v -> v
    | None ->
      invalid_arg (Printf.sprintf "Demand_trace.capture: unbound parameter %s" x)
  in
  let slot_of = Hashtbl.create 16 in
  List.iteri
    (fun i v -> Hashtbl.replace slot_of v i)
    (Ir.Stmt.loop_vars program.Ir.Program.body);
  let inner = Ir.Stmt.innermost_loops program.Ir.Program.body in
  let sites =
    List.mapi
      (fun id (l : Ir.Stmt.loop) ->
        let field_of_slot =
          let tbl = Hashtbl.create 8 in
          Array.iteri (fun i s -> Hashtbl.replace tbl s i) mark_slots.(id);
          Hashtbl.find tbl
        in
        let refs = Ir.Stmt.access_refs l.Ir.Stmt.body in
        (* Group by array, first-occurrence order, in-memory only. *)
        let arrays = ref [] in
        List.iter
          (fun ((r : Ir.Reference.t), _) ->
            let a = r.Ir.Reference.array in
            if
              (placement_of a).Ir.Exec.in_memory
              && not (List.mem a !arrays)
            then arrays := a :: !arrays)
          refs;
        List.rev_map
          (fun a ->
            let pl = placement_of a in
            let seen = Hashtbl.create 8 in
            let reps =
              List.filter_map
                (fun ((r : Ir.Reference.t), _) ->
                  if r.Ir.Reference.array <> a then None
                  else
                    let key =
                      Transform.Prefetch_insert.stream_key ~line_elems r
                    in
                    if Hashtbl.mem seen key then None
                    else begin
                      Hashtbl.add seen key ();
                      let offset =
                        List.fold_left2
                          (fun acc idx stride ->
                            Ir.Aff.add acc (Ir.Aff.scale stride idx))
                          Ir.Aff.zero r.Ir.Reference.idx pl.Ir.Exec.strides
                      in
                      let const = ref (Ir.Aff.const_part offset) in
                      let terms =
                        List.filter_map
                          (fun (c, x) ->
                            match Hashtbl.find_opt slot_of x with
                            | Some slot -> Some (slot, c)
                            | None ->
                              const := !const + (c * param_value x);
                              None)
                          (Ir.Aff.terms offset)
                      in
                      let rconst =
                        ((pl.Ir.Exec.base + !const) lsl 5)
                        lor Ir.Sink.tag_prefetch
                      in
                      let rterms =
                        Array.of_list
                          (List.map
                             (fun (slot, c) -> (field_of_slot slot, c lsl 5))
                             terms)
                      in
                      let vcoef =
                        (Ir.Aff.coeff offset l.Ir.Stmt.var * l.Ir.Stmt.step)
                        lsl 5
                      in
                      Some { rconst; rterms; vcoef }
                    end)
                refs
            in
            (a, Array.of_list reps))
          !arrays
        |> Array.of_list)
      inner
  in
  {
    program;
    stats = r.Ir.Vm.stats;
    events = Array.sub r.Ir.Vm.events 0 r.Ir.Vm.n_events;
    marks = Array.sub r.Ir.Vm.marks 0 r.Ir.Vm.n_marks;
    cut_events = r.Ir.Vm.cut_events;
    cut_marks = r.Ir.Vm.cut_marks;
    sites = Array.of_list sites;
    mark_width = Array.map (fun slots -> 2 + Array.length slots) mark_slots;
    words = r.Ir.Vm.n_events + r.Ir.Vm.n_marks;
  }

(* Per-iteration emission table of [plan]: for each mark id, the
   [(base, terms, bucket)] prefetch emissions in stream order (see the
   ordering comment in [synthesize]).  [bucket] is the slack bucket the
   incremental repricer assigned to the emission's array in [track]
   (-1 = untracked). *)
let emit_table t ~plan ~track =
  Array.map
    (fun site ->
      let site = Array.to_list site in
      Array.concat
        (List.rev_map
           (fun (a, d) ->
             match List.assoc_opt a site with
             | None -> [||]
             | Some reps ->
               let bucket =
                 match List.assoc_opt a track with Some b -> b | None -> -1
               in
               Array.map
                 (fun rep ->
                   (rep.rconst + (rep.vcoef * d), rep.rterms, bucket))
                 reps)
           plan))
    t.sites

(* Number of innermost-loop iteration records in the captured trace —
   the granularity at which a prefetch distance shifts an emission. *)
let iterations t =
  let marks = t.marks in
  let n_marks = Array.length marks in
  let n = ref 0 in
  let pos = ref 0 in
  while !pos < n_marks do
    incr n;
    pos := !pos + t.mark_width.(marks.(!pos))
  done;
  !n

let synthesize t ~plan ~(into : Ir.Vm.Buf.t) =
  Ir.Vm.Buf.clear into;
  (* Per-iteration emission list per mark id: [apply] is folded over the
     plan in ascending order and prepends to the body, so the
     last-applied (greatest) array's prefetches come first. *)
  let emit =
    Array.map
      (fun site ->
        let site = Array.to_list site in
        Array.concat
          (List.rev_map
             (fun (a, d) ->
               match List.assoc_opt a site with
               | None -> [||]
               | Some reps ->
                 Array.map
                   (fun rep -> (rep.rconst + (rep.vcoef * d), rep.rterms))
                   reps)
             plan))
      t.sites
  in
  let events = t.events and marks = t.marks in
  let n_events = Array.length events and n_marks = Array.length marks in
  let cut = ref (-1) in
  let prev = ref 0 in
  let pos = ref 0 in
  while !pos < n_marks do
    if !pos = t.cut_marks && t.cut_events >= 0 then
      cut := Ir.Vm.Buf.length into + (t.cut_events - !prev);
    let id = marks.(!pos) in
    let epos = marks.(!pos + 1) in
    for i = !prev to epos - 1 do
      Ir.Vm.Buf.push into events.(i)
    done;
    prev := epos;
    let ems = emit.(id) in
    for e = 0 to Array.length ems - 1 do
      let base, terms = ems.(e) in
      let v = ref base in
      for k = 0 to Array.length terms - 1 do
        let field, coeff = terms.(k) in
        v := !v + (coeff * marks.(!pos + 2 + field))
      done;
      Ir.Vm.Buf.push into !v
    done;
    pos := !pos + t.mark_width.(id)
  done;
  if t.cut_events >= 0 && !cut = -1 then
    cut := Ir.Vm.Buf.length into + (t.cut_events - !prev);
  for i = !prev to n_events - 1 do
    Ir.Vm.Buf.push into events.(i)
  done;
  !cut

(* --- Batched multi-plan replay --------------------------------------

   The prefetch sweep's K candidates share this trace; instead of
   synthesizing K buffers and replaying each, walk the marks ONCE and
   feed each plan's event stream to its own hierarchy as it is
   reconstructed: shared demand segments go through
   [Hierarchy.Batch.replay_all] (one pass over the buffer, K flat
   counter states), per-plan prefetch events are computed and
   dispatched individually.  Each plan's per-event sequence is exactly
   its [synthesize] output, so counters after [Batch.sync] are
   bit-identical to the unbatched path (the engine test suite checks
   this). *)

(* Walk the warm-up region (marks [0, cut_marks) plus the trailing
   demand events up to [cut_events]) state-only, then settle.  Returns
   each plan's warm-up event count — the position its [synthesize]d
   stream would report as the cut: the shared demand prefix plus that
   plan's prefetch emissions over the warm marks.  Sampled measurement
   extrapolates by [Executor.suffix_factor] of exactly this count, so
   batched and unbatched estimates stay bit-identical.

   [?cap] (sampled mode, {!Memsim.Sampling.prefix_cap}): feed only each
   plan's trailing [cap] synthesized warm-up events to the hierarchy,
   skipping the cold head outright — the same positions the unbatched
   [Executor.warm_prefix] feeds, so capped batched state matches capped
   unbatched state bit-for-bit.  The returned counts are the full cut
   positions either way (the extrapolation arithmetic is about stream
   positions, not replay work). *)
let warm_walk ?cap t b emits =
  let k = Memsim.Hierarchy.Batch.size b in
  let counts = Array.make k 0 in
  if t.cut_events >= 0 then begin
    let events = t.events and marks = t.marks in
    (* Plan i's synthesized warm-up length and state-feed start. *)
    let emis = Array.make k 0 in
    let starts =
      match cap with
      | None -> Array.make k 0
      | Some cap ->
        let pos = ref 0 in
        while !pos < t.cut_marks do
          let id = marks.(!pos) in
          for i = 0 to k - 1 do
            emis.(i) <- emis.(i) + Array.length emits.(i).(id)
          done;
          pos := !pos + t.mark_width.(id)
        done;
        Array.init k (fun i -> max 0 (t.cut_events + emis.(i) - cap))
    in
    Array.fill emis 0 k 0;
    (* Feed the demand range [lo, hi): plan i's copy of event j sits at
       synthesized position [j + emis.(i)], so its sub-range starts at
       [starts.(i) - emis.(i)].  When every plan's start is behind [lo]
       (always true uncapped) one shared SoA pass covers all plans. *)
    let feed_demand lo hi =
      let all = ref true in
      for i = 0 to k - 1 do
        if starts.(i) - emis.(i) > lo then all := false
      done;
      if !all then
        Memsim.Hierarchy.Batch.warm_all b events ~pos:lo ~len:(hi - lo)
      else
        for i = 0 to k - 1 do
          let lo_i = max lo (starts.(i) - emis.(i)) in
          if hi > lo_i then
            Memsim.Hierarchy.Batch.warm_range b i events ~pos:lo_i
              ~len:(hi - lo_i)
        done
    in
    let prev = ref 0 in
    let pos = ref 0 in
    while !pos < t.cut_marks do
      let id = marks.(!pos) in
      let epos = marks.(!pos + 1) in
      if epos > !prev then feed_demand !prev epos;
      for i = 0 to k - 1 do
        let ems = emits.(i).(id) in
        for e = 0 to Array.length ems - 1 do
          if epos + emis.(i) >= starts.(i) then begin
            let base, terms, _ = ems.(e) in
            let v = ref base in
            for j = 0 to Array.length terms - 1 do
              let field, coeff = terms.(j) in
              v := !v + (coeff * marks.(!pos + 2 + field))
            done;
            Memsim.Hierarchy.Batch.warm_one b i !v
          end;
          emis.(i) <- emis.(i) + 1
        done
      done;
      prev := epos;
      pos := !pos + t.mark_width.(id)
    done;
    if t.cut_events > !prev then feed_demand !prev t.cut_events;
    for i = 0 to k - 1 do
      counts.(i) <- t.cut_events + emis.(i)
    done;
    Memsim.Hierarchy.Batch.reset_counters b
  end;
  counts

let timings_of ~sim_s = { Executor.compile_s = 0.0; exec_s = 0.0; sim_s }

let measure_pool ?sampling machine kernel ~n t ~plans =
  let t0 = Unix_time.now () in
  let k = Array.length plans in
  let emits = Array.map (fun plan -> emit_table t ~plan ~track:[]) plans in
  let hs = Executor.pooled_hierarchies machine k in
  let b = Memsim.Hierarchy.Batch.create hs in
  let events = t.events and marks = t.marks in
  let n_events = Array.length events and n_marks = Array.length marks in
  let warm_counts =
    warm_walk ?cap:(Option.map Memsim.Sampling.prefix_cap sampling) t b emits
  in
  let samplers =
    match sampling with
    | None -> None
    | Some sp -> Some (Array.init k (fun _ -> Memsim.Sampling.sampler sp))
  in
  let feed_demand prev epos =
    match samplers with
    | None -> Memsim.Hierarchy.Batch.replay_all b events ~pos:prev ~len:(epos - prev)
    | Some ss ->
      for i = 0 to k - 1 do
        let s = ss.(i) in
        let p = ref prev in
        let remaining = ref (epos - prev) in
        while !remaining > 0 do
          let action, c = Memsim.Sampling.take s !remaining in
          (match action with
          | Memsim.Sampling.Measure ->
            Memsim.Hierarchy.Batch.replay_range b i events ~pos:!p ~len:c
          | Memsim.Sampling.Warm ->
            Memsim.Hierarchy.Batch.warm_range b i events ~pos:!p ~len:c
          | Memsim.Sampling.Drop -> ());
          p := !p + c;
          remaining := !remaining - c
        done
      done
  in
  let feed_prefetch i v =
    match samplers with
    | None -> Memsim.Hierarchy.Batch.replay_one b i v
    | Some ss -> (
      match Memsim.Sampling.take ss.(i) 1 with
      | Memsim.Sampling.Measure, _ -> Memsim.Hierarchy.Batch.replay_one b i v
      | Memsim.Sampling.Warm, _ -> Memsim.Hierarchy.Batch.warm_one b i v
      | Memsim.Sampling.Drop, _ -> ())
  in
  (* Exact replay re-feeds the full stream on the warmed state (the
     historical semantics); sampled replay measures only the post-cut
     suffix and scales back up by the suffix fraction, mirroring
     [Executor.replay_measured]. *)
  let suffix = samplers <> None && t.cut_events >= 0 in
  let prev = ref (if suffix then t.cut_events else 0) in
  let pos = ref (if suffix then t.cut_marks else 0) in
  while !pos < n_marks do
    let id = marks.(!pos) in
    let epos = marks.(!pos + 1) in
    if epos > !prev then feed_demand !prev epos;
    prev := epos;
    for i = 0 to k - 1 do
      let ems = emits.(i).(id) in
      for e = 0 to Array.length ems - 1 do
        let base, terms, _ = ems.(e) in
        let v = ref base in
        for j = 0 to Array.length terms - 1 do
          let field, coeff = terms.(j) in
          v := !v + (coeff * marks.(!pos + 2 + field))
        done;
        feed_prefetch i !v
      done
    done;
    pos := !pos + t.mark_width.(id)
  done;
  if n_events > !prev then feed_demand !prev n_events;
  Memsim.Hierarchy.Batch.sync b;
  let per = (Unix_time.now () -. t0) /. float_of_int (max 1 k) in
  Array.init k (fun i ->
      let counters = Memsim.Hierarchy.counters hs.(i) in
      (match samplers with
      | Some ss ->
        Memsim.Counters.extrapolate counters
          (Memsim.Sampling.factor ss.(i)
          *. Executor.suffix_factor
               ~warm:(if suffix then warm_counts.(i) else 0)
               ~fed:(Memsim.Sampling.fed ss.(i)))
      | None -> ());
      Executor.finish machine kernel ~n ~counters ~stats:t.stats
        ~timings:(timings_of ~sim_s:per))

(* The shared-decode walk keeps all K plans' simulated cache state hot
   at once; past ~16 plans the tag/ready arrays outgrow the host's own
   caches and the amortization inverts (the K=64 sweep-scaling rows
   drop below the unbatched rate on the stencil kernels).  Partition
   larger pools and stream the trace once per sub-pool — a plan's
   counters do not depend on pool membership, so the split is
   bit-identical to the single-pool walk. *)
let max_pool = 16

let measure_plans ?sampling machine kernel ~n t ~plans =
  let k = Array.length plans in
  if k <= max_pool then measure_pool ?sampling machine kernel ~n t ~plans
  else
    Array.concat
      (List.init
         ((k + max_pool - 1) / max_pool)
         (fun c ->
           let pos = c * max_pool in
           measure_pool ?sampling machine kernel ~n t
             ~plans:(Array.sub plans pos (min max_pool (k - pos)))))

(* --- Incremental prefetch re-simulation -----------------------------

   When the K plans of a sweep group bind the same arrays and differ
   only in prefetch distances, a full replay per plan re-derives the
   same demand-side hit/miss classification K times.  Instead: replay
   the base plan once while observing, for each varying array's
   prefetch emissions, the timeliness slack of the prefetched line's
   first demand use (how many cycles early the line arrived; negative =
   the stall paid; [Hierarchy.replay_event_slack]), bucketed per
   varying array.  A sibling at distance [d0 + dd] on some array issues
   that array's prefetches [dd] innermost iterations earlier, so each
   of its slacks shifts by [dd * cycles-per-iteration] while the other
   arrays' buckets shift by their own deltas independently — the joint
   estimate sums the per-bucket stall deltas.  A first use that MISSES
   means the prefetched line was evicted before use (wasted): the
   demand paid the full miss and, to first order, pays it at every
   nearby distance — distance-invariant evidence that contributes zero
   to every sibling's delta but still counts as an observed outcome, so
   fully-wasted groups (stencils whose planes thrash L1) re-price
   instead of falling back to full replay.  The estimates only RANK the
   siblings — the argmin is re-measured exactly, so committed numbers
   never come from the model. *)

type repriced = {
  rp_measurements : Executor.measurement option array;
      (** [Some] where a real measurement was taken (the base plan and
          the estimated-best sibling), [None] where the estimate stood
          in *)
  rp_estimated : int;  (** plans priced by the slack model *)
  rp_joint : bool;
      (** the group varied more than one array's distance (the joint
          multi-bucket path, as opposed to the single-array special
          case) *)
}

(* The arrays whose distances vary across a sweep group, in base-plan
   order — [None] when the plans do not all bind the same array list
   (genuinely unanalyzable: fall back to full replay). *)
let varying_arrays plans =
  if Array.length plans < 2 then None
  else begin
    let base = plans.(0) in
    let arrays = List.map fst base in
    let ok = ref true in
    let vary = ref [] in
    Array.iter
      (fun plan ->
        if List.map fst plan <> arrays then ok := false
        else
          List.iter2
            (fun (a, d) (_, d0) ->
              if d <> d0 && not (List.mem a !vary) then vary := a :: !vary)
            plan base)
      plans;
    match (!ok, !vary) with
    | true, (_ :: _) -> Some (List.rev !vary)
    | _ -> None
  end

let reprice_group ?sampling machine kernel ~n t ~plans =
  match varying_arrays plans with
  | None -> None
  | Some vary ->
    let t0 = Unix_time.now () in
    let k = Array.length plans in
    let nb = List.length vary in
    let track = List.mapi (fun b a -> (a, b)) vary in
    let emits = [| emit_table t ~plan:plans.(0) ~track |] in
    (* The pooled slot is safe to share with the sibling re-measurement
       below: [m0]'s counters are snapshotted by [finish] before
       [measure_plans] resets the slot. *)
    let h = (Executor.pooled_hierarchies machine 1).(0) in
    let hs = [| h |] in
    let batch = Memsim.Hierarchy.Batch.create hs in
    let events = t.events and marks = t.marks in
    let n_events = Array.length events and n_marks = Array.length marks in
    let warm_counts =
      warm_walk
        ?cap:(Option.map Memsim.Sampling.prefix_cap sampling)
        t batch emits
    in
    let sampler =
      match sampling with
      | None -> None
      | Some sp -> Some (Memsim.Sampling.sampler sp)
    in
    let l1 = Memsim.Hierarchy.cache h 0 in
    (* Pending tracked lines (line -> slack bucket) and the per-bucket
       first-use outcomes: timely slacks, plus a count of matched first
       uses (timely or wasted). *)
    let pending = Hashtbl.create 64 in
    let slacks = Array.make nb [] in
    let matched = Array.make nb 0 in
    let demand_slack_event v =
      let s = Memsim.Hierarchy.replay_event_slack h v in
      if Hashtbl.length pending > 0 && v land 3 <> Ir.Sink.tag_prefetch then begin
        let line = Memsim.Cache.line_of_addr l1 (v lsr 2) in
        match Hashtbl.find_opt pending line with
        | Some bkt ->
          Hashtbl.remove pending line;
          matched.(bkt) <- matched.(bkt) + 1;
          (* A demand miss = wasted prefetch: no slack sample, but the
             matched count keeps the bucket as observed evidence. *)
          if s <> Memsim.Hierarchy.no_slack then
            slacks.(bkt) <- s :: slacks.(bkt)
        | None -> ()
      end
    in
    let feed_demand prev epos =
      match sampler with
      | None ->
        for i = prev to epos - 1 do
          demand_slack_event (Array.unsafe_get events i)
        done
      | Some s ->
        let p = ref prev in
        let remaining = ref (epos - prev) in
        while !remaining > 0 do
          let action, c = Memsim.Sampling.take s !remaining in
          (match action with
          | Memsim.Sampling.Measure ->
            for i = !p to !p + c - 1 do
              demand_slack_event (Array.unsafe_get events i)
            done
          | Memsim.Sampling.Warm ->
            Memsim.Hierarchy.warm_packed h events ~pos:!p ~len:c
          | Memsim.Sampling.Drop -> ());
          p := !p + c;
          remaining := !remaining - c
        done
    in
    let track_prefetch bkt v =
      let issued = Memsim.Hierarchy.replay_event_slack h v in
      if issued <> Memsim.Hierarchy.no_slack then
        Hashtbl.replace pending (Memsim.Cache.line_of_addr l1 (v lsr 2)) bkt
    in
    let feed_prefetch bkt v =
      match sampler with
      | None ->
        if bkt >= 0 then track_prefetch bkt v
        else Memsim.Hierarchy.replay_event h v
      | Some s -> (
        match Memsim.Sampling.take s 1 with
        | Memsim.Sampling.Measure, _ ->
          if bkt >= 0 then track_prefetch bkt v
          else Memsim.Hierarchy.replay_event h v
        | Memsim.Sampling.Warm, _ -> Memsim.Hierarchy.warm_event h v
        | Memsim.Sampling.Drop, _ -> ())
    in
    let suffix = sampler <> None && t.cut_events >= 0 in
    let n_iter = ref 0 in
    let prev = ref (if suffix then t.cut_events else 0) in
    let pos = ref (if suffix then t.cut_marks else 0) in
    while !pos < n_marks do
      let id = marks.(!pos) in
      let epos = marks.(!pos + 1) in
      if epos > !prev then feed_demand !prev epos;
      prev := epos;
      incr n_iter;
      let ems = emits.(0).(id) in
      for e = 0 to Array.length ems - 1 do
        let base, terms, tracked = ems.(e) in
        let v = ref base in
        for j = 0 to Array.length terms - 1 do
          let field, coeff = terms.(j) in
          v := !v + (coeff * marks.(!pos + 2 + field))
        done;
        feed_prefetch tracked !v
      done;
      pos := !pos + t.mark_width.(id)
    done;
    if n_events > !prev then feed_demand !prev n_events;
    let n_matched = Array.fold_left ( + ) 0 matched in
    if n_matched = 0 then None
    else begin
      let counters = Memsim.Hierarchy.counters h in
      let raw_cycles =
        float_of_int (Memsim.Counters.accesses counters + counters.Memsim.Counters.stall_cycles)
      in
      let factor =
        match sampler with
        | Some s ->
          Memsim.Sampling.factor s
          *. Executor.suffix_factor
               ~warm:(if suffix then warm_counts.(0) else 0)
               ~fed:(Memsim.Sampling.fed s)
        | None -> 1.0
      in
      if factor <> 1.0 then Memsim.Counters.extrapolate counters factor;
      let sim_s = Unix_time.now () -. t0 in
      let m0 =
        Executor.finish machine kernel ~n ~counters ~stats:t.stats
          ~timings:(timings_of ~sim_s)
      in
      (* Cycles per innermost iteration, in raw (unextrapolated)
         counter units — the shift one unit of prefetch distance
         applies to every slack. *)
      let c_iter = raw_cycles /. float_of_int (max 1 !n_iter) in
      let stall_at bkt dd =
        List.fold_left
          (fun acc s ->
            let s' = float_of_int s +. (float_of_int dd *. c_iter) in
            acc +. Float.max 0.0 (-.s'))
          0.0 slacks.(bkt)
      in
      let d0 = Array.of_list (List.map (fun a -> List.assoc a plans.(0)) vary) in
      let base_stall = Array.init nb (fun bkt -> stall_at bkt 0) in
      let est =
        Array.map
          (fun plan ->
            let delta = ref 0.0 in
            List.iteri
              (fun bkt a ->
                let dd = List.assoc a plan - d0.(bkt) in
                if dd <> 0 then
                  delta := !delta +. (stall_at bkt dd -. base_stall.(bkt)))
              vary;
            if !delta = 0.0 then Executor.cycles m0
            else
              Executor.cycles m0 +. (!delta *. factor *. m0.Executor.scale))
          plans
      in
      let best = ref 0 in
      Array.iteri (fun i e -> if e < est.(!best) then best := i) est;
      let out = Array.make k None in
      out.(0) <- Some m0;
      if !best <> 0 then begin
        let mb =
          (measure_plans ?sampling machine kernel ~n t ~plans:[| plans.(!best) |]).(0)
        in
        out.(!best) <- Some mb
      end;
      let measured = if !best = 0 then 1 else 2 in
      Some
        { rp_measurements = out; rp_estimated = k - measured; rp_joint = nb > 1 }
    end
