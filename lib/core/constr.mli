(** Capacity constraints attached by phase 1 to the parameters of a code
    variant (paper §3.1, Table 4).  All are evaluated against a binding
    of parameter names (plus the problem size) to integers. *)

type t =
  | Poly_le of { poly : Analysis.Poly.t; bound : int; what : string }
      (** footprint in elements vs (scaled) capacity, e.g.
          [TJ*TK <= 2048] *)
  | Pages_le of {
      elems : Analysis.Poly.t;
      runs : Analysis.Poly.t;  (** distinct contiguous runs *)
      page_elems : int;
      bound : int;
      what : string;
    }
      (** TLB footprint: pages >= max(runs, elems/page) must not exceed
          the entry count *)
  | Stride_not_multiple of {
      elems : Analysis.Poly.t;
      modulus : int;
      what : string;
    }
      (** the paper's copy-array conflict-avoidance condition:
          [mod (Size(CopyArrays), Capacity(level-1)) <> 0] — trivially
          satisfied when the copy array fits below the modulus *)

val satisfied : t -> (string -> int) -> bool

(** All constraints of a system hold under the binding. *)
val system_satisfied : t list -> (string -> int) -> bool

(** [sample ~rand ~n params constraints] draws a random feasible binding
    of [params] (a point satisfying every constraint, with ["n"] bound
    to [n]) by rejection sampling: each parameter is drawn either from
    its {!Param.boundary_values} or uniformly from its {!Param.range},
    so boundary points (tile = trip count, non-dividing tiles,
    unroll = 1) appear with high probability.  [rand b] must return a
    uniform integer in [\[0, b)].  After [attempts] rejections (default
    300) the all-ones point is tried; [None] when even that is
    infeasible (e.g. a contradictory system).  Deterministic for a
    deterministic [rand]. *)
val sample :
  rand:(int -> int) ->
  ?attempts:int ->
  n:int ->
  Param.t list ->
  t list ->
  (string * int) list option

(** Parameters mentioned by the constraint. *)
val vars : t -> string list

val describe : t -> string
val pp : Format.formatter -> t -> unit
