(** Wall-clock seconds (epoch-based): search-cost accounting that stays
    meaningful when candidate evaluations run in parallel. *)
val now : unit -> float

(** Process CPU seconds, for callers that want the serial-work measure. *)
val cpu : unit -> float
