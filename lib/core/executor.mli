(** The "empirical" in guided empirical search: run an instantiated
    program on the simulated machine and measure it.

    Two modes: [Full] simulates the entire computation; [Budget f] stops
    after [f] useful flops and extrapolates steady-state cycles to the
    full problem — the sampled-simulation substitute for wall-clock
    timing on real hardware (see DESIGN.md).

    Two paths: [Fast] (the default) compiles the program once to
    {!Ir.Vm} bytecode, records the packed event stream and feeds it to
    {!Memsim.Hierarchy.replay_packed} in one batched loop; [Closures]
    is the original execution-driven pipeline through the reference
    interpreter.  Both produce bit-identical measurements (enforced by
    the differential test suite); [Closures] exists as the reference
    and as the baseline of the evaluation benchmark. *)

type mode = Full | Budget of int

(** A sensible default budget for searches (a few tens of millions of
    simulated accesses per candidate). *)
val default_budget : mode

type path = Fast | Closures

(** Wall-time breakdown of one measurement (all zero where a stage does
    not apply; the closure path books everything under [exec_s]). *)
type timings = { compile_s : float; exec_s : float; sim_s : float }

type measurement = {
  cost : Memsim.Cost.t;  (** extrapolated to the full problem in budget mode *)
  counters : Memsim.Counters.t;  (** raw (unscaled) hierarchy counters *)
  stats : Ir.Exec.stats;  (** raw executor statistics *)
  scale : float;  (** extrapolation factor (1.0 when complete) *)
  mflops : float;  (** convenience: [cost.mflops] *)
  timings : timings;
}

(** [measure ?path machine kernel ~n ~mode program] runs [program] (an
    instantiated variant of [kernel]) with the kernel's size parameter
    bound to [n], streaming accesses through a fresh hierarchy of
    [machine], spilling registers beyond the machine's available
    register file.

    With [?sampling], the fast path measures a sampled estimate: the
    flop budget is divided by the spec's [shrink] before tracing, only
    the sampler's periodic windows of the replay are accounted, and the
    counters are extrapolated back up ({!Memsim.Sampling}).  The
    closure path ignores [?sampling] and stays exact (it is the
    differential reference).

    @raise Invalid_argument if the program is malformed. *)
val measure :
  ?path:path ->
  ?sampling:Memsim.Sampling.t ->
  Machine.t ->
  Kernels.Kernel.t ->
  n:int ->
  mode:mode ->
  Ir.Program.t ->
  measurement

(** [measure_from_trace machine kernel ~n ~stats ~events ~n_events ~cut]
    measures a candidate whose packed event stream is already known
    (synthesized by [Demand_trace]): replays [events.(0 .. cut-1)] as
    the warm-up pass when [cut >= 0], resets counters, then replays the
    full stream.  [stats] are the execution statistics of the trace's
    program; [synth_seconds] is booked into [timings.exec_s].
    [?sampling] replays only the sampler's windows and extrapolates, as
    in {!measure} (the trace must then have been generated at the
    spec's shrunken budget for the estimate to line up). *)
val measure_from_trace :
  ?synth_seconds:float ->
  ?sampling:Memsim.Sampling.t ->
  Machine.t ->
  Kernels.Kernel.t ->
  n:int ->
  stats:Ir.Exec.stats ->
  events:int array ->
  n_events:int ->
  cut:int ->
  measurement

(** Assemble a measurement from replayed counters and executor stats —
    the cost arithmetic plus flop-scale extrapolation that ends every
    measure function above, exposed for the batched multi-plan replay
    in {!Demand_trace}. *)
val finish :
  Machine.t ->
  Kernels.Kernel.t ->
  n:int ->
  counters:Memsim.Counters.t ->
  stats:Ir.Exec.stats ->
  timings:timings ->
  measurement

(** The mode a sampled measurement actually traces at: [Budget b]
    divided by the spec's [shrink] (identity without sampling or in
    [Full] mode). *)
val effective_mode : Memsim.Sampling.t option -> mode -> mode

(** A pooled per-domain scratch buffer for trace synthesis (cleared by
    the synthesizer; contents are only valid until the next evaluation
    on the same domain). *)
val synth_scratch : unit -> Ir.Vm.Buf.t

(** [pooled_hierarchies machine k] returns [k] freshly-reset simulated
    hierarchies of [machine] from the per-domain pool (a hierarchy is
    ~1MB of arrays; reuse is most of the evaluator's allocation-churn
    savings).  The slots are only valid until the next
    [pooled_hierarchies] call on the same domain — measurements
    snapshot their counters in {!finish}, so no completed measurement
    refers back into the pool. *)
val pooled_hierarchies : Machine.t -> int -> Memsim.Hierarchy.t array

(** The suffix extrapolation factor of a sampled measurement that
    measured only the [fed] post-warm-up events of a [warm + fed]-event
    stream: [(warm + fed) / fed].  Exposed so the batched multi-plan
    walk reproduces the scalar bit-for-bit. *)
val suffix_factor : warm:int -> fed:int -> float

(** Total simulated cycles — the search's objective function. *)
val cycles : measurement -> float

(** [perturb m factor] is [m] observed to take [factor] times as long:
    every cycle count and [seconds] scale by [factor], MFLOPS divides by
    it, and the flop count stays put.  The identity when [factor = 1.0]
    (same physical measurement back).  This is how the engine's
    fault-tolerant protocol applies injected timing noise and commits
    the aggregate of repeated trials. *)
val perturb : measurement -> float -> measurement
