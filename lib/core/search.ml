type outcome = {
  variant : Variant.t;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  program : Ir.Program.t;
  measurement : Executor.measurement;
}

type state = {
  engine : Engine.t;
  n : int;
  mode : Executor.mode;
  log : Search_log.t option;
  variant : Variant.t;
  mutable best : outcome option;
  (* Leading candidates by objective score (ascending), kept under an
     active noisy fault plan (for the post-search confirmation pass)
     and under sampled simulation (for the exact top-k re-measurement
     that chooses the final winner). *)
  mutable top : (outcome * float) list;
}

let leaderboard_size = 5

let line_elems st = Machine.line_elems (Engine.machine st.engine) 0

(* Objective value of a measurement under the engine's objective; with
   the default [Cycles] this is exactly [Executor.cycles]. *)
let score st m = Objective.score (Engine.objective st.engine) (Engine.machine st.engine) m

let request st ~bindings ~prefetch =
  Engine.request st.variant ~n:st.n ~mode:st.mode ~bindings ~prefetch

(* Fold an engine result into the running best.  Memo hits participate
   too: the first evaluation of a point may have happened in another
   search (triage, another stage) that shares the engine. *)
let consider st ~bindings ~prefetch (ev : Engine.evaluation) =
  let c = score st ev.Engine.measurement in
  let outcome () =
    {
      variant = st.variant;
      bindings;
      prefetch;
      program = ev.Engine.program;
      measurement = ev.Engine.measurement;
    }
  in
  (match st.best with
  | Some b when score st b.measurement <= c -> ()
  | _ -> st.best <- Some (outcome ()));
  if Engine.confirming st.engine || Engine.sampling st.engine <> None then
    if
      not
        (List.exists
           (fun (o, _) -> o.bindings = bindings && o.prefetch = prefetch)
           st.top)
    then
      st.top <-
        List.filteri
          (fun i _ -> i < leaderboard_size)
          (List.sort
             (fun (_, a) (_, b) -> compare a b)
             ((outcome (), c) :: st.top));
  c

(* Evaluate one point through the engine (memoized there).  Returns
   simulated cycles, or [None] when infeasible. *)
let evaluate st ~bindings ~prefetch =
  let bindings = List.sort compare bindings in
  let prefetch = List.sort compare prefetch in
  match Engine.evaluate st.engine ?log:st.log (request st ~bindings ~prefetch) with
  | Some ev -> Some (consider st ~bindings ~prefetch ev)
  | None -> None

(* Evaluate an independent candidate neighbourhood as one engine batch
   (parallel when the engine has jobs > 1) and return the best improving
   candidate, breaking ties towards the earliest — the same selection a
   serial fold over the list makes. *)
let evaluate_sweep st ~prefetch candidates =
  let prefetch = List.sort compare prefetch in
  let candidates = List.map (List.sort compare) candidates in
  let evs =
    Engine.evaluate_batch st.engine ?log:st.log
      (List.map (fun bindings -> request st ~bindings ~prefetch) candidates)
  in
  List.fold_left2
    (fun acc bindings ev ->
      match ev with
      | None -> acc
      | Some ev -> (
        let c = consider st ~bindings ~prefetch ev in
        match acc with
        | Some (_, c') when c' <= c -> acc
        | _ -> Some (bindings, c)))
    None candidates evs

(* --- stage search over a subset of parameters --- *)

let set_params bindings updates =
  List.map
    (fun (k, v) -> match List.assoc_opt k updates with Some v' -> (k, v') | None -> (k, v))
    bindings

(* Largest uniform value for the stage parameters that stays feasible
   (the model's initial point: the footprint heuristic saturates the
   capacity constraints).  Pure constraint arithmetic — no simulation,
   so it does not go through the engine. *)
let initial_uniform st stage bindings =
  let feasible_at m =
    Variant.feasible st.variant ~n:st.n
      (set_params bindings (List.map (fun p -> (p, m)) stage))
  in
  let rec grow m = if m * 2 <= 4096 && feasible_at (m * 2) then grow (m * 2) else m in
  let rec refine lo hi =
    (* invariant: feasible_at lo, not feasible_at (hi+1) conceptually *)
    if hi - lo <= 1 then if feasible_at hi then hi else lo
    else
      let mid = (lo + hi) / 2 in
      if feasible_at mid then refine mid hi else refine lo mid
  in
  if not (feasible_at 1) then None
  else
    let m = grow 1 in
    (* try to push between m and 2m *)
    Some (if feasible_at (m * 2) then m * 2 else refine m (m * 2))

let halve v = max 1 (v / 2)

(* One shape-walk sweep: try doubling p while halving q, for all ordered
   pairs; the neighbourhood is independent, so it evaluates as a batch. *)
let rec shape_walk st stage ~prefetch bindings current =
  let candidates =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun q ->
            if p = q then None
            else
              let bp = List.assoc p bindings and bq = List.assoc q bindings in
              if bq <= 1 then None
              else Some (set_params bindings [ (p, bp * 2); (q, halve bq) ]))
          stage)
      stage
  in
  match evaluate_sweep st ~prefetch candidates with
  | Some (cand, c) when c < current -> shape_walk st stage ~prefetch cand c
  | _ -> (bindings, current)

(* Linear refinement: nudge each parameter by +-delta while improving;
   each round's candidates are independent and batched. *)
let rec linear_refine st stage ~prefetch ~delta bindings current =
  let candidates =
    List.concat_map
      (fun p ->
        let v = List.assoc p bindings in
        let d = delta p in
        List.filter_map
          (fun v' -> if v' >= 1 && v' <> v then Some (set_params bindings [ (p, v') ]) else None)
          [ v + d; v - d ])
      stage
  in
  match evaluate_sweep st ~prefetch candidates with
  | Some (cand, c) when c < current ->
    linear_refine st stage ~prefetch ~delta cand c
  | _ -> (bindings, current)

let stage_search st stage ~prefetch ~delta bindings =
  if stage = [] then
    match evaluate st ~bindings ~prefetch with
    | Some c -> Some (bindings, c)
    | None -> None
  else
    match initial_uniform st stage bindings with
    | None -> None
    | Some m0 ->
      (* The model-initial footprint is feasible by construction, so a
         [None] from its evaluation is a measurement failure (timeout,
         quarantine, malformed program).  Retreat to smaller uniform
         footprints instead of abandoning the whole variant — on a
         healthy engine the first candidate measures and this is
         exactly the old behavior. *)
      let rec first_measurable m =
        let start = set_params bindings (List.map (fun p -> (p, m)) stage) in
        match evaluate st ~bindings:start ~prefetch with
        | Some c -> Some (start, c)
        | None when m > 1 -> first_measurable (halve m)
        | None -> None
      in
      (match first_measurable m0 with
      | None -> None
      | Some (start, c0) ->
        (* Alternate shape walks and footprint halvings while improving. *)
        let rec outer bindings current =
          let bindings, current = shape_walk st stage ~prefetch bindings current in
          let halved =
            set_params bindings
              (List.map (fun p -> (p, halve (List.assoc p bindings))) stage)
          in
          if halved = bindings then (bindings, current)
          else
            match evaluate st ~bindings:halved ~prefetch with
            | Some c when c < current ->
              let b', c' = shape_walk st stage ~prefetch halved c in
              outer b' c'
            | _ -> (bindings, current)
        in
        let bindings, current = outer start c0 in
        Some (linear_refine st stage ~prefetch ~delta bindings current))

(* "To simplify the code generated, tiling parameter values that are
   multiples of any tile size or unroll factor previously selected are
   favored" (§3.2): snap each tile to a nearby multiple of its loop's
   unroll factor or of the cache line, keeping the snap if performance
   does not degrade beyond a whisker.  Each acceptance feeds the next
   candidate, so this stays serial. *)
let snap_multiples st ~prefetch bindings current =
  let tolerance = 1.0 in
  List.fold_left
    (fun (bindings, current) (loop, tparam) ->
      let v = List.assoc tparam bindings in
      let bases =
        (match List.assoc_opt loop st.variant.Variant.unrolls with
        | Some uparam -> [ List.assoc uparam bindings ]
        | None -> [])
        @ [ line_elems st ]
      in
      List.fold_left
        (fun (bindings, current) base ->
          if base <= 1 || v mod base = 0 then (bindings, current)
          else
            let candidates = [ v / base * base; ((v / base) + 1) * base ] in
            List.fold_left
              (fun (bindings, current) v' ->
                if v' < 1 then (bindings, current)
                else
                  let cand = set_params bindings [ (tparam, v') ] in
                  match evaluate st ~bindings:cand ~prefetch with
                  | Some c when c <= current *. tolerance -> (cand, c)
                  | _ -> (bindings, current))
              (bindings, current) candidates)
        (bindings, current) bases)
    (bindings, current) st.variant.Variant.tiles

(* --- prefetch search --- *)

let prefetch_search st ~bindings current_cycles =
  match Engine.build st.engine (request st ~bindings ~prefetch:[]) with
  | None -> ([], current_cycles)
  | Some program ->
    let candidates = Transform.Prefetch_insert.candidates program in
    List.fold_left
      (fun (chosen, best_c) array ->
        (* With batched replay enabled on the fast path, speculatively
           measure the array's whole distance ladder as ONE batch: the
           candidates share this point's demand trace, so the engine
           collapses them into a single multi-plan walk (when grouping
           is capable) and the serial descent below runs entirely on
           memo hits.  The descent's decisions — and hence the chosen
           plan — are untouched.  Keyed to the [batch_replay] flag
           rather than [grouping_capable] so an active fault plan stays
           transparent (same fresh-evaluation counts as a plain
           engine); with the flag off, the search is byte-identical to
           the historical one. *)
        if Engine.batch_replay st.engine && Engine.path st.engine = Executor.Fast
        then
          ignore
            (Engine.evaluate_batch st.engine ?log:st.log
               (List.map
                  (fun d ->
                    request st ~bindings
                      ~prefetch:(List.sort compare ((array, d) :: chosen)))
                  [ 1; 2; 4; 8; 16; 32 ]));
        let try_distance d = evaluate st ~bindings ~prefetch:((array, d) :: chosen) in
        match try_distance 1 with
        | Some c1 when c1 < best_c ->
          (* Grow the distance while it improves; keep the smallest best. *)
          let rec grow d best_d best_c =
            let d' = d * 2 in
            if d' > 32 then (best_d, best_c)
            else
              match try_distance d' with
              | Some c when c < best_c -> grow d' d' c
              | _ -> (best_d, best_c)
          in
          let d, c = grow 1 1 c1 in
          ((array, d) :: chosen, c)
        | _ -> (chosen, best_c))
      ([], current_cycles)
      candidates

(* --- post-prefetch adjustment: grow the innermost tile --- *)

let adjust st ~prefetch bindings current =
  match List.rev st.variant.Variant.tiles with
  | [] -> (bindings, current)
  | (innermost_tiled, param) :: _ ->
    ignore innermost_tiled;
    let rec grow bindings current =
      let v = List.assoc param bindings in
      let cand = set_params bindings [ (param, v * 2) ] in
      match evaluate st ~bindings:cand ~prefetch with
      | Some c when c < current -> grow cand c
      | _ -> (bindings, current)
    in
    grow bindings current

(* --- model-guided (armed) tuning --------------------------------------

   Used when the engine's analytical pre-filter is active.  The serial
   descent above adapts one simulation at a time, so a pre-filter can
   skip almost nothing; this path instead proposes each stage's whole
   candidate neighbourhood as ONE wide batch and lets the engine rank
   it analytically and simulate only the top k — a stage costs k
   simulations instead of a descent.  The unfiltered path is untouched
   and bit-identical to the historical search. *)

let cross lists =
  List.fold_right
    (fun (p, vs) tails ->
      List.concat_map (fun tail -> List.map (fun v -> (p, v) :: tail) vs) tails)
    lists [ [] ]

(* Deterministically thin a candidate list to at most [k] entries. *)
let cap k xs =
  let len = List.length xs in
  if len <= k then xs
  else
    let stride = (len + k - 1) / k in
    List.filteri (fun i _ -> i mod stride = 0) xs

(* One stage as a single wide batch: the engine's pre-filter decides
   which of these actually simulate.  An optional [buckets] partition
   splits the grid into separately-filtered batches, so the model's
   favourites from EACH region get simulated — the model's ordering is
   only trusted locally, and a few percent of global bias would
   otherwise starve whole basins of simulations. *)
let stage_grid ?buckets st stage ~prefetch ~values bindings =
  if stage = [] then
    match evaluate st ~bindings ~prefetch with
    | Some c -> Some (bindings, c)
    | None -> None
  else
    let updates = cross (List.map (fun p -> (p, values p)) stage) in
    let candidates = List.map (set_params bindings) updates in
    let groups =
      match buckets with
      | None -> [ candidates ]
      | Some key ->
        let tagged = List.map (fun c -> (key c, c)) candidates in
        let ids = List.sort_uniq compare (List.map fst tagged) in
        List.map
          (fun id ->
            List.filter_map
              (fun (id', c) -> if id' = id then Some c else None)
              tagged)
          ids
    in
    List.fold_left
      (fun acc candidates ->
        match evaluate_sweep st ~prefetch (cap 512 candidates) with
        | Some (b, c) -> (
          match acc with
          | Some (_, c') when c' <= c -> acc
          | _ -> Some (b, c))
        | None -> acc)
      None groups

let unroll_grid_values _ = [ 1; 2; 3; 4; 5; 6; 8 ]

(* Tile values: the model-initial uniform footprint and fractions of
   it, plus powers of two — the refinement pass nudges from there. *)
let tile_grid_values st m0 _ =
  let around = [ m0; m0 * 3 / 4; m0 * 2 / 3; m0 / 2; m0 / 4 ] in
  let rec pows v acc = if v > st.n then acc else pows (v * 2) (v :: acc) in
  List.sort_uniq compare (List.filter (fun v -> v >= 1) (around @ pows 8 []))

(* Batched prefetch search: each round proposes (array, distance)
   extensions of the chosen layer for every remaining array as one
   batch, commits the best improving one, and stops when no extension
   improves. *)
(* Prefetch candidates get simulated exhaustively: the analytical
   model ranks loop restructurings well but barely distinguishes
   prefetch distances, so each sweep is chunked into batches no larger
   than the pre-filter's top-k — a batch that fits within k is never
   skipped.  Prefetch sweeps are small (arrays x distances), so this
   stays cheap. *)
let evaluate_prefetch_sweep st ~bindings prefs =
  let bindings = List.sort compare bindings in
  let prefs = List.map (List.sort compare) prefs in
  let chunk =
    match Engine.prefilter st.engine with
    | Some k -> max 1 k
    | None -> max 1 (List.length prefs)
  in
  let rec chunks = function
    | [] -> []
    | prefs ->
      let rec take n = function
        | x :: rest when n > 0 ->
          let h, t = take (n - 1) rest in
          (x :: h, t)
        | rest -> ([], rest)
      in
      let h, t = take chunk prefs in
      h :: chunks t
  in
  List.fold_left
    (fun acc prefs ->
      let evs =
        Engine.evaluate_batch st.engine ?log:st.log
          (List.map (fun prefetch -> request st ~bindings ~prefetch) prefs)
      in
      List.fold_left2
        (fun acc prefetch ev ->
          match ev with
          | None -> acc
          | Some ev -> (
            let c = consider st ~bindings ~prefetch ev in
            match acc with
            | Some (_, c') when c' <= c -> acc
            | _ -> Some (prefetch, c)))
        acc prefs evs)
    None (chunks prefs)

let prefetch_search_armed st ~bindings current =
  match Engine.build st.engine (request st ~bindings ~prefetch:[]) with
  | None -> ([], current)
  | Some program ->
    let arrays = Transform.Prefetch_insert.candidates program in
    let distances = [ 2; 4; 8; 16 ] in
    (* Fixed-order greedy: visit each prefetchable array once, try the
       distance grid on top of what's committed so far, and keep the
       best improving extension.  One pass costs |arrays| x |distances|
       simulations — the committed set usually ends up covering every
       array anyway, so the free-order greedy's extra rounds buy
       little. *)
    List.fold_left
      (fun (chosen, best_c) a ->
        let prefs = List.map (fun d -> (a, d) :: chosen) distances in
        match evaluate_prefetch_sweep st ~bindings prefs with
        | Some (p, c) when c < best_c -> (p, c)
        | _ -> (chosen, best_c))
      ([], current) arrays

(* Coordinate descent over an existing prefetch plan: for each
   prefetchable array in turn, try the distance grid — and dropping the
   array — with the rest of the committed plan held fixed.  The greedy
   [prefetch_search_armed] grows a plan from empty, so when the
   incumbent single-array plan already beats every single-array
   candidate it commits nothing and joint plans (main array and its
   copy temporary prefetched together) stay unreachable; the refinement
   reaches them from whatever plan the caller confirmed.  Two passes at
   most: the second only runs when the first improved, to let an early
   array's distance adapt to a later array's insertion. *)
let prefetch_refine st ~bindings start current =
  match Engine.build st.engine (request st ~bindings ~prefetch:[]) with
  | None -> (start, current)
  | Some program ->
    let arrays = Transform.Prefetch_insert.candidates program in
    let distances = [ 2; 4; 8; 16 ] in
    let pass state =
      List.fold_left
        (fun (chosen, best_c) a ->
          let rest = List.filter (fun (a', _) -> a' <> a) chosen in
          let prefs = rest :: List.map (fun d -> (a, d) :: rest) distances in
          match evaluate_prefetch_sweep st ~bindings prefs with
          | Some (p, c) when c < best_c -> (p, c)
          | _ -> (chosen, best_c))
        state arrays
    in
    let r1 = pass (start, current) in
    if snd r1 < current then pass r1 else r1

(* Like [linear_refine], but with a round cap: the armed path trades
   the long tail of the descent for a bounded simulation count. *)
let rec linear_refine_capped st stage ~prefetch ~delta ~rounds bindings current
    =
  if rounds <= 0 then (bindings, current)
  else
    let candidates =
      List.concat_map
        (fun p ->
          let v = List.assoc p bindings in
          let d = delta p in
          List.filter_map
            (fun v' ->
              if v' >= 1 && v' <> v then Some (set_params bindings [ (p, v') ])
              else None)
            [ v + d; v - d ])
        stage
    in
    match evaluate_sweep st ~prefetch candidates with
    | Some (cand, c) when c < current ->
      linear_refine_capped st stage ~prefetch ~delta ~rounds:(rounds - 1) cand c
    | _ -> (bindings, current)

(* Force-simulate a handful of anchor points (each a singleton batch,
   which the pre-filter never skips): the model's ranking is only
   trusted within a batch, so the capacity-filling uniform points the
   constraints recommend always get measured even when the model's
   top-k looks elsewhere. *)
let evaluate_anchors st ~prefetch anchors best =
  List.fold_left
    (fun acc bindings ->
      match evaluate st ~bindings ~prefetch with
      | Some c -> (
        match acc with
        | Some (_, c') when c' <= c -> acc
        | _ -> Some (bindings, c))
      | None -> acc)
    best anchors

let tune_armed st =
  let unroll_params = List.map snd st.variant.Variant.unrolls in
  let tile_params = List.map snd st.variant.Variant.tiles in
  let start = List.map (fun p -> (p, 1)) (unroll_params @ tile_params) in
  let m0 =
    match initial_uniform st tile_params start with Some m -> m | None -> 1
  in
  let start =
    if tile_params = [] then start
    else set_params start (List.map (fun p -> (p, m0)) tile_params)
  in
  let u0 =
    match initial_uniform st unroll_params start with Some m -> m | None -> 1
  in
  let stage1 =
    let best =
      stage_grid st unroll_params ~prefetch:[] ~values:unroll_grid_values start
    in
    (* anchors: the constraints' own starting point — maximal uniform
       unrolls at the model-initial tiles — plus its single-parameter
       bumps in both directions, which cover the near-square register
       blocks (u0+-1) the register-pressure constraint actually
       favours; infeasible bumps prune for free *)
    let base = set_params start (List.map (fun p -> (p, u0)) unroll_params) in
    evaluate_anchors st ~prefetch:[]
      (base
      :: List.concat_map
           (fun p ->
             set_params base [ (p, u0 + 1) ]
             :: (if u0 > 1 then [ set_params base [ (p, u0 - 1) ] ] else []))
           unroll_params)
      best
  in
  match stage1 with
  | None -> None
  | Some (b1, _) -> (
    let stage2 =
      let best =
        stage_grid st tile_params ~prefetch:[]
          ~values:(tile_grid_values st m0) b1
      in
      (* anchors: uniform capacity-filling footprints with stage-1's
         unrolls *)
      evaluate_anchors st ~prefetch:[]
        (List.filter_map
           (fun m ->
             if m >= 1 && tile_params <> [] then
               Some (set_params b1 (List.map (fun p -> (p, m)) tile_params))
             else None)
           [ m0; m0 * 9 / 10; m0 * 3 / 4 ])
        best
    in
    match stage2 with
    | None -> None
    | Some (b2, c2) ->
      let line = line_elems st in
      let delta p = if List.mem p unroll_params then 1 else max 1 line in
      let b2, c2 =
        linear_refine_capped st
          (unroll_params @ tile_params)
          ~prefetch:[] ~delta ~rounds:2 b2 c2
      in
      let prefetch, c3 = prefetch_search_armed st ~bindings:b2 c2 in
      (* Short refinement with prefetch in place: prefetch shifts the
         latency/issue balance, which can move the best tile/unroll
         point by a notch. *)
      let b3, c4 =
        linear_refine_capped st
          (unroll_params @ tile_params)
          ~prefetch ~delta ~rounds:1 b2 c3
      in
      let b4, _ = adjust st ~prefetch b3 c4 in
      ignore b4;
      st.best)

(* The post-search confirmation pass: under a noisy fault plan the
   minimum over all measured values is biased low (winner's curse), so
   the leading candidates are re-measured with fresh, longer trials and
   the winner is chosen on confirmed values.  A no-op on a clean
   engine. *)
let confirm_noisy st =
  if not (Engine.confirming st.engine) then st.best
  else
    let trials = 2 * (Engine.protocol st.engine).Engine.trials in
    let confirmed =
      List.filter_map
        (fun (o, _) ->
          match
            Engine.confirm st.engine
              (Engine.request st.variant ~n:st.n ~mode:st.mode
                 ~bindings:o.bindings ~prefetch:o.prefetch)
              ~trials
          with
          | Some m -> Some ({ o with measurement = m }, score st m)
          | None -> None)
        st.top
    in
    match confirmed with
    | [] -> st.best
    | hd :: tl ->
      Some (fst (List.fold_left (fun (_, ca as a) (_, cb as b) ->
                     if cb < ca then b else a)
                   hd tl))

(* How many leaderboard entries a sampled search must re-measure
   exactly.  The fixed top-5 confirmation pays five exact replays per
   variant even when the sampled estimator has never once mis-ranked a
   leaderboard on this kernel; the adaptive policy spends that budget
   only while the estimator is unproven.  Evidence is the engine's
   per-kernel (pairs, inversions) record, accumulated by every
   confirmation pass (including other variants of the same tune run and
   checkpoint-resumed history): with fewer than [min_rank_pairs] judged
   pairs the full leaderboard is confirmed; once the observed inversion
   rate is <= 2% one confirmation suffices, <= 15% keeps a safety
   second, anything worse falls back to the full leaderboard.  The
   floor of one is never crossed — the reported [performance:] is
   always an exact measurement — and [--confirm] overrides the policy
   with a fixed size. *)
let min_rank_pairs = 4

let confirm_quota st =
  match Engine.confirm_override st.engine with
  | Some k -> max 1 k
  | None ->
    let kernel = st.variant.Variant.kernel.Kernels.Kernel.name in
    let pairs, inversions = Engine.rank_quality st.engine ~kernel in
    if pairs < min_rank_pairs then leaderboard_size
    else
      let rate = float_of_int inversions /. float_of_int pairs in
      if rate <= 0.02 then 1 else if rate <= 0.15 then 2 else leaderboard_size

(* A runner-up beating the front-runner within the sampled-search
   degradation budget (2%) is harmless — either choice is an
   acceptable winner — so only a win beyond this margin can classify a
   judged pair as an inversion. *)
let rank_pair_rtol = 0.02

let record_rank_evidence st confirmed =
  let kernel = st.variant.Variant.kernel.Kernels.Kernel.name in
  let entries = Array.of_list confirmed in
  let pairs = ref 0 and inversions = ref 0 in
  let n = Array.length entries in
  (* Judge only the pairs a shrunken quota would actually act on: the
     estimate front-runner (index 0 — the leaderboard is confirmed in
     ascending estimate order) against each runner-up.  An inversion
     deep in the leaderboard (rank 4 vs 5) never changes what quota 1
     commits, so it is not evidence against shrinking.  Each judged
     pair asks: would committing to the front-runner have lost this
     runner-up?  Three ways the answer is no — the runner-up is within
     the degradation budget (either choice is an acceptable winner),
     the exact scores agree with the estimate order, or the runner-up
     wins with the front-runner's own bindings (quota 1 commits the
     {e bindings}; the prefetch plan is re-derived from scratch at
     exact precision by the winner polish's coordinate descent, so a
     same-bindings runner-up is reachable anyway).  Only a runner-up
     that wins clearly with {e different} bindings is an inversion:
     something the shrunken confirm set would genuinely lose. *)
  for j = 1 to n - 1 do
    let o0, a = entries.(0) and oj, b = entries.(j) in
    incr pairs;
    if
      a > b
      && Float.abs (a -. b) > rank_pair_rtol *. Float.min a b
      && List.sort compare o0.bindings <> List.sort compare oj.bindings
    then incr inversions
  done;
  Engine.record_rank_sample st.engine ~kernel ~pairs:!pairs
    ~inversions:!inversions

(* Exact top-k confirmation of a sampled search: the leaderboard was
   ranked on sampled estimates, so the leading [quota] candidates are
   re-measured with full (unsampled) replays — memoized as exact
   entries under their exact fingerprints — and the winner is chosen
   on exact values.  The estimates only steered the search.  Each pass
   also scores the estimator: every clearly separated exact pair that
   came back in (or out of) estimate order feeds the engine's
   rank-quality record, which is what earns future passes a smaller
   quota. *)
let confirm_exact st ~quota =
  let kept = List.filteri (fun i _ -> i < quota) st.top in
  let skipped = List.filteri (fun i _ -> i >= quota) st.top in
  List.iter
    (fun _ -> Engine.note_confirm_skipped st.engine ?log:st.log ())
    skipped;
  let confirmed =
    List.filter_map
      (fun (o, _) ->
        match
          Engine.evaluate st.engine ?log:st.log
            (Engine.request st.variant ~n:st.n ~mode:st.mode
               ~bindings:o.bindings ~prefetch:o.prefetch)
        with
        | Some ev ->
          Engine.note_confirmed st.engine ?log:st.log ();
          Some
            ( {
                o with
                program = ev.Engine.program;
                measurement = ev.Engine.measurement;
              },
              score st ev.Engine.measurement )
        | None -> None)
      kept
  in
  record_rank_evidence st confirmed;
  match confirmed with
  | [] -> st.best
  | hd :: tl ->
    Some (fst (List.fold_left (fun (_, ca as a) (_, cb as b) ->
                   if cb < ca then b else a)
                 hd tl))

(* One ±delta descent round where the neighbourhood is RANKED with
   sampled estimates and only the apparent winner is re-measured at
   exact precision.  The neighbourhood of a confirmed winner was
   largely visited during sampled steering, so the ranking sweep is
   served from the engine memo for near nothing; only the top few
   apparent winners are re-measured full-length (sampled estimates
   separate the promising rim of the neighbourhood from the hopeless
   bulk reliably, but blur the ordering WITHIN the rim — giving the
   exact tier the top three instead of the argmin covers the observed
   inversions), and a pick is kept only if it beats the incumbent's
   exact score, so a mis-ranked neighbour costs an opportunity, never
   correctness.  Sampled scores never reach [consider] — [st.best]
   sees only exact measurements.  Caller must have sampling disabled
   on entry; it is restored to disabled on exit. *)
let refine_confirm_top = 3

(* The grow-from-empty prefetch greedy re-run under sampled estimates:
   every sweep is ranked on cheap sampled replays (no [consider] — the
   scores never touch [st.best]), and only the final plan is returned
   for one exact confirmation by the caller.  Both the baseline and the
   candidates are scored sampled, so the greedy compares like with
   like.  Caller must have sampling disabled on entry; restored on
   exit. *)
let prefetch_greedy_sampled st ~sampling ~bindings ~start =
  Fun.protect
    ~finally:(fun () -> Engine.set_sampling st.engine None)
    (fun () ->
      Engine.set_sampling st.engine (Some sampling);
      match Engine.build st.engine (request st ~bindings ~prefetch:[]) with
      | None -> None
      | Some program ->
        let bindings = List.sort compare bindings in
        let sweep prefs =
          let prefs = List.map (List.sort compare) prefs in
          let evs =
            Engine.evaluate_batch st.engine ?log:st.log
              (List.map (fun prefetch -> request st ~bindings ~prefetch) prefs)
          in
          List.fold_left2
            (fun acc prefetch ev ->
              match ev with
              | None -> acc
              | Some ev -> (
                let c = score st ev.Engine.measurement in
                match acc with
                | Some (_, c') when c' <= c -> acc
                | _ -> Some (prefetch, c)))
            None prefs evs
        in
        let arrays = Transform.Prefetch_insert.candidates program in
        let distances = [ 2; 4; 8; 16 ] in
        match sweep [ List.sort compare start ] with
        | None -> None
        | Some (_, base_c) ->
          let plan, c =
            List.fold_left
              (fun (chosen, best_c) a ->
                let prefs = List.map (fun d -> (a, d) :: chosen) distances in
                match sweep prefs with
                | Some (p, c) when c < best_c -> (p, c)
                | _ -> (chosen, best_c))
              ([], base_c) arrays
          in
          if c < base_c && plan <> [] then Some plan else None)

let refine_round_sampled st ~sampling stage ~prefetch ~delta bindings current =
  let candidates =
    List.concat_map
      (fun p ->
        let v = List.assoc p bindings in
        let d = delta p in
        List.filter_map
          (fun v' ->
            if v' >= 1 && v' <> v then Some (set_params bindings [ (p, v') ])
            else None)
          [ v + d; v - d ])
      stage
  in
  let ranked =
    Fun.protect
      ~finally:(fun () -> Engine.set_sampling st.engine None)
      (fun () ->
        Engine.set_sampling st.engine (Some sampling);
        let prefetch = List.sort compare prefetch in
        let candidates = List.map (List.sort compare) candidates in
        let evs =
          Engine.evaluate_batch st.engine ?log:st.log
            (List.map
               (fun bindings -> request st ~bindings ~prefetch)
               candidates)
        in
        List.sort
          (fun (_, a) (_, b) -> compare a b)
          (List.concat
             (List.map2
                (fun bindings ev ->
                  match ev with
                  | None -> []
                  | Some ev -> [ (bindings, score st ev.Engine.measurement) ])
                candidates evs)))
  in
  let picks =
    List.filteri (fun i _ -> i < refine_confirm_top) ranked |> List.map fst
  in
  List.fold_left
    (fun (bindings, current) cand ->
      match evaluate st ~bindings:cand ~prefetch with
      | Some c when c < current -> (cand, c)
      | _ -> (bindings, current))
    (bindings, current) picks

(* Bounded exact polish around the confirmed winner of a sampled
   search: sampled estimates rank the broad landscape reliably but blur
   the last notch of tile/unroll size and prefetch distance, which is
   where the <=2% degradation budget goes.  One capped descent round, a
   prefetch pass, and a final capped round recover it; [consider] folds
   every exact evaluation into [st.best], so the polish can only
   improve the answer.  When the session's sampling spec is supplied,
   the descent rounds rank their neighbourhoods with sampled estimates
   ([refine_round_sampled]) and exact-measure only the pick — the
   neighbourhood sweep is the polish's dominant cost, and ranking it at
   full precision buys nothing the single exact confirmation doesn't.
   Caller must have sampling disabled. *)
let polish_exact ?sampling st =
  match st.best with
  | None -> ()
  | Some o ->
    let unroll_params = List.map snd st.variant.Variant.unrolls in
    let tile_params = List.map snd st.variant.Variant.tiles in
    let stage = unroll_params @ tile_params in
    let line = line_elems st in
    let delta p = if List.mem p unroll_params then 1 else max 1 line in
    let round ~prefetch bindings current =
      match sampling with
      | Some sp ->
        refine_round_sampled st ~sampling:sp stage ~prefetch ~delta bindings
          current
      | None ->
        linear_refine_capped st stage ~prefetch ~delta ~rounds:1 bindings
          current
    in
    let c0 = score st o.measurement in
    let b1, c1 = round ~prefetch:o.prefetch o.bindings c0 in
    (* Two complementary prefetch passes: coordinate descent from the
       confirmed incumbent (reaches joint plans the greedy can't), then
       the grow-from-empty greedy (escapes coupled local minima the
       descent can't — an incumbent with a bad near distance on every
       array blocks any single-array move).  Keep whichever lands
       lower. *)
    (* Two complementary prefetch passes: coordinate descent from the
       confirmed incumbent (reaches joint plans the greedy can't), and —
       only when the descent stalls — the grow-from-empty greedy, which
       escapes coupled local minima the descent can't (an incumbent
       with a bad near distance on every array blocks any single-array
       move).  Under sampling the greedy's sweeps are ranked on sampled
       estimates and only its final plan is confirmed exactly. *)
    let prefetch, c2 = prefetch_refine st ~bindings:b1 o.prefetch c1 in
    let prefetch, c2 =
      if c2 < c1 then (prefetch, c2)
      else
        match sampling with
        | Some sp -> (
          match
            prefetch_greedy_sampled st ~sampling:sp ~bindings:b1
              ~start:prefetch
          with
          | Some p -> (
            match evaluate st ~bindings:b1 ~prefetch:p with
            | Some c when c < c2 -> (p, c)
            | _ -> (prefetch, c2))
          | None -> (prefetch, c2))
        | None -> (
          match prefetch_search_armed st ~bindings:b1 c2 with
          | p, c when c < c2 && p <> [] -> (p, c)
          | _ -> (prefetch, c2))
    in
    ignore (round ~prefetch b1 c2)

let confirm_best st =
  match Engine.sampling st.engine with
  | None -> confirm_noisy st
  | Some _ as saved ->
    Fun.protect
      ~finally:(fun () -> Engine.set_sampling st.engine saved)
      (fun () ->
        Engine.set_sampling st.engine None;
        let quota = confirm_quota st in
        st.best <- confirm_exact st ~quota;
        (* The exact polish — the costly part of the tail, a few dozen
           full-precision simulations — is deferred to the single
           cross-variant winner ({!polish_winner}): the search pays one
           polish per run rather than one per variant, and per-variant
           confirmation only has to pick the right variant, which the
           confirmed exact scores already do. *)
        confirm_noisy st)

(* Final exact polish of the cross-variant winner of a sampled run.
   Idempotent where the per-variant polish already ran (identical
   neighborhoods are served from the memo) and cheap, so callers apply
   it unconditionally; where confirmation was shrunk it is the one
   place the last notch of tile/unroll size and prefetch distance is
   recovered at exact precision. *)
let polish_winner engine ~n ~mode ?log (o : outcome) =
  match Engine.sampling engine with
  | None -> o
  | Some _ as saved ->
    Fun.protect
      ~finally:(fun () -> Engine.set_sampling engine saved)
      (fun () ->
        Engine.set_sampling engine None;
        let st =
          { engine; n; mode; log; variant = o.variant; best = Some o; top = [] }
        in
        polish_exact st;
        match st.best with Some b -> b | None -> o)

let model_point _machine ~n variant =
  (* Pure constraint arithmetic — no engine, no simulation. *)
  let feasible_at bindings = Variant.feasible variant ~n bindings in
  let uniform stage bindings =
    let at m = feasible_at (set_params bindings (List.map (fun p -> (p, m)) stage)) in
    let rec grow m = if m * 2 <= 4096 && at (m * 2) then grow (m * 2) else m in
    let rec refine lo hi =
      if hi - lo <= 1 then if at hi then hi else lo
      else
        let mid = (lo + hi) / 2 in
        if at mid then refine mid hi else refine lo mid
    in
    if not (at 1) then None
    else
      let m = grow 1 in
      Some (if at (m * 2) then m * 2 else refine m (m * 2))
  in
  let unroll_params = List.map snd variant.Variant.unrolls in
  let tile_params = List.map snd variant.Variant.tiles in
  let start = List.map (fun p -> (p, 1)) (unroll_params @ tile_params) in
  match uniform tile_params start with
  | None -> None
  | Some mt ->
    let with_tiles =
      if tile_params = [] then start
      else set_params start (List.map (fun p -> (p, mt)) tile_params)
    in
    (match uniform unroll_params with_tiles with
    | None -> None
    | Some mu ->
      if unroll_params = [] then Some with_tiles
      else Some (set_params with_tiles (List.map (fun p -> (p, mu)) unroll_params)))

(* --- transfer warm-start ----------------------------------------------

   With a performance database attached (and warm-starting enabled),
   a new search first asks it for the nearest recorded summary — same
   kernel, closest machine capacity vector, then closest problem size —
   and transfers its frontier: each recorded point is rescaled through
   this variant's own constraints ([Derive.rescale_point]) and
   force-simulated as an anchor, exactly like the classical anchors of
   the armed path.  The search then runs a short refinement around the
   transferred optimum instead of a full staged descent.  With no
   database, no matching summary, or nothing transferable, [warm_tune]
   evaluates NOTHING and returns [None] — the search falls through to
   the historical paths byte-identically. *)

let max_transfer_anchors = 3

(* Seeds transferred from the nearest database summary, together with
   the donor's (machine, size) distance — the adaptive refinement
   budget below is keyed to it. *)
let warm_seeds st =
  match Engine.warm_db st.engine with
  | None -> ([], None)
  | Some db -> (
    let machine = Engine.machine st.engine in
    let capacity = Perfdb.capacity_vector machine in
    let kernel = st.variant.Variant.kernel.Kernels.Kernel.name in
    match Perfdb.nearest db ~kernel ~capacity ~n:st.n with
    | None -> ([], None)
    | Some s ->
      let seeds =
        List.filter_map
          (fun (p : Perfdb.point) ->
            (* only same-variant points transfer: parameters are named
               per variant, and cross-variant points would rescale into
               meaningless bindings *)
            if not (String.equal p.Perfdb.variant st.variant.Variant.name)
            then None
            else
              match
                Derive.rescale_point st.variant ~n:st.n p.Perfdb.bindings
              with
              | None -> None
              | Some bindings ->
                let prefetch =
                  List.map
                    (fun (a, d) -> (a, max 1 (min 64 d)))
                    p.Perfdb.prefetch
                in
                Some (bindings, prefetch))
          s.Perfdb.frontier
      in
      let seen = Hashtbl.create 8 in
      let uniq =
        List.filter
          (fun sd ->
            if Hashtbl.mem seen sd then false
            else begin
              Hashtbl.add seen sd ();
              true
            end)
          seeds
      in
      ( List.filteri (fun i _ -> i < max_transfer_anchors) uniq,
        Some (Perfdb.distance ~capacity ~n:st.n s) ))

let warm_tune st =
  match warm_seeds st with
  | [], _ -> None
  | seeds, donor -> (
    (* Adaptive warm-refinement budget: how much local search a
       transfer earns depends on how far the donor is.  A same-machine,
       near-size donor transfers near-optimal points, so the short
       classical refinement suffices; a cross-machine donor (any
       nonzero capacity distance) or a donor more than 2x away in size
       only lands the search in the right basin — double the refinement
       rounds and widen the prefetch-distance retune grid. *)
    let far =
      match donor with
      | None -> false
      | Some (machine_dist, size_dist) -> machine_dist > 0.0 || size_dist >= 1.0
    in
    let rounds_pre = if far then 4 else 2 in
    let rounds_post = if far then 2 else 1 in
    let distance_scales = if far then [ 1; 2; 3; 4; 6; 8 ] else [ 1; 2; 4; 8 ] in
    let best =
      List.fold_left
        (fun acc (bindings, prefetch) ->
          Engine.note_warm_start st.engine ?log:st.log ();
          match evaluate st ~bindings ~prefetch with
          | Some c -> (
            match acc with
            | Some (_, _, c') when c' <= c -> acc
            | _ -> Some (bindings, prefetch, c))
          | None -> acc)
        None seeds
    in
    (* Classical guard anchor: the constraints' capacity-filling point,
       so a transfer from a poorly-matched donor can never drag the
       search below what the model alone recommends.  It borrows the
       best seed's transferred prefetch plan so the comparison is
       apples-to-apples — with an empty plan the guard would lose to
       any prefetched seed even when its bindings are better. *)
    let best =
      match model_point (Engine.machine st.engine) ~n:st.n st.variant with
      | None -> best
      | Some b -> (
        let pf = match best with Some (_, pf, _) -> pf | None -> [] in
        match evaluate st ~bindings:b ~prefetch:pf with
        | Some c -> (
          match best with
          | Some (_, _, c') when c' <= c -> best
          | _ -> Some (b, pf, c))
        | None -> best)
    in
    match best with
    | None -> None
    | Some (b0, pf0, c0) ->
      let unroll_params = List.map snd st.variant.Variant.unrolls in
      let tile_params = List.map snd st.variant.Variant.tiles in
      (* Capacity re-saturation anchor: the donor's tiles were sized for
         the donor's problem, so when the target size changes, also try
         re-saturating the capacity constraints with the transferred
         unrolls (and prefetch plan) in place.  This is what lets a
         warm start track the growing optimum instead of being pinned
         to the donor's footprint. *)
      let b0, pf0, c0 =
        match initial_uniform st tile_params b0 with
        | Some m0 when tile_params <> [] ->
          let cand =
            set_params b0 (List.map (fun p -> (p, m0)) tile_params)
          in
          if cand = b0 then (b0, pf0, c0)
          else (
            match evaluate st ~bindings:cand ~prefetch:pf0 with
            | Some c when c < c0 -> (cand, pf0, c)
            | _ -> (b0, pf0, c0))
        | _ -> (b0, pf0, c0)
      in
      let line = line_elems st in
      let delta p = if List.mem p unroll_params then 1 else max 1 line in
      let b1, c1 =
        linear_refine_capped st
          (unroll_params @ tile_params)
          ~prefetch:pf0 ~delta ~rounds:rounds_pre b0 c0
      in
      let pf, c2 =
        match pf0 with
        | [] ->
          (* nothing transferred: build a plan from scratch, exactly as
             the armed path does *)
          prefetch_search_armed st ~bindings:b1 c1
        | _ -> (
          (* The transferred plan already names the right arrays — the
             donor search chose them on a neighboring size — so only the
             distances need retuning.  A uniform rescale sweep costs a
             handful of simulations instead of the full
             |arrays| x |distances| greedy rebuild. *)
          let scaled s =
            List.sort compare
              (List.map (fun (a, d) -> (a, max 1 (min 64 (d * s / 2)))) pf0)
          in
          let seen = Hashtbl.create 4 in
          let candidates =
            List.filter
              (fun p ->
                if Hashtbl.mem seen p then false
                else begin
                  Hashtbl.add seen p ();
                  true
                end)
              (List.map scaled distance_scales)
          in
          match evaluate_prefetch_sweep st ~bindings:b1 candidates with
          | Some (p, c) when c < c1 -> (p, c)
          | _ -> (pf0, c1))
      in
      (* keep the transferred plan when the retune does not beat it *)
      let pf, c2 = if c2 < c1 then (pf, c2) else (pf0, c1) in
      let b2, c3 =
        linear_refine_capped st
          (unroll_params @ tile_params)
          ~prefetch:pf ~delta ~rounds:rounds_post b1 c2
      in
      let b3, _ = adjust st ~prefetch:pf b2 c3 in
      ignore b3;
      st.best)

let tune_variant engine ~n ~mode ~log variant =
  let st =
    { engine; n; mode; log = Some log; variant; best = None; top = [] }
  in
  match warm_tune st with
  | Some _ -> confirm_best st
  | None ->
  if Engine.prefilter engine <> None then
    match tune_armed st with None -> None | Some _ -> confirm_best st
  else
  let unroll_params = List.map snd variant.Variant.unrolls in
  let tile_params = List.map snd variant.Variant.tiles in
  let all_params = unroll_params @ tile_params in
  let start = List.map (fun p -> (p, 1)) all_params in
  (* Give the cache tiles their model-initial (uniform, capacity-filling)
     values before searching the register tiles, so stage 1 does not run
     against degenerate size-1 tiles. *)
  let start =
    match initial_uniform st tile_params start with
    | Some m when tile_params <> [] ->
      set_params start (List.map (fun p -> (p, m)) tile_params)
    | _ -> start
  in
  let delta_unroll _ = 1 in
  let line = line_elems st in
  (* The paper's linear-refinement step: max(register tile, line size). *)
  let delta_tile _ = max 1 line in
  (* Stage 1: unroll factors. *)
  match stage_search st unroll_params ~prefetch:[] ~delta:delta_unroll start with
  | None -> None
  | Some (b1, _) -> (
    (* Stage 2: tile sizes, carrying the unrolls over. *)
    match stage_search st tile_params ~prefetch:[] ~delta:delta_tile b1 with
    | None -> None
    | Some (b2, c2) ->
      let b2, c2 = snap_multiples st ~prefetch:[] b2 c2 in
      let prefetch, c3 = prefetch_search st ~bindings:b2 c2 in
      let b3, _ = adjust st ~prefetch b2 c3 in
      ignore b3;
      confirm_best st)

let measure_point engine ~n ~mode ?log variant ~bindings ~prefetch =
  let st = { engine; n; mode; log; variant; best = None; top = [] } in
  match evaluate st ~bindings ~prefetch with
  | Some _ -> st.best
  | None -> None
