type entry = {
  variant : string;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  cycles : float;
  mflops : float;
}

type t = {
  mutable entries : entry list;
  mutable hits : int;
  mutable pruned : int;
  mutable failed : int;
  mutable prefiltered : int;
  mutable db_hits : int;
  mutable warm_starts : int;
  mutable repriced : int;
  mutable confirmed : int;
  mutable confirm_skipped : int;
  started : float;
}

let create () =
  {
    entries = [];
    hits = 0;
    pruned = 0;
    failed = 0;
    prefiltered = 0;
    db_hits = 0;
    warm_starts = 0;
    repriced = 0;
    confirmed = 0;
    confirm_skipped = 0;
    started = Unix_time.now ();
  }

let record t e = t.entries <- e :: t.entries
let note_hit t = t.hits <- t.hits + 1
let note_pruned t = t.pruned <- t.pruned + 1
let note_failed t = t.failed <- t.failed + 1
let note_prefiltered t = t.prefiltered <- t.prefiltered + 1
let note_db_hit t = t.db_hits <- t.db_hits + 1
let note_warm_start t = t.warm_starts <- t.warm_starts + 1
let note_repriced t = t.repriced <- t.repriced + 1
let note_confirmed t = t.confirmed <- t.confirmed + 1
let note_confirm_skipped t = t.confirm_skipped <- t.confirm_skipped + 1
let entries t = List.rev t.entries
let points t = List.length t.entries
let fresh = points
let hits t = t.hits
let pruned t = t.pruned
let failed t = t.failed
let prefiltered t = t.prefiltered
let db_hits t = t.db_hits
let warm_starts t = t.warm_starts
let repriced t = t.repriced
let confirmed t = t.confirmed
let confirm_skipped t = t.confirm_skipped
let seconds t = Unix_time.now () -. t.started

let best t =
  match t.entries with
  | [] -> None
  | e :: rest ->
    Some (List.fold_left (fun acc e -> if e.cycles < acc.cycles then e else acc) e rest)

let pp_bindings fmt bindings =
  Format.pp_print_string fmt
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) bindings))

let pp fmt t =
  Format.fprintf fmt
    "%d points in %.2fs (%d cache hits excluded, %d pruned by constraints, %d \
     failed%s)@."
    (points t) (seconds t) (hits t) (pruned t) (failed t)
    ((if prefiltered t > 0 then
        Printf.sprintf ", %d pre-filtered by the model" (prefiltered t)
      else "")
    ^ (if db_hits t > 0 then
         Printf.sprintf ", %d served from the performance database" (db_hits t)
       else "")
    ^ (if warm_starts t > 0 then
         Printf.sprintf ", %d transferred warm-start seeds" (warm_starts t)
       else "")
    ^ (if repriced t > 0 then
         Printf.sprintf ", %d re-priced incrementally" (repriced t)
       else "")
    ^
    if confirm_skipped t > 0 then
      Printf.sprintf ", %d leaderboard confirms skipped adaptively"
        (confirm_skipped t)
    else "");
  List.iter
    (fun e ->
      Format.fprintf fmt "  %s %a pref[%a] -> %.0f cycles (%.1f MFLOPS)@."
        e.variant pp_bindings e.bindings pp_bindings e.prefetch e.cycles e.mflops)
    (entries t)
