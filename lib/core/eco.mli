(** Top-level driver: the complete two-phase ECO optimizer.

    [optimize machine kernel ~n] derives the variants (phase 1), runs
    the model-guided empirical search on each (phase 2), and returns the
    best version found together with the search log — the whole pipeline
    of the paper in one call.

    {[
      let result = Core.Eco.optimize Machine.sgi_r10000 Kernels.Matmul.kernel ~n:256 in
      Format.printf "best: %.1f MFLOPS@." result.Core.Eco.measurement.Core.Executor.mflops
    ]}

    All candidate measurement flows through one {!Engine}: pass [~jobs]
    to evaluate independent candidate batches on a domain pool
    ([jobs = 1], the default, is serial and bit-for-bit deterministic;
    any [jobs] finds the same best point), or use {!optimize_with} to
    share an engine — and its measurement memo — across several
    optimizations, strategies or experiments. *)

type result = {
  outcome : Search.outcome;  (** winning variant, parameters, program *)
  measurement : Executor.measurement;  (** its measurement *)
  variants : Variant.t list;  (** everything phase 1 derived *)
  log : Search_log.t;  (** every point phase 2 evaluated *)
  engine : Engine.t;  (** the evaluation engine used (memo + telemetry) *)
}

(** Why one derived variant contributed nothing to the search. *)
type infeasibility =
  | No_model_point  (** the model found no starting point *)
  | Point_pruned  (** model-initial point rejected by the constraints *)
  | Point_failed of Engine.failure_reason
      (** model-initial point's measurement failed (typed) *)
  | Search_found_nothing
      (** the point measured, but the full search produced no outcome *)

(** Raised (instead of the old untyped [Failure]) when no variant has a
    feasible, measurable parameter setting, carrying a per-variant
    diagnosis.  Cannot happen for the bundled kernels on a healthy
    engine; under injected faults it reports exactly which variant died
    of what. *)
exception
  No_feasible_variant of {
    kernel : string;
    n : int;
    per_variant : (string * infeasibility) list;
  }

(** One-line human description of an {!infeasibility}. *)
val describe_infeasibility : infeasibility -> string

(** Stable machine-readable slug of an {!infeasibility}
    ([no_model_point], [point_pruned], [point_failed],
    [search_found_nothing]) — the shared CLI/service error schema;
    [Point_failed]'s inner reason is coded by {!Engine.failure_code}. *)
val infeasibility_code : infeasibility -> string

(** @param mode execution mode for candidate measurements (default
      {!Executor.default_budget}).
    @param max_variants variants kept for full search after a one-point
      model-initial triage of everything phase 1 derived (default 4).
    @param jobs evaluation parallelism (default 1; [0] = all cores).
    @param objective what the search minimizes (default
      [Objective.Cycles], the historical behaviour; [Energy] minimizes
      modelled energy instead).
    @param prefilter analytical pre-filter top-k per batch (default off;
      see {!Engine.set_prefilter}).
    @raise No_feasible_variant when no variant has a feasible,
      measurable parameter setting (cannot happen for the bundled
      kernels on a healthy engine). *)
val optimize :
  ?mode:Executor.mode ->
  ?max_variants:int ->
  ?jobs:int ->
  ?objective:Objective.t ->
  ?prefilter:int ->
  Machine.t ->
  Kernels.Kernel.t ->
  n:int ->
  result

(** As {!optimize}, but measuring through a caller-supplied engine, so
    repeated points across kernels, strategies and experiments are
    served from one shared memo table.  [log] (default: a fresh log)
    lets the caller own the search log, so a search cut short by a
    deadline or a cancel token can still report its best-so-far. *)
val optimize_with :
  ?mode:Executor.mode ->
  ?max_variants:int ->
  ?log:Search_log.t ->
  Engine.t ->
  Kernels.Kernel.t ->
  n:int ->
  result

(** Re-measure a tuned result at a different problem size (variants keep
    their parameters across sizes, as the paper's ECO versions do).
    Reuses the result's engine when [machine] matches it. *)
val remeasure : ?mode:Executor.mode -> Machine.t -> result -> n:int -> Executor.measurement option
