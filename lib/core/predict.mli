(** Bridge from search-side candidates ({!Variant} points) to the
    analytical model ({!Model.nest}).

    The model library is deliberately ignorant of variants; this module
    reconstructs the loop nest a variant point would instantiate —
    control loops from the tile recipe, element loops in element order,
    unroll factors annotated — straight from the recipe, without
    building or transforming any program.  [prepare] hoists the
    binding-independent work (loop ranges, reference groups, flop
    count), so scoring many points of one variant costs only the model
    arithmetic. *)

type prepared

(** Binding-independent analysis of one variant at one problem size. *)
val prepare : Variant.t -> n:int -> prepared

(** Predict the point's behaviour analytically (no simulation). *)
val predict :
  Machine.t ->
  prepared ->
  bindings:(string * int) list ->
  prefetch:(string * int) list ->
  Model.prediction

(** The point's ranking score under [objective] (default [Cycles]);
    lower is better. *)
val score :
  ?objective:Objective.t ->
  Machine.t ->
  prepared ->
  bindings:(string * int) list ->
  prefetch:(string * int) list ->
  float

(** One-shot [prepare] + [score], for callers scoring a single point. *)
val score_point :
  ?objective:Objective.t ->
  Machine.t ->
  Variant.t ->
  n:int ->
  bindings:(string * int) list ->
  prefetch:(string * int) list ->
  float
