type request = {
  variant : Variant.t;
  n : int;
  mode : Executor.mode;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  check : bool;
}

type evaluation = {
  program : Ir.Program.t;
  measurement : Executor.measurement;
  cached : bool;
}

type stats = {
  hits : int;
  fresh : int;
  pruned : int;
  failed : int;
  simulated_cycles : float;
  eval_seconds : float;
  compile_seconds : float;
  exec_seconds : float;
  sim_seconds : float;
  memo_seconds : float;
  trace_hits : int;
  trace_fills : int;
}

(* The canonical identity of a measurement.  [fp_shape] is a structural
   digest of the variant recipe, so two variants that happen to share a
   name (e.g. the experiment harness rebuilding "table1_mm" with
   different tile sets) cannot alias each other's measurements.  [check]
   is part of the key: a point measured with constraint checking off
   must never satisfy a lookup that expects pruning. *)
type fingerprint = {
  fp_kernel : string;
  fp_variant : string;
  fp_shape : string;
  fp_n : int;
  fp_mode : Executor.mode;
  fp_bindings : (string * int) list;
  fp_prefetch : (string * int) list;
  fp_check : bool;
}

(* [None] = infeasible or failed instantiation, cached so pruning and
   malformed points are paid once. *)
type memo_entry = (Ir.Program.t * Executor.measurement) option

type t = {
  machine : Machine.t;
  jobs : int;
  path : Executor.path;
  memo : (fingerprint, memo_entry) Hashtbl.t;
  (* variant-shape digests, cached by physical identity: variants are
     long-lived values created once per derivation *)
  mutable shapes : (Variant.t * string) list;
  (* Bounded demand-trace LRU (MRU first), keyed by the request
     fingerprint normalized to no prefetch: every prefetch candidate of
     one variant point shares one captured demand trace. *)
  mutable traces : (fingerprint * Demand_trace.t) list;
  mutable trace_words : int;
  mutable hits : int;
  mutable fresh : int;
  mutable pruned : int;
  mutable failed : int;
  mutable simulated_cycles : float;
  mutable eval_seconds : float;
  mutable compile_seconds : float;
  mutable exec_seconds : float;
  mutable sim_seconds : float;
  mutable memo_seconds : float;
  mutable trace_hits : int;
  mutable trace_fills : int;
}

let default_jobs () = Domain.recommended_domain_count ()
let max_trace_entries = 8
let max_trace_words = 6_000_000

let create ?(jobs = 1) ?(path = Executor.Fast) machine =
  let jobs = if jobs = 0 then default_jobs () else max 1 jobs in
  {
    machine;
    jobs;
    path;
    memo = Hashtbl.create 256;
    shapes = [];
    traces = [];
    trace_words = 0;
    hits = 0;
    fresh = 0;
    pruned = 0;
    failed = 0;
    simulated_cycles = 0.0;
    eval_seconds = 0.0;
    compile_seconds = 0.0;
    exec_seconds = 0.0;
    sim_seconds = 0.0;
    memo_seconds = 0.0;
    trace_hits = 0;
    trace_fills = 0;
  }

let machine t = t.machine
let jobs t = t.jobs
let path t = t.path

let stats t =
  {
    hits = t.hits;
    fresh = t.fresh;
    pruned = t.pruned;
    failed = t.failed;
    simulated_cycles = t.simulated_cycles;
    eval_seconds = t.eval_seconds;
    compile_seconds = t.compile_seconds;
    exec_seconds = t.exec_seconds;
    sim_seconds = t.sim_seconds;
    memo_seconds = t.memo_seconds;
    trace_hits = t.trace_hits;
    trace_fills = t.trace_fills;
  }

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "%d fresh evaluations, %d memo hits, %d pruned, %d failed, %.0f simulated \
     cycles, %.2fs evaluating"
    s.fresh s.hits s.pruned s.failed s.simulated_cycles s.eval_seconds

let pp_profile fmt (s : stats) =
  Format.fprintf fmt
    "compile %.3fs, execute %.3fs, simulate %.3fs, memo %.3fs; demand-trace \
     cache: %d hits, %d fills"
    s.compile_seconds s.exec_seconds s.sim_seconds s.memo_seconds s.trace_hits
    s.trace_fills

let request ?(check = true) ?(prefetch = []) variant ~n ~mode ~bindings =
  { variant; n; mode; bindings; prefetch; check }

let canonical r =
  {
    r with
    bindings = List.sort compare r.bindings;
    prefetch = List.sort compare r.prefetch;
  }

let shape_digest t v =
  match List.assq_opt v t.shapes with
  | Some d -> d
  | None ->
    (* Everything that determines the instantiated program except the
       bindings (pure data; the kernel's closure is excluded — the
       kernel is identified by name in the fingerprint). *)
    let d =
      Digest.to_hex
        (Digest.string
           (Marshal.to_string
              ( v.Variant.element_order,
                v.Variant.tiles,
                v.Variant.unrolls,
                v.Variant.copies,
                v.Variant.constraints )
              []))
    in
    t.shapes <- (v, d) :: t.shapes;
    d

let fingerprint t (r : request) =
  {
    fp_kernel = r.variant.Variant.kernel.Kernels.Kernel.name;
    fp_variant = r.variant.Variant.name;
    fp_shape = shape_digest t r.variant;
    fp_n = r.n;
    fp_mode = r.mode;
    fp_bindings = r.bindings;
    fp_prefetch = r.prefetch;
    fp_check = r.check;
  }

let build_program machine (r : request) =
  match Variant.instantiate r.variant ~bindings:r.bindings with
  | exception Invalid_argument _ -> None
  | program ->
    let line = Machine.line_elems machine 0 in
    Some
      (List.fold_left
         (fun p (array, distance) ->
           Transform.Prefetch_insert.apply p ~array ~distance ~line_elems:line)
         program r.prefetch)

let build t r = build_program t.machine (canonical r)

(* The pure worker: no engine state touched, safe on any domain.
   Hierarchy state is created inside [Executor.measure], so concurrent
   simulations share nothing. *)
type raw = Measured of Ir.Program.t * Executor.measurement | Infeasible | Failed

let simulate ?path machine (r : request) =
  if r.check && not (Variant.feasible r.variant ~n:r.n r.bindings) then
    Infeasible
  else
    match build_program machine r with
    | None -> Failed
    | Some program -> (
      match
        Executor.measure ?path machine r.variant.Variant.kernel ~n:r.n
          ~mode:r.mode program
      with
      | exception Invalid_argument _ -> Failed
      | m -> Measured (program, m))

(* Evaluate a prefetch candidate from a captured demand trace:
   synthesize its packed event stream, replay it, and rebuild the
   candidate program from the cached demand program (value-identical to
   [build_program], since instantiation is pure).  Engine-state-free,
   so batch workers can run it; scratch buffers are per-domain. *)
let simulate_from_trace machine dt (r : request) =
  if r.check && not (Variant.feasible r.variant ~n:r.n r.bindings) then
    Infeasible
  else
    match
      let t0 = Unix_time.now () in
      let buf = Executor.synth_scratch () in
      let cut = Demand_trace.synthesize dt ~plan:r.prefetch ~into:buf in
      let synth_seconds = Unix_time.now () -. t0 in
      let line = Machine.line_elems machine 0 in
      let program =
        List.fold_left
          (fun p (array, distance) ->
            Transform.Prefetch_insert.apply p ~array ~distance ~line_elems:line)
          (Demand_trace.program dt) r.prefetch
      in
      let m =
        Executor.measure_from_trace ~synth_seconds machine
          r.variant.Variant.kernel ~n:r.n ~stats:(Demand_trace.stats dt)
          ~events:(Ir.Vm.Buf.data buf) ~n_events:(Ir.Vm.Buf.length buf) ~cut
      in
      Measured (program, m)
    with
    | exception Invalid_argument _ -> Failed
    | raw -> raw

(* --- demand-trace LRU ------------------------------------------------ *)

let trace_key fp = { fp with fp_prefetch = []; fp_check = false }

let trace_find t key =
  let rec go acc = function
    | [] -> None
    | ((k, dt) as entry) :: rest ->
      if k = key then begin
        t.traces <- entry :: List.rev_append acc rest;
        t.trace_hits <- t.trace_hits + 1;
        Some dt
      end
      else go (entry :: acc) rest
  in
  go [] t.traces

let trace_add t key dt =
  let w = Demand_trace.words dt in
  if w <= max_trace_words then begin
    t.traces <- (key, dt) :: t.traces;
    t.trace_words <- t.trace_words + w;
    let rec prune n = function
      | [] -> []
      | (_, dt') :: rest
        when n >= max_trace_entries || t.trace_words > max_trace_words ->
        t.trace_words <- t.trace_words - Demand_trace.words dt';
        prune n rest
      | e :: rest -> e :: prune (n + 1) rest
    in
    t.traces <- prune 0 t.traces
  end

(* Capture the demand trace for a prefetch request's base point and
   cache it.  [None] when the variant fails to instantiate or the
   program is malformed — the caller reports [Failed], matching what
   the direct path would have done. *)
let trace_fill t (r : request) key =
  match Variant.instantiate r.variant ~bindings:r.bindings with
  | exception Invalid_argument _ -> None
  | demand -> (
    match
      Demand_trace.capture t.machine r.variant.Variant.kernel ~n:r.n
        ~mode:r.mode demand
    with
    | exception Invalid_argument _ -> None
    | dt ->
      t.trace_fills <- t.trace_fills + 1;
      trace_add t key dt;
      Some dt)

(* Choose how to simulate a memo miss.  The trace path applies only to
   Fast-path prefetch requests; [fill] additionally captures a missing
   demand trace (serial paths only — batch workers never mutate the
   cache, they just reuse what the coordinator finds at plan time). *)
let simulate_miss t ~fill (r : request) fp =
  match t.path with
  | Executor.Closures -> simulate ~path:Executor.Closures t.machine r
  | Executor.Fast ->
    if r.prefetch = [] then simulate ~path:Executor.Fast t.machine r
    else if r.check && not (Variant.feasible r.variant ~n:r.n r.bindings) then
      Infeasible
    else begin
      let key = trace_key fp in
      match trace_find t key with
      | Some dt -> simulate_from_trace t.machine dt r
      | None ->
        if fill then
          match trace_fill t r key with
          | Some dt -> simulate_from_trace t.machine dt r
          | None -> Failed
        else simulate ~path:Executor.Fast t.machine r
    end

(* Commit one fresh result: memo table, telemetry, log — always on the
   coordinating domain, always in request order. *)
let commit t ?log (r : request) fp raw =
  match raw with
  | Measured (program, m) ->
    Hashtbl.replace t.memo fp (Some (program, m));
    t.fresh <- t.fresh + 1;
    t.simulated_cycles <- t.simulated_cycles +. Executor.cycles m;
    t.compile_seconds <- t.compile_seconds +. m.Executor.timings.Executor.compile_s;
    t.exec_seconds <- t.exec_seconds +. m.Executor.timings.Executor.exec_s;
    t.sim_seconds <- t.sim_seconds +. m.Executor.timings.Executor.sim_s;
    (match log with
    | Some log ->
      Search_log.record log
        {
          Search_log.variant = r.variant.Variant.name;
          bindings = r.bindings;
          prefetch = r.prefetch;
          cycles = Executor.cycles m;
          mflops = m.Executor.mflops;
        }
    | None -> ());
    Some { program; measurement = m; cached = false }
  | Infeasible ->
    Hashtbl.replace t.memo fp None;
    t.pruned <- t.pruned + 1;
    (match log with Some log -> Search_log.note_pruned log | None -> ());
    None
  | Failed ->
    Hashtbl.replace t.memo fp None;
    t.failed <- t.failed + 1;
    (match log with Some log -> Search_log.note_pruned log | None -> ());
    None

let serve_hit t ?log entry =
  t.hits <- t.hits + 1;
  (match log with Some log -> Search_log.note_hit log | None -> ());
  match entry with
  | Some (program, m) -> Some { program; measurement = m; cached = true }
  | None -> None

let evaluate_canonical t ?log r =
  let fp = fingerprint t r in
  let t0 = Unix_time.now () in
  let entry = Hashtbl.find_opt t.memo fp in
  t.memo_seconds <- t.memo_seconds +. (Unix_time.now () -. t0);
  match entry with
  | Some entry -> serve_hit t ?log entry
  | None ->
    let t0 = Unix_time.now () in
    let raw = simulate_miss t ~fill:true r fp in
    t.eval_seconds <- t.eval_seconds +. (Unix_time.now () -. t0);
    commit t ?log r fp raw

let evaluate t ?log r = evaluate_canonical t ?log (canonical r)

(* Strided parallel map: worker [w] takes indices w, w+jobs, w+2*jobs...
   so neighbouring (similarly-sized) candidates spread across domains.
   Batches too small to amortize the domain spawns run serially — the
   result is identical either way (commit order is fixed by the caller),
   only the wall time differs. *)
let parallel_map jobs f arr =
  let n = Array.length arr in
  let out = Array.make n None in
  let jobs = if n < 2 * jobs then 1 else jobs in
  if jobs <= 1 then Array.iteri (fun i x -> out.(i) <- Some (f x)) arr
  else begin
    let domains =
      List.init jobs (fun w ->
          Domain.spawn (fun () ->
              let acc = ref [] in
              let i = ref w in
              while !i < n do
                acc := (!i, f arr.(!i)) :: !acc;
                i := !i + jobs
              done;
              !acc))
    in
    List.iter
      (fun d -> List.iter (fun (i, r) -> out.(i) <- Some r) (Domain.join d))
      domains
  end;
  Array.map Option.get out

let evaluate_batch t ?log reqs =
  let reqs = List.map canonical reqs in
  if t.jobs <= 1 then List.map (evaluate_canonical t ?log) reqs
  else begin
    (* Plan: classify each request as a memo hit, a duplicate of an
       earlier slot, or a scheduled miss.  Each miss becomes a pure
       task: trace-cache lookups happen here on the coordinator (a hit
       pins the captured trace into the task's closure), so workers
       never touch engine state — and never fill the cache. *)
    let slots = Hashtbl.create 16 in
    let t0 = Unix_time.now () in
    let plan =
      List.map
        (fun r ->
          let fp = fingerprint t r in
          if Hashtbl.mem t.memo fp then `Hit fp
          else
            match Hashtbl.find_opt slots fp with
            | Some _ -> `Dup fp
            | None ->
              let slot = Hashtbl.length slots in
              Hashtbl.add slots fp slot;
              `Run (r, fp, slot))
        reqs
    in
    t.memo_seconds <- t.memo_seconds +. (Unix_time.now () -. t0);
    let to_run =
      Array.of_list
        (List.filter_map
           (function
             | `Run (r, fp, _) ->
               let machine = t.machine in
               (match t.path with
               | Executor.Closures ->
                 Some (fun () -> simulate ~path:Executor.Closures machine r)
               | Executor.Fast ->
                 if r.prefetch = [] then
                   Some (fun () -> simulate ~path:Executor.Fast machine r)
                 else (
                   match trace_find t (trace_key fp) with
                   | Some dt -> Some (fun () -> simulate_from_trace machine dt r)
                   | None ->
                     Some (fun () -> simulate ~path:Executor.Fast machine r)))
             | `Hit _ | `Dup _ -> None)
           plan)
    in
    let t0 = Unix_time.now () in
    let raws = parallel_map t.jobs (fun task -> task ()) to_run in
    t.eval_seconds <- t.eval_seconds +. (Unix_time.now () -. t0);
    (* Commit in request order: memo, telemetry and log end up identical
       to a serial evaluation of the same list (a duplicate always
       follows the slot that simulates it, so it resolves as a hit). *)
    List.map
      (function
        | `Hit fp | `Dup fp -> serve_hit t ?log (Hashtbl.find t.memo fp)
        | `Run (r, fp, slot) -> commit t ?log r fp raws.(slot))
      plan
  end

let program_fingerprint kernel ~n ~mode shape =
  {
    fp_kernel = kernel.Kernels.Kernel.name;
    fp_variant = "#program";
    fp_shape = shape;
    fp_n = n;
    fp_mode = mode;
    fp_bindings = [];
    fp_prefetch = [];
    fp_check = false;
  }

let measure_program t ?key kernel ~n ~mode program =
  let shape =
    match key with
    | Some k -> Some ("key:" ^ k)
    | None -> (
      (* Programs are pure data, so a structural digest identifies them;
         if that ever stops holding, fall back to unmemoized execution
         rather than mis-sharing. *)
      match Marshal.to_string program [] with
      | s -> Some ("digest:" ^ Digest.to_hex (Digest.string s))
      | exception _ -> None)
  in
  let run () =
    let t0 = Unix_time.now () in
    let m = Executor.measure ~path:t.path t.machine kernel ~n ~mode program in
    t.eval_seconds <- t.eval_seconds +. (Unix_time.now () -. t0);
    t.fresh <- t.fresh + 1;
    t.simulated_cycles <- t.simulated_cycles +. Executor.cycles m;
    t.compile_seconds <- t.compile_seconds +. m.Executor.timings.Executor.compile_s;
    t.exec_seconds <- t.exec_seconds +. m.Executor.timings.Executor.exec_s;
    t.sim_seconds <- t.sim_seconds +. m.Executor.timings.Executor.sim_s;
    m
  in
  match shape with
  | None -> run ()
  | Some shape -> (
    let fp = program_fingerprint kernel ~n ~mode shape in
    match Hashtbl.find_opt t.memo fp with
    | Some (Some (_, m)) ->
      t.hits <- t.hits + 1;
      m
    | Some None | None ->
      let m = run () in
      Hashtbl.replace t.memo fp (Some (program, m));
      m)
