type request = {
  variant : Variant.t;
  n : int;
  mode : Executor.mode;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  check : bool;
}

type evaluation = {
  program : Ir.Program.t;
  measurement : Executor.measurement;
  cached : bool;
}

(* Why a candidate's evaluation failed.  [Infeasible_instantiation] and
   [Malformed_program] are deterministic (real IR/transformation bugs —
   they must not hide behind an aggregate counter); [Transient],
   [Timeout] and [Quarantined] come from the hostile measurement
   substrate via the resilient protocol below. *)
type failure_reason =
  | Infeasible_instantiation
  | Malformed_program
  | Transient
  | Timeout
  | Quarantined

let describe_failure = function
  | Infeasible_instantiation -> "variant rejected the bindings at instantiation"
  | Malformed_program -> "instantiated program failed to execute"
  | Transient -> "transient measurement failure (no retry budget)"
  | Timeout -> "evaluation deadline exceeded"
  | Quarantined -> "persistently failing: retry budget exhausted"

(* Stable machine-readable slugs: the shared error schema the CLI and
   the autotuning service both emit (Serve.Errors). *)
let failure_code = function
  | Infeasible_instantiation -> "infeasible"
  | Malformed_program -> "malformed"
  | Transient -> "transient"
  | Timeout -> "timeout"
  | Quarantined -> "quarantined"

(* The resilient measurement protocol: how hard the engine fights the
   measurement substrate for each candidate. *)
type protocol = {
  trials : int;
  max_retries : int;
  backoff_s : float;
  cycle_cap : float;
  wall_cap_s : float;
  spread_rtol : float;
  min_trials : int;
}

let default_protocol =
  {
    trials = 1;
    max_retries = 2;
    backoff_s = 0.0;
    cycle_cap = infinity;
    wall_cap_s = infinity;
    spread_rtol = 0.02;
    min_trials = 2;
  }

type stats = {
  hits : int;
  fresh : int;
  pruned : int;
  prefiltered : int;
  model_evals : int;
  model_seconds : float;
  failed : int;
  failed_infeasible : int;
  failed_malformed : int;
  failed_transient : int;
  failed_timeout : int;
  failed_quarantined : int;
  retries : int;
  trials_run : int;
  early_stops : int;
  vm_fallbacks : int;
  simulated_cycles : float;
  eval_seconds : float;
  compile_seconds : float;
  exec_seconds : float;
  sim_seconds : float;
  memo_seconds : float;
  trace_hits : int;
  trace_fills : int;
  fill_seconds : float;
  db_hits : int;
  warm_starts : int;
  sampled : int;
  batched_groups : int;
  batched_candidates : int;
  repriced : int;
  repriced_joint : int;
  confirmed : int;
  confirm_skipped : int;
}

(* The canonical identity of a measurement.  [fp_shape] is a structural
   digest of the variant recipe, so two variants that happen to share a
   name (e.g. the experiment harness rebuilding "table1_mm" with
   different tile sets) cannot alias each other's measurements.  [check]
   is part of the key: a point measured with constraint checking off
   must never satisfy a lookup that expects pruning. *)
type fingerprint = {
  fp_kernel : string;
  fp_variant : string;
  fp_shape : string;
  fp_n : int;
  fp_mode : Executor.mode;
  fp_bindings : (string * int) list;
  fp_prefetch : (string * int) list;
  fp_check : bool;
  fp_sampled : bool;
      (* measured as a sampled estimate: never interchangeable with an
         exact measurement of the same point *)
}

(* Infeasible, pruned and failed points are cached too, with their typed
   reason, so pruning and quarantine are paid once per point. *)
type memo_entry =
  | Measured_entry of Ir.Program.t * Executor.measurement
  | Pruned_entry
  | Failed_entry of failure_reason

type t = {
  machine : Machine.t;
  jobs : int;
  path : Executor.path;
  faults : Faults.t;
  protocol : protocol;
  memo : (fingerprint, memo_entry) Hashtbl.t;
  (* variant-shape digests, cached by physical identity: variants are
     long-lived values created once per derivation *)
  mutable shapes : (Variant.t * string) list;
  (* Bounded demand-trace LRU (MRU first), keyed by the request
     fingerprint normalized to no prefetch: every prefetch candidate of
     one variant point shares one captured demand trace. *)
  mutable traces : (fingerprint * Demand_trace.t) list;
  mutable trace_words : int;
  (* crash-only persistence: (file, tag, every) once configured *)
  mutable checkpoint : (string * string * int) option;
  mutable eval_limit : int option;
  (* Cooperative interruption (the autotuning service's cancel tokens,
     per-request deadlines and watchdog ride on these):
     [poll] runs after every fresh evaluation and at every batch
     boundary and may raise to abort the search; [yield_hook] runs at
     batch boundaries only — the engine is quiescent there, so a
     scheduler may suspend the whole search and run another one on the
     same engine; [deadline] is an absolute wall-clock instant past
     which evaluation raises [Deadline_exceeded]. *)
  mutable poll : (unit -> unit) option;
  mutable yield_hook : (unit -> unit) option;
  mutable deadline : float option;
  (* Graceful degradation of the persistent database tier: the first
     I/O failure detaches the store and records why, instead of
     crashing the search that happened to trigger the write. *)
  mutable db_degraded : string option;
  (* Two-stage evaluation: with [prefilter = Some k], each batch is
     ranked by the analytical model under [objective] and only the
     top-k candidates are simulated. *)
  mutable objective : Objective.t;
  mutable prefilter : int option;
  (* prepared model analyses, keyed by (variant shape digest, n) *)
  preds : (string * int, Predict.prepared) Hashtbl.t;
  mutable hits : int;
  mutable fresh : int;
  mutable pruned : int;
  mutable prefiltered : int;
  mutable model_evals : int;
  mutable model_seconds : float;
  mutable failed : int;
  mutable failed_infeasible : int;
  mutable failed_malformed : int;
  mutable failed_transient : int;
  mutable failed_timeout : int;
  mutable failed_quarantined : int;
  mutable retries : int;
  mutable trials_run : int;
  mutable early_stops : int;
  mutable vm_fallbacks : int;
  mutable simulated_cycles : float;
  mutable eval_seconds : float;
  mutable compile_seconds : float;
  mutable exec_seconds : float;
  mutable sim_seconds : float;
  mutable memo_seconds : float;
  mutable trace_hits : int;
  mutable trace_fills : int;
  mutable fill_seconds : float;
  (* Persistent performance database: exact hits served from disk like
     memo hits (but surviving across runs), fresh successful
     measurements appended back.  [db_ctx] pins everything outside the
     fingerprint that shapes measured values (machine, fault plan,
     aggregation protocol), so a record can only satisfy a lookup made
     under the same conditions.  [db_warm] gates the transfer
     warm-start stage in [Search]. *)
  mutable db : Perfdb.t option;
  mutable db_warm : bool;
  mutable db_ctx : string;
  mutable db_hits : int;
  mutable warm_starts : int;
  (* Batched / sampled / incremental replay (the three evaluator tiers
     of DESIGN.md section 12).  [sampling] turns fast-path measurements
     into sampled estimates; [batch_replay] lets [evaluate_batch]
     collapse a sweep group sharing one demand trace into one
     multi-plan walk; [incremental] additionally re-prices
     distance-only siblings from the base plan's prefetch-timeliness
     slacks. *)
  mutable sampling : Memsim.Sampling.t option;
  mutable batch_replay : bool;
  mutable incremental : bool;
  mutable sampled : int;
  mutable batched_groups : int;
  mutable batched_candidates : int;
  mutable repriced : int;
  mutable repriced_joint : int;
  (* Adaptive confirmation (Search.confirm_best): exact leaderboard
     confirms performed / skipped, the [--confirm] override, and the
     observed estimator rank quality per kernel on this machine —
     (separated pairs, inversions) between estimate order and the
     exact confirms already performed. *)
  mutable confirmed : int;
  mutable confirm_skipped : int;
  mutable confirm_override : int option;
  rank_stats : (string, int * int) Hashtbl.t;
}

let default_jobs () = Domain.recommended_domain_count ()
let max_trace_entries = 8
let max_trace_words = 6_000_000

let create ?(jobs = 1) ?(path = Executor.Fast) ?(faults = Faults.none)
    ?(protocol = default_protocol) ?(objective = Objective.Cycles) ?prefilter
    machine =
  let jobs = if jobs = 0 then default_jobs () else max 1 jobs in
  let prefilter =
    match prefilter with Some k when k >= 1 -> Some k | _ -> None
  in
  let protocol =
    {
      protocol with
      trials = max 1 protocol.trials;
      max_retries = max 0 protocol.max_retries;
    }
  in
  {
    machine;
    jobs;
    path;
    faults;
    protocol;
    memo = Hashtbl.create 256;
    shapes = [];
    traces = [];
    trace_words = 0;
    checkpoint = None;
    eval_limit = None;
    poll = None;
    yield_hook = None;
    deadline = None;
    db_degraded = None;
    objective;
    prefilter;
    preds = Hashtbl.create 16;
    hits = 0;
    fresh = 0;
    pruned = 0;
    prefiltered = 0;
    model_evals = 0;
    model_seconds = 0.0;
    failed = 0;
    failed_infeasible = 0;
    failed_malformed = 0;
    failed_transient = 0;
    failed_timeout = 0;
    failed_quarantined = 0;
    retries = 0;
    trials_run = 0;
    early_stops = 0;
    vm_fallbacks = 0;
    simulated_cycles = 0.0;
    eval_seconds = 0.0;
    compile_seconds = 0.0;
    exec_seconds = 0.0;
    sim_seconds = 0.0;
    memo_seconds = 0.0;
    trace_hits = 0;
    trace_fills = 0;
    fill_seconds = 0.0;
    db = None;
    db_warm = false;
    db_ctx = "";
    db_hits = 0;
    warm_starts = 0;
    sampling = None;
    batch_replay = true;
    incremental = false;
    sampled = 0;
    batched_groups = 0;
    batched_candidates = 0;
    repriced = 0;
    repriced_joint = 0;
    confirmed = 0;
    confirm_skipped = 0;
    confirm_override = None;
    rank_stats = Hashtbl.create 4;
  }

let machine t = t.machine
let jobs t = t.jobs
let path t = t.path
let faults t = t.faults
let protocol t = t.protocol
let objective t = t.objective
let prefilter t = t.prefilter

(* The engine's default top-k: matches [Eco]'s triage width, so a
   pre-filtered batch keeps as many live candidates as the variant
   triage does. *)
let default_prefilter = 4

let set_objective t o = t.objective <- o
let sampling t = t.sampling
let set_sampling t sp = t.sampling <- sp
let batch_replay t = t.batch_replay
let set_batch_replay t b = t.batch_replay <- b
let incremental t = t.incremental
let set_incremental t b = t.incremental <- b

(* Adaptive confirmation plumbing: [Search.confirm_best] owns the
   policy; the engine owns the per-kernel rank-quality evidence and the
   [--confirm] override so they persist across the per-variant search
   states of one run. *)
let confirm_override t = t.confirm_override

let set_confirm_override t k =
  t.confirm_override <- (match k with Some k -> Some (max 1 k) | None -> None)

let rank_quality t ~kernel =
  match Hashtbl.find_opt t.rank_stats kernel with
  | Some pq -> pq
  | None -> (0, 0)

let record_rank_sample t ~kernel ~pairs ~inversions =
  if pairs > 0 then begin
    let p0, i0 = rank_quality t ~kernel in
    Hashtbl.replace t.rank_stats kernel (p0 + pairs, i0 + inversions)
  end

(* Sampling applies to fast-path measurements only: the closure path is
   the exact differential reference and ignores it. *)
let engine_sampling t = if t.path = Executor.Fast then t.sampling else None

let set_prefilter t k =
  t.prefilter <- (match k with Some k when k >= 1 -> Some k | _ -> None)

let stats t =
  {
    hits = t.hits;
    fresh = t.fresh;
    pruned = t.pruned;
    prefiltered = t.prefiltered;
    model_evals = t.model_evals;
    model_seconds = t.model_seconds;
    failed = t.failed;
    failed_infeasible = t.failed_infeasible;
    failed_malformed = t.failed_malformed;
    failed_transient = t.failed_transient;
    failed_timeout = t.failed_timeout;
    failed_quarantined = t.failed_quarantined;
    retries = t.retries;
    trials_run = t.trials_run;
    early_stops = t.early_stops;
    vm_fallbacks = t.vm_fallbacks;
    simulated_cycles = t.simulated_cycles;
    eval_seconds = t.eval_seconds;
    compile_seconds = t.compile_seconds;
    exec_seconds = t.exec_seconds;
    sim_seconds = t.sim_seconds;
    memo_seconds = t.memo_seconds;
    trace_hits = t.trace_hits;
    trace_fills = t.trace_fills;
    fill_seconds = t.fill_seconds;
    db_hits = t.db_hits;
    warm_starts = t.warm_starts;
    sampled = t.sampled;
    batched_groups = t.batched_groups;
    batched_candidates = t.batched_candidates;
    repriced = t.repriced;
    repriced_joint = t.repriced_joint;
    confirmed = t.confirmed;
    confirm_skipped = t.confirm_skipped;
  }

let failure_breakdown (s : stats) =
  List.filter
    (fun (_, n) -> n > 0)
    [
      ("infeasible", s.failed_infeasible);
      ("malformed", s.failed_malformed);
      ("transient", s.failed_transient);
      ("timeout", s.failed_timeout);
      ("quarantined", s.failed_quarantined);
    ]

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "%d fresh evaluations, %d memo hits, %d pruned, %d failed, %.0f simulated \
     cycles, %.2fs evaluating"
    s.fresh s.hits s.pruned s.failed s.simulated_cycles s.eval_seconds;
  if s.prefiltered > 0 then
    Format.fprintf fmt ", %d pre-filtered" s.prefiltered;
  (match failure_breakdown s with
  | [] -> ()
  | parts ->
    Format.fprintf fmt " (failures: %s)"
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) parts)));
  if s.retries > 0 then Format.fprintf fmt ", %d retries" s.retries;
  if s.vm_fallbacks > 0 then Format.fprintf fmt ", %d vm fallbacks" s.vm_fallbacks;
  if s.db_hits > 0 then Format.fprintf fmt ", %d db hits" s.db_hits;
  if s.warm_starts > 0 then
    Format.fprintf fmt ", %d warm-start seeds" s.warm_starts;
  if s.sampled > 0 then Format.fprintf fmt ", %d sampled" s.sampled;
  if s.repriced > 0 then begin
    Format.fprintf fmt ", %d re-priced" s.repriced;
    if s.repriced_joint > 0 then
      Format.fprintf fmt " (%d joint)" s.repriced_joint
  end;
  if s.confirmed > 0 || s.confirm_skipped > 0 then
    Format.fprintf fmt ", %d confirmed (%d skipped)" s.confirmed
      s.confirm_skipped

let pp_profile fmt (s : stats) =
  Format.fprintf fmt
    "compile %.3fs, execute %.3fs, simulate %.3fs, memo %.3fs; demand-trace \
     cache: %d hits, %d fills (%.3fs)"
    s.compile_seconds s.exec_seconds s.sim_seconds s.memo_seconds s.trace_hits
    s.trace_fills s.fill_seconds;
  if s.trials_run > 0 || s.retries > 0 || s.early_stops > 0 then
    Format.fprintf fmt "; protocol: %d trials, %d retries, %d early stops"
      s.trials_run s.retries s.early_stops;
  if s.model_evals > 0 || s.prefiltered > 0 then
    Format.fprintf fmt
      "; prefilter: %d model evals %.3fs, %d candidates skipped, %d simulated"
      s.model_evals s.model_seconds s.prefiltered s.fresh;
  if s.batched_groups > 0 then
    Format.fprintf fmt "; batched replay: %d groups covering %d candidates"
      s.batched_groups s.batched_candidates;
  if s.repriced > 0 then
    Format.fprintf fmt
      "; incremental: %d candidates re-priced without replay (%d by joint \
       multi-array slacks)"
      s.repriced s.repriced_joint;
  if s.confirmed > 0 || s.confirm_skipped > 0 then
    Format.fprintf fmt
      "; confirmation: %d exact leaderboard confirms, %d skipped adaptively"
      s.confirmed s.confirm_skipped

let request ?(check = true) ?(prefetch = []) variant ~n ~mode ~bindings =
  { variant; n; mode; bindings; prefetch; check }

let canonical r =
  {
    r with
    bindings = List.sort compare r.bindings;
    prefetch = List.sort compare r.prefetch;
  }

let shape_digest t v =
  match List.assq_opt v t.shapes with
  | Some d -> d
  | None ->
    (* Everything that determines the instantiated program except the
       bindings (pure data; the kernel's closure is excluded — the
       kernel is identified by name in the fingerprint). *)
    let d =
      Digest.to_hex
        (Digest.string
           (Marshal.to_string
              ( v.Variant.element_order,
                v.Variant.tiles,
                v.Variant.unrolls,
                v.Variant.copies,
                v.Variant.constraints )
              []))
    in
    t.shapes <- (v, d) :: t.shapes;
    d

let fingerprint t (r : request) =
  {
    fp_kernel = r.variant.Variant.kernel.Kernels.Kernel.name;
    fp_variant = r.variant.Variant.name;
    fp_shape = shape_digest t r.variant;
    fp_n = r.n;
    fp_mode = r.mode;
    fp_bindings = r.bindings;
    fp_prefetch = r.prefetch;
    fp_check = r.check;
    fp_sampled = engine_sampling t <> None;
  }

(* Stable candidate identity for keying fault streams: the same
   candidate draws the same faults regardless of evaluation order,
   batch membership or measurement route (direct vs demand-trace). *)
let fault_key fp =
  let kvs l =
    String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) l)
  in
  String.concat "|"
    [
      fp.fp_kernel;
      fp.fp_variant;
      fp.fp_shape;
      string_of_int fp.fp_n;
      (match fp.fp_mode with
      | Executor.Full -> "full"
      | Executor.Budget b -> "budget:" ^ string_of_int b);
      kvs fp.fp_bindings;
      kvs fp.fp_prefetch;
      string_of_bool fp.fp_check;
    ]
  (* appended only for sampled estimates, so every pre-existing key is
     unchanged *)
  ^ (if fp.fp_sampled then "|sampled" else "")

(* --- persistent performance database --------------------------------- *)

(* The database key is the candidate's canonical identity ([fault_key],
   which already spells out kernel/variant shape/n/mode/point) digested
   together with the measurement context: the machine, the fault plan
   and the aggregation protocol.  The executor path is deliberately
   excluded (Fast and Closures are bit-identical by the PR 3
   differential tests), as is the search objective (it steers choices,
   not measured values). *)
let db_context machine (faults : Faults.t) (p : protocol) =
  String.concat "|"
    [
      machine.Machine.name;
      Faults.to_spec faults;
      string_of_int p.trials;
      string_of_int p.max_retries;
      string_of_int p.min_trials;
      string_of_float p.spread_rtol;
      string_of_float p.cycle_cap;
    ]

let set_db t ?(warm_start = true) db =
  t.db <- Some db;
  t.db_warm <- warm_start;
  t.db_ctx <- db_context t.machine t.faults t.protocol

let db t = t.db

let clear_db t =
  t.db <- None;
  t.db_warm <- false

(* Quarantine the store: detach it, remember why (first failure wins),
   keep serving from the in-memory memo.  Called on the first database
   I/O failure — and by the autotuning daemon when a shared store turns
   out corrupt at load time. *)
let degrade_db t reason =
  clear_db t;
  if t.db_degraded = None then t.db_degraded <- Some reason

let db_degraded t = t.db_degraded

(* The database to warm-start from, when transfer seeding is enabled. *)
let warm_db t = if t.db_warm then t.db else None

let note_warm_start t ?log () =
  t.warm_starts <- t.warm_starts + 1;
  match log with Some log -> Search_log.note_warm_start log | None -> ()

let db_key t fp = Digest.to_hex (Digest.string (t.db_ctx ^ "||" ^ fault_key fp))

(* --- analytical pre-filter ------------------------------------------- *)

let prepared t (r : request) =
  let key = (shape_digest t r.variant, r.n) in
  match Hashtbl.find_opt t.preds key with
  | Some p -> p
  | None ->
    let p = Predict.prepare r.variant ~n:r.n in
    Hashtbl.add t.preds key p;
    p

(* Rank score of one candidate under the engine's objective.  A
   candidate the model cannot score ranks first (negative infinity):
   never skip what cannot be ranked. *)
let model_score t (r : request) =
  let t0 = Unix_time.now () in
  let s =
    match
      Predict.score ~objective:t.objective t.machine (prepared t r)
        ~bindings:r.bindings ~prefetch:r.prefetch
    with
    | s when Float.is_nan s -> neg_infinity
    | s -> s
    | exception _ -> neg_infinity
  in
  t.model_evals <- t.model_evals + 1;
  t.model_seconds <- t.model_seconds +. (Unix_time.now () -. t0);
  s

let build_program machine (r : request) =
  match Variant.instantiate r.variant ~bindings:r.bindings with
  | exception Invalid_argument _ -> None
  | program ->
    let line = Machine.line_elems machine 0 in
    Some
      (List.fold_left
         (fun p (array, distance) ->
           Transform.Prefetch_insert.apply p ~array ~distance ~line_elems:line)
         program r.prefetch)

let build t r = build_program t.machine (canonical r)

(* Serve a memo miss from the on-disk exact-hit tier: unmarshal the
   persisted measurement and rebuild the program (instantiation is
   pure, so the pair is value-identical to a fresh simulation).  Any
   defect — unreadable payload, failed rebuild — falls through to a
   fresh simulation rather than failing the request.  Runs only on the
   coordinator, so counters and the memo mutate in request order. *)
let db_serve t ?log (r : request) fp =
  (* Sampled estimates never enter or leave the database: it stores
     exact measurements only. *)
  if fp.fp_sampled then None
  else
  match t.db with
  | None -> None
  | Some db -> (
    match Perfdb.find_measurement db ~key:(db_key t fp) with
    | None -> None
    | Some payload -> (
      match (Marshal.from_string payload 0 : Executor.measurement) with
      | exception _ -> None
      | m -> (
        match build_program t.machine r with
        | None -> None
        | Some program ->
          Hashtbl.replace t.memo fp (Measured_entry (program, m));
          t.db_hits <- t.db_hits + 1;
          (match log with
          | Some log -> Search_log.note_db_hit log
          | None -> ());
          Some { program; measurement = m; cached = true })))

(* Persist one fresh successful measurement.  Only the [Measured] arm of
   [commit] calls this: pruned, failed and quarantined candidates must
   never become database entries, and the key-level dedup makes resumed
   runs (which replay a prefix) append-idempotent. *)
let db_append t (r : request) fp (m : Executor.measurement) =
  if fp.fp_sampled then ()
  else
  match t.db with
  | None -> ()
  | Some db -> (
    match
      Perfdb.add_measurement db ~key:(db_key t fp)
        ~kernel:r.variant.Variant.kernel.Kernels.Kernel.name
        ~machine:t.machine.Machine.name ~n:r.n
        ~payload:(Marshal.to_string m [])
    with
    | _ -> ()
    | exception e ->
      (* An unappendable store (disk full, permissions, torn channel)
         degrades the persistence tier; it must not kill the search
         that happened to trigger the write. *)
      degrade_db t (Printexc.to_string e))

(* --- one clean (deterministic) measurement --------------------------- *)

(* The pure worker core: no engine state touched, safe on any domain.
   Hierarchy state is created inside [Executor.measure], so concurrent
   simulations share nothing.  [Invalid_argument] is mapped to a typed
   reason here; any other exception escapes to [harden], which degrades
   the fast path to the reference interpreter. *)
type clean =
  | Clean of Ir.Program.t * Executor.measurement
  | Clean_infeasible
  | Clean_failed of failure_reason

let clean_simulate ?path ?sampling machine (r : request) =
  if r.check && not (Variant.feasible r.variant ~n:r.n r.bindings) then
    Clean_infeasible
  else
    match build_program machine r with
    | None -> Clean_failed Infeasible_instantiation
    | Some program -> (
      match
        Executor.measure ?path ?sampling machine r.variant.Variant.kernel
          ~n:r.n ~mode:r.mode program
      with
      | exception Invalid_argument _ -> Clean_failed Malformed_program
      | m -> Clean (program, m))

(* Evaluate a prefetch candidate from a captured demand trace:
   synthesize its packed event stream, replay it, and rebuild the
   candidate program from the cached demand program (value-identical to
   [build_program], since instantiation is pure).  Engine-state-free,
   so batch workers can run it; scratch buffers are per-domain. *)
let clean_from_trace ?sampling machine dt (r : request) =
  if r.check && not (Variant.feasible r.variant ~n:r.n r.bindings) then
    Clean_infeasible
  else
    match
      let t0 = Unix_time.now () in
      let buf = Executor.synth_scratch () in
      let cut = Demand_trace.synthesize dt ~plan:r.prefetch ~into:buf in
      let synth_seconds = Unix_time.now () -. t0 in
      let line = Machine.line_elems machine 0 in
      let program =
        List.fold_left
          (fun p (array, distance) ->
            Transform.Prefetch_insert.apply p ~array ~distance ~line_elems:line)
          (Demand_trace.program dt) r.prefetch
      in
      let m =
        Executor.measure_from_trace ~synth_seconds ?sampling machine
          r.variant.Variant.kernel ~n:r.n ~stats:(Demand_trace.stats dt)
          ~events:(Ir.Vm.Buf.data buf) ~n_events:(Ir.Vm.Buf.length buf) ~cut
      in
      Clean (program, m)
    with
    | exception Invalid_argument _ -> Clean_failed Malformed_program
    | c -> c

(* --- the resilient measurement protocol ------------------------------ *)

(* Per-candidate telemetry carried back to the coordinator: the workers
   stay engine-state-free. *)
type tele = {
  t_retries : int;
  t_trials : int;
  t_fallbacks : int;
  t_early_stops : int;
}

type raw =
  | Measured of Ir.Program.t * Executor.measurement * tele
  | Infeasible
  | Failed of failure_reason * tele

(* Wrap one candidate's measurement in the fault-tolerant protocol:

   - the clean (deterministic) simulation runs once; if the fast path
     raises — organically or by an injected crash — it degrades to the
     [reference] closure interpreter (bit-identical measurements, so
     results stay deterministic);
   - a deterministic simulated-cycle overrun is a final [Timeout];
   - with an active fault plan, each of [protocol.trials] trials draws
     its fate from the plan: transient failures and hangs are retried
     with bounded exponential backoff, and exhausting the budget
     quarantines the candidate;
   - surviving trial samples are aggregated (median / trimmed mean, see
     {!Faults.aggregate}) with an adaptive early stop once the relative
     spread is tight.

   Pure apart from wall-clock reads and backoff sleeps: every random
   draw is keyed by [(key, trial, attempt)], so a candidate's outcome is
   identical at any [--jobs] and in any evaluation order. *)
let harden ?(trial_base = 0) ~faults ~(protocol : protocol) ~vm ~key ~primary
    ~reference () =
  let started = Unix_time.now () in
  let retries = ref 0
  and trials = ref 0
  and fallbacks = ref 0
  and early = ref 0 in
  let tele () =
    {
      t_retries = !retries;
      t_trials = !trials;
      t_fallbacks = !fallbacks;
      t_early_stops = !early;
    }
  in
  let clean =
    if vm && Faults.crashes faults ~key then begin
      (* injected fast-path crash: degrade this candidate to the
         reference interpreter *)
      incr fallbacks;
      reference ()
    end
    else
      match primary () with
      | c -> c
      | exception Invalid_argument _ -> Clean_failed Malformed_program
      | exception _ when vm ->
        (* the fast path died unexpectedly: fall back and keep searching *)
        incr fallbacks;
        reference ()
  in
  match clean with
  | Clean_infeasible -> Infeasible
  | Clean_failed reason -> Failed (reason, tele ())
  | Clean (program, m) -> (
    let c0 = Executor.cycles m in
    if c0 > protocol.cycle_cap then Failed (Timeout, tele ())
    else if
      protocol.wall_cap_s < infinity
      && Unix_time.now () -. started > protocol.wall_cap_s
    then Failed (Timeout, tele ())
    else if (not faults.Faults.active) && protocol.trials <= 1 then
      (* the legacy path: no draws, no aggregation, the measurement
         exactly as simulated *)
      Measured (program, m, tele ())
    else begin
      let deadline =
        if protocol.wall_cap_s < infinity then started +. protocol.wall_cap_s
        else infinity
      in
      let n_trials = protocol.trials in
      let samples = Array.make n_trials 0.0 in
      let filled = ref 0 in
      let failure = ref None in
      (try
         for trial = 0 to n_trials - 1 do
           let rec attempt a =
             if Unix_time.now () > deadline then Error Timeout
             else
               match
                 Faults.draw faults ~key ~trial:(trial_base + trial) ~attempt:a
               with
               | Faults.Sample mult ->
                 let c = c0 *. mult in
                 if c > protocol.cycle_cap then retry_or a Timeout else Ok c
               | Faults.Transient_failure -> retry_or a Transient
               | Faults.Hang -> retry_or a Timeout
           and retry_or a reason =
             if a >= protocol.max_retries then
               Error (if protocol.max_retries > 0 then Quarantined else reason)
             else begin
               incr retries;
               if protocol.backoff_s > 0.0 then
                 Unix.sleepf (protocol.backoff_s *. float_of_int (1 lsl a));
               attempt (a + 1)
             end
           in
           (match attempt 0 with
           | Ok c ->
             samples.(!filled) <- c;
             incr filled;
             incr trials;
             if
               !filled >= max 2 protocol.min_trials
               && !filled < n_trials
               && Faults.rel_spread (Array.sub samples 0 !filled)
                  <= protocol.spread_rtol
             then begin
               incr early;
               raise Exit
             end
           | Error reason ->
             failure := Some reason;
             raise Exit)
         done
       with Exit -> ());
      match !failure with
      | Some reason -> Failed (reason, tele ())
      | None ->
        let agg = Faults.aggregate (Array.sub samples 0 !filled) in
        let m = if agg = c0 then m else Executor.perturb m (agg /. c0) in
        Measured (program, m, tele ())
    end)

(* --- demand-trace LRU ------------------------------------------------ *)

let trace_key fp = { fp with fp_prefetch = []; fp_check = false }

let trace_find t key =
  let rec go acc = function
    | [] -> None
    | ((k, dt) as entry) :: rest ->
      if k = key then begin
        t.traces <- entry :: List.rev_append acc rest;
        t.trace_hits <- t.trace_hits + 1;
        Some dt
      end
      else go (entry :: acc) rest
  in
  go [] t.traces

let trace_add t key dt =
  let w = Demand_trace.words dt in
  if w <= max_trace_words then begin
    t.traces <- (key, dt) :: t.traces;
    t.trace_words <- t.trace_words + w;
    let rec prune n = function
      | [] -> []
      | (_, dt') :: rest
        when n >= max_trace_entries || t.trace_words > max_trace_words ->
        t.trace_words <- t.trace_words - Demand_trace.words dt';
        prune n rest
      | e :: rest -> e :: prune (n + 1) rest
    in
    t.traces <- prune 0 t.traces
  end

(* Capture the demand trace for a prefetch request's base point and
   cache it.  [None] when the variant fails to instantiate or the
   program is malformed — the candidate then takes the direct path,
   which fails with the same typed reason. *)
let trace_fill t (r : request) key =
  let t0 = Unix_time.now () in
  Fun.protect
    ~finally:(fun () -> t.fill_seconds <- t.fill_seconds +. (Unix_time.now () -. t0))
  @@ fun () ->
  match Variant.instantiate r.variant ~bindings:r.bindings with
  | exception Invalid_argument _ -> None
  | demand -> (
    match
      (* Sampled estimates replay a trace generated at the shrunken
         budget ([Executor.effective_mode]); [trace_key] keeps the
         sampled flag, so sampled and exact traces never alias. *)
      Demand_trace.capture t.machine r.variant.Variant.kernel ~n:r.n
        ~mode:(Executor.effective_mode (engine_sampling t) r.mode)
        demand
    with
    | exception Invalid_argument _ -> None
    | dt ->
      t.trace_fills <- t.trace_fills + 1;
      trace_add t key dt;
      Some dt)

(* Find or capture the demand trace a prefetch candidate should replay
   against; [None] for non-prefetch candidates (and anything pruned or
   uncapturable — they take the direct path).  Runs on the coordinator:
   workers never touch the cache, they reuse the trace pinned into
   their task's closure.  Reuse counts a trace hit; the capturing
   request itself does not.

   [fill:false] (single-shot requests) consults the cache but never
   captures: a capture is a mark-instrumented VM run plus a multi-MB
   copy, strictly more expensive than measuring the one candidate
   directly, so it only pays when a multi-plan group is about to
   amortize it ([group_unit], the one [fill:true] caller). *)
let candidate_dt ?(fill = true) t (r : request) fp =
  if
    t.path = Executor.Fast && r.prefetch <> []
    && ((not r.check) || Variant.feasible r.variant ~n:r.n r.bindings)
  then
    match trace_find t (trace_key fp) with
    | Some dt -> Some dt
    | None -> if fill then trace_fill t r (trace_key fp) else None
  else None

(* Build the pure task measuring one memo miss (engine-state-free, safe
   on any worker domain). *)
let task_of ?protocol ?trial_base t (r : request) fp ~dt =
  let machine = t.machine
  and faults = t.faults in
  let protocol = Option.value protocol ~default:t.protocol in
  let sampling = engine_sampling t in
  let key = fault_key fp in
  (* The fallback reference stays exact even under sampling: it is the
     differential baseline, and a degraded candidate should return the
     true measurement rather than a differently-seeded estimate. *)
  let reference () = clean_simulate ~path:Executor.Closures machine r in
  match t.path with
  | Executor.Closures ->
    fun () ->
      harden ?trial_base ~faults ~protocol ~vm:false ~key ~primary:reference
        ~reference ()
  | Executor.Fast -> (
    match dt with
    | Some dt ->
      fun () ->
        harden ?trial_base ~faults ~protocol ~vm:true ~key
          ~primary:(fun () -> clean_from_trace ?sampling machine dt r)
          ~reference ()
    | None ->
      let direct () = clean_simulate ~path:Executor.Fast ?sampling machine r in
      fun () ->
        harden ?trial_base ~faults ~protocol ~vm:true ~key ~primary:direct
          ~reference ())

let simulate_miss t (r : request) fp =
  (task_of t r fp ~dt:(candidate_dt ~fill:false t r fp)) ()

(* --- crash-only checkpointing ---------------------------------------- *)

exception Checkpoint_mismatch of string
exception Eval_limit_reached of int
exception Deadline_exceeded

type resume = {
  resumed_entries : int;
  resumed_fresh : int;
  resumed_best_cycles : float option;
}

(* Everything a killed search needs to resume to the identical final
   answer: the memo table (the search replays deterministically against
   it, so the memo IS the search cursor) plus the telemetry counters, so
   resumed stats line up with an uninterrupted run.  Demand traces and
   shape digests are caches and are rebuilt on demand. *)
type checkpoint_blob = {
  ck_tag : string;
  ck_machine : string;
  ck_entries : (fingerprint * memo_entry) array;
  ck_hits : int;
  ck_fresh : int;
  ck_pruned : int;
  ck_prefiltered : int;
  ck_model_evals : int;
  ck_model_seconds : float;
  ck_failed : int;
  ck_failed_infeasible : int;
  ck_failed_malformed : int;
  ck_failed_transient : int;
  ck_failed_timeout : int;
  ck_failed_quarantined : int;
  ck_retries : int;
  ck_trials_run : int;
  ck_early_stops : int;
  ck_vm_fallbacks : int;
  ck_simulated_cycles : float;
  ck_eval_seconds : float;
  ck_compile_seconds : float;
  ck_exec_seconds : float;
  ck_sim_seconds : float;
  ck_memo_seconds : float;
  ck_db_hits : int;
  ck_warm_starts : int;
  ck_sampled : int;
  ck_batched_groups : int;
  ck_batched_candidates : int;
  ck_repriced : int;
  ck_repriced_joint : int;
  ck_confirmed : int;
  ck_confirm_skipped : int;
  ck_rank : (string * (int * int)) array;
  ck_best : float option;
}

(* Version 5: joint-repricing and adaptive-confirmation counters plus
   the per-kernel rank-quality table (v4 added the fingerprint sampled
   flag and the batched/sampled/repriced counters, v3 the
   performance-database counters, v2 the pre-filter counters).  Old
   files fail the magic check and load as "corrupt" -- crash-only
   semantics, the run starts fresh instead of mis-restoring counters. *)
let checkpoint_magic = "ECO-CHECKPOINT-5\n"

(* Exact entries only: sampled estimates may sit below the truth, and
   the callers (checkpoint resume line, [Search]'s polish-worthiness
   test) both want a floor that real measurements actually reached. *)
let best_cycles t =
  Hashtbl.fold
    (fun fp entry acc ->
      match entry with
      | Measured_entry (_, m) when not fp.fp_sampled -> (
        let c = Executor.cycles m in
        match acc with Some b when b <= c -> acc | _ -> Some c)
      | Measured_entry _ | Pruned_entry | Failed_entry _ -> acc)
    t.memo None

let save_checkpoint t =
  match t.checkpoint with
  | None -> ()
  | Some (file, tag, _) ->
    let blob =
      {
        ck_tag = tag;
        ck_machine = t.machine.Machine.name;
        ck_entries =
          Array.of_seq
            (Seq.map (fun (k, v) -> (k, v)) (Hashtbl.to_seq t.memo));
        ck_hits = t.hits;
        ck_fresh = t.fresh;
        ck_pruned = t.pruned;
        ck_prefiltered = t.prefiltered;
        ck_model_evals = t.model_evals;
        ck_model_seconds = t.model_seconds;
        ck_failed = t.failed;
        ck_failed_infeasible = t.failed_infeasible;
        ck_failed_malformed = t.failed_malformed;
        ck_failed_transient = t.failed_transient;
        ck_failed_timeout = t.failed_timeout;
        ck_failed_quarantined = t.failed_quarantined;
        ck_retries = t.retries;
        ck_trials_run = t.trials_run;
        ck_early_stops = t.early_stops;
        ck_vm_fallbacks = t.vm_fallbacks;
        ck_simulated_cycles = t.simulated_cycles;
        ck_eval_seconds = t.eval_seconds;
        ck_compile_seconds = t.compile_seconds;
        ck_exec_seconds = t.exec_seconds;
        ck_sim_seconds = t.sim_seconds;
        ck_memo_seconds = t.memo_seconds;
        ck_db_hits = t.db_hits;
        ck_warm_starts = t.warm_starts;
        ck_sampled = t.sampled;
        ck_batched_groups = t.batched_groups;
        ck_batched_candidates = t.batched_candidates;
        ck_repriced = t.repriced;
        ck_repriced_joint = t.repriced_joint;
        ck_confirmed = t.confirmed;
        ck_confirm_skipped = t.confirm_skipped;
        ck_rank =
          Array.of_seq (Seq.map Fun.id (Hashtbl.to_seq t.rank_stats));
        ck_best = best_cycles t;
      }
    in
    let payload = Marshal.to_string blob [] in
    (* Write-then-rename: a kill at any instant leaves either the old
       complete checkpoint or the new complete one, never a torn file. *)
    let tmp = file ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc checkpoint_magic;
    output_string oc (Digest.string payload);
    output_string oc payload;
    close_out oc;
    Sys.rename tmp file

let set_checkpoint t ?(every = 16) ~tag file =
  t.checkpoint <- Some (file, tag, max 1 every)

let checkpoint_now t = save_checkpoint t

let read_blob file =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
    let blob =
      try
        let len = in_channel_length ic in
        let magic_len = String.length checkpoint_magic in
        if len < magic_len + 16 then None
        else begin
          let magic = really_input_string ic magic_len in
          if magic <> checkpoint_magic then None
          else begin
            let digest = really_input_string ic 16 in
            let payload = really_input_string ic (len - magic_len - 16) in
            if Digest.string payload <> digest then None
            else
              match (Marshal.from_string payload 0 : checkpoint_blob) with
              | blob -> Some blob
              | exception _ -> None
          end
        end
      with _ -> None
    in
    close_in ic;
    blob

let load_checkpoint t ~tag file =
  if not (Sys.file_exists file) then None
  else
    match read_blob file with
    | None -> None (* corrupt or truncated: recover by starting fresh *)
    | Some ck ->
      if ck.ck_tag <> tag then
        raise
          (Checkpoint_mismatch
             (Printf.sprintf
                "checkpoint %s was written by a different run configuration \
                 (%s, expected %s)"
                file ck.ck_tag tag));
      if ck.ck_machine <> t.machine.Machine.name then
        raise
          (Checkpoint_mismatch
             (Printf.sprintf
                "checkpoint %s was written for machine %s, engine targets %s"
                file ck.ck_machine t.machine.Machine.name));
      Array.iter (fun (fp, e) -> Hashtbl.replace t.memo fp e) ck.ck_entries;
      t.hits <- ck.ck_hits;
      t.fresh <- ck.ck_fresh;
      t.pruned <- ck.ck_pruned;
      t.prefiltered <- ck.ck_prefiltered;
      t.model_evals <- ck.ck_model_evals;
      t.model_seconds <- ck.ck_model_seconds;
      t.failed <- ck.ck_failed;
      t.failed_infeasible <- ck.ck_failed_infeasible;
      t.failed_malformed <- ck.ck_failed_malformed;
      t.failed_transient <- ck.ck_failed_transient;
      t.failed_timeout <- ck.ck_failed_timeout;
      t.failed_quarantined <- ck.ck_failed_quarantined;
      t.retries <- ck.ck_retries;
      t.trials_run <- ck.ck_trials_run;
      t.early_stops <- ck.ck_early_stops;
      t.vm_fallbacks <- ck.ck_vm_fallbacks;
      t.simulated_cycles <- ck.ck_simulated_cycles;
      t.eval_seconds <- ck.ck_eval_seconds;
      t.compile_seconds <- ck.ck_compile_seconds;
      t.exec_seconds <- ck.ck_exec_seconds;
      t.sim_seconds <- ck.ck_sim_seconds;
      t.memo_seconds <- ck.ck_memo_seconds;
      t.db_hits <- ck.ck_db_hits;
      t.warm_starts <- ck.ck_warm_starts;
      t.sampled <- ck.ck_sampled;
      t.batched_groups <- ck.ck_batched_groups;
      t.batched_candidates <- ck.ck_batched_candidates;
      t.repriced <- ck.ck_repriced;
      t.repriced_joint <- ck.ck_repriced_joint;
      t.confirmed <- ck.ck_confirmed;
      t.confirm_skipped <- ck.ck_confirm_skipped;
      Hashtbl.reset t.rank_stats;
      Array.iter (fun (k, pq) -> Hashtbl.replace t.rank_stats k pq) ck.ck_rank;
      Some
        {
          resumed_entries = Array.length ck.ck_entries;
          resumed_fresh = ck.ck_fresh;
          resumed_best_cycles = ck.ck_best;
        }

let set_eval_limit t limit = t.eval_limit <- Some limit
let set_poll t f = t.poll <- f
let set_yield t f = t.yield_hook <- f
let set_deadline t d = t.deadline <- d
let deadline t = t.deadline

(* Cooperative interruption point: the poll hook first (a service
   cancel token may raise), then the engine-level wall deadline.  Runs
   after checkpoint persistence in [after_fresh], so whatever aborts
   the search leaves the latest periodic checkpoint behind — aborting
   is resumable by construction. *)
let interrupt t =
  (match t.poll with Some f -> f () | None -> ());
  match t.deadline with
  | Some d when Unix_time.now () > d -> raise Deadline_exceeded
  | _ -> ()

(* Batch boundary: the engine is quiescent (no batch mid-commit), so
   beyond polling it is safe to suspend the whole search here — the
   autotuning service's yield hook performs an effect to interleave
   sessions on one shared engine. *)
let batch_boundary t =
  interrupt t;
  match t.yield_hook with Some f -> f () | None -> ()

(* Periodic persistence and crash injection, in that order: a run killed
   by the evaluation limit behaves like a SIGKILL — only the last
   periodic checkpoint survives.  The interruption point sits between
   the two, so a cancel or deadline fires with the checkpoint already
   durable. *)
let after_fresh t =
  (match t.checkpoint with
  | Some (_, _, every) when t.fresh mod every = 0 -> save_checkpoint t
  | _ -> ());
  interrupt t;
  match t.eval_limit with
  | Some limit when t.fresh >= limit -> raise (Eval_limit_reached limit)
  | _ -> ()

(* --- commit and serve ------------------------------------------------- *)

let add_tele t (tl : tele) =
  if tl.t_retries <> 0 then t.retries <- t.retries + tl.t_retries;
  if tl.t_trials <> 0 then t.trials_run <- t.trials_run + tl.t_trials;
  if tl.t_fallbacks <> 0 then t.vm_fallbacks <- t.vm_fallbacks + tl.t_fallbacks;
  if tl.t_early_stops <> 0 then t.early_stops <- t.early_stops + tl.t_early_stops

let count_failure t = function
  | Infeasible_instantiation -> t.failed_infeasible <- t.failed_infeasible + 1
  | Malformed_program -> t.failed_malformed <- t.failed_malformed + 1
  | Transient -> t.failed_transient <- t.failed_transient + 1
  | Timeout -> t.failed_timeout <- t.failed_timeout + 1
  | Quarantined -> t.failed_quarantined <- t.failed_quarantined + 1

(* Commit one fresh result: memo table, telemetry, log — always on the
   coordinating domain, always in request order. *)
let commit t ?log (r : request) fp raw =
  match raw with
  | Measured (program, m, tl) ->
    add_tele t tl;
    Hashtbl.replace t.memo fp (Measured_entry (program, m));
    db_append t r fp m;
    t.fresh <- t.fresh + 1;
    if fp.fp_sampled then t.sampled <- t.sampled + 1;
    t.simulated_cycles <- t.simulated_cycles +. Executor.cycles m;
    t.compile_seconds <- t.compile_seconds +. m.Executor.timings.Executor.compile_s;
    t.exec_seconds <- t.exec_seconds +. m.Executor.timings.Executor.exec_s;
    t.sim_seconds <- t.sim_seconds +. m.Executor.timings.Executor.sim_s;
    (match log with
    | Some log ->
      Search_log.record log
        {
          Search_log.variant = r.variant.Variant.name;
          bindings = r.bindings;
          prefetch = r.prefetch;
          cycles = Executor.cycles m;
          mflops = m.Executor.mflops;
        }
    | None -> ());
    after_fresh t;
    Some { program; measurement = m; cached = false }
  | Infeasible ->
    Hashtbl.replace t.memo fp Pruned_entry;
    t.pruned <- t.pruned + 1;
    (match log with Some log -> Search_log.note_pruned log | None -> ());
    None
  | Failed (reason, tl) ->
    add_tele t tl;
    Hashtbl.replace t.memo fp (Failed_entry reason);
    t.failed <- t.failed + 1;
    count_failure t reason;
    (match log with Some log -> Search_log.note_failed log | None -> ());
    None

let serve_hit t ?log entry =
  t.hits <- t.hits + 1;
  (match log with Some log -> Search_log.note_hit log | None -> ());
  match entry with
  | Measured_entry (program, m) -> Some { program; measurement = m; cached = true }
  | Pruned_entry | Failed_entry _ -> None

let evaluate_canonical t ?log r =
  interrupt t;
  let fp = fingerprint t r in
  let t0 = Unix_time.now () in
  let entry = Hashtbl.find_opt t.memo fp in
  t.memo_seconds <- t.memo_seconds +. (Unix_time.now () -. t0);
  match entry with
  | Some entry -> serve_hit t ?log entry
  | None -> (
    match db_serve t ?log r fp with
    | Some ev -> Some ev
    | None ->
      let t0 = Unix_time.now () in
      let raw = simulate_miss t r fp in
      t.eval_seconds <- t.eval_seconds +. (Unix_time.now () -. t0);
      commit t ?log r fp raw)

let evaluate t ?log r = evaluate_canonical t ?log (canonical r)

let explain t r =
  match Hashtbl.find_opt t.memo (fingerprint t (canonical r)) with
  | Some (Measured_entry _) -> `Measured
  | Some Pruned_entry -> `Pruned
  | Some (Failed_entry reason) -> `Failed reason
  | None -> `Unknown

(* Is the engine fighting a noisy substrate?  When it is, searches run a
   confirmation pass over their leading candidates before declaring a
   winner (the standard defence against the winner's curse: the minimum
   over many noisy values is biased low). *)
let confirming t = Faults.noisy t.faults && t.protocol.trials > 1

(* Confirmation trials draw from a reserved band of trial indices, so
   they are fresh randomness — independent of the draws that produced
   the memoized search measurement — yet still a pure function of the
   candidate. *)
let confirm_trial_base = 1_000_000

let confirm t r ~trials =
  let r = canonical r in
  if not (confirming t) then
    Option.map (fun ev -> ev.measurement) (evaluate t r)
  else begin
    let fp = fingerprint t r in
    let trials = max 1 trials in
    (* min_trials = trials disables the adaptive early stop: a
       confirmation wants the full sample. *)
    let protocol = { t.protocol with trials; min_trials = trials } in
    let task =
      task_of t r fp ~protocol ~trial_base:confirm_trial_base
        ~dt:(candidate_dt ~fill:false t r fp)
    in
    let t0 = Unix_time.now () in
    let raw = task () in
    t.eval_seconds <- t.eval_seconds +. (Unix_time.now () -. t0);
    match raw with
    | Measured (_, m, tl) ->
      add_tele t tl;
      t.fresh <- t.fresh + 1;
      t.simulated_cycles <- t.simulated_cycles +. Executor.cycles m;
      t.compile_seconds <-
        t.compile_seconds +. m.Executor.timings.Executor.compile_s;
      t.exec_seconds <- t.exec_seconds +. m.Executor.timings.Executor.exec_s;
      t.sim_seconds <- t.sim_seconds +. m.Executor.timings.Executor.sim_s;
      after_fresh t;
      Some m
    | Infeasible -> None
    | Failed (reason, tl) ->
      add_tele t tl;
      t.failed <- t.failed + 1;
      count_failure t reason;
      None
  end

(* Strided parallel map: worker [w] takes indices w, w+jobs, w+2*jobs...
   so neighbouring (similarly-sized) candidates spread across domains.
   Batches too small to amortize the domain spawns run serially — the
   result is identical either way (commit order is fixed by the caller),
   only the wall time differs. *)
let parallel_map jobs f arr =
  let n = Array.length arr in
  let out = Array.make n None in
  let jobs = if n < 2 * jobs then 1 else jobs in
  if jobs <= 1 then Array.iteri (fun i x -> out.(i) <- Some (f x)) arr
  else begin
    let domains =
      List.init jobs (fun w ->
          Domain.spawn (fun () ->
              let acc = ref [] in
              let i = ref w in
              while !i < n do
                acc := (!i, f arr.(!i)) :: !acc;
                i := !i + jobs
              done;
              !acc))
    in
    List.iter
      (fun d -> List.iter (fun (i, r) -> out.(i) <- Some r) (Domain.join d))
      domains
  end;
  Array.map Option.get out

let note_prefiltered t ?log () =
  t.prefiltered <- t.prefiltered + 1;
  match log with Some log -> Search_log.note_prefiltered log | None -> ()

let note_repriced t ?log () =
  t.repriced <- t.repriced + 1;
  match log with Some log -> Search_log.note_repriced log | None -> ()

let note_confirmed t ?log () =
  t.confirmed <- t.confirmed + 1;
  match log with Some log -> Search_log.note_confirmed log | None -> ()

let note_confirm_skipped t ?log () =
  t.confirm_skipped <- t.confirm_skipped + 1;
  match log with Some log -> Search_log.note_confirm_skipped log | None -> ()

(* Does the engine collapse sweep groups into batched multi-plan
   replays?  Only on the fast path with the per-candidate measurement
   protocol inert: an active fault plan or repeated trials need
   per-candidate draws, which the shared group walk bypasses. *)
let grouping_capable t =
  t.batch_replay
  && t.path = Executor.Fast
  && (not t.faults.Faults.active)
  && t.protocol.trials <= 1

let tele0 = { t_retries = 0; t_trials = 0; t_fallbacks = 0; t_early_stops = 0 }

(* One batched sweep group: [members] share one demand-trace key.  All
   plans are measured in a single multi-plan walk over the captured
   trace ([Demand_trace.measure_plans]); in incremental mode,
   distance-only siblings are re-priced from the base plan's slack
   samples instead ([Demand_trace.reprice_group]), and a re-priced
   member comes back as [None].  The returned thunk is
   engine-state-free, so it can run on any worker domain; if the group
   walk dies, every member degrades to its own hardened task. *)
let group_unit t members =
  let r0, fp0, _ = members.(0) in
  match candidate_dt t r0 fp0 with
  | None ->
    (* trace capture failed: every member takes its own direct path *)
    let tasks = Array.map (fun (r, fp, _) -> task_of t r fp ~dt:None) members in
    (members, ref 0, fun () -> Array.map (fun task -> Some (task ())) tasks)
  | Some dt ->
    t.batched_groups <- t.batched_groups + 1;
    t.batched_candidates <- t.batched_candidates + Array.length members;
    let machine = t.machine in
    let kernel = r0.variant.Variant.kernel in
    let n = r0.n in
    let protocol = t.protocol in
    let sampling = engine_sampling t in
    let use_incremental = t.incremental && t.objective = Objective.Cycles in
    let plans = Array.map (fun ((r : request), _, _) -> r.prefetch) members in
    let fallbacks =
      Array.map (fun (r, fp, _) -> task_of t r fp ~dt:(Some dt)) members
    in
    (* Written by the thunk on its worker domain, read by the
       coordinator only after [Domain.join] — no race. *)
    let joint = ref 0 in
    let thunk () =
      let started = Unix_time.now () in
      (* Replicate [harden]'s passthrough checks — grouping only engages
         when the protocol is inert, so this is the whole protocol:
         deterministic cycle cap, wall cap, typed malformed failures. *)
      let finishing i m =
        let (r : request), _, _ = members.(i) in
        if Executor.cycles m > protocol.cycle_cap then Failed (Timeout, tele0)
        else if
          protocol.wall_cap_s < infinity
          && Unix_time.now () -. started > protocol.wall_cap_s
        then Failed (Timeout, tele0)
        else
          let line = Machine.line_elems machine 0 in
          match
            List.fold_left
              (fun p (array, distance) ->
                Transform.Prefetch_insert.apply p ~array ~distance
                  ~line_elems:line)
              (Demand_trace.program dt) r.prefetch
          with
          | exception Invalid_argument _ -> Failed (Malformed_program, tele0)
          | program -> Measured (program, m, tele0)
      in
      match
        if use_incremental then
          match
            Demand_trace.reprice_group ?sampling machine kernel ~n dt ~plans
          with
          | Some rp ->
            if rp.Demand_trace.rp_joint then
              joint := rp.Demand_trace.rp_estimated;
            Array.mapi
              (fun i m -> Option.map (finishing i) m)
              rp.Demand_trace.rp_measurements
          | None ->
            Array.mapi
              (fun i m -> Some (finishing i m))
              (Demand_trace.measure_plans ?sampling machine kernel ~n dt ~plans)
        else
          Array.mapi
            (fun i m -> Some (finishing i m))
            (Demand_trace.measure_plans ?sampling machine kernel ~n dt ~plans)
      with
      | out -> out
      | exception _ ->
        (* the group walk died: measure every member individually under
           the full per-candidate protection *)
        joint := 0;
        Array.map (fun task -> Some (task ())) fallbacks
    in
    (members, joint, thunk)

let evaluate_batch t ?log reqs =
  batch_boundary t;
  let reqs = List.map canonical reqs in
  if t.jobs <= 1 && t.prefilter = None && not (grouping_capable t) then
    (* the historical serial path, bit-for-bit *)
    List.map (evaluate_canonical t ?log) reqs
  else begin
    (* Plan: classify each request as a memo hit, a duplicate of an
       earlier slot, or a scheduled miss.  Each miss becomes a pure
       task built by [task_of] on the coordinator.  With a pre-filter,
       this plan path runs at any [jobs] (including 1), so the skipped
       set — and hence every downstream number — is identical at any
       parallelism. *)
    let slots = Hashtbl.create 16 in
    let t0 = Unix_time.now () in
    let plan =
      List.map
        (fun r ->
          let fp = fingerprint t r in
          if Hashtbl.mem t.memo fp then `Hit fp
          else
            match Hashtbl.find_opt slots fp with
            | Some _ -> `Dup fp
            | None ->
              let slot = Hashtbl.length slots in
              Hashtbl.add slots fp slot;
              `Run (r, fp, slot))
        reqs
    in
    t.memo_seconds <- t.memo_seconds +. (Unix_time.now () -. t0);
    let run_entries =
      List.filter_map
        (function `Run (r, fp, slot) -> Some (r, fp, slot) | `Hit _ | `Dup _ -> None)
        plan
    in
    (* Stage 1: analytically rank the feasible fresh candidates and keep
       only the top-k for simulation.  Infeasible candidates bypass the
       ranking — their "evaluation" is pure constraint arithmetic that
       must still record a pruned entry.  Skipped candidates are NOT
       memoized: a later request for the same point simulates it. *)
    let skip = Hashtbl.create 16 in
    (match t.prefilter with
    | None -> ()
    | Some k ->
      let rankable =
        List.filter
          (fun ((r : request), _, _) ->
            (not r.check) || Variant.feasible r.variant ~n:r.n r.bindings)
          run_entries
      in
      if List.length rankable > k then begin
        let scored =
          List.map (fun (r, fp, slot) -> (model_score t r, slot, fp)) rankable
        in
        let sorted =
          List.sort
            (fun (a, sa, _) (b, sb, _) ->
              match compare a b with 0 -> compare sa sb | c -> c)
            scored
        in
        List.iteri
          (fun i (_, _, fp) -> if i >= k then Hashtbl.replace skip fp ())
          sorted
      end);
    let executed =
      List.filter (fun (_, fp, _) -> not (Hashtbl.mem skip fp)) run_entries
    in
    (* The database is consulted only AFTER the pre-filter chose its
       skip set: served candidates are the ones the plan would have
       simulated, so the skip set — and with it the whole search
       trajectory — is identical to the run that populated the
       database, and a fully-populated rerun replays with zero fresh
       simulations.  (A skipped candidate stays skipped even when it is
       on disk, for the same reason.)  Lookups run on the coordinator. *)
    let served = Hashtbl.create 16 in
    List.iter
      (fun (r, fp, _) ->
        match db_serve t ?log r fp with
        | Some ev -> Hashtbl.replace served fp ev
        | None -> ())
      executed;
    let executed =
      List.filter (fun (_, fp, _) -> not (Hashtbl.mem served fp)) executed
    in
    (* Units: each unit measures a disjoint subset of [executed] and
       returns one [raw option] per member ([None] = re-priced away,
       never simulated).  Without grouping every unit is one hardened
       task; with it, prefetch candidates sharing a demand trace form
       one group unit measured by a single multi-plan walk, placed at
       the first member's position. *)
    let singleton ((r, fp, _) as e) =
      let task = task_of t r fp ~dt:(candidate_dt ~fill:false t r fp) in
      ([| e |], ref 0, fun () -> [| Some (task ()) |])
    in
    let units =
      if not (grouping_capable t) then List.map singleton executed
      else begin
        let buckets = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun (((r : request), fp, _) as e) ->
            let groupable =
              r.prefetch <> []
              && ((not r.check) || Variant.feasible r.variant ~n:r.n r.bindings)
            in
            if groupable then begin
              let key = trace_key fp in
              match Hashtbl.find_opt buckets key with
              | Some q -> Queue.add e q
              | None ->
                let q = Queue.create () in
                Queue.add e q;
                Hashtbl.add buckets key q;
                order := `Group key :: !order
            end
            else order := `Single e :: !order)
          executed;
        List.map
          (function
            | `Single e -> singleton e
            | `Group key ->
              let members =
                Array.of_seq (Queue.to_seq (Hashtbl.find buckets key))
              in
              if Array.length members = 1 then singleton members.(0)
              else group_unit t members)
          (List.rev !order)
      end
    in
    let units = Array.of_list units in
    let t0 = Unix_time.now () in
    let results = parallel_map t.jobs (fun (_, _, thunk) -> thunk ()) units in
    t.eval_seconds <- t.eval_seconds +. (Unix_time.now () -. t0);
    Array.iter
      (fun (_, joint, _) -> t.repriced_joint <- t.repriced_joint + !joint)
      units;
    let raw_of_slot = Hashtbl.create 16 in
    let repriced_slots = Hashtbl.create 4 in
    Array.iteri
      (fun u (members, _, _) ->
        Array.iteri
          (fun i (_, _, slot) ->
            match results.(u).(i) with
            | Some raw -> Hashtbl.replace raw_of_slot slot raw
            | None -> Hashtbl.replace repriced_slots slot ())
          members)
      units;
    (* Commit in request order: memo, telemetry and log end up identical
       to a serial evaluation of the same list (a duplicate always
       follows the slot that resolves it, so it lands as a hit — or as
       another pre-filter skip / re-price when its slot was skipped or
       re-priced). *)
    List.map
      (function
        | `Hit fp -> serve_hit t ?log (Hashtbl.find t.memo fp)
        | `Dup fp -> (
          match Hashtbl.find_opt t.memo fp with
          | Some entry -> serve_hit t ?log entry
          | None ->
            (match Hashtbl.find_opt slots fp with
            | Some slot when Hashtbl.mem repriced_slots slot ->
              note_repriced t ?log ()
            | _ -> note_prefiltered t ?log ());
            None)
        | `Run (r, fp, slot) ->
          if Hashtbl.mem skip fp then begin
            note_prefiltered t ?log ();
            None
          end
          else (
            match Hashtbl.find_opt served fp with
            | Some ev -> Some ev
            | None ->
              if Hashtbl.mem repriced_slots slot then begin
                note_repriced t ?log ();
                None
              end
              else commit t ?log r fp (Hashtbl.find raw_of_slot slot)))
      plan
  end

let program_fingerprint kernel ~n ~mode shape =
  {
    fp_kernel = kernel.Kernels.Kernel.name;
    fp_variant = "#program";
    fp_shape = shape;
    fp_n = n;
    fp_mode = mode;
    fp_bindings = [];
    fp_prefetch = [];
    fp_check = false;
    fp_sampled = false;
  }

let measure_program t ?key kernel ~n ~mode program =
  let shape =
    match key with
    | Some k -> Some ("key:" ^ k)
    | None -> (
      (* Programs are pure data, so a structural digest identifies them;
         if that ever stops holding, fall back to unmemoized execution
         rather than mis-sharing. *)
      match Marshal.to_string program [] with
      | s -> Some ("digest:" ^ Digest.to_hex (Digest.string s))
      | exception _ -> None)
  in
  let run () =
    let t0 = Unix_time.now () in
    let m = Executor.measure ~path:t.path t.machine kernel ~n ~mode program in
    t.eval_seconds <- t.eval_seconds +. (Unix_time.now () -. t0);
    t.fresh <- t.fresh + 1;
    t.simulated_cycles <- t.simulated_cycles +. Executor.cycles m;
    t.compile_seconds <- t.compile_seconds +. m.Executor.timings.Executor.compile_s;
    t.exec_seconds <- t.exec_seconds +. m.Executor.timings.Executor.exec_s;
    t.sim_seconds <- t.sim_seconds +. m.Executor.timings.Executor.sim_s;
    after_fresh t;
    m
  in
  match shape with
  | None -> run ()
  | Some shape -> (
    let fp = program_fingerprint kernel ~n ~mode shape in
    match Hashtbl.find_opt t.memo fp with
    | Some (Measured_entry (_, m)) ->
      t.hits <- t.hits + 1;
      m
    | Some (Pruned_entry | Failed_entry _) | None ->
      let m = run () in
      Hashtbl.replace t.memo fp (Measured_entry (program, m));
      m)
