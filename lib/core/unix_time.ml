(* Wall-clock time.  The evaluation engine runs candidate batches on a
   pool of domains, so CPU time (the old implementation) no longer
   reflects search latency: a parallel search burns the same CPU seconds
   but finishes earlier.  Search-cost accounting therefore uses wall
   time, which is what the paper's "machine time to evaluate candidates"
   means once evaluations overlap. *)
let now () = Unix.gettimeofday ()

let cpu () = Sys.time ()
