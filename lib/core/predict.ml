module Reuse = Analysis.Reuse

type prepared = {
  variant : Variant.t;
  n : int;
  ranges : (string * int) list;
  groups : Reuse.group list;
  flops : int;
  copy_temps : (string * string) list;
}

(* Full trip count of every original loop at problem size [n].  Bounds
   referencing outer loop variables (none of the bundled kernels, but
   legal IR) are approximated at the outer loop's midpoint. *)
let loop_ranges (kernel : Kernels.Kernel.t) ~n =
  let size_param = kernel.Kernels.Kernel.size_param in
  let rec go env acc stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Ir.Stmt.Loop l ->
          let lookup v =
            if v = size_param then n
            else match List.assoc_opt v env with Some x -> x | None -> n
          in
          let lo = Ir.Bexp.eval lookup l.Ir.Stmt.lo
          and hi = Ir.Bexp.eval lookup l.Ir.Stmt.hi in
          let trip = max 1 (((hi - lo) / max 1 l.Ir.Stmt.step) + 1) in
          let acc =
            if List.mem_assoc l.Ir.Stmt.var acc then acc
            else (l.Ir.Stmt.var, trip) :: acc
          in
          go ((l.Ir.Stmt.var, (lo + hi) / 2) :: env) acc l.Ir.Stmt.body
        | _ -> acc)
      acc stmts
  in
  List.rev
    (go [] [] kernel.Kernels.Kernel.program.Ir.Program.body)

let prepare (variant : Variant.t) ~n =
  let kernel = variant.Variant.kernel in
  {
    variant;
    n;
    ranges = loop_ranges kernel ~n;
    groups =
      Reuse.groups_of_body kernel.Kernels.Kernel.program.Ir.Program.body;
    flops = kernel.Kernels.Kernel.flops n;
    copy_temps =
      List.map
        (fun (c : Variant.copy_spec) -> (c.Variant.temp, c.Variant.array))
        variant.Variant.copies;
  }

let range p v = match List.assoc_opt v p.ranges with Some r -> r | None -> 1

(* The nest a variant point instantiates, reconstructed from the recipe
   alone (no program is built): tile-controlling loops outermost in the
   variant's control order, then the element loops in element order,
   with the unroll factors annotated on their loops. *)
let nest_of p ~bindings ~prefetch =
  let value param =
    match List.assoc_opt param bindings with Some v -> v | None -> 1
  in
  let tile_of v =
    Option.map
      (fun param -> max 1 (min (range p v) (value param)))
      (List.assoc_opt v p.variant.Variant.tiles)
  in
  let control_loops =
    List.map
      (fun (v, _) ->
        let r = range p v in
        let t = match tile_of v with Some t -> t | None -> r in
        { Model.var = v; trip = (r + t - 1) / t; unroll = 1 })
      p.variant.Variant.tiles
  in
  let element_loops =
    List.map
      (fun v ->
        let trip = match tile_of v with Some t -> t | None -> range p v in
        let unroll =
          match List.assoc_opt v p.variant.Variant.unrolls with
          | Some param -> max 1 (min trip (value param))
          | None -> 1
        in
        { Model.var = v; trip; unroll })
      p.variant.Variant.element_order
  in
  let reuse_var =
    match List.rev p.variant.Variant.element_order with
    | v :: _ -> Some v
    | [] -> None
  in
  let prefetch =
    (* Prefetches of copy temporaries act on the copied array's stream. *)
    List.map
      (fun (array, d) ->
        match List.assoc_opt array p.copy_temps with
        | Some original -> (original, d)
        | None -> (array, d))
      prefetch
  in
  {
    Model.loops = control_loops @ element_loops;
    groups = p.groups;
    flops = p.flops;
    reuse_var;
    prefetch;
    copied =
      List.map (fun (c : Variant.copy_spec) -> c.Variant.array)
        p.variant.Variant.copies;
  }

let predict machine p ~bindings ~prefetch =
  Model.predict machine (nest_of p ~bindings ~prefetch)

let score ?(objective = Objective.Cycles) machine p ~bindings ~prefetch =
  Objective.predicted objective machine (predict machine p ~bindings ~prefetch)

let score_point ?objective machine variant ~n ~bindings ~prefetch =
  score ?objective machine (prepare variant ~n) ~bindings ~prefetch
