(** Optimization parameters attached to code variants: unroll factors and
    tile sizes, named as in the paper (e.g. [ui], [tk]). *)

type kind = Unroll | Tile

type t = {
  name : string;
  kind : kind;
  loop : string;  (** the loop variable the parameter controls *)
}

val unroll : string -> t
val tile : string -> t

(** Legal value range of the parameter at problem size [n] (inclusive):
    unroll factors lie in [1,64], tile sizes in [1,n] — the same ranges
    {!Variant.feasible} enforces. *)
val range : t -> n:int -> int * int

(** Boundary values worth special attention when sampling: 1, small
    factors, and the trip-count edge ([n-1], [n]); for unroll factors
    also the largest legal factor.  All values lie inside {!range};
    sorted, without duplicates. *)
val boundary_values : t -> n:int -> int list

val pp : Format.formatter -> t -> unit
