(** Phase 1: derive parameterized code variants (the paper's Figure 3).

    Walking the memory hierarchy from registers outward, the algorithm
    selects for each level the loop carrying the most unexploited
    temporal reuse (ties create multiple variants), decides which loops
    to unroll-and-jam (register level) or tile (cache levels), which
    retained arrays to copy into contiguous temporaries, and emits
    capacity/TLB/conflict constraints on the parameters.

    Decisions mirror the paper:
    - the register-level loop (most temporal reuse, write references
      weighing double) becomes innermost; all other loops are
      unrolled-and-jammed; the retained references' register footprint is
      bounded by the available register file;
    - each cache level's reuse loop moves outermost within the remaining
      element band; the loops its retained references' footprint depends
      on are tiled; the footprint is bounded by the full capacity of a
      direct-mapped cache and (n-1)/n of an n-way one, and the page
      footprint by the TLB size;
    - copying is considered only for references {e invariant} in the
      level's reuse loop (reuse grows with the trip count, so the copy
      cost amortizes — true for Matrix Multiply's tiles, false for
      Jacobi's stencil group, which the paper also declines to copy);
      both the copy and no-copy variants are emitted;
    - at the outermost cache level a no-new-tiling variant is also
      emitted, whose capacity constraint involves the problem size — the
      paper's "small arrays" variant v1. *)

val variants : Machine.t -> Kernels.Kernel.t -> Variant.t list

(** Rescale a recorded parameter point — possibly from another problem
    size or machine — onto [variant] at size [n] through its phase-1
    constraints: values are clamped into legal ranges, then tile sizes
    (and, failing that, unroll factors too) are scaled down by
    descending sixteenths until the point is {!Variant.feasible}.
    [None] when the recorded point does not bind every parameter of the
    variant or no feasible rescaling exists.  Used by the performance
    database's transfer warm-start. *)
val rescale_point :
  Variant.t -> n:int -> (string * int) list -> (string * int) list option
