type mode = Full | Budget of int

let default_budget = Budget 4_000_000

type path = Fast | Closures

type timings = { compile_s : float; exec_s : float; sim_s : float }

let no_timings = { compile_s = 0.0; exec_s = 0.0; sim_s = 0.0 }

type measurement = {
  cost : Memsim.Cost.t;
  counters : Memsim.Counters.t;
  stats : Ir.Exec.stats;
  scale : float;
  mflops : float;
  timings : timings;
}

(* Per-domain buffer pool: repeated evaluations on one domain (the
   common case — each engine worker streams candidates) reuse the same
   event and mark buffers instead of reallocating per candidate. *)
let buffers : (Ir.Vm.Buf.t * Ir.Vm.Buf.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      (Ir.Vm.Buf.create ~capacity:(1 lsl 16) (), Ir.Vm.Buf.create ~capacity:4096 ()))

(* A separate pooled buffer for synthesized streams, so synthesis can
   run while the captured demand buffers stay borrowed elsewhere. *)
let synth_buffer : Ir.Vm.Buf.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Ir.Vm.Buf.create ~capacity:(1 lsl 16) ())

let synth_scratch () = Domain.DLS.get synth_buffer

(* Per-domain hierarchy pool: a simulated hierarchy of the paper's
   primary machine is ~1MB of tag/stamp/fill arrays, and a search takes
   hundreds of measurements — creating one per candidate was most of
   the evaluator's allocation churn.  [reset] restores the exact
   post-[create] state (the differential suites would catch anything
   less), and [finish] snapshots counters into the measurement, so
   nothing escapes a measurement that the next reset could corrupt.
   Keyed by physical machine identity; a different machine drops the
   pool. *)
type hierarchy_pool = {
  mutable pool_machine : Machine.t option;
  mutable pool_hs : Memsim.Hierarchy.t array;
}

let hierarchy_pool : hierarchy_pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { pool_machine = None; pool_hs = [||] })

let pooled_hierarchies machine k =
  let p = Domain.DLS.get hierarchy_pool in
  (match p.pool_machine with
  | Some m when m == machine -> ()
  | _ ->
    p.pool_hs <- [||];
    p.pool_machine <- Some machine);
  let have = Array.length p.pool_hs in
  if have < k then
    p.pool_hs <-
      Array.append p.pool_hs
        (Array.init (k - have) (fun _ -> Memsim.Hierarchy.create machine));
  let out = Array.sub p.pool_hs 0 k in
  Array.iter Memsim.Hierarchy.reset out;
  out

let pooled_hierarchy machine = (pooled_hierarchies machine 1).(0)

let finish machine (kernel : Kernels.Kernel.t) ~n ~counters ~stats ~timings =
  let cost = Memsim.Cost.evaluate machine counters stats in
  let total_flops = kernel.Kernels.Kernel.flops n in
  let scale =
    if stats.Ir.Exec.completed then 1.0
    else if stats.Ir.Exec.flops > 0 then
      float_of_int total_flops /. float_of_int stats.Ir.Exec.flops
    else 1.0
  in
  let cost = if scale = 1.0 then cost else Memsim.Cost.scale scale cost in
  {
    cost;
    counters = Memsim.Counters.copy counters;
    stats;
    scale;
    mflops = cost.Memsim.Cost.mflops;
    timings;
  }

let measure_closures machine (kernel : Kernels.Kernel.t) ~n ~mode program =
  let t0 = Unix_time.now () in
  let hierarchy = Memsim.Hierarchy.create machine in
  let params = [ (kernel.Kernels.Kernel.size_param, n) ] in
  let register_budget = Machine.available_registers machine in
  let sink = Memsim.Hierarchy.sink hierarchy in
  let flop_budget = match mode with Full -> None | Budget b -> Some b in
  (* In budget (sampled) mode, run a short warm-up pass first and discard
     its counters, so compulsory misses of the sampled prefix do not
     masquerade as steady-state behaviour.  Addresses are deterministic
     across runs, so the cache contents carry over. *)
  (match mode with
  | Full -> ()
  | Budget b ->
    let total = kernel.Kernels.Kernel.flops n in
    if b < total then begin
      ignore
        (Ir.Exec.run ~sink ~flop_budget:(max 1 (b / 2)) ~register_budget ~params
           program);
      Memsim.Hierarchy.reset_counters hierarchy
    end);
  let result =
    Ir.Exec.run ~sink ?flop_budget ~register_budget ~params program
  in
  let counters = Memsim.Hierarchy.counters hierarchy in
  let timings = { no_timings with exec_s = Unix_time.now () -. t0 } in
  finish machine kernel ~n ~counters ~stats:result.Ir.Exec.stats ~timings

(* The fast path: compile the program once to bytecode, run it once
   (recording the warm-up cut position when sampling), then feed the
   packed event buffer to the hierarchy in one batched replay.  The
   closure path runs the program twice in budget mode; one VM run plus
   a prefix replay is equivalent because addresses are deterministic —
   the [vm] differential suite checks counters stay bit-identical. *)
(* Shrink the flop budget for a sampled measurement: the flop-scale
   extrapolation in [finish] recovers full-run magnitudes from the
   shorter trace, so sampling shortens both trace generation and
   replay. *)
let effective_mode sampling mode =
  match (sampling, mode) with
  | Some sp, Budget b when sp.Memsim.Sampling.shrink > 1 ->
    Budget (max 1 (b / sp.Memsim.Sampling.shrink))
  | _ -> mode

(* Measured replay after the warm-up prefix was replayed state-only.

   Exact: re-replay the full stream [0 .. n_events) on the warmed
   state, bit-identical to the historical semantics.

   Sampled: measure only the post-cut suffix — the deepest, warmest
   stretch of the trace — through the sampler's windows, then
   extrapolate the counters by the sampler's window factor times the
   suffix fraction.  Skipping the prefix re-measurement halves the
   replay work and estimates steady state from the region least
   contaminated by cold misses; [Demand_trace.measure_plans] replicates
   the same suffix walk and factor arithmetic bit-for-bit. *)
let suffix_factor ~warm ~fed =
  if fed > 0 then float_of_int (warm + fed) /. float_of_int fed else 1.0

(* State-only replay of the warm-up prefix [0, cut).  Sampled
   measurements cap it at the sampler's trailing period
   ({!Memsim.Sampling.prefix_cap}): the skipped head of the prefix is
   state the windowed estimator never relies on, and on large budgets
   it dominates the replay cost.  Exact replay always warms in full. *)
let warm_prefix ?sampling hierarchy events ~cut =
  if cut >= 0 then begin
    let start =
      match sampling with
      | None -> 0
      | Some sp -> max 0 (cut - Memsim.Sampling.prefix_cap sp)
    in
    Memsim.Hierarchy.warm_packed hierarchy events ~pos:start
      ~len:(cut - start);
    Memsim.Hierarchy.reset_counters hierarchy
  end

let replay_measured ?sampling hierarchy events ~cut ~n_events =
  match sampling with
  | None ->
    Memsim.Hierarchy.replay_packed hierarchy events ~pos:0 ~len:n_events
  | Some sp ->
    let start = if cut >= 0 then cut else 0 in
    let sampler = Memsim.Sampling.sampler sp in
    Memsim.Hierarchy.replay_sampled hierarchy sampler events ~pos:start
      ~len:(n_events - start);
    Memsim.Counters.extrapolate
      (Memsim.Hierarchy.counters hierarchy)
      (Memsim.Sampling.factor sampler
      *. suffix_factor ~warm:start ~fed:(n_events - start))

let measure_fast ?sampling machine (kernel : Kernels.Kernel.t) ~n ~mode program
    =
  let t0 = Unix_time.now () in
  let params = [ (kernel.Kernels.Kernel.size_param, n) ] in
  let register_budget = Machine.available_registers machine in
  let vm = Ir.Vm.compile ~register_budget ~params program in
  let t1 = Unix_time.now () in
  let events, marks = Domain.DLS.get buffers in
  let flop_budget, warm_budget =
    match effective_mode sampling mode with
    | Full -> (None, None)
    | Budget b ->
      ( Some b,
        if b < kernel.Kernels.Kernel.flops n then Some (max 1 (b / 2)) else None
      )
  in
  let r = Ir.Vm.run ?flop_budget ?warm_budget ~events ~marks vm in
  let t2 = Unix_time.now () in
  let hierarchy = pooled_hierarchy machine in
  warm_prefix ?sampling hierarchy r.Ir.Vm.events ~cut:r.Ir.Vm.cut_events;
  replay_measured ?sampling hierarchy r.Ir.Vm.events ~cut:r.Ir.Vm.cut_events
    ~n_events:r.Ir.Vm.n_events;
  let t3 = Unix_time.now () in
  let timings =
    { compile_s = t1 -. t0; exec_s = t2 -. t1; sim_s = t3 -. t2 }
  in
  finish machine kernel ~n
    ~counters:(Memsim.Hierarchy.counters hierarchy)
    ~stats:r.Ir.Vm.stats ~timings

let measure ?(path = Fast) ?sampling machine kernel ~n ~mode program =
  match path with
  | Closures ->
    (* The reference interpreter stays exact: sampling is a fast-path
       optimization, and the differential suites compare against this
       path. *)
    measure_closures machine kernel ~n ~mode program
  | Fast -> measure_fast ?sampling machine kernel ~n ~mode program

let measure_from_trace ?(synth_seconds = 0.0) ?sampling machine kernel ~n
    ~stats ~events ~n_events ~cut =
  let t0 = Unix_time.now () in
  let hierarchy = pooled_hierarchy machine in
  warm_prefix ?sampling hierarchy events ~cut;
  replay_measured ?sampling hierarchy events ~cut ~n_events;
  let timings =
    {
      compile_s = 0.0;
      exec_s = synth_seconds;
      sim_s = Unix_time.now () -. t0;
    }
  in
  finish machine kernel ~n
    ~counters:(Memsim.Hierarchy.counters hierarchy)
    ~stats ~timings

let cycles m = m.cost.Memsim.Cost.total_cycles

(* Multiplicative timing perturbation: the same work observed to take
   [factor] times as long.  Unlike [Memsim.Cost.scale] (extrapolation of
   a sampled run to the full problem, which keeps MFLOPS fixed), this
   keeps the flop count and divides the throughput. *)
let perturb m factor =
  if factor = 1.0 then m
  else begin
    let c = m.cost in
    let cost =
      {
        c with
        Memsim.Cost.mem_issue_cycles = c.Memsim.Cost.mem_issue_cycles *. factor;
        fp_issue_cycles = c.Memsim.Cost.fp_issue_cycles *. factor;
        other_issue_cycles = c.Memsim.Cost.other_issue_cycles *. factor;
        stall_cycles = c.Memsim.Cost.stall_cycles *. factor;
        total_cycles = c.Memsim.Cost.total_cycles *. factor;
        seconds = c.Memsim.Cost.seconds *. factor;
        mflops =
          (if factor > 0.0 then c.Memsim.Cost.mflops /. factor
           else c.Memsim.Cost.mflops);
      }
    in
    { m with cost; mflops = cost.Memsim.Cost.mflops }
  end
