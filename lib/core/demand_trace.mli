(** Demand-trace capture and prefetch-event synthesis.

    The prefetch-distance search (phase 2, §3.2) evaluates many
    candidates per variant point whose demand access streams are all
    identical — only the injected prefetch events differ.  {!capture}
    runs the prefetch-free program once through the bytecode VM with
    iteration marks; {!synthesize} then reconstructs the exact packed
    event stream of any prefetch plan from the recorded demand events
    and marks, so each candidate costs one trace synthesis plus one
    {!Memsim.Hierarchy.replay_packed} instead of a full
    re-interpretation.

    The synthesized stream is bit-identical to executing the
    {!Transform.Prefetch_insert.apply}-transformed program (the [vm]
    test suite enforces this), including the warm-up cut position of
    budgeted measurement.  Execution statistics are unaffected by
    prefetch statements, so {!stats} holds for every plan. *)

type t

(** [capture machine kernel ~n ~mode program] records the demand trace
    of [program] (which must be prefetch-free: the variant instantiated
    at its bindings) under the given measurement mode's flop budget and
    warm-up rules.
    @raise Invalid_argument if the program is malformed. *)
val capture :
  Machine.t -> Kernels.Kernel.t -> n:int -> mode:Executor.mode ->
  Ir.Program.t -> t

(** The captured demand program. *)
val program : t -> Ir.Program.t

(** Execution statistics of the run (valid for any prefetch plan). *)
val stats : t -> Ir.Exec.stats

(** Approximate footprint in words, for cache budgeting. *)
val words : t -> int

(** [synthesize t ~plan ~into] fills [into] with the packed event
    stream of the program transformed by [plan] — a canonical
    (sorted-ascending) [(array, distance)] list as in
    [Engine.request.prefetch] — and returns the warm-up cut position
    ([-1] when the captured mode needs none). *)
val synthesize : t -> plan:(string * int) list -> into:Ir.Vm.Buf.t -> int
