(** Demand-trace capture and prefetch-event synthesis.

    The prefetch-distance search (phase 2, §3.2) evaluates many
    candidates per variant point whose demand access streams are all
    identical — only the injected prefetch events differ.  {!capture}
    runs the prefetch-free program once through the bytecode VM with
    iteration marks; {!synthesize} then reconstructs the exact packed
    event stream of any prefetch plan from the recorded demand events
    and marks, so each candidate costs one trace synthesis plus one
    {!Memsim.Hierarchy.replay_packed} instead of a full
    re-interpretation.

    The synthesized stream is bit-identical to executing the
    {!Transform.Prefetch_insert.apply}-transformed program (the [vm]
    test suite enforces this), including the warm-up cut position of
    budgeted measurement.  Execution statistics are unaffected by
    prefetch statements, so {!stats} holds for every plan. *)

type t

(** [capture machine kernel ~n ~mode program] records the demand trace
    of [program] (which must be prefetch-free: the variant instantiated
    at its bindings) under the given measurement mode's flop budget and
    warm-up rules.
    @raise Invalid_argument if the program is malformed. *)
val capture :
  Machine.t -> Kernels.Kernel.t -> n:int -> mode:Executor.mode ->
  Ir.Program.t -> t

(** The captured demand program. *)
val program : t -> Ir.Program.t

(** Execution statistics of the run (valid for any prefetch plan). *)
val stats : t -> Ir.Exec.stats

(** Approximate footprint in words, for cache budgeting. *)
val words : t -> int

(** [synthesize t ~plan ~into] fills [into] with the packed event
    stream of the program transformed by [plan] — a canonical
    (sorted-ascending) [(array, distance)] list as in
    [Engine.request.prefetch] — and returns the warm-up cut position
    ([-1] when the captured mode needs none). *)
val synthesize : t -> plan:(string * int) list -> into:Ir.Vm.Buf.t -> int

(** Number of innermost-loop iteration records in the captured trace —
    the granularity at which one unit of prefetch distance shifts an
    emission. *)
val iterations : t -> int

(** [measure_plans machine kernel ~n t ~plans] measures every prefetch
    plan of a sweep group in ONE walk over the captured trace: shared
    demand segments are replayed through all K hierarchies per pass
    ({!Memsim.Hierarchy.Batch.replay_all}), per-plan prefetch events are
    synthesized and dispatched inline.  Each returned measurement is
    bit-identical to synthesizing that plan's stream and measuring it
    with {!Executor.measure_from_trace} (with the same [?sampling]
    spec, whose window decisions are replicated per plan). *)
val measure_plans :
  ?sampling:Memsim.Sampling.t ->
  Machine.t ->
  Kernels.Kernel.t ->
  n:int ->
  t ->
  plans:(string * int) list array ->
  Executor.measurement array

(** Result of {!reprice_group}. *)
type repriced = {
  rp_measurements : Executor.measurement option array;
      (** indexed like [plans]: [Some] where a real measurement was
          taken (the base plan, and the estimated-best sibling when it
          differs), [None] where the slack model's estimate stood in *)
  rp_estimated : int;  (** how many plans were priced without replay *)
  rp_joint : bool;
      (** more than one array's distance varied across the group (the
          joint multi-bucket slack path) *)
}

(** [reprice_group machine kernel ~n t ~plans] prices a sweep group
    whose plans all bind the same arrays and differ only in prefetch
    distances (any subset of the arrays may vary): the base plan
    [plans.(0)] is replayed once while recording, per varying array,
    the timeliness slack of each tracked prefetch's first demand use.
    A sibling's stall component is re-priced under the joint
    distance-shifted slacks — each varying array's slack bucket shifts
    by that array's own distance delta — and only the estimated-best
    sibling is re-measured exactly.  Wasted first uses (line evicted
    before the demand arrived) count as distance-invariant evidence,
    so fully-thrashing groups still re-price.  Returns [None] (caller
    should fall back to {!measure_plans}) when the plans do not all
    bind the same array list, or when no tracked first use was
    observed at all. *)
val reprice_group :
  ?sampling:Memsim.Sampling.t ->
  Machine.t ->
  Kernels.Kernel.t ->
  n:int ->
  t ->
  plans:(string * int) list array ->
  repriced option
