(** Log of every empirical experiment the search runs — the data behind
    the paper's §4.3 search-cost comparison.

    Only {e fresh} evaluations become entries.  Replays served from the
    evaluation engine's memo table are counted separately via
    {!note_hit}, and candidates pruned by the phase-1 constraints
    (rejected without any simulation) via {!note_pruned} — so {!points},
    the paper's search-cost metric, provably excludes memoized replays
    and model-pruned candidates. *)

type entry = {
  variant : string;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  cycles : float;
  mflops : float;
}

type t

val create : unit -> t

(** Record a fresh (actually simulated) evaluation. *)
val record : t -> entry -> unit

(** Count a memo hit: the point was requested again but not re-simulated. *)
val note_hit : t -> unit

(** Count a candidate rejected by the phase-1 constraints before any
    simulation — the model pruning that keeps the search small. *)
val note_pruned : t -> unit

(** Count a candidate whose evaluation failed (bad instantiation,
    measurement crash, timeout, quarantine) — kept apart from the
    constraint-pruned count so real failures stay visible. *)
val note_failed : t -> unit

(** Count a candidate skipped by the engine's analytical pre-filter:
    feasible, ranked outside the batch top-k by the model, never
    simulated (and not memoized — a later request may still measure
    it). *)
val note_prefiltered : t -> unit

(** Count a point served from the persistent performance database: the
    exact fingerprint (under the same measurement context) was on disk
    from a previous run, so no simulation ran.  Kept apart from
    {!note_hit} so cross-run reuse is visible separately from the
    per-run memo. *)
val note_db_hit : t -> unit

(** Count a transferred warm-start seed: a nearest-neighbor database
    point rescaled to this problem and force-simulated as a search
    anchor. *)
val note_warm_start : t -> unit

(** Count a candidate priced by the incremental prefetch repricer
    instead of a full replay: its cost estimate came from the slack
    model of its sweep group's base plan, and it was never simulated
    (nor memoized — a later request may still measure it). *)
val note_repriced : t -> unit

(** Count a leaderboard candidate confirmed by an exact re-measurement
    at the end of a sampled search. *)
val note_confirmed : t -> unit

(** Count a leaderboard candidate whose exact confirmation was skipped
    by the adaptive-confirmation policy (the sampled estimator's rank
    record on this kernel earned a smaller confirm set). *)
val note_confirm_skipped : t -> unit

val entries : t -> entry list

(** Number of distinct points evaluated (cache hits excluded). *)
val points : t -> int

(** Synonym for {!points}: fresh evaluations only. *)
val fresh : t -> int

(** Memoized replays served without re-simulation. *)
val hits : t -> int

(** Candidates rejected by constraints without simulation. *)
val pruned : t -> int

(** Candidates whose evaluation failed (typed reasons live in the
    engine's stats). *)
val failed : t -> int

(** Candidates skipped by the analytical pre-filter (never simulated). *)
val prefiltered : t -> int

(** Points served from the persistent performance database. *)
val db_hits : t -> int

(** Transferred warm-start seeds force-simulated as anchors. *)
val warm_starts : t -> int

(** Candidates priced by the incremental repricer without replay. *)
val repriced : t -> int

(** Leaderboard candidates confirmed exactly after a sampled search. *)
val confirmed : t -> int

(** Leaderboard confirmations skipped by the adaptive policy. *)
val confirm_skipped : t -> int

(** Wall-clock seconds since [create]. *)
val seconds : t -> float

val best : t -> entry option
val pp : Format.formatter -> t -> unit
