(** The evaluation engine: every candidate measurement in the system
    goes through here.

    The paper's argument (§3.2, §4.3) is that model pruning keeps the
    {e number} of empirical evaluations small; this module makes each
    remaining evaluation as cheap as possible, lets independent
    candidates overlap, and survives a hostile measurement substrate:

    - {b Memoization} — measurements are keyed by a canonical
      fingerprint [(kernel, variant shape, n, mode, bindings,
      prefetch)], so a point revisited by a later search stage, another
      strategy, or another experiment sharing the engine is served from
      the memo table without re-simulation.  Infeasible points are
      cached too, so constraint pruning is paid once per point — and so
      are failed points, with their typed {!failure_reason}, so a
      quarantined candidate is never re-measured.
    - {b Parallelism} — [evaluate_batch] runs memo misses on a pool of
      [jobs] domains (hierarchy state is created per evaluation, so
      workers share nothing).  Results are committed to the memo table,
      telemetry and the {!Search_log} in request order, so a batch
      produces bit-for-bit the same state at any [jobs]; [jobs = 1]
      additionally evaluates serially in request order.
    - {b Fault tolerance} — with a {!Faults.t} plan and a {!protocol},
      each candidate is measured under a resilient protocol: repeated
      trials aggregated by median/trimmed mean with adaptive early
      stop, bounded retry with exponential backoff on transient
      failures and hangs, deterministic evaluation deadlines,
      quarantine when the retry budget is exhausted, and graceful
      degradation from the [Fast] VM path to the [Closures] reference
      interpreter when the fast path dies.  Every fault draw is keyed
      by the candidate fingerprint, so results stay bit-identical at
      any [jobs].
    - {b Crash-only persistence} — {!set_checkpoint} periodically
      persists the memo table and telemetry; {!load_checkpoint}
      restores them, after which a deterministic search replays to the
      identical final answer.
    - {b Telemetry} — per-engine counters (memo hits, fresh
      simulations, constraint-pruned candidates, typed failure
      breakdown, retries, fallbacks, simulated cycles, wall seconds
      inside evaluation) and per-search counters via the log.

    An engine is bound to one machine model.  It is not itself
    thread-safe: call it from one coordinating domain and let it spread
    batches over its own workers. *)

type t

(** Why a candidate's evaluation failed.  The first two are
    deterministic properties of the candidate; the rest are verdicts of
    the resilient measurement protocol. *)
type failure_reason =
  | Infeasible_instantiation
      (** the variant rejected the bindings at instantiation *)
  | Malformed_program  (** the instantiated program failed to execute *)
  | Transient
      (** a transient measurement failure, with no retry budget to
          absorb it *)
  | Timeout  (** evaluation deadline (simulated-cycle or wall cap) hit *)
  | Quarantined
      (** failed persistently: the retry budget was exhausted *)

(** One-line human description of a {!failure_reason}. *)
val describe_failure : failure_reason -> string

(** Stable machine-readable slug of a {!failure_reason} ([infeasible],
    [malformed], [transient], [timeout], [quarantined]) — the shared
    error schema emitted by both the CLI and the autotuning service. *)
val failure_code : failure_reason -> string

(** How hard the engine fights the measurement substrate for each
    candidate. *)
type protocol = {
  trials : int;  (** repeated measurements per candidate (min 1) *)
  max_retries : int;
      (** retry budget per trial for transient failures and hangs;
          [0] makes the first transient final *)
  backoff_s : float;
      (** base backoff before retry [a] sleeps [backoff_s * 2^a]
          seconds; [0.] never sleeps *)
  cycle_cap : float;
      (** deterministic deadline: a candidate whose clean simulated
          cycles (or any perturbed trial) exceed this fails with
          [Timeout] *)
  wall_cap_s : float;  (** wall-clock deadline per candidate *)
  spread_rtol : float;
      (** adaptive early stop: stop trialling once the relative spread
          of the samples is within this tolerance *)
  min_trials : int;  (** never early-stop before this many trials *)
}

(** [{ trials = 1; max_retries = 2; backoff_s = 0.; cycle_cap = infinity;
       wall_cap_s = infinity; spread_rtol = 0.02; min_trials = 2 }] *)
val default_protocol : protocol

(** [create ?jobs ?path ?faults ?protocol machine] makes an engine for
    [machine].  [jobs] defaults to 1 (serial, deterministic evaluation
    order); [0] selects {!default_jobs}.  [path] selects the measurement
    pipeline ({!Executor.Fast} bytecode + batched replay + demand-trace
    reuse by default; {!Executor.Closures} forces the reference
    interpreter — bit-identical results, used as the benchmark
    baseline).  [faults] (default {!Faults.none}) injects seeded
    measurement faults; [protocol] (default {!default_protocol})
    configures the resilient measurement protocol.  With the defaults —
    no active fault plan and [trials = 1] — measurements are bit-for-bit
    what they were without the robustness layer.

    [objective] (default [Objective.Cycles]) is what pre-filter ranking
    minimizes; [prefilter] (default off; values < 1 disable) arms the
    two-stage batch evaluation described at {!set_prefilter}. *)
val create :
  ?jobs:int ->
  ?path:Executor.path ->
  ?faults:Faults.t ->
  ?protocol:protocol ->
  ?objective:Objective.t ->
  ?prefilter:int ->
  Machine.t ->
  t

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

val machine : t -> Machine.t
val jobs : t -> int
val path : t -> Executor.path
val faults : t -> Faults.t
val protocol : t -> protocol
val objective : t -> Objective.t
val prefilter : t -> int option

(** The default top-k for [--prefilter] without a value: 4, matching
    {!Eco}'s triage width. *)
val default_prefilter : int

val set_objective : t -> Objective.t -> unit

(** Arm (or, with [None] / values < 1, disarm) the analytical
    pre-filter: each {!evaluate_batch} ranks its fresh feasible
    candidates with {!Predict} under the engine's objective and
    simulates only the top-k.  Skipped candidates return [None], are
    counted in {!stats} ([prefiltered]) and via
    {!Search_log.note_prefiltered}, and are {e not} memoized, so a
    later request can still measure them.  Memoization, the fault
    protocol and checkpointing are unaffected — and the skipped set is
    a pure function of the batch, so results stay bit-identical at any
    [jobs]. *)
val set_prefilter : t -> int option -> unit

(** {2 Batched, sampled and incremental replay}

    Three evaluator tiers stacked on the fast path (DESIGN.md, "Three
    replay tiers"):

    - {b Batched multi-plan replay} (on by default): within an
      {!evaluate_batch}, prefetch candidates that share one captured
      demand trace (a distance sweep over one variant point) are
      measured in ONE walk over the trace
      ({!Demand_trace.measure_plans}), so the shared demand stream is
      decoded once instead of once per plan.  Each measurement is
      bit-identical to the unbatched path.
    - {b Sampled simulation} (off by default): with a
      {!Memsim.Sampling.t} spec, fast-path measurements become sampled
      estimates — the trace is generated at a budget shrunken by
      [spec.shrink] and only the sampler's periodic windows are
      replayed with full accounting, counters extrapolated back up.
      Estimates are memoized under a fingerprint carrying a sampled
      flag, never satisfy an exact lookup, and never enter the
      performance database.  The closure path and {!measure_program}
      stay exact.
    - {b Incremental re-simulation} (off by default): when the sweep
      group's plans all bind the same arrays and differ only in
      prefetch distances (any subset of the arrays may vary), the base
      plan's replay records per-array timeliness slacks and the
      siblings are re-priced analytically under the joint
      distance-shifted slacks; only the estimated-best sibling is
      re-measured exactly ({!Demand_trace.reprice_group}).  Re-priced
      candidates return [None], are counted ([repriced], with
      [repriced_joint] tracking the multi-array groups,
      {!Search_log.note_repriced}) and are {e not} memoized — like
      pre-filter skips, a later request can still measure them.

    Batching engages only when the engine is on the [Fast] path with no
    active fault plan and [trials <= 1] (the group bypasses the
    per-candidate protocol, which would otherwise need per-candidate
    draws); the cycle-cap and wall-cap deadlines still apply.  With
    batching disabled and no sampling spec, evaluation is byte-for-byte
    the historical behaviour. *)

val sampling : t -> Memsim.Sampling.t option
val set_sampling : t -> Memsim.Sampling.t option -> unit
val batch_replay : t -> bool
val set_batch_replay : t -> bool -> unit
val incremental : t -> bool
val set_incremental : t -> bool -> unit

(** {2 Adaptive confirmation}

    After a sampled search, [Search.confirm_best] re-measures the
    leaderboard exactly.  The engine holds the pieces that must outlive
    any single search state: the per-kernel rank-quality record of the
    sampled estimator (confirmed pairs vs. observed order inversions,
    accumulated by every confirmation pass) and the user's [--confirm]
    override.  [Search] reads {!rank_quality} to shrink the confirm set
    from the full leaderboard toward a single candidate as the
    estimator proves its ranking on this kernel; the floor of one exact
    confirmation is never crossed, so the reported [performance:] stays
    an exact measurement. *)

(** The forced confirm-set size ([None] = adaptive policy).  Values are
    clamped to at least 1 on the way in. *)
val confirm_override : t -> int option

val set_confirm_override : t -> int option -> unit

(** [(pairs, inversions)] observed for [kernel] so far: ordered
    leaderboard pairs whose exact scores were separated enough to
    judge, and how many of them the sampled estimate ranked backwards.
    [(0, 0)] before any confirmation pass. *)
val rank_quality : t -> kernel:string -> int * int

(** Fold one confirmation pass's evidence into the kernel's record
    (no-op when [pairs = 0]). *)
val record_rank_sample : t -> kernel:string -> pairs:int -> inversions:int -> unit

(** Count one exact leaderboard confirmation / one adaptively skipped
    confirmation (called by [Search.confirm_best]). *)
val note_confirmed : t -> ?log:Search_log.t -> unit -> unit

val note_confirm_skipped : t -> ?log:Search_log.t -> unit -> unit

(** Best {e exact} measured cycles across the memo table (sampled
    estimates excluded), [None] when nothing exact was measured yet.
    [Search] uses it to decide whether a confirmed winner is close
    enough to the global floor to be worth exact polishing. *)
val best_cycles : t -> float option

(** Will {!evaluate_batch} collapse sweep groups into batched
    multi-plan replays under the current configuration?  True on the
    [Fast] path with batching enabled, no active fault plan and
    [trials <= 1].  Searches consult this to decide when a speculative
    distance pre-batch is worthwhile. *)
val grouping_capable : t -> bool

(** {2 Persistent performance database}

    With {!set_db}, the engine gains an exact-hit tier below the memo
    table: a memo miss whose database key — the canonical fingerprint
    digested with the measurement context (machine, fault plan,
    aggregation protocol) — is on disk is served without simulation
    ([cached = true], counted as a [db_hit]), and every fresh {e
    successful} measurement is appended back, one flushed frame per
    record, deduplicated by key.  Pruned, failed and quarantined
    candidates are never persisted.  Lookups and appends happen only on
    the coordinating domain, in request order, so results stay
    bit-identical at any [jobs] — and an empty database changes nothing
    at all. *)

(** Attach a database.  [warm_start] (default true) additionally offers
    it to [Search] for nearest-neighbor transfer seeding ({!warm_db});
    the exact-hit tier is active either way. *)
val set_db : t -> ?warm_start:bool -> Perfdb.t -> unit

val db : t -> Perfdb.t option

(** Detach the database (and disable warm-starting): evaluation
    continues from the in-memory memo alone. *)
val clear_db : t -> unit

(** Quarantine the store: {!clear_db} plus a recorded reason (first
    failure wins).  The engine calls this itself on the first database
    append failure; the autotuning daemon calls it when a shared store
    turns out corrupt at load time. *)
val degrade_db : t -> string -> unit

(** Why the database tier was quarantined, [None] while it is healthy.
    Surfaces as [db: degraded] in service telemetry. *)
val db_degraded : t -> string option

(** The database to seed transfers from — [None] when no database is
    attached or warm-starting was disabled. *)
val warm_db : t -> Perfdb.t option

(** Count one transferred warm-start seed (called by [Search] as it
    force-simulates a transferred anchor). *)
val note_warm_start : t -> ?log:Search_log.t -> unit -> unit

(** One candidate point of one variant. *)
type request = {
  variant : Variant.t;
  n : int;
  mode : Executor.mode;
  bindings : (string * int) list;
  prefetch : (string * int) list;  (** (array, distance) list *)
  check : bool;
      (** enforce the variant's phase-1 feasibility constraints before
          simulating (the model pruning); [false] replicates a raw
          measurement of a hand-picked point *)
}

val request :
  ?check:bool ->
  ?prefetch:(string * int) list ->
  Variant.t ->
  n:int ->
  mode:Executor.mode ->
  bindings:(string * int) list ->
  request

type evaluation = {
  program : Ir.Program.t;  (** instantiated, with prefetches applied *)
  measurement : Executor.measurement;
  cached : bool;  (** served from the memo table, not re-simulated *)
}

(** Evaluate one point.  [None] when the point is infeasible (pruned by
    constraints), the variant cannot be instantiated at it, or its
    measurement failed under the protocol (timeout / quarantine /
    unretried transient — ask {!explain} for the reason).  When [log] is
    given, fresh evaluations are {!Search_log.record}ed, memo hits
    {!Search_log.note_hit}ed, pruned candidates
    {!Search_log.note_pruned}ed and failures
    {!Search_log.note_failed}ed. *)
val evaluate : t -> ?log:Search_log.t -> request -> evaluation option

(** Evaluate an independent batch; result list is in request order.
    Memo hits and duplicate requests within the batch are simulated at
    most once; the remaining misses run on the domain pool when
    [jobs t > 1].  Identical results (and identical log contents) to
    repeated {!evaluate} calls in list order. *)
val evaluate_batch :
  t -> ?log:Search_log.t -> request list -> evaluation option list

(** What the memo table knows about a point: measured, pruned by
    constraints, failed with a typed reason, or never evaluated. *)
val explain :
  t -> request -> [ `Measured | `Pruned | `Failed of failure_reason | `Unknown ]

(** Is the engine measuring through a value-perturbing fault plan
    ({!Faults.noisy}) with repeated trials?  When it is, searches
    should {!confirm} their leading candidates before declaring a
    winner.  Zero-rate active plans are excluded: their samples equal
    the clean measurement, so confirmation could never change the
    answer. *)
val confirming : t -> bool

(** [confirm t r ~trials] re-measures the point with [trials] fresh
    trials (drawn from a reserved trial band, independent of the draws
    behind the memoized measurement) and no early stop — the defence
    against the winner's curse: the minimum over many noisy memoized
    values is biased low, so the apparent best points are re-measured
    and compared on confirmed values.  Bypasses the memo (counts as a
    fresh evaluation in {!stats}; not recorded in the search log).
    When the engine is not {!confirming}, falls back to a plain
    (memoized) {!evaluate} — zero extra cost, identical results.
    [None] when the point is infeasible or its confirmation fails. *)
val confirm : t -> request -> trials:int -> Executor.measurement option

(** Instantiate the request's program (variant + bindings + prefetch)
    without measuring it; [None] if instantiation fails.  Feasibility is
    not checked. *)
val build : t -> request -> Ir.Program.t option

(** Measure an explicit program (one not described by a variant point:
    the native-compiler model's output, a padded program, the
    untransformed kernel...).  Memoized under [key] when given;
    otherwise under a structural digest of the program, falling back to
    unmemoized execution if the program cannot be digested.  Runs
    outside the fault-injection protocol (it measures references, not
    search candidates).
    @raise Invalid_argument if the program is malformed. *)
val measure_program :
  t ->
  ?key:string ->
  Kernels.Kernel.t ->
  n:int ->
  mode:Executor.mode ->
  Ir.Program.t ->
  Executor.measurement

(** {2 Crash-only checkpointing}

    A checkpoint persists the memo table (which, for a deterministic
    search, {e is} the search cursor: replaying the search against it
    costs only memo lookups) plus the telemetry counters.  Files are
    written atomically (write to a temp file, then rename), prefixed
    with a magic string and an integrity digest, so a run killed at any
    instant leaves a loadable checkpoint — the previous complete one at
    worst. *)

(** Raised by {!load_checkpoint} when the file is a valid checkpoint of
    a {e different} run configuration (tag or machine mismatch) —
    resuming it would silently answer the wrong question. *)
exception Checkpoint_mismatch of string

(** Raised from inside evaluation once the {!set_eval_limit} budget is
    reached — the deterministic stand-in for a SIGKILL mid-search, used
    to test and demonstrate crash recovery. *)
exception Eval_limit_reached of int

type resume = {
  resumed_entries : int;  (** memo entries restored *)
  resumed_fresh : int;  (** fresh evaluations the dead run had done *)
  resumed_best_cycles : float option;
      (** best measured cycles in the restored memo *)
}

(** [set_checkpoint t ~tag file] arms periodic checkpointing: the engine
    rewrites [file] after every [every] (default 16) fresh evaluations.
    [tag] should encode everything that determines the run's answer
    (machine, kernel, n, budget, path, faults, protocol); it is embedded
    in the file and verified on load. *)
val set_checkpoint : t -> ?every:int -> tag:string -> string -> unit

(** Write a checkpoint immediately (no-op unless {!set_checkpoint} was
    called) — e.g. once more after the search completes. *)
val checkpoint_now : t -> unit

(** [load_checkpoint t ~tag file] restores the memo table and telemetry
    from [file].  [None] when the file is missing, truncated or corrupt
    (crash-only recovery: start fresh).
    @raise Checkpoint_mismatch when the file belongs to a different run
    configuration or machine. *)
val load_checkpoint : t -> tag:string -> string -> resume option

(** Abort the run (raising {!Eval_limit_reached}) after this many total
    fresh evaluations — crash injection for testing recovery. *)
val set_eval_limit : t -> int -> unit

(** {2 Cooperative interruption}

    The hooks the autotuning service ([lib/serve]) threads its cancel
    tokens, per-request deadlines and hung-batch watchdog through.
    Both fire {e after} periodic checkpoint persistence, so whatever
    they raise aborts a search that is resumable by construction:
    [load_checkpoint] + replay lands on the identical answer. *)

(** Raised from inside evaluation once the wall-clock instant armed
    with {!set_deadline} has passed — the typed "out of time" that
    [eco tune --timeout] and the service's per-request deadlines share.
    The caller reports its best-so-far as a typed partial result. *)
exception Deadline_exceeded

(** [set_poll t (Some f)] installs a cooperative interruption hook:
    [f] runs before each evaluation and after each fresh one, and may
    raise (e.g. a cancel token) to abort the search in progress.
    [None] uninstalls.  The engine state is consistent at every call
    site, so an exception here never tears the memo. *)
val set_poll : t -> (unit -> unit) option -> unit

(** [set_yield t (Some f)] installs a batch-boundary hook: [f] runs at
    the top of every {!evaluate_batch}, where the engine is quiescent —
    the one place a scheduler may suspend the whole search (e.g. via an
    effect) and interleave another session on the same engine. *)
val set_yield : t -> (unit -> unit) option -> unit

(** Arm ([Some abs_time], a [Unix.gettimeofday] instant) or disarm
    ([None]) the engine-level wall deadline checked at every
    interruption point. *)
val set_deadline : t -> float option -> unit

val deadline : t -> float option

(** {2 Telemetry} *)

(** Cumulative engine-lifetime telemetry. *)
type stats = {
  hits : int;  (** requests served from the memo table *)
  fresh : int;  (** actual simulations run *)
  pruned : int;  (** candidates rejected by constraints, no simulation *)
  prefiltered : int;
      (** candidates skipped by the analytical pre-filter (feasible,
          ranked outside the batch top-k, never simulated) *)
  model_evals : int;  (** analytical predictions computed *)
  model_seconds : float;  (** wall time inside the analytical model *)
  failed : int;  (** instantiation/measurement failures (total) *)
  failed_infeasible : int;  (** {!Infeasible_instantiation} *)
  failed_malformed : int;  (** {!Malformed_program} *)
  failed_transient : int;  (** {!Transient} *)
  failed_timeout : int;  (** {!Timeout} *)
  failed_quarantined : int;  (** {!Quarantined} *)
  retries : int;  (** protocol retries across all candidates *)
  trials_run : int;  (** successful trials across all candidates *)
  early_stops : int;  (** candidates whose trials stopped early *)
  vm_fallbacks : int;  (** Fast-path crashes degraded to [Closures] *)
  simulated_cycles : float;  (** total cycles across fresh measurements *)
  eval_seconds : float;  (** wall time spent inside evaluation *)
  compile_seconds : float;  (** bytecode compilation (Fast path) *)
  exec_seconds : float;
      (** program execution / trace generation (everything, on the
          closure path) *)
  sim_seconds : float;  (** hierarchy simulation (batched replay) *)
  memo_seconds : float;  (** memo-table lookups *)
  trace_hits : int;  (** candidates served by demand-trace synthesis *)
  trace_fills : int;  (** demand traces captured *)
  fill_seconds : float;
      (** coordinator-side wall time spent capturing demand traces
          (variant instantiation + VM run + event copy) — outside
          [eval_seconds] *)
  db_hits : int;  (** points served from the persistent database *)
  warm_starts : int;  (** transferred warm-start seeds *)
  sampled : int;  (** fresh evaluations measured as sampled estimates *)
  batched_groups : int;  (** sweep groups measured by multi-plan replay *)
  batched_candidates : int;  (** candidates covered by those groups *)
  repriced : int;
      (** candidates priced by the incremental repricer, never replayed *)
  repriced_joint : int;
      (** the subset of [repriced] priced by the joint multi-array
          slack model (more than one array's distance varied) *)
  confirmed : int;  (** exact leaderboard confirmations run *)
  confirm_skipped : int;
      (** leaderboard confirmations skipped by the adaptive policy *)
}

val stats : t -> stats

(** The nonzero typed-failure counters, as [(label, count)] pairs. *)
val failure_breakdown : stats -> (string * int) list

(** The headline telemetry line ([eco tune]'s [engine:] line); appends
    the failure breakdown, retry and fallback counts when nonzero. *)
val pp_stats : Format.formatter -> stats -> unit

(** The [--profile] wall-time breakdown: where evaluation time went
    (compile vs. execute vs. simulate vs. memo lookups), how the
    demand-trace cache behaved, and the protocol counters when the
    resilient protocol did any work. *)
val pp_profile : Format.formatter -> stats -> unit
