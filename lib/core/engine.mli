(** The evaluation engine: every candidate measurement in the system
    goes through here.

    The paper's argument (§3.2, §4.3) is that model pruning keeps the
    {e number} of empirical evaluations small; this module makes each
    remaining evaluation as cheap as possible and lets independent
    candidates overlap:

    - {b Memoization} — measurements are keyed by a canonical
      fingerprint [(kernel, variant shape, n, mode, bindings,
      prefetch)], so a point revisited by a later search stage, another
      strategy, or another experiment sharing the engine is served from
      the memo table without re-simulation.  Infeasible points are
      cached too, so constraint pruning is paid once per point.
    - {b Parallelism} — [evaluate_batch] runs memo misses on a pool of
      [jobs] domains (hierarchy state is created per evaluation, so
      workers share nothing).  Results are committed to the memo table,
      telemetry and the {!Search_log} in request order, so a batch
      produces bit-for-bit the same state at any [jobs]; [jobs = 1]
      additionally evaluates serially in request order.
    - {b Telemetry} — per-engine counters (memo hits, fresh
      simulations, constraint-pruned candidates, simulated cycles, wall
      seconds inside evaluation) and per-search counters via the log.

    An engine is bound to one machine model.  It is not itself
    thread-safe: call it from one coordinating domain and let it spread
    batches over its own workers. *)

type t

(** [create ?jobs ?path machine] makes an engine for [machine].  [jobs]
    defaults to 1 (serial, deterministic evaluation order); [0] selects
    {!default_jobs}.  [path] selects the measurement pipeline
    ({!Executor.Fast} bytecode + batched replay + demand-trace reuse by
    default; {!Executor.Closures} forces the reference interpreter —
    bit-identical results, used as the benchmark baseline). *)
val create : ?jobs:int -> ?path:Executor.path -> Machine.t -> t

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

val machine : t -> Machine.t
val jobs : t -> int
val path : t -> Executor.path

(** One candidate point of one variant. *)
type request = {
  variant : Variant.t;
  n : int;
  mode : Executor.mode;
  bindings : (string * int) list;
  prefetch : (string * int) list;  (** (array, distance) list *)
  check : bool;
      (** enforce the variant's phase-1 feasibility constraints before
          simulating (the model pruning); [false] replicates a raw
          measurement of a hand-picked point *)
}

val request :
  ?check:bool ->
  ?prefetch:(string * int) list ->
  Variant.t ->
  n:int ->
  mode:Executor.mode ->
  bindings:(string * int) list ->
  request

type evaluation = {
  program : Ir.Program.t;  (** instantiated, with prefetches applied *)
  measurement : Executor.measurement;
  cached : bool;  (** served from the memo table, not re-simulated *)
}

(** Evaluate one point.  [None] when the point is infeasible (pruned by
    constraints) or the variant cannot be instantiated at it.  When
    [log] is given, fresh evaluations are {!Search_log.record}ed, memo
    hits {!Search_log.note_hit}ed and pruned candidates
    {!Search_log.note_pruned}ed. *)
val evaluate : t -> ?log:Search_log.t -> request -> evaluation option

(** Evaluate an independent batch; result list is in request order.
    Memo hits and duplicate requests within the batch are simulated at
    most once; the remaining misses run on the domain pool when
    [jobs t > 1].  Identical results (and identical log contents) to
    repeated {!evaluate} calls in list order. *)
val evaluate_batch :
  t -> ?log:Search_log.t -> request list -> evaluation option list

(** Instantiate the request's program (variant + bindings + prefetch)
    without measuring it; [None] if instantiation fails.  Feasibility is
    not checked. *)
val build : t -> request -> Ir.Program.t option

(** Measure an explicit program (one not described by a variant point:
    the native-compiler model's output, a padded program, the
    untransformed kernel...).  Memoized under [key] when given;
    otherwise under a structural digest of the program, falling back to
    unmemoized execution if the program cannot be digested.
    @raise Invalid_argument if the program is malformed. *)
val measure_program :
  t ->
  ?key:string ->
  Kernels.Kernel.t ->
  n:int ->
  mode:Executor.mode ->
  Ir.Program.t ->
  Executor.measurement

(** Cumulative engine-lifetime telemetry. *)
type stats = {
  hits : int;  (** requests served from the memo table *)
  fresh : int;  (** actual simulations run *)
  pruned : int;  (** candidates rejected by constraints, no simulation *)
  failed : int;  (** instantiation/measurement failures *)
  simulated_cycles : float;  (** total cycles across fresh measurements *)
  eval_seconds : float;  (** wall time spent inside evaluation *)
  compile_seconds : float;  (** bytecode compilation (Fast path) *)
  exec_seconds : float;
      (** program execution / trace generation (everything, on the
          closure path) *)
  sim_seconds : float;  (** hierarchy simulation (batched replay) *)
  memo_seconds : float;  (** memo-table lookups *)
  trace_hits : int;  (** candidates served by demand-trace synthesis *)
  trace_fills : int;  (** demand traces captured *)
}

val stats : t -> stats

(** The headline telemetry line ([eco tune]'s [engine:] line). *)
val pp_stats : Format.formatter -> stats -> unit

(** The [--profile] wall-time breakdown: where evaluation time went
    (compile vs. execute vs. simulate vs. memo lookups) and how the
    demand-trace cache behaved. *)
val pp_profile : Format.formatter -> stats -> unit
