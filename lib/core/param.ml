type kind = Unroll | Tile

type t = { name : string; kind : kind; loop : string }

let unroll loop = { name = "u" ^ loop; kind = Unroll; loop }
let tile loop = { name = "t" ^ loop; kind = Tile; loop }

let range t ~n =
  match t.kind with Unroll -> (1, 64) | Tile -> (1, max 1 n)

let boundary_values t ~n =
  let lo, hi = range t ~n in
  let raw =
    match t.kind with
    | Unroll -> [ 1; 2; 3; 4; 8; n; hi ]
    | Tile -> [ 1; 2; 3; 4; n / 2; n - 1; n ]
  in
  List.sort_uniq compare (List.filter (fun v -> v >= lo && v <= hi) raw)

let pp fmt t =
  Format.fprintf fmt "%s(%s %s)" t.name
    (match t.kind with Unroll -> "unroll" | Tile -> "tile")
    t.loop
