(** What the search minimizes.

    The cycles-only code paths of {!Search}, {!Eco} and {!Engine} are
    generalized over this small abstraction: an objective scores both a
    simulator-backed {!Executor.measurement} and an analytical
    {!Model.prediction} on one comparable scale, so the same search
    machinery can minimize run time or a cycles-coupled energy estimate,
    and the engine's analytical pre-filter can rank candidates under
    whichever objective the search is chasing.

    [Cycles] scores are exactly {!Executor.cycles} / {!Model.cycles}, so
    an objective-generic search with [Cycles] is bit-for-bit the old
    cycles-only search.  [Energy] charges each hierarchy level's traffic
    with a per-access energy (L1 : L2 : L3 : DRAM of roughly
    1 : 5 : 20 : 100, the CACTI-style ratios the ECM energy literature
    uses) plus a static-per-cycle term that couples it to run time. *)

type t = Cycles | Energy

val all : t list
val to_string : t -> string

(** ["cycles"], ["time"], ["energy"] (case-insensitive). *)
val of_string : string -> t option

(** Score a measurement; lower is better.  [Cycles] is exactly
    {!Executor.cycles}.  [Energy] scales the (possibly sampled)
    counters by the measurement's extrapolation ratio. *)
val score : t -> Machine.t -> Executor.measurement -> float

(** Score an analytical prediction on the same scale. *)
val predicted : t -> Machine.t -> Model.prediction -> float

val pp : Format.formatter -> t -> unit
