module Poly = Analysis.Poly

type t =
  | Poly_le of { poly : Poly.t; bound : int; what : string }
  | Pages_le of {
      elems : Poly.t;
      runs : Poly.t;
      page_elems : int;
      bound : int;
      what : string;
    }
  | Stride_not_multiple of { elems : Poly.t; modulus : int; what : string }

let satisfied c lookup =
  match c with
  | Poly_le { poly; bound; _ } -> Poly.eval lookup poly <= bound
  | Pages_le { elems; runs; page_elems; bound; _ } ->
    let e = Poly.eval lookup elems and r = Poly.eval lookup runs in
    let pages = max r ((e + page_elems - 1) / page_elems) in
    pages <= bound
  | Stride_not_multiple { elems; modulus; _ } ->
    let e = Poly.eval lookup elems in
    e < modulus || e mod modulus <> 0

let system_satisfied cs lookup = List.for_all (fun c -> satisfied c lookup) cs

let binding_lookup ~n bindings x =
  if x = "n" then n
  else
    match List.assoc_opt x bindings with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Constr.sample: unbound variable %s" x)

let sample ~rand ?(attempts = 300) ~n params cs =
  let draw (p : Param.t) =
    let lo, hi = Param.range p ~n in
    let boundary = Param.boundary_values p ~n in
    let v =
      if boundary <> [] && rand 2 = 0 then
        List.nth boundary (rand (List.length boundary))
      else lo + rand (max 1 (hi - lo + 1))
    in
    (p.Param.name, v)
  in
  let feasible b = system_satisfied cs (binding_lookup ~n b) in
  let rec go k =
    if k = 0 then
      let ones = List.map (fun (p : Param.t) -> (p.Param.name, 1)) params in
      if feasible ones then Some ones else None
    else
      let b = List.map draw params in
      if feasible b then Some b else go (k - 1)
  in
  go attempts

let vars = function
  | Poly_le { poly; _ } -> Poly.vars poly
  | Pages_le { elems; runs; _ } ->
    List.sort_uniq String.compare (Poly.vars elems @ Poly.vars runs)
  | Stride_not_multiple { elems; _ } -> Poly.vars elems

let describe = function
  | Poly_le { poly; bound; what } ->
    Printf.sprintf "%s: %s <= %d" what (Poly.to_string poly) bound
  | Pages_le { elems; runs; page_elems; bound; what } ->
    Printf.sprintf "%s: pages(%s; runs %s; %d elems/page) <= %d" what
      (Poly.to_string elems) (Poly.to_string runs) page_elems bound
  | Stride_not_multiple { elems; modulus; what } ->
    Printf.sprintf "%s: (%s) mod %d <> 0" what (Poly.to_string elems) modulus

let pp fmt c = Format.pp_print_string fmt (describe c)
