(** Phase 2: model-guided empirical search (paper §3.2).

    For one variant, the search proceeds in stages:

    + {b tiling parameters} — stage 1 searches the unroll (register-tile)
      factors, stage 2 the cache-tile sizes, each starting from the
      model's initial point (uniform values filling the heuristic
      footprint), walking tile {e shapes} (double one dimension, halve
      another) at constant footprint, halving the footprint when no shape
      improves, then refining each parameter linearly;
    + {b prefetching} — for each array (including copy temporaries), try
      distance 1; if it helps, grow the distance while it keeps helping
      and keep the smallest best, otherwise drop the prefetch;
    + {b adjustment} — with prefetching in place, try growing the
      innermost tile (prefetching favours longer streams), re-checking
      the constraints.

    Every evaluation goes through the {!Engine}: candidates violating
    the phase-1 constraints are pruned without execution, repeat points
    (across stages, variants, or strategies sharing the engine) are
    served from its memo table, and the independent candidate
    neighbourhoods of the shape walk and linear refinement evaluate as
    batches — in parallel when the engine has [jobs > 1], with identical
    results either way.

    Candidates are compared under the engine's {!Objective}
    ({!Engine.objective}): with the default [Cycles] the comparisons are
    exactly simulated cycles, byte-for-byte the historical behaviour;
    with [Energy] the search minimizes the modelled energy of the
    measurement instead. *)

type outcome = {
  variant : Variant.t;
  bindings : (string * int) list;
  prefetch : (string * int) list;
  program : Ir.Program.t;  (** instantiated, with prefetches applied *)
  measurement : Executor.measurement;
}

(** [tune_variant engine ~n ~mode ~log variant] returns the best
    parameter setting found, or [None] when no feasible point exists. *)
val tune_variant :
  Engine.t ->
  n:int ->
  mode:Executor.mode ->
  log:Search_log.t ->
  Variant.t ->
  outcome option

(** [polish_winner engine ~n ~mode ?log outcome] — final exact polish
    of the cross-variant winner of a sampled run (capped refinement +
    prefetch retune at full precision).  When the adaptive confirmation
    policy shrank the per-variant confirm set, the per-variant polish
    was deferred to this single call; where it already ran, the
    neighborhoods replay from the memo and this is nearly free.  A
    no-op when the engine is not sampling. *)
val polish_winner :
  Engine.t ->
  n:int ->
  mode:Executor.mode ->
  ?log:Search_log.t ->
  outcome ->
  outcome

(** The model's initial parameter point for a variant (uniform values
    saturating the phase-1 constraints), with no empirical input at all
    — what a purely model-driven compiler would pick (Yotov et al.'s
    question, used by the ablation experiment).  [None] when even the
    all-ones point is infeasible.  Pure constraint arithmetic: runs no
    simulation (the machine argument is kept for call-site symmetry with
    the measuring entry points). *)
val model_point : Machine.t -> n:int -> Variant.t -> (string * int) list option

(** Instantiate + prefetch + measure one explicit point (used by the
    experiment harness for Table 1's hand-picked parameter settings). *)
val measure_point :
  Engine.t ->
  n:int ->
  mode:Executor.mode ->
  ?log:Search_log.t ->
  Variant.t ->
  bindings:(string * int) list ->
  prefetch:(string * int) list ->
  outcome option
