type t = Cycles | Energy

let to_string = function Cycles -> "cycles" | Energy -> "energy"

let of_string s =
  match String.lowercase_ascii s with
  | "cycles" | "time" -> Some Cycles
  | "energy" -> Some Energy
  | _ -> None

let all = [ Cycles; Energy ]

(* Per-access energy coefficients, in arbitrary units normalized to one
   L1 access.  The ratios (L1 : L2 : L3 : DRAM roughly 1 : 5 : 20 : 100)
   follow the published CACTI-style scaling the ECM energy literature
   uses; absolute calibration does not matter for an objective that only
   ever compares candidates on the same machine. *)
let level_energy = function 0 -> 1.0 | 1 -> 5.0 | _ -> 20.0
let memory_energy = 100.0
let tlb_energy = 30.0

(* Static/leakage energy per cycle: couples the energy objective to run
   time, so a slower candidate is never free even when its traffic is. *)
let static_per_cycle = 0.25

let energy_of machine ~accesses ~misses ~tlb_misses ~cycles =
  let n = Machine.levels machine in
  let e = ref (accesses *. level_energy 0) in
  for l = 1 to n - 1 do
    e := !e +. (misses (l - 1) *. level_energy l)
  done;
  e := !e +. (misses (n - 1) *. memory_energy);
  !e +. (tlb_misses *. tlb_energy) +. (cycles *. static_per_cycle)

let score t machine (m : Executor.measurement) =
  match t with
  | Cycles -> Executor.cycles m
  | Energy ->
    (* Budgeted measurements carry sampled counters and an extrapolation
       ratio; energy is extensive, so the counters scale like the
       cycles did. *)
    let s = m.Executor.scale in
    let c = m.Executor.counters in
    energy_of machine
      ~accesses:(s *. float_of_int (Memsim.Counters.accesses c))
      ~misses:(fun l -> s *. float_of_int (Memsim.Counters.level_misses c l))
      ~tlb_misses:(s *. float_of_int c.Memsim.Counters.tlb_misses)
      ~cycles:(Executor.cycles m)

let predicted t machine (p : Model.prediction) =
  match t with
  | Cycles -> Model.cycles p
  | Energy ->
    energy_of machine ~accesses:p.Model.accesses
      ~misses:(fun l -> p.Model.level_misses.(l))
      ~tlb_misses:p.Model.tlb_misses ~cycles:(Model.cycles p)

let pp fmt t = Format.pp_print_string fmt (to_string t)
