module Reuse = Analysis.Reuse
module Footprint = Analysis.Footprint
module Poly = Analysis.Poly
module Depend = Analysis.Depend

type ctx = {
  machine : Machine.t;
  kernel : Kernels.Kernel.t;
  loops : string list;  (* original order, outermost first *)
  groups : Reuse.group list;
  deps : Depend.t list;
}

let group_key (g : Reuse.group) = (g.Reuse.array, g.Reuse.signature)

(* Loops of [working] carrying the most temporal reuse over [groups].
   At the register level ties are broken by spatial reuse (the innermost
   loop should also walk cache lines); at the cache levels spatial
   locality is exploited regardless of the reuse loop, so ties are kept
   and become separate variants — this is what gives Matrix Multiply its
   two Table-4 variants. *)
let best_loops ?(spatial_tiebreak = false) groups working =
  let temporal v = Reuse.loop_temporal_savings groups v in
  let max_t = List.fold_left (fun m v -> max m (temporal v)) 0 working in
  if max_t = 0 then []
  else
    let c1 = List.filter (fun v -> temporal v = max_t) working in
    match c1 with
    | [] | [ _ ] -> c1
    | _ when not spatial_tiebreak -> c1
    | _ ->
      let spatial v = Reuse.loop_spatial_score groups v in
      let max_s = List.fold_left (fun m v -> max m (spatial v)) 0 c1 in
      List.filter (fun v -> spatial v = max_s) c1

(* The retained references at a level: the groups achieving the maximal
   savings along the level's reuse loop. *)
let retained_groups groups l =
  let savings g = Reuse.group_temporal_savings g l in
  let max_s = List.fold_left (fun m g -> max m (savings g)) 0 groups in
  if max_s = 0 then [] else List.filter (fun g -> savings g = max_s) groups

let cache_bound machine level =
  let c = Machine.cache_level machine level in
  let cap = c.Machine.size_bytes / 8 in
  if c.Machine.assoc = 1 then cap else (c.Machine.assoc - 1) * cap / c.Machine.assoc

let array_read_only (p : Ir.Program.t) array =
  not
    (List.exists
       (fun ((r : Ir.Reference.t), w) -> w && r.Ir.Reference.array = array)
       (Ir.Stmt.access_refs p.Ir.Program.body))

(* A group is a copy candidate at a cache level when its reuse along the
   level's loop is unbounded (invariant => reuse ~ trip count, so the
   copy cost amortizes), the array is read-only, and every dimension is
   driven by exactly one tiled loop. *)
let copyable ctx ~tiles (g : Reuse.group) ~reuse_loop =
  let invariant =
    List.for_all (fun s -> Ir.Aff.coeff s reuse_loop = 0) g.Reuse.signature
  in
  invariant
  && g.Reuse.signature <> []
  && array_read_only ctx.kernel.Kernels.Kernel.program g.Reuse.array
  && List.for_all
       (fun s ->
         match Ir.Aff.terms s with
         | [ (1, v) ] -> List.mem_assoc v tiles
         | _ -> false)
       g.Reuse.signature

let copy_spec_of ctx ~tiles (g : Reuse.group) =
  let dim_loops =
    List.map
      (fun s ->
        match Ir.Aff.terms s with
        | [ (1, v) ] -> v
        | _ -> assert false)
      g.Reuse.signature
  in
  let decl = Ir.Program.find_decl_exn ctx.kernel.Kernels.Kernel.program g.Reuse.array in
  let dims =
    List.map2
      (fun v bound -> { Variant.tiled_loop = v; bound })
      dim_loops decl.Ir.Decl.dims
  in
  (* The copy nests under the innermost control loop it depends on:
     the last of its dimension loops in the tile (control) order. *)
  let at =
    List.fold_left
      (fun acc (v, _) -> if List.mem v dim_loops then Some v else acc)
      None tiles
  in
  let at = match at with Some v -> v | None -> assert false in
  { Variant.array = g.Reuse.array; temp = "p_" ^ g.Reuse.array; at; dims }

(* Extent of loop [v] for a cache-level footprint evaluated across one
   iteration of the level's (tile-controlling) reuse loop: tiled loops
   contribute their tile size, untiled loops their full range — unroll
   factors do not bound a loop's range. *)
let extent_for ~reuse_loop ~tiles v =
  if v = reuse_loop then Poly.one
  else
    match List.assoc_opt v tiles with
    | Some param -> Poly.var param
    | None -> Poly.var "n"

(* One in-progress derivation branch. *)
type branch = {
  l_reg : string;
  working : string list;
  l1 : string option;  (* the L1 reuse loop, fixes the element order *)
  inner_controls : string list;  (* tiled loops whose controls go innermost *)
  mapped : (string * Ir.Aff.t list) list;
  tiles : (string * string) list;  (* accumulation order = original loop order *)
  unrolls : (string * string) list;
  copies : Variant.copy_spec list;
  constraints : Constr.t list;
  notes : Variant.level_note list;
}

let level_name machine level = (Machine.cache_level machine level).Machine.name

let upper = String.uppercase_ascii

(* Process one cache level, returning the expanded branch set. *)
let rec cache_level ctx level branches =
  if level >= Machine.levels ctx.machine then branches
  else
    cache_level ctx (level + 1)
      (List.concat_map (fun b -> expand_level ctx level b) branches)

and expand_level ctx level b =
  if b.working = [] then
    if level <= 1 then [ b ]
    else [ residency_branch ctx level b ]
  else begin
    let unexploited =
      List.filter (fun g -> not (List.mem (group_key g) b.mapped)) ctx.groups
    in
    let cands =
      match best_loops unexploited b.working with
      | [] -> best_loops ctx.groups b.working
      | c -> c
    in
    match cands with
    | [] -> [ b ]
    | _ ->
      List.concat_map
        (fun l_cache ->
          let scoring =
            if best_loops unexploited b.working <> [] then unexploited
            else ctx.groups
          in
          let retained = retained_groups scoring l_cache in
          if retained = [] then [ { b with working = List.filter (( <> ) l_cache) b.working } ]
          else level_branches ctx level b l_cache retained)
        cands
  end

(* Outer level reached with every loop already consumed (only possible
   when the hierarchy is deeper than the kernel's loop nest, e.g. a
   3-loop kernel on a 3-level machine): no further tiling is available,
   but the level still constrains the plan — the combined tiled working
   set of every reference group must stay resident in it.  Emit the
   level's row with that capacity constraint so deeper hierarchies are
   documented and bounded rather than silently ignored. *)
and residency_branch ctx level b =
  let lname = level_name ctx.machine level in
  let extent v =
    match List.assoc_opt v b.tiles with
    | Some param -> Poly.var param
    | None -> Poly.var "n"
  in
  let fp = Footprint.elements extent ctx.groups in
  let cap_constraint =
    Constr.Poly_le
      { poly = fp; bound = cache_bound ctx.machine level; what = lname ^ " capacity" }
  in
  let note =
    {
      Variant.level = lname;
      reuse_loop = "-";
      transf = "-";
      level_params = [];
      level_constraints = [ cap_constraint ];
    }
  in
  {
    b with
    constraints = b.constraints @ [ cap_constraint ];
    notes = b.notes @ [ note ];
  }

and level_branches ctx level b l_cache retained =
  let lname = level_name ctx.machine level in
  let working' = List.filter (( <> ) l_cache) b.working in
  let l1 = match b.l1 with None -> Some l_cache | some -> some in
  let inner_controls =
    if level >= 1 && List.mem_assoc l_cache b.tiles then
      b.inner_controls @ [ l_cache ]
    else b.inner_controls
  in
  let mapped = b.mapped @ List.map group_key retained in
  let retained_names =
    String.concat "," (List.map (fun g -> upper g.Reuse.array) retained)
  in
  (* --- tiling branch --- *)
  let tile_vars =
    List.filter
      (fun v ->
        v <> l_cache
        && (not (List.mem_assoc v b.tiles))
        && List.exists
             (fun g -> List.exists (fun s -> Ir.Aff.mem v s) g.Reuse.signature)
             retained)
      ctx.loops
  in
  let new_tiles = List.map (fun v -> (v, (Param.tile v).Param.name)) tile_vars in
  let make_cache_branch ~tiles ~with_copy =
    let extents =
      extent_for ~reuse_loop:l_cache ~tiles
    in
    let fp = Footprint.elements extents retained in
    let cap_constraint =
      Constr.Poly_le
        { poly = fp; bound = cache_bound ctx.machine level; what = lname ^ " capacity" }
    in
    let page_elems = ctx.machine.Machine.tlb.Machine.page_bytes / 8 in
    let copies_here =
      if with_copy then
        List.filter_map
          (fun g ->
            if copyable ctx ~tiles g ~reuse_loop:l_cache then
              Some (copy_spec_of ctx ~tiles g)
            else None)
          retained
      else []
    in
    let tlb_constraint =
      let runs =
        if copies_here <> [] then Poly.one
        else
          List.fold_left
            (fun acc g -> Poly.add acc (Footprint.group_runs extents g))
            Poly.zero retained
      in
      Constr.Pages_le
        {
          elems = fp;
          runs;
          page_elems;
          bound = ctx.machine.Machine.tlb.Machine.entries;
          what = lname ^ " TLB";
        }
    in
    let stride_constraints =
      if level > 0 then
        List.filter_map
          (fun (c : Variant.copy_spec) ->
            match c.Variant.dims with
            | { Variant.tiled_loop = v0; _ } :: _ :: _ -> (
              match List.assoc_opt v0 tiles with
              | Some param ->
                let prev = Machine.cache_level ctx.machine (level - 1) in
                Some
                  (Constr.Stride_not_multiple
                     {
                       elems = Poly.var param;
                       modulus =
                         prev.Machine.size_bytes / 8 / prev.Machine.assoc;
                       what = Printf.sprintf "copy %s stride" c.Variant.temp;
                     })
              | None -> None)
            | _ -> None)
          copies_here
      else []
    in
    let new_constraints = (cap_constraint :: tlb_constraint :: stride_constraints) in
    let transf =
      let tile_part =
        match List.filter (fun (v, _) -> List.mem_assoc v new_tiles) tiles with
        | [] -> if tiles = b.tiles then "-" else "Tile"
        | nt -> "Tile " ^ String.concat " and " (List.map (fun (v, _) -> upper v) nt)
      in
      let copy_part =
        match copies_here with
        | [] -> ""
        | cs ->
          ", Copy "
          ^ String.concat " and " (List.map (fun (c : Variant.copy_spec) -> upper c.Variant.array) cs)
      in
      if tile_part = "-" && copy_part = "" then "-" else tile_part ^ copy_part
    in
    let note =
      {
        Variant.level = lname;
        reuse_loop = l_cache;
        transf;
        level_params =
          List.filter_map
            (fun (v, p) -> if List.mem_assoc v new_tiles then Some p else None)
            tiles;
        level_constraints = new_constraints;
      }
    in
    {
      b with
      working = working';
      l1;
      inner_controls;
      mapped;
      tiles;
      copies = b.copies @ copies_here;
      constraints = b.constraints @ new_constraints;
      notes = b.notes @ [ note ];
    }
  in
  ignore retained_names;
  let tiled_all = b.tiles @ new_tiles in
  let tiling_branches =
    let with_copy = make_cache_branch ~tiles:tiled_all ~with_copy:true in
    let without_copy = make_cache_branch ~tiles:tiled_all ~with_copy:false in
    if with_copy.copies = b.copies then [ without_copy ]
    else [ with_copy; without_copy ]
  in
  (* --- no-new-tiling branch (outer cache levels only): the paper's
     small-arrays variant, whose constraint involves n --- *)
  let plain_branches =
    if level >= 1 && new_tiles <> [] then [ make_cache_branch ~tiles:b.tiles ~with_copy:false ]
    else []
  in
  tiling_branches @ plain_branches

let finalize ctx idx b =
  let element_order =
    match b.l1 with
    | None ->
      List.filter (( <> ) b.l_reg) ctx.loops @ [ b.l_reg ]
    | Some l1 ->
      (l1 :: List.filter (fun v -> v <> l1 && v <> b.l_reg) ctx.loops)
      @ [ b.l_reg ]
  in
  (* Control order: tiles in original loop order, with the controls of
     outer-level reuse loops moved innermost (the paper's
     tile-controlling-loop ordering for TLB behaviour). *)
  let tiles_ordered =
    let in_order =
      List.filter_map
        (fun v ->
          match List.assoc_opt v b.tiles with
          | Some p -> Some (v, p)
          | None -> None)
        ctx.loops
    in
    let inner, outer =
      List.partition (fun (v, _) -> List.mem v b.inner_controls) in_order
    in
    outer @ inner
  in
  {
    Variant.name = Printf.sprintf "%s_v%d" ctx.kernel.Kernels.Kernel.name idx;
    kernel = ctx.kernel;
    element_order;
    tiles = tiles_ordered;
    unrolls = b.unrolls;
    copies = b.copies;
    constraints = b.constraints;
    notes = b.notes;
  }

let register_branches ctx =
  let cands =
    match best_loops ~spatial_tiebreak:true ctx.groups ctx.loops with
    | [] -> [ List.nth ctx.loops (List.length ctx.loops - 1) ]
    | c -> c
  in
  List.filter_map
    (fun l_reg ->
      if not (Depend.innermost_legal ctx.deps ~order:ctx.loops l_reg) then None
      else begin
        let retained = retained_groups ctx.groups l_reg in
        (* Unroll-and-jam of an outer loop interleaves its iterations at
           the innermost level, so it is legal exactly when moving that
           loop innermost is (e.g. the time loop of a wavefront must not
           be jammed). *)
        let unroll_loops =
          List.filter
            (fun v ->
              v <> l_reg && Depend.innermost_legal ctx.deps ~order:ctx.loops v)
            ctx.loops
        in
        let unrolls =
          List.map (fun v -> (v, (Param.unroll v).Param.name)) unroll_loops
        in
        let chains =
          List.map
            (fun g ->
              { g with Reuse.members = Reuse.register_retainable g ~rotation:l_reg })
            retained
        in
        let extents v =
          match List.assoc_opt v unrolls with
          | Some p -> Poly.var p
          | None -> Poly.one
        in
        let fp = Footprint.elements extents chains in
        let reg_constraint =
          Constr.Poly_le
            {
              poly = fp;
              bound = Machine.available_registers ctx.machine;
              what = "registers";
            }
        in
        let note =
          {
            Variant.level = "Reg";
            reuse_loop = l_reg;
            transf =
              "Unroll-and-jam "
              ^ String.concat " and " (List.map upper unroll_loops);
            level_params = List.map snd unrolls;
            level_constraints = [ reg_constraint ];
          }
        in
        Some
          {
            l_reg;
            working = List.filter (( <> ) l_reg) ctx.loops;
            l1 = None;
            inner_controls = [];
            mapped = List.map group_key retained;
            tiles = [];
            unrolls;
            copies = [];
            constraints = [ reg_constraint ];
            notes = [ note ];
          }
      end)
    cands

let variants machine (kernel : Kernels.Kernel.t) =
  let program = kernel.Kernels.Kernel.program in
  let ctx =
    {
      machine;
      kernel;
      loops = Ir.Stmt.loop_vars program.Ir.Program.body;
      groups = Reuse.groups_of_body program.Ir.Program.body;
      deps = Depend.analyze program;
    }
  in
  let branches = cache_level ctx 0 (register_branches ctx) in
  (* Drop branches whose element order is illegal and deduplicate. *)
  let finalized = List.mapi (fun i b -> finalize ctx (i + 1) b) branches in
  let legal =
    List.filter
      (fun (v : Variant.t) ->
        Depend.permutation_legal ctx.deps v.Variant.element_order)
      finalized
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (v : Variant.t) ->
      let key =
        ( v.Variant.element_order,
          v.Variant.tiles,
          v.Variant.unrolls,
          List.map (fun (c : Variant.copy_spec) -> c.Variant.array) v.Variant.copies )
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    legal

(* --- transfer rescaling ---------------------------------------------- *)

(* Rescale a parameter point recorded at another (kernel size, machine)
   onto [variant] at size [n], through the variant's own phase-1
   constraints.  The donor's values are first clamped into the legal
   ranges; if the clamped point violates a capacity/TLB constraint (the
   donor machine was bigger, or its n smaller), tile sizes are scaled
   down by s/16 for s = 15..1 — tiles carry the cache footprint, so
   they shrink first — and only if no tile scale works are the unroll
   factors scaled down with them (the register footprint).  [None] when
   the donor point does not name every parameter or nothing feasible is
   found: transfer then contributes no seed rather than a broken one. *)
let rescale_point (v : Variant.t) ~n bindings =
  let params = Variant.params v in
  let named p = List.assoc_opt p.Param.name bindings in
  if List.exists (fun p -> named p = None) params then None
  else begin
    let clamp (p : Param.t) x =
      let lo, hi = Param.range p ~n in
      max lo (min hi x)
    in
    let base =
      List.map (fun p -> (p, clamp p (Option.get (named p)))) params
    in
    let point ~scale_unrolls s =
      List.map
        (fun ((p : Param.t), x) ->
          match p.Param.kind with
          | Param.Tile -> (p.Param.name, clamp p (max 1 (x * s / 16)))
          | Param.Unroll ->
            (p.Param.name, if scale_unrolls then clamp p (max 1 (x * s / 16)) else x))
        base
    in
    let rec scan ~scale_unrolls s =
      if s < 1 then None
      else
        let b = point ~scale_unrolls s in
        if Variant.feasible v ~n b then Some b
        else scan ~scale_unrolls (s - 1)
    in
    match scan ~scale_unrolls:false 16 with
    | Some b -> Some b
    | None -> scan ~scale_unrolls:true 16
  end
