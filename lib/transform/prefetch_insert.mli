(** Software-prefetch insertion.

    For every innermost loop that references the target array, one
    prefetch per distinct reference stream is inserted at the top of the
    body, addressing the element the stream will touch [distance]
    iterations ahead.  Streams are deduplicated per cache line along the
    fastest dimension: references differing only by a small constant in
    dimension 0 share one prefetch. *)

(** [apply p ~array ~distance ~line_elems] inserts prefetches.
    [distance] is in iterations of the innermost loop ([>= 1]).
    Returns the program unchanged when no innermost loop references
    [array]. *)
val apply :
  Ir.Program.t -> array:string -> distance:int -> line_elems:int -> Ir.Program.t

(** Remove every prefetch of [array] (used when the search finds no
    benefit). *)
val remove : Ir.Program.t -> array:string -> Ir.Program.t

(** Arrays referenced by compute statements in innermost loops — the
    prefetch candidates the search iterates over. *)
val candidates : Ir.Program.t -> string list

(** The stream-deduplication key of a reference: references with equal
    keys share one prefetch.  Exposed so the demand-trace cache
    ([Core.Demand_trace]) groups streams exactly as {!apply} does. *)
val stream_key : line_elems:int -> Ir.Reference.t -> Ir.Aff.t list * int list
