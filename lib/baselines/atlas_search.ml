type config = { nb : int; mu : int; nu : int; copy : bool }

let copy_threshold = 2

let base_variant ~copy =
  let n = Ir.Aff.var "n" in
  let copies =
    if copy then
      [
        {
          Core.Variant.array = "b";
          temp = "p_b";
          at = "j";
          dims =
            [
              { Core.Variant.tiled_loop = "k"; bound = n };
              { Core.Variant.tiled_loop = "j"; bound = n };
            ];
        };
        {
          Core.Variant.array = "a";
          temp = "p_a";
          at = "i";
          dims =
            [
              { Core.Variant.tiled_loop = "i"; bound = n };
              { Core.Variant.tiled_loop = "k"; bound = n };
            ];
        };
      ]
    else []
  in
  {
    Core.Variant.name = (if copy then "atlas_copy" else "atlas_nocopy");
    kernel = Kernels.Matmul.kernel;
    element_order = [ "j"; "i"; "k" ];
    tiles = [ ("k", "tk"); ("j", "tj"); ("i", "ti") ];
    unrolls = [ ("j", "uj"); ("i", "ui") ];
    copies;
    constraints = [];
    notes = [];
  }

let bindings_of c =
  [ ("tk", c.nb); ("tj", c.nb); ("ti", c.nb); ("ui", c.mu); ("uj", c.nu) ]

let program _kernel c =
  Core.Variant.instantiate (base_variant ~copy:c.copy) ~bindings:(bindings_of c)

let grid (machine : Machine.t) =
  let l1_elems = Machine.cache_capacity_elems machine 0 in
  let nb_max = min 80 (int_of_float (sqrt (float_of_int l1_elems))) in
  let rec nbs nb = if nb > nb_max then [] else nb :: nbs (nb + 4) in
  let regs = Machine.available_registers machine in
  let units = [ 1; 2; 3; 4; 6; 8 ] in
  List.concat_map
    (fun nb ->
      List.concat_map
        (fun mu ->
          List.filter_map
            (fun nu ->
              (* ATLAS's register-kernel feasibility rule:
                 mu*nu + mu + nu + latency slots must fit the file. *)
              if (mu * nu) + mu + nu + 2 <= regs && mu <= nb && nu <= nb then
                Some { nb; mu; nu; copy = false }
              else None)
            units)
        units)
    (nbs 16)

let decide_copy c ~n = { c with copy = n >= copy_threshold * c.nb }

(* An ATLAS point is a hand-shaped variant instantiation, so it measures
   through the engine like every other candidate; [check:false] because
   ATLAS applies no models — every grid point is executed. *)
let request c ~n ~mode =
  let c = decide_copy { c with nb = min c.nb n } ~n in
  Core.Engine.request ~check:false (base_variant ~copy:c.copy) ~n ~mode
    ~bindings:(bindings_of c)

let measure_at engine c ~n ~mode =
  match Core.Engine.evaluate engine (request c ~n ~mode) with
  | Some (ev : Core.Engine.evaluation) -> ev.Core.Engine.measurement
  | None -> failwith "Atlas_search.measure_at: infeasible configuration"

type result = {
  config : config;
  measurement : Core.Executor.measurement;
  points : int;
  seconds : float;
}

let tune engine ~n ~mode =
  let t0 = Core.Unix_time.now () in
  let candidates = grid (Core.Engine.machine engine) in
  (* The whole grid is independent: one engine batch, parallel when the
     engine has jobs > 1. *)
  let evaluations =
    Core.Engine.evaluate_batch engine
      (List.map (fun c -> request c ~n ~mode) candidates)
  in
  let best =
    List.fold_left2
      (fun acc c ev ->
        match ev with
        | None -> acc
        | Some (ev : Core.Engine.evaluation) -> (
          let m = ev.Core.Engine.measurement in
          match acc with
          | Some (_, best_m)
            when Core.Executor.cycles best_m <= Core.Executor.cycles m ->
            acc
          | _ -> Some (c, m)))
      None candidates evaluations
  in
  match best with
  | None -> failwith "Atlas_search.tune: empty grid"
  | Some (config, measurement) ->
    {
      config = decide_copy config ~n;
      measurement;
      points = List.length candidates;
      seconds = Core.Unix_time.now () -. t0;
    }
