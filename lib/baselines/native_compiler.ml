module Reuse = Analysis.Reuse
module Depend = Analysis.Depend

type profile = Tiling | Basic

let default_profile (m : Machine.t) =
  (* The paper's MIPSpro applied loop-nest tiling; Sun Workshop 6.1 did
     not (its Matrix Multiply averages 60 MFLOPS against 500+). *)
  if m.Machine.name = Machine.sgi_r10000.Machine.name then Tiling else Basic

(* Innermost loop choice: same locality reasoning as ECO's register level
   (this is standard loop-nest-optimizer behaviour). *)
let best_innermost program =
  let loops = Ir.Stmt.loop_vars program.Ir.Program.body in
  let groups = Reuse.groups_of_body program.Ir.Program.body in
  let deps = Depend.analyze program in
  let score v =
    (Reuse.loop_temporal_savings groups v * 1000)
    + Reuse.loop_spatial_score groups v
  in
  let legal = List.filter (Depend.innermost_legal deps ~order:loops) loops in
  match legal with
  | [] -> List.nth loops (List.length loops - 1)
  | l0 :: rest ->
    List.fold_left (fun acc v -> if score v > score acc then v else acc) l0 rest

let round_to m v = max m (v / m * m)

let compile ?profile (machine : Machine.t) (kernel : Kernels.Kernel.t) =
  let profile =
    match profile with Some p -> p | None -> default_profile machine
  in
  let program = kernel.Kernels.Kernel.program in
  let loops = Ir.Stmt.loop_vars program.Ir.Program.body in
  let inner = best_innermost program in
  let order = List.filter (( <> ) inner) loops @ [ inner ] in
  let deps = Depend.analyze program in
  let order =
    if Depend.permutation_legal deps order then order else loops
  in
  let p = Transform.Permute.apply program order in
  let outer_loops = List.filter (( <> ) inner) order in
  let p =
    match profile with
    | Basic -> p
    | Tiling ->
      (* Model-chosen square tiles filling half the L1 cache across the
         reused groups — no copying, no search. *)
      let groups = Reuse.groups_of_body program.Ir.Program.body in
      let ngroups = max 1 (List.length groups) in
      let cap = Machine.cache_capacity_elems machine 0 in
      let t =
        round_to (Machine.line_elems machine 0)
          (int_of_float (sqrt (float_of_int (cap / 2 / ngroups))))
      in
      let tiled =
        List.filter
          (fun v ->
            List.exists
              (fun g ->
                List.exists (fun s -> Ir.Aff.mem v s) g.Reuse.signature)
              groups)
          outer_loops
      in
      if tiled = [] then p
      else
        Transform.Tile.apply p
          (List.map
             (fun v -> { Transform.Tile.var = v; size = t; control = v ^ v })
             tiled)
          ~control_order:(List.map (fun v -> v ^ v) tiled)
  in
  let unroll_factor = match profile with Tiling -> 4 | Basic -> 2 in
  let p =
    List.fold_left
      (fun p v -> Transform.Unroll_jam.apply p v unroll_factor)
      p outer_loops
  in
  Transform.Scalar_replace.apply p

let profile_name = function Tiling -> "tiling" | Basic -> "basic"

let measure ?profile engine kernel ~n ~mode =
  let machine = Core.Engine.machine engine in
  let profile =
    match profile with Some p -> p | None -> default_profile machine
  in
  let p = compile ~profile machine kernel in
  (* Compilation is deterministic per (machine, kernel, profile), so that
     triple is a sound memo key for the measurement. *)
  let key =
    Printf.sprintf "native:%s:%s" (profile_name profile)
      kernel.Kernels.Kernel.name
  in
  Core.Engine.measure_program engine ~key kernel ~n ~mode p
