(** Model of a hand-tuned vendor BLAS (the paper's SCSL / SunPerf
    comparator): an expertly chosen {e fixed} parameterization of the
    blocked, copying, prefetching Matrix Multiply — the result of "days
    of a programmer's time" (paper §4.3) — with no runtime adaptivity,
    which is why isolated problem sizes can still go bad (the paper's
    vendor BLAS collapses at 2048). *)

(** The hand-chosen configuration for a machine (tuned offline on the
    simulated SGI and Sun; a generic fallback otherwise). *)
val bindings : Machine.t -> (string * int) list

(** Per-array prefetch distances the "vendor" chose. *)
val prefetch : Machine.t -> (string * int) list

val program : Machine.t -> Ir.Program.t

val measure :
  Core.Engine.t -> n:int -> mode:Core.Executor.mode -> Core.Executor.measurement
