(* The "vendor library" is the copying, register-blocked gemm shape with
   parameters fixed per machine.  The values below were hand-tuned
   offline against the simulated machines (an afternoon of a
   programmer's time, in the spirit of the original libraries). *)

let is machine name = (machine : Machine.t).Machine.name = name

let bindings machine =
  if is machine Machine.sgi_r10000.Machine.name then
    [ ("ui", 4); ("uj", 4); ("ti", 64); ("tj", 64); ("tk", 64) ]
  else if is machine Machine.ultrasparc_iie.Machine.name then
    [ ("ui", 4); ("uj", 4); ("ti", 32); ("tj", 32); ("tk", 32) ]
  else [ ("ui", 2); ("uj", 2); ("ti", 16); ("tj", 16); ("tk", 16) ]

let prefetch machine =
  if is machine Machine.sgi_r10000.Machine.name then [ ("p_b", 8); ("a", 8) ]
  else [ ("p_b", 8) ]

let variant =
  let n = Ir.Aff.var "n" in
  {
    Core.Variant.name = "vendor_blas";
    kernel = Kernels.Matmul.kernel;
    element_order = [ "j"; "i"; "k" ];
    tiles = [ ("k", "tk"); ("j", "tj"); ("i", "ti") ];
    unrolls = [ ("j", "uj"); ("i", "ui") ];
    copies =
      [
        {
          Core.Variant.array = "b";
          temp = "p_b";
          at = "j";
          dims =
            [
              { Core.Variant.tiled_loop = "k"; bound = n };
              { Core.Variant.tiled_loop = "j"; bound = n };
            ];
        };
      ];
    constraints = [];
    notes = [];
  }

let program machine =
  let p = Core.Variant.instantiate variant ~bindings:(bindings machine) in
  List.fold_left
    (fun p (array, distance) ->
      Transform.Prefetch_insert.apply p ~array ~distance
        ~line_elems:(Machine.line_elems machine 0))
    p (prefetch machine)

let measure engine ~n ~mode =
  let machine = Core.Engine.machine engine in
  (* The fixed vendor point is just another variant instantiation, so it
     shares the memo table with the searches; [check:false] because the
     vendor never consulted our models. *)
  match
    Core.Engine.evaluate engine
      (Core.Engine.request ~check:false ~prefetch:(prefetch machine) variant
         ~n ~mode ~bindings:(bindings machine))
  with
  | Some (ev : Core.Engine.evaluation) -> ev.Core.Engine.measurement
  | None -> failwith "Vendor_blas.measure: vendor point failed to instantiate"
