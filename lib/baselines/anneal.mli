(** Simulated annealing over a variant's parameter space — the class of
    AI-search tuners the paper's related work cites (Pike & Hilfinger's
    annealing tiler, genetic/ML tuners), which "incorporate little if
    any domain knowledge to limit the search space".

    Moves perturb one parameter by a factor of two or +-1; worse moves
    are accepted with probability [exp (-delta / temperature)] and the
    temperature decays geometrically.  Deterministic for a given seed;
    the evaluation budget is capped for point-for-point comparison with
    the guided search.  The walk is inherently serial, but measuring
    through the engine means revisited points cost nothing. *)

type result = {
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
  evaluated : int;
  accepted : int;  (** accepted moves, including uphill ones *)
}

val tune :
  Core.Engine.t ->
  n:int ->
  mode:Core.Executor.mode ->
  points:int ->
  seed:int ->
  Core.Variant.t ->
  result option
