(** Unguided random sampling over a variant's parameter space — the
    strawman the paper's related work contrasts with model-guided search
    (AI-search tuners "incorporate little if any domain knowledge").
    Points are sampled uniformly (tiles log-uniformly) and constraint
    checking is the only model knowledge used; the measurement budget is
    capped so it can be compared point-for-point with the guided
    search. *)

type result = {
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
  evaluated : int;  (** points actually executed *)
}

(** [tune engine ~n ~mode ~points ~seed variant] evaluates at most
    [points] random feasible parameter settings through the engine (one
    batch: memoized, parallel at [jobs > 1]) and returns the best
    (deterministic for a given [seed], at any [jobs]). *)
val tune :
  Core.Engine.t ->
  n:int ->
  mode:Core.Executor.mode ->
  points:int ->
  seed:int ->
  Core.Variant.t ->
  result option
