type result = {
  variant : Core.Variant.t;
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
}

let optimize engine kernel ~n ~mode =
  let machine = Core.Engine.machine engine in
  let variants = Core.Derive.variants machine kernel in
  let rec pick = function
    | [] -> None
    | v :: rest -> (
      match Core.Search.model_point machine ~n v with
      | None -> pick rest
      | Some bindings -> (
        match
          Core.Search.measure_point engine ~n ~mode v ~bindings ~prefetch:[]
        with
        | Some o ->
          Some { variant = v; bindings; measurement = o.Core.Search.measurement }
        | None -> pick rest))
  in
  pick variants
