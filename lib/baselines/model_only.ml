type result = {
  variant : Core.Variant.t;
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
}

let optimize engine kernel ~n ~mode =
  let machine = Core.Engine.machine engine in
  let variants = Core.Derive.variants machine kernel in
  (* Rank every variant's model-initial point analytically, then walk
     the ranking: the best-predicted point is measured once; if its
     measurement fails (timeout, quarantine, malformed program) the
     model's next choice is tried. *)
  let ranked =
    List.sort
      (fun (_, _, s1) (_, _, s2) -> compare s1 s2)
      (List.filter_map
         (fun v ->
           match Core.Search.model_point machine ~n v with
           | None -> None
           | Some bindings ->
             let s =
               match
                 Core.Predict.score_point machine v ~n ~bindings ~prefetch:[]
               with
               | s when Float.is_nan s -> infinity
               | s -> s
               | exception _ -> infinity
             in
             Some (v, bindings, s))
         variants)
  in
  let rec pick = function
    | [] -> None
    | (v, bindings, _) :: rest -> (
      match
        Core.Search.measure_point engine ~n ~mode v ~bindings ~prefetch:[]
      with
      | Some o ->
        Some { variant = v; bindings; measurement = o.Core.Search.measurement }
      | None -> pick rest)
  in
  pick ranked
