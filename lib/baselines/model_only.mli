(** Purely model-driven optimization: phase 1's best variant with the
    model's initial parameter point and {e zero} empirical experiments —
    the approach whose adequacy Yotov et al. debated and which the
    paper's hybrid is designed to beat.  Used by the ablation
    experiment.  Its single measurement still goes through the engine,
    so a shared engine lets other strategies reuse it. *)

type result = {
  variant : Core.Variant.t;
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
}

(** Picks the first derived variant with a feasible model point after
    static ranking (the triage model ranks by predicted footprint
    balance — here: derivation order, which lists copying variants
    first). *)
val optimize :
  Core.Engine.t -> Kernels.Kernel.t -> n:int -> mode:Core.Executor.mode -> result option
