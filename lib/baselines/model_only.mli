(** Purely model-driven optimization: phase 1's best variant with the
    model's initial parameter point and {e zero} empirical experiments —
    the approach whose adequacy Yotov et al. debated and which the
    paper's hybrid is designed to beat.  Used by the ablation
    experiment.  Its single measurement still goes through the engine,
    so a shared engine lets other strategies reuse it. *)

type result = {
  variant : Core.Variant.t;
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
}

(** Ranks every derived variant's model-initial point with the
    analytical model ({!Core.Predict.score_point}) and measures the
    best-predicted one — falling back down the ranking if a measurement
    fails.  Unrankable points (model error) sort last rather than being
    dropped. *)
val optimize :
  Core.Engine.t -> Kernels.Kernel.t -> n:int -> mode:Core.Executor.mode -> result option
