type result = {
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
  evaluated : int;
  accepted : int;
}

let lcg state =
  let state = ((state * 0x5DEECE66D) + 0xB) land 0x3FFFFFFFFFFF in
  (state, state lsr 17)

let tune engine ~n ~mode ~points ~seed variant =
  let params = Core.Variant.params variant in
  if params = [] then None
  else begin
    let state = ref (seed lxor 0x51ED2701) in
    let next_int bound =
      let s, v = lcg !state in
      state := s;
      v mod bound
    in
    let next_float () = float_of_int (next_int 1_000_000) /. 1_000_000.0 in
    let clamp (p : Core.Param.t) v =
      match p.Core.Param.kind with
      | Core.Param.Unroll -> max 1 (min 16 v)
      | Core.Param.Tile -> max 1 (min n v)
    in
    (* Annealing is inherently sequential — each move's accept/reject
       steers the next — so it evaluates point by point; the engine
       still prunes infeasible moves and serves revisited points from
       its memo table. *)
    let measure bindings =
      match
        Core.Engine.evaluate engine (Core.Engine.request variant ~n ~mode ~bindings)
      with
      | Some (ev : Core.Engine.evaluation) -> Some ev.Core.Engine.measurement
      | None -> None
    in
    (* Start from the all-twos point (annealers need *some* start; this
       one encodes no cache knowledge). *)
    let start = List.map (fun (p : Core.Param.t) -> (p.Core.Param.name, 2)) params in
    match measure start with
    | None -> None
    | Some m0 ->
      let evaluated = ref 1 and accepted = ref 0 in
      let attempts = ref 0 in
      let current = ref (start, Core.Executor.cycles m0) in
      let best = ref (start, m0) in
      let temperature = ref (Core.Executor.cycles m0 *. 0.05) in
      while !evaluated < points && !attempts < points * 50 do
        incr attempts;
        let bindings, cycles = !current in
        (* Perturb one parameter. *)
        let idx = next_int (List.length params) in
        let p = List.nth params idx in
        let v = List.assoc p.Core.Param.name bindings in
        let v' =
          clamp p
            (match next_int 4 with
            | 0 -> v * 2
            | 1 -> max 1 (v / 2)
            | 2 -> v + 1
            | _ -> v - 1)
        in
        let cand =
          List.map
            (fun (k, old) -> if k = p.Core.Param.name then (k, v') else (k, old))
            bindings
        in
        (match measure cand with
        | None -> ()
        | Some m ->
          incr evaluated;
          let c = Core.Executor.cycles m in
          let delta = c -. cycles in
          if delta < 0.0 || next_float () < exp (-.delta /. !temperature) then begin
            incr accepted;
            current := (cand, c);
            let _, best_m = !best in
            if c < Core.Executor.cycles best_m then best := (cand, m)
          end);
        temperature := !temperature *. 0.95
      done;
      let bindings, measurement = !best in
      Some { bindings; measurement; evaluated = !evaluated; accepted = !accepted }
  end
