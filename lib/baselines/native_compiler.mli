(** Model of a classical optimizing ("native") compiler, the paper's
    [Native] comparator.

    Two profiles, mirroring the two vendor compilers of the paper:
    - [Tiling] (MIPSpro-like): picks a good static loop order, applies
      model-chosen square tiling (no search), unroll-and-jam with fixed
      factors, and scalar replacement — but {e no copying and no
      padding}, which is why its performance collapses at
      conflict-pathological sizes (paper §4.1);
    - [Basic] (Workshop-like): loop order, modest inner unrolling and
      scalar replacement only.

    No empirical feedback is used anywhere. *)

type profile = Tiling | Basic

(** The profile the paper's corresponding vendor compiler had. *)
val default_profile : Machine.t -> profile

(** Compile the kernel: returns the optimized program.  Deterministic;
    independent of the problem size (like a real static compiler). *)
val compile : ?profile:profile -> Machine.t -> Kernels.Kernel.t -> Ir.Program.t

(** Convenience: compile and measure at size [n].  The measurement is
    memoized in the engine (compilation is deterministic, so the
    (machine, kernel, profile) triple keys it). *)
val measure :
  ?profile:profile ->
  Core.Engine.t ->
  Kernels.Kernel.t ->
  n:int ->
  mode:Core.Executor.mode ->
  Core.Executor.measurement
