type result = {
  bindings : (string * int) list;
  measurement : Core.Executor.measurement;
  evaluated : int;
}

(* Small deterministic LCG so results are reproducible without touching
   the global Random state. *)
let lcg state =
  let state = ((state * 0x5DEECE66D) + 0xB) land 0x3FFFFFFFFFFF in
  (state, state lsr 17)

let tune engine ~n ~mode ~points ~seed variant =
  let params = Core.Variant.params variant in
  let state = ref (seed lxor 0x9E3779B9) in
  let next_int bound =
    let s, v = lcg !state in
    state := s;
    1 + (v mod bound)
  in
  let sample_param (p : Core.Param.t) =
    match p.Core.Param.kind with
    | Core.Param.Unroll -> (p.Core.Param.name, next_int 8)
    | Core.Param.Tile ->
      (* log-uniform in [1, n] *)
      let max_log = int_of_float (Float.log2 (float_of_int (max 2 n))) in
      let magnitude = 1 lsl next_int max_log in
      (p.Core.Param.name, max 1 (min n (next_int magnitude)))
  in
  (* Candidate generation only consumes the RNG — it never looks at a
     measurement — so the whole sample is drawn up front and evaluated
     as one independent batch (parallel when the engine has jobs > 1).
     The set of points, and hence the winner, is identical to the old
     sample-then-measure loop. *)
  let rec draw chosen drawn attempts =
    if drawn >= points || attempts >= points * 50 then List.rev chosen
    else
      let bindings = List.map sample_param params in
      if Core.Variant.feasible variant ~n bindings then
        draw (bindings :: chosen) (drawn + 1) (attempts + 1)
      else draw chosen drawn (attempts + 1)
  in
  let candidates = draw [] 0 0 in
  let evaluations =
    Core.Engine.evaluate_batch engine
      (List.map
         (fun bindings -> Core.Engine.request variant ~n ~mode ~bindings)
         candidates)
  in
  let best =
    List.fold_left2
      (fun acc bindings ev ->
        match ev with
        | None -> acc
        | Some (ev : Core.Engine.evaluation) -> (
          let c = Core.Executor.cycles ev.Core.Engine.measurement in
          match acc with
          | Some (_, _, c') when c' <= c -> acc
          | _ -> Some (bindings, ev.Core.Engine.measurement, c)))
      None candidates evaluations
  in
  match best with
  | Some (bindings, measurement, _) ->
    Some { bindings; measurement; evaluated = List.length candidates }
  | None -> None
