(** An ATLAS-style pure-empirical tuner for Matrix Multiply, the paper's
    [ATLAS] comparator.

    Fixed code shape (the classic ATLAS gemm): square NB×NB cache
    blocking of all three loops, a register kernel of [mu]×[nu]
    unroll-and-jam with K innermost, and — for problems above the copy
    threshold — A- and B-tiles copied into contiguous buffers (ATLAS
    skips the copy for small problems, the cause of its small-size
    fluctuation in the paper's Figure 4).

    Unlike ECO there are {e no models}: the tuner sweeps an exhaustive
    grid of (NB, mu, nu) and keeps the empirically best, which is why it
    needs several times more search points (paper §4.3).  The grid is
    fully independent, so it evaluates as one engine batch — parallel
    when the engine has [jobs > 1], memo-shared with any other strategy
    on the same engine. *)

type config = {
  nb : int;
  mu : int;
  nu : int;
  copy : bool;
}

(** The parameter grid swept (exposed for the search-cost experiment). *)
val grid : Machine.t -> config list

(** Build the gemm program for a configuration.  [copy] must only be set
    when the problem is large enough for full tiles (n >= nb). *)
val program : Kernels.Kernel.t -> config -> Ir.Program.t

(** [copy_threshold] — ATLAS copies only when [n] is at least this
    multiple of NB. *)
val copy_threshold : int

type result = {
  config : config;
  measurement : Core.Executor.measurement;
  points : int;  (** grid points evaluated *)
  seconds : float;  (** wall-clock time spent searching *)
}

(** Run the full empirical sweep at size [n] and return the winner. *)
val tune : Core.Engine.t -> n:int -> mode:Core.Executor.mode -> result

(** Re-measure a tuned configuration at another size, applying the
    size-dependent copy decision. *)
val measure_at :
  Core.Engine.t -> config -> n:int -> mode:Core.Executor.mode -> Core.Executor.measurement
