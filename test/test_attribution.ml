(* Per-array miss attribution tests. *)

module Matmul = Kernels.Matmul
module Kernel = Kernels.Kernel

let tiny_geom =
  { Machine.name = "t"; size_bytes = 1024; line_bytes = 32; assoc = 2; hit_cycles = 0 }

let test_region_routing () =
  let t =
    Memsim.Attribution.create tiny_geom
      ~regions:[ ("x", 0, 1024); ("y", 4096, 1024) ]
  in
  Memsim.Attribution.access t 0;
  Memsim.Attribution.access t 100;
  Memsim.Attribution.access t 4096;
  Memsim.Attribution.access t 9999;
  (* outside both *)
  match Memsim.Attribution.report t with
  | [ ("x", sx); ("y", sy); ("<other>", so) ] ->
    Alcotest.(check int) "x accesses" 2 sx.Memsim.Attribution.accesses;
    Alcotest.(check int) "y accesses" 1 sy.Memsim.Attribution.accesses;
    Alcotest.(check int) "other accesses" 1 so.Memsim.Attribution.accesses
  | other ->
    Alcotest.failf "unexpected report shape (%d entries)" (List.length other)

let test_miss_attribution () =
  let t = Memsim.Attribution.create tiny_geom ~regions:[ ("x", 0, 4096) ] in
  Memsim.Attribution.access t 0;
  Memsim.Attribution.access t 8;
  (* same line: hit *)
  match Memsim.Attribution.report t with
  | [ ("x", s) ] ->
    Alcotest.(check int) "accesses" 2 s.Memsim.Attribution.accesses;
    Alcotest.(check int) "one miss" 1 s.Memsim.Attribution.misses
  | _ -> Alcotest.fail "unexpected report"

let test_matmul_per_array () =
  let n = 24 in
  let report =
    Memsim.Attribution.of_program Machine.sgi_r10000 ~level:0
      ~params:[ ("n", n) ]
      Matmul.kernel.Kernel.program
  in
  let get name = List.assoc name report in
  (* Loop order (k,j,i): per iteration one access each to a and b, two
     to c. *)
  Alcotest.(check int) "a accesses" (n * n * n)
    (get "a").Memsim.Attribution.accesses;
  Alcotest.(check int) "b accesses" (n * n * n)
    (get "b").Memsim.Attribution.accesses;
  Alcotest.(check int) "c accesses" (2 * n * n * n)
    (get "c").Memsim.Attribution.accesses;
  Alcotest.(check bool) "no stray accesses" true
    (not (List.mem_assoc "<other>" report))

let test_copy_shifts_misses_to_temp () =
  (* After copying B into a contiguous temp, B's misses drop to roughly
     one sweep per tile and the temp absorbs the reuse traffic. *)
  let open Ir in
  let p = Matmul.kernel.Kernel.program in
  let tiled =
    Transform.Tile.apply p
      [
        { Transform.Tile.var = "j"; size = 8; control = "jj" };
        { Transform.Tile.var = "k"; size = 8; control = "kk" };
      ]
      ~control_order:[ "kk"; "jj" ]
  in
  let copied =
    Transform.Copy_opt.apply tiled ~array:"b" ~temp:"p_b" ~at:"jj"
      ~dims:
        [
          { Transform.Copy_opt.base = Aff.var "kk"; extent = 8; bound = Aff.var "n" };
          { Transform.Copy_opt.base = Aff.var "jj"; extent = 8; bound = Aff.var "n" };
        ]
  in
  let report =
    Memsim.Attribution.of_program Machine.generic_small ~level:0
      ~params:[ ("n", 48) ] copied
  in
  let b = List.assoc "b" report and p_b = List.assoc "p_b" report in
  Alcotest.(check bool) "b read once per tile element" true
    (b.Memsim.Attribution.accesses < p_b.Memsim.Attribution.accesses);
  Alcotest.(check bool) "temp has accesses" true
    (p_b.Memsim.Attribution.accesses > 0)

(* --- anneal --- *)

let variant () = List.hd (Core.Derive.variants Machine.sgi_r10000 Matmul.kernel)
let fast = Core.Executor.Budget 20_000

let test_anneal_runs () =
  match
    Baselines.Anneal.tune
      (Core.Engine.create Machine.sgi_r10000)
      ~n:32 ~mode:fast ~points:8 ~seed:3 (variant ())
  with
  | Some r ->
    Alcotest.(check bool) "evaluated some points" true
      (r.Baselines.Anneal.evaluated >= 2);
    Alcotest.(check bool) "feasible" true
      (Core.Variant.feasible (variant ()) ~n:32 r.Baselines.Anneal.bindings)
  | None -> Alcotest.fail "no anneal result"

let test_anneal_deterministic () =
  let run () =
    match
      Baselines.Anneal.tune
        (Core.Engine.create Machine.sgi_r10000)
        ~n:32 ~mode:fast ~points:6 ~seed:5 (variant ())
    with
    | Some r -> r.Baselines.Anneal.bindings
    | None -> []
  in
  Alcotest.(check bool) "deterministic" true (run () = run ())

let suite =
  [
    Alcotest.test_case "region routing" `Quick test_region_routing;
    Alcotest.test_case "miss attribution" `Quick test_miss_attribution;
    Alcotest.test_case "matmul per-array accesses" `Quick test_matmul_per_array;
    Alcotest.test_case "copy shifts misses to temp" `Quick
      test_copy_shifts_misses_to_temp;
    Alcotest.test_case "anneal: runs" `Quick test_anneal_runs;
    Alcotest.test_case "anneal: deterministic" `Quick test_anneal_deterministic;
  ]
