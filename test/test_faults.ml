(* Tests for the fault-injection plan and the engine's resilient
   measurement protocol: seeded determinism, retry/quarantine, robust
   aggregation, fast-path crash degradation and checkpoint recovery. *)

module Matmul = Kernels.Matmul

let sgi = Machine.sgi_r10000
let fast = Core.Executor.Budget 30_000

let variant () = List.hd (Core.Derive.variants sgi Matmul.kernel)

let some_point engine v ~n =
  match Core.Search.model_point (Core.Engine.machine engine) ~n v with
  | Some bindings -> bindings
  | None -> Alcotest.fail "no model point for test variant"

(* --- the plan itself: pure, seeded, robust aggregation --- *)

let test_draw_deterministic () =
  let t = Faults.make ~seed:9 ~noise:0.1 ~transient:0.3 ~hang:0.1 () in
  for trial = 0 to 20 do
    for attempt = 0 to 3 do
      let a = Faults.draw t ~key:"k1|x" ~trial ~attempt in
      let b = Faults.draw t ~key:"k1|x" ~trial ~attempt in
      Alcotest.(check bool) "same args, same fate" true (a = b)
    done
  done;
  (* Distinct keys see independent streams: at these rates they cannot
     all agree across 84 draws. *)
  let differs = ref false in
  for trial = 0 to 20 do
    for attempt = 0 to 3 do
      if
        Faults.draw t ~key:"k1|x" ~trial ~attempt
        <> Faults.draw t ~key:"k2|y" ~trial ~attempt
      then differs := true
    done
  done;
  Alcotest.(check bool) "distinct keys, distinct streams" true !differs

let test_spec_roundtrip () =
  let t =
    Faults.make ~seed:5 ~noise:0.05 ~transient:0.02 ~hang:0.01 ~outlier:0.01
      ~crash:0.005 ()
  in
  Alcotest.(check bool) "roundtrip" true (Faults.of_spec (Faults.to_spec t) = t);
  Alcotest.(check string) "none" "none" (Faults.to_spec Faults.none);
  Alcotest.(check bool) "none parses" true (Faults.of_spec "none" = Faults.none);
  (match Faults.of_spec "transient=2" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted out-of-range rate");
  match Faults.of_spec "nose=0.1" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted unknown key"

let test_aggregate_trims_outlier () =
  Alcotest.(check (float 1e-9)) "median odd" 100.0
    (Faults.median [| 99.0; 100.0; 101.0 |]);
  Alcotest.(check (float 1e-9)) "median even" 100.5
    (Faults.median [| 99.0; 100.0; 101.0; 102.0 |]);
  (* A single corrupted sample must not reach the aggregate. *)
  let agg = Faults.aggregate [| 100.0; 101.0; 99.0; 100.0; 5000.0 |] in
  Alcotest.(check bool) "trimmed mean ignores the outlier" true
    (agg >= 99.0 && agg <= 101.0);
  Alcotest.(check (float 1e-9)) "spread of constant" 0.0
    (Faults.rel_spread [| 7.0; 7.0; 7.0 |]);
  Alcotest.(check (float 1e-9)) "spread" 0.02
    (Faults.rel_spread [| 99.0; 100.0; 101.0 |])

(* --- determinism of the full search under injected faults --- *)

let noisy_tune ~jobs =
  let faults = Faults.make ~seed:13 ~noise:0.05 ~transient:0.05 ~hang:0.02 () in
  let protocol = { Core.Engine.default_protocol with trials = 5 } in
  let engine = Core.Engine.create ~jobs ~faults ~protocol sgi in
  let r = Core.Eco.optimize_with ~mode:fast engine Matmul.kernel ~n:32 in
  let o = r.Core.Eco.outcome in
  let s = Core.Engine.stats engine in
  ( o.Core.Search.variant.Core.Variant.name,
    o.Core.Search.bindings,
    o.Core.Search.prefetch,
    Core.Executor.cycles r.Core.Eco.measurement,
    (s.Core.Engine.fresh, s.Core.Engine.retries, s.Core.Engine.failed) )

let test_faulty_search_jobs_deterministic () =
  let serial = noisy_tune ~jobs:1 in
  let parallel = noisy_tune ~jobs:4 in
  Alcotest.(check bool)
    "jobs=1 and jobs=4 under faults: same answer, same telemetry" true
    (serial = parallel)

let test_zero_rate_plan_is_transparent () =
  (* An active plan with every rate at zero runs the whole protocol
     (draws, trials, aggregation, adaptive stop) yet must reproduce the
     plain engine bit for bit. *)
  let plain = Core.Engine.create sgi in
  let r0 = Core.Eco.optimize_with ~mode:fast plain Matmul.kernel ~n:32 in
  let protocol = { Core.Engine.default_protocol with trials = 3 } in
  let guarded =
    Core.Engine.create ~faults:(Faults.make ~seed:1 ()) ~protocol sgi
  in
  let r1 = Core.Eco.optimize_with ~mode:fast guarded Matmul.kernel ~n:32 in
  Alcotest.(check (float 0.0)) "identical best cycles"
    (Core.Executor.cycles r0.Core.Eco.measurement)
    (Core.Executor.cycles r1.Core.Eco.measurement);
  Alcotest.(check bool) "identical best point" true
    (r0.Core.Eco.outcome.Core.Search.bindings
     = r1.Core.Eco.outcome.Core.Search.bindings
    && r0.Core.Eco.outcome.Core.Search.prefetch
       = r1.Core.Eco.outcome.Core.Search.prefetch);
  let s0 = Core.Engine.stats plain and s1 = Core.Engine.stats guarded in
  Alcotest.(check int) "same fresh evaluations" s0.Core.Engine.fresh
    s1.Core.Engine.fresh;
  (* Identical samples stop every candidate's trials at the minimum. *)
  Alcotest.(check int) "every candidate stopped early" s1.Core.Engine.fresh
    s1.Core.Engine.early_stops;
  Alcotest.(check int) "no retries" 0 s1.Core.Engine.retries

(* --- retry, quarantine, timeout --- *)

let eval_once ?(protocol = Core.Engine.default_protocol) faults =
  let engine = Core.Engine.create ~faults ~protocol sgi in
  let v = variant () in
  let bindings = some_point engine v ~n:32 in
  let req = Core.Engine.request v ~n:32 ~mode:fast ~bindings in
  (engine, req, Core.Engine.evaluate engine req)

let test_persistent_failure_quarantined () =
  let faults = Faults.make ~seed:2 ~transient:1.0 () in
  let engine, req, ev = eval_once faults in
  Alcotest.(check bool) "no measurement" true (ev = None);
  (match Core.Engine.explain engine req with
  | `Failed Core.Engine.Quarantined -> ()
  | _ -> Alcotest.fail "expected a quarantined candidate");
  let s = Core.Engine.stats engine in
  Alcotest.(check int) "exhausted the retry budget"
    Core.Engine.default_protocol.Core.Engine.max_retries s.Core.Engine.retries;
  Alcotest.(check int) "counted as quarantined" 1
    s.Core.Engine.failed_quarantined;
  (* The quarantine is memoized: asking again is a memo hit, not a
     re-measurement. *)
  Alcotest.(check bool) "still no measurement" true
    (Core.Engine.evaluate engine req = None);
  let s' = Core.Engine.stats engine in
  Alcotest.(check int) "served from memo" 1 s'.Core.Engine.hits;
  Alcotest.(check int) "no further retries" s.Core.Engine.retries
    s'.Core.Engine.retries

let test_no_retry_budget_reports_transient () =
  let faults = Faults.make ~seed:2 ~transient:1.0 () in
  let protocol = { Core.Engine.default_protocol with max_retries = 0 } in
  let engine, req, ev = eval_once ~protocol faults in
  Alcotest.(check bool) "no measurement" true (ev = None);
  match Core.Engine.explain engine req with
  | `Failed Core.Engine.Transient -> ()
  | _ -> Alcotest.fail "expected the bare transient reason"

let test_cycle_cap_times_out () =
  let protocol = { Core.Engine.default_protocol with cycle_cap = 1.0 } in
  let engine, req, ev = eval_once ~protocol Faults.none in
  Alcotest.(check bool) "no measurement" true (ev = None);
  (match Core.Engine.explain engine req with
  | `Failed Core.Engine.Timeout -> ()
  | _ -> Alcotest.fail "expected a timeout");
  Alcotest.(check int) "counted as timeout" 1
    (Core.Engine.stats engine).Core.Engine.failed_timeout

let test_outlier_absorbed () =
  (* Corrupted 25x measurements must be trimmed out of the aggregate:
     the measured cycles stay within noise of the clean value. *)
  let clean_engine = Core.Engine.create sgi in
  let v = variant () in
  let bindings = some_point clean_engine v ~n:32 in
  let req = Core.Engine.request v ~n:32 ~mode:fast ~bindings in
  let clean =
    match Core.Engine.evaluate clean_engine req with
    | Some ev -> Core.Executor.cycles ev.Core.Engine.measurement
    | None -> Alcotest.fail "clean evaluation failed"
  in
  let faults = Faults.make ~seed:4 ~noise:0.01 ~outlier:0.1 () in
  let protocol =
    { Core.Engine.default_protocol with trials = 15; min_trials = 15 }
  in
  let engine = Core.Engine.create ~faults ~protocol sgi in
  match Core.Engine.evaluate engine req with
  | None -> Alcotest.fail "faulty evaluation failed"
  | Some ev ->
    let c = Core.Executor.cycles ev.Core.Engine.measurement in
    Alcotest.(check bool) "aggregate near the clean value" true
      (abs_float (c -. clean) /. clean < 0.05)

(* --- fast-path crash degradation --- *)

let test_crash_degrades_to_closures () =
  let faults = Faults.make ~seed:6 ~crash:1.0 () in
  let crashy = Core.Engine.create ~path:Core.Executor.Fast ~faults sgi in
  let reference = Core.Engine.create ~path:Core.Executor.Closures sgi in
  let v = variant () in
  let bindings = some_point crashy v ~n:32 in
  let req = Core.Engine.request v ~n:32 ~mode:fast ~bindings in
  let cycles engine =
    match Core.Engine.evaluate engine req with
    | Some ev -> Core.Executor.cycles ev.Core.Engine.measurement
    | None -> Alcotest.fail "evaluation failed"
  in
  Alcotest.(check (float 0.0)) "crashed Fast equals Closures"
    (cycles reference) (cycles crashy);
  Alcotest.(check bool) "fallback counted" true
    ((Core.Engine.stats crashy).Core.Engine.vm_fallbacks >= 1)

(* --- checkpointing: kill, resume, equivalence --- *)

let ck_tune engine = Core.Eco.optimize_with ~mode:fast engine Matmul.kernel ~n:32

let answer (r : Core.Eco.result) =
  let o = r.Core.Eco.outcome in
  ( o.Core.Search.variant.Core.Variant.name,
    o.Core.Search.bindings,
    o.Core.Search.prefetch,
    Core.Executor.cycles r.Core.Eco.measurement )

let test_checkpoint_kill_resume_equivalence () =
  let file = Filename.temp_file "eco_ck" ".bin" in
  let tag = "test|matmul|n=32" in
  (* A run killed mid-search (after 25 fresh evaluations, checkpointing
     every 4)... *)
  let a = Core.Engine.create sgi in
  Core.Engine.set_checkpoint a ~every:4 ~tag file;
  Core.Engine.set_eval_limit a 25;
  (match ck_tune a with
  | exception Core.Engine.Eval_limit_reached 25 -> ()
  | _ -> Alcotest.fail "expected the injected kill");
  (* ...must resume from its checkpoint and finish with the exact
     answer and telemetry of an uninterrupted run. *)
  let b = Core.Engine.create sgi in
  Core.Engine.set_checkpoint b ~every:4 ~tag file;
  (match Core.Engine.load_checkpoint b ~tag file with
  | None -> Alcotest.fail "checkpoint did not load"
  | Some resume ->
    Alcotest.(check bool) "resumed a nonempty memo" true
      (resume.Core.Engine.resumed_entries > 0);
    Alcotest.(check bool) "kept only complete checkpoints" true
      (resume.Core.Engine.resumed_fresh <= 24));
  let resumed = ck_tune b in
  let c = Core.Engine.create sgi in
  let uninterrupted = ck_tune c in
  Alcotest.(check bool) "resumed answer = uninterrupted answer" true
    (answer resumed = answer uninterrupted);
  let totals e =
    let s = Core.Engine.stats e in
    ( s.Core.Engine.fresh,
      s.Core.Engine.pruned,
      s.Core.Engine.failed,
      s.Core.Engine.simulated_cycles )
  in
  (* The resumed engine's lifetime totals (restored + finished) match
     the uninterrupted run's: no evaluation was lost or repeated. *)
  Alcotest.(check bool) "telemetry adds up across the kill" true
    (totals b = totals c);
  Sys.remove file

let test_checkpoint_tag_mismatch_refuses () =
  let file = Filename.temp_file "eco_ck" ".bin" in
  let a = Core.Engine.create sgi in
  Core.Engine.set_checkpoint a ~every:4 ~tag:"run-A" file;
  ignore (ck_tune a);
  Core.Engine.checkpoint_now a;
  let b = Core.Engine.create sgi in
  (match Core.Engine.load_checkpoint b ~tag:"run-B" file with
  | exception Core.Engine.Checkpoint_mismatch _ -> ()
  | _ -> Alcotest.fail "loaded a checkpoint from a different run");
  Sys.remove file

let test_checkpoint_corrupt_file_ignored () =
  let file = Filename.temp_file "eco_ck" ".bin" in
  let oc = open_out_bin file in
  output_string oc "not a checkpoint at all";
  close_out oc;
  let b = Core.Engine.create sgi in
  Alcotest.(check bool) "corrupt file means a fresh start" true
    (Core.Engine.load_checkpoint b ~tag:"t" file = None);
  Alcotest.(check bool) "missing file means a fresh start" true
    (Core.Engine.load_checkpoint b ~tag:"t" "/nonexistent/ck.bin" = None);
  Sys.remove file

let suite =
  [
    Alcotest.test_case "plan: draws are pure" `Quick test_draw_deterministic;
    Alcotest.test_case "plan: spec roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "plan: aggregation trims outliers" `Quick
      test_aggregate_trims_outlier;
    Alcotest.test_case "search under faults: jobs-deterministic" `Quick
      test_faulty_search_jobs_deterministic;
    Alcotest.test_case "zero-rate plan is transparent" `Quick
      test_zero_rate_plan_is_transparent;
    Alcotest.test_case "persistent failure is quarantined" `Quick
      test_persistent_failure_quarantined;
    Alcotest.test_case "no retry budget reports transient" `Quick
      test_no_retry_budget_reports_transient;
    Alcotest.test_case "cycle cap times out" `Quick test_cycle_cap_times_out;
    Alcotest.test_case "outliers absorbed by trials" `Quick
      test_outlier_absorbed;
    Alcotest.test_case "fast-path crash degrades to closures" `Quick
      test_crash_degrades_to_closures;
    Alcotest.test_case "checkpoint: kill/resume equivalence" `Quick
      test_checkpoint_kill_resume_equivalence;
    Alcotest.test_case "checkpoint: tag mismatch refused" `Quick
      test_checkpoint_tag_mismatch_refuses;
    Alcotest.test_case "checkpoint: corrupt file ignored" `Quick
      test_checkpoint_corrupt_file_ignored;
  ]
